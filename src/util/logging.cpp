#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace rlt::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::ostream* g_stream = &std::cerr;
std::mutex g_emit_mutex;

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }
void set_log_stream(std::ostream& os) noexcept { g_stream = &os; }

namespace detail {

void emit(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  (*g_stream) << "[rlt " << level_name(level) << "] " << message << '\n';
}

}  // namespace detail

}  // namespace rlt::util
