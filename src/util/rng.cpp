#include "util/rng.hpp"

namespace rlt::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_in(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) noexcept {
  return uniform(den) < num;
}

double Rng::uniform_double() noexcept {
  // 53 top bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rng Rng::fork() noexcept {
  // Mix the next output through SplitMix64 so parent and child streams
  // do not overlap in practice.
  std::uint64_t sm = next_u64() ^ 0xA5A5A5A5A5A5A5A5ULL;
  return Rng(splitmix64(sm));
}

}  // namespace rlt::util
