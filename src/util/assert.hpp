// Always-on invariant checking.
//
// The simulator and register implementations assert paper-level invariants
// (e.g. Observation 24: distinct writes have distinct timestamps) in all
// build types: a reproduction that silently violates an invariant in
// Release mode is worthless.  `RLT_CHECK` therefore never compiles out.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rlt::util {

/// Thrown when a checked invariant fails.  Tests catch this to assert
/// that illegal usage is detected; everywhere else it is a hard bug.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

[[noreturn]] inline void invariant_failure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}

}  // namespace rlt::util

// NOLINTBEGIN(cppcoreguidelines-macro-usage): assertion macros are the one
// place the Core Guidelines accept macros (capture of expression text,
// file and line requires the preprocessor).
#define RLT_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::rlt::util::invariant_failure(#expr, __FILE__, __LINE__, "");     \
    }                                                                    \
  } while (false)

#define RLT_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream rlt_check_os;                                   \
      rlt_check_os << msg; /* NOLINT */                                  \
      ::rlt::util::invariant_failure(#expr, __FILE__, __LINE__,          \
                                     rlt_check_os.str());                \
    }                                                                    \
  } while (false)
// NOLINTEND(cppcoreguidelines-macro-usage)
