// Minimal leveled logger used by benches and examples for human-readable
// progress output.  Library code (simulator, checkers, registers) never
// logs on hot paths; diagnostics are returned as values (certificates,
// statistics structs) instead.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace rlt::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Sink for log output; defaults to std::cerr. Not thread-safe to swap
/// while logging (set once at startup).
void set_log_stream(std::ostream& os) noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: `LogLine(LogLevel::kInfo) << "x=" << x;`
/// emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, os_.str());
  }

  template <class T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

inline LogLine log_debug() { return LogLine(LogLevel::kDebug); }
inline LogLine log_info() { return LogLine(LogLevel::kInfo); }
inline LogLine log_warn() { return LogLine(LogLevel::kWarn); }
inline LogLine log_error() { return LogLine(LogLevel::kError); }

}  // namespace rlt::util
