// Deterministic pseudo-random number generation for simulations.
//
// Every source of randomness in this library — coin flips inside
// randomized algorithms, adversary tie-breaking, workload generation —
// flows through an `rlt::util::Rng` seeded from a single experiment seed,
// so that every run is exactly replayable from its printed seed.
//
// The generator is xoshiro256++ seeded via SplitMix64, which is the
// recommended seeding procedure of the xoshiro authors.  We deliberately
// avoid std::mt19937 because its seeding from a single 64-bit value is
// poor and its state is needlessly large for our purposes.
#pragma once

#include <cstdint>
#include <limits>

namespace rlt::util {

/// SplitMix64 step; used to expand a 64-bit seed into generator state.
/// Public because tests and hash-mixing utilities reuse it.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ deterministic pseudo-random generator.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be
/// used with <random> distributions, but the convenience members below
/// (`next_u64`, `uniform`, `flip`) should be preferred in library code:
/// they are guaranteed stable across platforms, unlike std distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a single 64-bit seed.
  explicit Rng(std::uint64_t seed = 0) noexcept { reseed(seed); }

  /// Resets the generator state as if freshly constructed with `seed`.
  void reseed(std::uint64_t seed) noexcept;

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next_u64(); }

  /// Next raw 64 bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Fair coin flip: returns 0 or 1.
  int flip() noexcept { return static_cast<int>(next_u64() >> 63); }

  /// Bernoulli trial with probability `num/den`. Requires 0<=num<=den, den>0.
  bool chance(std::uint64_t num, std::uint64_t den) noexcept;

  /// Uniform double in [0, 1).
  double uniform_double() noexcept;

  /// Derives an independent child generator (for per-entity streams).
  /// The child stream is a deterministic function of the current state.
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4]{};
};

}  // namespace rlt::util
