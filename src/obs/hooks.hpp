// The observability configuration the CLI threads into the sweep
// engines (`run_sweep` / `run_term_sweep` / `run_explore`).  All fields
// default to "off"; a null Hooks pointer means no observability at all.
#pragma once

#include <cstdint>
#include <string>

namespace rlt::sweep {
class RecordSink;
}  // namespace rlt::sweep

namespace rlt::obs {

struct Hooks {
  /// Per-scenario trace spans, appended in enumeration order during the
  /// deterministic fold — like the store, the trace's bytes are a pure
  /// function of the sweep options (asserted across `--threads` /
  /// `--batch` by tests).  Setting this enables the metrics registry
  /// for the run (spans carry per-scenario stable-counter deltas).
  sweep::RecordSink* trace = nullptr;

  /// Adds wall-clock fields (`wall_ns`, `check_ns`, and a closing fold
  /// span) to the trace.  Documented to break byte-identity: timings
  /// are measurements, not digest material.
  bool trace_times = false;

  /// fd for the machine-readable progress stream (obs/progress.hpp);
  /// -1 disables it.
  int progress_fd = -1;

  /// stderr heartbeat period in milliseconds; 0 disables it.
  std::uint64_t heartbeat_ms = 0;

  /// Directory for per-scenario forensics artifacts (obs/forensics.hpp);
  /// empty disables them.  One canonical-JSON file per non-ok scenario,
  /// written during the deterministic fold and named by global index, so
  /// the directory contents are byte-identical across --threads/--batch
  /// and shards of the same sweep tile the unsharded directory.
  std::string forensics_dir;

  [[nodiscard]] bool progress_on() const noexcept {
    return progress_fd >= 0 || heartbeat_ms > 0;
  }
  [[nodiscard]] bool forensics_on() const noexcept {
    return !forensics_dir.empty();
  }
};

}  // namespace rlt::obs
