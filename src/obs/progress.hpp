// Live sweep progress: a stderr heartbeat for humans and a
// machine-readable JSONL stream on a caller-supplied fd for
// coordinators (`tools/sweep_shard.py` consumes it to report per-shard
// progress and flag stragglers).
//
// Workers call `tick(cls)` — one relaxed atomic increment — as each
// scenario completes; a monitor thread wakes on a period and emits.
// Progress is pure observability: it writes only to stderr / the given
// fd, never to stdout or the store, so every digest and store byte is
// untouched (asserted by tests).
//
// The fd protocol is one JSON object per line, integers only:
//
//   {"obs":"progress","mode":"safety","state":"run","done":D,"total":T,
//    "elapsed_ms":E,"eta_ms":X,"rate":R,"ok":a,"viol":b,"blocked":c,
//    "err":d}
//
// The four class keys are mode-specific labels supplied by the engine
// (safety: ok/viol/blocked/err; term: term/capped/other/err; explore:
// done/found/other/err).  The final line carries "state":"done" and the
// exact final counts; a consumer that only reads the last line gets the
// truth.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace rlt::obs {

struct ProgressOptions {
  std::uint64_t total = 0;            ///< scenarios this process will run
  std::string_view mode = "safety";   ///< "safety" / "term" / "explore"
  std::array<std::string_view, 4> classes{"ok", "viol", "blocked", "err"};
  int fd = -1;                        ///< JSONL stream fd; -1 = off
  std::uint64_t heartbeat_ms = 0;     ///< stderr heartbeat period; 0 = off
};

class ProgressMeter {
 public:
  explicit ProgressMeter(const ProgressOptions& o);
  ~ProgressMeter();  ///< calls finish()

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// One scenario finished with outcome class `cls` (0..3).  Lock-free.
  void tick(int cls) noexcept;

  /// Emits the final "state":"done" line / heartbeat and joins the
  /// monitor thread.  Idempotent.
  void finish();

 private:
  void emit(bool final);
  void monitor_loop();

  ProgressOptions opts_;
  std::atomic<std::uint64_t> done_{0};
  std::array<std::atomic<std::uint64_t>, 4> class_counts_{};
  std::chrono::steady_clock::time_point start_;
  std::thread monitor_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool finished_ = false;
};

}  // namespace rlt::obs
