#include "obs/forensics.hpp"

#include <fstream>
#include <map>

#include "checker/lin_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "sweep/store.hpp"
#include "util/assert.hpp"

namespace rlt::obs {

namespace {

using history::History;
using history::OpRecord;

// ---- canonical nested-JSON writer ---------------------------------------
// sweep::Record is flat by design; forensics artifacts nest, so this
// tiny writer produces the same canonical form (insertion order, RFC
// 8259 escapes via sweep::json_escape, no whitespace) for trees.
class Json {
 public:
  Json& begin_obj() { open('{'); return *this; }
  Json& end_obj() { close('}'); return *this; }
  Json& begin_arr() { open('['); return *this; }
  Json& end_arr() { close(']'); return *this; }
  Json& key(const char* k) {
    comma();
    out_ += sweep::json_escape(k);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }
  Json& str(const std::string& v) { return raw(sweep::json_escape(v)); }
  Json& u64(std::uint64_t v) { return raw(std::to_string(v)); }
  Json& i64(std::int64_t v) { return raw(std::to_string(v)); }
  Json& boolean(bool v) { return raw(v ? "true" : "false"); }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void open(char c) {
    comma();
    out_ += c;
    first_.push_back(true);
  }
  void close(char c) {
    RLT_CHECK(!first_.empty());
    first_.pop_back();
    out_ += c;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // value follows a key: no comma
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }
  Json& raw(const std::string& v) {
    comma();
    out_ += v;
    return *this;
  }

  std::string out_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

// ---- certificate minimization -------------------------------------------

/// Sub-history of the kept ops (ids re-densified in ascending original
/// order; `orig` maps new id -> original id).  Register initial values
/// carry over.
History sub_history(const History& h, const std::vector<char>& keep,
                    std::vector<int>* orig) {
  History sub;
  for (const auto reg : h.registers()) sub.set_initial(reg, h.initial(reg));
  if (orig != nullptr) orig->clear();
  for (const OpRecord& op : h.ops()) {
    if (keep[static_cast<std::size_t>(op.id)] == 0) continue;
    OpRecord copy = op;
    copy.id = -1;  // add() re-assigns densely
    sub.add(copy);
    if (orig != nullptr) orig->push_back(op.id);
  }
  return sub;
}

bool fails_checker(const History& h, bool wsl_only) {
  if (wsl_only) return !checker::check_write_strong_linearizable(h).ok;
  return !checker::check_linearizable(h).ok;
}

}  // namespace

Certificate make_certificate(const History& h, bool wsl_only) {
  Certificate c;
  c.checker = wsl_only ? "write-strong-linearizability" : "linearizability";
  std::vector<char> keep(h.size(), 1);
  ++c.probes;
  if (!fails_checker(h, wsl_only)) {
    // Defensive: the caller claimed a violation the checker cannot
    // reproduce; emit an honest, non-reverified certificate.
    c.constraint = "checker did not reproduce the reported failure";
    return c;
  }
  // Greedy fixpoint: drop any op whose removal keeps the checker
  // failing; repeat until no single removal survives (1-minimality).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (keep[i] == 0) continue;
      keep[i] = 0;
      const History sub = sub_history(h, keep, nullptr);
      ++c.probes;
      if (fails_checker(sub, wsl_only)) {
        changed = true;
      } else {
        keep[i] = 1;
      }
    }
  }
  const History minimal = sub_history(h, keep, &c.ops);
  // Re-verification: replaying exactly the certificate's op set through
  // the checker must reproduce the failure.
  ++c.probes;
  if (wsl_only) {
    const auto r = checker::check_write_strong_linearizable(minimal);
    c.reverified = !r.ok;
    c.constraint = r.explanation;
  } else {
    const auto r = checker::check_linearizable(minimal);
    c.reverified = !r.ok;
    c.constraint = r.error;
  }
  return c;
}

std::string build_artifact(const std::string& key, const std::string& verdict,
                           const std::string& detail, const History& h,
                           const ForensicsCapture& cap) {
  Json j;
  j.begin_obj();
  j.key("forensics").u64(1);
  j.key("key").str(key);
  j.key("verdict").str(verdict);
  j.key("detail").str(detail);

  // Register initial values (Definition 2 property 3 — the certificate
  // replay needs them to mean the same thing).
  j.key("initial").begin_obj();
  for (const auto reg : h.registers()) {
    j.key(("R" + std::to_string(reg)).c_str()).i64(h.initial(reg));
  }
  j.end_obj();

  // The full recorded history, op spans in id order.
  j.key("ops").begin_arr();
  for (const OpRecord& op : h.ops()) {
    j.begin_obj();
    j.key("id").i64(op.id);
    j.key("process").i64(op.process);
    j.key("reg").i64(op.reg);
    j.key("kind").str(history::to_string(op.kind));
    j.key("value").i64(op.value);
    j.key("invoke").u64(op.invoke);
    if (!op.pending()) j.key("response").u64(op.response);
    j.key("pending").boolean(op.pending());
    j.end_obj();
  }
  j.end_arr();

  // Failure certificate (violations only; derived from the detail
  // string's checker prefix, which classify_run owns).
  if (verdict == "VIOLATION") {
    const bool wsl_only =
        detail.rfind("write strong-linearizability violated", 0) == 0;
    const Certificate c = make_certificate(h, wsl_only);
    j.key("certificate").begin_obj();
    j.key("checker").str(c.checker);
    j.key("ops").begin_arr();
    for (const int id : c.ops) j.i64(id);
    j.end_arr();
    j.key("constraint").str(c.constraint);
    j.key("reverified").boolean(c.reverified);
    j.key("probes").u64(c.probes);
    j.end_obj();
  }

  // Quorum ledger (blocked ABD runs).
  if (!cap.ledger.empty()) {
    j.key("ledger").begin_arr();
    for (const LedgerEntry& e : cap.ledger) {
      j.begin_obj();
      j.key("token").i64(e.token);
      j.key("op_id").i64(e.op_id);
      j.key("node").i64(e.node);
      j.key("phase").str(e.phase);
      j.key("acks").begin_arr();
      for (const int a : e.acks) j.i64(a);
      j.end_arr();
      j.key("quorum").i64(e.quorum);
      j.key("n").i64(e.n);
      j.key("abandoned").boolean(e.abandoned);
      j.key("cause").str(e.cause);
      j.key("cut_by").str(e.cut_by);
      j.end_obj();
    }
    j.end_arr();
  }

  // Event timeline + happens-before edges (send -> delivery by seq;
  // program order and invoke->response are implicit in the op spans).
  if (cap.timeline != nullptr) {
    const auto& events = cap.timeline->events();
    j.key("timeline").begin_obj();
    j.key("elided").u64(cap.timeline->elided());
    j.key("events").begin_arr();
    for (const TimelineEvent& e : events) {
      j.begin_obj();
      j.key("e").str(to_string(e.kind));
      switch (e.kind) {
        case TimelineEvent::Kind::kSend:
        case TimelineEvent::Kind::kDeliver:
        case TimelineEvent::Kind::kDrop:
        case TimelineEvent::Kind::kDuplicate:
          j.key("from").i64(e.from);
          j.key("to").i64(e.to);
          j.key("type").i64(e.type);
          j.key("seq").u64(e.seq);
          if (!e.detail.empty()) j.key("detail").str(e.detail);
          break;
        case TimelineEvent::Kind::kCrash:
        case TimelineEvent::Kind::kRecover:
          j.key("node").i64(e.to);
          j.key("detail").str(e.detail);
          break;
        case TimelineEvent::Kind::kFault:
          j.key("detail").str(e.detail);
          break;
      }
      j.end_obj();
    }
    j.end_arr();
    // Happens-before: each delivery's matching send, by seq (duplicate
    // copies share the seq, so dup deliveries point at the original).
    std::map<std::uint64_t, std::size_t> send_at;
    j.key("edges").begin_arr();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const TimelineEvent& e = events[i];
      if (e.kind == TimelineEvent::Kind::kSend) {
        send_at.emplace(e.seq, i);
      } else if (e.kind == TimelineEvent::Kind::kDeliver) {
        const auto it = send_at.find(e.seq);
        if (it != send_at.end()) {
          j.begin_obj();
          j.key("from").u64(it->second);
          j.key("to").u64(i);
          j.end_obj();
        }
      }
    }
    j.end_arr();
    j.end_obj();
  }

  j.end_obj();
  return j.take() + "\n";
}

void write_artifact(const std::string& dir, const std::string& name,
                    const std::string& body) {
  const std::string path = dir + "/" + name;
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  RLT_CHECK_MSG(f.is_open(), "cannot open forensics artifact " << path);
  f << body;
  f.flush();
  RLT_CHECK_MSG(f.good(), "write to forensics artifact failed: " << path);
}

}  // namespace rlt::obs
