// Failure forensics: machine-checkable explanations for non-ok verdicts.
//
// Three layers, all deterministic pure functions of the finished run —
// so every artifact is byte-identical across --threads/--batch and
// across shard+merge vs unsharded sweeps, and none of it ever feeds a
// digest:
//
//  * a **failure certificate** for kViolation: the minimal sub-history
//    that still fails the checker (greedy 1-minimal op removal), the
//    checker's own constraint text on that minimal set, and a
//    re-verification bit proving the certificate independently
//    reproduces the failure through check_linearizable /
//    check_write_strong_linearizable;
//  * a **quorum ledger** for kBlocked ABD runs: per pending op, which
//    servers acked its current phase, the quorum it needed, and the
//    named fault event (crash / partition / abandonment) that cut it
//    off;
//  * the **event timeline** recorded by obs::TimelineRecorder, with
//    happens-before edges (send -> delivery, matched by seq).
//
// build_artifact renders all of it as one canonical-JSON document
// (fixed field order, RFC 8259 escapes, newline-terminated) — the file
// `sweep_main --forensics DIR` writes per non-ok scenario.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "history/history.hpp"
#include "obs/timeline.hpp"

namespace rlt::obs {

/// A minimal failing sub-history plus the constraint it violates.
struct Certificate {
  /// "linearizability" or "write-strong-linearizability".
  std::string checker;
  /// Op ids (in the ORIGINAL history) of the minimal conflicting set.
  std::vector<int> ops;
  /// The checker's explanation on the minimal set.  Op ids inside it
  /// are certificate-local (dense over `ops`, same order).
  std::string constraint;
  /// True iff replaying exactly this op set through the checker
  /// reproduces the failure — the certificate's proof obligation.
  bool reverified = false;
  /// Checker calls spent minimizing (observability, not digest).
  std::uint64_t probes = 0;
};

/// Quorum-ledger entry for one op still pending when a run blocked.
struct LedgerEntry {
  int token = -1;        ///< AbdRegister client-op token
  int op_id = -1;        ///< history op id (-1 if not recorded)
  int node = -1;         ///< home node
  std::string phase;     ///< "write" / "read-query" / "read-write-back"
  std::vector<int> acks; ///< servers that acked the current phase
  int quorum = 0;
  int n = 0;
  bool abandoned = false;
  std::string cause;     ///< e.g. "home-node-crashed", "no-live-quorum"
  std::string cut_by;    ///< named fault event that cut the op off
};

/// Everything a runner captured for a non-ok scenario.  The timeline is
/// null for sim drivers (no message-passing substrate); the ledger is
/// empty unless an ABD run blocked.
struct ForensicsCapture {
  const TimelineRecorder* timeline = nullptr;
  std::vector<LedgerEntry> ledger;
};

/// Greedy 1-minimal certificate extraction: repeatedly drop ops whose
/// removal keeps the checker failing, then re-verify the survivor set.
/// `wsl_only` selects the failing checker: false = check_linearizable,
/// true = check_write_strong_linearizable (for histories that are
/// linearizable but not write strongly-linearizable).
[[nodiscard]] Certificate make_certificate(const history::History& h,
                                           bool wsl_only);

/// Renders the canonical forensics artifact for one non-ok scenario.
/// `verdict` uses the store spelling ("VIOLATION", "blocked", ...).
/// A certificate is computed iff `verdict` is "VIOLATION"; `wsl_only`
/// is derived from `detail`.  Pure function of its inputs.
[[nodiscard]] std::string build_artifact(const std::string& key,
                                         const std::string& verdict,
                                         const std::string& detail,
                                         const history::History& h,
                                         const ForensicsCapture& cap);

/// Writes one artifact as `dir/name`, overwriting any stale file — the
/// directory contents must stay a pure function of the sweep options.
/// Throws (util::InvariantViolation) when the file cannot be written.
void write_artifact(const std::string& dir, const std::string& name,
                    const std::string& body);

}  // namespace rlt::obs
