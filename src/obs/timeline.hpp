// Deterministic intra-scenario event timeline for forensics artifacts.
//
// A TimelineRecorder hangs off Network::set_observer and records every
// send/delivery/drop/duplicate plus crash/recovery flips, in the exact
// order the driver produced them; the driver adds named fault events
// (partition cuts, planned crashes, recoveries) via note_fault.  The
// recording is a pure function of the scenario, so the artifact built
// from it is byte-identical across --threads/--batch/shards.  It is
// observability only: recorders never alter behavior and never feed
// digests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mp/network.hpp"

namespace rlt::obs {

/// One timeline event.  Message kinds carry the envelope coordinates;
/// node-lifecycle and driver-fault kinds carry a description instead.
struct TimelineEvent {
  enum class Kind : std::uint8_t {
    kSend,
    kDeliver,
    kDrop,
    kDuplicate,
    kCrash,
    kRecover,
    kFault,  ///< driver-level note (partition cut/heal, planned crash, ...)
  };
  Kind kind = Kind::kSend;
  int from = -1;
  int to = -1;
  std::int64_t type = 0;
  std::uint64_t seq = 0;       ///< network send seq (dups share it)
  std::string detail;          ///< drop reason / fault description
};

[[nodiscard]] const char* to_string(TimelineEvent::Kind k) noexcept;

/// Records network events and driver fault notes.  Message events are
/// capped (a budget-length run can consume a million envelopes; the
/// artifact needs the shape, not the flood) — past the cap they are
/// counted, not stored.  Crash/recover/fault events are always kept:
/// they are few, and the quorum ledger names them.
class TimelineRecorder final : public mp::NetObserver {
 public:
  static constexpr std::size_t kDefaultMessageCap = 4096;

  explicit TimelineRecorder(std::size_t message_cap = kDefaultMessageCap)
      : message_cap_(message_cap) {}

  void on_send(const mp::Message& m) override;
  void on_deliver(const mp::Message& m) override;
  void on_drop(const mp::Message& m, const char* reason) override;
  void on_duplicate(const mp::Message& m) override;
  void on_crash(mp::NodeId n) override;
  void on_recover(mp::NodeId n) override;

  /// Driver-level fault note, e.g. "partition cut {0}|{1,2} at it=12".
  void note_fault(std::string detail);

  [[nodiscard]] const std::vector<TimelineEvent>& events() const noexcept {
    return events_;
  }
  /// Message events elided past the cap (0 when the full flood fit).
  [[nodiscard]] std::uint64_t elided() const noexcept { return elided_; }

  /// Most recent fault-class event (kCrash/kRecover/kFault) whose
  /// description or node matches `node`, as a human-readable string;
  /// empty when none was recorded.  Used to name the cutting fault in
  /// quorum ledgers.
  [[nodiscard]] std::string last_fault_touching(int node) const;

 private:
  void push_message(TimelineEvent::Kind kind, const mp::Message& m,
                    const char* detail);

  std::size_t message_cap_;
  std::size_t lifecycle_ = 0;  ///< crash/recover/fault events (never capped)
  std::uint64_t elided_ = 0;
  std::vector<TimelineEvent> events_;
};

}  // namespace rlt::obs
