// The unified metrics registry: typed counters / gauges / histograms
// shared by every layer (checker, mp, sweep, term, explore).
//
// Design contract, mirroring the sweep's digest discipline:
//
//  * **Zero cost when off.**  Every hot-path site is one relaxed atomic
//    load and a predictable branch (`if (enabled())`).  Building with
//    -DRLT_OBS_OFF compiles the sites out entirely.
//  * **Thread-local shards, commutative folds.**  `count`/`gauge_max`/
//    `hist` touch only the calling thread's shard (a plain array
//    increment — no hashing, no locks).  `snapshot_all()` folds the
//    shards with sum (counters, histogram buckets) and max (gauges) —
//    all commutative and associative, so the folded totals of the
//    *stable* metrics are a pure function of the work done, independent
//    of `--threads`, `--batch`, and scheduling, exactly like
//    `SweepFold`'s digest.
//  * **Stable vs runtime split.**  Metrics that count deterministic
//    per-scenario work (solver calls, prune hits, messages, …) are
//    flagged `stable`; metrics that measure the execution itself (pool
//    steals, task latency) are not.  Thread-invariance tests and
//    `tools/metrics_report.py` diffs key on the stable section.
//  * **Observability, not digest material.**  Nothing here ever feeds a
//    digest or a store record's digested fields (the PR 7 precedent).
//
// Metric identifiers are closed enums: registration is a compile-time
// table, the hot path indexes an array, and dumps/spans render names in
// enum order — byte-stable output for free.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string_view>

namespace rlt::sweep {
class Record;
class RecordSink;
}  // namespace rlt::sweep

namespace rlt::obs {

enum class Counter : int {
  // Linearization solver (src/checker/lin_solver.cpp) internals.
  kCheckerSolverCalls,    // solve/feasible/feasible_final_values entries
  kCheckerDfsNodes,       // DFS states visited
  kCheckerMemoHits,       // seen-set hits (failed/visited states)
  kCheckerPruneDoomed,    // doomed-state prune fired
  kCheckerPruneEagerRead, // eager-read dominance restriction applied
  kCheckerPruneAccept,    // accept-shortcut discharged a subtree
  // WSL tree checker (absorbed from WslCheckResult).
  kWslSolverCalls,
  kWslCacheHits,
  kWslCacheMisses,
  // Streaming online checker (absorbed from StreamingChecker accessors).
  kStreamEvents,
  kStreamCollapses,
  kStreamSolverCalls,
  kStreamRetiredOps,
  // Message-passing fabric (mp/network, mp/abd) + per-op accounting.
  kNetMsgsSent,
  kNetBytesSent,
  kNetDelivered,
  kNetDropped,
  kNetDuplicated,
  kNetRetransmits,
  kAbdRoundTrips,  // phase broadcasts: initial phases + retransmissions
  // Engines.
  kSweepScenarios,
  kTermCoinFlips,
  kTermCapped,
  kExploreRuns,
  kExploreShrinkProbes,
  kExploreSteps,
  // Runtime (execution-dependent; excluded from stability assertions).
  kPoolSteals,
  kPoolTasks,
  kCount_,
};

enum class Gauge : int {
  // Max over all scenarios — commutative, hence thread-invariant.
  kStreamPeakLiveOps,
  // Runtime.
  kPoolThreads,
  kCount_,
};

enum class Hist : int {
  kScenarioOps,        // ops recorded per scenario
  kStreamPeakLive,     // per-scenario peak live ops (online runs)
  // Runtime.
  kPoolTaskNs,         // wall time per pool task (batch)
  kCount_,
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount_);
inline constexpr int kNumGauges = static_cast<int>(Gauge::kCount_);
inline constexpr int kNumHists = static_cast<int>(Hist::kCount_);
/// Histogram buckets are power-of-two: value v lands in bucket
/// bit_width(v), i.e. bucket k counts values in [2^(k-1), 2^k).
inline constexpr int kHistBuckets = 65;

[[nodiscard]] std::string_view counter_name(Counter c) noexcept;
[[nodiscard]] bool counter_stable(Counter c) noexcept;
[[nodiscard]] std::string_view gauge_name(Gauge g) noexcept;
[[nodiscard]] bool gauge_stable(Gauge g) noexcept;
[[nodiscard]] std::string_view hist_name(Hist h) noexcept;
[[nodiscard]] bool hist_stable(Hist h) noexcept;

/// One thread's slice of the registry.  Owned by the global registry
/// (shards outlive their threads); written only by the owning thread.
struct Shard {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::uint64_t, kNumGauges> gauges{};
  std::array<std::array<std::uint64_t, kHistBuckets>, kNumHists> hists{};
};

/// Just the counter slice — the cheap snapshot the trace path takes
/// around every scenario to compute per-scenario metric deltas.
struct CounterDelta {
  std::array<std::uint64_t, kNumCounters> v{};

  CounterDelta& operator-=(const CounterDelta& rhs) noexcept {
    for (int i = 0; i < kNumCounters; ++i) v[static_cast<std::size_t>(i)] -=
        rhs.v[static_cast<std::size_t>(i)];
    return *this;
  }
};

/// A folded view of every shard (or a copy of one shard).
struct Snapshot {
  Shard data;
};

#ifdef RLT_OBS_OFF

inline constexpr bool kCompiledIn = false;
inline bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
inline void reset() noexcept {}
inline void count(Counter, std::uint64_t = 1) noexcept {}
inline void gauge_max(Gauge, std::uint64_t) noexcept {}
inline void hist(Hist, std::uint64_t) noexcept {}
inline CounterDelta thread_counters() noexcept { return {}; }
inline Snapshot snapshot_all() { return {}; }

#else  // RLT_OBS_OFF

inline constexpr bool kCompiledIn = true;

namespace detail {
extern std::atomic<bool> g_enabled;
extern thread_local Shard* t_shard;
/// Registers (and returns) this thread's shard; out-of-line slow path.
Shard& acquire_shard();
inline Shard& local_shard() {
  Shard* s = t_shard;
  return s != nullptr ? *s : acquire_shard();
}
}  // namespace detail

/// The global gate.  Off (the default) keeps every instrumentation site
/// to a relaxed load + untaken branch.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// Zeroes every shard.  Call between runs whose metrics must not mix
/// (tests); `sweep_main` runs one sweep per process and never resets.
void reset() noexcept;

inline void count(Counter c, std::uint64_t n = 1) noexcept {
  if (!enabled()) return;
  detail::local_shard().counters[static_cast<std::size_t>(c)] += n;
}

inline void gauge_max(Gauge g, std::uint64_t v) noexcept {
  if (!enabled()) return;
  std::uint64_t& cur = detail::local_shard().gauges[static_cast<std::size_t>(g)];
  if (v > cur) cur = v;
}

inline void hist(Hist h, std::uint64_t v) noexcept {
  if (!enabled()) return;
  detail::local_shard()
      .hists[static_cast<std::size_t>(h)][static_cast<std::size_t>(
          std::bit_width(v))] += 1;
}

/// Copy of the calling thread's counter slice (for before/after deltas
/// around one scenario — scenarios run wholly on one worker thread).
[[nodiscard]] CounterDelta thread_counters() noexcept;

/// Folds every shard: counters and histogram buckets sum, gauges max.
[[nodiscard]] Snapshot snapshot_all();

#endif  // RLT_OBS_OFF

/// Dumps a snapshot as canonical JSONL records (one metric per line):
///   {"obs":"meta","version":1,"mode":"safety","config":"…"}
///   {"obs":"counter","name":"checker.solver_calls","value":N,"stable":true}
///   {"obs":"gauge","name":"stream.peak_live_ops","value":N,"stable":true}
///   {"obs":"hist","name":"sweep.scenario_ops","stable":true,"b3":N,…}
/// Counters and gauges are emitted exhaustively (zeros included) in enum
/// order so two dumps of the same workload are byte-comparable;
/// histogram lines carry only non-zero buckets.  The stable section of a
/// dump is thread/batch-invariant; `"stable":false` lines are not.
void dump(const Snapshot& snap, sweep::RecordSink& sink,
          std::string_view mode, std::string_view config);

/// Appends every non-zero *stable* counter of `d` to `rec` as
/// "name":value fields in enum order — the per-scenario metric payload
/// of a trace span.  Runtime counters are skipped (their deltas depend
/// on scheduling), so span bytes stay thread/batch-invariant.
void append_stable_deltas(const CounterDelta& d, sweep::Record& rec);

}  // namespace rlt::obs
