#include "obs/timeline.hpp"

#include <sstream>

namespace rlt::obs {

const char* to_string(TimelineEvent::Kind k) noexcept {
  switch (k) {
    case TimelineEvent::Kind::kSend: return "send";
    case TimelineEvent::Kind::kDeliver: return "deliver";
    case TimelineEvent::Kind::kDrop: return "drop";
    case TimelineEvent::Kind::kDuplicate: return "duplicate";
    case TimelineEvent::Kind::kCrash: return "crash";
    case TimelineEvent::Kind::kRecover: return "recover";
    case TimelineEvent::Kind::kFault: return "fault";
  }
  return "?";
}

void TimelineRecorder::push_message(TimelineEvent::Kind kind,
                                    const mp::Message& m,
                                    const char* detail) {
  if (events_.size() >= message_cap_ + lifecycle_) {
    ++elided_;
    return;
  }
  TimelineEvent e;
  e.kind = kind;
  e.from = m.from;
  e.to = m.to;
  e.type = m.type;
  e.seq = m.seq;
  if (detail != nullptr) e.detail = detail;
  events_.push_back(std::move(e));
}

void TimelineRecorder::on_send(const mp::Message& m) {
  push_message(TimelineEvent::Kind::kSend, m, nullptr);
}

void TimelineRecorder::on_deliver(const mp::Message& m) {
  push_message(TimelineEvent::Kind::kDeliver, m, nullptr);
}

void TimelineRecorder::on_drop(const mp::Message& m, const char* reason) {
  push_message(TimelineEvent::Kind::kDrop, m, reason);
}

void TimelineRecorder::on_duplicate(const mp::Message& m) {
  push_message(TimelineEvent::Kind::kDuplicate, m, nullptr);
}

void TimelineRecorder::on_crash(mp::NodeId n) {
  ++lifecycle_;
  TimelineEvent e;
  e.kind = TimelineEvent::Kind::kCrash;
  e.to = n;
  std::ostringstream os;
  os << "node " << n << " crashed";
  e.detail = os.str();
  events_.push_back(std::move(e));
}

void TimelineRecorder::on_recover(mp::NodeId n) {
  ++lifecycle_;
  TimelineEvent e;
  e.kind = TimelineEvent::Kind::kRecover;
  e.to = n;
  std::ostringstream os;
  os << "node " << n << " recovered";
  e.detail = os.str();
  events_.push_back(std::move(e));
}

void TimelineRecorder::note_fault(std::string detail) {
  ++lifecycle_;
  TimelineEvent e;
  e.kind = TimelineEvent::Kind::kFault;
  e.detail = std::move(detail);
  events_.push_back(std::move(e));
}

std::string TimelineRecorder::last_fault_touching(int node) const {
  std::string hit;
  for (const TimelineEvent& e : events_) {
    bool match = false;
    switch (e.kind) {
      case TimelineEvent::Kind::kCrash:
      case TimelineEvent::Kind::kRecover:
        match = node < 0 || e.to == node;
        break;
      case TimelineEvent::Kind::kFault:
        // Driver notes (partition cut/heal, ...) name no single node;
        // they touch everyone unless they name a different node.
        match = node < 0 ||
                e.detail.find("node " + std::to_string(node)) !=
                    std::string::npos ||
                e.detail.find("partition") != std::string::npos;
        break;
      default:
        break;
    }
    if (match) hit = e.detail;
  }
  return hit;
}

}  // namespace rlt::obs
