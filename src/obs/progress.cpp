#include "obs/progress.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>

#include "sweep/store.hpp"

namespace rlt::obs {

namespace {

constexpr std::uint64_t kDefaultPeriodMs = 500;

}  // namespace

ProgressMeter::ProgressMeter(const ProgressOptions& o)
    : opts_(o), start_(std::chrono::steady_clock::now()) {
  if (opts_.fd >= 0 || opts_.heartbeat_ms > 0) {
    monitor_ = std::thread([this] { monitor_loop(); });
  }
}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::tick(int cls) noexcept {
  if (cls >= 0 && cls < 4) {
    class_counts_[static_cast<std::size_t>(cls)].fetch_add(
        1, std::memory_order_relaxed);
  }
  done_.fetch_add(1, std::memory_order_relaxed);
}

void ProgressMeter::finish() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (finished_) return;
    finished_ = true;
    stopping_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  if (opts_.fd >= 0 || opts_.heartbeat_ms > 0) emit(/*final=*/true);
}

void ProgressMeter::monitor_loop() {
  const std::uint64_t period_ms =
      opts_.heartbeat_ms > 0 ? opts_.heartbeat_ms : kDefaultPeriodMs;
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::milliseconds(period_ms));
    if (stopping_) break;  // the final emit happens in finish()
    lock.unlock();
    emit(/*final=*/false);
    lock.lock();
  }
}

void ProgressMeter::emit(bool final) {
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  std::array<std::uint64_t, 4> cls{};
  for (std::size_t i = 0; i < 4; ++i) {
    cls[i] = class_counts_[i].load(std::memory_order_relaxed);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const auto elapsed_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count());
  // Integer rate (scenarios/sec) and ETA — no floating point anywhere,
  // so consumers never see locale- or formatting-dependent bytes.
  const std::uint64_t rate =
      elapsed_ms > 0 ? done * 1000 / elapsed_ms : 0;
  const std::uint64_t remaining = opts_.total > done ? opts_.total - done : 0;
  const std::uint64_t eta_ms = done > 0 ? remaining * elapsed_ms / done : 0;

  if (opts_.fd >= 0) {
    sweep::Record r;
    r.str("obs", "progress")
        .str("mode", opts_.mode)
        .str("state", final ? "done" : "run")
        .u64("done", done)
        .u64("total", opts_.total)
        .u64("elapsed_ms", elapsed_ms)
        .u64("eta_ms", eta_ms)
        .u64("rate", rate);
    for (std::size_t i = 0; i < 4; ++i) r.u64(opts_.classes[i], cls[i]);
    const std::string line = r.json() + "\n";
    // One write per line: lines up to PIPE_BUF are atomic on pipes, so
    // a coordinator multiplexing several shards never sees torn lines.
    [[maybe_unused]] const auto n =
        ::write(opts_.fd, line.data(), line.size());
  }
  if (opts_.heartbeat_ms > 0) {
    const std::uint64_t pct = opts_.total > 0 ? done * 100 / opts_.total : 0;
    std::fprintf(stderr,
                 "[%.*s] %" PRIu64 "/%" PRIu64 " (%" PRIu64 "%%) %" PRIu64
                 "/s eta %" PRIu64 "s %.*s=%" PRIu64 " %.*s=%" PRIu64
                 " %.*s=%" PRIu64 " %.*s=%" PRIu64 "%s\n",
                 static_cast<int>(opts_.mode.size()), opts_.mode.data(), done,
                 opts_.total, pct, rate, (eta_ms + 999) / 1000,
                 static_cast<int>(opts_.classes[0].size()),
                 opts_.classes[0].data(), cls[0],
                 static_cast<int>(opts_.classes[1].size()),
                 opts_.classes[1].data(), cls[1],
                 static_cast<int>(opts_.classes[2].size()),
                 opts_.classes[2].data(), cls[2],
                 static_cast<int>(opts_.classes[3].size()),
                 opts_.classes[3].data(), cls[3], final ? " [done]" : "");
  }
}

}  // namespace rlt::obs
