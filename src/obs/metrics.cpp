#include "obs/metrics.hpp"

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sweep/store.hpp"
#include "util/assert.hpp"

namespace rlt::obs {

namespace {

struct MetricInfo {
  std::string_view name;
  bool stable;
};

constexpr std::array<MetricInfo, kNumCounters> kCounterInfo{{
    {"checker.solver_calls", true},
    {"checker.dfs_nodes", true},
    {"checker.memo_hits", true},
    {"checker.prune_doomed", true},
    {"checker.prune_eager_read", true},
    {"checker.prune_accept", true},
    {"wsl.solver_calls", true},
    {"wsl.cache_hits", true},
    {"wsl.cache_misses", true},
    {"stream.events", true},
    {"stream.collapses", true},
    {"stream.solver_calls", true},
    {"stream.retired_ops", true},
    {"net.msgs_sent", true},
    {"net.bytes_sent", true},
    {"net.delivered", true},
    {"net.dropped", true},
    {"net.duplicated", true},
    {"net.retransmits", true},
    {"abd.round_trips", true},
    {"sweep.scenarios", true},
    {"term.coin_flips", true},
    {"term.capped", true},
    {"explore.runs", true},
    {"explore.shrink_probes", true},
    {"explore.steps", true},
    {"pool.steals", false},
    {"pool.tasks", false},
}};

constexpr std::array<MetricInfo, kNumGauges> kGaugeInfo{{
    {"stream.peak_live_ops", true},
    {"pool.threads", false},
}};

constexpr std::array<MetricInfo, kNumHists> kHistInfo{{
    {"sweep.scenario_ops", true},
    {"stream.peak_live", true},
    {"pool.task_ns", false},
}};

}  // namespace

std::string_view counter_name(Counter c) noexcept {
  return kCounterInfo[static_cast<std::size_t>(c)].name;
}
bool counter_stable(Counter c) noexcept {
  return kCounterInfo[static_cast<std::size_t>(c)].stable;
}
std::string_view gauge_name(Gauge g) noexcept {
  return kGaugeInfo[static_cast<std::size_t>(g)].name;
}
bool gauge_stable(Gauge g) noexcept {
  return kGaugeInfo[static_cast<std::size_t>(g)].stable;
}
std::string_view hist_name(Hist h) noexcept {
  return kHistInfo[static_cast<std::size_t>(h)].name;
}
bool hist_stable(Hist h) noexcept {
  return kHistInfo[static_cast<std::size_t>(h)].stable;
}

#ifndef RLT_OBS_OFF

namespace detail {

std::atomic<bool> g_enabled{false};
thread_local Shard* t_shard = nullptr;

namespace {
// The registry owns the shards so their data survives thread exit (the
// pool's workers die at the barrier; the fold reads their shards after).
std::mutex g_mutex;
std::vector<std::unique_ptr<Shard>>& shard_list() {
  static std::vector<std::unique_ptr<Shard>> shards;
  return shards;
}
}  // namespace

Shard& acquire_shard() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  shard_list().push_back(std::make_unique<Shard>());
  t_shard = shard_list().back().get();
  return *t_shard;
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void reset() noexcept {
  const std::lock_guard<std::mutex> lock(detail::g_mutex);
  for (auto& shard : detail::shard_list()) *shard = Shard{};
}

CounterDelta thread_counters() noexcept {
  CounterDelta out;
  out.v = detail::local_shard().counters;
  return out;
}

Snapshot snapshot_all() {
  Snapshot out;
  const std::lock_guard<std::mutex> lock(detail::g_mutex);
  for (const auto& shard : detail::shard_list()) {
    for (int i = 0; i < kNumCounters; ++i) {
      out.data.counters[static_cast<std::size_t>(i)] +=
          shard->counters[static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < kNumGauges; ++i) {
      const std::uint64_t v = shard->gauges[static_cast<std::size_t>(i)];
      std::uint64_t& cur = out.data.gauges[static_cast<std::size_t>(i)];
      if (v > cur) cur = v;
    }
    for (int i = 0; i < kNumHists; ++i) {
      for (int b = 0; b < kHistBuckets; ++b) {
        out.data.hists[static_cast<std::size_t>(i)][static_cast<std::size_t>(
            b)] += shard->hists[static_cast<std::size_t>(i)]
                             [static_cast<std::size_t>(b)];
      }
    }
  }
  return out;
}

#endif  // RLT_OBS_OFF

void dump(const Snapshot& snap, sweep::RecordSink& sink,
          std::string_view mode, std::string_view config) {
  {
    sweep::Record meta;
    meta.str("obs", "meta").u64("version", 1).str("mode", mode);
    if (!config.empty()) meta.str("config", config);
    sink.append(meta);
  }
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    sweep::Record r;
    r.str("obs", "counter")
        .str("name", counter_name(c))
        .u64("value", snap.data.counters[static_cast<std::size_t>(i)])
        .boolean("stable", counter_stable(c));
    sink.append(r);
  }
  for (int i = 0; i < kNumGauges; ++i) {
    const auto g = static_cast<Gauge>(i);
    sweep::Record r;
    r.str("obs", "gauge")
        .str("name", gauge_name(g))
        .u64("value", snap.data.gauges[static_cast<std::size_t>(i)])
        .boolean("stable", gauge_stable(g));
    sink.append(r);
  }
  for (int i = 0; i < kNumHists; ++i) {
    const auto h = static_cast<Hist>(i);
    sweep::Record r;
    r.str("obs", "hist")
        .str("name", hist_name(h))
        .boolean("stable", hist_stable(h));
    for (int b = 0; b < kHistBuckets; ++b) {
      const std::uint64_t n =
          snap.data.hists[static_cast<std::size_t>(i)][static_cast<std::size_t>(
              b)];
      if (n != 0) r.u64("b" + std::to_string(b), n);
    }
    sink.append(r);
  }
}

void append_stable_deltas(const CounterDelta& d, sweep::Record& rec) {
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    if (!counter_stable(c)) continue;
    const std::uint64_t v = d.v[static_cast<std::size_t>(i)];
    if (v != 0) rec.u64(counter_name(c), v);
  }
}

}  // namespace rlt::obs
