// Replayable schedule traces.
//
// A `ScheduleTrace` is the sequence of menu indices a SchedulePolicy
// returned during one run (src/sim/schedule_policy.hpp).  Because every
// decision menu is enumerated deterministically, replaying the indices
// reproduces the run byte-for-byte: same history, same fingerprint, same
// verdict.  Replay is total: an index is reduced modulo the live menu
// size, and a trace shorter than the run falls back to a seeded random
// policy — so every mutation or shrink of a trace is again a valid
// schedule.  That closure property is what hill-climbing mutation and
// delta-debugging shrinking rest on.
//
// Serialization is a compact comma-separated decimal string (embedded in
// a canonical JSONL store record by src/explore/explore.cpp), so traces
// diff cleanly and survive a store round-trip losslessly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rlt::explore {

/// One recorded (or synthesized) schedule: menu indices in decision
/// order.  Indices are interpreted modulo the menu size at replay time.
struct ScheduleTrace {
  std::vector<std::uint32_t> choices;

  [[nodiscard]] bool empty() const noexcept { return choices.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return choices.size(); }

  friend bool operator==(const ScheduleTrace&,
                         const ScheduleTrace&) = default;
};

/// FNV-1a fingerprint of the choice sequence (digest material).
[[nodiscard]] std::uint64_t trace_hash(const ScheduleTrace& t);

/// "3,0,17" (empty string for the empty trace).
[[nodiscard]] std::string encode_trace(const ScheduleTrace& t);

/// Parses encode_trace output; nullopt on any malformed byte.
[[nodiscard]] std::optional<ScheduleTrace> decode_trace(
    const std::string& text);

}  // namespace rlt::explore
