#include "explore/shrink.hpp"

#include <algorithm>

namespace rlt::explore {
namespace {

/// `t` without the half-open index range [begin, end).
ScheduleTrace without_range(const ScheduleTrace& t, std::size_t begin,
                            std::size_t end) {
  ScheduleTrace out;
  out.choices.reserve(t.choices.size() - (end - begin));
  out.choices.insert(out.choices.end(), t.choices.begin(),
                     t.choices.begin() + static_cast<std::ptrdiff_t>(begin));
  out.choices.insert(out.choices.end(),
                     t.choices.begin() + static_cast<std::ptrdiff_t>(end),
                     t.choices.end());
  return out;
}

}  // namespace

ShrinkResult shrink(ScheduleTrace t, const KeepPredicate& keep,
                    std::uint64_t budget) {
  ShrinkResult r;
  auto probe = [&](const ScheduleTrace& candidate) {
    ++r.probes;
    return keep(candidate);
  };

  // ddmin chunk removal down to granularity 1.  Returns true iff the
  // scan ran to completion (granularity 1, no removal possible) within
  // budget; `changed` reports whether anything was removed.
  auto removal_pass = [&](bool& changed) {
    std::size_t chunks = 2;
    while (!t.choices.empty()) {
      if (r.probes >= budget) return false;
      chunks = std::min(chunks, t.choices.size());
      const std::size_t len = t.choices.size();
      bool removed = false;
      for (std::size_t k = 0; k < chunks && r.probes < budget; ++k) {
        // Chunk k covers [k*len/chunks, (k+1)*len/chunks) — an exact
        // integer split, every element in exactly one chunk.
        const std::size_t begin = k * len / chunks;
        const std::size_t end = (k + 1) * len / chunks;
        if (begin == end) continue;
        ScheduleTrace candidate = without_range(t, begin, end);
        if (probe(candidate)) {
          t = std::move(candidate);
          chunks = std::max<std::size_t>(chunks - 1, 2);
          removed = true;
          changed = true;
          break;
        }
      }
      if (removed) continue;
      if (chunks >= t.choices.size()) return true;  // 1-minimal
      chunks = std::min(t.choices.size(), chunks * 2);
    }
    return true;  // empty trace: nothing left to remove
  };

  // Lower surviving choices to 0, the canonical smallest menu index.
  auto lowering_pass = [&](bool& changed) {
    for (std::size_t i = 0; i < t.choices.size(); ++i) {
      if (t.choices[i] == 0) continue;
      if (r.probes >= budget) return false;
      ScheduleTrace candidate = t;
      candidate.choices[i] = 0;
      if (probe(candidate)) {
        t = std::move(candidate);
        changed = true;
      }
    }
    return true;
  };

  // Iterate to a fixpoint: a lowering can unlock a removal and vice
  // versa, and local minimality is only claimed once a full round of
  // both passes completes with no change.
  bool complete = false;
  for (;;) {
    bool changed = false;
    if (!removal_pass(changed)) break;
    if (!lowering_pass(changed)) break;
    if (!changed) {
      complete = true;
      break;
    }
  }

  r.trace = std::move(t);
  r.locally_minimal = complete;
  return r;
}

}  // namespace rlt::explore
