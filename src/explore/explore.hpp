// The exploration lab: adaptive-adversary schedule SEARCH.
//
// Where the sweep engine (src/sweep/) and the termination lab (src/term/)
// *sample* the schedule space — scripted schedules and seeded-random
// adversaries — this subsystem *searches* it.  A search instance fixes a
// workload (a term family for the rounds objective, a register algorithm
// for the violation objective), a process count, and a scheduler seed
// (the coin stream), then spends a budget of runs looking for the
// worst-case schedule under one of two objectives:
//
//  * kRounds    — maximize rounds-to-decide for the term families.  The
//    Theorem 6 regime: on merely linearizable game registers an adaptive
//    adversary can keep the game (and the composed A') running forever;
//    the greedy strategy rediscovers that schedule from observations.
//  * kViolation — hunt Verdict::kViolation / kBlocked for the register
//    families (modeled / Alg2 / Alg4 / ABD).  Correct algorithms should
//    survive the search (assurance); planted ablations (ABD without the
//    read write-back) must be found.
//
// Three strategies: a greedy observing heuristic, hill-climbing mutation
// of recorded traces, and budgeted random restarts.  Every incumbent
// best schedule is captured as a replayable ScheduleTrace; traces whose
// runs exhibit the objective (a violation, a blocked run, a round-cap
// survival) are reduced by the delta-debugging shrinker before they are
// persisted.  Instances run in parallel on the sweep engine's
// work-stealing pool; the summary (and the per-instance store records)
// folds in enumeration order, so — like every aggregate in this repo —
// its digest is a pure function of the options, independent of thread
// count and batch size.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "explore/trace.hpp"
#include "sweep/scenario.hpp"
#include "sweep/shard.hpp"
#include "sweep/store.hpp"
#include "term/term_scenario.hpp"

namespace rlt::obs {
struct Hooks;
}  // namespace rlt::obs

namespace rlt::explore {

enum class Objective : std::uint8_t { kRounds, kViolation };
enum class Strategy : std::uint8_t { kGreedy, kHillClimb, kRandom };

[[nodiscard]] const char* to_string(Objective o) noexcept;
[[nodiscard]] const char* to_string(Strategy s) noexcept;

/// Violation ranks (kViolation outranks kBlocked outranks everything).
/// Public because store records persist the rank as a "found" string and
/// the shard merge maps it back.
inline constexpr int kFoundRankViolation = 3;
inline constexpr int kFoundRankBlocked = 2;

/// One fully determined search instance.
struct ExploreInstance {
  Objective objective = Objective::kRounds;
  Strategy strategy = Strategy::kGreedy;
  /// kRounds: which term family.
  term::Family family = term::Family::kGame;
  /// kViolation: which register algorithm (semantics applies to kModeled;
  /// the game registers of a kRounds probe are always kLinearizable).
  sweep::Algorithm algorithm = sweep::Algorithm::kAbd;
  sim::Semantics semantics = sim::Semantics::kLinearizable;
  int processes = 4;
  int max_rounds = 16;          ///< kRounds: round budget.
  int writes_per_process = 2;   ///< kViolation: writer workload.
  std::uint64_t max_actions = 2'000'000;
  std::uint64_t seed = 0;       ///< Coin stream + search randomness root.
  int search_budget = 32;       ///< Runs this instance may spend.
  std::uint64_t shrink_budget = 4096;  ///< Shrink replays (0 = no shrink).
  /// Ablation knob (tests/CI): disables ABD's read write-back, planting
  /// genuine violations for the search to find.  Marked in key().
  bool abd_read_write_back = true;
  /// kViolation + kAbd: the driver appends budgeted fault injections
  /// (drop, duplicate, crash, recover) to the schedule menu, so the
  /// search hunts worst-case fault schedules too (Scenario::
  /// explore_faults).  Changes behaviour, so it is marked in key().
  bool fault_menu = false;
  /// kViolation: streaming cross-check of every probed history (see
  /// Scenario::online_check).  Excluded from key() for the same
  /// byte-identical-on-agreement reason.
  bool online = false;
  /// kViolation: capture forensics on probes (Scenario::forensics), so
  /// a replay's report carries the witness's canonical-JSON explanation.
  /// Excluded from key(), like `online`: pure observability.
  bool forensics = false;

  /// Stable key, e.g. "explore/rounds/game/greedy/p4/r16/b32/seed0" or
  /// "explore/viol/abd/hill/p5/w2/b128/nowb/fmenu/seed0".
  [[nodiscard]] std::string key() const;
};

/// What one search instance produced.  Everything except `wall_ns` is a
/// pure function of the instance.
struct ExploreOutcome {
  std::uint64_t best_score = 0;
  /// kViolation: 3 = violation found, 2 = blocked found, 0 = neither.
  int found_rank = 0;
  /// Replay fingerprint of the best (post-shrink) trace: history hash
  /// for kViolation, outcome hash for kRounds.
  std::uint64_t fingerprint = 0;
  /// The incumbent best schedule (post-shrink when shrinking applied).
  ScheduleTrace best_trace;
  std::uint64_t trace_fnv = 0;   ///< trace_hash(best_trace).
  /// Seed of the replay fallback stream (trace.hpp); persisting it makes
  /// shrunk (shorter-than-run) traces replay deterministically.
  std::uint64_t fallback_seed = 0;
  std::uint32_t runs = 0;         ///< Search runs actually executed.
  std::uint64_t total_steps = 0;  ///< Across all search runs.
  std::size_t unshrunk_len = 0;   ///< Best trace length before shrinking.
  bool shrunk = false;            ///< A shrink pass ran.
  bool locally_minimal = false;   ///< The shrink reached a fixpoint.
  std::uint64_t shrink_probes = 0;
  bool error = false;
  std::string detail;
  std::uint64_t wall_ns = 0;  ///< Measured; NOT digest material.
};

/// Runs one search instance to completion.  Deterministic (modulo
/// wall_ns); never throws — failures become error outcomes.
[[nodiscard]] ExploreOutcome run_explore_instance(const ExploreInstance& e);

/// Replays `trace` against the instance's workload and reports the same
/// deterministic fields a search run would.  The building block for
/// counterexample reproduction (and the record→replay→re-record tests).
struct ReplayReport {
  std::uint64_t score = 0;
  int rank = 0;                ///< kViolation rank (0 for kRounds).
  std::uint64_t fingerprint = 0;
  std::uint64_t steps = 0;
  ScheduleTrace effective;     ///< Re-recorded effective trace.
  std::string verdict;         ///< Human-readable outcome.
  /// Canonical-JSON forensics artifact of the replayed run; non-empty
  /// only when the instance set `forensics` and the run was non-ok.
  std::string forensics;
};
[[nodiscard]] ReplayReport replay_trace(const ExploreInstance& e,
                                        const ScheduleTrace& trace,
                                        std::uint64_t fallback_seed);

/// The search cross-product plus execution knobs.
struct ExploreOptions {
  Objective objective = Objective::kRounds;
  Strategy strategy = Strategy::kGreedy;
  /// kRounds axes:
  std::vector<term::Family> families = {term::Family::kGame};
  std::vector<int> round_budgets = {16};
  /// kViolation axes:
  std::vector<sweep::Algorithm> algorithms = {sweep::Algorithm::kAbd};
  int writes_per_process = 2;
  bool abd_read_write_back = true;
  /// Offer fault injections on every kAbd instance's schedule menu
  /// (--fault-menu; non-abd targets ignore it like the ablation knob).
  bool fault_menu = false;
  /// Streaming cross-check on every kViolation probe (--online).
  bool online = false;
  /// Write a forensics artifact per found witness (--forensics DIR via
  /// obs::Hooks::forensics_dir): the fold replays each shrunk violation-
  /// objective witness with Scenario::forensics on, so the shrunk trace
  /// ships with its explanation.  Execution knob, not config.
  bool forensics = false;
  /// Shared:
  std::vector<int> process_counts = {4};
  std::uint64_t seed_begin = 0;  ///< Inclusive (instance seeds).
  std::uint64_t seed_end = 4;    ///< Exclusive.
  int search_budget = 32;
  std::uint64_t shrink_budget = 4096;
  std::uint64_t max_actions_per_run = 2'000'000;
  int threads = 1;
  /// Instances per pool task (instances are heavy; default 1).
  int batch_size = 1;
  /// Which slice of the instance list this process runs (see
  /// sweep/shard.hpp); an execution knob, not config.
  sweep::ShardSpec shard;
};

/// The canonical config identity of an exploration (axes only, no
/// execution knobs) — pinned in shard-store headers and checked by the
/// merge.
[[nodiscard]] std::string config_key(const ExploreOptions& o);

/// This shard's slice plus the bookkeeping the store and merge need
/// (see sweep::Enumeration for the contract).
struct ExploreEnumeration {
  std::uint64_t total = 0;
  std::vector<std::uint64_t> global_indices;
  std::vector<ExploreInstance> instances;
};

/// Materializes this shard's slice of the instance list (seeds
/// outermost, like the sweeps; round robin spreads every config across
/// shards).
[[nodiscard]] ExploreEnumeration enumerate_explore_shard(
    const ExploreOptions& o);

/// The owned instances alone; the full list under the default shard.
[[nodiscard]] std::vector<ExploreInstance> enumerate_explore_instances(
    const ExploreOptions& o);

/// Aggregated, thread-count-stable outcome of an exploration.
struct ExploreSummary {
  std::uint64_t instances = 0;
  std::uint64_t search_runs = 0;
  std::uint64_t violations_found = 0;  ///< Instances whose best is kViolation.
  std::uint64_t blocked_found = 0;     ///< ... whose best is kBlocked.
  std::uint64_t shrunk_traces = 0;
  std::uint64_t errors = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t best_score = 0;   ///< Max over instances.
  std::string best_key;           ///< First instance attaining it.
  /// Stable digest over every instance outcome in enumeration order.
  std::uint64_t digest = 0;
  /// Measured, NOT digest material:
  std::uint64_t wall_ns_total = 0;
  std::uint64_t elapsed_ns = 0;
  std::uint64_t steals = 0;
  std::vector<std::string> failures;
  std::uint64_t failures_truncated = 0;

  /// Deterministic section, byte-identical across runs/threads/batches.
  [[nodiscard]] std::string stable_text() const;
};

/// The deterministic half of the exploration aggregate as a composable
/// fold (the sweep::SweepFold counterpart): feed it, in global
/// enumeration order, exactly the per-instance fields the store
/// persists, and it reproduces the unsharded summary — including the
/// first-instance best_key tie-break — whether the outcomes came from
/// the pool or from N merged shard stores.
class ExploreFold {
 public:
  static constexpr std::size_t kMaxReportedFailures = 16;

  /// The persisted per-instance fields the fold consumes (the
  /// digest material plus the failure detail).
  struct Item {
    std::uint64_t best_score = 0;
    int found_rank = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t trace_fnv = 0;
    std::uint64_t runs = 0;
    std::uint64_t total_steps = 0;
    bool shrunk = false;
    bool locally_minimal = false;
    std::uint64_t shrink_probes = 0;
    bool error = false;
    std::string detail;
  };

  ExploreFold();

  void add(const std::string& key, const Item& it);

  /// The folded summary (timing fields zero).
  [[nodiscard]] ExploreSummary finish();

 private:
  ExploreSummary sum_;
  std::uint64_t index_ = 0;  ///< Global enumeration index of the next add.
};

/// Runs the search on `o.threads` pool workers.  When `sink` is
/// non-null, one canonical record per instance — including the encoded
/// best trace, replayable via replay_trace / sweep_main --replay — is
/// appended in enumeration order after the pool drains.  `hooks`
/// (obs/hooks.hpp) attaches the observability fabric — trace spans
/// and/or live progress; never digest material (see sweep::run_sweep).
[[nodiscard]] ExploreSummary run_explore(const ExploreOptions& o,
                                         std::uint64_t progress_every = 0,
                                         sweep::RecordSink* sink = nullptr,
                                         const obs::Hooks* hooks = nullptr);

/// Rebuilds an instance + trace from a store record line written by
/// run_explore (the "--replay" path).  Returns nullopt (with an error in
/// `*error`) if the line is not an explore record.
struct PersistedTrace {
  ExploreInstance instance;
  ScheduleTrace trace;
  std::uint64_t fallback_seed = 0;
  std::uint64_t fingerprint = 0;  ///< Expected replay fingerprint.
  std::uint64_t best_score = 0;   ///< Expected replay score.
};
[[nodiscard]] std::optional<PersistedTrace> parse_explore_record(
    const std::string& line, std::string* error);

}  // namespace rlt::explore
