// The exploration lab's concrete schedule policies.
//
// Every policy here *records*: the effective menu index of each decision
// it makes is appended to an internal ScheduleTrace, so any run — random,
// greedy, or a replayed mutant — can be reproduced exactly by replaying
// its recorded trace (record → replay → re-record is a fixed point).
// Policies also track an observation the violation objective uses as a
// search gradient: the peak number of concurrent pending operations (or
// in-flight messages, for the ABD driver) seen across the run.
//
//  * RandomPolicy — uniform over the menu; the budgeted-restart baseline.
//  * ReplayPolicy — replays a trace (index mod menu size) and falls back
//    to a seeded random continuation when the trace runs out.  Mutants
//    and shrunk traces run through this.
//  * GreedyRoundsPolicy — the adaptive adversary for the rounds
//    objective.  Against the game-register families on merely
//    linearizable registers it rediscovers the Theorem 6 schedule from
//    observations alone: it keeps one host's write pending to maximize
//    concurrent uncommitted writes, watches the coin log, and then picks
//    read linearizations that keep every player in the game — forever.
//    For families without the game's register pattern it degrades to a
//    lockstep rule (step the least-advanced process) that delays whoever
//    is closest to deciding.
//  * GreedyViolationPolicy — the adaptive adversary for the violation
//    objective.  Simulator families: maximize operation overlap (prefer
//    steps while any process can still invoke) and serve reads
//    alternately newest/oldest value to provoke new/old inversions.
//    ABD: the new/old-inversion generator — park every write on a
//    sub-quorum of servers (so it stays pending and only a minority
//    holds the new timestamp), serialize the reads, and steer each
//    read's quorum alternately through servers that did and did not see
//    the write.  Without the read write-back this produces a
//    fresh-then-stale read pair on the first try; with it, ABD defends
//    itself and the search comes home empty — which is the point.
#pragma once

#include <cstdint>
#include <vector>

#include "explore/trace.hpp"
#include "sim/schedule_policy.hpp"
#include "util/rng.hpp"

namespace rlt::explore {

/// Common recording + observation base.  Subclasses implement the
/// decision hooks; the base notes every effective choice.
class RecordingPolicy : public sim::SchedulePolicy {
 public:
  std::size_t pick(sim::Scheduler& sched,
                   const std::vector<sim::Action>& menu) final;
  std::size_t pick_split(const sim::SplitMenu& menu) final;

  /// The effective choices made so far (menu indices in decision order).
  [[nodiscard]] const ScheduleTrace& recorded() const noexcept {
    return recorded_;
  }
  /// Peak concurrent pending ops / in-flight messages observed.
  [[nodiscard]] std::uint64_t peak_pending() const noexcept {
    return peak_pending_;
  }

 protected:
  virtual std::size_t decide(sim::Scheduler& sched,
                             const std::vector<sim::Action>& menu) = 0;
  virtual std::size_t decide_split(const sim::SplitMenu& menu) = 0;

 private:
  ScheduleTrace recorded_;
  std::uint64_t peak_pending_ = 0;
};

/// Uniform random over the menu (seeded).
class RandomPolicy final : public RecordingPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

 protected:
  std::size_t decide(sim::Scheduler& sched,
                     const std::vector<sim::Action>& menu) override;
  std::size_t decide_split(const sim::SplitMenu& menu) override;

 private:
  util::Rng rng_;
};

/// Replays `trace` (index mod menu size); random continuation seeded
/// with `fallback_seed` once the trace is exhausted.  Total: any choice
/// sequence is a valid schedule under this policy.
class ReplayPolicy final : public RecordingPolicy {
 public:
  ReplayPolicy(ScheduleTrace trace, std::uint64_t fallback_seed)
      : trace_(std::move(trace)), fallback_(fallback_seed) {}

 protected:
  std::size_t decide(sim::Scheduler& sched,
                     const std::vector<sim::Action>& menu) override;
  std::size_t decide_split(const sim::SplitMenu& menu) override;

 private:
  [[nodiscard]] std::size_t next_index(std::size_t menu_size);

  ScheduleTrace trace_;
  std::size_t pos_ = 0;
  util::Rng fallback_;
};

/// Greedy adaptive adversary maximizing rounds-to-decide (see file
/// comment).  `game_aware` enables the game-register rule set (the
/// kGame / kComposed families); `jitter_den` > 0 makes roughly 1 in
/// `jitter_den` decisions uniformly random (seeded) so repeated greedy
/// runs within one search instance explore distinct schedules.
class GreedyRoundsPolicy final : public RecordingPolicy {
 public:
  GreedyRoundsPolicy(bool game_aware, std::uint64_t jitter_seed,
                     std::uint32_t jitter_den)
      : game_aware_(game_aware), jitter_den_(jitter_den), rng_(jitter_seed) {}

 protected:
  std::size_t decide(sim::Scheduler& sched,
                     const std::vector<sim::Action>& menu) override;
  std::size_t decide_split(const sim::SplitMenu& menu) override;

 private:
  /// Per-player game bookkeeping, maintained from the choices this
  /// policy itself schedules (the adversary's own observation log).
  struct PlayerState {
    int round = 0;        ///< Current game round (0 = not started).
    int r1_reads = 0;     ///< R1 reads served this round (0, 1, or 2).
    bool c_read = false;  ///< C read served this round (gate to phase 2).
    bool r2_reset = false;  ///< Line-31 write (R2 := 0) landed this round.
    /// Counter read served but the line-34 increment not yet written:
    /// other increment chains must wait (two concurrent reads would both
    /// see the same count and lose an increment).
    bool mid_increment = false;
  };

  [[nodiscard]] std::size_t decide_game(
      sim::Scheduler& sched, const std::vector<sim::Action>& menu);
  [[nodiscard]] std::size_t decide_lockstep(
      sim::Scheduler& sched, const std::vector<sim::Action>& menu);
  void update_book(sim::Scheduler& sched, const sim::Action& chosen);

  bool game_aware_;
  std::uint32_t jitter_den_;
  util::Rng rng_;
  std::vector<PlayerState> players_;
  int host_round_[2] = {0, 0};  ///< Hosts' rounds (from their R1 writes).
  std::vector<std::uint64_t> steps_taken_;
};

/// Greedy adaptive adversary hunting kViolation/kBlocked (see file
/// comment).  `jitter_den` as in GreedyRoundsPolicy.
class GreedyViolationPolicy final : public RecordingPolicy {
 public:
  GreedyViolationPolicy(std::uint64_t jitter_seed, std::uint32_t jitter_den)
      : jitter_den_(jitter_den), rng_(jitter_seed) {}

 protected:
  std::size_t decide(sim::Scheduler& sched,
                     const std::vector<sim::Action>& menu) override;
  std::size_t decide_split(const sim::SplitMenu& menu) override;

 private:
  std::uint32_t jitter_den_;
  util::Rng rng_;
  std::vector<std::uint64_t> steps_taken_;
  bool serve_newest_ = true;  ///< Alternates read-value targeting.
  /// ABD quorum steering (see decide_split): node count inferred from
  /// envelopes, per-node quorum assignment, and the hi/lo alternator.
  int abd_nodes_ = 0;
  bool abd_toggle_hi_ = true;
  std::vector<bool> abd_quorum_hi_;
};

}  // namespace rlt::explore
