#include "explore/trace.hpp"

#include <limits>

#include "sweep/fnv.hpp"

namespace rlt::explore {

std::uint64_t trace_hash(const ScheduleTrace& t) {
  std::uint64_t h = sweep::kFnvOffset;
  sweep::fnv_mix_u64(h, t.choices.size());
  for (const std::uint32_t c : t.choices) {
    sweep::fnv_mix_u64(h, c);
  }
  return h;
}

std::string encode_trace(const ScheduleTrace& t) {
  std::string out;
  out.reserve(t.choices.size() * 3);
  for (std::size_t i = 0; i < t.choices.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(t.choices[i]);
  }
  return out;
}

std::optional<ScheduleTrace> decode_trace(const std::string& text) {
  ScheduleTrace t;
  if (text.empty()) return t;
  std::uint64_t value = 0;
  bool in_number = false;
  for (const char ch : text) {
    if (ch >= '0' && ch <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(ch - '0');
      if (value > std::numeric_limits<std::uint32_t>::max()) {
        return std::nullopt;
      }
      in_number = true;
    } else if (ch == ',') {
      if (!in_number) return std::nullopt;  // empty element
      t.choices.push_back(static_cast<std::uint32_t>(value));
      value = 0;
      in_number = false;
    } else {
      return std::nullopt;
    }
  }
  if (!in_number) return std::nullopt;  // trailing comma
  t.choices.push_back(static_cast<std::uint32_t>(value));
  return t;
}

}  // namespace rlt::explore
