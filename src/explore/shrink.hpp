// Counterexample shrinking: ddmin over schedule traces.
//
// Given a trace whose replay exhibits a property (a checker violation, a
// blocked run, a round-cap survival) and a predicate that replays a
// candidate and reports whether the property still holds, `shrink`
// reduces the trace with classic delta debugging [Zeller & Hildebrandt]:
//
//  1. chunk removal at geometrically refined granularity (ddmin), which
//     also truncates tails — a counterexample usually manifests early
//     and drags a long irrelevant suffix behind it;
//  2. a choice-lowering pass that rewrites surviving entries to 0 (the
//     canonical smallest menu index).
//
// The result is *locally minimal* when both passes complete: removing
// any single remaining choice, or lowering any remaining entry to 0,
// loses the property.  Replay totality (indices mod menu size, seeded
// fallback after exhaustion — see trace.hpp) guarantees every candidate
// is a valid schedule, so the predicate never has to reject for shape.
//
// Every predicate call replays a full run, so the pass is budgeted;
// exhausting the budget returns the best trace found so far with
// `locally_minimal = false`.
#pragma once

#include <cstdint>
#include <functional>

#include "explore/trace.hpp"

namespace rlt::explore {

/// Replays a candidate; true iff the property of interest still holds.
using KeepPredicate = std::function<bool(const ScheduleTrace&)>;

struct ShrinkResult {
  ScheduleTrace trace;       ///< Reduced trace (still satisfies `keep`).
  std::uint64_t probes = 0;  ///< Predicate calls spent.
  bool locally_minimal = false;  ///< Both passes ran to completion.
};

/// Reduces `t` (which must satisfy `keep`) spending at most `budget`
/// predicate calls.  Deterministic: same inputs, same result.
[[nodiscard]] ShrinkResult shrink(ScheduleTrace t, const KeepPredicate& keep,
                                  std::uint64_t budget);

}  // namespace rlt::explore
