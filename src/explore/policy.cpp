#include "explore/policy.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "game/encoding.hpp"
#include "util/assert.hpp"

namespace rlt::explore {
namespace {

using sim::Action;
using sim::OpKind;
using sim::PendingOpInfo;

/// Pending-op metadata keyed by op id (one scheduler snapshot per pick).
using PendingMap = std::map<int, PendingOpInfo>;

PendingMap snapshot_pending(sim::Scheduler& sched) {
  PendingMap out;
  for (const PendingOpInfo& info : sched.pending_ops()) {
    out.emplace(info.op_id, info);
  }
  return out;
}

/// Menu index of the minimal-commitment choice for `op_id` (the
/// adversary commits as little and as late as possible, like the
/// Theorem 6 script).  npos if the op has no menu entry.
std::size_t min_commit_index(const std::vector<Action>& menu, int op_id) {
  std::size_t best = std::string::npos;
  std::size_t best_commit = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < menu.size(); ++i) {
    const Action& a = menu[i];
    if (a.kind != Action::Kind::kRespond || a.op_id != op_id) continue;
    if (a.choice.commit_extension.size() < best_commit) {
      best_commit = a.choice.commit_extension.size();
      best = i;
    }
  }
  return best;
}

/// Menu index of the minimal-commitment choice for `op_id` returning
/// exactly `value`; npos if no choice yields it.
std::size_t value_index(const std::vector<Action>& menu, int op_id,
                        sim::Value value) {
  std::size_t best = std::string::npos;
  std::size_t best_commit = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < menu.size(); ++i) {
    const Action& a = menu[i];
    if (a.kind != Action::Kind::kRespond || a.op_id != op_id) continue;
    if (a.choice.value != value) continue;
    if (a.choice.commit_extension.size() < best_commit) {
      best_commit = a.choice.commit_extension.size();
      best = i;
    }
  }
  return best;
}

/// Menu index of the extreme-value choice for `op_id` (`largest` picks
/// the maximum value, else the minimum), minimal commitment on ties.
std::size_t extreme_value_index(const std::vector<Action>& menu, int op_id,
                                bool largest) {
  std::size_t best = std::string::npos;
  sim::Value best_value = 0;
  for (std::size_t i = 0; i < menu.size(); ++i) {
    const Action& a = menu[i];
    if (a.kind != Action::Kind::kRespond || a.op_id != op_id) continue;
    if (best == std::string::npos ||
        (largest ? a.choice.value > best_value
                 : a.choice.value < best_value)) {
      best_value = a.choice.value;
      best = i;
    }
  }
  return best;
}

/// Index of the step entry for process `p`; npos if not steppable.
std::size_t step_index(const std::vector<Action>& menu, sim::ProcessId p) {
  for (std::size_t i = 0; i < menu.size(); ++i) {
    if (menu[i].kind == Action::Kind::kStep && menu[i].process == p) return i;
  }
  return std::string::npos;
}

/// First respond entry in menu order, minimal commitment for its op —
/// the guaranteed-progress fallback.
std::size_t any_respond_index(const std::vector<Action>& menu) {
  for (std::size_t i = 0; i < menu.size(); ++i) {
    if (menu[i].kind == Action::Kind::kRespond) {
      return min_commit_index(menu, menu[i].op_id);
    }
  }
  return std::string::npos;
}

}  // namespace

// ---- RecordingPolicy ----------------------------------------------------

std::size_t RecordingPolicy::pick(sim::Scheduler& sched,
                                  const std::vector<sim::Action>& menu) {
  peak_pending_ = std::max(peak_pending_,
                           static_cast<std::uint64_t>(
                               sched.pending_ops().size()));
  const std::size_t i = decide(sched, menu);
  RLT_CHECK_MSG(i < menu.size(), "policy decision out of range");
  recorded_.choices.push_back(static_cast<std::uint32_t>(i));
  return i;
}

std::size_t RecordingPolicy::pick_split(const sim::SplitMenu& menu) {
  peak_pending_ = std::max(
      peak_pending_, static_cast<std::uint64_t>(menu.deliveries.size()));
  const std::size_t i = decide_split(menu);
  RLT_CHECK_MSG(i < menu.size(), "policy decision out of range");
  recorded_.choices.push_back(static_cast<std::uint32_t>(i));
  return i;
}

// ---- RandomPolicy -------------------------------------------------------

std::size_t RandomPolicy::decide(sim::Scheduler&,
                                 const std::vector<sim::Action>& menu) {
  return static_cast<std::size_t>(rng_.uniform(menu.size()));
}

std::size_t RandomPolicy::decide_split(const sim::SplitMenu& menu) {
  return static_cast<std::size_t>(rng_.uniform(menu.size()));
}

// ---- ReplayPolicy -------------------------------------------------------

std::size_t ReplayPolicy::next_index(std::size_t menu_size) {
  if (pos_ < trace_.choices.size()) {
    return trace_.choices[pos_++] % menu_size;
  }
  return static_cast<std::size_t>(fallback_.uniform(menu_size));
}

std::size_t ReplayPolicy::decide(sim::Scheduler&,
                                 const std::vector<sim::Action>& menu) {
  return next_index(menu.size());
}

std::size_t ReplayPolicy::decide_split(const sim::SplitMenu& menu) {
  return next_index(menu.size());
}

// ---- GreedyRoundsPolicy -------------------------------------------------

std::size_t GreedyRoundsPolicy::decide(sim::Scheduler& sched,
                                       const std::vector<sim::Action>& menu) {
  if (players_.empty()) {
    players_.resize(static_cast<std::size_t>(sched.process_count()));
    steps_taken_.resize(static_cast<std::size_t>(sched.process_count()), 0);
  }
  std::size_t chosen;
  if (jitter_den_ > 0 && rng_.chance(1, jitter_den_)) {
    chosen = static_cast<std::size_t>(rng_.uniform(menu.size()));
  } else {
    chosen = game_aware_ ? decide_game(sched, menu)
                         : decide_lockstep(sched, menu);
  }
  update_book(sched, menu[chosen]);
  return chosen;
}

std::size_t GreedyRoundsPolicy::decide_split(const sim::SplitMenu& menu) {
  // The rounds objective never drives the message-passing family; if it
  // ever does, favor starting work (conservative, deterministic).
  if (jitter_den_ > 0 && rng_.chance(1, jitter_den_)) {
    return static_cast<std::size_t>(rng_.uniform(menu.size()));
  }
  return 0;  // first start if any, else the oldest delivery
}

std::size_t GreedyRoundsPolicy::decide_game(
    sim::Scheduler& sched, const std::vector<sim::Action>& menu) {
  const int n = sched.process_count();
  const PendingMap pending = snapshot_pending(sched);
  const auto& coins = sched.coin_log();
  const int coins_flipped = static_cast<int>(coins.size());

  // Respond rules, scanned over pending ops in age order.  Each op gets
  // a priority; delayed ops (the heart of the schedule: p1's R1 write,
  // the hosts' R2 reads, reads whose round's coin is still unflipped)
  // get none and fall through to the step rules below.
  std::size_t best = std::string::npos;
  int best_priority = 0;
  for (const auto& [op_id, info] : pending) {
    const bool is_player = info.process >= 2;
    int priority = 0;
    std::size_t index = std::string::npos;
    if (info.kind == OpKind::kWrite) {
      if (is_player) {
        // Players' writes (the ⊥s, the R2 resets, the increments)
        // complete immediately, like the script's Phase 1/2.
        priority = 9;
        index = min_commit_index(menu, op_id);
      } else if (info.process == 1 && info.reg == game::kR1) {
        // w1 stays pending — "maximize concurrent uncommitted writes" —
        // until every player's first R1 read of its round was served, so
        // the write order is still open when the coin is revealed.
        const int j = info.value == game::kBot
                          ? 0
                          : game::r1_round(info.value);
        bool players_served = true;
        for (int p = 2; p < n && players_served; ++p) {
          if (sched.process_done(p)) continue;
          const PlayerState& ps = players_[static_cast<std::size_t>(p)];
          if (ps.round < j || (ps.round == j && ps.r1_reads < 1)) {
            players_served = false;
          }
        }
        if (players_served) {
          priority = 8;
          index = min_commit_index(menu, op_id);
        }
      } else {
        // p0's R1 write (so the coin flip can happen), the C write, the
        // hosts' R2 resets: respond promptly, minimal commitment.
        priority = 8;
        index = min_commit_index(menu, op_id);
      }
    } else if (is_player && info.reg == game::kR1) {
      // A player's R1 read: served only once its round's coin is known
      // AND the targeted value — [c, j] (first read) / [1-c, j] (second
      // read), the adaptive rediscovery of Theorem 6's Cases 1/2 — is
      // feasible.  Until then the read is simply delayed: the hosts'
      // writes that make the target feasible are still on their way.
      const int j = players_[static_cast<std::size_t>(info.process)].round;
      if (j >= 1 && coins_flipped >= j) {
        const int c = coins[static_cast<std::size_t>(j - 1)].outcome;
        const int reads =
            players_[static_cast<std::size_t>(info.process)].r1_reads;
        const sim::Value target =
            game::host_r1_value(reads == 0 ? c : 1 - c, j, false);
        const std::size_t at = value_index(menu, op_id, target);
        if (at != std::string::npos) {
          priority = 7;
          index = at;
        }
      }
    } else if (is_player && info.reg == game::kC) {
      // Delayed until p0's C write of this round landed, so the read
      // returns c rather than a leftover ⊥.
      const int j = players_[static_cast<std::size_t>(info.process)].round;
      if (j >= 1 && coins_flipped >= j) {
        const int c = coins[static_cast<std::size_t>(j - 1)].outcome;
        const std::size_t at = value_index(menu, op_id, c);
        if (at != std::string::npos) {
          priority = 7;
          index = at;
        }
      }
    } else if (is_player && info.reg == game::kR2) {
      // Line 32 counter read: delayed until every live player's line-31
      // reset landed (a straggler's R2 := 0 would wipe increments that
      // already happened — Figure 2's ordering, rediscovered).  The
      // increment chains then run sequentially, so the maximal feasible
      // value is the accumulated count.
      const int jp = players_[static_cast<std::size_t>(info.process)].round;
      bool resets_done = true;
      bool chain_free = true;
      for (int q = 2; q < n; ++q) {
        if (sched.process_done(q)) continue;
        const PlayerState& qs = players_[static_cast<std::size_t>(q)];
        if (qs.round < jp || (qs.round == jp && !qs.r2_reset)) {
          resets_done = false;
        }
        if (q != info.process && qs.mid_increment) chain_free = false;
      }
      if (resets_done && chain_free) {
        priority = 6;
        index = extreme_value_index(menu, op_id, /*largest=*/true);
      }
    } else if (!is_player && info.reg == game::kR2) {
      // Line 11: hold the host's read open across the increments and
      // release it only once n-2 is feasible AND every live player has
      // opened its next round — a player whose increment responded but
      // whose coroutine has not resumed yet has not yet executed the
      // line-34 bookkeeping Lemma 17 asserts against.
      const int jh = host_round_[info.process == 0 ? 0 : 1];
      bool players_past = true;
      for (int q = 2; q < n && players_past; ++q) {
        if (sched.process_done(q)) continue;
        if (players_[static_cast<std::size_t>(q)].round <= jh) {
          players_past = false;
        }
      }
      const std::size_t max_i =
          extreme_value_index(menu, op_id, /*largest=*/true);
      if (players_past && max_i != std::string::npos &&
          menu[max_i].choice.value >= n - 2) {
        priority = 5;
        index = max_i;
      }
    } else {
      // Registers outside the game pattern (a composed run's consensus
      // phase, should it ever use interval semantics): respond promptly.
      priority = 4;
      index = min_commit_index(menu, op_id);
    }
    if (priority > best_priority && index != std::string::npos) {
      best_priority = priority;
      best = index;
    }
  }
  if (best != std::string::npos) return best;

  // Step rules: players first (ascending), gated out of phase 2 until
  // both hosts parked a pending R2 read at line 11 (so the hosts' R2
  // resets land before any increment); then p1 (so w1 is invoked and
  // pending before w0 responds); p0 last.
  bool hosts_parked = true;
  for (int h = 0; h < 2 && h < n; ++h) {
    bool parked = false;
    for (const auto& [op_id, info] : pending) {
      if (info.process == h && info.kind == OpKind::kRead &&
          info.reg == game::kR2) {
        parked = true;
      }
    }
    if (!parked) hosts_parked = false;
  }
  for (int p = 2; p < n; ++p) {
    if (players_[static_cast<std::size_t>(p)].c_read && !hosts_parked) {
      continue;  // wait for the hosts to pass line 10
    }
    const std::size_t i = step_index(menu, p);
    if (i != std::string::npos) return i;
  }
  for (const int h : {1, 0}) {
    const std::size_t i = step_index(menu, h);
    if (i != std::string::npos) return i;
  }
  // Everything is delayed or gated: break the quietest delay rather than
  // stall (a dead player can make a delay condition unsatisfiable).
  const std::size_t r = any_respond_index(menu);
  if (r != std::string::npos) return r;
  return 0;  // only gated steps remain: take the first
}

std::size_t GreedyRoundsPolicy::decide_lockstep(
    sim::Scheduler& sched, const std::vector<sim::Action>& menu) {
  // "Delay the process closest to deciding": keep processes in lockstep
  // by always stepping the least-advanced one, which maximizes how long
  // races (consensus ties, coin drift near zero) stay open.
  std::size_t best = std::string::npos;
  std::uint64_t best_steps = 0;
  for (std::size_t i = 0; i < menu.size(); ++i) {
    if (menu[i].kind != Action::Kind::kStep) continue;
    const std::uint64_t taken =
        steps_taken_[static_cast<std::size_t>(menu[i].process)];
    if (best == std::string::npos || taken < best_steps) {
      best = i;
      best_steps = taken;
    }
  }
  if (best != std::string::npos) return best;
  const std::size_t r = any_respond_index(menu);
  if (r != std::string::npos) return r;
  (void)sched;
  return 0;
}

void GreedyRoundsPolicy::update_book(sim::Scheduler& sched,
                                     const sim::Action& chosen) {
  if (chosen.kind == Action::Kind::kStep) {
    steps_taken_[static_cast<std::size_t>(chosen.process)] += 1;
    return;
  }
  if (chosen.process < 2) {
    // Host round tracking: the round is encoded in the host's R1 write.
    for (const PendingOpInfo& info : sched.pending_ops()) {
      if (info.op_id == chosen.op_id && info.kind == OpKind::kWrite &&
          info.reg == game::kR1 && info.value != game::kBot) {
        host_round_[chosen.process == 0 ? 0 : 1] =
            game::r1_round(info.value);
      }
    }
    return;
  }
  // Look the op up pre-apply: the scheduler state still has it pending.
  for (const PendingOpInfo& info : sched.pending_ops()) {
    if (info.op_id != chosen.op_id) continue;
    PlayerState& ps = players_[static_cast<std::size_t>(chosen.process)];
    if (info.kind == OpKind::kWrite && info.reg == game::kR1 &&
        info.value == game::kBot) {
      // The ⊥ write opens the player's next round.
      ps.round += 1;
      ps.r1_reads = 0;
      ps.c_read = false;
      ps.r2_reset = false;
    } else if (info.kind == OpKind::kWrite && info.reg == game::kR2) {
      if (info.value == 0) {
        // Line 31 (increments write >= 1, so value 0 is always the reset).
        ps.r2_reset = true;
      } else {
        ps.mid_increment = false;  // line 34 landed; release the chain
      }
    } else if (info.kind == OpKind::kRead && info.reg == game::kR2) {
      ps.mid_increment = true;  // line 32 served; increment in flight
    } else if (info.kind == OpKind::kRead && info.reg == game::kR1) {
      ps.r1_reads = std::min(ps.r1_reads + 1, 2);
    } else if (info.kind == OpKind::kRead && info.reg == game::kC) {
      ps.c_read = true;
    }
    return;
  }
}

// ---- GreedyViolationPolicy ----------------------------------------------

std::size_t GreedyViolationPolicy::decide(
    sim::Scheduler& sched, const std::vector<sim::Action>& menu) {
  if (steps_taken_.empty()) {
    steps_taken_.resize(static_cast<std::size_t>(sched.process_count()), 0);
  }
  if (jitter_den_ > 0 && rng_.chance(1, jitter_den_)) {
    return static_cast<std::size_t>(rng_.uniform(menu.size()));
  }
  const PendingMap pending = snapshot_pending(sched);
  std::size_t pending_writes = 0;
  for (const auto& [op_id, info] : pending) {
    if (info.kind == OpKind::kWrite) ++pending_writes;
  }
  // Maximize overlap: keep stepping (invoking) while processes can, but
  // retire writes beyond a small concurrency cap — the WSL model's write
  // menus are factorial in the uncommitted-write count.
  if (pending_writes < 3) {
    std::size_t best = std::string::npos;
    std::uint64_t best_steps = 0;
    for (std::size_t i = 0; i < menu.size(); ++i) {
      if (menu[i].kind != Action::Kind::kStep) continue;
      const std::uint64_t taken =
          steps_taken_[static_cast<std::size_t>(menu[i].process)];
      if (best == std::string::npos || taken < best_steps) {
        best = i;
        best_steps = taken;
      }
    }
    if (best != std::string::npos) {
      steps_taken_[static_cast<std::size_t>(menu[best].process)] += 1;
      return best;
    }
  }
  // Respond: writes first (minimal commitment), then reads served
  // alternately newest-/oldest-feasible value — the new/old inversion
  // generator.
  for (const auto& [op_id, info] : pending) {
    if (info.kind != OpKind::kWrite) continue;
    const std::size_t i = min_commit_index(menu, op_id);
    if (i != std::string::npos) return i;
  }
  for (const auto& [op_id, info] : pending) {
    if (info.kind != OpKind::kRead) continue;
    const std::size_t i = extreme_value_index(menu, op_id, serve_newest_);
    if (i != std::string::npos) {
      serve_newest_ = !serve_newest_;
      return i;
    }
  }
  return 0;  // only steps remain (write cap active): take the first
}

std::size_t GreedyViolationPolicy::decide_split(const sim::SplitMenu& menu) {
  // ABD's message grammar (mp/abd.cpp): 1 = write/write-back request,
  // 2 = write ack, 3 = read query, 4 = read reply.
  constexpr std::int64_t kMsgWrite = 1;
  constexpr std::int64_t kMsgRead = 3;
  if (jitter_den_ > 0 && rng_.chance(1, jitter_den_)) {
    return static_cast<std::size_t>(rng_.uniform(menu.size()));
  }
  // Node count, inferred from the envelopes seen so far (broadcasts
  // reach every node, so one started op pins it exactly).
  for (const std::int32_t node : menu.start_nodes) {
    abd_nodes_ = std::max(abd_nodes_, node + 1);
  }
  for (const sim::SplitMenu::Delivery& d : menu.deliveries) {
    abd_nodes_ = std::max({abd_nodes_, d.from + 1, d.to + 1});
  }
  const int n = abd_nodes_;
  const int quorum = n / 2 + 1;
  // The largest server set a read quorum can still avoid; parking write
  // requests on it keeps the write pending (sub-quorum acks) while a
  // minority holds the new timestamp.
  const int parked = n - quorum;
  if (static_cast<int>(abd_quorum_hi_.size()) < n) {
    abd_quorum_hi_.resize(static_cast<std::size_t>(n), true);
  }
  const std::size_t starts = menu.start_nodes.size();
  // 1. Client-bound acks/replies flow freely (a parked write never
  //    collects more than `parked` < quorum of them).
  for (std::size_t j = 0; j < menu.deliveries.size(); ++j) {
    const std::int64_t t = menu.deliveries[j].type;
    if (t != kMsgWrite && t != kMsgRead) return starts + j;
  }
  // 2. Read queries, but only into the reader's assigned quorum: the
  //    low quorum {0..q-1} overlaps the parked servers (sees the new
  //    timestamp), the high quorum {n-q..n-1} avoids them (stale).
  for (std::size_t j = 0; j < menu.deliveries.size(); ++j) {
    const sim::SplitMenu::Delivery& d = menu.deliveries[j];
    if (d.type != kMsgRead) continue;
    const bool hi = abd_quorum_hi_[static_cast<std::size_t>(d.from)];
    const bool in_quorum = hi ? d.to >= n - quorum : d.to < quorum;
    if (in_quorum) return starts + j;
  }
  // 3. Write (and write-back) requests reach the parked minority only.
  for (std::size_t j = 0; j < menu.deliveries.size(); ++j) {
    const sim::SplitMenu::Delivery& d = menu.deliveries[j];
    if (d.type == kMsgWrite && d.to < parked) return starts + j;
  }
  // 4. Nothing useful in flight: start the next operation (node order,
  //    so the writer's parked write exists before the first read), and
  //    alternate the quorum assignment — fresh read, then stale read —
  //    which is exactly the new/old inversion when write-back is off.
  if (starts > 0) {
    const std::int32_t node = menu.start_nodes.front();
    abd_quorum_hi_[static_cast<std::size_t>(node)] = !abd_toggle_hi_;
    abd_toggle_hi_ = !abd_toggle_hi_;
    return 0;
  }
  // 5. Endgame drain: release the parked messages oldest-first so every
  //    operation completes and the run classifies on its full history.
  return starts;
}

}  // namespace rlt::explore
