#include "explore/explore.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <sstream>

#include "explore/policy.hpp"
#include "explore/shrink.hpp"
#include "obs/forensics.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "sim/schedule_policy.hpp"
#include "sweep/fnv.hpp"
#include "sweep/pool.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rlt::explore {
namespace {

using sweep::fnv_mix_str;
using sweep::fnv_mix_u64;
using sweep::kFnvOffset;

/// Per shard — sharding raises the searchable ceiling N-fold.
constexpr std::uint64_t kMaxInstances = 1'000'000;
/// Short local spellings of the public rank constants (explore.hpp).
constexpr int kRankViolation = kFoundRankViolation;
constexpr int kRankBlocked = kFoundRankBlocked;

/// Independent derived seed streams (domain-separated FNV mixes).
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t h = kFnvOffset;
  fnv_mix_u64(h, a);
  fnv_mix_u64(h, b);
  fnv_mix_u64(h, c);
  return h;
}

[[nodiscard]] bool game_like(term::Family f) {
  return f == term::Family::kGame || f == term::Family::kComposed;
}

/// One run's deterministic outcome, whichever objective produced it.
struct ProbeOutcome {
  std::uint64_t score = 0;
  int rank = 0;  ///< kViolation only.
  std::uint64_t fingerprint = 0;
  std::uint64_t steps = 0;
  std::string verdict;
  std::string forensics;  ///< Artifact (kViolation probes with forensics on).
};

ProbeOutcome probe(const ExploreInstance& e, RecordingPolicy& policy) {
  ProbeOutcome out;
  if (e.objective == Objective::kRounds) {
    term::TermProbeSpec spec;
    spec.family = e.family;
    spec.processes = e.processes;
    spec.max_rounds = e.max_rounds;
    spec.max_actions = e.max_actions;
    spec.seed = e.seed;
    spec.game_semantics = game_like(e.family) ? sim::Semantics::kLinearizable
                                              : sim::Semantics::kAtomic;
    sim::PolicyAdversary adv(policy);
    const term::TermProbe p = term::run_term_probe(spec, adv);
    out.score = p.rounds_score;
    out.fingerprint = p.outcome_hash;
    out.steps = p.steps;
    out.verdict = p.decided ? "decided" : p.capped ? "capped" : "budget";
  } else {
    sweep::Scenario s;
    s.algorithm = e.algorithm;
    s.semantics = e.semantics;
    s.processes = e.processes;
    s.seed = e.seed;
    s.writes_per_process = e.writes_per_process;
    s.max_actions = e.max_actions;
    s.abd_read_write_back = e.abd_read_write_back;
    s.explore_faults = e.fault_menu;
    s.online_check = e.online;
    s.forensics = e.forensics;
    const sweep::ScenarioResult r = sweep::run_scenario_policy(s, policy);
    out.forensics = r.forensics;
    out.rank = r.verdict == sweep::Verdict::kViolation ? kRankViolation
               : r.verdict == sweep::Verdict::kBlocked ? kRankBlocked
                                                       : 0;
    // Lexicographic (rank, peak concurrency): the concurrency observation
    // gives hill climbing a gradient toward overlap-heavy schedules even
    // while no violation has surfaced yet.
    out.score = (static_cast<std::uint64_t>(out.rank) << 32) |
                std::min<std::uint64_t>(policy.peak_pending(), 0xffffffffu);
    out.fingerprint = r.history_hash;
    out.steps = r.steps;
    out.verdict = sweep::to_string(r.verdict);
  }
  return out;
}

/// Seeded trace mutation for the hill-climbing strategy: point rewrites,
/// chunk deletions, insertions, and tail truncations (1-3 of them).
ScheduleTrace mutate(const ScheduleTrace& base, util::Rng& m) {
  ScheduleTrace t = base;
  if (t.choices.empty()) {
    t.choices.push_back(static_cast<std::uint32_t>(m.next_u64()));
    return t;
  }
  const int mutations = 1 + static_cast<int>(m.uniform(3));
  for (int i = 0; i < mutations && !t.choices.empty(); ++i) {
    const std::size_t size = t.choices.size();
    switch (m.uniform(4)) {
      case 0: {  // point rewrite
        const std::size_t pos = static_cast<std::size_t>(m.uniform(size));
        t.choices[pos] = static_cast<std::uint32_t>(m.next_u64());
        break;
      }
      case 1: {  // chunk deletion
        const std::size_t pos = static_cast<std::size_t>(m.uniform(size));
        const std::size_t len = 1 + static_cast<std::size_t>(m.uniform(
                                        std::max<std::uint64_t>(size / 8, 1)));
        const std::size_t end = std::min(pos + len, size);
        t.choices.erase(
            t.choices.begin() + static_cast<std::ptrdiff_t>(pos),
            t.choices.begin() + static_cast<std::ptrdiff_t>(end));
        break;
      }
      case 2: {  // insertion
        const std::size_t pos = static_cast<std::size_t>(m.uniform(size + 1));
        t.choices.insert(t.choices.begin() + static_cast<std::ptrdiff_t>(pos),
                         static_cast<std::uint32_t>(m.next_u64()));
        break;
      }
      default: {  // tail truncation (keeps at least one choice)
        if (size > 1) {
          t.choices.resize(1 + static_cast<std::size_t>(m.uniform(size - 1)));
        }
        break;
      }
    }
  }
  return t;
}

std::unique_ptr<RecordingPolicy> make_policy(const ExploreInstance& e, int k,
                                             const ScheduleTrace& incumbent) {
  switch (e.strategy) {
    case Strategy::kRandom:
      return std::make_unique<RandomPolicy>(mix_seed(e.seed, 0xA11, k));
    case Strategy::kGreedy: {
      // Run 0 is the pure heuristic; later runs jitter ~1/16 of the
      // decisions so the budget explores the heuristic's neighborhood.
      const std::uint32_t jitter = k == 0 ? 0 : 16;
      if (e.objective == Objective::kRounds) {
        return std::make_unique<GreedyRoundsPolicy>(
            game_like(e.family), mix_seed(e.seed, 0x9EE, k), jitter);
      }
      return std::make_unique<GreedyViolationPolicy>(
          mix_seed(e.seed, 0x9EE, k), jitter);
    }
    case Strategy::kHillClimb: {
      if (k == 0) {
        return std::make_unique<RandomPolicy>(mix_seed(e.seed, 0xA11, 0));
      }
      util::Rng m(mix_seed(e.seed, 0xB17, k));
      return std::make_unique<ReplayPolicy>(mutate(incumbent, m),
                                            mix_seed(e.seed, 0xFA11, k));
    }
  }
  RLT_CHECK_MSG(false, "unknown strategy");
  return nullptr;
}

}  // namespace

const char* to_string(Objective o) noexcept {
  switch (o) {
    case Objective::kRounds: return "rounds";
    case Objective::kViolation: return "viol";
  }
  return "?";
}

const char* to_string(Strategy s) noexcept {
  switch (s) {
    case Strategy::kGreedy: return "greedy";
    case Strategy::kHillClimb: return "hill";
    case Strategy::kRandom: return "random";
  }
  return "?";
}

std::string ExploreInstance::key() const {
  std::ostringstream os;
  os << "explore/" << to_string(objective) << '/';
  if (objective == Objective::kRounds) {
    os << term::to_string(family) << '/' << to_string(strategy) << "/p"
       << processes << "/r" << max_rounds;
  } else {
    os << sweep::to_string(algorithm) << '/' << to_string(strategy) << "/p"
       << processes << "/w" << writes_per_process;
  }
  os << "/b" << search_budget;
  if (!abd_read_write_back) os << "/nowb";
  if (fault_menu) os << "/fmenu";
  os << "/seed" << seed;
  return os.str();
}

ReplayReport replay_trace(const ExploreInstance& e, const ScheduleTrace& trace,
                          std::uint64_t fallback_seed) {
  ReplayPolicy policy(trace, fallback_seed);
  const ProbeOutcome p = probe(e, policy);
  ReplayReport r;
  r.score = p.score;
  r.rank = p.rank;
  r.fingerprint = p.fingerprint;
  r.steps = p.steps;
  r.effective = policy.recorded();
  r.verdict = p.verdict;
  r.forensics = p.forensics;
  return r;
}

ExploreOutcome run_explore_instance(const ExploreInstance& e) {
  ExploreOutcome out;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    RLT_CHECK_MSG(e.search_budget >= 1, "search budget must be positive");
    out.fallback_seed = mix_seed(e.seed, 0x5EED, 0);
    ScheduleTrace incumbent;
    bool have_best = false;
    for (int k = 0; k < e.search_budget; ++k) {
      const std::unique_ptr<RecordingPolicy> policy =
          make_policy(e, k, incumbent);
      const ProbeOutcome p = probe(e, *policy);
      ++out.runs;
      out.total_steps += p.steps;
      if (!have_best || p.score > out.best_score) {
        have_best = true;
        out.best_score = p.score;
        out.found_rank = p.rank;
        out.fingerprint = p.fingerprint;
        out.best_trace = policy->recorded();
        incumbent = out.best_trace;
        out.detail = p.verdict;
      }
    }
    // Shrink whatever the search "found": a violation/blocked schedule,
    // or a budget-defeating survival (the non-terminating witness).
    // The probe's verdict string — not a score threshold — decides: the
    // coin family's score (longest personal walk) routinely exceeds any
    // round bound on runs that decided just fine.
    const bool worth_shrinking =
        e.objective == Objective::kViolation
            ? out.found_rank >= kRankBlocked
            : out.detail == "capped";
    out.unshrunk_len = out.best_trace.size();
    if (worth_shrinking && e.shrink_budget > 0) {
      const int target_rank = out.found_rank;
      const std::uint64_t target_score = out.best_score;
      const auto keep = [&](const ScheduleTrace& candidate) {
        const ReplayReport r =
            replay_trace(e, candidate, out.fallback_seed);
        return e.objective == Objective::kViolation
                   ? r.rank >= target_rank
                   : r.score >= target_score;
      };
      ShrinkResult sr =
          shrink(out.best_trace, keep, e.shrink_budget);
      out.shrunk = true;
      out.locally_minimal = sr.locally_minimal;
      out.shrink_probes = sr.probes;
      out.best_trace = std::move(sr.trace);
      // The persisted record describes the SHRUNK trace: re-derive its
      // own deterministic replay facts.
      const ReplayReport fin =
          replay_trace(e, out.best_trace, out.fallback_seed);
      out.best_score = fin.score;
      out.found_rank = fin.rank;
      out.fingerprint = fin.fingerprint;
      out.detail = fin.verdict;
    }
    out.trace_fnv = trace_hash(out.best_trace);
  } catch (const std::exception& ex) {
    out = ExploreOutcome{};
    out.error = true;
    out.detail = std::string("error: ") + ex.what();
  } catch (...) {
    out = ExploreOutcome{};
    out.error = true;
    out.detail = "error: unknown exception";
  }
  out.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return out;
}

std::string config_key(const ExploreOptions& o) {
  std::ostringstream os;
  os << "objective=" << to_string(o.objective)
     << " strategy=" << to_string(o.strategy);
  if (o.objective == Objective::kRounds) {
    os << " families=";
    for (std::size_t i = 0; i < o.families.size(); ++i) {
      os << (i ? "," : "") << term::to_string(o.families[i]);
    }
    os << " rounds=";
    for (std::size_t i = 0; i < o.round_budgets.size(); ++i) {
      os << (i ? "," : "") << o.round_budgets[i];
    }
  } else {
    os << " algs=";
    for (std::size_t i = 0; i < o.algorithms.size(); ++i) {
      os << (i ? "," : "") << sweep::to_string(o.algorithms[i]);
    }
    os << " writes=" << o.writes_per_process
       << " wb=" << (o.abd_read_write_back ? 1 : 0)
       << " fmenu=" << (o.fault_menu ? 1 : 0);
  }
  os << " procs=";
  for (std::size_t i = 0; i < o.process_counts.size(); ++i) {
    os << (i ? "," : "") << o.process_counts[i];
  }
  os << " seeds=" << o.seed_begin << ':' << o.seed_end
     << " budget=" << o.search_budget << " shrink=" << o.shrink_budget
     << " max-actions=" << o.max_actions_per_run;
  return os.str();
}

ExploreEnumeration enumerate_explore_shard(const ExploreOptions& o) {
  RLT_CHECK_MSG(o.seed_begin < o.seed_end, "instance-seed range is empty");
  RLT_CHECK_MSG(o.search_budget >= 1, "search budget must be positive");
  RLT_CHECK_MSG(!o.process_counts.empty(), "process-count list is empty");
  RLT_CHECK_MSG(o.shard.count > 0 && o.shard.index < o.shard.count,
                "shard index/count out of range");
  if (o.objective == Objective::kRounds) {
    RLT_CHECK_MSG(!o.families.empty(), "family list is empty");
    RLT_CHECK_MSG(!o.round_budgets.empty(), "round-budget list is empty");
  } else {
    RLT_CHECK_MSG(!o.algorithms.empty(), "algorithm list is empty");
  }
  const std::uint64_t seeds = o.seed_end - o.seed_begin;
  const std::uint64_t configs =
      (o.objective == Objective::kRounds
           ? o.families.size() * o.round_budgets.size()
           : o.algorithms.size()) *
      o.process_counts.size();
  RLT_CHECK_MSG(configs == 0 || seeds <= UINT64_MAX / configs,
                "exploration cross-product overflows");
  ExploreEnumeration en;
  en.total = configs * seeds;
  RLT_CHECK_MSG(o.shard.share(en.total) <= kMaxInstances,
                "exploration cross-product exceeds the per-shard instance "
                "limit; narrow the seed range or axes, or use more shards");
  en.global_indices.reserve(o.shard.share(en.total));
  en.instances.reserve(o.shard.share(en.total));
  std::uint64_t gi = 0;
  const auto emit = [&](const ExploreInstance& e) {
    if (o.shard.owns(gi)) {
      en.global_indices.push_back(gi);
      en.instances.push_back(e);
    }
    ++gi;
  };
  for (std::uint64_t seed = o.seed_begin; seed < o.seed_end; ++seed) {
    for (const int procs : o.process_counts) {
      if (o.objective == Objective::kRounds) {
        for (const term::Family f : o.families) {
          for (const int rounds : o.round_budgets) {
            ExploreInstance e;
            e.objective = o.objective;
            e.strategy = o.strategy;
            e.family = f;
            e.processes = procs;
            e.max_rounds = rounds;
            e.max_actions = o.max_actions_per_run;
            e.seed = seed;
            e.search_budget = o.search_budget;
            e.shrink_budget = o.shrink_budget;
            emit(e);
          }
        }
      } else {
        for (const sweep::Algorithm a : o.algorithms) {
          ExploreInstance e;
          e.objective = o.objective;
          e.strategy = o.strategy;
          e.algorithm = a;
          e.semantics = sim::Semantics::kLinearizable;
          e.processes = procs;
          e.writes_per_process = o.writes_per_process;
          e.max_actions = o.max_actions_per_run;
          e.seed = seed;
          e.search_budget = o.search_budget;
          e.shrink_budget = o.shrink_budget;
          e.abd_read_write_back =
              a == sweep::Algorithm::kAbd ? o.abd_read_write_back : true;
          e.fault_menu = a == sweep::Algorithm::kAbd && o.fault_menu;
          e.online = o.online;
          emit(e);
        }
      }
    }
  }
  RLT_CHECK_MSG(gi == en.total, "enumeration count disagrees with the "
                                "computed cross-product size");
  return en;
}

std::vector<ExploreInstance> enumerate_explore_instances(
    const ExploreOptions& o) {
  return enumerate_explore_shard(o).instances;
}

std::string ExploreSummary::stable_text() const {
  std::ostringstream os;
  os << "instances " << instances << '\n'
     << "search_runs " << search_runs << '\n'
     << "violations_found " << violations_found << '\n'
     << "blocked_found " << blocked_found << '\n'
     << "shrunk_traces " << shrunk_traces << '\n'
     << "errors " << errors << '\n'
     << "steps " << total_steps << '\n'
     << "best_score " << best_score << '\n'
     << "best_key " << (best_key.empty() ? "n/a" : best_key) << '\n'
     << "digest " << std::hex << digest << std::dec << '\n';
  for (const std::string& f : failures) os << "failure " << f << '\n';
  if (failures_truncated > 0) {
    os << "failure ... and " << failures_truncated
       << " more failing instance(s) not listed\n";
  }
  return os.str();
}

ExploreFold::ExploreFold() { sum_.digest = kFnvOffset; }

void ExploreFold::add(const std::string& key, const Item& it) {
  ++sum_.instances;
  sum_.search_runs += it.runs;
  if (it.found_rank >= kRankViolation) ++sum_.violations_found;
  if (it.found_rank == kRankBlocked) ++sum_.blocked_found;
  if (it.shrunk) ++sum_.shrunk_traces;
  if (it.error) ++sum_.errors;
  sum_.total_steps += it.total_steps;
  if (!it.error && it.best_score > sum_.best_score) {
    sum_.best_score = it.best_score;
    sum_.best_key = key;
  }
  // First-instance tie-break: an all-zero exploration still names the
  // first non-error instance, so best_key is never "n/a" spuriously.
  if (sum_.best_key.empty() && !it.error && index_ == 0) sum_.best_key = key;
  fnv_mix_str(sum_.digest, key);
  fnv_mix_u64(sum_.digest, it.best_score);
  fnv_mix_u64(sum_.digest, static_cast<std::uint64_t>(it.found_rank));
  fnv_mix_u64(sum_.digest, it.fingerprint);
  fnv_mix_u64(sum_.digest, it.trace_fnv);
  fnv_mix_u64(sum_.digest, it.runs);
  fnv_mix_u64(sum_.digest, it.total_steps);
  fnv_mix_u64(sum_.digest, it.shrunk ? 1 : 0);
  fnv_mix_u64(sum_.digest, it.locally_minimal ? 1 : 0);
  fnv_mix_u64(sum_.digest, it.shrink_probes);
  fnv_mix_u64(sum_.digest, it.error ? 1 : 0);
  if (it.error) {
    if (sum_.failures.size() < kMaxReportedFailures) {
      sum_.failures.push_back(key + ": " + it.detail);
    } else {
      ++sum_.failures_truncated;
    }
  }
  ++index_;
}

ExploreSummary ExploreFold::finish() { return std::move(sum_); }

namespace {

/// Progress outcome class of one instance (the four class slots of the
/// progress protocol: done / found / other / err).  "found" = the
/// search located what it hunts (a violation/blocked schedule, or a
/// budget-defeating survival for the rounds objective).
int progress_class(const ExploreInstance& e,
                   const ExploreOutcome& r) noexcept {
  if (r.error) return 3;
  const bool found = e.objective == Objective::kViolation
                         ? r.found_rank >= kRankBlocked
                         : r.detail == "capped";
  return found ? 1 : 0;
}

}  // namespace

ExploreSummary run_explore(const ExploreOptions& o,
                           std::uint64_t progress_every,
                           sweep::RecordSink* sink, const obs::Hooks* hooks) {
  const auto t0 = std::chrono::steady_clock::now();
  const ExploreEnumeration en = enumerate_explore_shard(o);
  const std::vector<ExploreInstance>& instances = en.instances;
  std::vector<ExploreOutcome> outcomes(instances.size());

  const bool tracing = hooks != nullptr && hooks->trace != nullptr;
  if (tracing) obs::set_enabled(true);
  std::vector<obs::CounterDelta> deltas(tracing ? instances.size() : 0);
  std::unique_ptr<obs::ProgressMeter> meter;
  if (hooks != nullptr && hooks->progress_on()) {
    obs::ProgressOptions po;
    po.total = instances.size();
    po.mode = "explore";
    // "clean", not "done": the protocol's state counter already uses
    // the "done" key, and every key in a line must be unique.
    po.classes = {"clean", "found", "other", "err"};
    po.fd = hooks->progress_fd;
    po.heartbeat_ms = hooks->heartbeat_ms;
    meter = std::make_unique<obs::ProgressMeter>(po);
  }

  std::uint64_t steal_count = 0;
  {
    sweep::WorkStealingPool pool(o.threads);
    std::atomic<std::uint64_t> completed{0};
    const std::size_t batch =
        static_cast<std::size_t>(std::max(1, o.batch_size));
    obs::ProgressMeter* const meter_p = meter.get();
    for (std::size_t begin = 0; begin < instances.size(); begin += batch) {
      const std::size_t end = std::min(begin + batch, instances.size());
      pool.submit([&instances, &outcomes, &completed, &deltas, progress_every,
                   begin, end, tracing, meter_p] {
        const bool timing = obs::enabled();
        const auto bt0 = std::chrono::steady_clock::now();
        for (std::size_t i = begin; i < end; ++i) {
          obs::CounterDelta before;
          if (tracing) before = obs::thread_counters();
          outcomes[i] = run_explore_instance(instances[i]);
          if (obs::enabled()) {
            obs::count(obs::Counter::kExploreRuns, outcomes[i].runs);
            obs::count(obs::Counter::kExploreShrinkProbes,
                       outcomes[i].shrink_probes);
            obs::count(obs::Counter::kExploreSteps, outcomes[i].total_steps);
          }
          if (tracing) {
            obs::CounterDelta after = obs::thread_counters();
            after -= before;
            deltas[i] = after;
          }
          if (meter_p != nullptr) {
            meter_p->tick(progress_class(instances[i], outcomes[i]));
          }
          const std::uint64_t done =
              completed.fetch_add(1, std::memory_order_relaxed) + 1;
          if (progress_every > 0 && done % progress_every == 0) {
            std::cerr << "[explore] " << done << " instances done\n";
          }
        }
        if (timing) {
          obs::count(obs::Counter::kPoolTasks);
          obs::hist(obs::Hist::kPoolTaskNs,
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - bt0)
                            .count()));
        }
      });
    }
    pool.wait_idle();
    steal_count = pool.steals();
  }
  obs::count(obs::Counter::kPoolSteals, steal_count);
  obs::gauge_max(obs::Gauge::kPoolThreads,
                 static_cast<std::uint64_t>(std::max(1, o.threads)));
  if (meter) meter->finish();

  // Deterministic fold: enumeration order, no wall-clock fields.  The
  // fold inputs are exactly the persisted record fields, so a merge that
  // re-folds shard-store records reproduces this summary bit for bit.
  if (sink != nullptr && o.shard.active()) {
    sink->append(sweep::shard_header_record("explore", o.shard, config_key(o),
                                            en.total, instances.size()));
  }
  ExploreFold fold;
  std::uint64_t wall_ns_total = 0;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const ExploreInstance& e = instances[i];
    const ExploreOutcome& r = outcomes[i];
    const std::string key = e.key();
    wall_ns_total += r.wall_ns;
    ExploreFold::Item item;
    item.best_score = r.best_score;
    item.found_rank = r.found_rank;
    item.fingerprint = r.fingerprint;
    item.trace_fnv = r.trace_fnv;
    item.runs = r.runs;
    item.total_steps = r.total_steps;
    item.shrunk = r.shrunk;
    item.locally_minimal = r.locally_minimal;
    item.shrink_probes = r.shrink_probes;
    item.error = r.error;
    item.detail = r.detail;
    fold.add(key, item);
    if (sink != nullptr) {
      const char* found = "none";
      if (e.objective == Objective::kViolation) {
        found = r.found_rank >= kRankViolation ? "violation"
                : r.found_rank == kRankBlocked ? "blocked"
                                               : "none";
      } else {
        // The best run's own verdict ("decided" / "capped" / "budget"),
        // not a score threshold — see the shrink-gate comment above.
        found = r.detail.c_str();
      }
      sweep::Record rec;
      rec.u64("gi", en.global_indices[i])
          .str("key", key)
          .str("mode", "explore")
          .str("objective", to_string(e.objective))
          .str("strategy", to_string(e.strategy))
          .str("target", e.objective == Objective::kRounds
                             ? term::to_string(e.family)
                             : sweep::to_string(e.algorithm))
          .u64("processes", static_cast<std::uint64_t>(e.processes))
          .u64("rounds", static_cast<std::uint64_t>(e.max_rounds))
          .u64("writes", static_cast<std::uint64_t>(e.writes_per_process))
          .u64("max_actions", e.max_actions)
          .u64("seed", e.seed)
          .u64("budget", static_cast<std::uint64_t>(e.search_budget))
          .boolean("write_back", e.abd_read_write_back)
          .boolean("fault_menu", e.fault_menu)
          .u64("runs", r.runs)
          .u64("steps", r.total_steps)
          .u64("best_score", r.best_score)
          .str("found", r.error ? "error" : found)
          .hex("fingerprint", r.fingerprint)
          .hex("trace_fnv", r.trace_fnv)
          .u64("trace_len", r.best_trace.size())
          .u64("unshrunk_len", r.unshrunk_len)
          .boolean("shrunk", r.shrunk)
          .boolean("locally_minimal", r.locally_minimal)
          .u64("shrink_probes", r.shrink_probes)
          .u64("fallback_seed", r.fallback_seed)
          .str("trace", encode_trace(r.best_trace))
          .str("detail", r.detail);
      sink->append(rec);
    }
    if (tracing) {
      // Enumeration-order span, byte-stable across threads/batch; wall
      // clock only under trace_times.
      sweep::Record span;
      span.str("obs", "span")
          .u64("gi", en.global_indices[i])
          .str("key", key)
          .str("mode", "explore")
          .u64("runs", r.runs)
          .u64("best_score", r.best_score)
          .u64("shrink_probes", r.shrink_probes)
          .u64("steps", r.total_steps);
      if (hooks->trace_times) span.u64("wall_ns", r.wall_ns);
      obs::append_stable_deltas(deltas[i], span);
      hooks->trace->append(span);
    }
    if (hooks != nullptr && hooks->forensics_on() &&
        e.objective == Objective::kViolation && !r.error &&
        r.found_rank >= kRankBlocked) {
      // Witness forensics: replay the shrunk best trace with capture on
      // so it ships with its explanation (certificate / quorum ledger /
      // timeline).  The replay is deterministic and runs in the fold
      // (enumeration order), so the artifact is byte-identical across
      // threads, batches, and shards — which tile by gi.
      ExploreInstance fe = e;
      fe.forensics = true;
      const ReplayReport rep =
          replay_trace(fe, r.best_trace, r.fallback_seed);
      std::string body = rep.forensics;
      if (body.empty()) {
        sweep::Record stub;
        stub.u64("forensics", 1)
            .str("key", key)
            .str("verdict", rep.verdict)
            .str("detail", "replay captured no forensics");
        body = stub.json() + "\n";
      }
      obs::write_artifact(hooks->forensics_dir,
                          "explore-" + std::to_string(en.global_indices[i]) +
                              ".json",
                          body);
    }
  }
  if (tracing && hooks->trace_times) {
    sweep::Record close;
    // "stable":false: wall-clock record, skippable mechanically.
    close.str("obs", "span")
        .str("span", "sweep")
        .str("mode", "explore")
        .boolean("stable", false)
        .u64("scenarios", instances.size())
        .u64("elapsed_ns",
             static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count()));
    hooks->trace->append(close);
  }
  ExploreSummary sum = fold.finish();
  if (sink != nullptr && o.shard.active()) {
    sink->append(
        sweep::shard_trailer_record(o.shard, instances.size(), sum.digest));
  }
  sum.wall_ns_total = wall_ns_total;
  sum.steals = steal_count;
  sum.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return sum;
}

// ---- persisted-record parsing (the --replay path) -----------------------

namespace {

std::optional<std::string> field_str(const std::string& line,
                                     const std::string& name) {
  const std::string needle = "\"" + name + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t begin = at + needle.size();
  std::string out;
  for (std::size_t i = begin; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return out;
    if (c == '\\') return std::nullopt;  // no escapes in replayable fields
    out += c;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> field_u64(const std::string& line,
                                       const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return std::nullopt;
  std::uint64_t v = 0;
  for (; i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i) {
    v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
  }
  return v;
}

std::optional<bool> field_bool(const std::string& line,
                               const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  if (line.compare(at + needle.size(), 4, "true") == 0) return true;
  if (line.compare(at + needle.size(), 5, "false") == 0) return false;
  return std::nullopt;
}

std::optional<std::uint64_t> field_hex(const std::string& line,
                                       const std::string& name) {
  const std::optional<std::string> s = field_str(line, name);
  if (!s || s->size() < 3 || s->compare(0, 2, "0x") != 0) return std::nullopt;
  std::uint64_t v = 0;
  for (std::size_t i = 2; i < s->size(); ++i) {
    const char c = (*s)[i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
    else return std::nullopt;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  return v;
}

}  // namespace

std::optional<PersistedTrace> parse_explore_record(const std::string& line,
                                                   std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<PersistedTrace> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (field_str(line, "mode").value_or("") != "explore") {
    return fail("not an explore record (mode != \"explore\")");
  }
  PersistedTrace out;
  const auto objective = field_str(line, "objective");
  const auto strategy = field_str(line, "strategy");
  const auto target = field_str(line, "target");
  const auto trace = field_str(line, "trace");
  if (!objective || !strategy || !target || !trace) {
    return fail("record is missing objective/strategy/target/trace");
  }
  ExploreInstance& e = out.instance;
  if (*objective == "rounds") {
    e.objective = Objective::kRounds;
  } else if (*objective == "viol") {
    e.objective = Objective::kViolation;
  } else {
    return fail("unknown objective '" + *objective + "'");
  }
  if (*strategy == "greedy") e.strategy = Strategy::kGreedy;
  else if (*strategy == "hill") e.strategy = Strategy::kHillClimb;
  else if (*strategy == "random") e.strategy = Strategy::kRandom;
  else return fail("unknown strategy '" + *strategy + "'");
  if (e.objective == Objective::kRounds) {
    if (*target == "consensus") e.family = term::Family::kConsensus;
    else if (*target == "composed") e.family = term::Family::kComposed;
    else if (*target == "coin") e.family = term::Family::kSharedCoin;
    else if (*target == "game") e.family = term::Family::kGame;
    else return fail("unknown family '" + *target + "'");
  } else {
    if (*target == "modeled") e.algorithm = sweep::Algorithm::kModeled;
    else if (*target == "alg2") e.algorithm = sweep::Algorithm::kAlg2;
    else if (*target == "alg4") e.algorithm = sweep::Algorithm::kAlg4;
    else if (*target == "abd") e.algorithm = sweep::Algorithm::kAbd;
    else return fail("unknown algorithm '" + *target + "'");
    e.semantics = sim::Semantics::kLinearizable;
  }
  const auto processes = field_u64(line, "processes");
  const auto rounds = field_u64(line, "rounds");
  const auto writes = field_u64(line, "writes");
  const auto max_actions = field_u64(line, "max_actions");
  const auto seed = field_u64(line, "seed");
  const auto budget = field_u64(line, "budget");
  const auto write_back = field_bool(line, "write_back");
  const auto fallback_seed = field_u64(line, "fallback_seed");
  const auto fingerprint = field_hex(line, "fingerprint");
  const auto best_score = field_u64(line, "best_score");
  if (!processes || !rounds || !writes || !max_actions || !seed || !budget ||
      !write_back || !fallback_seed || !fingerprint || !best_score) {
    return fail("record is missing config fields");
  }
  e.processes = static_cast<int>(*processes);
  e.max_rounds = static_cast<int>(*rounds);
  e.writes_per_process = static_cast<int>(*writes);
  e.max_actions = *max_actions;
  e.seed = *seed;
  e.search_budget = static_cast<int>(*budget);
  e.abd_read_write_back = *write_back;
  // Absent in pre-fault-fabric stores; those traces ran without the menu.
  e.fault_menu = field_bool(line, "fault_menu").value_or(false);
  const std::optional<ScheduleTrace> decoded = decode_trace(*trace);
  if (!decoded) return fail("malformed trace field");
  out.trace = *decoded;
  out.fallback_seed = *fallback_seed;
  out.fingerprint = *fingerprint;
  out.best_score = *best_score;
  return out;
}

}  // namespace rlt::explore
