#include "history/history.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>

#include "util/assert.hpp"

namespace rlt::history {

int History::add(OpRecord op) {
  op.id = static_cast<int>(ops_.size());
  ops_.push_back(op);
  return op.id;
}

void History::complete_op(int id, Value result, Time now) {
  RLT_CHECK(id >= 0 && id < static_cast<int>(ops_.size()));
  OpRecord& op = ops_[static_cast<std::size_t>(id)];
  RLT_CHECK_MSG(op.pending(), "op completed twice: op" << id);
  RLT_CHECK_MSG(now > op.invoke, "response time not after invocation");
  op.response = now;
  if (op.is_read()) op.value = result;
}

Value History::initial(RegisterId reg) const {
  const auto it = initial_.find(reg);
  return it == initial_.end() ? Value{0} : it->second;
}

std::vector<Event> History::events() const {
  std::vector<Event> evs;
  evs.reserve(ops_.size() * 2);
  for (const OpRecord& op : ops_) {
    evs.push_back(Event{Event::Kind::kInvoke, op.id, op.invoke});
    if (!op.pending()) {
      evs.push_back(Event{Event::Kind::kResponse, op.id, op.response});
    }
  }
  std::sort(evs.begin(), evs.end(), [](const Event& a, const Event& b) {
    return a.time < b.time;
  });
  return evs;
}

History History::prefix_at(Time t) const {
  History out;
  out.initial_ = initial_;
  for (const OpRecord& op : ops_) {
    if (op.invoke > t) continue;
    OpRecord copy = op;
    copy.id = -1;  // re-assigned by add()
    if (copy.response != kNoTime && copy.response > t) {
      copy.response = kNoTime;
      if (copy.is_read()) copy.value = 0;  // pending reads have no value
    }
    out.add(copy);
  }
  return out;
}

std::vector<History> History::all_prefixes(bool include_empty) const {
  std::vector<History> out;
  if (include_empty) {
    // A genuinely empty prefix: initial values, no ops.  prefix_at(0) is
    // NOT that when an op is invoked at time 0 — Time is unsigned and
    // cutoffs are inclusive, so no integer cutoff excludes such an op.
    // (The old prefix_at(0)-then-pop-if-nonempty dance silently dropped
    // the empty prefix for exactly those histories.)
    History empty;
    empty.initial_ = initial_;
    out.push_back(std::move(empty));
  }
  for (const Event& ev : events()) out.push_back(prefix_at(ev.time));
  return out;
}

History History::restrict_to_register(RegisterId reg,
                                      std::vector<int>* mapping) const {
  History out;
  out.set_initial(reg, initial(reg));
  if (mapping != nullptr) mapping->clear();
  for (const OpRecord& op : ops_) {
    if (op.reg != reg) continue;
    OpRecord copy = op;
    copy.id = -1;
    out.add(copy);
    if (mapping != nullptr) mapping->push_back(op.id);
  }
  return out;
}

std::vector<RegisterId> History::registers() const {
  std::set<RegisterId> regs;
  for (const OpRecord& op : ops_) regs.insert(op.reg);
  return {regs.begin(), regs.end()};
}

void History::validate() const {
  std::set<Time> times;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const OpRecord& op = ops_[i];
    RLT_CHECK_MSG(op.id == static_cast<int>(i),
                  "op id " << op.id << " at index " << i);
    RLT_CHECK_MSG(times.insert(op.invoke).second,
                  "duplicate event time " << op.invoke);
    if (!op.pending()) {
      RLT_CHECK_MSG(op.response > op.invoke,
                    "response " << op.response << " not after invoke "
                                << op.invoke << " for op" << op.id);
      RLT_CHECK_MSG(times.insert(op.response).second,
                    "duplicate event time " << op.response);
    }
  }
}

std::size_t History::completed_count() const noexcept {
  std::size_t n = 0;
  for (const OpRecord& op : ops_) {
    if (!op.pending()) ++n;
  }
  return n;
}

std::string History::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const History& h) {
  std::vector<OpRecord> sorted = h.ops();
  std::sort(sorted.begin(), sorted.end(),
            [](const OpRecord& a, const OpRecord& b) {
              return a.invoke < b.invoke;
            });
  os << "history{" << h.size() << " ops}\n";
  for (const OpRecord& op : sorted) os << "  " << op << '\n';
  return os;
}

}  // namespace rlt::history
