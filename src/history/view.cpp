#include "history/view.hpp"

namespace rlt::history {

std::size_t HistoryView::included_count() const {
  std::size_t n = 0;
  for (int id = 0; id < static_cast<int>(base_size()); ++id) {
    if (included(id)) ++n;
  }
  return n;
}

std::size_t HistoryView::completed_count() const {
  std::size_t n = 0;
  for (int id = 0; id < static_cast<int>(base_size()); ++id) {
    if (completed(id)) ++n;
  }
  return n;
}

History HistoryView::materialize() const {
  return h_->prefix_at(cutoff_);
}

}  // namespace rlt::history
