#include "history/event.hpp"

#include <ostream>

namespace rlt::history {

const char* to_string(OpKind kind) noexcept {
  return kind == OpKind::kRead ? "read" : "write";
}

std::ostream& operator<<(std::ostream& os, const OpRecord& op) {
  os << "op" << op.id << "[p" << op.process << " " << to_string(op.kind)
     << "(R" << op.reg << (op.is_write() ? ")=" : ")->");
  if (op.is_read() && op.pending()) {
    os << '?';
  } else {
    os << op.value;
  }
  os << " @" << op.invoke << "..";
  if (op.pending()) {
    os << "pending";
  } else {
    os << op.response;
  }
  os << ']';
  return os;
}

std::ostream& operator<<(std::ostream& os, const Event& ev) {
  os << (ev.kind == Event::Kind::kInvoke ? "inv" : "res") << "(op" << ev.op_id
     << ")@" << ev.time;
  return os;
}

}  // namespace rlt::history
