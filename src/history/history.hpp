// A register history: a set of operation records over named registers,
// with event-level prefix extraction.
//
// Prefixes matter because strong linearizability and write
// strong-linearizability (Definitions 3 and 4 of the paper) are properties
// of *prefix-closed sets* of histories: the checkers enumerate every
// event-prefix of a recorded run (and trees of runs sharing prefixes).
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "history/event.hpp"

namespace rlt::history {

/// An immutable-ish container of operations forming one history.
///
/// Invariants (checked by `validate`):
///  * op ids are dense 0..n-1 and match their index;
///  * all event times are distinct;
///  * response times are after invocation times.
class History {
 public:
  History() = default;

  /// Appends an operation record; assigns and returns its id.
  int add(OpRecord op);

  /// Marks a previously added pending operation as responded at `now`.
  /// For reads, `result` becomes the returned value. Throws if the op is
  /// already complete or `now` is not after its invocation.
  void complete_op(int id, Value result, Time now);

  [[nodiscard]] const std::vector<OpRecord>& ops() const noexcept {
    return ops_;
  }
  [[nodiscard]] const OpRecord& op(int id) const { return ops_.at(id); }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }

  /// Initial value of a register (Definition 2, property 3). Defaults to 0.
  void set_initial(RegisterId reg, Value v) { initial_[reg] = v; }
  [[nodiscard]] Value initial(RegisterId reg) const;

  /// All invocation/response events sorted by time.
  [[nodiscard]] std::vector<Event> events() const;

  /// The prefix of this history containing exactly the events with
  /// time <= t: operations invoked after t are dropped; operations that
  /// respond after t become pending (their read return values are erased,
  /// since a pending read has no response value).
  [[nodiscard]] History prefix_at(Time t) const;

  /// Convenience: prefixes at every event time, shortest first.  The final
  /// element equals this history. An empty-history prefix is included
  /// only if `include_empty`.
  [[nodiscard]] std::vector<History> all_prefixes(
      bool include_empty = false) const;

  /// Sub-history of a single register (op ids are re-densified; the
  /// returned history's op `k` maps to original id `mapping[k]`).
  [[nodiscard]] History restrict_to_register(
      RegisterId reg, std::vector<int>* mapping = nullptr) const;

  /// Registers mentioned in this history, ascending.
  [[nodiscard]] std::vector<RegisterId> registers() const;

  /// Throws util::InvariantViolation if internal invariants are broken.
  void validate() const;

  /// Count of completed (responded) operations.
  [[nodiscard]] std::size_t completed_count() const noexcept;

  /// Multi-line human-readable rendering (one op per line, time-sorted).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const History&, const History&) = default;

 private:
  std::vector<OpRecord> ops_;
  std::map<RegisterId, Value> initial_;
};

std::ostream& operator<<(std::ostream& os, const History& h);

}  // namespace rlt::history
