#include "history/recorder.hpp"

#include "util/assert.hpp"

namespace rlt::history {

OpHandle Recorder::begin_op(ProcessId p, RegisterId reg, OpKind kind,
                            Value value, Time now) {
  OpRecord op;
  op.process = p;
  op.reg = reg;
  op.kind = kind;
  op.value = kind == OpKind::kWrite ? value : Value{0};
  op.invoke = now;
  op.response = kNoTime;
  return OpHandle{history_.add(op)};
}

void Recorder::end_op(OpHandle h, Value result, Time now) {
  history_.complete_op(h.op_id, result, now);
}

OpHandle ConcurrentRecorder::begin_op(ProcessId p, RegisterId reg, OpKind kind,
                                      Value value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  OpRecord op;
  op.process = p;
  op.reg = reg;
  op.kind = kind;
  op.value = kind == OpKind::kWrite ? value : Value{0};
  op.invoke = ++clock_;
  op.response = kNoTime;
  return OpHandle{history_.add(op)};
}

void ConcurrentRecorder::end_op(OpHandle h, Value result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  history_.complete_op(h.op_id, result, ++clock_);
}

void ConcurrentRecorder::set_initial(RegisterId reg, Value v) {
  const std::lock_guard<std::mutex> lock(mutex_);
  history_.set_initial(reg, v);
}

History ConcurrentRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return history_;
}

}  // namespace rlt::history
