// Recorders capture operation invocations/responses into a History.
//
// Two flavors:
//  * `Recorder` — single-threaded / simulator use. Times are supplied by
//    the caller (the simulator's step counter), so the recorded history
//    is deterministic.
//  * `ConcurrentRecorder` — for real-thread register implementations.
//    A mutex-protected sequence counter assigns event times; the total
//    order it induces is consistent with real time because the counter
//    increment happens inside the invocation/response call.
#pragma once

#include <mutex>

#include "history/history.hpp"

namespace rlt::history {

/// Handle returned by begin_op; used to complete the operation.
struct OpHandle {
  int op_id = -1;
};

/// Deterministic recorder for simulator runs.  Not thread-safe.
class Recorder {
 public:
  /// Records an invocation at time `now`.  For writes, `value` is the
  /// written value; for reads it is ignored until completion.
  OpHandle begin_op(ProcessId p, RegisterId reg, OpKind kind, Value value,
                    Time now);

  /// Records the response at time `now`.  For reads, `result` is the
  /// returned value; for writes it is ignored.
  void end_op(OpHandle h, Value result, Time now);

  /// Declares a register's initial value (affects checking, not recording).
  void set_initial(RegisterId reg, Value v) { history_.set_initial(reg, v); }

  [[nodiscard]] const History& history() const noexcept { return history_; }
  [[nodiscard]] History take() { return std::move(history_); }

 private:
  History history_;
};

/// Thread-safe recorder with an internal logical clock.
///
/// The clock ticks on every event, so all event times are distinct, and
/// an operation that completes before another is invoked (in real time)
/// is guaranteed a smaller response time than the other's invocation
/// time — the recorded history's precedence relation is a sub-relation
/// of real-time precedence, which is what linearizability checking needs.
class ConcurrentRecorder {
 public:
  OpHandle begin_op(ProcessId p, RegisterId reg, OpKind kind, Value value);
  void end_op(OpHandle h, Value result);

  void set_initial(RegisterId reg, Value v);

  /// Snapshot of the history so far. Pending ops appear as pending.
  [[nodiscard]] History snapshot() const;

 private:
  mutable std::mutex mutex_;
  Time clock_ = 0;
  History history_;
};

}  // namespace rlt::history
