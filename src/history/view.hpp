// Zero-copy event-prefix views of a History.
//
// The tree checkers probe thousands of event-prefixes of the same run;
// materializing each prefix with History::prefix_at copies every op and
// re-densifies ids, forcing callers to rebuild id indices per probe.  A
// HistoryView is a (base history, cutoff time) pair that exposes prefix
// semantics — ops invoked after the cutoff are absent, ops responding
// after the cutoff appear pending — without copying anything.  Crucially
// the view keeps the BASE history's op ids, so per-op indices computed
// once on the base (bitmasks, OpKey tables) stay valid for every prefix.
#pragma once

#include "history/history.hpp"

namespace rlt::history {

/// A read-only prefix view: the events of `base` with time <= `cutoff`.
///
/// The default cutoff `kNoTime` compares >= every real event time, so a
/// cutoff-less view is simply the whole history.  Ids are base ids; an op
/// excluded from the view (`!included(id)`) must not be interpreted.
class HistoryView {
 public:
  HistoryView() = default;
  explicit HistoryView(const History& h, Time cutoff = kNoTime)
      : h_(&h), cutoff_(cutoff) {}

  [[nodiscard]] const History& base() const noexcept { return *h_; }
  [[nodiscard]] Time cutoff() const noexcept { return cutoff_; }

  /// Size of the BASE id space (not the number of included ops).
  [[nodiscard]] std::size_t base_size() const noexcept { return h_->size(); }

  /// Is the op invoked within the view?
  [[nodiscard]] bool included(int id) const {
    return h_->op(id).invoke <= cutoff_;
  }

  /// Has the op responded within the view?  (A response after the cutoff
  /// makes the op pending in the view.)
  [[nodiscard]] bool completed(int id) const {
    const OpRecord& op = h_->op(id);
    return op.invoke <= cutoff_ && op.response != kNoTime &&
           op.response <= cutoff_;
  }

  /// Response time within the view: kNoTime when pending in the view.
  [[nodiscard]] Time response(int id) const {
    return completed(id) ? h_->op(id).response : kNoTime;
  }

  [[nodiscard]] Time invoke(int id) const { return h_->op(id).invoke; }
  [[nodiscard]] bool is_write(int id) const { return h_->op(id).is_write(); }
  [[nodiscard]] bool is_read(int id) const { return h_->op(id).is_read(); }

  /// Written value (writes, known from invocation) or returned value
  /// (reads completed within the view).  A read pending in the view has
  /// no value; callers must not ask for one.
  [[nodiscard]] Value value(int id) const { return h_->op(id).value; }

  /// Real-time precedence within the view (Definition 1 on the prefix):
  /// `a` responds in the view before `b` is invoked.
  [[nodiscard]] bool precedes(int a, int b) const {
    return completed(a) && h_->op(a).response < h_->op(b).invoke;
  }

  [[nodiscard]] Value initial(RegisterId reg) const {
    return h_->initial(reg);
  }

  /// Number of ops invoked within the view.
  [[nodiscard]] std::size_t included_count() const;

  /// Number of ops completed within the view.
  [[nodiscard]] std::size_t completed_count() const;

  /// Copies the view into a standalone History; op-for-op equal (modulo
  /// id re-densification) to `base().prefix_at(cutoff())`.  Test /
  /// diagnostic helper — the point of the view is NOT to do this on hot
  /// paths.
  [[nodiscard]] History materialize() const;

 private:
  const History* h_ = nullptr;
  Time cutoff_ = kNoTime;
};

}  // namespace rlt::history
