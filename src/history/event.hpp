// Operation records and events for register histories.
//
// A *history* (Herlihy & Wing) is a sequence of invocation and response
// events of operations applied to shared objects.  This library works with
// register histories only: operations are reads and writes on named
// registers.  Register values are modeled uniformly as 64-bit integers;
// richer payloads (tuples like the game's "[i, j]", vector-timestamped
// values, ⊥) are encoded into int64 by the modules that need them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

namespace rlt::history {

/// Identifies a process (0-based).
using ProcessId = int;

/// Identifies a register within a history.
using RegisterId = int;

/// Register value.  Encodings for structured payloads live with their
/// users (see game/encoding.hpp, registers/vector_ts.hpp).
using Value = std::int64_t;

/// Logical time of an event.  Times are the simulator's step counter (or
/// the recorder's sequence counter for real-thread runs): all events in a
/// history carry distinct, totally ordered times.
using Time = std::uint64_t;

/// Sentinel meaning "this operation has not responded (pending)".
inline constexpr Time kNoTime = ~Time{0};

/// Kind of a register operation.
enum class OpKind : std::uint8_t { kRead, kWrite };

[[nodiscard]] const char* to_string(OpKind kind) noexcept;

/// A single operation: its interval [invoke, response] plus semantics.
///
/// For a write, `value` is the value written.  For a read, `value` is the
/// value returned (meaningful only once the read has responded).
struct OpRecord {
  int id = -1;               ///< Dense index within its History.
  ProcessId process = -1;    ///< Invoking process.
  RegisterId reg = -1;       ///< Register operated on.
  OpKind kind = OpKind::kRead;
  Value value = 0;           ///< Written value / returned value.
  Time invoke = 0;           ///< Invocation time.
  Time response = kNoTime;   ///< Response time, kNoTime if pending.

  [[nodiscard]] bool pending() const noexcept { return response == kNoTime; }
  [[nodiscard]] bool is_write() const noexcept {
    return kind == OpKind::kWrite;
  }
  [[nodiscard]] bool is_read() const noexcept { return kind == OpKind::kRead; }

  /// Real-time precedence (Definition 1): this op's response occurs
  /// before `other`'s invocation.
  [[nodiscard]] bool precedes(const OpRecord& other) const noexcept {
    return !pending() && response < other.invoke;
  }

  /// Two operations are concurrent iff neither precedes the other.
  [[nodiscard]] bool concurrent_with(const OpRecord& other) const noexcept {
    return !precedes(other) && !other.precedes(*this);
  }

  friend bool operator==(const OpRecord&, const OpRecord&) = default;
};

std::ostream& operator<<(std::ostream& os, const OpRecord& op);

/// An invocation or response event, used when histories are walked in
/// event order (prefix enumeration, tree building).
struct Event {
  enum class Kind : std::uint8_t { kInvoke, kResponse };
  Kind kind = Kind::kInvoke;
  int op_id = -1;
  Time time = 0;

  friend bool operator==(const Event&, const Event&) = default;
};

std::ostream& operator<<(std::ostream& os, const Event& ev);

}  // namespace rlt::history
