// The termination-statistics sweep: grind the cross-product
//
//   algorithm family × adversary × process count × round budget × seed
//
// through `run_term_scenario` on the same work-stealing pool the safety
// sweep uses, and fold the per-scenario TermRecords into a *stable
// aggregate*: termination rate, round statistics, a survival tail
// P(round > k), and a 64-bit digest that — like the safety digest — is a
// pure function of the sweep options, independent of thread count,
// batch size, and machine.  Optionally streams one canonical record per
// scenario into a result store (src/sweep/store.hpp) for cross-commit
// diffing with tools/sweep_diff.py.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/shard.hpp"
#include "sweep/store.hpp"
#include "term/term_scenario.hpp"

namespace rlt::obs {
struct Hooks;
}  // namespace rlt::obs

namespace rlt::term {

/// The cross-product to sweep plus execution knobs.
struct TermSweepOptions {
  std::vector<Family> families = {Family::kConsensus, Family::kComposed,
                                  Family::kSharedCoin, Family::kGame};
  /// Invalid (family, adversary) pairs — scripted × consensus/coin — are
  /// skipped by enumeration, not errored.
  std::vector<TermAdversary> adversaries = {TermAdversary::kScripted,
                                            TermAdversary::kRandom,
                                            TermAdversary::kStalling};
  std::vector<int> process_counts = {4};
  std::vector<int> round_budgets = {64};
  std::uint64_t seed_begin = 0;  ///< Inclusive.
  std::uint64_t seed_end = 10;   ///< Exclusive.
  std::uint64_t max_actions_per_scenario = 2'000'000;
  int threads = 1;
  /// Scenarios per pool task (digest-independent; see SweepOptions).
  int batch_size = 16;
  /// Which slice of the cross-product this process runs (see
  /// sweep/shard.hpp); an execution knob, not config.
  sweep::ShardSpec shard;
};

/// The canonical config identity of a termination sweep (axes only, no
/// execution knobs) — pinned in shard-store headers and checked by the
/// merge.
[[nodiscard]] std::string config_key(const TermSweepOptions& o);

/// This shard's slice plus the bookkeeping the store and merge need
/// (see sweep::Enumeration for the contract).
struct TermEnumeration {
  std::uint64_t total = 0;
  std::vector<std::uint64_t> global_indices;
  std::vector<TermScenario> scenarios;
};

/// Materializes this shard's slice of the cross-product, seeds outermost
/// (consecutive task ids cover different configs; round robin spreads
/// every config across shards).  Deterministic order; the digest and the
/// result store fold in this order.
[[nodiscard]] TermEnumeration enumerate_term_shard(const TermSweepOptions& o);

/// The owned scenarios alone; the full cross-product under the default
/// shard.
[[nodiscard]] std::vector<TermScenario> enumerate_term_scenarios(
    const TermSweepOptions& o);

/// One survival-tail point: how many runs outlasted `k` rounds (capped
/// runs count — they outlast every budgeted k, which is exactly the
/// Theorem 6 signature).
struct TailPoint {
  int k = 0;
  std::uint64_t over = 0;
};

/// Per-family decision-round histogram: `buckets[r]` counts terminated
/// scenarios of `family` whose decision round was r (index 0 exists for
/// the coin family, whose stalled runs can decide at walk length 0);
/// capped runs have no decision round and are counted separately.
/// Folded in enumeration order, so — like everything in the summary —
/// byte-stable across thread counts and batch sizes.
struct FamilyRoundHist {
  Family family = Family::kConsensus;
  std::vector<std::uint64_t> buckets;
  std::uint64_t terminated = 0;  ///< Sum of buckets.
  std::uint64_t capped = 0;      ///< Runs with no decision round.
};

/// Aggregated outcome of a termination sweep.
struct TermSummary {
  std::uint64_t scenarios = 0;
  std::uint64_t terminated = 0;  ///< Every live process completed.
  std::uint64_t capped = 0;      ///< Round/action budget exhausted.
  std::uint64_t safety_violations = 0;  ///< Agreement/validity broke.
  std::uint64_t errors = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t total_coin_flips = 0;
  std::uint64_t rounds_sum = 0;  ///< Over terminated runs.
  int round_max = 0;             ///< Largest termination round observed.
  /// Survival tail at k = 1, 2, 4, 8, … (≤ round_max, at least k=1 when
  /// any run terminated or capped).
  std::vector<TailPoint> tail;
  /// Decision-round histograms, one per family present in the sweep
  /// (Family enum order).  Also emitted into the result store as one
  /// "term-hist/<family>" record per family, after the scenario records.
  std::vector<FamilyRoundHist> hists;
  /// Stable digest over every record in enumeration order.
  std::uint64_t digest = 0;
  /// Measured, NOT digest material:
  std::uint64_t wall_ns_total = 0;
  std::uint64_t wall_ns_max = 0;
  std::uint64_t elapsed_ns = 0;
  std::uint64_t steals = 0;
  /// key + detail of the first few error / safety-violation scenarios
  /// (capped runs are an expected outcome class and are not listed).
  std::vector<std::string> failures;
  std::uint64_t failures_truncated = 0;

  /// The deterministic section, one line per field, byte-identical
  /// across runs with equal options (timing fields absent).  Rates are
  /// rendered with integer arithmetic so the bytes never depend on
  /// floating-point formatting.
  [[nodiscard]] std::string stable_text() const;
};

/// The deterministic half of the termination aggregate as a composable
/// fold (the sweep::SweepFold counterpart): feed it, in global
/// enumeration order, exactly the per-scenario fields the store
/// persists, and it reproduces the counters, histograms, survival tail,
/// digest, and truncation marker of an unsharded run — whether the
/// records came from the pool or were re-read from N merged shard
/// stores.  Wall-clock fields on the incoming TermRecord are ignored.
class TermFold {
 public:
  static constexpr std::size_t kMaxReportedFailures = 16;

  TermFold();

  void add(const std::string& key, Family family, const TermRecord& r);

  /// The folded summary (timing fields zero).  Materializes the
  /// per-family histograms in Family enum order and computes the
  /// survival tail from them; when `sink` is non-null, also appends one
  /// canonical "term-hist/<family>" record per family present.
  [[nodiscard]] TermSummary finish(sweep::RecordSink* sink);

 private:
  TermSummary sum_;
  std::uint64_t never_terminated_ = 0;  ///< Capped-without-terminating.
  std::vector<FamilyRoundHist> hist_by_family_;
  std::vector<bool> family_present_;
};

/// Runs the sweep on `o.threads` pool workers.  `progress_every` > 0
/// prints a line to stderr every that-many completed scenarios.  When
/// `sink` is non-null, one canonical record per scenario is appended in
/// enumeration order after the pool drains (byte-stable across thread
/// counts and batch sizes).  `hooks` (obs/hooks.hpp) attaches the
/// observability fabric — trace spans and/or live progress; never
/// digest material (see sweep::run_sweep for the contract).
[[nodiscard]] TermSummary run_term_sweep(const TermSweepOptions& o,
                                         std::uint64_t progress_every = 0,
                                         sweep::RecordSink* sink = nullptr,
                                         const obs::Hooks* hooks = nullptr);

}  // namespace rlt::term
