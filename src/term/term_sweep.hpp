// The termination-statistics sweep: grind the cross-product
//
//   algorithm family × adversary × process count × round budget × seed
//
// through `run_term_scenario` on the same work-stealing pool the safety
// sweep uses, and fold the per-scenario TermRecords into a *stable
// aggregate*: termination rate, round statistics, a survival tail
// P(round > k), and a 64-bit digest that — like the safety digest — is a
// pure function of the sweep options, independent of thread count,
// batch size, and machine.  Optionally streams one canonical record per
// scenario into a result store (src/sweep/store.hpp) for cross-commit
// diffing with tools/sweep_diff.py.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/store.hpp"
#include "term/term_scenario.hpp"

namespace rlt::term {

/// The cross-product to sweep plus execution knobs.
struct TermSweepOptions {
  std::vector<Family> families = {Family::kConsensus, Family::kComposed,
                                  Family::kSharedCoin, Family::kGame};
  /// Invalid (family, adversary) pairs — scripted × consensus/coin — are
  /// skipped by enumeration, not errored.
  std::vector<TermAdversary> adversaries = {TermAdversary::kScripted,
                                            TermAdversary::kRandom,
                                            TermAdversary::kStalling};
  std::vector<int> process_counts = {4};
  std::vector<int> round_budgets = {64};
  std::uint64_t seed_begin = 0;  ///< Inclusive.
  std::uint64_t seed_end = 10;   ///< Exclusive.
  std::uint64_t max_actions_per_scenario = 2'000'000;
  int threads = 1;
  /// Scenarios per pool task (digest-independent; see SweepOptions).
  int batch_size = 16;
};

/// Materializes the cross-product, seeds outermost (consecutive task ids
/// cover different configs).  Deterministic order; the digest and the
/// result store fold in this order.
[[nodiscard]] std::vector<TermScenario> enumerate_term_scenarios(
    const TermSweepOptions& o);

/// One survival-tail point: how many runs outlasted `k` rounds (capped
/// runs count — they outlast every budgeted k, which is exactly the
/// Theorem 6 signature).
struct TailPoint {
  int k = 0;
  std::uint64_t over = 0;
};

/// Per-family decision-round histogram: `buckets[r]` counts terminated
/// scenarios of `family` whose decision round was r (index 0 exists for
/// the coin family, whose stalled runs can decide at walk length 0);
/// capped runs have no decision round and are counted separately.
/// Folded in enumeration order, so — like everything in the summary —
/// byte-stable across thread counts and batch sizes.
struct FamilyRoundHist {
  Family family = Family::kConsensus;
  std::vector<std::uint64_t> buckets;
  std::uint64_t terminated = 0;  ///< Sum of buckets.
  std::uint64_t capped = 0;      ///< Runs with no decision round.
};

/// Aggregated outcome of a termination sweep.
struct TermSummary {
  std::uint64_t scenarios = 0;
  std::uint64_t terminated = 0;  ///< Every live process completed.
  std::uint64_t capped = 0;      ///< Round/action budget exhausted.
  std::uint64_t safety_violations = 0;  ///< Agreement/validity broke.
  std::uint64_t errors = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t total_coin_flips = 0;
  std::uint64_t rounds_sum = 0;  ///< Over terminated runs.
  int round_max = 0;             ///< Largest termination round observed.
  /// Survival tail at k = 1, 2, 4, 8, … (≤ round_max, at least k=1 when
  /// any run terminated or capped).
  std::vector<TailPoint> tail;
  /// Decision-round histograms, one per family present in the sweep
  /// (Family enum order).  Also emitted into the result store as one
  /// "term-hist/<family>" record per family, after the scenario records.
  std::vector<FamilyRoundHist> hists;
  /// Stable digest over every record in enumeration order.
  std::uint64_t digest = 0;
  /// Measured, NOT digest material:
  std::uint64_t wall_ns_total = 0;
  std::uint64_t wall_ns_max = 0;
  std::uint64_t elapsed_ns = 0;
  std::uint64_t steals = 0;
  /// key + detail of the first few error / safety-violation scenarios
  /// (capped runs are an expected outcome class and are not listed).
  std::vector<std::string> failures;
  std::uint64_t failures_truncated = 0;

  /// The deterministic section, one line per field, byte-identical
  /// across runs with equal options (timing fields absent).  Rates are
  /// rendered with integer arithmetic so the bytes never depend on
  /// floating-point formatting.
  [[nodiscard]] std::string stable_text() const;
};

/// Runs the sweep on `o.threads` pool workers.  `progress_every` > 0
/// prints a line to stderr every that-many completed scenarios.  When
/// `sink` is non-null, one canonical record per scenario is appended in
/// enumeration order after the pool drains (byte-stable across thread
/// counts and batch sizes).
[[nodiscard]] TermSummary run_term_sweep(const TermSweepOptions& o,
                                         std::uint64_t progress_every = 0,
                                         sweep::RecordSink* sink = nullptr);

}  // namespace rlt::term
