#include "term/term_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>

#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "sweep/fnv.hpp"
#include "sweep/pool.hpp"
#include "util/assert.hpp"

namespace rlt::term {
namespace {

/// Per shard — sharding raises the sweepable ceiling N-fold.
constexpr std::uint64_t kMaxScenarios = 10'000'000;

/// Renders `num/den` as a fixed-point decimal with `digits` fractional
/// places using integer arithmetic only — the stable_text bytes must not
/// depend on a platform's floating-point formatting.
std::string fixed_ratio(std::uint64_t num, std::uint64_t den, int digits) {
  if (den == 0) return "n/a";
  std::uint64_t scale = 1;
  for (int i = 0; i < digits; ++i) scale *= 10;
  const std::uint64_t scaled = num * scale / den;
  std::ostringstream os;
  os << scaled / scale << '.' << std::setw(digits) << std::setfill('0')
     << scaled % scale;
  return os.str();
}

}  // namespace

std::string config_key(const TermSweepOptions& o) {
  std::ostringstream os;
  os << "families=";
  for (std::size_t i = 0; i < o.families.size(); ++i) {
    os << (i ? "," : "") << to_string(o.families[i]);
  }
  os << " advs=";
  for (std::size_t i = 0; i < o.adversaries.size(); ++i) {
    os << (i ? "," : "") << to_string(o.adversaries[i]);
  }
  os << " procs=";
  for (std::size_t i = 0; i < o.process_counts.size(); ++i) {
    os << (i ? "," : "") << o.process_counts[i];
  }
  os << " rounds=";
  for (std::size_t i = 0; i < o.round_budgets.size(); ++i) {
    os << (i ? "," : "") << o.round_budgets[i];
  }
  os << " seeds=" << o.seed_begin << ':' << o.seed_end
     << " max-actions=" << o.max_actions_per_scenario;
  return os.str();
}

TermEnumeration enumerate_term_shard(const TermSweepOptions& o) {
  RLT_CHECK_MSG(o.seed_begin <= o.seed_end, "seed range is reversed");
  RLT_CHECK_MSG(!o.families.empty(), "family list is empty");
  RLT_CHECK_MSG(!o.adversaries.empty(), "adversary list is empty");
  RLT_CHECK_MSG(!o.process_counts.empty(), "process-count list is empty");
  RLT_CHECK_MSG(!o.round_budgets.empty(), "round-budget list is empty");
  RLT_CHECK_MSG(o.shard.count > 0 && o.shard.index < o.shard.count,
                "shard index/count out of range");
  std::uint64_t pairs = 0;
  for (const Family f : o.families) {
    for (const TermAdversary a : o.adversaries) {
      if (combination_valid(f, a)) ++pairs;
    }
  }
  const std::uint64_t configs =
      pairs * o.process_counts.size() * o.round_budgets.size();
  const std::uint64_t seeds = o.seed_end - o.seed_begin;
  RLT_CHECK_MSG(configs == 0 || seeds <= UINT64_MAX / configs,
                "termination sweep cross-product overflows");
  TermEnumeration en;
  en.total = configs * seeds;
  RLT_CHECK_MSG(o.shard.share(en.total) <= kMaxScenarios,
                "termination sweep cross-product exceeds the per-shard "
                "scenario limit; narrow the seed range or axes, or use "
                "more shards");
  en.global_indices.reserve(o.shard.share(en.total));
  en.scenarios.reserve(o.shard.share(en.total));
  std::uint64_t gi = 0;
  for (std::uint64_t seed = o.seed_begin; seed < o.seed_end; ++seed) {
    for (const Family f : o.families) {
      for (const TermAdversary a : o.adversaries) {
        if (!combination_valid(f, a)) continue;
        for (const int procs : o.process_counts) {
          for (const int rounds : o.round_budgets) {
            if (o.shard.owns(gi)) {
              TermScenario s;
              s.family = f;
              s.adversary = a;
              s.processes = procs;
              s.seed = seed;
              s.max_rounds = rounds;
              s.max_actions = o.max_actions_per_scenario;
              en.global_indices.push_back(gi);
              en.scenarios.push_back(s);
            }
            ++gi;
          }
        }
      }
    }
  }
  RLT_CHECK_MSG(gi == en.total, "enumeration count disagrees with the "
                                "computed cross-product size");
  return en;
}

std::vector<TermScenario> enumerate_term_scenarios(const TermSweepOptions& o) {
  return enumerate_term_shard(o).scenarios;
}

std::string TermSummary::stable_text() const {
  std::ostringstream os;
  os << "scenarios " << scenarios << '\n'
     << "terminated " << terminated << '\n'
     << "capped " << capped << '\n'
     << "safety_violations " << safety_violations << '\n'
     << "errors " << errors << '\n'
     << "steps " << total_steps << '\n'
     << "coin_flips " << total_coin_flips << '\n'
     << "round_sum " << rounds_sum << '\n'
     << "round_max " << round_max << '\n'
     << "termination_rate " << fixed_ratio(terminated, scenarios, 4) << '\n'
     << "mean_round " << fixed_ratio(rounds_sum, terminated, 2) << '\n';
  for (const TailPoint& t : tail) {
    os << "tail round>" << t.k << ' ' << t.over << '\n';
  }
  for (const FamilyRoundHist& h : hists) {
    for (std::size_t r = 0; r < h.buckets.size(); ++r) {
      if (h.buckets[r] == 0) continue;
      os << "hist " << to_string(h.family) << " r" << r << ' '
         << h.buckets[r] << '\n';
    }
    if (h.capped > 0) {
      os << "hist " << to_string(h.family) << " capped " << h.capped << '\n';
    }
  }
  os << "digest " << std::hex << digest << std::dec << '\n';
  for (const std::string& f : failures) os << "failure " << f << '\n';
  if (failures_truncated > 0) {
    os << "failure ... and " << failures_truncated
       << " more failing scenario(s) not listed\n";
  }
  return os.str();
}

// Per-family histograms are keyed by the Family enum value (fixed small
// range) and materialized into sum.hists in enum order at finish().
namespace {
constexpr std::size_t kFamilies = 4;
static_assert(static_cast<std::size_t>(Family::kGame) == kFamilies - 1,
              "a Family enumerator was added: grow the histogram fold");
}  // namespace

TermFold::TermFold()
    : hist_by_family_(kFamilies), family_present_(kFamilies, false) {
  sum_.digest = sweep::kFnvOffset;
}

void TermFold::add(const std::string& key, Family family,
                   const TermRecord& r) {
  const std::size_t fam = static_cast<std::size_t>(family);
  FamilyRoundHist& hist = hist_by_family_[fam];
  family_present_[fam] = true;
  ++sum_.scenarios;
  if (r.terminated) {
    ++sum_.terminated;
    sum_.rounds_sum += static_cast<std::uint64_t>(r.rounds);
    sum_.round_max = std::max(sum_.round_max, r.rounds);
    const std::size_t bucket = static_cast<std::size_t>(r.rounds);
    if (hist.buckets.size() <= bucket) hist.buckets.resize(bucket + 1, 0);
    ++hist.buckets[bucket];
    ++hist.terminated;
  } else if (r.capped) {
    ++never_terminated_;
    ++hist.capped;
  }
  if (r.capped) ++sum_.capped;
  if (!r.safety_ok) ++sum_.safety_violations;
  if (r.error) ++sum_.errors;
  sum_.total_steps += r.steps;
  sum_.total_coin_flips += r.coin_flips;
  sweep::fnv_mix_str(sum_.digest, key);
  sweep::fnv_mix_u64(sum_.digest, r.terminated ? 1 : 0);
  sweep::fnv_mix_u64(sum_.digest, r.capped ? 1 : 0);
  sweep::fnv_mix_u64(sum_.digest, r.safety_ok ? 1 : 0);
  sweep::fnv_mix_u64(sum_.digest, r.error ? 1 : 0);
  sweep::fnv_mix_u64(sum_.digest, static_cast<std::uint64_t>(r.rounds));
  sweep::fnv_mix_u64(sum_.digest, static_cast<std::uint64_t>(r.stalled));
  sweep::fnv_mix_u64(sum_.digest, r.coin_flips);
  sweep::fnv_mix_u64(sum_.digest, r.steps);
  sweep::fnv_mix_u64(sum_.digest, r.outcome_hash);
  if (r.error || !r.safety_ok) {
    if (sum_.failures.size() < kMaxReportedFailures) {
      sum_.failures.push_back(key + ": " + r.detail);
    } else {
      ++sum_.failures_truncated;
    }
  }
}

TermSummary TermFold::finish(sweep::RecordSink* sink) {
  // Materialize the per-family histograms in Family enum order and, when
  // persisting, append one canonical record per family after the
  // scenario records (same enumeration-order stability contract).
  for (std::size_t fam = 0; fam < kFamilies; ++fam) {
    if (!family_present_[fam]) continue;
    FamilyRoundHist hist = std::move(hist_by_family_[fam]);
    hist.family = static_cast<Family>(fam);
    if (sink != nullptr) {
      std::ostringstream buckets;
      bool first = true;
      for (std::size_t r = 0; r < hist.buckets.size(); ++r) {
        if (hist.buckets[r] == 0) continue;
        if (!first) buckets << ' ';
        buckets << 'r' << r << ':' << hist.buckets[r];
        first = false;
      }
      sweep::Record rec;
      rec.str("key", std::string("term-hist/") + to_string(hist.family))
          .str("mode", "term-hist")
          .u64("terminated", hist.terminated)
          .u64("capped", hist.capped)
          .str("buckets", buckets.str());
      sink->append(rec);
    }
    sum_.hists.push_back(std::move(hist));
  }

  // Survival tail at powers of two, computed from the histograms (they
  // are a lossless summary of the decision rounds): runs that never
  // terminated but hit a budget outlast every k (the Theorem 6
  // signature); terminated runs outlast k while rounds > k.
  if (sum_.terminated > 0 || never_terminated_ > 0) {
    for (int k = 1; k <= std::max(sum_.round_max, 1); k *= 2) {
      TailPoint t;
      t.k = k;
      t.over = never_terminated_;
      for (const FamilyRoundHist& h : sum_.hists) {
        for (std::size_t r = static_cast<std::size_t>(k) + 1;
             r < h.buckets.size(); ++r) {
          t.over += h.buckets[r];
        }
      }
      sum_.tail.push_back(t);
    }
  }
  return std::move(sum_);
}

namespace {

/// Progress outcome class of a termination record (the four class slots
/// of the progress protocol: term / capped / other / err).
int progress_class(const TermRecord& r) noexcept {
  if (r.error || !r.safety_ok) return 3;
  if (r.terminated) return 0;
  if (r.capped) return 1;
  return 2;
}

}  // namespace

TermSummary run_term_sweep(const TermSweepOptions& o,
                           std::uint64_t progress_every,
                           sweep::RecordSink* sink, const obs::Hooks* hooks) {
  const auto t0 = std::chrono::steady_clock::now();
  const TermEnumeration en = enumerate_term_shard(o);
  const std::vector<TermScenario>& scenarios = en.scenarios;
  std::vector<TermRecord> records(scenarios.size());

  const bool tracing = hooks != nullptr && hooks->trace != nullptr;
  if (tracing) obs::set_enabled(true);
  std::vector<obs::CounterDelta> deltas(tracing ? scenarios.size() : 0);
  std::unique_ptr<obs::ProgressMeter> meter;
  if (hooks != nullptr && hooks->progress_on()) {
    obs::ProgressOptions po;
    po.total = scenarios.size();
    po.mode = "term";
    po.classes = {"term", "capped", "other", "err"};
    po.fd = hooks->progress_fd;
    po.heartbeat_ms = hooks->heartbeat_ms;
    meter = std::make_unique<obs::ProgressMeter>(po);
  }

  std::uint64_t steal_count = 0;
  {
    sweep::WorkStealingPool pool(o.threads);
    std::atomic<std::uint64_t> completed{0};
    const std::size_t batch =
        static_cast<std::size_t>(std::max(1, o.batch_size));
    obs::ProgressMeter* const meter_p = meter.get();
    for (std::size_t begin = 0; begin < scenarios.size(); begin += batch) {
      const std::size_t end = std::min(begin + batch, scenarios.size());
      pool.submit([&scenarios, &records, &completed, &deltas, progress_every,
                   begin, end, tracing, meter_p] {
        const bool timing = obs::enabled();
        const auto bt0 = std::chrono::steady_clock::now();
        for (std::size_t i = begin; i < end; ++i) {
          obs::CounterDelta before;
          if (tracing) before = obs::thread_counters();
          records[i] = run_term_scenario(scenarios[i]);
          if (obs::enabled()) {
            obs::count(obs::Counter::kTermCoinFlips, records[i].coin_flips);
            if (records[i].capped) obs::count(obs::Counter::kTermCapped);
          }
          if (tracing) {
            obs::CounterDelta after = obs::thread_counters();
            after -= before;
            deltas[i] = after;
          }
          if (meter_p != nullptr) meter_p->tick(progress_class(records[i]));
          const std::uint64_t done =
              completed.fetch_add(1, std::memory_order_relaxed) + 1;
          if (progress_every > 0 && done % progress_every == 0) {
            std::cerr << "[term-sweep] " << done << " scenarios done\n";
          }
        }
        if (timing) {
          obs::count(obs::Counter::kPoolTasks);
          obs::hist(obs::Hist::kPoolTaskNs,
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - bt0)
                            .count()));
        }
      });
    }
    pool.wait_idle();
    steal_count = pool.steals();
  }
  obs::count(obs::Counter::kPoolSteals, steal_count);
  obs::gauge_max(obs::Gauge::kPoolThreads,
                 static_cast<std::uint64_t>(std::max(1, o.threads)));
  if (meter) meter->finish();

  // Deterministic fold: enumeration order, no wall-clock fields.  The
  // fold inputs are exactly the persisted record fields, so a merge that
  // re-folds shard-store records reproduces this summary bit for bit.
  if (sink != nullptr && o.shard.active()) {
    sink->append(sweep::shard_header_record("term", o.shard, config_key(o),
                                            en.total, scenarios.size()));
  }
  TermFold fold;
  std::uint64_t wall_ns_total = 0;
  std::uint64_t wall_ns_max = 0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const TermRecord& r = records[i];
    wall_ns_total += r.wall_ns;
    if (r.wall_ns > wall_ns_max) wall_ns_max = r.wall_ns;
    const std::string key = scenarios[i].key();
    fold.add(key, scenarios[i].family, r);
    if (sink != nullptr) {
      sweep::Record rec;
      rec.u64("gi", en.global_indices[i])
          .str("key", key)
          .str("mode", "term")
          .boolean("terminated", r.terminated)
          .boolean("capped", r.capped)
          .boolean("safety_ok", r.safety_ok)
          .boolean("error", r.error)
          .u64("rounds", static_cast<std::uint64_t>(r.rounds))
          .u64("stalled", static_cast<std::uint64_t>(r.stalled))
          .u64("coin_flips", r.coin_flips)
          .u64("steps", r.steps)
          .hex("outcome_hash", r.outcome_hash)
          .str("detail", r.detail);
      sink->append(rec);
    }
    if (tracing) {
      // Enumeration-order span, byte-stable across threads/batch; wall
      // clock only under trace_times.
      sweep::Record span;
      span.str("obs", "span")
          .u64("gi", en.global_indices[i])
          .str("key", key)
          .str("mode", "term")
          .boolean("terminated", r.terminated)
          .boolean("capped", r.capped)
          .u64("rounds", static_cast<std::uint64_t>(r.rounds))
          .u64("steps", r.steps);
      if (hooks->trace_times) span.u64("wall_ns", r.wall_ns);
      obs::append_stable_deltas(deltas[i], span);
      hooks->trace->append(span);
    }
  }
  if (tracing && hooks->trace_times) {
    sweep::Record close;
    // "stable":false: wall-clock record, skippable mechanically.
    close.str("obs", "span")
        .str("span", "sweep")
        .str("mode", "term")
        .boolean("stable", false)
        .u64("scenarios", scenarios.size())
        .u64("elapsed_ns",
             static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count()));
    hooks->trace->append(close);
  }
  // In a sharded store the per-family histogram records are this shard's
  // PARTIALS (useful for eyeballing a slice; the merge recomputes the
  // global ones from the scenario records and drops these).
  TermSummary sum = fold.finish(sink);
  if (sink != nullptr && o.shard.active()) {
    sink->append(
        sweep::shard_trailer_record(o.shard, scenarios.size(), sum.digest));
  }
  sum.wall_ns_total = wall_ns_total;
  sum.wall_ns_max = wall_ns_max;
  sum.steals = steal_count;
  sum.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return sum;
}

}  // namespace rlt::term
