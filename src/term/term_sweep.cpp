#include "term/term_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "sweep/fnv.hpp"
#include "sweep/pool.hpp"
#include "util/assert.hpp"

namespace rlt::term {
namespace {

constexpr std::size_t kMaxReportedFailures = 16;
constexpr std::uint64_t kMaxScenarios = 10'000'000;

/// Renders `num/den` as a fixed-point decimal with `digits` fractional
/// places using integer arithmetic only — the stable_text bytes must not
/// depend on a platform's floating-point formatting.
std::string fixed_ratio(std::uint64_t num, std::uint64_t den, int digits) {
  if (den == 0) return "n/a";
  std::uint64_t scale = 1;
  for (int i = 0; i < digits; ++i) scale *= 10;
  const std::uint64_t scaled = num * scale / den;
  std::ostringstream os;
  os << scaled / scale << '.' << std::setw(digits) << std::setfill('0')
     << scaled % scale;
  return os.str();
}

}  // namespace

std::vector<TermScenario> enumerate_term_scenarios(const TermSweepOptions& o) {
  RLT_CHECK_MSG(o.seed_begin <= o.seed_end, "seed range is reversed");
  RLT_CHECK_MSG(!o.families.empty(), "family list is empty");
  RLT_CHECK_MSG(!o.adversaries.empty(), "adversary list is empty");
  RLT_CHECK_MSG(!o.process_counts.empty(), "process-count list is empty");
  RLT_CHECK_MSG(!o.round_budgets.empty(), "round-budget list is empty");
  std::uint64_t pairs = 0;
  for (const Family f : o.families) {
    for (const TermAdversary a : o.adversaries) {
      if (combination_valid(f, a)) ++pairs;
    }
  }
  const std::uint64_t configs =
      pairs * o.process_counts.size() * o.round_budgets.size();
  const std::uint64_t seeds = o.seed_end - o.seed_begin;
  RLT_CHECK_MSG(seeds == 0 || configs <= kMaxScenarios / seeds,
                "termination sweep cross-product exceeds the scenario "
                "limit; narrow the seed range or axes");
  std::vector<TermScenario> out;
  out.reserve(configs * seeds);
  for (std::uint64_t seed = o.seed_begin; seed < o.seed_end; ++seed) {
    for (const Family f : o.families) {
      for (const TermAdversary a : o.adversaries) {
        if (!combination_valid(f, a)) continue;
        for (const int procs : o.process_counts) {
          for (const int rounds : o.round_budgets) {
            TermScenario s;
            s.family = f;
            s.adversary = a;
            s.processes = procs;
            s.seed = seed;
            s.max_rounds = rounds;
            s.max_actions = o.max_actions_per_scenario;
            out.push_back(s);
          }
        }
      }
    }
  }
  return out;
}

std::string TermSummary::stable_text() const {
  std::ostringstream os;
  os << "scenarios " << scenarios << '\n'
     << "terminated " << terminated << '\n'
     << "capped " << capped << '\n'
     << "safety_violations " << safety_violations << '\n'
     << "errors " << errors << '\n'
     << "steps " << total_steps << '\n'
     << "coin_flips " << total_coin_flips << '\n'
     << "round_sum " << rounds_sum << '\n'
     << "round_max " << round_max << '\n'
     << "termination_rate " << fixed_ratio(terminated, scenarios, 4) << '\n'
     << "mean_round " << fixed_ratio(rounds_sum, terminated, 2) << '\n';
  for (const TailPoint& t : tail) {
    os << "tail round>" << t.k << ' ' << t.over << '\n';
  }
  for (const FamilyRoundHist& h : hists) {
    for (std::size_t r = 0; r < h.buckets.size(); ++r) {
      if (h.buckets[r] == 0) continue;
      os << "hist " << to_string(h.family) << " r" << r << ' '
         << h.buckets[r] << '\n';
    }
    if (h.capped > 0) {
      os << "hist " << to_string(h.family) << " capped " << h.capped << '\n';
    }
  }
  os << "digest " << std::hex << digest << std::dec << '\n';
  for (const std::string& f : failures) os << "failure " << f << '\n';
  if (failures_truncated > 0) {
    os << "failure ... and " << failures_truncated
       << " more failing scenario(s) not listed\n";
  }
  return os.str();
}

TermSummary run_term_sweep(const TermSweepOptions& o,
                           std::uint64_t progress_every,
                           sweep::RecordSink* sink) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<TermScenario> scenarios = enumerate_term_scenarios(o);
  std::vector<TermRecord> records(scenarios.size());

  std::uint64_t steal_count = 0;
  {
    sweep::WorkStealingPool pool(o.threads);
    std::atomic<std::uint64_t> completed{0};
    const std::size_t batch =
        static_cast<std::size_t>(std::max(1, o.batch_size));
    for (std::size_t begin = 0; begin < scenarios.size(); begin += batch) {
      const std::size_t end = std::min(begin + batch, scenarios.size());
      pool.submit([&scenarios, &records, &completed, progress_every, begin,
                   end] {
        for (std::size_t i = begin; i < end; ++i) {
          records[i] = run_term_scenario(scenarios[i]);
          const std::uint64_t done =
              completed.fetch_add(1, std::memory_order_relaxed) + 1;
          if (progress_every > 0 && done % progress_every == 0) {
            std::cerr << "[term-sweep] " << done << " scenarios done\n";
          }
        }
      });
    }
    pool.wait_idle();
    steal_count = pool.steals();
  }

  // Deterministic fold: enumeration order, no wall-clock fields.
  TermSummary sum;
  sum.digest = sweep::kFnvOffset;
  std::vector<int> terminated_rounds;  ///< For the survival tail.
  std::uint64_t never_terminated = 0;  ///< Capped-without-terminating.
  // Per-family decision-round histograms, keyed by the Family enum value
  // (fixed small range), materialized into sum.hists after the fold.
  constexpr std::size_t kFamilies = 4;
  static_assert(static_cast<std::size_t>(Family::kGame) == kFamilies - 1,
                "a Family enumerator was added: grow the histogram fold");
  std::vector<FamilyRoundHist> hist_by_family(kFamilies);
  std::vector<bool> family_present(kFamilies, false);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const TermRecord& r = records[i];
    const std::size_t fam = static_cast<std::size_t>(scenarios[i].family);
    FamilyRoundHist& hist = hist_by_family[fam];
    family_present[fam] = true;
    ++sum.scenarios;
    if (r.terminated) {
      ++sum.terminated;
      sum.rounds_sum += static_cast<std::uint64_t>(r.rounds);
      sum.round_max = std::max(sum.round_max, r.rounds);
      terminated_rounds.push_back(r.rounds);
      const std::size_t bucket = static_cast<std::size_t>(r.rounds);
      if (hist.buckets.size() <= bucket) hist.buckets.resize(bucket + 1, 0);
      ++hist.buckets[bucket];
      ++hist.terminated;
    } else if (r.capped) {
      ++never_terminated;
      ++hist.capped;
    }
    if (r.capped) ++sum.capped;
    if (!r.safety_ok) ++sum.safety_violations;
    if (r.error) ++sum.errors;
    sum.total_steps += r.steps;
    sum.total_coin_flips += r.coin_flips;
    sum.wall_ns_total += r.wall_ns;
    if (r.wall_ns > sum.wall_ns_max) sum.wall_ns_max = r.wall_ns;
    const std::string key = scenarios[i].key();
    sweep::fnv_mix_str(sum.digest, key);
    sweep::fnv_mix_u64(sum.digest, r.terminated ? 1 : 0);
    sweep::fnv_mix_u64(sum.digest, r.capped ? 1 : 0);
    sweep::fnv_mix_u64(sum.digest, r.safety_ok ? 1 : 0);
    sweep::fnv_mix_u64(sum.digest, r.error ? 1 : 0);
    sweep::fnv_mix_u64(sum.digest, static_cast<std::uint64_t>(r.rounds));
    sweep::fnv_mix_u64(sum.digest, static_cast<std::uint64_t>(r.stalled));
    sweep::fnv_mix_u64(sum.digest, r.coin_flips);
    sweep::fnv_mix_u64(sum.digest, r.steps);
    sweep::fnv_mix_u64(sum.digest, r.outcome_hash);
    if (sink != nullptr) {
      sweep::Record rec;
      rec.str("key", key)
          .str("mode", "term")
          .boolean("terminated", r.terminated)
          .boolean("capped", r.capped)
          .boolean("safety_ok", r.safety_ok)
          .boolean("error", r.error)
          .u64("rounds", static_cast<std::uint64_t>(r.rounds))
          .u64("stalled", static_cast<std::uint64_t>(r.stalled))
          .u64("coin_flips", r.coin_flips)
          .u64("steps", r.steps)
          .hex("outcome_hash", r.outcome_hash)
          .str("detail", r.detail);
      sink->append(rec);
    }
    if (r.error || !r.safety_ok) {
      if (sum.failures.size() < kMaxReportedFailures) {
        sum.failures.push_back(key + ": " + r.detail);
      } else {
        ++sum.failures_truncated;
      }
    }
  }

  // Materialize the per-family histograms in Family enum order and, when
  // persisting, append one canonical record per family after the
  // scenario records (same enumeration-order stability contract).
  for (std::size_t fam = 0; fam < kFamilies; ++fam) {
    if (!family_present[fam]) continue;
    FamilyRoundHist hist = std::move(hist_by_family[fam]);
    hist.family = static_cast<Family>(fam);
    if (sink != nullptr) {
      std::ostringstream buckets;
      bool first = true;
      for (std::size_t r = 0; r < hist.buckets.size(); ++r) {
        if (hist.buckets[r] == 0) continue;
        if (!first) buckets << ' ';
        buckets << 'r' << r << ':' << hist.buckets[r];
        first = false;
      }
      sweep::Record rec;
      rec.str("key", std::string("term-hist/") + to_string(hist.family))
          .str("mode", "term-hist")
          .u64("terminated", hist.terminated)
          .u64("capped", hist.capped)
          .str("buckets", buckets.str());
      sink->append(rec);
    }
    sum.hists.push_back(std::move(hist));
  }

  // Survival tail at powers of two, from the plain round list collected
  // above (not the records — no point dragging their strings through
  // cache again): runs that never terminated but hit a budget outlast
  // every k (the Theorem 6 signature); terminated runs outlast k while
  // rounds > k.
  if (!terminated_rounds.empty() || never_terminated > 0) {
    for (int k = 1; k <= std::max(sum.round_max, 1); k *= 2) {
      TailPoint t;
      t.k = k;
      t.over = never_terminated;
      for (const int rounds : terminated_rounds) {
        if (rounds > k) ++t.over;
      }
      sum.tail.push_back(t);
    }
  }

  sum.steals = steal_count;
  sum.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return sum;
}

}  // namespace rlt::term
