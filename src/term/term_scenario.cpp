#include "term/term_scenario.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <sstream>
#include <vector>

#include "consensus/composed.hpp"
#include "consensus/rand_consensus.hpp"
#include "consensus/shared_coin.hpp"
#include "game/game_runner.hpp"
#include "sim/adversary.hpp"
#include "sweep/fnv.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rlt::term {
namespace {

using sweep::fnv_mix_u64;
using sweep::kFnvOffset;
using sweep::kFnvPrime;

/// Derives the adversary's seed stream from the scenario, decorrelated
/// from the scheduler's coin stream (which uses the raw scenario seed).
std::uint64_t adversary_seed(const TermScenario& s) {
  std::uint64_t mix = kFnvOffset;
  fnv_mix_u64(mix, s.seed);
  fnv_mix_u64(mix, static_cast<std::uint64_t>(s.family));
  fnv_mix_u64(mix, static_cast<std::uint64_t>(s.adversary));
  return mix;
}

/// Victims of the stalling adversary: a seeded strict minority, a pure
/// function of (processes, seed) via the picker shared with the safety
/// sweep's stall axis.  Empty unless the adversary is kStalling.
std::vector<sim::ProcessId> stall_victims(const TermScenario& s) {
  if (s.adversary != TermAdversary::kStalling) return {};
  std::uint64_t mix = kFnvOffset;
  fnv_mix_u64(mix, s.seed);
  fnv_mix_u64(mix, 0x57A11ULL);  // domain-separate from adversary_seed
  return sim::pick_strict_minority(s.processes, mix);
}

bool is_stalled(const std::vector<sim::ProcessId>& victims, int p) {
  return std::find(victims.begin(), victims.end(), p) != victims.end();
}

/// Accumulates the outcome fingerprint.
struct Hash {
  std::uint64_t h = kFnvOffset;
  void mix(std::uint64_t x) { fnv_mix_u64(h, x); }
  void mix_i(int x) { fnv_mix_u64(h, static_cast<std::uint64_t>(x)); }
};

/// Folds the record's own digest-relevant fields into its fingerprint
/// (per-family extras were mixed by the drivers before this).
void seal_record(TermRecord& r, Hash& hash) {
  hash.mix(r.terminated ? 1 : 0);
  hash.mix(r.capped ? 1 : 0);
  hash.mix(r.safety_ok ? 1 : 0);
  hash.mix(r.error ? 1 : 0);
  hash.mix_i(r.rounds);
  hash.mix_i(r.stalled);
  hash.mix(r.coin_flips);
  hash.mix(r.steps);
  r.outcome_hash = hash.h;
}

// ---- coroutine bodies (free functions, per CP.51) -----------------------

sim::Task consensus_proc(sim::Proc& p, consensus::ConsensusState& st, int i) {
  (void)co_await consensus_body(p, st, i);
}

sim::Task coin_proc(sim::Proc& p, consensus::SharedCoinConfig cfg, int i,
                    std::vector<int>* outs) {
  (*outs)[static_cast<std::size_t>(i)] =
      co_await consensus::shared_coin_flip(p, cfg, i);
}

// ---- family drivers -----------------------------------------------------

/// Consensus inputs derived deterministically from the scenario seed
/// (mirrors the composed runner's derivation, different stream).
std::vector<int> derive_inputs(const TermScenario& s) {
  util::Rng rng(s.seed ^ 0xC0FFEEULL);
  std::vector<int> in(static_cast<std::size_t>(s.processes));
  for (int& b : in) b = rng.flip();
  return in;
}

void run_consensus_family(const TermScenario& s,
                          const std::vector<sim::ProcessId>& victims,
                          TermRecord& out, Hash& hash) {
  consensus::ConsensusConfig cfg;
  cfg.n = s.processes;
  cfg.max_rounds = s.max_rounds;
  sim::Scheduler sched(s.seed);
  consensus::ConsensusState st(cfg, derive_inputs(s));
  setup_consensus(sched, cfg, sim::Semantics::kAtomic);
  for (int i = 0; i < cfg.n; ++i) {
    sched.add_process("c" + std::to_string(i), [&st, i](sim::Proc& p) {
      return consensus_proc(p, st, i);
    });
  }
  sim::RunOutcome outcome;
  if (victims.empty()) {
    sim::RandomAdversary adv(adversary_seed(s));
    outcome = sched.run(adv, s.max_actions);
  } else {
    sim::StallingAdversary adv(victims, adversary_seed(s));
    outcome = sched.run(adv, s.max_actions);
  }
  out.terminated = true;
  for (int i = 0; i < cfg.n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    hash.mix_i(st.inputs[ui]);
    hash.mix_i(st.decisions[ui]);
    hash.mix_i(st.decided_round[ui]);
    if (is_stalled(victims, i)) continue;
    if (st.decisions[ui] < 0) out.terminated = false;
    out.rounds = std::max(out.rounds, st.decided_round[ui]);
  }
  if (!out.terminated) out.rounds = 0;
  out.capped = st.hit_round_cap || outcome == sim::RunOutcome::kActionCap;
  out.safety_ok = st.agreement() && st.validity();
  if (!out.safety_ok) out.detail = "consensus agreement/validity violated";
  out.coin_flips = sched.coin_log().size();
  out.steps = sched.actions_applied();
}

void run_coin_family(const TermScenario& s,
                     const std::vector<sim::ProcessId>& victims,
                     TermRecord& out, Hash& hash) {
  consensus::SharedCoinConfig cfg;
  cfg.n = s.processes;
  cfg.first_reg = 0;
  cfg.threshold_per_proc = 2;
  sim::Scheduler sched(s.seed);
  setup_shared_coin(sched, cfg, sim::Semantics::kAtomic);
  std::vector<int> outs(static_cast<std::size_t>(cfg.n), -1);
  for (int i = 0; i < cfg.n; ++i) {
    sched.add_process("coin" + std::to_string(i),
                      [cfg, i, &outs](sim::Proc& p) {
                        return coin_proc(p, cfg, i, &outs);
                      });
  }
  // The coin has no round structure of its own, so the round budget caps
  // the random walk through the action budget: roughly max_rounds flip
  // iterations per process (each iteration is a flip, a counter write,
  // and n counter reads).  Tight budgets genuinely cap long walks —
  // the axis is live for this family too, not just a key suffix.
  const std::uint64_t budget =
      std::min(s.max_actions,
               static_cast<std::uint64_t>(s.max_rounds + 2) *
                   static_cast<std::uint64_t>(s.processes) *
                   static_cast<std::uint64_t>(s.processes + 6));
  sim::RunOutcome outcome;
  if (victims.empty()) {
    sim::RandomAdversary adv(adversary_seed(s));
    outcome = sched.run(adv, budget);
  } else {
    sim::StallingAdversary adv(victims, adversary_seed(s));
    outcome = sched.run(adv, budget);
  }
  // Personal walk length per process: its own coin flips.
  std::vector<int> flips(static_cast<std::size_t>(cfg.n), 0);
  for (const sim::CoinRecord& c : sched.coin_log()) {
    ++flips[static_cast<std::size_t>(c.process)];
  }
  out.terminated = true;
  for (int i = 0; i < cfg.n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    hash.mix_i(outs[ui]);
    hash.mix_i(flips[ui]);
    if (is_stalled(victims, i)) continue;
    if (outs[ui] < 0) out.terminated = false;
    out.rounds = std::max(out.rounds, flips[ui]);
  }
  if (!out.terminated) out.rounds = 0;
  out.capped = outcome == sim::RunOutcome::kActionCap;
  out.coin_flips = sched.coin_log().size();
  out.steps = sched.actions_applied();
}

void run_game_family(const TermScenario& s,
                     const std::vector<sim::ProcessId>& victims,
                     TermRecord& out, Hash& hash) {
  game::GameConfig cfg;
  cfg.n = s.processes;
  cfg.max_rounds = s.max_rounds;
  game::GameState state(cfg);
  game::GameRunResult gr;
  int doomed_round = 0;
  if (s.adversary == TermAdversary::kScripted) {
    // Theorem 6's regime: merely linearizable registers, the scripted
    // strong adversary.  The script survives every round — the game only
    // stops at the structural round cap.
    game::GameScriptAdversary adv(cfg, game::CommitStrategy::kRandomOrder,
                                  adversary_seed(s));
    const std::uint64_t budget =
        std::min(s.max_actions,
                 static_cast<std::uint64_t>(cfg.max_rounds + 2) *
                     (static_cast<std::uint64_t>(cfg.n) * 24 + 64));
    gr = game::run_game_adversary(state, sim::Semantics::kLinearizable, adv,
                                  budget, s.seed);
    doomed_round = adv.stats().doomed_round;
  } else {
    const std::uint64_t budget =
        std::min(s.max_actions,
                 static_cast<std::uint64_t>(cfg.max_rounds + 2) *
                     (static_cast<std::uint64_t>(cfg.n) * 400 + 4000));
    if (victims.empty()) {
      sim::RandomAdversary adv(adversary_seed(s));
      gr = game::run_game_adversary(state, sim::Semantics::kAtomic, adv,
                                    budget, s.seed);
    } else {
      sim::StallingAdversary adv(victims, adversary_seed(s));
      gr = game::run_game_adversary(state, sim::Semantics::kAtomic, adv,
                                    budget, s.seed);
    }
  }
  out.terminated = true;
  int live_exit = 0;
  for (int i = 0; i < cfg.n; ++i) {
    const game::ProcStatus& p = state.procs[static_cast<std::size_t>(i)];
    hash.mix_i(p.returned ? 1 : 0);
    hash.mix_i(p.exit_round);
    hash.mix_i(static_cast<int>(p.exit_line));
    if (is_stalled(victims, i)) continue;
    if (!p.returned) out.terminated = false;
    live_exit = std::max(live_exit, p.exit_round);
  }
  if (out.terminated) {
    out.rounds = doomed_round != 0 ? doomed_round : live_exit;
  }
  // A non-terminated game is always budget-bound: either a process saw
  // the structural round cap itself, the action budget ran out, or the
  // script stopped scheduling after driving its last budgeted round
  // (kStopped before any process re-entered the loop to notice the cap —
  // the Theorem 6 steady state).
  out.capped = gr.capped || gr.outcome == sim::RunOutcome::kActionCap ||
               (!out.terminated && gr.outcome == sim::RunOutcome::kStopped);
  out.coin_flips = gr.coin_flips;
  out.steps = gr.actions;
}

void run_composed_family(const TermScenario& s,
                         const std::vector<sim::ProcessId>& victims,
                         TermRecord& out, Hash& hash) {
  game::GameConfig gc;
  gc.n = s.processes;
  gc.max_rounds = s.max_rounds;
  consensus::ConsensusConfig cc;
  cc.n = s.processes;
  cc.max_rounds = s.max_rounds;
  consensus::ComposedStats st;
  if (s.adversary == TermAdversary::kScripted) {
    // The positive side of Corollary 9: write strongly-linearizable game
    // registers force the script to commit before the coin; the game
    // dies geometrically fast and consensus then runs on atomic regs.
    game::GameScriptAdversary adv(gc, game::CommitStrategy::kRandomOrder,
                                  adversary_seed(s));
    const std::uint64_t budget = std::min(
        s.max_actions,
        static_cast<std::uint64_t>(gc.max_rounds + 2) *
                (static_cast<std::uint64_t>(gc.n) * 24 + 64) +
            static_cast<std::uint64_t>(cc.max_rounds + 2) *
                (static_cast<std::uint64_t>(gc.n) * 600 + 2000));
    st = consensus::run_composed_adversary(gc, cc, sim::Semantics::kWriteStrong,
                                           adv, budget, s.seed);
  } else {
    const std::uint64_t budget = std::min(
        s.max_actions,
        static_cast<std::uint64_t>(gc.max_rounds + 2) *
                (static_cast<std::uint64_t>(gc.n) * 400 + 4000) +
            static_cast<std::uint64_t>(cc.max_rounds + 2) *
                (static_cast<std::uint64_t>(gc.n) * 2000 + 8000));
    if (victims.empty()) {
      sim::RandomAdversary adv(adversary_seed(s));
      st = consensus::run_composed_adversary(gc, cc, sim::Semantics::kAtomic,
                                             adv, budget, s.seed);
    } else {
      sim::StallingAdversary adv(victims, adversary_seed(s));
      st = consensus::run_composed_adversary(gc, cc, sim::Semantics::kAtomic,
                                             adv, budget, s.seed);
    }
  }
  out.terminated = true;
  for (int i = 0; i < s.processes; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    hash.mix_i(st.game_returned[ui] ? 1 : 0);
    hash.mix_i(st.decisions[ui]);
    hash.mix_i(st.decided_round[ui]);
    if (is_stalled(victims, i)) continue;
    if (!st.game_returned[ui] || st.decisions[ui] < 0) out.terminated = false;
    out.rounds = std::max(out.rounds, st.decided_round[ui]);
  }
  if (!out.terminated) out.rounds = 0;
  hash.mix_i(st.game_rounds);
  out.capped = st.game_capped || st.consensus_capped ||
               st.outcome == sim::RunOutcome::kActionCap;
  out.safety_ok = st.agreement && st.validity;
  if (!out.safety_ok) out.detail = "composed agreement/validity violated";
  out.coin_flips = st.coin_flips;
  out.steps = st.actions;
}

}  // namespace

const char* to_string(Family f) noexcept {
  switch (f) {
    case Family::kConsensus: return "consensus";
    case Family::kComposed: return "composed";
    case Family::kSharedCoin: return "coin";
    case Family::kGame: return "game";
  }
  return "?";
}

const char* to_string(TermAdversary a) noexcept {
  switch (a) {
    case TermAdversary::kScripted: return "scripted";
    case TermAdversary::kRandom: return "rand";
    case TermAdversary::kStalling: return "stall";
  }
  return "?";
}

bool combination_valid(Family f, TermAdversary a) noexcept {
  if (a != TermAdversary::kScripted) return true;
  return f == Family::kComposed || f == Family::kGame;
}

std::string TermScenario::key() const {
  std::ostringstream os;
  os << "term/" << to_string(family) << '/' << to_string(adversary) << "/p"
     << processes << "/r" << max_rounds << "/seed" << seed;
  return os.str();
}

TermProbe run_term_probe(const TermProbeSpec& spec,
                         sim::Adversary& adversary) {
  RLT_CHECK_MSG(spec.processes >= 1 && spec.processes <= 64,
                "probe processes out of range");
  RLT_CHECK_MSG(
      spec.processes >= 3 || (spec.family != Family::kGame &&
                              spec.family != Family::kComposed),
      "the game families need >= 3 processes");
  RLT_CHECK_MSG(spec.max_rounds >= 1, "probe round budget must be positive");
  const int n = spec.processes;
  const std::uint64_t cap_score =
      static_cast<std::uint64_t>(spec.max_rounds) + 1;
  TermProbe out;
  Hash hash;
  hash.mix(static_cast<std::uint64_t>(spec.family));
  switch (spec.family) {
    case Family::kConsensus: {
      consensus::ConsensusConfig cfg;
      cfg.n = n;
      cfg.max_rounds = spec.max_rounds;
      sim::Scheduler sched(spec.seed);
      TermScenario inputs_key;  // reuse the scenario input derivation
      inputs_key.processes = n;
      inputs_key.seed = spec.seed;
      consensus::ConsensusState st(cfg, derive_inputs(inputs_key));
      setup_consensus(sched, cfg, sim::Semantics::kAtomic);
      for (int i = 0; i < cfg.n; ++i) {
        sched.add_process("c" + std::to_string(i), [&st, i](sim::Proc& p) {
          return consensus_proc(p, st, i);
        });
      }
      const sim::RunOutcome outcome = sched.run(adversary, spec.max_actions);
      out.decided = true;
      int max_round = 0;
      for (int i = 0; i < cfg.n; ++i) {
        const std::size_t ui = static_cast<std::size_t>(i);
        hash.mix_i(st.decisions[ui]);
        hash.mix_i(st.decided_round[ui]);
        if (st.decisions[ui] < 0) out.decided = false;
        max_round = std::max(max_round, st.decided_round[ui]);
      }
      out.capped = st.hit_round_cap || outcome == sim::RunOutcome::kActionCap;
      out.rounds_reached = st.max_round_entered;
      out.rounds_score = out.decided ? static_cast<std::uint64_t>(max_round)
                         : st.hit_round_cap
                             ? cap_score
                             : static_cast<std::uint64_t>(out.rounds_reached);
      out.steps = sched.actions_applied();
      out.coin_flips = sched.coin_log().size();
      break;
    }
    case Family::kSharedCoin: {
      consensus::SharedCoinConfig cfg;
      cfg.n = n;
      cfg.first_reg = 0;
      cfg.threshold_per_proc = 2;
      sim::Scheduler sched(spec.seed);
      setup_shared_coin(sched, cfg, sim::Semantics::kAtomic);
      std::vector<int> outs(static_cast<std::size_t>(cfg.n), -1);
      for (int i = 0; i < cfg.n; ++i) {
        sched.add_process("coin" + std::to_string(i),
                          [cfg, i, &outs](sim::Proc& p) {
                            return coin_proc(p, cfg, i, &outs);
                          });
      }
      const std::uint64_t budget =
          std::min(spec.max_actions,
                   static_cast<std::uint64_t>(spec.max_rounds + 2) *
                       static_cast<std::uint64_t>(n) *
                       static_cast<std::uint64_t>(n + 6));
      const sim::RunOutcome outcome = sched.run(adversary, budget);
      std::vector<int> flips(static_cast<std::size_t>(cfg.n), 0);
      for (const sim::CoinRecord& c : sched.coin_log()) {
        ++flips[static_cast<std::size_t>(c.process)];
      }
      out.decided = true;
      int longest = 0;
      for (int i = 0; i < cfg.n; ++i) {
        const std::size_t ui = static_cast<std::size_t>(i);
        hash.mix_i(outs[ui]);
        hash.mix_i(flips[ui]);
        if (outs[ui] < 0) out.decided = false;
        longest = std::max(longest, flips[ui]);
      }
      out.capped = outcome == sim::RunOutcome::kActionCap;
      out.rounds_reached = longest;
      // The walk has no structural cap: the objective is the longest
      // personal walk the adversary sustained, decided or not.
      out.rounds_score = static_cast<std::uint64_t>(longest);
      out.steps = sched.actions_applied();
      out.coin_flips = sched.coin_log().size();
      break;
    }
    case Family::kGame: {
      game::GameConfig cfg;
      cfg.n = n;
      cfg.max_rounds = spec.max_rounds;
      game::GameState state(cfg);
      const std::uint64_t budget =
          std::min(spec.max_actions,
                   static_cast<std::uint64_t>(cfg.max_rounds + 2) *
                       (static_cast<std::uint64_t>(cfg.n) * 400 + 4000));
      const game::GameRunResult gr = game::run_game_adversary(
          state, spec.game_semantics, adversary, budget, spec.seed);
      for (int i = 0; i < cfg.n; ++i) {
        const game::ProcStatus& p = state.procs[static_cast<std::size_t>(i)];
        hash.mix_i(p.returned ? 1 : 0);
        hash.mix_i(p.exit_round);
        hash.mix_i(static_cast<int>(p.exit_line));
      }
      out.decided = gr.terminated;
      out.capped = gr.capped || gr.outcome == sim::RunOutcome::kActionCap;
      out.rounds_reached = gr.rounds_reached;
      out.rounds_score =
          out.decided ? static_cast<std::uint64_t>(gr.termination_round)
          : out.capped ? cap_score
                       : static_cast<std::uint64_t>(gr.rounds_reached);
      out.steps = gr.actions;
      out.coin_flips = gr.coin_flips;
      break;
    }
    case Family::kComposed: {
      game::GameConfig gc;
      gc.n = n;
      gc.max_rounds = spec.max_rounds;
      consensus::ConsensusConfig cc;
      cc.n = n;
      cc.max_rounds = spec.max_rounds;
      const std::uint64_t budget = std::min(
          spec.max_actions,
          static_cast<std::uint64_t>(gc.max_rounds + 2) *
                  (static_cast<std::uint64_t>(gc.n) * 400 + 4000) +
              static_cast<std::uint64_t>(cc.max_rounds + 2) *
                  (static_cast<std::uint64_t>(gc.n) * 2000 + 8000));
      const consensus::ComposedStats st = consensus::run_composed_adversary(
          gc, cc, spec.game_semantics, adversary, budget, spec.seed);
      out.decided = true;
      int max_round = 0;
      for (int i = 0; i < n; ++i) {
        const std::size_t ui = static_cast<std::size_t>(i);
        hash.mix_i(st.game_returned[ui] ? 1 : 0);
        hash.mix_i(st.decisions[ui]);
        hash.mix_i(st.decided_round[ui]);
        if (!st.game_returned[ui] || st.decisions[ui] < 0) {
          out.decided = false;
        }
        max_round = std::max(max_round, st.decided_round[ui]);
      }
      hash.mix_i(st.game_rounds);
      out.capped = st.game_capped || st.consensus_capped ||
                   st.outcome == sim::RunOutcome::kActionCap;
      out.rounds_reached = st.game_rounds;
      out.rounds_score =
          out.decided ? static_cast<std::uint64_t>(max_round)
          : (st.game_capped || st.consensus_capped)
              ? cap_score
              : static_cast<std::uint64_t>(st.game_rounds);
      out.steps = st.actions;
      out.coin_flips = st.coin_flips;
      break;
    }
  }
  hash.mix(out.decided ? 1 : 0);
  hash.mix(out.capped ? 1 : 0);
  hash.mix_i(out.rounds_reached);
  hash.mix(out.rounds_score);
  hash.mix(out.coin_flips);
  hash.mix(out.steps);
  out.outcome_hash = hash.h;
  return out;
}

TermRecord run_term_scenario(const TermScenario& s) {
  TermRecord out;
  Hash hash;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    RLT_CHECK_MSG(combination_valid(s.family, s.adversary),
                  "the scripted adversary only drives the game-register "
                  "families (composed, game)");
    RLT_CHECK_MSG(s.processes >= 1 && s.processes <= 64,
                  "scenario processes out of range");
    RLT_CHECK_MSG(
        s.processes >= 3 || (s.family != Family::kGame &&
                             s.family != Family::kComposed),
        "the game families need >= 3 processes");
    RLT_CHECK_MSG(s.max_rounds >= 1, "round budget must be positive");
    const std::vector<sim::ProcessId> victims = stall_victims(s);
    out.stalled = static_cast<int>(victims.size());
    switch (s.family) {
      case Family::kConsensus:
        run_consensus_family(s, victims, out, hash);
        break;
      case Family::kComposed:
        run_composed_family(s, victims, out, hash);
        break;
      case Family::kSharedCoin:
        run_coin_family(s, victims, out, hash);
        break;
      case Family::kGame:
        run_game_family(s, victims, out, hash);
        break;
    }
  } catch (const std::exception& e) {
    out = TermRecord{};
    out.error = true;
    out.detail = std::string("error: ") + e.what();
    hash = Hash{};
  } catch (...) {
    out = TermRecord{};
    out.error = true;
    out.detail = "error: unknown exception";
    hash = Hash{};
  }
  seal_record(out, hash);
  out.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return out;
}

}  // namespace rlt::term
