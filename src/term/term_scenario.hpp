// One termination-lab scenario: a fully determined point in the
// cross-product
//
//   algorithm family × adversary × process count × round budget × seed
//
// explored by the termination sweep (src/term/term_sweep.hpp).  Where
// the safety sweep (src/sweep/) asks "is every recorded history
// linearizable?", the termination lab asks the question the paper is
// actually about: DOES the randomized algorithm terminate, and how is
// its termination round distributed — the property Theorem 6 shows a
// strong adversary can destroy when the registers are merely
// linearizable.
//
// Scenario families (the `Family` axis):
//
//  * kConsensus — the randomized binary consensus of Corollary 9 ("task
//    T") standalone, on atomic registers.  Terminates with probability 1
//    under any strong adversary; agreement/validity are asserted per run.
//  * kComposed — A' = (Algorithm 1 ; consensus).  Under the scripted
//    adversary the game registers are write strongly-linearizable: the
//    game dies geometrically fast and consensus then decides (the
//    positive side of Corollary 9).  Under random/stalling adversaries
//    the game registers are atomic.
//  * kSharedCoin — the drift weak shared coin, one flip per process, on
//    atomic registers.  The random walk crosses its threshold with
//    probability 1.
//  * kGame — Algorithm 1 alone.  Under the scripted Theorem 6 adversary
//    the registers are merely LINEARIZABLE and the game NEVER terminates:
//    every scenario ends round-capped, which is the paper's headline
//    separation.  Under random/stalling adversaries the registers are
//    atomic and the game dies quickly.
//
// The adversary axis:
//
//  * kScripted — the Theorem 6 strong adversary (game-register families
//    only; the consensus/coin families have no script).
//  * kRandom — uniformly random among enabled actions.
//  * kStalling — a seeded strict minority of processes is never
//    scheduled (sim::StallingAdversary).  "Terminated" then means every
//    LIVE process completed its protocol — the wait-freedom /
//    fault-tolerance reading of termination.
#pragma once

#include <cstdint>
#include <string>

#include "sim/regmodel.hpp"

namespace rlt::sim {
class Adversary;
}  // namespace rlt::sim

namespace rlt::term {

/// Which algorithm family the scenario measures termination of.
enum class Family : std::uint8_t {
  kConsensus,   ///< Randomized binary consensus (task T), atomic regs.
  kComposed,    ///< Corollary 9's A' = (Algorithm 1 ; consensus).
  kSharedCoin,  ///< Drift weak shared coin, one flip per process.
  kGame,        ///< Algorithm 1 alone (scripted = Theorem 6 schedule).
};

[[nodiscard]] const char* to_string(Family f) noexcept;

/// How the scenario's run is scheduled.
enum class TermAdversary : std::uint8_t {
  kScripted,  ///< Theorem 6 script (kComposed / kGame only).
  kRandom,    ///< Uniform among enabled actions.
  kStalling,  ///< Seeded strict minority never scheduled.
};

[[nodiscard]] const char* to_string(TermAdversary a) noexcept;

/// Whether (family, adversary) is a meaningful pairing: the scripted
/// adversary replays Algorithm 1's schedule, so it only drives the
/// game-register families.  enumerate_term_scenarios skips invalid
/// pairs; run_term_scenario reports them as error records.
[[nodiscard]] bool combination_valid(Family f, TermAdversary a) noexcept;

/// A fully determined termination scenario.
struct TermScenario {
  Family family = Family::kConsensus;
  TermAdversary adversary = TermAdversary::kRandom;
  int processes = 4;       ///< Game families need >= 3.
  std::uint64_t seed = 0;
  /// Round budget: the game's structural round cap and the consensus
  /// round cap.  A run that exhausts it reports capped, not terminated.
  int max_rounds = 64;
  /// Safety cap on scheduler actions (secondary to the round budget).
  std::uint64_t max_actions = 2'000'000;

  /// Stable key, e.g. "term/game/scripted/p5/r64/seed42".  Mixed into
  /// the termination digest and used as the result-store join column.
  [[nodiscard]] std::string key() const;
};

/// What one termination scenario produced.  All fields except `wall_ns`
/// are pure functions of the TermScenario — the per-scenario property
/// the termination digest and the persisted result store rest on.
struct TermRecord {
  /// Every live (non-stalled) process completed its protocol: returned
  /// from the game, decided, or output a coin value.
  bool terminated = false;
  /// The round budget or action budget ran out first.  Theorem 6
  /// scenarios end here by design — capped is an expected outcome class,
  /// not a failure.
  bool capped = false;
  /// Deterministic safety (consensus agreement + validity over decided
  /// processes) held.  Always true for families without such a property.
  bool safety_ok = true;
  /// The scenario could not run (invalid combination / config /
  /// exception).  `detail` explains.
  bool error = false;
  /// Termination round: the round the game died in (kGame), the highest
  /// decision round of a live process (kConsensus / kComposed), or the
  /// longest personal flip count of a live process (kSharedCoin).
  /// 0 when the run never terminated (or errored).
  int rounds = 0;
  int stalled = 0;            ///< Processes frozen by kStalling.
  std::uint64_t coin_flips = 0;  ///< Scheduler coin flips consumed.
  std::uint64_t steps = 0;       ///< Scheduler actions consumed.
  /// FNV fingerprint over the full outcome (decisions, exit rounds, coin
  /// outputs, the fields above) — the termination analogue of the safety
  /// sweep's history hash.
  std::uint64_t outcome_hash = 0;
  std::uint64_t wall_ns = 0;  ///< Measured; NOT digest material.
  std::string detail;         ///< Failure/error explanation ("" if clean).
};

/// Runs one termination scenario.  Deterministic: identical `s` gives
/// identical records (modulo wall_ns).  Never throws; exceptions become
/// error records.
[[nodiscard]] TermRecord run_term_scenario(const TermScenario& s);

/// One exploration probe of a term family under an external adversary.
struct TermProbeSpec {
  Family family = Family::kGame;
  int processes = 4;
  int max_rounds = 16;
  std::uint64_t max_actions = 2'000'000;
  /// Scheduler seed: the coin stream.  Fixed across a search instance,
  /// so the adversary searches schedules against one coin sequence — the
  /// adaptive-adversary regime of the paper.
  std::uint64_t seed = 0;
  /// Register semantics of the game registers (kGame / kComposed).  The
  /// Theorem 6 separation lives at kLinearizable; consensus/coin run on
  /// atomic registers regardless, per the paper.
  sim::Semantics game_semantics = sim::Semantics::kLinearizable;
};

/// What one probe produced.  Pure function of (spec, adversary
/// decisions), which makes recorded probe schedules replayable.
struct TermProbe {
  /// The exploration lab's rounds-to-decide objective: the decision
  /// round when the run decided; `rounds_reached` when it ran out of
  /// budget mid-protocol; `max_rounds + 1` when it survived to the
  /// structural round cap without deciding (the Theorem 6 signature, and
  /// the objective's maximum).
  std::uint64_t rounds_score = 0;
  bool decided = false;  ///< Every process completed its protocol.
  bool capped = false;   ///< Structural round cap (or action cap) hit.
  int rounds_reached = 0;
  std::uint64_t steps = 0;
  std::uint64_t coin_flips = 0;
  /// FNV fingerprint over the full outcome; byte-identical on replay.
  std::uint64_t outcome_hash = 0;
};

/// Runs one probe under `adversary`.  Throws on invalid specs (the
/// exploration lab validates its axes up front).
[[nodiscard]] TermProbe run_term_probe(const TermProbeSpec& spec,
                                       sim::Adversary& adversary);

}  // namespace rlt::term
