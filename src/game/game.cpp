#include "game/game.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rlt::game {

bool GameState::all_returned() const {
  return std::all_of(procs.begin(), procs.end(),
                     [](const ProcStatus& p) { return p.returned; });
}

bool GameState::any_capped() const {
  return std::any_of(procs.begin(), procs.end(),
                     [](const ProcStatus& p) { return p.hit_round_cap; });
}

int GameState::rounds_reached() const {
  int best = 0;
  for (const ProcStatus& p : procs) best = std::max(best, p.round);
  return best;
}

namespace {

/// Lemma 16: if a player reaches line 31 in round j, then p0 and p1
/// previously entered round j.
void check_lemma16(const GameState& st, int j) {
  if (!st.cfg.check_invariants) return;
  RLT_CHECK_MSG(st.procs[0].round >= j && st.procs[1].round >= j,
                "Lemma 16 violated: player reached line 31 in round "
                    << j << " but hosts are in rounds " << st.procs[0].round
                    << " and " << st.procs[1].round);
}

/// Lemma 17: if a host enters round j+1, every player wrote R2 (line 34)
/// in round j before that.
void check_lemma17(const GameState& st, int entering_round) {
  if (!st.cfg.check_invariants || entering_round < 2) return;
  for (int k = 2; k < st.cfg.n; ++k) {
    RLT_CHECK_MSG(
        st.procs[static_cast<std::size_t>(k)].increments_round >=
            entering_round - 1,
        "Lemma 17 violated: host entering round "
            << entering_round << " but player p" << k
            << " last incremented R2 in round "
            << st.procs[static_cast<std::size_t>(k)].increments_round);
  }
}

/// Lemma 18: the non-⊥ value a player reads from C in round j is the
/// coin p0 flipped in round j.
void check_lemma18(const GameState& st, int j, Value c) {
  if (!st.cfg.check_invariants) return;
  RLT_CHECK_MSG(c == 0 || c == 1, "C contained non-binary value " << c);
  RLT_CHECK_MSG(
      st.coin_by_round[static_cast<std::size_t>(j)] == static_cast<int>(c),
      "Lemma 18 violated: player read c=" << c << " in round " << j
                                          << " but p0's round-" << j
                                          << " coin was "
                                          << st.coin_by_round
                                                 [static_cast<std::size_t>(j)]);
}

/// Lemma 20 (bounded variant): when a player reaches line 27, both R1
/// values it read are from the current round.  Only checkable in the
/// unbounded encoding, where values carry their round.
void check_lemma20(const GameState& st, int j, Value u1, Value u2) {
  if (!st.cfg.check_invariants || st.cfg.bounded) return;
  RLT_CHECK_MSG(r1_round(u1) == j && r1_round(u2) == j,
                "Lemma 20 violated: player in round "
                    << j << " read R1 tuples from rounds " << r1_round(u1)
                    << " and " << r1_round(u2));
}

}  // namespace

sim::Task host_body(sim::Proc& self, GameState& st, int i) {
  ProcStatus& me = st.procs[static_cast<std::size_t>(i)];
  for (int j = 1;; ++j) {
    if (j > st.cfg.max_rounds) {
      me.hit_round_cap = true;
      co_return;
    }
    check_lemma17(st, j);
    me.round = j;
    // --- Phase 1 ---
    co_await self.write(kR1, host_r1_value(i, j, st.cfg.bounded));  // line 3
    if (i == 0) {
      const int c = co_await self.flip_coin();  // line 6
      st.coin_by_round[static_cast<std::size_t>(j)] = c;
      co_await self.write(kC, c);  // line 7
    }
    // --- Phase 2 ---
    co_await self.write(kR2, 0);                  // line 10
    const Value v = co_await self.read(kR2);      // line 11
    if (v < st.cfg.n - 2) {                       // line 12
      me.exit_line = ExitLine::kHostCheck;        // line 13
      me.exit_round = j;
      break;
    }
  }
  me.returned = true;  // line 16
}

sim::Task player_body(sim::Proc& self, GameState& st, int i) {
  ProcStatus& me = st.procs[static_cast<std::size_t>(i)];
  for (int j = 1;; ++j) {
    if (j > st.cfg.max_rounds) {
      me.hit_round_cap = true;
      co_return;
    }
    me.round = j;
    // --- Phase 1 ---
    co_await self.write(kR1, kBot);              // line 19
    co_await self.write(kC, kBot);               // line 20
    const Value u1 = co_await self.read(kR1);    // line 21
    const Value u2 = co_await self.read(kR1);    // line 22
    const Value c = co_await self.read(kC);      // line 23
    if (u1 == kBot || u2 == kBot || c == kBot) {  // line 24
      me.exit_line = ExitLine::kBotCheck;         // line 25
      me.exit_round = j;
      break;
    }
    check_lemma18(st, j, c);
    check_lemma20(st, j, u1, u2);
    const Value want1 = host_r1_value(static_cast<int>(c), j, st.cfg.bounded);
    const Value want2 =
        host_r1_value(1 - static_cast<int>(c), j, st.cfg.bounded);
    if (u1 != want1 || u2 != want2) {  // line 27
      me.exit_line = ExitLine::kValueCheck;  // line 28
      me.exit_round = j;
      break;
    }
    // --- Phase 2 ---
    check_lemma16(st, j);
    co_await self.write(kR2, 0);              // line 31
    Value v = co_await self.read(kR2);        // line 32
    v = v + 1;                                // line 33
    // Record the increment BEFORE suspending on the write: a host can
    // observe R2 = n-2 (and pass line 12) as soon as the write's
    // response lands, which under interval register semantics is an
    // adversary action — the coroutine may not be resumed again until
    // much later.  Setting the proxy after the co_await made Lemma 17's
    // runtime check race against that resume (any schedule that lets
    // the hosts run first tripped it spuriously); setting it here is
    // sound because the host cannot read n-2 before every line-34 write
    // has actually taken effect.
    me.increments_round = j;
    co_await self.write(kR2, v);              // line 34
  }
  me.returned = true;  // line 36
}

void setup_game_registers(sim::Scheduler& sched, sim::Semantics semantics) {
  sched.add_register(kR1, semantics, kBot);
  sched.add_register(kR2, semantics, 0);
  sched.add_register(kC, semantics, kBot);
}

void setup_game(sim::Scheduler& sched, sim::Semantics semantics,
                GameState& state) {
  RLT_CHECK_MSG(state.cfg.n >= 3, "the game needs n >= 3 processes");
  setup_game_registers(sched, semantics);
  for (int i = 0; i < 2; ++i) {
    sched.add_process("host-p" + std::to_string(i),
                      [&state, i](sim::Proc& p) {
                        return host_body(p, state, i);
                      });
  }
  for (int i = 2; i < state.cfg.n; ++i) {
    sched.add_process("player-p" + std::to_string(i),
                      [&state, i](sim::Proc& p) {
                        return player_body(p, state, i);
                      });
  }
}

}  // namespace rlt::game
