// Harness for running Algorithm 1 under the three register semantics and
// collecting the statistics the paper's claims are about.
#pragma once

#include <cstdint>
#include <vector>

#include "game/theorem6_adversary.hpp"
#include "sim/regmodel.hpp"

namespace rlt::game {

/// Outcome of one game execution.
struct GameRunResult {
  sim::RunOutcome outcome = sim::RunOutcome::kStopped;
  bool terminated = false;   ///< All processes returned (lines 16/36).
  bool capped = false;       ///< Some process hit the structural round cap.
  int rounds_reached = 0;    ///< Highest round entered by any process.
  int termination_round = 0; ///< Round the game died in (0 if it never did).
  std::uint64_t actions = 0; ///< Scheduler actions consumed.
  std::uint64_t coin_flips = 0;  ///< Scheduler coin flips (p0's line 6).
  std::vector<int> coins;    ///< p0's coin per round (1-based, -1 unset).
};

/// Runs the game in a caller-built `state` under a caller-supplied
/// adversary (`seed` seeds the scheduler's coin RNG).  The scripted /
/// random helpers below are wrappers; the termination lab drives this
/// directly and reads per-process status out of `state` afterwards.
[[nodiscard]] GameRunResult run_game_adversary(GameState& state,
                                               sim::Semantics semantics,
                                               sim::Adversary& adversary,
                                               std::uint64_t budget,
                                               std::uint64_t seed);

/// Runs the game with the scripted adversary (Theorem 6 schedule /
/// best-effort WSL variant).  `semantics` must be kLinearizable or
/// kWriteStrong (the script responds to pending operations, which atomic
/// registers never have).
[[nodiscard]] GameRunResult run_scripted_game(const GameConfig& cfg,
                                              sim::Semantics semantics,
                                              CommitStrategy strategy,
                                              std::uint64_t seed);

/// Runs the game under a uniformly random strong adversary (any
/// semantics, including atomic).
[[nodiscard]] GameRunResult run_random_game(const GameConfig& cfg,
                                            sim::Semantics semantics,
                                            std::uint64_t seed);

/// Termination-round histogram over many seeds (Theorem 7's experiment).
struct TerminationDistribution {
  std::vector<int> rounds;     ///< Termination round per seed (0 = capped).
  int capped_runs = 0;         ///< Runs that hit the round cap.
  double mean_round = 0.0;     ///< Mean over terminated runs.
  /// P(termination round > k) for k = 0..max observed (index k).
  std::vector<double> survival;
};

[[nodiscard]] TerminationDistribution measure_termination_rounds(
    const GameConfig& cfg, sim::Semantics semantics, CommitStrategy strategy,
    std::uint64_t base_seed, int runs);

}  // namespace rlt::game
