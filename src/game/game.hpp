// Algorithm 1 of the paper: the randomized game whose termination
// separates linearizable from write strongly-linearizable registers.
//
// n >= 3 processes share three MWMR registers R1, R2, C.  Processes p0
// and p1 are the "hosts", p2..p(n-1) the "players".  Each asynchronous
// round has two phases:
//
//  Phase 1: host pi writes [i, j] into R1 (line 3); p0 additionally flips
//    a coin and writes it into C (lines 6-7).  Each player writes ⊥ into
//    R1 and C (lines 19-20), reads R1 twice (lines 21-22) and C once
//    (line 23), and stays in the game only if it read [c, j] then
//    [1-c, j] where c is the coin value it read (lines 24-29).
//  Phase 2: every in-game player resets R2 to 0 and increments it
//    (lines 31-34); each host resets R2, reads it, and stays only if it
//    sees >= n-2 (lines 10-13) — proof that all players stayed.
//
// The processes are simulator coroutines; every shared-register access
// and the coin flip is one adversary-visible step.  Optional runtime
// checks assert the paper's safety lemmas (15-18) in every run.
#pragma once

#include <vector>

#include "game/encoding.hpp"
#include "sim/scheduler.hpp"

namespace rlt::game {

/// Where a process left the game.
enum class ExitLine {
  kNone,          ///< Still in the game (or hit the round cap).
  kHostCheck,     ///< Host exited at line 13 (saw R2 < n-2).
  kBotCheck,      ///< Player exited at line 25 (read a ⊥).
  kValueCheck,    ///< Player exited at line 28 (R1 values mismatched).
};

/// Per-process status, updated live by the coroutines.
struct ProcStatus {
  int round = 0;           ///< Round currently executing (1-based).
  bool returned = false;   ///< Reached line 16 / 36.
  bool hit_round_cap = false;
  ExitLine exit_line = ExitLine::kNone;
  int exit_round = 0;      ///< Round in which the exit happened.
  int increments_round = 0;  ///< Players: last round with a line-34 write.
};

/// Game parameters.
struct GameConfig {
  int n = 5;                ///< Total processes (>= 3).
  int max_rounds = 1000;    ///< Structural cap on the paper's infinite loop.
  bool bounded = false;     ///< Appendix B bounded-register variant.
  bool check_invariants = true;  ///< Assert Lemmas 15-18 at runtime.
};

/// Shared, live-updated state of one game execution.
struct GameState {
  GameConfig cfg;
  std::vector<ProcStatus> procs;
  /// p0's coin flip per round (index j, 1-based; -1 = not yet flipped).
  std::vector<int> coin_by_round;

  explicit GameState(const GameConfig& config)
      : cfg(config),
        procs(static_cast<std::size_t>(config.n)),
        coin_by_round(static_cast<std::size_t>(config.max_rounds) + 2, -1) {}

  /// All processes returned via exit (true termination, lines 16/36).
  [[nodiscard]] bool all_returned() const;
  /// Any process stopped only because of the structural round cap.
  [[nodiscard]] bool any_capped() const;
  /// Highest round any process entered.
  [[nodiscard]] int rounds_reached() const;
};

/// Adds just the game's three registers (R1, R2, C with the given
/// semantics) to `sched` — for compositions that co_await host_body /
/// player_body from their own process bodies (Corollary 9's A').  Such
/// callers must NOT also call setup_game: that would add a second set of
/// game processes sharing the same GameState, so two copies of each role
/// would fight over R1/R2/C (two "host 0"s flipping different coins into
/// C breaks Lemma 18) — the bug the composed runner used to have.
void setup_game_registers(sim::Scheduler& sched, sim::Semantics semantics);

/// Adds the game registers AND the n game processes to `sched`.  `state`
/// must outlive the scheduler run.
void setup_game(sim::Scheduler& sched, sim::Semantics semantics,
                GameState& state);

/// The host coroutine (pi, i in {0, 1}) — exposed for tests.
sim::Task host_body(sim::Proc& self, GameState& state, int i);
/// The player coroutine (pi, 2 <= i <= n-1) — exposed for tests.
sim::Task player_body(sim::Proc& self, GameState& state, int i);

}  // namespace rlt::game
