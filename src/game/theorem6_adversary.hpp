// The strong adversary of Theorem 6, and its best-effort variant against
// write strongly-linearizable registers (Theorem 7's experiment).
//
// Against `LinearizableModel` registers the adversary replays the paper's
// Figure 1/2 schedule exactly: it keeps p1's write of [1, j] pending
// while p0's write completes and the coin is flipped, then *after seeing
// the coin* linearizes the two writes in whichever order makes every
// player read [c, j] then [1-c, j] — so every process survives every
// round, forever (rounds are driven up to the configured cap).
//
// Against `WslModel` registers the same schedule hits the wall the paper
// proves: when p0's write responds, the adversary must irrevocably commit
// the relative order of the concurrent write [1, j] BEFORE the coin is
// flipped.  The best-effort strategy picks an order (by policy); with
// probability 1/2 the coin mismatches, the players' line-27 check fails,
// and the whole game terminates within that round.  Measured over many
// seeds this yields the geometric(1/2) termination-round distribution
// that Lemma 19 guarantees as a bound.
#pragma once

#include <optional>

#include "game/game.hpp"
#include "sim/generator.hpp"
#include "util/rng.hpp"

namespace rlt::game {

/// How the adversary commits the order of the two concurrent R1 writes
/// when forced (WSL registers).  Irrelevant for linearizable registers,
/// where no early commitment is ever forced.
enum class CommitStrategy {
  kHostZeroFirst,  ///< Always commit [0, j] before [1, j].
  kHostOneFirst,   ///< Always commit [1, j] before [0, j].
  kRandomOrder,    ///< Flip the adversary's own coin each round.
  kAlternate,      ///< Alternate between the two orders round by round.
};

[[nodiscard]] const char* to_string(CommitStrategy s) noexcept;

/// Scripted strong adversary driving Algorithm 1 (see file comment).
class GameScriptAdversary final : public sim::Adversary {
 public:
  struct Stats {
    int rounds_survived = 0;  ///< Rounds all processes completed.
    int doomed_round = 0;     ///< Round in which the game died (0: never).
    bool drained = false;     ///< Ran the post-doom cleanup to completion.
  };

  /// `seed` feeds the kRandomOrder strategy only.
  GameScriptAdversary(const GameConfig& cfg, CommitStrategy strategy,
                      std::uint64_t seed = 0)
      : cfg_(cfg), strategy_(strategy), rng_(seed) {}

  std::optional<sim::Action> choose(sim::Scheduler& sched) override;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  sim::Generator<sim::Action> script(sim::Scheduler& sched);

  GameConfig cfg_;
  CommitStrategy strategy_;
  util::Rng rng_;
  sim::Scheduler* bound_ = nullptr;
  std::optional<sim::Generator<sim::Action>> script_;
  Stats stats_;
};

}  // namespace rlt::game
