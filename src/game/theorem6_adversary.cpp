#include "game/theorem6_adversary.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rlt::game {

namespace {

using sim::Action;
using sim::PendingOpInfo;
using sim::ProcessId;
using sim::ResponseChoice;
using sim::Scheduler;

/// The pending operation of process `p` on register `reg` (there is at
/// most one: processes are sequential).
PendingOpInfo pending_of(Scheduler& sched, ProcessId p, int reg) {
  for (const PendingOpInfo& info : sched.pending_ops()) {
    if (info.process == p && info.reg == reg) return info;
  }
  RLT_CHECK_MSG(false, "expected a pending op of p" << p << " on R" << reg);
  return {};
}

/// The response choice returning `value`, preferring the smallest commit
/// extension (the adversary commits as little as possible, as late as
/// possible).  Returns nullopt if no choice yields `value`.
std::optional<ResponseChoice> choice_with_value(Scheduler& sched, int op_id,
                                                sim::Value value) {
  std::optional<ResponseChoice> best;
  for (ResponseChoice& c : sched.choices_for(op_id)) {
    if (c.value != value) continue;
    if (!best.has_value() ||
        c.commit_extension.size() < best->commit_extension.size()) {
      best = std::move(c);
    }
  }
  return best;
}

/// First (arbitrary legal) choice; used where the value is forced.
ResponseChoice first_choice(Scheduler& sched, int op_id) {
  auto choices = sched.choices_for(op_id);
  RLT_CHECK_MSG(!choices.empty(), "pending op " << op_id << " has no choices");
  // Prefer the smallest commitment, as above.
  auto it = std::min_element(choices.begin(), choices.end(),
                             [](const ResponseChoice& a,
                                const ResponseChoice& b) {
                               return a.commit_extension.size() <
                                      b.commit_extension.size();
                             });
  return std::move(*it);
}

}  // namespace

const char* to_string(CommitStrategy s) noexcept {
  switch (s) {
    case CommitStrategy::kHostZeroFirst:
      return "host0-first";
    case CommitStrategy::kHostOneFirst:
      return "host1-first";
    case CommitStrategy::kRandomOrder:
      return "random-order";
    case CommitStrategy::kAlternate:
      return "alternate";
  }
  return "?";
}

std::optional<Action> GameScriptAdversary::choose(Scheduler& sched) {
  if (bound_ == nullptr) {
    bound_ = &sched;
    script_.emplace(script(sched));
  }
  RLT_CHECK_MSG(bound_ == &sched, "adversary bound to a different scheduler");
  if (!script_->advance()) return std::nullopt;
  return script_->value();
}

sim::Generator<Action> GameScriptAdversary::script(Scheduler& sched) {
  const int n = cfg_.n;
  std::vector<ProcessId> players;
  for (int p = 2; p < n; ++p) players.push_back(p);

  for (int j = 1; j <= cfg_.max_rounds; ++j) {
    // ---- Phase 1, paper Figure 1 ----
    // Step 1: players write ⊥ into R1 then C; each write completes
    // immediately (sequential responses keep commitment batches trivial).
    for (const int reg : {kR1, kC}) {
      for (const ProcessId p : players) {
        co_yield Action::step(p);  // invoke write(reg, ⊥)
        const PendingOpInfo op = pending_of(sched, p, reg);
        co_yield Action::respond(p, op.op_id, first_choice(sched, op.op_id));
      }
    }

    // Step 2 (time t0): p0 and p1 start writing R1; players start their
    // first read of R1.  All three kinds of operations are now pending
    // and mutually concurrent.
    co_yield Action::step(0);
    const int w0 = pending_of(sched, 0, kR1).op_id;
    co_yield Action::step(1);
    const int w1 = pending_of(sched, 1, kR1).op_id;
    for (const ProcessId p : players) co_yield Action::step(p);

    // Step 3 (time t1): p0's write of [0, j] completes.  For linearizable
    // registers this commits nothing.  For WSL registers the model forces
    // the order of the concurrent write [1, j] to be decided HERE — before
    // the coin flip below.
    bool w0_first = true;
    switch (strategy_) {
      case CommitStrategy::kHostZeroFirst:
        w0_first = true;
        break;
      case CommitStrategy::kHostOneFirst:
        w0_first = false;
        break;
      case CommitStrategy::kRandomOrder:
        w0_first = rng_.flip() == 0;
        break;
      case CommitStrategy::kAlternate:
        w0_first = (j % 2) == 1;
        break;
    }
    bool model_commits = false;  // WSL registers force a commitment here.
    {
      std::vector<ResponseChoice> w0_choices = sched.choices_for(w0);
      model_commits = std::any_of(
          w0_choices.begin(), w0_choices.end(),
          [](const ResponseChoice& c) { return !c.commit_extension.empty(); });
      std::optional<ResponseChoice> chosen;
      for (ResponseChoice& c : w0_choices) {
        if (!model_commits) {
          // Linearizable registers: responding a write decides nothing.
          chosen = std::move(c);
          break;
        }
        const bool commits_w0_only =
            c.commit_extension.size() == 1 && c.commit_extension[0] == w0;
        const bool commits_w1_first =
            c.commit_extension.size() == 2 && c.commit_extension[0] == w1 &&
            c.commit_extension[1] == w0;
        if ((w0_first && commits_w0_only) || (!w0_first && commits_w1_first)) {
          chosen = std::move(c);
          break;
        }
      }
      RLT_CHECK_MSG(chosen.has_value(), "no commitment choice for w0");
      co_yield Action::respond(0, w0, *chosen);
    }

    // Step 4 (times t1..tc): p0 flips the coin — only NOW does the
    // adversary learn c — and writes it into C.
    co_yield Action::step(0);  // line 6: coin flip
    const int c = sched.coin_log().back().outcome;
    co_yield Action::step(0);  // invoke write(C, c)
    {
      const PendingOpInfo op = pending_of(sched, 0, kC);
      co_yield Action::respond(0, op.op_id, first_choice(sched, op.op_id));
    }

    // Whether this round can still be survived.  Linearizable registers:
    // always (the adversary now picks the linearization order matching c,
    // Cases 1/2 of the proof of Theorem 6).  WSL registers: only if the
    // order committed at step 3 happens to match the coin.
    const bool survived = !model_commits || (w0_first == (c == 0));
    const Value v1 = host_r1_value(c, j, cfg_.bounded);
    const Value v2 = host_r1_value(1 - c, j, cfg_.bounded);

    // Players' first read returns [c, j] (both cases of Theorem 6's
    // proof; for doomed WSL rounds this is still feasible).
    for (const ProcessId p : players) {
      const PendingOpInfo op = pending_of(sched, p, kR1);
      std::optional<ResponseChoice> ch = choice_with_value(sched, op.op_id, v1);
      RLT_CHECK_MSG(ch.has_value(), "read1 cannot return " << v1);
      co_yield Action::respond(p, op.op_id, *ch);
    }

    // Time t2: p1's write of [1, j] completes.
    co_yield Action::respond(1, w1, first_choice(sched, w1));

    // Players' second read: [1-c, j] if the round survives; otherwise the
    // best the adversary can do is [c, j] again, and the players' line-27
    // check will fail.
    for (const ProcessId p : players) {
      co_yield Action::step(p);  // invoke read2
      const PendingOpInfo op = pending_of(sched, p, kR1);
      std::optional<ResponseChoice> ch = choice_with_value(sched, op.op_id, v2);
      if (survived) {
        RLT_CHECK_MSG(ch.has_value(),
                      "surviving round: read2 cannot return " << v2);
      } else {
        RLT_CHECK_MSG(!ch.has_value(),
                      "doomed round: read2 could still return "
                          << v2 << " — WSL commitment did not bind");
        ch = choice_with_value(sched, op.op_id, v1);
        RLT_CHECK_MSG(ch.has_value(), "doomed round: read2 cannot return "
                                          << v1);
      }
      co_yield Action::respond(p, op.op_id, *ch);
    }

    // Players read C -> c.
    for (const ProcessId p : players) {
      co_yield Action::step(p);  // invoke read(C)
      const PendingOpInfo op = pending_of(sched, p, kC);
      std::optional<ResponseChoice> ch =
          choice_with_value(sched, op.op_id, c);
      RLT_CHECK_MSG(ch.has_value(), "read(C) cannot return " << c);
      co_yield Action::respond(p, op.op_id, *ch);
    }

    // ---- Phase 2, paper Figure 2 ----
    // Hosts write 0 into R2 (line 10).
    for (const ProcessId h : {0, 1}) {
      co_yield Action::step(h);  // invoke write(R2, 0)
      const PendingOpInfo op = pending_of(sched, h, kR2);
      co_yield Action::respond(h, op.op_id, first_choice(sched, op.op_id));
    }
    // Players evaluate lines 24/27.  Surviving round: they proceed to
    // line 31, invoke write(R2, 0), and the write completes immediately
    // (Figure 2 only needs all 0-writes done before the increments start;
    // responding each write as it is invoked keeps the WSL model's
    // commitment batches singleton — its choice menu is factorial in the
    // number of concurrently pending uncommitted writes).  Doomed round:
    // they exit and their coroutines finish.
    for (const ProcessId p : players) {
      co_yield Action::step(p);
      if (survived) {
        const PendingOpInfo op = pending_of(sched, p, kR2);
        co_yield Action::respond(p, op.op_id, first_choice(sched, op.op_id));
      }
    }

    if (!survived) {
      stats_.doomed_round = j;
      // Drain: hosts read R2 (forced 0 < n-2), exit and return.
      while (!sched.all_done()) {
        const auto pend = sched.pending_ops();
        if (!pend.empty()) {
          const PendingOpInfo& op = pend.front();
          co_yield Action::respond(op.process, op.op_id,
                                   first_choice(sched, op.op_id));
          continue;
        }
        bool stepped = false;
        for (int p = 0; p < sched.process_count(); ++p) {
          if (!sched.process_done(p) && !sched.process_blocked(p)) {
            co_yield Action::step(p);
            stepped = true;
            break;
          }
        }
        RLT_CHECK_MSG(stepped, "drain deadlock");
      }
      stats_.drained = true;
      co_return;
    }

    // Surviving round: players read and increment R2 strictly one after
    // another (Figure 2), leaving R2 = n-2.
    Value counter = 0;
    for (const ProcessId p : players) {
      co_yield Action::step(p);  // invoke read(R2)
      const PendingOpInfo rd = pending_of(sched, p, kR2);
      std::optional<ResponseChoice> ch =
          choice_with_value(sched, rd.op_id, counter);
      RLT_CHECK_MSG(ch.has_value(), "R2 read cannot return " << counter);
      co_yield Action::respond(p, rd.op_id, *ch);
      co_yield Action::step(p);  // invoke write(R2, counter + 1)
      const PendingOpInfo wr = pending_of(sched, p, kR2);
      co_yield Action::respond(p, wr.op_id, first_choice(sched, wr.op_id));
      ++counter;
    }
    // Hosts read R2 = n-2 and stay in the game.
    for (const ProcessId h : {0, 1}) {
      co_yield Action::step(h);  // invoke read(R2)
      const PendingOpInfo op = pending_of(sched, h, kR2);
      std::optional<ResponseChoice> ch =
          choice_with_value(sched, op.op_id, n - 2);
      RLT_CHECK_MSG(ch.has_value(), "host read of R2 cannot return " << n - 2);
      co_yield Action::respond(h, op.op_id, *ch);
    }
    stats_.rounds_survived = j;
  }
}

}  // namespace rlt::game
