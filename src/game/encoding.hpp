// Value encodings for Algorithm 1's registers.
//
// The simulator models register values as int64.  Algorithm 1 stores:
//   * R1: ⊥ or a tuple [i, j] (host id i ∈ {0,1}, round j >= 1);
//     the bounded variant (Appendix B) stores ⊥ or just i.
//   * C : ⊥ or a coin value in {0, 1};
//   * R2: small non-negative counters.
#pragma once

#include "history/event.hpp"

namespace rlt::game {

using history::Value;

/// ⊥ (written by players to R1 and C at the start of each round).
inline constexpr Value kBot = -1;

/// Register ids within the game's scheduler.
inline constexpr int kR1 = 0;
inline constexpr int kR2 = 1;
inline constexpr int kC = 2;

/// Encodes the tuple [i, j] written to R1 in line 3 (unbounded game).
[[nodiscard]] constexpr Value encode_r1(int i, int j) noexcept {
  return static_cast<Value>(j) * 2 + i;
}

/// Host id of an encoded [i, j]; requires v != kBot.
[[nodiscard]] constexpr int r1_host(Value v) noexcept {
  return static_cast<int>(v % 2);
}

/// Round of an encoded [i, j]; requires v != kBot.
[[nodiscard]] constexpr int r1_round(Value v) noexcept {
  return static_cast<int>(v / 2);
}

/// R1 value written by host `i` in round `j`: the tuple in the unbounded
/// game, just `i` in the bounded variant (Appendix B).
[[nodiscard]] constexpr Value host_r1_value(int i, int j,
                                            bool bounded) noexcept {
  return bounded ? static_cast<Value>(i) : encode_r1(i, j);
}

}  // namespace rlt::game
