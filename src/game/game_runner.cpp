#include "game/game_runner.hpp"

#include <algorithm>

#include "sim/adversary.hpp"
#include "util/assert.hpp"

namespace rlt::game {

namespace {

GameRunResult collect(const GameState& state, const sim::Scheduler& sched,
                      sim::RunOutcome outcome) {
  GameRunResult r;
  r.outcome = outcome;
  r.terminated = state.all_returned();
  r.capped = state.any_capped();
  r.rounds_reached = state.rounds_reached();
  r.actions = sched.actions_applied();
  r.coin_flips = sched.coin_log().size();
  r.coins = state.coin_by_round;
  if (r.terminated) {
    int died = 0;
    for (const ProcStatus& p : state.procs) {
      died = std::max(died, p.exit_round);
    }
    r.termination_round = died;
  }
  return r;
}

}  // namespace

GameRunResult run_game_adversary(GameState& state, sim::Semantics semantics,
                                 sim::Adversary& adversary,
                                 std::uint64_t budget, std::uint64_t seed) {
  sim::Scheduler sched(seed);
  setup_game(sched, semantics, state);
  const sim::RunOutcome outcome = sched.run(adversary, budget);
  return collect(state, sched, outcome);
}

GameRunResult run_scripted_game(const GameConfig& cfg,
                                sim::Semantics semantics,
                                CommitStrategy strategy, std::uint64_t seed) {
  RLT_CHECK_MSG(semantics != sim::Semantics::kAtomic,
                "the scripted adversary needs interval semantics; use "
                "run_random_game for atomic registers");
  GameState state(cfg);
  GameScriptAdversary adversary(cfg, strategy, seed ^ 0x5DEECE66DULL);
  // Generous action budget: the script uses a bounded number of actions
  // per round.
  const std::uint64_t budget =
      static_cast<std::uint64_t>(cfg.max_rounds + 2) *
      (static_cast<std::uint64_t>(cfg.n) * 24 + 64);
  GameRunResult r = run_game_adversary(state, semantics, adversary, budget,
                                       seed);
  if (adversary.stats().doomed_round != 0) {
    RLT_CHECK_MSG(r.terminated,
                  "script doomed the game but processes did not return");
    r.termination_round = adversary.stats().doomed_round;
  }
  return r;
}

GameRunResult run_random_game(const GameConfig& cfg, sim::Semantics semantics,
                              std::uint64_t seed) {
  GameState state(cfg);
  sim::RandomAdversary adversary(seed ^ 0x9E3779B97F4A7C15ULL);
  // Random schedules are far less action-efficient than the script; the
  // cap guards against pathological schedules only.
  const std::uint64_t budget =
      static_cast<std::uint64_t>(cfg.max_rounds + 2) *
      (static_cast<std::uint64_t>(cfg.n) * 400 + 4000);
  return run_game_adversary(state, semantics, adversary, budget, seed);
}

TerminationDistribution measure_termination_rounds(const GameConfig& cfg,
                                                   sim::Semantics semantics,
                                                   CommitStrategy strategy,
                                                   std::uint64_t base_seed,
                                                   int runs) {
  TerminationDistribution dist;
  double sum = 0.0;
  int terminated = 0;
  int max_round = 0;
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    const GameRunResult r =
        semantics == sim::Semantics::kAtomic
            ? run_random_game(cfg, semantics, seed)
            : run_scripted_game(cfg, semantics, strategy, seed);
    if (r.terminated && r.termination_round > 0) {
      dist.rounds.push_back(r.termination_round);
      sum += r.termination_round;
      ++terminated;
      max_round = std::max(max_round, r.termination_round);
    } else {
      dist.rounds.push_back(0);
      ++dist.capped_runs;
    }
  }
  dist.mean_round = terminated > 0 ? sum / terminated : 0.0;
  dist.survival.assign(static_cast<std::size_t>(max_round) + 1, 0.0);
  for (int k = 0; k <= max_round; ++k) {
    int over = 0;
    for (const int r : dist.rounds) {
      if (r == 0 || r > k) ++over;  // capped runs count as "> k"
    }
    dist.survival[static_cast<std::size_t>(k)] =
        static_cast<double>(over) / static_cast<double>(dist.rounds.size());
  }
  return dist;
}

}  // namespace rlt::game
