// Simulated asynchronous message-passing substrate for the ABD register.
//
// Reliable but asynchronous: messages are never lost or corrupted, but
// the delivery order is chosen by the driver (adversarially or at
// random), and nodes may crash (a crashed node silently drops incoming
// messages and sends nothing).  This is the standard model under which
// ABD implements linearizable SWMR registers when fewer than half the
// nodes crash [Attiya, Bar-Noy, Dolev 1995].
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rlt::mp {

using NodeId = int;

/// A protocol message.  `type` and `payload` semantics belong to the
/// protocol (see abd.cpp for ABD's message grammar).
struct Message {
  NodeId from = -1;
  NodeId to = -1;
  std::int64_t type = 0;
  std::vector<std::int64_t> payload;
  std::uint64_t seq = 0;  ///< Global send sequence number (determinism).
};

/// Message handler interface implemented by protocol nodes.
class Node {
 public:
  virtual ~Node() = default;
  virtual void on_message(const Message& m) = 0;
};

/// The network: in-flight message multiset plus crash faults.
class Network {
 public:
  /// Registers a node; returns its id (dense, starting at 0).
  NodeId add_node(Node& node) {
    nodes_.push_back(&node);
    crashed_.push_back(false);
    return static_cast<NodeId>(nodes_.size()) - 1;
  }

  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(nodes_.size());
  }

  /// Queues a message.  Sends from crashed nodes are dropped.
  void send(NodeId from, NodeId to, std::int64_t type,
            std::vector<std::int64_t> payload) {
    RLT_CHECK(valid(from) && valid(to));
    if (crashed_[static_cast<std::size_t>(from)]) return;
    Message m;
    m.from = from;
    m.to = to;
    m.type = type;
    m.payload = std::move(payload);
    m.seq = ++sent_;
    in_flight_.push_back(std::move(m));
  }

  /// Queues a message to every node (including the sender).
  void broadcast(NodeId from, std::int64_t type,
                 const std::vector<std::int64_t>& payload) {
    for (NodeId to = 0; to < node_count(); ++to) {
      send(from, to, type, payload);
    }
  }

  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.size();
  }
  /// The in-flight multiset, send order (adversarial schedule policies
  /// inspect envelopes to steer quorums; index into it with deliver_at).
  [[nodiscard]] const std::vector<Message>& in_flight_messages()
      const noexcept {
    return in_flight_;
  }
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return delivered_;
  }

  /// Delivers the in-flight message at `index` (adversarial delivery).
  /// Messages to crashed nodes are consumed without effect.
  void deliver_at(std::size_t index) {
    RLT_CHECK(index < in_flight_.size());
    const Message m = std::move(in_flight_[index]);
    in_flight_.erase(in_flight_.begin() +
                     static_cast<std::ptrdiff_t>(index));
    ++delivered_;
    if (crashed_[static_cast<std::size_t>(m.to)]) return;
    nodes_[static_cast<std::size_t>(m.to)]->on_message(m);
  }

  /// Delivers one uniformly random in-flight message; false if none.
  bool deliver_random(util::Rng& rng) {
    if (in_flight_.empty()) return false;
    deliver_at(static_cast<std::size_t>(rng.uniform(in_flight_.size())));
    return true;
  }

  /// Crashes a node permanently.
  void crash(NodeId n) {
    RLT_CHECK(valid(n));
    crashed_[static_cast<std::size_t>(n)] = true;
  }
  [[nodiscard]] bool crashed(NodeId n) const {
    RLT_CHECK(valid(n));
    return crashed_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] int crashed_count() const {
    int c = 0;
    for (const bool b : crashed_) c += b ? 1 : 0;
    return c;
  }
  /// Nodes still alive — the population quorum-based protocols can draw
  /// replies from (crashed nodes consume requests without answering).
  [[nodiscard]] int live_count() const {
    return node_count() - crashed_count();
  }

 private:
  [[nodiscard]] bool valid(NodeId n) const noexcept {
    return n >= 0 && n < node_count();
  }

  std::vector<Node*> nodes_;
  std::vector<bool> crashed_;
  std::vector<Message> in_flight_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace rlt::mp
