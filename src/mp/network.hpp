// Simulated asynchronous message-passing substrate for the ABD register.
//
// Asynchronous and — when a fault fabric is armed — unreliable: the
// delivery order is chosen by the driver (adversarially or at random),
// nodes may crash (a crashed node silently drops incoming messages and
// sends nothing) and later recover, and the fabric can drop messages
// (seeded per-message loss or a transient partition cut), duplicate
// them, or land a crash *between* the sends of one broadcast so only a
// prefix of replicas hears it.  With no fabric armed the network is the
// classic reliable-but-asynchronous model under which ABD implements
// linearizable SWMR registers when fewer than half the nodes crash
// [Attiya, Bar-Noy, Dolev 1995]; every fault decision flows through a
// seeded Rng, so runs stay byte-deterministic.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rlt::mp {

using NodeId = int;

/// A protocol message.  `type` and `payload` semantics belong to the
/// protocol (see abd.cpp for ABD's message grammar).
struct Message {
  NodeId from = -1;
  NodeId to = -1;
  std::int64_t type = 0;
  std::vector<std::int64_t> payload;
  std::uint64_t seq = 0;  ///< Global send sequence number (determinism).
};

/// Message handler interface implemented by protocol nodes.
class Node {
 public:
  virtual ~Node() = default;
  virtual void on_message(const Message& m) = 0;
};

/// Passive observer of network events, for forensics timelines.  Hooked
/// in with Network::set_observer; every callback fires synchronously at
/// the event site, in deterministic driver order.  Observers must not
/// mutate the network (observability is never behavior, and never
/// digest material).
class NetObserver {
 public:
  virtual ~NetObserver() = default;
  /// A message was enqueued (after any scheduled mid-broadcast crash
  /// fired; suppressed sends from crashed nodes are not reported).
  virtual void on_send(const Message& m) = 0;
  /// A message reached a live receiver's on_message.
  virtual void on_deliver(const Message& m) = 0;
  /// A message was consumed without effect.  `reason` is one of
  /// "crashed-receiver", "partition-cut", "lossy", "adversary".
  virtual void on_drop(const Message& m, const char* reason) = 0;
  /// A fabric or adversarial duplicate (same seq) joined the multiset.
  virtual void on_duplicate(const Message& m) = 0;
  virtual void on_crash(NodeId n) = 0;
  virtual void on_recover(NodeId n) = 0;
};

/// The network: in-flight message multiset plus the fault fabric
/// (crashes, recovery, seeded loss/duplication, transient partitions).
class Network {
 public:
  /// Registers a node; returns its id (dense, starting at 0).
  NodeId add_node(Node& node) {
    nodes_.push_back(&node);
    crashed_.push_back(false);
    side_.push_back(0);
    return static_cast<NodeId>(nodes_.size()) - 1;
  }

  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(nodes_.size());
  }

  /// Attaches (or, with nullptr, detaches) a forensics observer.  The
  /// observer is notified of sends, deliveries, drops, duplicates,
  /// crashes, and recoveries; it never alters behavior.
  void set_observer(NetObserver* obs) noexcept { observer_ = obs; }

  /// Queues a message.  Sends from crashed nodes are dropped.  Each call
  /// is one send *attempt*: scheduled mid-broadcast crashes fire by
  /// attempt number, BEFORE the attempt enqueues, so a crash scheduled
  /// inside a broadcast lets exactly the earlier sends through.
  void send(NodeId from, NodeId to, std::int64_t type,
            std::vector<std::int64_t> payload) {
    RLT_CHECK(valid(from) && valid(to));
    ++send_attempts_;
    while (next_send_crash_ < send_crashes_.size() &&
           send_crashes_[next_send_crash_].first <= send_attempts_) {
      crash(send_crashes_[next_send_crash_].second);
      ++next_send_crash_;
    }
    if (crashed_[static_cast<std::size_t>(from)]) return;
    Message m;
    m.from = from;
    m.to = to;
    m.type = type;
    m.payload = std::move(payload);
    m.seq = ++sent_;
    bytes_sent_ += wire_bytes(m);
    if (observer_ != nullptr) observer_->on_send(m);
    in_flight_.push_back(std::move(m));
  }

  /// Queues a message to every node (including the sender).
  void broadcast(NodeId from, std::int64_t type,
                 const std::vector<std::int64_t>& payload) {
    for (NodeId to = 0; to < node_count(); ++to) {
      send(from, to, type, payload);
    }
  }

  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.size();
  }
  /// The in-flight multiset, send order (adversarial schedule policies
  /// inspect envelopes to steer quorums; index into it with deliver_at).
  [[nodiscard]] const std::vector<Message>& in_flight_messages()
      const noexcept {
    return in_flight_;
  }
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  /// Wire bytes enqueued (message-complexity accounting): every sent
  /// envelope, fabric duplicates included, at 8 bytes per header word
  /// (from, to, type, seq) and per payload word.  A pure function of
  /// the messages sent — deterministic, observability-only.
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  /// Messages handed to a live, reachable receiver's on_message.
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return delivered_;
  }
  /// Messages consumed without effect: crashed receiver, partition cut,
  /// lossy coin, or an adversarial drop_at.
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept {
    return dropped_;
  }
  /// Extra copies enqueued by the duplication fabric or duplicate_at.
  [[nodiscard]] std::uint64_t messages_duplicated() const noexcept {
    return duplicated_;
  }
  /// Total envelopes consumed off the in-flight multiset (the driver's
  /// step/budget currency; delivered + dropped).
  [[nodiscard]] std::uint64_t messages_consumed() const noexcept {
    return delivered_ + dropped_;
  }

  /// Arms seeded per-message unreliability: each would-be delivery is
  /// dropped with probability drop_permille/1000, and each actual
  /// delivery is duplicated (a copy re-enqueued with the SAME seq, so
  /// receiver-side dedup can spot it) with dup_permille/1000.
  void make_unreliable(std::uint32_t drop_permille,
                       std::uint32_t dup_permille, std::uint64_t seed) {
    RLT_CHECK(drop_permille < 1000 && dup_permille < 1000);
    drop_permille_ = drop_permille;
    dup_permille_ = dup_permille;
    fabric_rng_ = util::Rng(seed);
    unreliable_ = drop_permille > 0 || dup_permille > 0;
  }

  /// Cuts the network into two sides; cross-side messages are dropped
  /// at delivery time for as long as the cut holds.  side[n] is 0 or 1.
  void set_partition(const std::vector<std::uint8_t>& side) {
    RLT_CHECK(side.size() == nodes_.size());
    side_ = side;
    partitioned_ = true;
  }
  void heal_partition() { partitioned_ = false; }
  [[nodiscard]] bool partitioned() const noexcept { return partitioned_; }

  /// Delivers the in-flight message at `index` (adversarial delivery).
  /// Messages to crashed or cut-off receivers, and messages claimed by
  /// the lossy coin, are consumed as drops.
  void deliver_at(std::size_t index) {
    const Message m = take_at(index);
    // Checks stay sequenced exactly as the original short-circuit: the
    // lossy coin is only consumed when the first two gates pass, so the
    // fabric Rng stream (and hence every seeded run) is unchanged.
    const char* drop_reason = nullptr;
    if (crashed_[static_cast<std::size_t>(m.to)]) {
      drop_reason = "crashed-receiver";
    } else if (cut(m.from, m.to)) {
      drop_reason = "partition-cut";
    } else if (unreliable_ && drop_permille_ > 0 &&
               fabric_rng_.chance(drop_permille_, 1000)) {
      drop_reason = "lossy";
    }
    if (drop_reason != nullptr) {
      ++dropped_;
      if (observer_ != nullptr) observer_->on_drop(m, drop_reason);
      return;
    }
    ++delivered_;
    if (unreliable_ && dup_permille_ > 0 &&
        fabric_rng_.chance(dup_permille_, 1000)) {
      ++duplicated_;
      bytes_sent_ += wire_bytes(m);
      if (observer_ != nullptr) observer_->on_duplicate(m);
      in_flight_.push_back(m);  // same seq: dedup-able by the receiver
    }
    if (observer_ != nullptr) observer_->on_deliver(m);
    nodes_[static_cast<std::size_t>(m.to)]->on_message(m);
  }

  /// Adversarially drops the in-flight message at `index` (explore-lab
  /// fault menus pick the victim envelope).
  void drop_at(std::size_t index) {
    const Message m = take_at(index);
    ++dropped_;
    if (observer_ != nullptr) observer_->on_drop(m, "adversary");
  }

  /// Adversarially duplicates the in-flight message at `index`: a copy
  /// with the SAME seq joins the multiset.
  void duplicate_at(std::size_t index) {
    RLT_CHECK(index < in_flight_.size());
    ++duplicated_;
    bytes_sent_ += wire_bytes(in_flight_[index]);
    if (observer_ != nullptr) observer_->on_duplicate(in_flight_[index]);
    in_flight_.push_back(in_flight_[index]);
  }

  /// Delivers one uniformly random in-flight message; false if none.
  bool deliver_random(util::Rng& rng) {
    if (in_flight_.empty()) return false;
    deliver_at(static_cast<std::size_t>(rng.uniform(in_flight_.size())));
    return true;
  }

  /// Crashes a node (permanently, unless recover() is called).
  void crash(NodeId n) {
    RLT_CHECK(valid(n));
    crashed_[static_cast<std::size_t>(n)] = true;
    if (observer_ != nullptr) observer_->on_crash(n);
  }

  /// Schedules a crash to fire when the send-attempt counter reaches
  /// `at_attempt` (1-based), i.e. immediately BEFORE that send enqueues
  /// — this is how a crash lands mid-broadcast.  Call before the run
  /// starts; attempts must be scheduled in nondecreasing order.
  void schedule_crash_at_send(NodeId n, std::uint64_t at_attempt) {
    RLT_CHECK(valid(n) && at_attempt > 0);
    RLT_CHECK(send_crashes_.empty() ||
              send_crashes_.back().first <= at_attempt);
    send_crashes_.emplace_back(at_attempt, n);
  }

  /// Recovers a crashed node: it hears future deliveries and its sends
  /// flow again.  Volatile protocol state is the node's business (see
  /// AbdRegister::on_recover); the network only flips liveness.
  void recover(NodeId n) {
    RLT_CHECK(valid(n));
    RLT_CHECK(crashed_[static_cast<std::size_t>(n)]);
    crashed_[static_cast<std::size_t>(n)] = false;
    if (observer_ != nullptr) observer_->on_recover(n);
  }

  [[nodiscard]] bool crashed(NodeId n) const {
    RLT_CHECK(valid(n));
    return crashed_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] int crashed_count() const {
    int c = 0;
    for (const bool b : crashed_) c += b ? 1 : 0;
    return c;
  }
  /// Nodes still alive — the population quorum-based protocols can draw
  /// replies from (crashed nodes consume requests without answering).
  [[nodiscard]] int live_count() const {
    return node_count() - crashed_count();
  }

 private:
  [[nodiscard]] bool valid(NodeId n) const noexcept {
    return n >= 0 && n < node_count();
  }

  [[nodiscard]] static std::uint64_t wire_bytes(const Message& m) noexcept {
    return 8 * (4 + m.payload.size());  // from, to, type, seq + payload
  }

  [[nodiscard]] bool cut(NodeId from, NodeId to) const {
    return partitioned_ && side_[static_cast<std::size_t>(from)] !=
                               side_[static_cast<std::size_t>(to)];
  }

  Message take_at(std::size_t index) {
    RLT_CHECK(index < in_flight_.size());
    Message m = std::move(in_flight_[index]);
    in_flight_.erase(in_flight_.begin() +
                     static_cast<std::ptrdiff_t>(index));
    return m;
  }

  std::vector<Node*> nodes_;
  NetObserver* observer_ = nullptr;
  std::vector<bool> crashed_;
  std::vector<std::uint8_t> side_;
  std::vector<Message> in_flight_;
  std::vector<std::pair<std::uint64_t, NodeId>> send_crashes_;
  std::size_t next_send_crash_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t send_attempts_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint32_t drop_permille_ = 0;
  std::uint32_t dup_permille_ = 0;
  bool unreliable_ = false;
  bool partitioned_ = false;
  util::Rng fabric_rng_{0};
};

}  // namespace rlt::mp
