#include "mp/abd.hpp"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "util/assert.hpp"

namespace rlt::mp {

namespace {

// Message grammar.
constexpr std::int64_t kMsgWrite = 1;      // [token, ts, value]  (to server)
constexpr std::int64_t kMsgWriteAck = 2;   // [token]             (to client)
constexpr std::int64_t kMsgRead = 3;       // [token]             (to server)
constexpr std::int64_t kMsgReadReply = 4;  // [token, ts, value]  (to client)

}  // namespace

/// The per-node server: stores the highest-timestamped pair seen and
/// forwards client-addressed responses to the register's op machines.
class AbdRegister::Server final : public Node {
 public:
  Server(AbdRegister& owner, Value initial) : owner_(owner), value_(initial) {}

  void on_message(const Message& m) override {
    // Seq-keyed dedup (fault-tolerant mode only): fabric duplicates
    // carry the seq of their original and are consumed once;
    // retransmissions carry fresh seqs and are answered again.
    if (owner_.fault_tolerant_ && !seen_.insert(m.seq).second) return;
    switch (m.type) {
      case kMsgWrite: {
        const std::int64_t ts = m.payload[1];
        if (ts > ts_) {
          ts_ = ts;
          value_ = m.payload[2];
        }
        owner_.net_.send(id_, m.from, kMsgWriteAck, {m.payload[0]});
        break;
      }
      case kMsgRead:
        owner_.net_.send(id_, m.from, kMsgReadReply,
                         {m.payload[0], ts_, value_});
        break;
      case kMsgWriteAck:
      case kMsgReadReply:
        owner_.on_server_message(id_, m);
        break;
      default:
        RLT_CHECK_MSG(false, "unknown ABD message type " << m.type);
    }
  }

  void set_id(NodeId id) noexcept { id_ = id; }

  /// Crash-recovery: the dedup cache is volatile and does not survive a
  /// crash; (ts_, value_) model durable storage and are kept.
  void reset_volatile() { seen_.clear(); }

 private:
  AbdRegister& owner_;
  NodeId id_ = -1;
  std::int64_t ts_ = 0;
  Value value_;
  std::unordered_set<std::uint64_t> seen_;
};

AbdRegister::~AbdRegister() = default;

AbdRegister::AbdRegister(Network& net, int n, NodeId writer, Value initial,
                         bool read_write_back)
    : net_(net), n_(n), writer_(writer), read_write_back_(read_write_back) {
  RLT_CHECK_MSG(n >= 1, "need at least one server");
  RLT_CHECK_MSG(n <= 64, "quorum bookkeeping uses 64-bit server masks");
  RLT_CHECK_MSG(writer >= 0 && writer < n, "writer must be one of the nodes");
  recorder_.set_initial(0, initial);
  for (int i = 0; i < n; ++i) {
    servers_.push_back(std::make_unique<Server>(*this, initial));
    const NodeId id = net_.add_node(*servers_.back());
    RLT_CHECK_MSG(id == i, "ABD servers must be the first nodes added");
    servers_.back()->set_id(id);
  }
}

int AbdRegister::begin_write(Value v) {
  RLT_CHECK_MSG(!write_pending_,
                "ABD registers are single-writer: a write is already "
                "pending (Observation 65)");
  write_pending_ = true;
  const int token = next_token_++;
  ClientOp op;
  op.kind = ClientOp::Kind::kWrite;
  op.home = writer_;
  op.hl = recorder_.begin_op(writer_, 0, history::OpKind::kWrite, v, tick());
  ++writer_ts_;
  op.write_ts = writer_ts_;
  op.write_value = v;
  ops_[token] = op;
  ++round_trips_;
  net_.broadcast(writer_, kMsgWrite, {token, writer_ts_, v});
  return token;
}

int AbdRegister::begin_read(NodeId reader) {
  RLT_CHECK(reader >= 0 && reader < n_);
  for (const auto& [t, op] : ops_) {
    RLT_CHECK_MSG(op.completed || op.abandoned || op.home != reader,
                  "node " << reader << " already has an operation pending");
  }
  const int token = next_token_++;
  ClientOp op;
  op.kind = ClientOp::Kind::kReadQuery;
  op.home = reader;
  op.hl = recorder_.begin_op(reader, 0, history::OpKind::kRead, 0, tick());
  ops_[token] = op;
  ++round_trips_;
  net_.broadcast(reader, kMsgRead, {token});
  return token;
}

void AbdRegister::on_server_message(NodeId at, const Message& m) {
  const int token = static_cast<int>(m.payload[0]);
  const auto it = ops_.find(token);
  RLT_CHECK_MSG(it != ops_.end(), "response for unknown op token " << token);
  ClientOp& op = it->second;
  if (op.completed) return;  // stale ack/reply after quorum
  if (op.abandoned) return;  // stale reply to an op killed by a crash
  RLT_CHECK_MSG(op.home == at, "response routed to the wrong node");
  const std::uint64_t server_bit = 1ULL
                                   << static_cast<std::uint64_t>(m.from);

  switch (op.kind) {
    case ClientOp::Kind::kWrite:
      RLT_CHECK(m.type == kMsgWriteAck);
      op.heard |= server_bit;
      if (heard_count(op) >= quorum()) {
        op.completed = true;
        write_pending_ = false;
        recorder_.end_op(op.hl, 0, tick());
      }
      break;
    case ClientOp::Kind::kReadQuery: {
      RLT_CHECK(m.type == kMsgReadReply);
      if (m.payload[1] > op.best_ts) {
        op.best_ts = m.payload[1];
        op.best_value = m.payload[2];
      }
      op.heard |= server_bit;
      if (heard_count(op) >= quorum()) {
        if (!read_write_back_) {
          // Ablation: return immediately after the query phase.  Fast,
          // but no longer linearizable across readers.
          op.completed = true;
          op.result = op.best_value;
          recorder_.end_op(op.hl, op.result, tick());
          break;
        }
        // Phase 2: write back the chosen pair before returning.
        op.kind = ClientOp::Kind::kReadWriteBack;
        op.heard = 0;
        op.next_retry = 0;  // re-arm the retransmission timer afresh
        ++round_trips_;
        net_.broadcast(op.home, kMsgWrite, {token, op.best_ts, op.best_value});
      }
      break;
    }
    case ClientOp::Kind::kReadWriteBack:
      // Stale phase-1 replies may still arrive after the quorum was
      // reached and the op moved to its write-back phase; ignore them.
      if (m.type == kMsgReadReply) return;
      RLT_CHECK(m.type == kMsgWriteAck);
      op.heard |= server_bit;
      if (heard_count(op) >= quorum()) {
        op.completed = true;
        op.result = op.best_value;
        recorder_.end_op(op.hl, op.result, tick());
      }
      break;
  }
}

int AbdRegister::heard_count(const ClientOp& op) const {
  return std::popcount(op.heard);
}

void AbdRegister::enable_fault_tolerance(std::uint64_t seed,
                                         std::uint64_t retry_base) {
  RLT_CHECK(retry_base > 0);
  fault_tolerant_ = true;
  retry_base_ = retry_base;
  retry_rng_ = util::Rng(seed);
}

bool AbdRegister::retransmit_eligible(const ClientOp& op) const {
  return fault_tolerant_ && !op.completed && !op.abandoned &&
         !net_.crashed(op.home) && net_.live_count() >= quorum();
}

void AbdRegister::rebroadcast_phase(int token, const ClientOp& op) {
  ++round_trips_;
  switch (op.kind) {
    case ClientOp::Kind::kWrite:
      net_.broadcast(op.home, kMsgWrite, {token, op.write_ts, op.write_value});
      break;
    case ClientOp::Kind::kReadQuery:
      net_.broadcast(op.home, kMsgRead, {token});
      break;
    case ClientOp::Kind::kReadWriteBack:
      net_.broadcast(op.home, kMsgWrite, {token, op.best_ts, op.best_value});
      break;
  }
}

void AbdRegister::tick_retransmit(std::uint64_t now) {
  if (!fault_tolerant_) return;
  for (auto& [token, op] : ops_) {
    if (!retransmit_eligible(op)) continue;
    if (op.next_retry == 0) {
      // Arm with a seeded jittered base interval; the jitter keeps
      // concurrent ops from thundering in lockstep.
      op.retry_interval = retry_base_ + retry_rng_.uniform(retry_base_);
      op.next_retry = now + op.retry_interval;
      continue;
    }
    if (now < op.next_retry) continue;
    rebroadcast_phase(token, op);
    ++retransmits_;
    op.retry_interval = std::min<std::uint64_t>(op.retry_interval * 2,
                                                std::uint64_t{1} << 16);
    op.next_retry = now + op.retry_interval;
  }
}

std::optional<std::uint64_t> AbdRegister::next_retransmit_due() const {
  std::optional<std::uint64_t> due;
  if (!fault_tolerant_) return due;
  for (const auto& [token, op] : ops_) {
    if (!retransmit_eligible(op) || op.next_retry == 0) continue;
    if (!due || op.next_retry < *due) due = op.next_retry;
  }
  return due;
}

void AbdRegister::abandon_ops_on(NodeId node) {
  for (auto& [token, op] : ops_) {
    if (op.completed || op.abandoned || op.home != node) continue;
    op.abandoned = true;
    // The invocation stays pending in the recorded history — the
    // checkers must treat the half-replicated op as possibly-effective.
    if (op.kind == ClientOp::Kind::kWrite) write_pending_ = false;
  }
}

int AbdRegister::abandoned_ops() const {
  int count = 0;
  for (const auto& [token, op] : ops_) count += op.abandoned ? 1 : 0;
  return count;
}

void AbdRegister::on_recover(NodeId node) {
  RLT_CHECK(node >= 0 && node < n_);
  servers_[static_cast<std::size_t>(node)]->reset_volatile();
}

bool AbdRegister::done(int token) const {
  const auto it = ops_.find(token);
  RLT_CHECK(it != ops_.end());
  return it->second.completed;
}

Value AbdRegister::result(int token) const {
  const auto it = ops_.find(token);
  RLT_CHECK(it != ops_.end() && it->second.completed);
  return it->second.result;
}

int AbdRegister::pending_ops() const {
  int pending = 0;
  for (const auto& [t, op] : ops_) pending += op.completed ? 0 : 1;
  return pending;
}

NodeId AbdRegister::op_node(int token) const {
  const auto it = ops_.find(token);
  RLT_CHECK(it != ops_.end());
  return it->second.home;
}

bool AbdRegister::op_can_complete(int token) const {
  const auto it = ops_.find(token);
  RLT_CHECK(it != ops_.end());
  if (it->second.completed) return true;
  if (it->second.abandoned) return false;
  return !net_.crashed(it->second.home) && net_.live_count() >= quorum();
}

}  // namespace rlt::mp
