#include "mp/abd.hpp"

#include "util/assert.hpp"

namespace rlt::mp {

namespace {

// Message grammar.
constexpr std::int64_t kMsgWrite = 1;      // [token, ts, value]  (to server)
constexpr std::int64_t kMsgWriteAck = 2;   // [token]             (to client)
constexpr std::int64_t kMsgRead = 3;       // [token]             (to server)
constexpr std::int64_t kMsgReadReply = 4;  // [token, ts, value]  (to client)

}  // namespace

/// The per-node server: stores the highest-timestamped pair seen and
/// forwards client-addressed responses to the register's op machines.
class AbdRegister::Server final : public Node {
 public:
  Server(AbdRegister& owner, Value initial) : owner_(owner), value_(initial) {}

  void on_message(const Message& m) override {
    switch (m.type) {
      case kMsgWrite: {
        const std::int64_t ts = m.payload[1];
        if (ts > ts_) {
          ts_ = ts;
          value_ = m.payload[2];
        }
        owner_.net_.send(id_, m.from, kMsgWriteAck, {m.payload[0]});
        break;
      }
      case kMsgRead:
        owner_.net_.send(id_, m.from, kMsgReadReply,
                         {m.payload[0], ts_, value_});
        break;
      case kMsgWriteAck:
      case kMsgReadReply:
        owner_.on_server_message(id_, m);
        break;
      default:
        RLT_CHECK_MSG(false, "unknown ABD message type " << m.type);
    }
  }

  void set_id(NodeId id) noexcept { id_ = id; }

 private:
  AbdRegister& owner_;
  NodeId id_ = -1;
  std::int64_t ts_ = 0;
  Value value_;
};

AbdRegister::~AbdRegister() = default;

AbdRegister::AbdRegister(Network& net, int n, NodeId writer, Value initial,
                         bool read_write_back)
    : net_(net), n_(n), writer_(writer), read_write_back_(read_write_back) {
  RLT_CHECK_MSG(n >= 1, "need at least one server");
  RLT_CHECK_MSG(writer >= 0 && writer < n, "writer must be one of the nodes");
  recorder_.set_initial(0, initial);
  for (int i = 0; i < n; ++i) {
    servers_.push_back(std::make_unique<Server>(*this, initial));
    const NodeId id = net_.add_node(*servers_.back());
    RLT_CHECK_MSG(id == i, "ABD servers must be the first nodes added");
    servers_.back()->set_id(id);
  }
}

int AbdRegister::begin_write(Value v) {
  RLT_CHECK_MSG(!write_pending_,
                "ABD registers are single-writer: a write is already "
                "pending (Observation 65)");
  write_pending_ = true;
  const int token = next_token_++;
  ClientOp op;
  op.kind = ClientOp::Kind::kWrite;
  op.home = writer_;
  op.hl = recorder_.begin_op(writer_, 0, history::OpKind::kWrite, v, tick());
  ops_[token] = op;
  ++writer_ts_;
  net_.broadcast(writer_, kMsgWrite, {token, writer_ts_, v});
  return token;
}

int AbdRegister::begin_read(NodeId reader) {
  RLT_CHECK(reader >= 0 && reader < n_);
  for (const auto& [t, op] : ops_) {
    RLT_CHECK_MSG(op.completed || op.home != reader,
                  "node " << reader << " already has an operation pending");
  }
  const int token = next_token_++;
  ClientOp op;
  op.kind = ClientOp::Kind::kReadQuery;
  op.home = reader;
  op.hl = recorder_.begin_op(reader, 0, history::OpKind::kRead, 0, tick());
  ops_[token] = op;
  net_.broadcast(reader, kMsgRead, {token});
  return token;
}

void AbdRegister::on_server_message(NodeId at, const Message& m) {
  const int token = static_cast<int>(m.payload[0]);
  const auto it = ops_.find(token);
  RLT_CHECK_MSG(it != ops_.end(), "response for unknown op token " << token);
  ClientOp& op = it->second;
  if (op.completed) return;  // stale ack/reply after quorum
  RLT_CHECK_MSG(op.home == at, "response routed to the wrong node");

  switch (op.kind) {
    case ClientOp::Kind::kWrite:
      RLT_CHECK(m.type == kMsgWriteAck);
      if (++op.acks >= quorum()) {
        op.completed = true;
        write_pending_ = false;
        recorder_.end_op(op.hl, 0, tick());
      }
      break;
    case ClientOp::Kind::kReadQuery: {
      RLT_CHECK(m.type == kMsgReadReply);
      if (m.payload[1] > op.best_ts) {
        op.best_ts = m.payload[1];
        op.best_value = m.payload[2];
      }
      if (++op.acks >= quorum()) {
        if (!read_write_back_) {
          // Ablation: return immediately after the query phase.  Fast,
          // but no longer linearizable across readers.
          op.completed = true;
          op.result = op.best_value;
          recorder_.end_op(op.hl, op.result, tick());
          break;
        }
        // Phase 2: write back the chosen pair before returning.
        op.kind = ClientOp::Kind::kReadWriteBack;
        op.acks = 0;
        net_.broadcast(op.home, kMsgWrite, {token, op.best_ts, op.best_value});
      }
      break;
    }
    case ClientOp::Kind::kReadWriteBack:
      // Stale phase-1 replies may still arrive after the quorum was
      // reached and the op moved to its write-back phase; ignore them.
      if (m.type == kMsgReadReply) return;
      RLT_CHECK(m.type == kMsgWriteAck);
      if (++op.acks >= quorum()) {
        op.completed = true;
        op.result = op.best_value;
        recorder_.end_op(op.hl, op.result, tick());
      }
      break;
  }
}

bool AbdRegister::done(int token) const {
  const auto it = ops_.find(token);
  RLT_CHECK(it != ops_.end());
  return it->second.completed;
}

Value AbdRegister::result(int token) const {
  const auto it = ops_.find(token);
  RLT_CHECK(it != ops_.end() && it->second.completed);
  return it->second.result;
}

int AbdRegister::pending_ops() const {
  int pending = 0;
  for (const auto& [t, op] : ops_) pending += op.completed ? 0 : 1;
  return pending;
}

NodeId AbdRegister::op_node(int token) const {
  const auto it = ops_.find(token);
  RLT_CHECK(it != ops_.end());
  return it->second.home;
}

bool AbdRegister::op_can_complete(int token) const {
  const auto it = ops_.find(token);
  RLT_CHECK(it != ops_.end());
  if (it->second.completed) return true;
  return !net_.crashed(it->second.home) && net_.live_count() >= quorum();
}

}  // namespace rlt::mp
