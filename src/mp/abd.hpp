// The ABD algorithm [Attiya, Bar-Noy, Dolev 1995]: a linearizable SWMR
// register in an asynchronous message-passing system with a minority of
// crash faults.
//
// Every node runs a *server* storing the highest-timestamped (ts, value)
// pair it has seen.  The (single) writer increments its timestamp, sends
// WRITE(ts, v) to all nodes, and returns once a majority acknowledged.
// A reader queries all nodes, takes the highest-timestamped pair from a
// majority of replies, *writes it back* to a majority (the write-back
// phase is what makes reads by multiple readers linearizable), and then
// returns the value.
//
// Theorem 14 of the paper: this — like every linearizable SWMR register
// implementation — is write strongly-linearizable, even though it is not
// strongly linearizable.  bench/theorem14_abd and the mp tests check the
// recorded histories with the generic checkers and the f* construction.
//
// Client operations are little state machines driven by message
// deliveries; the driver (tests/benches) interleaves deliveries
// adversarially or at random and may crash a minority of nodes.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "history/recorder.hpp"
#include "mp/network.hpp"
#include "util/rng.hpp"

namespace rlt::mp {

using history::Value;

/// One ABD-replicated SWMR register plus its client operations.
class AbdRegister {
 public:
  /// Servers are nodes 0..n-1 of `net` (created here).  The writer
  /// client lives at node `writer`; readers may be any node.
  ///
  /// `read_write_back` enables the second read phase (writing the chosen
  /// pair back to a majority before returning).  Disabling it is an
  /// ABLATION: the register stops being linearizable for multiple
  /// readers — two sequential reads can observe new-then-old values
  /// (tests/mp_abd_test.cpp hunts down a violating schedule, and
  /// bench/theorem14_abd reports the ablation).  Keep it on.
  AbdRegister(Network& net, int n, NodeId writer, Value initial,
              bool read_write_back = true);

  AbdRegister(const AbdRegister&) = delete;
  AbdRegister& operator=(const AbdRegister&) = delete;
  ~AbdRegister();  // defined out of line: Server is incomplete here

  /// Arms the fault-tolerance layer for unreliable networks: client ops
  /// retransmit their current phase after a seeded timeout with jittered
  /// exponential backoff (retransmissions carry FRESH seqs, so servers
  /// answer them again), and servers dedup incoming messages by seq (so
  /// fabric-duplicated copies — same seq — are consumed once).  Off by
  /// default: the reliable-network message flow is byte-identical to the
  /// classic algorithm.
  void enable_fault_tolerance(std::uint64_t seed,
                              std::uint64_t retry_base = 8);
  [[nodiscard]] bool fault_tolerant() const noexcept {
    return fault_tolerant_;
  }

  /// Drives the retransmission timers at driver-logical time `now`
  /// (call once per driver iteration).  Ops whose timer expired
  /// rebroadcast their current phase and back off; ops that can no
  /// longer complete (abandoned, crashed home, no live quorum) never
  /// retransmit — permanent majority loss quiesces into kBlocked
  /// instead of spinning the budget into kError.
  void tick_retransmit(std::uint64_t now);

  /// Earliest armed retransmission deadline among ops still eligible to
  /// complete; nullopt when no retransmission will ever fire.  Drivers
  /// use this to fast-forward quiescent time instead of misclassifying
  /// a lull as blocked.
  [[nodiscard]] std::optional<std::uint64_t> next_retransmit_due() const;

  /// Crash-recovery semantics: ops in flight at `node` when it crashed
  /// are ABANDONED — their invocations stay pending in the history (the
  /// checkers treat them as possibly-effective), they never complete,
  /// never retransmit, and no longer block the node from starting fresh
  /// ops after recovery.  An abandoned write releases the single-writer
  /// slot (writer_ts_ is durable, so the next write's timestamp still
  /// supersedes it).
  void abandon_ops_on(NodeId node);
  [[nodiscard]] int abandoned_ops() const;

  /// Restores a recovered node's server: durable state (ts, value) is
  /// kept — it survived the crash on stable storage — while volatile
  /// state (the seq-dedup cache) is reset.  Call alongside
  /// Network::recover.
  void on_recover(NodeId node);

  /// Total phase rebroadcasts performed by the retransmission layer.
  [[nodiscard]] std::uint64_t retransmits() const noexcept {
    return retransmits_;
  }

  /// Message-complexity accounting: total client-side round trips —
  /// every phase broadcast counts one (a write's single phase, a read's
  /// query and write-back phases, and each retransmission rebroadcast).
  /// A fault-free classic-ABD write is 1, a fault-free read is 2.
  [[nodiscard]] std::uint64_t round_trips() const noexcept {
    return round_trips_;
  }

  /// Starts a write (only the writer node; ABD is single-writer — calls
  /// while another write is pending are illegal and throw).
  /// Returns an operation token.
  int begin_write(Value v);

  /// Starts a read from node `reader`.  A node may run one op at a time.
  int begin_read(NodeId reader);

  /// True once the operation has committed (majority acks collected).
  [[nodiscard]] bool done(int token) const;

  /// The value a completed read returned.
  [[nodiscard]] Value result(int token) const;

  /// Number of operations still in flight.
  [[nodiscard]] int pending_ops() const;

  /// The node an operation runs on (the writer for writes, the reader
  /// for reads).
  [[nodiscard]] NodeId op_node(int token) const;

  /// Liveness of one operation under the network's current crash set:
  /// true iff the op is completed, or can still be driven to completion
  /// by some delivery schedule (its home node is alive and a majority of
  /// servers is alive — crashed servers never reply, so a pending op
  /// whose live-server count is below the quorum is stranded forever).
  /// Sweep drivers use this to classify quiescent runs as blocked.
  [[nodiscard]] bool op_can_complete(int token) const;

  // ---- forensics accessors (quorum ledger) ------------------------------
  // Read-only views of a client op's progress, used by the blocked-verdict
  // forensics artifact.  Never digest material.

  /// Servers that acked the op's CURRENT phase, as a bitmask (bit i =
  /// node i; retransmitted and duplicated acks count once).
  [[nodiscard]] std::uint64_t op_heard_mask(int token) const {
    return op_at(token).heard;
  }
  /// The phase the op is stuck in: "write", "read-query", or
  /// "read-write-back".
  [[nodiscard]] const char* op_phase_name(int token) const {
    switch (op_at(token).kind) {
      case ClientOp::Kind::kWrite: return "write";
      case ClientOp::Kind::kReadQuery: return "read-query";
      case ClientOp::Kind::kReadWriteBack: return "read-write-back";
    }
    return "?";
  }
  /// True when the op was abandoned by a crash of its home node.
  [[nodiscard]] bool op_abandoned(int token) const {
    return op_at(token).abandoned;
  }
  /// True for the writer's op, false for a read.
  [[nodiscard]] bool op_is_write(int token) const {
    return op_at(token).kind == ClientOp::Kind::kWrite;
  }

  /// The recorded high-level history (register id 0; times are the
  /// driver's logical clock: one tick per delivery or op begin).
  [[nodiscard]] const history::History& hl_history() const {
    return recorder_.history();
  }

  [[nodiscard]] int n() const noexcept { return n_; }
  /// Majority threshold (quorum size).
  [[nodiscard]] int quorum() const noexcept { return n_ / 2 + 1; }

 private:
  friend class AbdServer;
  class Server;

  struct ClientOp {
    enum class Kind { kWrite, kReadQuery, kReadWriteBack };
    Kind kind = Kind::kWrite;
    NodeId home = -1;
    history::OpHandle hl;
    // Servers heard from in the current phase, as a bitmask: duplicated
    // or re-acked replies from the same server count once toward the
    // quorum (n <= 64 enforced at construction).
    std::uint64_t heard = 0;
    // Read state: best (ts, value) seen in the query phase.
    std::int64_t best_ts = -1;
    Value best_value = 0;
    // Write state, kept so retransmissions can replay the phase.
    std::int64_t write_ts = 0;
    Value write_value = 0;
    bool completed = false;
    bool abandoned = false;
    Value result = 0;
    // Retransmission timer: 0 = not yet armed (armed at the next tick);
    // interval doubles on every fire, resets on phase progress.
    std::uint64_t next_retry = 0;
    std::uint64_t retry_interval = 0;
  };

  [[nodiscard]] const ClientOp& op_at(int token) const {
    const auto it = ops_.find(token);
    RLT_CHECK(it != ops_.end());
    return it->second;
  }

  void on_server_message(NodeId at, const Message& m);
  void rebroadcast_phase(int token, const ClientOp& op);
  [[nodiscard]] bool retransmit_eligible(const ClientOp& op) const;
  [[nodiscard]] int heard_count(const ClientOp& op) const;
  history::Time tick() { return ++clock_; }

  Network& net_;
  int n_;
  NodeId writer_;
  std::vector<std::unique_ptr<Server>> servers_;
  history::Recorder recorder_;
  history::Time clock_ = 0;
  std::map<int, ClientOp> ops_;  ///< token -> op
  int next_token_ = 0;
  std::int64_t writer_ts_ = 0;
  bool write_pending_ = false;
  bool read_write_back_ = true;
  bool fault_tolerant_ = false;
  std::uint64_t retry_base_ = 8;
  std::uint64_t retransmits_ = 0;
  std::uint64_t round_trips_ = 0;
  util::Rng retry_rng_{0};
};

}  // namespace rlt::mp
