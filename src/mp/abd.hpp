// The ABD algorithm [Attiya, Bar-Noy, Dolev 1995]: a linearizable SWMR
// register in an asynchronous message-passing system with a minority of
// crash faults.
//
// Every node runs a *server* storing the highest-timestamped (ts, value)
// pair it has seen.  The (single) writer increments its timestamp, sends
// WRITE(ts, v) to all nodes, and returns once a majority acknowledged.
// A reader queries all nodes, takes the highest-timestamped pair from a
// majority of replies, *writes it back* to a majority (the write-back
// phase is what makes reads by multiple readers linearizable), and then
// returns the value.
//
// Theorem 14 of the paper: this — like every linearizable SWMR register
// implementation — is write strongly-linearizable, even though it is not
// strongly linearizable.  bench/theorem14_abd and the mp tests check the
// recorded histories with the generic checkers and the f* construction.
//
// Client operations are little state machines driven by message
// deliveries; the driver (tests/benches) interleaves deliveries
// adversarially or at random and may crash a minority of nodes.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "history/recorder.hpp"
#include "mp/network.hpp"

namespace rlt::mp {

using history::Value;

/// One ABD-replicated SWMR register plus its client operations.
class AbdRegister {
 public:
  /// Servers are nodes 0..n-1 of `net` (created here).  The writer
  /// client lives at node `writer`; readers may be any node.
  ///
  /// `read_write_back` enables the second read phase (writing the chosen
  /// pair back to a majority before returning).  Disabling it is an
  /// ABLATION: the register stops being linearizable for multiple
  /// readers — two sequential reads can observe new-then-old values
  /// (tests/mp_abd_test.cpp hunts down a violating schedule, and
  /// bench/theorem14_abd reports the ablation).  Keep it on.
  AbdRegister(Network& net, int n, NodeId writer, Value initial,
              bool read_write_back = true);

  AbdRegister(const AbdRegister&) = delete;
  AbdRegister& operator=(const AbdRegister&) = delete;
  ~AbdRegister();  // defined out of line: Server is incomplete here

  /// Starts a write (only the writer node; ABD is single-writer — calls
  /// while another write is pending are illegal and throw).
  /// Returns an operation token.
  int begin_write(Value v);

  /// Starts a read from node `reader`.  A node may run one op at a time.
  int begin_read(NodeId reader);

  /// True once the operation has committed (majority acks collected).
  [[nodiscard]] bool done(int token) const;

  /// The value a completed read returned.
  [[nodiscard]] Value result(int token) const;

  /// Number of operations still in flight.
  [[nodiscard]] int pending_ops() const;

  /// The node an operation runs on (the writer for writes, the reader
  /// for reads).
  [[nodiscard]] NodeId op_node(int token) const;

  /// Liveness of one operation under the network's current crash set:
  /// true iff the op is completed, or can still be driven to completion
  /// by some delivery schedule (its home node is alive and a majority of
  /// servers is alive — crashed servers never reply, so a pending op
  /// whose live-server count is below the quorum is stranded forever).
  /// Sweep drivers use this to classify quiescent runs as blocked.
  [[nodiscard]] bool op_can_complete(int token) const;

  /// The recorded high-level history (register id 0; times are the
  /// driver's logical clock: one tick per delivery or op begin).
  [[nodiscard]] const history::History& hl_history() const {
    return recorder_.history();
  }

  [[nodiscard]] int n() const noexcept { return n_; }
  /// Majority threshold (quorum size).
  [[nodiscard]] int quorum() const noexcept { return n_ / 2 + 1; }

 private:
  friend class AbdServer;
  class Server;

  struct ClientOp {
    enum class Kind { kWrite, kReadQuery, kReadWriteBack };
    Kind kind = Kind::kWrite;
    NodeId home = -1;
    history::OpHandle hl;
    int acks = 0;
    // Read state: best (ts, value) seen in the query phase.
    std::int64_t best_ts = -1;
    Value best_value = 0;
    bool completed = false;
    Value result = 0;
  };

  void on_server_message(NodeId at, const Message& m);
  history::Time tick() { return ++clock_; }

  Network& net_;
  int n_;
  NodeId writer_;
  std::vector<std::unique_ptr<Server>> servers_;
  history::Recorder recorder_;
  history::Time clock_ = 0;
  std::map<int, ClientOp> ops_;  ///< token -> op
  int next_token_ = 0;
  std::int64_t writer_ts_ = 0;
  bool write_pending_ = false;
  bool read_write_back_ = true;
};

}  // namespace rlt::mp
