#include "mp/f_star.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace rlt::mp {

using checker::LinProblem;
using checker::LinSolution;
using history::History;
using history::OpRecord;

std::vector<int> f_star(const History& h, std::vector<int> linearization) {
  if (!linearization.empty()) {
    const OpRecord& last = h.op(linearization.back());
    if (last.is_write() && last.pending()) linearization.pop_back();
  }
  return linearization;
}

SwmrWslCheck check_swmr_write_strong(const History& h) {
  SwmrWslCheck out;

  // Observation 65: writes must be pairwise non-concurrent.
  for (const OpRecord& a : h.ops()) {
    if (!a.is_write()) continue;
    for (const OpRecord& b : h.ops()) {
      if (!b.is_write() || a.id >= b.id) continue;
      RLT_CHECK_MSG(!a.concurrent_with(b),
                    "not a SWMR history: writes op"
                        << a.id << " and op" << b.id << " are concurrent");
    }
  }

  std::vector<int> previous_writes;
  for (const History& prefix : h.all_prefixes()) {
    LinProblem problem;
    problem.history = &prefix;
    const LinSolution sol = checker::solve(problem);
    if (!sol.ok) {
      out.error = "prefix is not linearizable (so the premise of Theorem 14 "
                  "fails):\n" +
                  prefix.to_string();
      return out;
    }
    const std::vector<int> pruned = f_star(prefix, sol.order);

    // Claim 67.3: f* output is still a legal linearization.
    const checker::SequentialCheck chk =
        checker::is_legal_sequential(prefix, pruned);
    if (!chk.ok) {
      out.error = "f*(G) is not a linearization: " + chk.error;
      return out;
    }

    // Claim 67.4: write sequences are prefix-monotone.  Writes are
    // identified across prefixes by invocation time (ids are stable:
    // prefixes keep id order).
    const std::vector<int> writes = checker::writes_of(prefix, pruned);
    if (!checker::is_prefix_of(previous_writes, writes)) {
      std::ostringstream os;
      os << "write sequence shrank or reordered across prefixes: [";
      for (const int w : previous_writes) os << ' ' << w;
      os << " ] then [";
      for (const int w : writes) os << ' ' << w;
      os << " ]";
      out.error = os.str();
      return out;
    }
    previous_writes = writes;
    ++out.prefixes_checked;
  }
  out.ok = true;
  return out;
}

}  // namespace rlt::mp
