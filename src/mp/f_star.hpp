// Theorem 14 / Lemma 67, executable: every linearizable SWMR register
// implementation is write strongly-linearizable.
//
// The construction: given any linearization function f, define f* by
// removing the last operation of f(H) when it is a write that is
// incomplete in H.  Lemma 67 shows f* is still a linearization function
// (Claim 67.3) and that its write sequences are prefix-monotone
// (Claim 67.4) — the key facts being that a SWMR register never has two
// concurrent writes (Observation 65), so the writes of any linearization
// are totally ordered by their invocation times (Observation 66), and a
// write appears in f*(G) iff it is completed in G or read by a completed
// read of G.
//
// `check_swmr_write_strong` runs the construction on a concrete history
// (e.g. recorded from ABD): it computes f on every event-prefix with the
// deterministic backtracking solver, applies the f* pruning, verifies
// each pruned output is still a legal linearization, and verifies the
// write sequences grow only by appending.
#pragma once

#include <string>

#include "checker/lin_solver.hpp"

namespace rlt::mp {

/// Result of the executable Theorem 14 check.
struct SwmrWslCheck {
  bool ok = false;
  std::string error;
  std::size_t prefixes_checked = 0;
};

/// Applies f* to a solver witness: drops the final operation if it is a
/// write that is pending in `h` (Lemma 67's construction).
[[nodiscard]] std::vector<int> f_star(const history::History& h,
                                      std::vector<int> linearization);

/// Verifies the f* construction on all event-prefixes of a single-writer
/// history `h` (throws if `h` has concurrent writes — it would not be a
/// SWMR history, Observation 65).  Writes should carry distinct values;
/// duplicate values can make the write-identification ambiguous and the
/// check conservative.
[[nodiscard]] SwmrWslCheck check_swmr_write_strong(const history::History& h);

}  // namespace rlt::mp
