// Umbrella header for the register-linearizability-and-termination
// library — a full C++20 reproduction of
//
//   Hadzilacos, Hu, Toueg: "On Register Linearizability and Termination",
//   PODC 2021 (arXiv:2102.13242).
//
// Public API map (see README.md for a guided tour):
//
//   rlt::sim       — deterministic coroutine simulator with a step-level
//                    strong adversary; register semantic models for
//                    atomic / linearizable / write strongly-linearizable
//                    registers (sim/scheduler.hpp, sim/regmodel.hpp).
//   rlt::history   — operation records, histories, prefixes, recorders.
//   rlt::checker   — linearizability solver and checker, write
//                    strong-linearizability tree checker (Definition 4),
//                    strong linearizability checker (Definition 3).
//   rlt::game      — Algorithm 1 (the termination game), the Theorem 6
//                    adversary, bounded variant, run harnesses.
//   rlt::registers — Algorithm 2 (vector-timestamp WSL MWMR register),
//                    Algorithm 3 (its on-line write linearizer),
//                    Algorithm 4 (Lamport-clock register), plus
//                    real-thread builds over seqlock SWMR registers.
//   rlt::mp        — asynchronous message-passing substrate, the ABD
//                    register, and the executable f* construction of
//                    Theorem 14.
//   rlt::consensus — randomized consensus (task T), drift shared coin,
//                    and the Corollary 9 composition A' = (game ; A).
#pragma once

#include "checker/lin_checker.hpp"
#include "checker/strong_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "consensus/composed.hpp"
#include "consensus/rand_consensus.hpp"
#include "consensus/shared_coin.hpp"
#include "game/game_runner.hpp"
#include "history/history.hpp"
#include "history/recorder.hpp"
#include "mp/abd.hpp"
#include "mp/f_star.hpp"
#include "mp/network.hpp"
#include "registers/alg2_register.hpp"
#include "registers/alg3_linearizer.hpp"
#include "registers/alg4_register.hpp"
#include "registers/seqlock.hpp"
#include "registers/thread_alg2.hpp"
#include "registers/thread_alg4.hpp"
#include "sim/adversary.hpp"
#include "sim/scheduler.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
