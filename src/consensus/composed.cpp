#include "consensus/composed.hpp"

#include "sim/adversary.hpp"
#include "util/assert.hpp"

namespace rlt::consensus {

namespace {

/// A' for one process: play the game; on a true return (not a round-cap
/// bailout), run consensus.
sim::Task composed_body(sim::Proc& self, game::GameState& gs,
                        ConsensusState& cs, int i, bool* started_flag) {
  if (i < 2) {
    co_await game::host_body(self, gs, i);
  } else {
    co_await game::player_body(self, gs, i);
  }
  if (!gs.procs[static_cast<std::size_t>(i)].returned) co_return;
  *started_flag = true;
  (void)co_await consensus_body(self, cs, i);
}

struct ComposedRun {
  sim::Scheduler sched;
  game::GameState game_state;
  ConsensusState consensus_state;
  bool consensus_started = false;

  ComposedRun(const game::GameConfig& gc, ConsensusConfig cc,
              sim::Semantics game_semantics, std::uint64_t seed)
      : sched(seed),
        game_state(gc),
        consensus_state(
            [&] {
              RLT_CHECK_MSG(cc.n == gc.n,
                            "game and consensus must share the process set");
              cc.first_reg = 3;  // game occupies registers 0..2
              return cc;
            }(),
            [&] {
              // Inputs derived deterministically from the seed.
              util::Rng rng(seed ^ 0xC0FFEE);
              std::vector<int> in(static_cast<std::size_t>(gc.n));
              for (int& b : in) b = rng.flip();
              return in;
            }()) {
    RLT_CHECK_MSG(gc.n >= 3, "the game needs n >= 3 processes");
    // Registers only: the composed bodies below ARE the game processes.
    // Calling setup_game here would add a second, competing set of game
    // processes on the same GameState — two "host 0"s would write
    // different coins into C and break Lemma 18 (a bug this runner
    // actually had; Corollary9Regression.ComposedRunsUseExactlyNProcesses
    // pins the schedules that exposed it).
    game::setup_game_registers(sched, game_semantics);
    setup_consensus(sched, consensus_state.cfg, sim::Semantics::kAtomic);
    for (int i = 0; i < gc.n; ++i) {
      sched.add_process(
          "composed-p" + std::to_string(i),
          [this, i](sim::Proc& p) {
            return composed_body(p, game_state, consensus_state, i,
                                 &consensus_started);
          });
    }
  }

  [[nodiscard]] ComposedResult collect(sim::RunOutcome outcome) const {
    ComposedResult r;
    r.outcome = outcome;
    r.game_terminated = game_state.all_returned();
    r.game_rounds = game_state.rounds_reached();
    r.consensus_started = consensus_started;
    r.all_decided = consensus_state.all_decided();
    r.agreement = consensus_state.agreement();
    r.validity = consensus_state.validity();
    return r;
  }
};

}  // namespace

ComposedResult run_composed_scripted(const game::GameConfig& game_cfg,
                                     const ConsensusConfig& consensus_cfg,
                                     sim::Semantics game_semantics,
                                     game::CommitStrategy strategy,
                                     std::uint64_t seed) {
  RLT_CHECK_MSG(game_semantics != sim::Semantics::kAtomic,
                "the scripted adversary needs interval semantics");
  ComposedRun run(game_cfg, consensus_cfg, game_semantics, seed);
  game::GameScriptAdversary adversary(game_cfg, strategy,
                                      seed ^ 0x5DEECE66DULL);
  const std::uint64_t budget =
      static_cast<std::uint64_t>(game_cfg.max_rounds + 2) *
          (static_cast<std::uint64_t>(game_cfg.n) * 24 + 64) +
      static_cast<std::uint64_t>(consensus_cfg.max_rounds + 2) *
          (static_cast<std::uint64_t>(game_cfg.n) * 600 + 2000);
  const sim::RunOutcome outcome = run.sched.run(adversary, budget);
  return run.collect(outcome);
}

ComposedStats run_composed_adversary(const game::GameConfig& game_cfg,
                                     const ConsensusConfig& consensus_cfg,
                                     sim::Semantics game_semantics,
                                     sim::Adversary& adversary,
                                     std::uint64_t max_actions,
                                     std::uint64_t seed) {
  ComposedRun run(game_cfg, consensus_cfg, game_semantics, seed);
  ComposedStats st;
  st.outcome = run.sched.run(adversary, max_actions);
  st.game_rounds = run.game_state.rounds_reached();
  st.game_capped = run.game_state.any_capped();
  st.consensus_started = run.consensus_started;
  st.game_returned.reserve(run.game_state.procs.size());
  for (const game::ProcStatus& p : run.game_state.procs) {
    st.game_returned.push_back(p.returned);
  }
  st.decisions = run.consensus_state.decisions;
  st.decided_round = run.consensus_state.decided_round;
  st.consensus_capped = run.consensus_state.hit_round_cap;
  st.agreement = run.consensus_state.agreement();
  st.validity = run.consensus_state.validity();
  st.actions = run.sched.actions_applied();
  st.coin_flips = run.sched.coin_log().size();
  return st;
}

ComposedResult run_composed_random(const game::GameConfig& game_cfg,
                                   const ConsensusConfig& consensus_cfg,
                                   sim::Semantics game_semantics,
                                   std::uint64_t seed) {
  ComposedRun run(game_cfg, consensus_cfg, game_semantics, seed);
  sim::RandomAdversary adversary(seed ^ 0x9E3779B97F4A7C15ULL);
  const std::uint64_t budget =
      static_cast<std::uint64_t>(game_cfg.max_rounds + 2) *
          (static_cast<std::uint64_t>(game_cfg.n) * 400 + 4000) +
      static_cast<std::uint64_t>(consensus_cfg.max_rounds + 2) *
          (static_cast<std::uint64_t>(game_cfg.n) * 2000 + 8000);
  const sim::RunOutcome outcome = run.sched.run(adversary, budget);
  return run.collect(outcome);
}

}  // namespace rlt::consensus
