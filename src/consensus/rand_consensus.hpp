// Randomized binary consensus for n processes from shared registers,
// terminating with probability 1 against a strong adversary — the
// "task T" algorithm A of Corollary 9.
//
// Structure (Aspnes–Herlihy-style racing rounds):
//   * Shared round markers M[v][r] (MWMR registers, one per value
//     v ∈ {0,1} and round r): M[v][r] = 1 once some process with
//     preference v reached round r.  Marks of each value form a
//     contiguous range of rounds, so "the other side's max round" can be
//     scanned incrementally.
//   * A process at round r with preference p marks M[p][r], CATCHES UP
//     with its own team (r := own-side max, restarting the iteration if
//     it was behind), then scans the opposite side's max round m:
//       - m > r  : adopt the leading value (p := 1-p, r := m);
//       - m == r : tied — flip a coin for next round's preference
//         (local coin, or the drift shared coin from shared_coin.hpp);
//       - m <= r-2: the other side can no longer catch up — decide p;
//       - m == r-1: slightly ahead, advance (r := r+1).
//     The catch-up step is essential for agreement: without it, a team
//     member lagging behind its own team can compare the other side
//     against its stale round, see a spurious "tie", coin-defect to the
//     trailing value and re-open a race its team already decided.
//
// Safety (agreement + validity) holds in EVERY run and is asserted by
// tests; termination holds with probability 1 because each tied round
// resolves unanimously with positive probability (2^-n for local coins,
// a constant for the shared coin) after which the race closes.
#pragma once

#include <vector>

#include "consensus/shared_coin.hpp"
#include "sim/scheduler.hpp"

namespace rlt::consensus {

/// Which coin the tie rule uses.
enum class CoinKind {
  kLocal,   ///< Independent local flips (slower convergence, simplest).
  kShared,  ///< One drift shared-coin instance per round.
};

/// Consensus parameters and register layout.
struct ConsensusConfig {
  int n = 3;
  int max_rounds = 64;      ///< Structural cap; runs report if they hit it.
  sim::RegId first_reg = 0; ///< Registers allocated from this id upward.
  CoinKind coin = CoinKind::kLocal;
  int coin_threshold_per_proc = 2;  ///< kShared only.

  /// Register ids used: markers occupy 2*(max_rounds+2) ids, then
  /// (kShared only) n ids per round.
  [[nodiscard]] sim::RegId marker_reg(int v, int r) const {
    return first_reg + v * (max_rounds + 2) + r;
  }
  [[nodiscard]] sim::RegId coin_reg_base(int r) const {
    return first_reg + 2 * (max_rounds + 2) + r * n;
  }
  [[nodiscard]] int register_count() const {
    return 2 * (max_rounds + 2) +
           (coin == CoinKind::kShared ? n * (max_rounds + 2) : 0);
  }
};

/// Live results of one consensus execution.
struct ConsensusState {
  ConsensusConfig cfg;
  std::vector<int> inputs;     ///< Per-process input bit.
  std::vector<int> decisions;  ///< Per-process decision; -1 undecided.
  std::vector<int> decided_round;  ///< Round of decision; 0 if none.
  int max_round_entered = 0;
  bool hit_round_cap = false;

  ConsensusState(const ConsensusConfig& config, std::vector<int> in)
      : cfg(config),
        inputs(std::move(in)),
        decisions(static_cast<std::size_t>(config.n), -1),
        decided_round(static_cast<std::size_t>(config.n), 0) {}

  [[nodiscard]] bool all_decided() const;
  /// All decided values equal (vacuously true if none decided).
  [[nodiscard]] bool agreement() const;
  /// Every decision equals some process's input.
  [[nodiscard]] bool validity() const;
};

/// Adds the consensus registers (markers + coin counters) to `sched`
/// with the given semantics (the paper's A assumes atomic base objects).
void setup_consensus(sim::Scheduler& sched, const ConsensusConfig& cfg,
                     sim::Semantics semantics);

/// The consensus protocol for process slot `i`; returns the decision
/// (or -1 if the round cap was hit).  Usable standalone or co_awaited
/// from a composed process body (Corollary 9).
sim::ValueTask<int> consensus_body(sim::Proc& self, ConsensusState& st,
                                   int i);

}  // namespace rlt::consensus
