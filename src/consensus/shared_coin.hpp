// A one-shot weak shared coin for n processes from shared registers,
// in the style of Aspnes & Herlihy's random-walk ("drift") coins.
//
// Each process repeatedly flips a fair local coin, adds the ±1 vote to
// its own single-writer counter register, and then reads all counters;
// once the total drift crosses ±(threshold_per_proc * n), it outputs the
// drift's sign.  Because a strong adversary can hide at most one
// in-flight vote per process (n votes total) while the threshold is a
// multiple of n, all processes output the same value with probability
// bounded away from zero (weak agreement); the random walk crosses a
// threshold with probability 1 (termination).
//
// This is the flavor of shared object that motivates the paper: the coin
// is correct with ATOMIC (or write strongly-linearizable) registers, and
// its guarantees are exactly the kind of probabilistic property that
// merely-linearizable registers can destroy [Golab, Higham, Woelfel].
#pragma once

#include "sim/scheduler.hpp"

namespace rlt::consensus {

/// Layout/parameters of one shared-coin instance.
struct SharedCoinConfig {
  int n = 3;                    ///< Participating processes.
  sim::RegId first_reg = 0;     ///< n counter registers from this id.
  int threshold_per_proc = 4;   ///< Drift threshold = this * n.
};

/// Adds the coin's n counter registers to `sched`.
void setup_shared_coin(sim::Scheduler& sched, const SharedCoinConfig& cfg,
                       sim::Semantics semantics);

/// Executes one shared-coin flip as process slot `i` (owner of counter
/// register first_reg + i).  Returns 0 or 1.
sim::ValueTask<int> shared_coin_flip(sim::Proc& self, SharedCoinConfig cfg,
                                     int i);

}  // namespace rlt::consensus
