#include "consensus/rand_consensus.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rlt::consensus {

bool ConsensusState::all_decided() const {
  return std::all_of(decisions.begin(), decisions.end(),
                     [](int d) { return d != -1; });
}

bool ConsensusState::agreement() const {
  int seen = -1;
  for (const int d : decisions) {
    if (d == -1) continue;
    if (seen == -1) seen = d;
    if (d != seen) return false;
  }
  return true;
}

bool ConsensusState::validity() const {
  for (const int d : decisions) {
    if (d == -1) continue;
    if (std::find(inputs.begin(), inputs.end(), d) == inputs.end()) {
      return false;
    }
  }
  return true;
}

void setup_consensus(sim::Scheduler& sched, const ConsensusConfig& cfg,
                     sim::Semantics semantics) {
  for (int v = 0; v < 2; ++v) {
    for (int r = 0; r <= cfg.max_rounds + 1; ++r) {
      sched.add_register(cfg.marker_reg(v, r), semantics, 0);
    }
  }
  if (cfg.coin == CoinKind::kShared) {
    for (int r = 0; r <= cfg.max_rounds + 1; ++r) {
      SharedCoinConfig coin;
      coin.n = cfg.n;
      coin.first_reg = cfg.coin_reg_base(r);
      coin.threshold_per_proc = cfg.coin_threshold_per_proc;
      setup_shared_coin(sched, coin, semantics);
    }
  }
}

sim::ValueTask<int> consensus_body(sim::Proc& self, ConsensusState& st,
                                   int i) {
  const ConsensusConfig& cfg = st.cfg;
  RLT_CHECK(i >= 0 && i < cfg.n);
  int p = st.inputs[static_cast<std::size_t>(i)];
  RLT_CHECK_MSG(p == 0 || p == 1, "inputs must be binary");
  int r = 1;
  // Highest round known marked, per value (marks are contiguous from 1).
  int known[2] = {0, 0};

  for (;;) {
    if (r > cfg.max_rounds) {
      st.hit_round_cap = true;
      co_return -1;
    }
    st.max_round_entered = std::max(st.max_round_entered, r);

    co_await self.write(cfg.marker_reg(p, r), 1);

    // Catch-up rule: before comparing against the other team, advance to
    // MY OWN team's max round.  Without it a lagging team member can
    // misread the race ("the other team is at my round — tie!") while its
    // own team already leads, coin-defect to the trailing value, and
    // single-handedly re-open a race a teammate has already decided —
    // an agreement violation (see ConsensusRegression.TieDefector).
    while (known[p] <= cfg.max_rounds) {
      const history::Value marked =
          co_await self.read(cfg.marker_reg(p, known[p] + 1));
      if (marked == 0) break;
      ++known[p];
    }
    if (known[p] > r) {
      r = known[p];
      continue;
    }

    // Scan the opposite side's max marked round (incremental: marks per
    // value are contiguous ranges of rounds starting at 1).
    while (known[1 - p] <= cfg.max_rounds) {
      const history::Value marked =
          co_await self.read(cfg.marker_reg(1 - p, known[1 - p] + 1));
      if (marked == 0) break;
      ++known[1 - p];
    }
    const int other = known[1 - p];

    if (other > r) {
      // The other value leads the race: adopt it and jump to its round.
      p = 1 - p;
      r = other;
      continue;
    }
    if (other == r) {
      // Tied round: next preference comes from the coin.
      if (cfg.coin == CoinKind::kLocal) {
        p = co_await self.flip_coin();
      } else {
        SharedCoinConfig coin;
        coin.n = cfg.n;
        coin.first_reg = cfg.coin_reg_base(r);
        coin.threshold_per_proc = cfg.coin_threshold_per_proc;
        p = co_await shared_coin_flip(self, coin, i);
      }
      r = r + 1;
      continue;
    }
    if (r - other >= 2) {
      // The other side is two rounds behind: it can no longer reach
      // round r-1 without first observing our marks and adopting p.
      st.decisions[static_cast<std::size_t>(i)] = p;
      st.decided_round[static_cast<std::size_t>(i)] = r;
      co_return p;
    }
    r = r + 1;  // Ahead by exactly one: keep racing.
  }
}

}  // namespace rlt::consensus
