#include "consensus/shared_coin.hpp"

#include "util/assert.hpp"

namespace rlt::consensus {

void setup_shared_coin(sim::Scheduler& sched, const SharedCoinConfig& cfg,
                       sim::Semantics semantics) {
  for (int i = 0; i < cfg.n; ++i) {
    sched.add_register(cfg.first_reg + i, semantics, 0);
  }
}

sim::ValueTask<int> shared_coin_flip(sim::Proc& self, SharedCoinConfig cfg,
                                     int i) {
  RLT_CHECK(i >= 0 && i < cfg.n);
  const std::int64_t threshold =
      static_cast<std::int64_t>(cfg.threshold_per_proc) * cfg.n;
  std::int64_t my_total = 0;
  for (;;) {
    const int flip = co_await self.flip_coin();
    my_total += flip == 1 ? 1 : -1;
    co_await self.write(cfg.first_reg + i, my_total);
    std::int64_t drift = 0;
    for (int k = 0; k < cfg.n; ++k) {
      drift += co_await self.read(cfg.first_reg + k);
    }
    if (drift >= threshold) co_return 1;
    if (drift <= -threshold) co_return 0;
  }
}

}  // namespace rlt::consensus
