// Corollary 9: from any randomized algorithm A solving a task T (here:
// randomized binary consensus) that terminates with probability 1
// against a strong adversary, derive A' = (Algorithm 1 ; A): every
// process first plays the game, and runs A only after returning from it.
//
//   * If the game's three registers are only linearizable, the Theorem 6
//     adversary keeps every process in the game forever — A' never
//     terminates (and consensus never even starts).
//   * If they are write strongly-linearizable (or atomic), the game
//     terminates with probability 1 and A' then solves T.
//
// The consensus registers themselves stay atomic throughout — Corollary 9
// only swaps the semantics of the game's register set R.
#pragma once

#include "consensus/rand_consensus.hpp"
#include "game/game_runner.hpp"

namespace rlt::consensus {

/// Outcome of one A' execution.
struct ComposedResult {
  bool game_terminated = false;   ///< Every process returned from the game.
  int game_rounds = 0;            ///< Rounds the game lasted.
  bool consensus_started = false; ///< Some process began A.
  bool all_decided = false;
  bool agreement = true;
  bool validity = true;
  sim::RunOutcome outcome = sim::RunOutcome::kStopped;
};

/// Runs A' with the game registers under `game_semantics`, driven by the
/// scripted strong adversary (kLinearizable or kWriteStrong), with the
/// consensus phase (atomic registers) scheduled deterministically after
/// the game dies.  Consensus inputs are derived from `seed`.
[[nodiscard]] ComposedResult run_composed_scripted(
    const game::GameConfig& game_cfg, const ConsensusConfig& consensus_cfg,
    sim::Semantics game_semantics, game::CommitStrategy strategy,
    std::uint64_t seed);

/// Runs A' end-to-end under the uniformly random strong adversary (any
/// semantics for the game registers, including atomic).
[[nodiscard]] ComposedResult run_composed_random(
    const game::GameConfig& game_cfg, const ConsensusConfig& consensus_cfg,
    sim::Semantics game_semantics, std::uint64_t seed);

/// Full end state of one A' execution — per-process game and consensus
/// status plus scheduler counters.  The termination lab needs this finer
/// grain than ComposedResult: under a stalling adversary "all decided"
/// is the wrong question; "every live process decided" is the right one,
/// and that needs the per-process vectors.
struct ComposedStats {
  sim::RunOutcome outcome = sim::RunOutcome::kStopped;
  std::vector<bool> game_returned;  ///< Per process: returned from the game.
  int game_rounds = 0;              ///< Highest game round entered.
  bool game_capped = false;         ///< Some process hit the game round cap.
  bool consensus_started = false;
  std::vector<int> decisions;       ///< Per process; -1 = undecided.
  std::vector<int> decided_round;   ///< Per process; 0 = none.
  bool consensus_capped = false;    ///< Some process hit the consensus cap.
  bool agreement = true;            ///< Over decided processes.
  bool validity = true;             ///< Over decided processes.
  std::uint64_t actions = 0;        ///< Scheduler actions consumed.
  std::uint64_t coin_flips = 0;     ///< Scheduler coin flips (game + A).
};

/// Runs A' under a caller-supplied adversary with an explicit action
/// budget.  Consensus inputs are derived from `seed` exactly as in the
/// helpers above (identical seeds give identical inputs).
[[nodiscard]] ComposedStats run_composed_adversary(
    const game::GameConfig& game_cfg, const ConsensusConfig& consensus_cfg,
    sim::Semantics game_semantics, sim::Adversary& adversary,
    std::uint64_t max_actions, std::uint64_t seed);

}  // namespace rlt::consensus
