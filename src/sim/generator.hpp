// Minimal coroutine generator, used to express scripted adversaries as
// linear code (`co_yield action;`) instead of hand-rolled state machines.
// The Theorem 6 adversary mirrors the paper's Figure 1/2 schedule line by
// line this way.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace rlt::sim {

template <class T>
class [[nodiscard]] Generator {
 public:
  struct promise_type {
    std::optional<T> current;
    std::exception_ptr exception;

    Generator get_return_object() {
      return Generator(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    std::suspend_always yield_value(T value) {
      current = std::move(value);
      return {};
    }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Generator() = default;
  explicit Generator(Handle h) noexcept : handle_(h) {}
  Generator(const Generator&) = delete;
  Generator& operator=(const Generator&) = delete;
  Generator(Generator&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  Generator& operator=(Generator&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Generator() { destroy(); }

  /// Advances to the next co_yield.  Returns false when the generator is
  /// exhausted.  Rethrows exceptions from the generator body.
  bool advance() {
    if (!handle_ || handle_.done()) return false;
    handle_.promise().current.reset();
    handle_.resume();
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
    return handle_.promise().current.has_value();
  }

  /// The value produced by the last successful advance().
  [[nodiscard]] T& value() { return *handle_.promise().current; }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

}  // namespace rlt::sim
