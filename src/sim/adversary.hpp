// Generic adversaries: random strong adversary and round-robin scheduler.
//
// The paper-specific adversaries (Theorem 6's scripted schedule and the
// best-effort adaptive adversary used to measure termination under write
// strong-linearizability) live in src/game/.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/scheduler.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rlt::sim {

/// A strong adversary choosing uniformly at random among all enabled
/// actions.  Random scheduling is a fair-in-expectation stress schedule:
/// every pending response eventually fires with probability 1.
class RandomAdversary final : public Adversary {
 public:
  explicit RandomAdversary(std::uint64_t seed) : rng_(seed) {}

  std::optional<Action> choose(Scheduler& sched) override {
    std::vector<Action> actions = sched.enabled_actions();
    if (actions.empty()) return std::nullopt;
    return actions[rng_.uniform(actions.size())];
  }

 private:
  util::Rng rng_;
};

/// Replays a fixed sequence of process steps (atomic-register runs only:
/// no pending operations exist, so steps are the only actions).  Used to
/// construct exact schedules such as Figure 4's histories G, H1, H2.
class FixedStepAdversary final : public Adversary {
 public:
  explicit FixedStepAdversary(std::vector<ProcessId> steps)
      : steps_(std::move(steps)) {}

  std::optional<Action> choose(Scheduler& sched) override {
    RLT_CHECK_MSG(sched.pending_ops().empty(),
                  "FixedStepAdversary requires atomic base registers");
    if (next_ >= steps_.size()) return std::nullopt;
    return Action::step(steps_[next_++]);
  }

 private:
  std::vector<ProcessId> steps_;
  std::size_t next_ = 0;
};

/// Picks a seeded strict minority of victims: 1..⌊(n-1)/2⌋ distinct
/// process ids (ascending), a pure function of (n, mix).  Empty when
/// n <= 2 (no strict minority exists).  Shared by the sweep engine's
/// stall-fault axis and the termination lab's stalling adversary so both
/// subsystems freeze the same processes for the same seeds.
[[nodiscard]] inline std::vector<ProcessId> pick_strict_minority(
    int n, std::uint64_t mix) {
  std::vector<ProcessId> out;
  const int max_victims = (n - 1) / 2;
  if (max_victims <= 0) return out;
  util::Rng rng(mix);
  const int count =
      1 + static_cast<int>(rng.uniform(static_cast<std::uint64_t>(max_victims)));
  std::vector<ProcessId> ids(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  // Partial Fisher–Yates: the first `count` slots are the victims.
  for (int i = 0; i < count; ++i) {
    const std::size_t j =
        static_cast<std::size_t>(i) +
        static_cast<std::size_t>(rng.uniform(static_cast<std::uint64_t>(n - i)));
    std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
    out.push_back(ids[static_cast<std::size_t>(i)]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// An adversary that never schedules a chosen set of processes — they
/// stall forever mid-operation (steps AND responses to their pending ops
/// are withheld).  The remaining actions are scheduled by the selected
/// policy; returns std::nullopt (stopping the run) once only stalled
/// processes have enabled actions.  Wait-freedom probe: everyone else
/// must still finish.  Promoted from the ablation tests to back the
/// sweep engine's `--faults stall` axis and the termination lab.
class StallingAdversary final : public Adversary {
 public:
  enum class Policy {
    kRandom,     ///< Uniform among the surviving actions (seeded).
    kRoundRobin, ///< RoundRobinAdversary's rule over live processes.
  };

  StallingAdversary(std::vector<ProcessId> stalled, std::uint64_t seed,
                    Policy policy = Policy::kRandom)
      : stalled_(std::move(stalled)), policy_(policy), rng_(seed) {}

  std::optional<Action> choose(Scheduler& sched) override {
    if (policy_ == Policy::kRoundRobin) return choose_round_robin(sched);
    std::vector<Action> actions;
    for (Action& a : sched.enabled_actions()) {
      if (!is_stalled(a.process)) actions.push_back(std::move(a));
    }
    if (actions.empty()) return std::nullopt;
    return actions[rng_.uniform(actions.size())];
  }

 private:
  [[nodiscard]] bool is_stalled(ProcessId p) const {
    return std::find(stalled_.begin(), stalled_.end(), p) != stalled_.end();
  }

  std::optional<Action> choose_round_robin(Scheduler& sched) {
    // Respond the oldest live-owned pending op first, first choice.
    for (const PendingOpInfo& info : sched.pending_ops()) {
      if (is_stalled(info.process)) continue;
      auto choices = sched.choices_for(info.op_id);
      RLT_CHECK_MSG(!choices.empty(), "pending op with no choices");
      return Action::respond(info.process, info.op_id,
                             std::move(choices.front()));
    }
    const int n = sched.process_count();
    for (int i = 0; i < n; ++i) {
      const ProcessId p = static_cast<ProcessId>((next_ + i) % n);
      if (is_stalled(p)) continue;
      if (!sched.process_done(p) && !sched.process_blocked(p)) {
        next_ = (p + 1) % n;
        return Action::step(p);
      }
    }
    return std::nullopt;
  }

  std::vector<ProcessId> stalled_;
  Policy policy_;
  util::Rng rng_;
  int next_ = 0;
};

/// Deterministic round-robin over processes; pending operations are
/// responded as soon as they appear (first enumerated choice).  With
/// atomic registers this is a plain round-robin scheduler.
class RoundRobinAdversary final : public Adversary {
 public:
  std::optional<Action> choose(Scheduler& sched) override {
    // Respond the oldest pending op first, taking its first choice.
    const auto pending = sched.pending_ops();
    if (!pending.empty()) {
      const PendingOpInfo& info = pending.front();
      auto choices = sched.choices_for(info.op_id);
      RLT_CHECK_MSG(!choices.empty(), "pending op with no choices");
      return Action::respond(info.process, info.op_id,
                             std::move(choices.front()));
    }
    const int n = sched.process_count();
    for (int i = 0; i < n; ++i) {
      const ProcessId p = static_cast<ProcessId>((next_ + i) % n);
      if (!sched.process_done(p) && !sched.process_blocked(p)) {
        next_ = (p + 1) % n;
        return Action::step(p);
      }
    }
    return std::nullopt;
  }

 private:
  int next_ = 0;
};

}  // namespace rlt::sim
