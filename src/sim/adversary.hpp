// Generic adversaries: random strong adversary and round-robin scheduler.
//
// The paper-specific adversaries (Theorem 6's scripted schedule and the
// best-effort adaptive adversary used to measure termination under write
// strong-linearizability) live in src/game/.
#pragma once

#include "sim/scheduler.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rlt::sim {

/// A strong adversary choosing uniformly at random among all enabled
/// actions.  Random scheduling is a fair-in-expectation stress schedule:
/// every pending response eventually fires with probability 1.
class RandomAdversary final : public Adversary {
 public:
  explicit RandomAdversary(std::uint64_t seed) : rng_(seed) {}

  std::optional<Action> choose(Scheduler& sched) override {
    std::vector<Action> actions = sched.enabled_actions();
    if (actions.empty()) return std::nullopt;
    return actions[rng_.uniform(actions.size())];
  }

 private:
  util::Rng rng_;
};

/// Replays a fixed sequence of process steps (atomic-register runs only:
/// no pending operations exist, so steps are the only actions).  Used to
/// construct exact schedules such as Figure 4's histories G, H1, H2.
class FixedStepAdversary final : public Adversary {
 public:
  explicit FixedStepAdversary(std::vector<ProcessId> steps)
      : steps_(std::move(steps)) {}

  std::optional<Action> choose(Scheduler& sched) override {
    RLT_CHECK_MSG(sched.pending_ops().empty(),
                  "FixedStepAdversary requires atomic base registers");
    if (next_ >= steps_.size()) return std::nullopt;
    return Action::step(steps_[next_++]);
  }

 private:
  std::vector<ProcessId> steps_;
  std::size_t next_ = 0;
};

/// Deterministic round-robin over processes; pending operations are
/// responded as soon as they appear (first enumerated choice).  With
/// atomic registers this is a plain round-robin scheduler.
class RoundRobinAdversary final : public Adversary {
 public:
  std::optional<Action> choose(Scheduler& sched) override {
    // Respond the oldest pending op first, taking its first choice.
    const auto pending = sched.pending_ops();
    if (!pending.empty()) {
      const PendingOpInfo& info = pending.front();
      auto choices = sched.choices_for(info.op_id);
      RLT_CHECK_MSG(!choices.empty(), "pending op with no choices");
      return Action::respond(info.process, info.op_id,
                             std::move(choices.front()));
    }
    const int n = sched.process_count();
    for (int i = 0; i < n; ++i) {
      const ProcessId p = static_cast<ProcessId>((next_ + i) % n);
      if (!sched.process_done(p) && !sched.process_blocked(p)) {
        next_ = (p + 1) % n;
        return Action::step(p);
      }
    }
    return std::nullopt;
  }

 private:
  int next_ = 0;
};

}  // namespace rlt::sim
