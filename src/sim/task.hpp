// Coroutine task types for simulated processes.
//
// A simulated process is a C++20 coroutine that `co_await`s one awaitable
// per primitive step (shared-register operation, coin flip, or plain
// yield).  The scheduler resumes the coroutine one step at a time; the
// adversary chooses which process advances, giving step-level control of
// the interleaving — the standard asynchronous shared-memory model.
//
// Tasks nest: an implemented-register operation (Algorithm 2's write is a
// loop of n base-register reads plus one write) is a `ValueTask<T>`
// co_awaited by the process body.  Suspending on a primitive awaitable
// anywhere in the stack suspends the whole process; the scheduler resumes
// the innermost ("leaf") coroutine, tracked by the owning Proc.  Subtask
// completion transfers control back to the parent symmetrically, all
// within one scheduler step — returning from a sub-operation is not a
// shared-memory step.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace rlt::sim {

namespace task_detail {

/// Resumes the continuation (if any) when a task finishes.
template <class Promise>
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    const auto continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

template <class T>
struct PromiseStorage {
  std::optional<T> value;
  void return_value(T v) { value = std::move(v); }
};

template <>
struct PromiseStorage<void> {
  void return_void() noexcept {}
};

}  // namespace task_detail

/// A (possibly value-returning) coroutine task.  Eagerly suspended; the
/// first resume comes from the scheduler (root tasks) or from being
/// co_awaited (subtasks).
template <class T>
class [[nodiscard]] BasicTask {
 public:
  struct promise_type : task_detail::PromiseStorage<T> {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    BasicTask get_return_object() {
      return BasicTask(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    task_detail::FinalAwaiter<promise_type> final_suspend() noexcept {
      return {};
    }
    void unhandled_exception() { exception = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  BasicTask() = default;
  explicit BasicTask(Handle h) noexcept : handle_(h) {}
  BasicTask(const BasicTask&) = delete;
  BasicTask& operator=(const BasicTask&) = delete;
  BasicTask(BasicTask&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  BasicTask& operator=(BasicTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~BasicTask() { destroy(); }

  [[nodiscard]] bool done() const noexcept {
    return !handle_ || handle_.done();
  }

  [[nodiscard]] Handle handle() const noexcept { return handle_; }

  /// Rethrows an exception captured by the (finished) coroutine, if any.
  void check_exception() const {
    if (handle_ && handle_.done() && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  /// Awaiting a task starts it (symmetric transfer) and resumes the
  /// awaiter when it finishes, yielding its return value.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle inner;
      bool await_ready() const noexcept { return !inner || inner.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> outer) noexcept {
        inner.promise().continuation = outer;
        return inner;
      }
      T await_resume() {
        if (inner.promise().exception) {
          std::rethrow_exception(inner.promise().exception);
        }
        if constexpr (!std::is_void_v<T>) {
          return std::move(*inner.promise().value);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

/// Root process task.
using Task = BasicTask<void>;

/// Value-returning subtask (implemented-register operations).
template <class T>
using ValueTask = BasicTask<T>;

}  // namespace rlt::sim
