// The simulation scheduler: asynchronous processes + modeled registers +
// a strong adversary choosing every step.
//
// Model (Section 2 of the paper): processes take steps asynchronously; a
// *strong adversary* observes everything that has happened — process
// states, register contents, and the outcomes of past coin flips — and
// decides which enabled action happens next.  Enabled actions are:
//
//   * kStep(p): resume process p's coroutine to its next suspension point
//     (invoking a register operation, flipping a coin, or yielding);
//   * kRespond(op, choice): complete a pending register operation with
//     one of the response choices its register model offers.
//
// With `AtomicModel` registers, operations complete within the invoking
// step, so no kRespond actions exist — operations are instantaneous.
// With `LinearizableModel` / `WslModel` registers, invocation and
// response are separate actions, so operations overlap and the adversary
// controls (within each model's rules) how they linearize.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "history/recorder.hpp"
#include "sim/regmodel.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace rlt::sim {

class Scheduler;

namespace detail {
struct OpAwait;
struct CoinAwait;
struct YieldAwait;
}  // namespace detail

/// Per-process facade handed to coroutine bodies; provides awaitables for
/// the primitive steps.
class Proc {
 public:
  [[nodiscard]] ProcessId id() const noexcept { return id_; }
  [[nodiscard]] Scheduler& scheduler() const noexcept { return *sched_; }

  /// Awaitable register write.  The value co_awaited is the written value.
  [[nodiscard]] auto write(RegId reg, Value v);
  /// Awaitable register read; co_await yields the value read.
  [[nodiscard]] auto read(RegId reg);
  /// Awaitable fair coin flip (0 or 1), drawn from the scheduler's RNG.
  /// The adversary observes the outcome after the step (strong adversary).
  [[nodiscard]] auto flip_coin();
  /// Awaitable pure local step (scheduling point with no effect).
  [[nodiscard]] auto yield();

  /// Invocation time of this process's most recent register operation.
  /// With atomic registers this is the operation's linearization point —
  /// the instant its effect became visible to other processes (the
  /// co_await only resumes at the process's NEXT scheduled step, which
  /// can be much later).  Algorithm 2's instrumentation needs it.
  [[nodiscard]] history::Time last_op_invoke() const noexcept {
    return last_invoke_;
  }

 private:
  friend class Scheduler;
  friend struct detail::OpAwait;
  friend struct detail::CoinAwait;
  friend struct detail::YieldAwait;

  enum class RequestKind { kNone, kOp, kCoin, kYield };
  struct Request {
    RequestKind kind = RequestKind::kNone;
    RegId reg = -1;
    OpKind op_kind = OpKind::kRead;
    Value value = 0;
  };

  Scheduler* sched_ = nullptr;
  ProcessId id_ = -1;
  std::string name_;
  Task task_;
  std::coroutine_handle<> leaf_;  ///< Innermost suspended coroutine.
  Request request_;
  Value result_ = 0;
  Time last_invoke_ = 0;
  bool blocked = false;
  bool done = false;
};

/// Strategy interface: the adversary.  `choose` returns the next action
/// or std::nullopt to stop the run.  Implementations may use
/// `Scheduler::enabled_actions()` (exhaustive) or compose actions
/// directly from `Scheduler` introspection plus `choices_for()`.
class Adversary {
 public:
  virtual ~Adversary() = default;
  virtual std::optional<Action> choose(Scheduler& sched) = 0;
};

/// Why a run ended.
enum class RunOutcome {
  kAllDone,     ///< Every process's coroutine returned.
  kStopped,     ///< The adversary chose to stop.
  kActionCap,   ///< The action budget was exhausted.
  kDeadlock,    ///< No enabled actions (cannot happen with these models).
};

[[nodiscard]] const char* to_string(RunOutcome o) noexcept;

/// The simulation engine.
class Scheduler {
 public:
  explicit Scheduler(std::uint64_t seed = 0) : rng_(seed) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers a register with the given semantics and initial value.
  void add_register(RegId reg, Semantics semantics, Value initial);

  /// Registers a register with a custom model (tests).
  void add_register(RegId reg, std::unique_ptr<RegisterModel> model,
                    Value initial);

  /// Spawns a process.  `body` is invoked immediately to create the
  /// coroutine (which suspends before executing any user code).
  ///
  /// IMPORTANT (CppCoreGuidelines CP.51): `body` must NOT itself be a
  /// capturing-lambda coroutine — lambda captures live in the lambda
  /// object, which dies after this call, leaving the suspended coroutine
  /// with dangling captures.  Pass a plain lambda that *calls* a free (or
  /// static member) coroutine function, whose parameters are safely
  /// copied into the coroutine frame:
  ///     sched.add_process("w", [&reg](Proc& p) { return writer(p, reg); });
  ProcessId add_process(std::string name,
                        const std::function<Task(Proc&)>& body);

  /// --- Introspection (for adversaries, tests, benches) ---
  [[nodiscard]] int process_count() const noexcept {
    return static_cast<int>(procs_.size());
  }
  [[nodiscard]] bool process_done(ProcessId p) const;
  [[nodiscard]] bool process_blocked(ProcessId p) const;
  [[nodiscard]] const std::string& process_name(ProcessId p) const;
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] Time now() const noexcept { return clock_; }
  [[nodiscard]] const history::History& global_history() const noexcept {
    return recorder_.history();
  }
  [[nodiscard]] const std::vector<CoinRecord>& coin_log() const noexcept {
    return coins_;
  }
  [[nodiscard]] RegisterModel& model(RegId reg);
  [[nodiscard]] std::vector<PendingOpInfo> pending_ops() const;

  /// Response choices for a pending op (targeted query for scripted
  /// adversaries; cheaper than enumerating everything).
  ///
  /// Menus are cached between register-state changes: a model's choice
  /// menu must be a function of its own state (window, commitments,
  /// pre-window values) — the `now` passed to `response_choices` only
  /// names the hypothetical response time, which is later than every
  /// recorded event either way, so it cannot change the menu.  The cache
  /// is invalidated whenever the register's model mutates (invoke,
  /// respond, collapse).
  [[nodiscard]] std::vector<ResponseChoice> choices_for(int op_id);

  /// All enabled actions (steps of runnable processes + every response
  /// choice of every pending op).
  [[nodiscard]] std::vector<Action> enabled_actions();

  /// Applies one action.  Must be an action the current state enables;
  /// response choices must come from `choices_for`/`enabled_actions`.
  void apply(const Action& action);

  /// Runs until all processes finish, the adversary stops, or the action
  /// budget is exhausted.
  RunOutcome run(Adversary& adversary, std::uint64_t max_actions = 1'000'000);

  /// The scheduler's RNG (coin flips; adversaries may fork it).
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

  /// Advances the logical clock and returns the new time.  Used by
  /// implemented-register wrappers (Algorithms 2 and 4, ABD) to timestamp
  /// high-level invocations/responses distinctly from base-object events.
  Time advance_clock() noexcept { return tick(); }

  /// Total actions applied so far.
  [[nodiscard]] std::uint64_t actions_applied() const noexcept {
    return actions_;
  }

 private:
  friend class Proc;

  Time tick() noexcept { return ++clock_; }
  void step_process(ProcessId p);
  void respond_op(int op_id, const ResponseChoice& choice);
  /// Drops cached choice menus of every pending op on `reg`.
  void invalidate_choices(RegId reg);

  util::Rng rng_;
  Time clock_ = 0;
  std::uint64_t actions_ = 0;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::map<RegId, std::unique_ptr<RegisterModel>> models_;
  std::map<int, ProcessId> op_owner_;  ///< pending op -> process
  std::map<int, RegId> op_reg_;        ///< pending op -> register
  /// Cached response-choice menus per pending op (see choices_for).
  std::map<int, std::vector<ResponseChoice>> choice_cache_;
  history::Recorder recorder_;
  std::vector<CoinRecord> coins_;
};

// ---- Awaitable implementations (must see Scheduler's definition) ----

namespace detail {

struct OpAwait {
  Proc* proc;
  RegId reg;
  OpKind kind;
  Value value;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    proc->leaf_ = h;
    proc->request_ = {Proc::RequestKind::kOp, reg, kind, value};
  }
  [[nodiscard]] Value await_resume() const noexcept { return proc->result_; }
};

struct CoinAwait {
  Proc* proc;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    proc->leaf_ = h;
    proc->request_ = {Proc::RequestKind::kCoin, -1, OpKind::kRead, 0};
  }
  [[nodiscard]] int await_resume() const noexcept {
    return static_cast<int>(proc->result_);
  }
};

struct YieldAwait {
  Proc* proc;
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    proc->leaf_ = h;
    proc->request_ = {Proc::RequestKind::kYield, -1, OpKind::kRead, 0};
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

inline auto Proc::write(RegId reg, Value v) {
  return detail::OpAwait{this, reg, OpKind::kWrite, v};
}
inline auto Proc::read(RegId reg) {
  return detail::OpAwait{this, reg, OpKind::kRead, 0};
}
inline auto Proc::flip_coin() { return detail::CoinAwait{this}; }
inline auto Proc::yield() { return detail::YieldAwait{this}; }

}  // namespace rlt::sim
