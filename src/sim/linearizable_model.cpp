// "Only linearizable" register semantics (see regmodel.hpp).
//
// The adversary's freedom: a pending operation responds when the
// adversary says so, and a read may return ANY value for which a legal
// linearization of the register's (windowed) history still exists.  In
// particular the relative order of concurrent writes stays undecided
// until some read forces it — the "off-line" linearization freedom that
// Theorem 6's adversary exploits after seeing the coin flip.
#include <algorithm>
#include <set>
#include <sstream>

#include "sim/regmodel.hpp"
#include "util/assert.hpp"

namespace rlt::sim {

namespace {

class LinearizableModel final : public WindowedModel {
 public:
  std::vector<ResponseChoice> response_choices(int op_id, Time now) override {
    const int wid = window_id_of(op_id);
    const history::OpRecord& op = window().op(wid);
    std::vector<ResponseChoice> choices;
    if (op.is_write()) {
      // Completing a write never constrains the past: every linearization
      // of the current window remains legal when the write's interval
      // closes now (the new response time only affects operations invoked
      // later).  One choice, no decision content.
      ResponseChoice c;
      c.value = op.value;
      c.label = "complete-write";
      choices.push_back(std::move(c));
      return choices;
    }
    // Reads: any value with a feasible linearization.
    std::set<Value> candidates(initial_values().begin(),
                               initial_values().end());
    for (const history::OpRecord& w : window().ops()) {
      if (w.is_write()) candidates.insert(w.value);
    }
    for (const Value v : candidates) {
      if (feasible_with_completion(wid, v, now,
                                   checker::WriteOrderMode::kFree, {})) {
        ResponseChoice c;
        c.value = v;
        c.label = "read->" + std::to_string(v);
        choices.push_back(std::move(c));
      }
    }
    RLT_CHECK_MSG(!choices.empty(),
                  "linearizable model: read has no feasible value — bug");
    return choices;
  }

  [[nodiscard]] std::string describe() const override {
    std::ostringstream os;
    os << "linearizable{window=" << window().size() << " ops, pre-window in {";
    for (std::size_t i = 0; i < initial_values().size(); ++i) {
      os << (i == 0 ? "" : ",") << initial_values()[i];
    }
    os << "}}";
    return os.str();
  }

 protected:
  void apply_choice(int /*window_id*/,
                    const ResponseChoice& choice) override {
    RLT_CHECK_MSG(choice.commit_extension.empty(),
                  "linearizable registers have no committed write order");
  }

  void collapse_hook() override {
    const std::set<Value> finals =
        window_final_values(checker::WriteOrderMode::kFree, {});
    RLT_CHECK_MSG(!finals.empty(),
                  "quiescent window has no feasible final value — bug");
    initial_values_.assign(finals.begin(), finals.end());
  }
};

}  // namespace

std::unique_ptr<RegisterModel> make_linearizable_model(Value initial) {
  auto model = std::make_unique<LinearizableModel>();
  model->set_initial(initial);
  return model;
}

}  // namespace rlt::sim
