// Intentionally almost empty: the generic adversaries are header-only.
// This translation unit exists so the build exposes a stable object for
// the component and to anchor the vtable-less classes' documentation.
#include "sim/adversary.hpp"

namespace rlt::sim {}  // namespace rlt::sim
