#include "sim/scheduler.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rlt::sim {

const char* to_string(RunOutcome o) noexcept {
  switch (o) {
    case RunOutcome::kAllDone:
      return "all-done";
    case RunOutcome::kStopped:
      return "adversary-stopped";
    case RunOutcome::kActionCap:
      return "action-cap";
    case RunOutcome::kDeadlock:
      return "deadlock";
  }
  return "?";
}

void Scheduler::add_register(RegId reg, Semantics semantics, Value initial) {
  add_register(reg, make_model(semantics, initial), initial);
}

void Scheduler::add_register(RegId reg, std::unique_ptr<RegisterModel> model,
                             Value initial) {
  RLT_CHECK_MSG(models_.find(reg) == models_.end(),
                "register R" << reg << " added twice");
  recorder_.set_initial(reg, initial);
  models_[reg] = std::move(model);
}

ProcessId Scheduler::add_process(std::string name,
                                 const std::function<Task(Proc&)>& body) {
  auto proc = std::make_unique<Proc>();
  proc->sched_ = this;
  proc->id_ = static_cast<ProcessId>(procs_.size());
  proc->name_ = std::move(name);
  Proc& ref = *proc;
  procs_.push_back(std::move(proc));
  ref.task_ = body(ref);
  ref.leaf_ = ref.task_.handle();
  return ref.id_;
}

bool Scheduler::process_done(ProcessId p) const {
  return procs_.at(static_cast<std::size_t>(p))->done;
}

bool Scheduler::process_blocked(ProcessId p) const {
  return procs_.at(static_cast<std::size_t>(p))->blocked;
}

const std::string& Scheduler::process_name(ProcessId p) const {
  return procs_.at(static_cast<std::size_t>(p))->name_;
}

bool Scheduler::all_done() const {
  return std::all_of(procs_.begin(), procs_.end(),
                     [](const auto& p) { return p->done; });
}

RegisterModel& Scheduler::model(RegId reg) {
  const auto it = models_.find(reg);
  RLT_CHECK_MSG(it != models_.end(), "unknown register R" << reg);
  return *it->second;
}

std::vector<PendingOpInfo> Scheduler::pending_ops() const {
  std::vector<PendingOpInfo> out;
  for (const auto& [reg, model] : models_) {
    for (const PendingOpInfo& info : model->pending()) {
      out.push_back(info);
      out.back().reg = reg;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PendingOpInfo& a, const PendingOpInfo& b) {
              return a.op_id < b.op_id;
            });
  return out;
}

std::vector<ResponseChoice> Scheduler::choices_for(int op_id) {
  const auto it = op_reg_.find(op_id);
  RLT_CHECK_MSG(it != op_reg_.end(), "op " << op_id << " is not pending");
  auto cached = choice_cache_.find(op_id);
  if (cached == choice_cache_.end()) {
    cached = choice_cache_
                 .emplace(op_id,
                          model(it->second).response_choices(op_id, clock_ + 1))
                 .first;
  }
  return cached->second;
}

void Scheduler::invalidate_choices(RegId reg) {
  for (auto it = choice_cache_.begin(); it != choice_cache_.end();) {
    if (op_reg_.at(it->first) == reg) {
      it = choice_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<Action> Scheduler::enabled_actions() {
  std::vector<Action> actions;
  for (const auto& proc : procs_) {
    if (!proc->done && !proc->blocked) {
      actions.push_back(Action::step(proc->id_));
    }
  }
  for (const PendingOpInfo& info : pending_ops()) {
    for (ResponseChoice& choice : choices_for(info.op_id)) {
      actions.push_back(
          Action::respond(info.process, info.op_id, std::move(choice)));
    }
  }
  return actions;
}

void Scheduler::step_process(ProcessId p) {
  Proc& proc = *procs_.at(static_cast<std::size_t>(p));
  RLT_CHECK_MSG(!proc.done, "stepping finished process p" << p);
  RLT_CHECK_MSG(!proc.blocked, "stepping blocked process p" << p);

  proc.request_ = Proc::Request{};
  // Resume the innermost suspended coroutine; subtask boundaries are not
  // scheduling points, so one resume may unwind/enter several frames.
  proc.leaf_.resume();
  proc.task_.check_exception();
  if (proc.task_.done()) {
    proc.done = true;
    return;
  }

  switch (proc.request_.kind) {
    case Proc::RequestKind::kNone:
      RLT_CHECK_MSG(false, "process p" << p
                                       << " suspended without a request — "
                                          "co_await a Proc awaitable");
      break;
    case Proc::RequestKind::kYield:
      break;
    case Proc::RequestKind::kCoin: {
      const int outcome = rng_.flip();
      proc.result_ = outcome;
      coins_.push_back(CoinRecord{p, outcome, tick()});
      break;
    }
    case Proc::RequestKind::kOp: {
      const RegId reg = proc.request_.reg;
      RegisterModel& m = model(reg);
      const Time t = tick();
      proc.last_invoke_ = t;
      const history::OpHandle h = recorder_.begin_op(
          p, reg, proc.request_.op_kind, proc.request_.value, t);
      const std::optional<Value> immediate = m.on_invoke(
          h.op_id, p, proc.request_.op_kind, proc.request_.value, t);
      if (immediate.has_value()) {
        recorder_.end_op(h, *immediate, tick());
        proc.result_ = *immediate;
      } else {
        op_owner_[h.op_id] = p;
        op_reg_[h.op_id] = reg;
        proc.blocked = true;
      }
      // The model's state changed; cached menus for this register are
      // stale.
      invalidate_choices(reg);
      break;
    }
  }
}

void Scheduler::respond_op(int op_id, const ResponseChoice& choice) {
  const auto reg_it = op_reg_.find(op_id);
  RLT_CHECK_MSG(reg_it != op_reg_.end(), "op " << op_id << " not pending");
  const RegId reg = reg_it->second;
  const ProcessId p = op_owner_.at(op_id);

  const Time t = tick();
  const Value result = model(reg).on_respond(op_id, choice, t);
  recorder_.end_op(history::OpHandle{op_id}, result, t);
  choice_cache_.erase(op_id);
  op_reg_.erase(op_id);
  op_owner_.erase(op_id);
  invalidate_choices(reg);

  Proc& proc = *procs_.at(static_cast<std::size_t>(p));
  RLT_CHECK_MSG(proc.blocked, "responding to op of non-blocked process");
  proc.result_ = result;
  proc.blocked = false;

  model(reg).maybe_collapse();
}

void Scheduler::apply(const Action& action) {
  ++actions_;
  if (action.kind == Action::Kind::kStep) {
    step_process(action.process);
  } else {
    respond_op(action.op_id, action.choice);
  }
}

RunOutcome Scheduler::run(Adversary& adversary, std::uint64_t max_actions) {
  for (std::uint64_t i = 0; i < max_actions; ++i) {
    if (all_done()) return RunOutcome::kAllDone;
    const std::optional<Action> action = adversary.choose(*this);
    if (!action.has_value()) return RunOutcome::kStopped;
    apply(*action);
  }
  return all_done() ? RunOutcome::kAllDone : RunOutcome::kActionCap;
}

}  // namespace rlt::sim
