// Register semantic models: the three register behaviours the paper
// compares, as pluggable simulator objects.
//
//  * `AtomicModel` — operations take effect instantaneously at invocation
//    (Section 2.1).  No pending operations ever exist.
//  * `LinearizableModel` — operations span intervals; the adversary picks
//    any response for which a legal linearization of the register's
//    history still exists ("off-line" freedom: the relative order of
//    concurrent writes can stay undecided until a read forces it).  This
//    is the weakest behaviour consistent with Definition 2 and therefore
//    the strongest adversary, matching Theorem 6's quantification.
//  * `WslModel` — like LinearizableModel, but the register maintains an
//    append-only *committed write sequence*: a write must be committed no
//    later than its response, and every response choice must admit a
//    linearization whose write subsequence is exactly the committed
//    sequence (Definition 4 made operational; see DESIGN.md §5).
//
// Complexity note: the WSL model's response-choice menu for a write
// enumerates every ordered commitment batch over the currently
// *uncommitted* writes — factorial in their count, by design (the
// adversary is entitled to the full choice space).  Schedules that keep
// many same-register writes pending and uncommitted simultaneously
// explode; adversaries should respond writes promptly (the paper's
// schedules all do), and tests keep concurrent-writer counts small.
//
// Models keep a *window* of recent operations plus a set of possible
// pre-window values.  When a register becomes quiescent (no pending ops)
// the window is collapsed into the set of feasible final values, keeping
// solver calls small even in unbounded executions (Theorem 6's infinite
// run).  Collapsing is sound because every pre-collapse operation
// real-time-precedes every post-collapse one, so the only information the
// future needs is the set of values the register may still hold.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "checker/lin_solver.hpp"
#include "history/history.hpp"
#include "sim/types.hpp"

namespace rlt::sim {

/// Interface of a register semantic model (one instance per register).
class RegisterModel {
 public:
  virtual ~RegisterModel() = default;

  /// The register's initial value (Definition 2, property 3).
  virtual void set_initial(Value v) = 0;

  /// Notifies the model of an invocation.  Returns the result immediately
  /// if the model completes operations instantaneously (atomic model);
  /// std::nullopt if the operation is now pending.
  virtual std::optional<Value> on_invoke(int op_id, ProcessId p, OpKind kind,
                                         Value value, Time now) = 0;

  /// All ways the model is willing to complete pending op `op_id` at time
  /// `now`.  Never empty for a write.  May be empty for a read only if
  /// the model is mid-constrained (does not happen for these models:
  /// a read can always return *some* feasible value).
  virtual std::vector<ResponseChoice> response_choices(int op_id,
                                                       Time now) = 0;

  /// Applies one of the choices returned by `response_choices`; returns
  /// the operation's result value (reads) or the written value (writes).
  virtual Value on_respond(int op_id, const ResponseChoice& choice,
                           Time now) = 0;

  /// Pending operations on this register.
  [[nodiscard]] virtual const std::vector<PendingOpInfo>& pending() const = 0;

  /// Human-readable state dump for debugging and benchmarks.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Invoked by the scheduler after events; models may compact state.
  virtual void maybe_collapse() {}
};

/// Common machinery for interval-based models (linearizable and WSL):
/// window history, id mapping, and quiescence collapsing.
class WindowedModel : public RegisterModel {
 public:
  void set_initial(Value v) override;

  std::optional<Value> on_invoke(int op_id, ProcessId p, OpKind kind,
                                 Value value, Time now) override;
  Value on_respond(int op_id, const ResponseChoice& choice,
                   Time now) override;
  [[nodiscard]] const std::vector<PendingOpInfo>& pending() const override;
  void maybe_collapse() override;

  /// The set of values the register may hold before the current window
  /// (singleton until a collapse preserves adversary freedom).
  [[nodiscard]] const std::vector<Value>& initial_values() const noexcept {
    return initial_values_;
  }

 protected:
  /// Subclass hook: commitment bookkeeping etc. `window_id` is the op's
  /// id inside `window_`.
  virtual void apply_choice(int window_id, const ResponseChoice& choice) = 0;

  /// Subclass hook called on collapse, before the window is cleared.
  virtual void collapse_hook() = 0;

  /// Subclass access to the window.
  [[nodiscard]] const history::History& window() const noexcept {
    return window_;
  }
  [[nodiscard]] int window_id_of(int global_op_id) const;
  [[nodiscard]] int global_id_of(int window_id) const;

  /// Feasible final values of the current window under `mode`/`exact`.
  [[nodiscard]] std::set<Value> window_final_values(
      checker::WriteOrderMode mode, const std::vector<int>& exact) const;

  /// Solves the window with an op hypothetically completed.
  [[nodiscard]] bool feasible_with_completion(
      int window_id, Value read_value, Time now, checker::WriteOrderMode mode,
      const std::vector<int>& exact_window_order) const;

  history::History window_;
  std::vector<Value> initial_values_{0};
  std::vector<int> window_to_global_;   ///< window id -> global op id
  std::vector<PendingOpInfo> pending_;  ///< keyed by global op id
};

/// Atomic registers: reads/writes are instantaneous (Section 2.1).
class AtomicModel final : public RegisterModel {
 public:
  void set_initial(Value v) override { value_ = v; }
  std::optional<Value> on_invoke(int op_id, ProcessId p, OpKind kind,
                                 Value value, Time now) override;
  std::vector<ResponseChoice> response_choices(int, Time) override {
    return {};
  }
  Value on_respond(int, const ResponseChoice&, Time) override;
  [[nodiscard]] const std::vector<PendingOpInfo>& pending() const override {
    static const std::vector<PendingOpInfo> kNone;
    return kNone;
  }
  [[nodiscard]] std::string describe() const override;

 private:
  Value value_ = 0;
};

/// Factory helpers.
std::unique_ptr<RegisterModel> make_atomic_model(Value initial);
std::unique_ptr<RegisterModel> make_linearizable_model(Value initial);
std::unique_ptr<RegisterModel> make_wsl_model(Value initial);

/// The three semantics, for parameterized tests and benches.
enum class Semantics { kAtomic, kLinearizable, kWriteStrong };
[[nodiscard]] const char* to_string(Semantics s) noexcept;
std::unique_ptr<RegisterModel> make_model(Semantics s, Value initial);

}  // namespace rlt::sim
