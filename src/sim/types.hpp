// Shared simulator types: actions the adversary chooses among, response
// choices exposed by register semantic models, pending-operation info.
#pragma once

#include <string>
#include <vector>

#include "history/event.hpp"

namespace rlt::sim {

using history::OpKind;
using history::ProcessId;
using history::Time;
using history::Value;
using RegId = history::RegisterId;

/// One way a register model is willing to complete a pending operation.
///
/// For reads, `value` is the value the read would return.  For write
/// strongly-linearizable registers, `commit_extension` lists the write
/// operations (global history op ids, in order) that responding with this
/// choice irrevocably appends to the register's committed write order —
/// the on-line decision that Definition 4 forces.
struct ResponseChoice {
  Value value = 0;
  std::vector<int> commit_extension;
  std::string label;

  friend bool operator==(const ResponseChoice&,
                         const ResponseChoice&) = default;
};

/// A pending (invoked, unresponded) operation on a modeled register.
struct PendingOpInfo {
  int op_id = -1;  ///< Global history op id.
  ProcessId process = -1;
  RegId reg = -1;
  OpKind kind = OpKind::kRead;
  Value value = 0;  ///< Written value (writes only).
  Time invoked = 0;
};

/// An action the adversary may schedule next.
struct Action {
  enum class Kind {
    kStep,     ///< Resume a process to its next suspension point.
    kRespond,  ///< Complete a pending register operation with a choice.
  };
  Kind kind = Kind::kStep;
  ProcessId process = -1;  ///< kStep: the process; kRespond: the op's owner.
  int op_id = -1;          ///< kRespond only.
  ResponseChoice choice;   ///< kRespond only.

  static Action step(ProcessId p) {
    Action a;
    a.kind = Kind::kStep;
    a.process = p;
    return a;
  }
  static Action respond(ProcessId p, int op_id, ResponseChoice choice) {
    Action a;
    a.kind = Kind::kRespond;
    a.process = p;
    a.op_id = op_id;
    a.choice = std::move(choice);
    return a;
  }
};

/// A recorded coin flip (process, outcome, time) — the strong adversary
/// may inspect these after they happen.
struct CoinRecord {
  ProcessId process = -1;
  int outcome = 0;
  Time time = 0;
};

}  // namespace rlt::sim
