#include "sim/regmodel.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace rlt::sim {

void WindowedModel::set_initial(Value v) {
  RLT_CHECK_MSG(window_.empty(), "set_initial after operations began");
  initial_values_ = {v};
  window_.set_initial(0, v);
}

std::optional<Value> WindowedModel::on_invoke(int op_id, ProcessId p,
                                              OpKind kind, Value value,
                                              Time now) {
  history::OpRecord op;
  op.process = p;
  op.reg = 0;  // window histories are single-register by construction
  op.kind = kind;
  op.value = kind == OpKind::kWrite ? value : Value{0};
  op.invoke = now;
  const int wid = window_.add(op);
  RLT_CHECK_MSG(wid == static_cast<int>(window_to_global_.size()),
                "window id bookkeeping out of sync");
  window_to_global_.push_back(op_id);

  PendingOpInfo info;
  info.op_id = op_id;
  info.process = p;
  info.kind = kind;
  info.value = value;
  info.invoked = now;
  pending_.push_back(info);
  return std::nullopt;
}

Value WindowedModel::on_respond(int op_id, const ResponseChoice& choice,
                                Time now) {
  const int wid = window_id_of(op_id);
  const history::OpRecord op = window_.op(wid);
  apply_choice(wid, choice);
  window_.complete_op(wid, choice.value, now);
  const auto it =
      std::find_if(pending_.begin(), pending_.end(),
                   [op_id](const PendingOpInfo& p) { return p.op_id == op_id; });
  RLT_CHECK_MSG(it != pending_.end(), "responding to unknown op " << op_id);
  pending_.erase(it);
  return op.is_write() ? op.value : choice.value;
}

const std::vector<PendingOpInfo>& WindowedModel::pending() const {
  return pending_;
}

void WindowedModel::maybe_collapse() {
  if (!pending_.empty() || window_.empty()) return;
  collapse_hook();
  window_ = history::History{};
  window_.set_initial(0, initial_values_.front());
  window_to_global_.clear();
}

int WindowedModel::window_id_of(int global_op_id) const {
  for (std::size_t i = 0; i < window_to_global_.size(); ++i) {
    if (window_to_global_[i] == global_op_id) return static_cast<int>(i);
  }
  RLT_CHECK_MSG(false, "op " << global_op_id << " not in window");
  return -1;
}

int WindowedModel::global_id_of(int window_id) const {
  RLT_CHECK(window_id >= 0 &&
            window_id < static_cast<int>(window_to_global_.size()));
  return window_to_global_[static_cast<std::size_t>(window_id)];
}

std::set<Value> WindowedModel::window_final_values(
    checker::WriteOrderMode mode, const std::vector<int>& exact) const {
  checker::LinProblem problem;
  problem.history = &window_;
  problem.mode = mode;
  problem.exact_write_order = exact;
  problem.initial_values = initial_values_;
  return checker::feasible_final_values(problem);
}

bool WindowedModel::feasible_with_completion(
    int window_id, Value read_value, Time now, checker::WriteOrderMode mode,
    const std::vector<int>& exact_window_order) const {
  // What-if probe via the solver's completion overlay: no window copy.
  checker::LinProblem problem;
  problem.history = &window_;
  problem.mode = mode;
  problem.exact_write_order = exact_window_order;
  problem.initial_values = initial_values_;
  problem.completion =
      checker::LinProblem::Completion{window_id, read_value, now};
  return checker::feasible(problem);
}

std::optional<Value> AtomicModel::on_invoke(int /*op_id*/, ProcessId /*p*/,
                                            OpKind kind, Value value,
                                            Time /*now*/) {
  if (kind == OpKind::kWrite) {
    value_ = value;
    return value;
  }
  return value_;
}

Value AtomicModel::on_respond(int, const ResponseChoice&, Time) {
  RLT_CHECK_MSG(false, "atomic registers have no pending operations");
  return 0;
}

std::string AtomicModel::describe() const {
  std::ostringstream os;
  os << "atomic{value=" << value_ << '}';
  return os.str();
}

const char* to_string(Semantics s) noexcept {
  switch (s) {
    case Semantics::kAtomic:
      return "atomic";
    case Semantics::kLinearizable:
      return "linearizable";
    case Semantics::kWriteStrong:
      return "write-strongly-linearizable";
  }
  return "?";
}

std::unique_ptr<RegisterModel> make_atomic_model(Value initial) {
  auto model = std::make_unique<AtomicModel>();
  model->set_initial(initial);
  return model;
}

std::unique_ptr<RegisterModel> make_model(Semantics s, Value initial) {
  switch (s) {
    case Semantics::kAtomic:
      return make_atomic_model(initial);
    case Semantics::kLinearizable:
      return make_linearizable_model(initial);
    case Semantics::kWriteStrong:
      return make_wsl_model(initial);
  }
  RLT_CHECK_MSG(false, "unknown semantics");
  return nullptr;
}

}  // namespace rlt::sim
