// Write strongly-linearizable register semantics (see regmodel.hpp).
//
// Operational form of Definition 4: the register maintains an append-only
// *committed write sequence*.  Whenever a write responds it must already
// be committed — so the response choices for a write enumerate the
// ordered selections of uncommitted writes (containing the responding
// one) that can be appended while a legal linearization with EXACTLY that
// write order still exists.  A read may return the value of an
// uncommitted pending write, but doing so forces that write (and any
// predecessors the adversary chooses) to be committed at the read's
// response.
//
// The crux of Lemma 19 becomes mechanical here: when p0's write of [0,j]
// responds BEFORE the coin flip, the adversary must choose the relative
// order of the concurrent write [1,j] now; it cannot retroactively pick
// the order after seeing the coin.
#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

#include "sim/regmodel.hpp"
#include "util/assert.hpp"

namespace rlt::sim {

namespace {

class WslModel final : public WindowedModel {
 public:
  std::vector<ResponseChoice> response_choices(int op_id, Time now) override {
    const int wid = window_id_of(op_id);
    const history::OpRecord& op = window().op(wid);
    std::vector<ResponseChoice> choices;

    if (op.is_write()) {
      if (std::find(committed_.begin(), committed_.end(), wid) !=
          committed_.end()) {
        // Already committed (a read returned this write's value earlier
        // and forced the commitment).  Responding decides nothing more.
        RLT_CHECK_MSG(
            feasible_with_completion(wid, op.value, now,
                                     checker::WriteOrderMode::kExact,
                                     committed_),
            "WSL model: committed write response infeasible — bug");
        ResponseChoice c;
        c.value = op.value;
        c.label = "complete-committed-write";
        choices.push_back(std::move(c));
        return choices;
      }
      // Enumerate ordered selections of uncommitted writes containing the
      // responding write; each selection is a candidate commitment batch.
      for_each_selection(uncommitted_writes(), [&](const std::vector<int>& s) {
        if (std::find(s.begin(), s.end(), wid) == s.end()) return;
        std::vector<int> exact = committed_;
        exact.insert(exact.end(), s.begin(), s.end());
        if (!feasible_with_completion(wid, op.value, now,
                                      checker::WriteOrderMode::kExact,
                                      exact)) {
          return;
        }
        ResponseChoice c;
        c.value = op.value;
        c.commit_extension = to_global(s);
        c.label = "commit" + render(s);
        choices.push_back(std::move(c));
      });
      RLT_CHECK_MSG(!choices.empty(),
                    "WSL model: write has no feasible commitment — bug");
      return choices;
    }

    // Reads: (value, commitment extension) pairs.  The empty extension is
    // considered too (value determined by already-committed writes).
    std::set<Value> candidates(initial_values().begin(),
                               initial_values().end());
    for (const history::OpRecord& w : window().ops()) {
      if (w.is_write()) candidates.insert(w.value);
    }
    const auto try_selection = [&](const std::vector<int>& s) {
      std::vector<int> exact = committed_;
      exact.insert(exact.end(), s.begin(), s.end());
      for (const Value v : candidates) {
        if (feasible_with_completion(wid, v, now,
                                     checker::WriteOrderMode::kExact,
                                     exact)) {
          ResponseChoice c;
          c.value = v;
          c.commit_extension = to_global(s);
          c.label = "read->" + std::to_string(v) +
                    (s.empty() ? "" : " commit" + render(s));
          choices.push_back(std::move(c));
        }
      }
    };
    try_selection({});
    for_each_selection(uncommitted_writes(), try_selection);
    RLT_CHECK_MSG(!choices.empty(),
                  "WSL model: read has no feasible response — bug");
    return choices;
  }

  [[nodiscard]] std::string describe() const override {
    std::ostringstream os;
    os << "wsl{window=" << window().size() << " ops, committed=[";
    for (std::size_t i = 0; i < committed_.size(); ++i) {
      os << (i == 0 ? "" : ",") << 'w' << global_id_of(committed_[i]);
    }
    os << "], pre-window in {";
    for (std::size_t i = 0; i < initial_values().size(); ++i) {
      os << (i == 0 ? "" : ",") << initial_values()[i];
    }
    os << "}}";
    return os.str();
  }

  /// The committed write order, as global history op ids (introspection
  /// for adversaries and tests).
  [[nodiscard]] std::vector<int> committed_global() const {
    return to_global(committed_);
  }

 protected:
  void apply_choice(int /*window_id*/, const ResponseChoice& choice) override {
    for (const int global : choice.commit_extension) {
      const int wid = window_id_of(global);
      const history::OpRecord& op = window().op(wid);
      RLT_CHECK_MSG(op.is_write(), "cannot commit a read");
      RLT_CHECK_MSG(std::find(committed_.begin(), committed_.end(), wid) ==
                        committed_.end(),
                    "write committed twice");
      committed_.push_back(wid);
    }
  }

  void collapse_hook() override {
    // At quiescence every write has responded, hence is committed.
    std::size_t write_count = 0;
    for (const history::OpRecord& op : window().ops()) {
      if (op.is_write()) ++write_count;
    }
    RLT_CHECK_MSG(write_count == committed_.size(),
                  "quiescent WSL register with uncommitted writes — bug");
    Value final_value = initial_values_.front();
    RLT_CHECK_MSG(initial_values_.size() == 1,
                  "WSL pre-window value must be determined");
    if (!committed_.empty()) {
      final_value = window().op(committed_.back()).value;
    }
    initial_values_ = {final_value};
    committed_.clear();
  }

 private:
  [[nodiscard]] std::vector<int> uncommitted_writes() const {
    std::vector<int> out;
    for (const history::OpRecord& op : window().ops()) {
      if (op.is_write() && std::find(committed_.begin(), committed_.end(),
                                     op.id) == committed_.end()) {
        out.push_back(op.id);
      }
    }
    return out;
  }

  [[nodiscard]] std::vector<int> to_global(const std::vector<int>& wids) const {
    std::vector<int> out;
    out.reserve(wids.size());
    for (const int wid : wids) out.push_back(global_id_of(wid));
    return out;
  }

  [[nodiscard]] std::string render(const std::vector<int>& wids) const {
    std::string out = "[";
    for (std::size_t i = 0; i < wids.size(); ++i) {
      if (i != 0) out += ',';
      out += 'w';
      out += std::to_string(global_id_of(wids[i]));
    }
    out += ']';
    return out;
  }

  /// Enumerates every non-empty ordered selection of `candidates`.
  /// Statically dispatched: this is the factorial part of the menu build.
  template <typename Fn>
  static void for_each_selection(const std::vector<int>& candidates,
                                 const Fn& fn) {
    std::vector<int> current;
    current.reserve(candidates.size());
    std::uint64_t used = 0;
    const auto rec = [&](const auto& self) -> void {
      if (!current.empty()) fn(current);
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if ((used & (1ULL << i)) != 0) continue;
        used |= 1ULL << i;
        current.push_back(candidates[i]);
        self(self);
        current.pop_back();
        used &= ~(1ULL << i);
      }
    };
    rec(rec);
  }

  std::vector<int> committed_;  ///< window ids, committed order
};

}  // namespace

std::unique_ptr<RegisterModel> make_wsl_model(Value initial) {
  auto model = std::make_unique<WslModel>();
  model->set_initial(initial);
  return model;
}

}  // namespace rlt::sim
