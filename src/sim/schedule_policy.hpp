// Schedule policies: the exploration lab's hook into every driver loop.
//
// A `SchedulePolicy` makes scheduling decisions through *indexed decision
// menus*.  Two menu shapes cover every workload in the repo:
//
//  * `pick` — the simulator families (modeled registers, Algorithms 2
//    and 4, the game/consensus/coin protocols): the menu is the
//    scheduler's full enabled-action list (steps of runnable processes in
//    process-id order, then every response choice of every pending op in
//    pending order).  The policy may inspect the scheduler — pending
//    ops, register choice menus, the coin log — which is exactly the
//    strong-adversary observation model of Section 2 of the paper.
//  * `pick_split` — the ABD message-passing driver, whose decisions are
//    not scheduler actions: the menu is `starts` startable client
//    operations (node-id order) followed by `deliveries` in-flight
//    messages (send order).
//
// Because both menus are enumerated in a deterministic order by a
// deterministic simulation, a run is fully reproduced by the sequence of
// indices a policy returned — which is what makes recorded schedules
// replayable and shrinkable (src/explore/trace.hpp).  Policies are the
// only adversary abstraction that spans both the scheduler-based and the
// message-passing families.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/assert.hpp"

namespace rlt::sim {

/// The message-passing driver's decision menu: `start_nodes[i]` is the
/// node whose next client operation entry i would start; entry
/// `start_nodes.size() + j` delivers in-flight message j, described by
/// `deliveries[j]` (sender, receiver, protocol message type).  Exposing
/// the message envelope — not its payload — matches the strong-adversary
/// model: the adversary sees who is talking to whom and may reorder at
/// will.
struct SplitMenu {
  struct Delivery {
    std::int32_t from = -1;
    std::int32_t to = -1;
    std::int64_t type = 0;
  };
  /// A fault-injection choice (Scenario::explore_faults): the driver
  /// appends these AFTER the deliveries, so policies that only reason
  /// about the structural sections keep their historical indices.
  /// Budgeted by the driver — drop/duplicate charges a per-run message
  /// budget, crash keeps the victims to a strict minority, recover is
  /// offered per crashed node — so the menu only ever lists admissible
  /// injections.
  struct Fault {
    enum class Kind : std::uint8_t { kDrop, kDuplicate, kCrash, kRecover };
    Kind kind = Kind::kDrop;
    /// In-flight message index (kDrop/kDuplicate) or node id
    /// (kCrash/kRecover).
    std::int32_t arg = -1;
  };
  std::vector<std::int32_t> start_nodes;
  std::vector<Delivery> deliveries;
  std::vector<Fault> faults;

  [[nodiscard]] std::size_t size() const noexcept {
    return start_nodes.size() + deliveries.size() + faults.size();
  }
};

/// Strategy interface for indexed-menu scheduling decisions.  Both hooks
/// must return an index < the menu size; menus are never empty.
class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;

  /// Simulator families: pick from the full enabled-action menu.  The
  /// policy may observe `sched` (strong adversary).
  virtual std::size_t pick(Scheduler& sched,
                           const std::vector<Action>& menu) = 0;

  /// Message-passing driver: pick from the structural menu.
  virtual std::size_t pick_split(const SplitMenu& menu) = 0;
};

/// Adapts a SchedulePolicy to the Adversary interface so it can drive
/// any Scheduler::run loop.  Stops the run (nullopt) on an empty menu.
class PolicyAdversary final : public Adversary {
 public:
  explicit PolicyAdversary(SchedulePolicy& policy) : policy_(&policy) {}

  std::optional<Action> choose(Scheduler& sched) override {
    std::vector<Action> menu = sched.enabled_actions();
    if (menu.empty()) return std::nullopt;
    const std::size_t i = policy_->pick(sched, menu);
    RLT_CHECK_MSG(i < menu.size(), "policy picked index " << i
                                       << " out of a menu of "
                                       << menu.size());
    return std::move(menu[i]);
  }

 private:
  SchedulePolicy* policy_;
};

}  // namespace rlt::sim
