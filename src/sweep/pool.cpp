#include "sweep/pool.hpp"

#include <exception>
#include <utility>

#include "util/assert.hpp"

namespace rlt::sweep {

WorkStealingPool::WorkStealingPool(int threads) {
  const std::size_t n = static_cast<std::size_t>(threads < 1 ? 1 : threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i); });
    }
  } catch (...) {
    // Thread creation failed partway (e.g. a cgroup thread limit).
    // Join what was spawned before rethrowing: unwinding over joinable
    // std::threads would call std::terminate.
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    throw;
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    // Drain without rethrowing (a throwing destructor would terminate);
    // an unobserved task exception is dropped here.
    std::unique_lock<std::mutex> lock(wake_mutex_);
    idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkStealingPool::submit(std::function<void()> task) {
  RLT_CHECK(task != nullptr);
  {
    // Push while holding wake_mutex_ (lock order: wake_mutex_ -> queue
    // mutex, same as the idle re-check in worker_loop) so a parking
    // worker either sees the queued task or is already waiting when the
    // notify fires — no lost-wakeup window.
    std::lock_guard<std::mutex> lock(wake_mutex_);
    RLT_CHECK_MSG(!stop_, "submit on a stopping pool");
    const std::size_t target = next_worker_;
    next_worker_ = (next_worker_ + 1) % workers_.size();
    ++unfinished_;
    std::lock_guard<std::mutex> qlock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

void WorkStealingPool::wait_idle() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
  if (first_exception_) {
    std::exception_ptr e = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

std::uint64_t WorkStealingPool::steals() const noexcept {
  return steals_.load(std::memory_order_relaxed);
}

bool WorkStealingPool::try_pop(std::size_t self,
                               std::function<void()>& task) {
  // Own queue first, newest task (LIFO)...
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.queue.empty()) {
      task = std::move(w.queue.back());
      w.queue.pop_back();
      return true;
    }
  }
  // ...then steal the oldest task from the first victim that has one.
  const std::size_t n = workers_.size();
  for (std::size_t d = 1; d < n; ++d) {
    Worker& victim = *workers_[(self + d) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.queue.empty()) {
      task = std::move(victim.queue.front());
      victim.queue.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void WorkStealingPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      try {
        task();
      } catch (...) {
        // Contain the exception (a bare throw on a std::thread would
        // terminate the process); the first one is rethrown to the next
        // wait_idle() caller.
        std::lock_guard<std::mutex> lock(wake_mutex_);
        if (!first_exception_) first_exception_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(wake_mutex_);
      if (--unfinished_ == 0) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_) return;
    // Re-check under the lock: a task may have been submitted between the
    // failed pop and acquiring the lock (missed notify otherwise).
    bool have_work = false;
    for (const auto& w : workers_) {
      std::lock_guard<std::mutex> wl(w->mutex);
      if (!w->queue.empty()) {
        have_work = true;
        break;
      }
    }
    if (have_work) continue;
    wake_cv_.wait(lock);
  }
}

}  // namespace rlt::sweep
