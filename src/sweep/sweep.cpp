#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <sstream>

#include "obs/forensics.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "sweep/fnv.hpp"
#include "sweep/pool.hpp"
#include "util/assert.hpp"

namespace rlt::sweep {
namespace {

/// Enumeration materializes this shard's share of the cross-product;
/// refuse shares that would exhaust memory before a single scenario
/// runs.  The cap is per shard — sharding raises the sweepable ceiling
/// N-fold, which is the point of the fabric.
constexpr std::uint64_t kMaxScenarios = 10'000'000;

}  // namespace

namespace {

/// Expands the fault axis for one family: kNone contributes one
/// fault-free plan, each applicable faulty kind one plan per fault seed,
/// inapplicable kinds nothing (fault_applies in scenario.hpp is the
/// single pairing authority).  A family with no applicable plan at all
/// (the list named only faults of other families) still runs once,
/// fault-free — a fault sweep never silently drops a family.
std::vector<FaultPlan> plans_for(const SweepOptions& o, Algorithm alg) {
  std::vector<FaultPlan> plans;
  for (const FaultKind f : o.faults) {
    if (!fault_applies(f, alg)) continue;
    if (f == FaultKind::kNone) {
      plans.push_back(FaultPlan{});
    } else {
      for (const std::uint64_t cs : o.crash_seeds) {
        FaultPlan plan{f, cs};
        if (f == FaultKind::kLossy) plan.param = o.drop_permille;
        plans.push_back(plan);
      }
    }
  }
  if (plans.empty()) plans.push_back(FaultPlan{});
  return plans;
}

}  // namespace

std::string config_key(const SweepOptions& o) {
  std::ostringstream os;
  os << "algs=";
  for (std::size_t i = 0; i < o.algorithms.size(); ++i) {
    os << (i ? "," : "") << to_string(o.algorithms[i]);
  }
  os << " sems=";
  for (std::size_t i = 0; i < o.semantics.size(); ++i) {
    os << (i ? "," : "") << sim::to_string(o.semantics[i]);
  }
  os << " advs=";
  for (std::size_t i = 0; i < o.adversaries.size(); ++i) {
    os << (i ? "," : "") << to_string(o.adversaries[i]);
  }
  os << " faults=";
  for (std::size_t i = 0; i < o.faults.size(); ++i) {
    os << (i ? "," : "") << to_string(o.faults[i]);
  }
  os << " fseeds=";
  for (std::size_t i = 0; i < o.crash_seeds.size(); ++i) {
    os << (i ? "," : "") << o.crash_seeds[i];
  }
  os << " drop=" << o.drop_permille << " procs=";
  for (std::size_t i = 0; i < o.process_counts.size(); ++i) {
    os << (i ? "," : "") << o.process_counts[i];
  }
  os << " seeds=" << o.seed_begin << ':' << o.seed_end
     << " writes=" << o.writes_per_process
     << " max-actions=" << o.max_actions_per_scenario;
  return os.str();
}

Enumeration enumerate_shard(const SweepOptions& o) {
  RLT_CHECK_MSG(o.seed_begin <= o.seed_end, "seed range is reversed");
  RLT_CHECK_MSG(!o.faults.empty(), "fault-kind list is empty");
  RLT_CHECK_MSG(!o.crash_seeds.empty(), "crash-seed list is empty");
  RLT_CHECK_MSG(o.shard.count > 0 && o.shard.index < o.shard.count,
                "shard index/count out of range");
  // Per-algorithm plan lists, built once (seeds are the outer loop).
  std::vector<std::vector<FaultPlan>> plans_by_alg;
  plans_by_alg.reserve(o.algorithms.size());
  std::uint64_t configs = 0;
  for (const Algorithm alg : o.algorithms) {
    plans_by_alg.push_back(plans_for(o, alg));
    const std::uint64_t sems =
        alg == Algorithm::kModeled ? o.semantics.size() : 1;
    configs += sems * plans_by_alg.back().size();
  }
  configs *= o.adversaries.size() * o.process_counts.size();
  const std::uint64_t seeds = o.seed_end - o.seed_begin;
  RLT_CHECK_MSG(configs == 0 || seeds <= UINT64_MAX / configs,
                "sweep cross-product overflows");
  Enumeration en;
  en.total = configs * seeds;
  RLT_CHECK_MSG(o.shard.share(en.total) <= kMaxScenarios,
                "sweep cross-product exceeds the per-shard scenario limit; "
                "narrow the seed range or axes, or use more shards");
  en.global_indices.reserve(o.shard.share(en.total));
  en.scenarios.reserve(o.shard.share(en.total));
  std::uint64_t gi = 0;
  for (std::uint64_t seed = o.seed_begin; seed < o.seed_end; ++seed) {
    for (std::size_t ai = 0; ai < o.algorithms.size(); ++ai) {
      const Algorithm alg = o.algorithms[ai];
      // Non-modeled algorithms ignore the semantics axis; emit them once.
      const std::size_t sem_count =
          alg == Algorithm::kModeled ? o.semantics.size() : 1;
      const std::vector<FaultPlan>& plans = plans_by_alg[ai];
      for (std::size_t si = 0; si < sem_count; ++si) {
        for (const AdversaryKind adv : o.adversaries) {
          for (const int procs : o.process_counts) {
            for (const FaultPlan& plan : plans) {
              if (o.shard.owns(gi)) {
                Scenario s;
                s.algorithm = alg;
                s.semantics = alg == Algorithm::kModeled
                                  ? o.semantics[si]
                                  : sim::Semantics::kAtomic;
                s.adversary = adv;
                s.processes = procs;
                s.seed = seed;
                s.writes_per_process = o.writes_per_process;
                s.max_actions = o.max_actions_per_scenario;
                s.faults = plan;
                s.online_check = o.online;
                s.forensics = o.forensics;
                en.global_indices.push_back(gi);
                en.scenarios.push_back(s);
              }
              ++gi;
            }
          }
        }
      }
    }
  }
  RLT_CHECK_MSG(gi == en.total, "enumeration count disagrees with the "
                                "computed cross-product size");
  return en;
}

std::vector<Scenario> enumerate_scenarios(const SweepOptions& o) {
  return enumerate_shard(o).scenarios;
}

std::string SweepSummary::stable_text() const {
  std::ostringstream os;
  os << "scenarios " << scenarios << '\n'
     << "ok " << ok << '\n'
     << "violations " << violations << '\n'
     << "blocked " << blocked << '\n'
     << "errors " << errors << '\n'
     << "steps " << total_steps << '\n'
     << "ops " << total_ops << '\n'
     << "digest " << std::hex << digest << std::dec << '\n';
  for (const std::string& f : failures) os << "failure " << f << '\n';
  if (failures_truncated > 0) {
    // Deterministic truncation marker: the counters above are complete,
    // and this line says how many non-ok scenarios the list left out.
    os << "failure ... and " << failures_truncated << " more non-ok "
       << "scenario(s) not listed\n";
  }
  return os.str();
}

SweepFold::SweepFold() { sum_.digest = kFnvOffset; }

void SweepFold::add(const std::string& key, Verdict verdict,
                    std::uint64_t steps, std::uint64_t ops,
                    std::uint64_t history_hash, const std::string& detail) {
  ++sum_.scenarios;
  switch (verdict) {
    case Verdict::kOk: ++sum_.ok; break;
    case Verdict::kViolation: ++sum_.violations; break;
    case Verdict::kBlocked: ++sum_.blocked; break;
    case Verdict::kError: ++sum_.errors; break;
  }
  sum_.total_steps += steps;
  sum_.total_ops += ops;
  fnv_mix_str(sum_.digest, key);
  fnv_mix_u64(sum_.digest, static_cast<std::uint64_t>(verdict));
  fnv_mix_u64(sum_.digest, steps);
  fnv_mix_u64(sum_.digest, ops);
  fnv_mix_u64(sum_.digest, history_hash);
  if (verdict != Verdict::kOk) {
    if (sum_.failures.size() < kMaxReportedFailures) {
      sum_.failures.push_back(key + ": [" + to_string(verdict) + "] " +
                              detail);
    } else {
      ++sum_.failures_truncated;
    }
  }
}

SweepSummary SweepFold::finish() { return std::move(sum_); }

namespace {

/// Progress outcome class of a safety verdict (the four class slots of
/// the progress protocol: ok / viol / blocked / err).
int progress_class(Verdict v) noexcept {
  switch (v) {
    case Verdict::kOk: return 0;
    case Verdict::kViolation: return 1;
    case Verdict::kBlocked: return 2;
    case Verdict::kError: return 3;
  }
  return 3;
}

}  // namespace

SweepSummary run_sweep(const SweepOptions& o, std::uint64_t progress_every,
                       RecordSink* sink, const obs::Hooks* hooks) {
  const auto t0 = std::chrono::steady_clock::now();
  const Enumeration en = enumerate_shard(o);
  const std::vector<Scenario>& scenarios = en.scenarios;
  std::vector<ScenarioResult> results(scenarios.size());

  // Tracing needs the registry live: per-scenario spans carry counter
  // deltas captured on the worker thread around each scenario.
  const bool tracing = hooks != nullptr && hooks->trace != nullptr;
  if (tracing) obs::set_enabled(true);
  std::vector<obs::CounterDelta> deltas(tracing ? scenarios.size() : 0);
  std::unique_ptr<obs::ProgressMeter> meter;
  if (hooks != nullptr && hooks->progress_on()) {
    obs::ProgressOptions po;
    po.total = scenarios.size();
    po.mode = "safety";
    po.classes = {"ok", "viol", "blocked", "err"};
    po.fd = hooks->progress_fd;
    po.heartbeat_ms = hooks->heartbeat_ms;
    meter = std::make_unique<obs::ProgressMeter>(po);
  }

  std::uint64_t steal_count = 0;
  {
    WorkStealingPool pool(o.threads);
    std::atomic<std::uint64_t> completed{0};
    const std::size_t batch =
        static_cast<std::size_t>(std::max(1, o.batch_size));
    obs::ProgressMeter* const meter_p = meter.get();
    for (std::size_t begin = 0; begin < scenarios.size(); begin += batch) {
      const std::size_t end = std::min(begin + batch, scenarios.size());
      pool.submit([&scenarios, &results, &completed, &deltas, progress_every,
                   begin, end, tracing, meter_p] {
        const bool timing = obs::enabled();
        const auto bt0 = std::chrono::steady_clock::now();
        for (std::size_t i = begin; i < end; ++i) {
          // A scenario runs wholly on this thread, so the thread-local
          // counter slice before/after brackets exactly its work.
          obs::CounterDelta before;
          if (tracing) before = obs::thread_counters();
          results[i] = run_scenario(scenarios[i]);
          if (tracing) {
            obs::CounterDelta after = obs::thread_counters();
            after -= before;
            deltas[i] = after;
          }
          if (meter_p != nullptr) {
            meter_p->tick(progress_class(results[i].verdict));
          }
          const std::uint64_t done =
              completed.fetch_add(1, std::memory_order_relaxed) + 1;
          if (progress_every > 0 && done % progress_every == 0) {
            std::cerr << "[sweep] " << done << " scenarios done\n";
          }
        }
        if (timing) {
          obs::count(obs::Counter::kPoolTasks);
          obs::hist(obs::Hist::kPoolTaskNs,
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - bt0)
                            .count()));
        }
      });
    }
    pool.wait_idle();
    steal_count = pool.steals();
  }
  obs::count(obs::Counter::kPoolSteals, steal_count);
  obs::gauge_max(obs::Gauge::kPoolThreads,
                 static_cast<std::uint64_t>(std::max(1, o.threads)));
  if (meter) meter->finish();

  // Deterministic fold: enumeration order, no wall-clock fields.  The
  // fold inputs are exactly the persisted record fields, so a merge that
  // re-folds shard-store records reproduces this summary bit for bit.
  if (sink != nullptr && o.shard.active()) {
    sink->append(shard_header_record("safety", o.shard, config_key(o),
                                     en.total, scenarios.size()));
  }
  SweepFold fold;
  std::uint64_t wall_ns_total = 0;
  std::uint64_t wall_ns_max = 0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioResult& r = results[i];
    wall_ns_total += r.wall_ns;
    if (r.wall_ns > wall_ns_max) wall_ns_max = r.wall_ns;
    const std::string key = scenarios[i].key();
    fold.add(key, r.verdict, r.steps, r.ops, r.history_hash, r.detail);
    if (sink != nullptr) {
      // Canonical per-scenario record: the global enumeration index,
      // then exactly the digest material (plus the failure detail), in a
      // fixed field order, so the store is byte-identical whenever the
      // digest is — and mergeable whatever the shard count was.
      Record rec;
      rec.u64("gi", en.global_indices[i])
          .str("key", key)
          .str("mode", "safety")
          .str("verdict", to_string(r.verdict))
          .u64("steps", r.steps)
          .u64("ops", r.ops)
          .hex("history_hash", r.history_hash)
          .u64("delivered", r.net_delivered)
          .u64("dropped", r.net_dropped)
          .u64("duplicated", r.net_duplicated)
          .u64("msgs", r.net_msgs)
          .u64("bytes", r.net_bytes)
          .u64("rts", r.net_round_trips)
          .str("detail", r.detail);
      sink->append(rec);
    }
    if (tracing) {
      // One span per scenario, emitted in enumeration order after the
      // pool barrier — byte-stable across threads/batch.  Wall-clock
      // fields only under trace_times (they break byte-identity).
      Record span;
      span.str("obs", "span")
          .u64("gi", en.global_indices[i])
          .str("key", key)
          .str("mode", "safety")
          .str("verdict", to_string(r.verdict))
          .u64("steps", r.steps)
          .u64("ops", r.ops);
      if (hooks->trace_times) {
        span.u64("wall_ns", r.wall_ns).u64("check_ns", r.check_ns);
      }
      obs::append_stable_deltas(deltas[i], span);
      hooks->trace->append(span);
    }
    if (hooks != nullptr && hooks->forensics_on() &&
        r.verdict != Verdict::kOk) {
      // One canonical-JSON artifact per non-ok scenario, written during
      // the deterministic fold and named by global index — so the
      // directory is byte-identical across --threads/--batch, and the
      // gi-disjoint shards of one sweep tile the unsharded directory.
      // Runners that could not capture forensics (kError unwound before
      // the history existed) still get an honest stub.
      std::string body = r.forensics;
      if (body.empty()) {
        Record stub;
        stub.u64("forensics", 1)
            .str("key", key)
            .str("verdict", to_string(r.verdict))
            .str("detail", r.detail);
        body = stub.json() + "\n";
      }
      obs::write_artifact(
          hooks->forensics_dir,
          "scenario-" + std::to_string(en.global_indices[i]) + ".json", body);
    }
  }
  if (tracing && hooks->trace_times) {
    // Closing span: end-to-end engine wall clock (opt-in, like every
    // wall-clock trace field).
    // "stable":false marks this record as wall-clock material, never
    // byte-stable across runs — sweep_diff.py-style tooling skips it
    // mechanically instead of special-casing the span name.
    Record close;
    close.str("obs", "span")
        .str("span", "sweep")
        .str("mode", "safety")
        .boolean("stable", false)
        .u64("scenarios", scenarios.size())
        .u64("elapsed_ns",
             static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count()));
    hooks->trace->append(close);
  }
  SweepSummary sum = fold.finish();
  if (sink != nullptr && o.shard.active()) {
    sink->append(shard_trailer_record(o.shard, scenarios.size(), sum.digest));
  }
  sum.wall_ns_total = wall_ns_total;
  sum.wall_ns_max = wall_ns_max;
  sum.steals = steal_count;
  sum.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return sum;
}

}  // namespace rlt::sweep
