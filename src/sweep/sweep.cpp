#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <sstream>

#include "sweep/fnv.hpp"
#include "sweep/pool.hpp"
#include "util/assert.hpp"

namespace rlt::sweep {
namespace {

constexpr std::size_t kMaxReportedFailures = 16;

/// Enumeration materializes the full cross-product; refuse sizes that
/// would exhaust memory before a single scenario runs.  (Streaming
/// enumeration is the ROADMAP answer for sweeps beyond this.)
constexpr std::uint64_t kMaxScenarios = 10'000'000;

}  // namespace

namespace {

/// Expands the fault axis for one family: kNone contributes one
/// fault-free plan, each applicable faulty kind one plan per fault seed,
/// inapplicable kinds nothing (fault_applies in scenario.hpp is the
/// single pairing authority).  A family with no applicable plan at all
/// (the list named only faults of other families) still runs once,
/// fault-free — a fault sweep never silently drops a family.
std::vector<FaultPlan> plans_for(const SweepOptions& o, Algorithm alg) {
  std::vector<FaultPlan> plans;
  for (const FaultKind f : o.faults) {
    if (!fault_applies(f, alg)) continue;
    if (f == FaultKind::kNone) {
      plans.push_back(FaultPlan{});
    } else {
      for (const std::uint64_t cs : o.crash_seeds) {
        FaultPlan plan{f, cs};
        if (f == FaultKind::kLossy) plan.param = o.drop_permille;
        plans.push_back(plan);
      }
    }
  }
  if (plans.empty()) plans.push_back(FaultPlan{});
  return plans;
}

}  // namespace

std::vector<Scenario> enumerate_scenarios(const SweepOptions& o) {
  RLT_CHECK_MSG(o.seed_begin <= o.seed_end, "seed range is reversed");
  RLT_CHECK_MSG(!o.faults.empty(), "fault-kind list is empty");
  RLT_CHECK_MSG(!o.crash_seeds.empty(), "crash-seed list is empty");
  // Per-algorithm plan lists, built once (seeds are the outer loop).
  std::vector<std::vector<FaultPlan>> plans_by_alg;
  plans_by_alg.reserve(o.algorithms.size());
  std::uint64_t configs = 0;
  for (const Algorithm alg : o.algorithms) {
    plans_by_alg.push_back(plans_for(o, alg));
    const std::uint64_t sems =
        alg == Algorithm::kModeled ? o.semantics.size() : 1;
    configs += sems * plans_by_alg.back().size();
  }
  configs *= o.adversaries.size() * o.process_counts.size();
  const std::uint64_t seeds = o.seed_end - o.seed_begin;
  RLT_CHECK_MSG(seeds == 0 || configs <= kMaxScenarios / seeds,
                "sweep cross-product exceeds the scenario limit; narrow "
                "the seed range or axes");
  std::vector<Scenario> out;
  out.reserve(configs * seeds);
  for (std::uint64_t seed = o.seed_begin; seed < o.seed_end; ++seed) {
    for (std::size_t ai = 0; ai < o.algorithms.size(); ++ai) {
      const Algorithm alg = o.algorithms[ai];
      // Non-modeled algorithms ignore the semantics axis; emit them once.
      const std::size_t sem_count =
          alg == Algorithm::kModeled ? o.semantics.size() : 1;
      const std::vector<FaultPlan>& plans = plans_by_alg[ai];
      for (std::size_t si = 0; si < sem_count; ++si) {
        for (const AdversaryKind adv : o.adversaries) {
          for (const int procs : o.process_counts) {
            for (const FaultPlan& plan : plans) {
              Scenario s;
              s.algorithm = alg;
              s.semantics = alg == Algorithm::kModeled
                                ? o.semantics[si]
                                : sim::Semantics::kAtomic;
              s.adversary = adv;
              s.processes = procs;
              s.seed = seed;
              s.writes_per_process = o.writes_per_process;
              s.max_actions = o.max_actions_per_scenario;
              s.faults = plan;
              s.online_check = o.online;
              out.push_back(s);
            }
          }
        }
      }
    }
  }
  return out;
}

std::string SweepSummary::stable_text() const {
  std::ostringstream os;
  os << "scenarios " << scenarios << '\n'
     << "ok " << ok << '\n'
     << "violations " << violations << '\n'
     << "blocked " << blocked << '\n'
     << "errors " << errors << '\n'
     << "steps " << total_steps << '\n'
     << "ops " << total_ops << '\n'
     << "digest " << std::hex << digest << std::dec << '\n';
  for (const std::string& f : failures) os << "failure " << f << '\n';
  if (failures_truncated > 0) {
    // Deterministic truncation marker: the counters above are complete,
    // and this line says how many non-ok scenarios the list left out.
    os << "failure ... and " << failures_truncated << " more non-ok "
       << "scenario(s) not listed\n";
  }
  return os.str();
}

SweepSummary run_sweep(const SweepOptions& o, std::uint64_t progress_every,
                       RecordSink* sink) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<Scenario> scenarios = enumerate_scenarios(o);
  std::vector<ScenarioResult> results(scenarios.size());

  std::uint64_t steal_count = 0;
  {
    WorkStealingPool pool(o.threads);
    std::atomic<std::uint64_t> completed{0};
    const std::size_t batch =
        static_cast<std::size_t>(std::max(1, o.batch_size));
    for (std::size_t begin = 0; begin < scenarios.size(); begin += batch) {
      const std::size_t end = std::min(begin + batch, scenarios.size());
      pool.submit([&scenarios, &results, &completed, progress_every, begin,
                   end] {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = run_scenario(scenarios[i]);
          const std::uint64_t done =
              completed.fetch_add(1, std::memory_order_relaxed) + 1;
          if (progress_every > 0 && done % progress_every == 0) {
            std::cerr << "[sweep] " << done << " scenarios done\n";
          }
        }
      });
    }
    pool.wait_idle();
    steal_count = pool.steals();
  }

  // Deterministic fold: enumeration order, no wall-clock fields.
  SweepSummary sum;
  sum.digest = kFnvOffset;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioResult& r = results[i];
    ++sum.scenarios;
    switch (r.verdict) {
      case Verdict::kOk: ++sum.ok; break;
      case Verdict::kViolation: ++sum.violations; break;
      case Verdict::kBlocked: ++sum.blocked; break;
      case Verdict::kError: ++sum.errors; break;
    }
    sum.total_steps += r.steps;
    sum.total_ops += r.ops;
    sum.wall_ns_total += r.wall_ns;
    if (r.wall_ns > sum.wall_ns_max) sum.wall_ns_max = r.wall_ns;
    const std::string key = scenarios[i].key();
    fnv_mix_str(sum.digest, key);
    fnv_mix_u64(sum.digest, static_cast<std::uint64_t>(r.verdict));
    fnv_mix_u64(sum.digest, r.steps);
    fnv_mix_u64(sum.digest, r.ops);
    fnv_mix_u64(sum.digest, r.history_hash);
    if (sink != nullptr) {
      // Canonical per-scenario record: exactly the digest material (plus
      // the failure detail), in a fixed field order, so the store is
      // byte-identical whenever the digest is.
      Record rec;
      rec.str("key", key)
          .str("mode", "safety")
          .str("verdict", to_string(r.verdict))
          .u64("steps", r.steps)
          .u64("ops", r.ops)
          .hex("history_hash", r.history_hash)
          .u64("delivered", r.net_delivered)
          .u64("dropped", r.net_dropped)
          .u64("duplicated", r.net_duplicated)
          .str("detail", r.detail);
      sink->append(rec);
    }
    if (r.verdict != Verdict::kOk) {
      if (sum.failures.size() < kMaxReportedFailures) {
        sum.failures.push_back(key + ": [" + to_string(r.verdict) + "] " +
                               r.detail);
      } else {
        ++sum.failures_truncated;
      }
    }
  }
  sum.steals = steal_count;
  sum.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return sum;
}

}  // namespace rlt::sweep
