#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <sstream>

#include "sweep/fnv.hpp"
#include "sweep/pool.hpp"
#include "util/assert.hpp"

namespace rlt::sweep {
namespace {

constexpr std::size_t kMaxReportedFailures = 16;

/// Enumeration materializes the full cross-product; refuse sizes that
/// would exhaust memory before a single scenario runs.  (Streaming
/// enumeration is the ROADMAP answer for sweeps beyond this.)
constexpr std::uint64_t kMaxScenarios = 10'000'000;

}  // namespace

std::vector<Scenario> enumerate_scenarios(const SweepOptions& o) {
  RLT_CHECK_MSG(o.seed_begin <= o.seed_end, "seed range is reversed");
  RLT_CHECK_MSG(!o.faults.empty(), "fault-kind list is empty");
  RLT_CHECK_MSG(!o.crash_seeds.empty(), "crash-seed list is empty");
  // Fault plans multiply only the ABD family (other families have no
  // crash model); each faulty kind is swept once per crash seed, while
  // kNone needs no crash schedule and is emitted once.
  std::uint64_t abd_fault_plans = 0;
  for (const FaultKind f : o.faults) {
    abd_fault_plans += f == FaultKind::kNone ? 1 : o.crash_seeds.size();
  }
  std::uint64_t configs = 0;
  for (const Algorithm alg : o.algorithms) {
    configs += alg == Algorithm::kModeled ? o.semantics.size()
               : alg == Algorithm::kAbd   ? abd_fault_plans
                                          : 1;
  }
  configs *= o.adversaries.size() * o.process_counts.size();
  const std::uint64_t seeds = o.seed_end - o.seed_begin;
  RLT_CHECK_MSG(seeds == 0 || configs <= kMaxScenarios / seeds,
                "sweep cross-product exceeds the scenario limit; narrow "
                "the seed range or axes");
  std::vector<Scenario> out;
  out.reserve(configs * seeds);
  // The fault axis applies to ABD only; everything else runs crash-free
  // exactly once whatever o.faults says.
  std::vector<CrashPlan> abd_plans;
  for (const FaultKind f : o.faults) {
    if (f == FaultKind::kNone) {
      abd_plans.push_back(CrashPlan{});
    } else {
      for (const std::uint64_t cs : o.crash_seeds) {
        abd_plans.push_back(CrashPlan{f, cs});
      }
    }
  }
  const std::vector<CrashPlan> no_faults = {CrashPlan{}};
  for (std::uint64_t seed = o.seed_begin; seed < o.seed_end; ++seed) {
    for (const Algorithm alg : o.algorithms) {
      // Non-modeled algorithms ignore the semantics axis; emit them once.
      const std::size_t sem_count =
          alg == Algorithm::kModeled ? o.semantics.size() : 1;
      const std::vector<CrashPlan>& plans =
          alg == Algorithm::kAbd ? abd_plans : no_faults;
      for (std::size_t si = 0; si < sem_count; ++si) {
        for (const AdversaryKind adv : o.adversaries) {
          for (const int procs : o.process_counts) {
            for (const CrashPlan& plan : plans) {
              Scenario s;
              s.algorithm = alg;
              s.semantics = alg == Algorithm::kModeled
                                ? o.semantics[si]
                                : sim::Semantics::kAtomic;
              s.adversary = adv;
              s.processes = procs;
              s.seed = seed;
              s.writes_per_process = o.writes_per_process;
              s.max_actions = o.max_actions_per_scenario;
              s.faults = plan;
              out.push_back(s);
            }
          }
        }
      }
    }
  }
  return out;
}

std::string SweepSummary::stable_text() const {
  std::ostringstream os;
  os << "scenarios " << scenarios << '\n'
     << "ok " << ok << '\n'
     << "violations " << violations << '\n'
     << "blocked " << blocked << '\n'
     << "errors " << errors << '\n'
     << "steps " << total_steps << '\n'
     << "ops " << total_ops << '\n'
     << "digest " << std::hex << digest << std::dec << '\n';
  for (const std::string& f : failures) os << "failure " << f << '\n';
  if (failures_truncated > 0) {
    // Deterministic truncation marker: the counters above are complete,
    // and this line says how many non-ok scenarios the list left out.
    os << "failure ... and " << failures_truncated << " more non-ok "
       << "scenario(s) not listed\n";
  }
  return os.str();
}

SweepSummary run_sweep(const SweepOptions& o, std::uint64_t progress_every) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<Scenario> scenarios = enumerate_scenarios(o);
  std::vector<ScenarioResult> results(scenarios.size());

  std::uint64_t steal_count = 0;
  {
    WorkStealingPool pool(o.threads);
    std::atomic<std::uint64_t> completed{0};
    const std::size_t batch =
        static_cast<std::size_t>(std::max(1, o.batch_size));
    for (std::size_t begin = 0; begin < scenarios.size(); begin += batch) {
      const std::size_t end = std::min(begin + batch, scenarios.size());
      pool.submit([&scenarios, &results, &completed, progress_every, begin,
                   end] {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = run_scenario(scenarios[i]);
          const std::uint64_t done =
              completed.fetch_add(1, std::memory_order_relaxed) + 1;
          if (progress_every > 0 && done % progress_every == 0) {
            std::cerr << "[sweep] " << done << " scenarios done\n";
          }
        }
      });
    }
    pool.wait_idle();
    steal_count = pool.steals();
  }

  // Deterministic fold: enumeration order, no wall-clock fields.
  SweepSummary sum;
  sum.digest = kFnvOffset;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioResult& r = results[i];
    ++sum.scenarios;
    switch (r.verdict) {
      case Verdict::kOk: ++sum.ok; break;
      case Verdict::kViolation: ++sum.violations; break;
      case Verdict::kBlocked: ++sum.blocked; break;
      case Verdict::kError: ++sum.errors; break;
    }
    sum.total_steps += r.steps;
    sum.total_ops += r.ops;
    sum.wall_ns_total += r.wall_ns;
    if (r.wall_ns > sum.wall_ns_max) sum.wall_ns_max = r.wall_ns;
    fnv_mix_str(sum.digest, scenarios[i].key());
    fnv_mix_u64(sum.digest, static_cast<std::uint64_t>(r.verdict));
    fnv_mix_u64(sum.digest, r.steps);
    fnv_mix_u64(sum.digest, r.ops);
    fnv_mix_u64(sum.digest, r.history_hash);
    if (r.verdict != Verdict::kOk) {
      if (sum.failures.size() < kMaxReportedFailures) {
        sum.failures.push_back(scenarios[i].key() + ": [" +
                               to_string(r.verdict) + "] " + r.detail);
      } else {
        ++sum.failures_truncated;
      }
    }
  }
  sum.steals = steal_count;
  sum.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return sum;
}

}  // namespace rlt::sweep
