// A small work-stealing thread pool for embarrassingly parallel sweeps.
//
// Each worker owns a deque: it pushes and pops at the back (LIFO, cache
// friendly for tasks submitted by that worker), and steals from the
// front of a victim's deque when its own is empty (FIFO: the victim's
// oldest, i.e. smallest-index, queued task — the one the victim would
// reach last).  External submissions are dealt round-robin across
// workers so every worker starts with a share.
//
// Determinism note: the pool schedules nondeterministically, but the
// sweep engine writes results into a pre-sized array indexed by task id
// and aggregates in id order, so sweep digests are independent of the
// interleaving and of the thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rlt::sweep {

class WorkStealingPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit WorkStealingPool(int threads);

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Drains remaining work, then joins the workers.
  ~WorkStealingPool();

  /// Enqueues a task.  Thread-safe; tasks may submit further tasks.
  /// A task that throws does not kill the worker: the first exception is
  /// captured and rethrown from the next wait_idle() call.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing, then
  /// rethrows the first exception any task threw since the last call
  /// (if one did).
  void wait_idle();

  [[nodiscard]] int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Number of times a worker took a task from another worker's deque
  /// (observability; tests assert the pool actually steals).
  [[nodiscard]] std::uint64_t steals() const noexcept;

 private:
  struct Worker {
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;   ///< Signals workers: work or stop.
  std::condition_variable idle_cv_;   ///< Signals waiters: all done.
  std::size_t unfinished_ = 0;        ///< Queued + executing tasks.
  std::size_t next_worker_ = 0;       ///< Round-robin submission cursor.
  std::exception_ptr first_exception_;  ///< First task throw, if any.
  std::atomic<std::uint64_t> steals_{0};
  bool stop_ = false;
};

}  // namespace rlt::sweep
