// One sweep scenario: a fully determined point in the cross-product
//
//   register semantics × algorithm × process count × adversary × fault
//   plan × seed
//
// explored by the sweep engine (src/sweep/sweep.hpp).  Each scenario is
// an independent deterministic simulation: build the system, drive it
// with a seeded adversary, record the high-level history, and validate
// it with the checker the scenario's semantics call for.  Re-running a
// scenario with the same config yields the identical history and
// therefore the identical `ScenarioResult` fingerprint — the property
// the sweep digest rests on.
//
// Scenario families (the `Algorithm` axis):
//
//  * kModeled — processes operate directly on one *modeled* register
//    (sim/regmodel.hpp); the `semantics` axis selects atomic /
//    linearizable / write strongly-linearizable behaviour.  Checked with
//    `check_linearizable`, plus the WSL tree checker when the model
//    promises write strong-linearizability.
//  * kAlg2 — the paper's Algorithm 2 (vector-timestamp WSL MWMR register
//    from atomic SWMR bases).  Checked linearizable AND write strongly
//    linearizable (Theorem 10).
//  * kAlg4 — Algorithm 4 (Lamport-clock register): linearizable
//    (Theorem 12) but not WSL, so only `check_linearizable` applies.
//  * kAbd — the ABD message-passing register driven by a seeded delivery
//    schedule.  Checked linearizable (its histories are also WSL by
//    Theorem 14, and we check that too: single-writer runs keep the tree
//    search tiny).
//
// The fault axis (`FaultPlan`).  kMinorityCrash applies to kAbd: the
// paper's termination results live in the regime where a minority of
// nodes may crash, so the sweep can seed minority-crash schedules and
// classify runs that can no longer finish as Verdict::kBlocked —
// distinct from both kViolation (a checker rejected the history) and
// kError (the run machinery itself failed).  kStall applies to the
// simulator families (kModeled/kAlg2/kAlg4): a seeded strict minority
// of processes takes one step and is then never scheduled again — the
// wait-freedom probe promoted from the ablation tests.  Live processes
// must still finish (the registers are wait-free); the run then
// classifies kBlocked with the history — stranded pending ops included
// — checked clean.
//
// The unreliable-network kinds (all ABD-only) arm the Network fault
// fabric and ABD's retransmission/dedup layer (mp/abd.hpp):
//
//  * kLossy — each would-be delivery is dropped with probability
//    `param`/1000 (seeded).  Retransmission with jittered exponential
//    backoff recovers every loss while a live quorum exists, so these
//    sweeps classify 100% kOk.
//  * kDuplicate — deliveries are duplicated (same seq); server-side
//    seq dedup and per-server quorum masks neutralize the copies: kOk.
//  * kPartition — a seeded two-sided cut drops cross-side traffic from
//    a seeded cut time until a seeded heal time; retransmission
//    completes every op after the heal: kOk.
//  * kMajorityCrash — between a majority and all nodes crash at seeded
//    send-attempt thresholds (a threshold can land inside one
//    broadcast, so only a prefix of replicas hears it).  No live quorum
//    remains, so blocking is certain: every run classifies kBlocked,
//    never kError.
//  * kCrashRecovery — a seeded strict minority crashes at send-attempt
//    thresholds and recovers after seeded delays: durable server state
//    (ts, value) survives, volatile state resets, and the ops in
//    flight on a crashed node are abandoned (pending forever in the
//    history — honest kBlocked when they are the only work left; runs
//    whose crashes miss every op classify kOk).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sim/regmodel.hpp"

namespace rlt::sim {
class SchedulePolicy;
}  // namespace rlt::sim

namespace rlt::sweep {

/// Which register construction the scenario exercises.
enum class Algorithm : std::uint8_t { kModeled, kAlg2, kAlg4, kAbd };

[[nodiscard]] const char* to_string(Algorithm a) noexcept;

/// How the scenario's run is scheduled.  For simulator scenarios these
/// map to sim::RandomAdversary / sim::RoundRobinAdversary; for ABD,
/// kRandom delivers uniformly random in-flight messages and starts
/// client operations at random moments, while kRoundRobin drains the
/// network oldest-message-first and rotates operation starts.
enum class AdversaryKind : std::uint8_t { kRandom, kRoundRobin };

[[nodiscard]] const char* to_string(AdversaryKind a) noexcept;

/// Which fault regime a scenario runs under.
enum class FaultKind : std::uint8_t {
  kNone,           ///< Fault-free (the classic sweep).
  kMinorityCrash,  ///< A seeded strict minority of nodes crashes (ABD).
  kStall,          ///< A seeded strict minority of processes stalls
                   ///< forever after one step (simulator families).
  kLossy,          ///< Seeded per-message loss, param/1000 drop rate (ABD).
  kDuplicate,      ///< Seeded per-message duplication (ABD).
  kPartition,      ///< Seeded transient two-sided cut that heals (ABD).
  kMajorityCrash,  ///< A seeded majority-or-more crashes mid-broadcast;
                   ///< blocking is certain (ABD).
  kCrashRecovery,  ///< A seeded strict minority crashes mid-broadcast
                   ///< and recovers; in-flight ops are abandoned (ABD).
};

[[nodiscard]] const char* to_string(FaultKind f) noexcept;

/// True iff fault kind `f` is implemented for algorithm family `a`
/// (kMinorityCrash and the unreliable-network kinds pair with kAbd,
/// kStall with the simulator families).  run_scenario reports kError on
/// any other pairing; the CLI rejects it up front.
[[nodiscard]] bool fault_applies(FaultKind f, Algorithm a) noexcept;

/// A seeded fault schedule.  `seed` is an independent axis from the
/// scenario seed: the same schedule can be swept under many fault
/// timings.  Victims, victim count (1..⌊(n-1)/2⌋ for the
/// minority-leaving kinds, quorum..n for kMajorityCrash), crash/cut/
/// heal times and loss coins are all deterministic functions of
/// (scenario seed, fault seed).  See fault_applies for the kind×family
/// pairing rules.
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  std::uint64_t seed = 0;  ///< Fault-schedule seed; unused for kNone.
  /// Kind-specific intensity: drop probability in permille for kLossy
  /// (1..999); unused otherwise.  Part of the scenario key.
  std::uint32_t param = 0;

  [[nodiscard]] bool active() const noexcept {
    return kind != FaultKind::kNone;
  }
  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// A fully determined scenario configuration.
struct Scenario {
  Algorithm algorithm = Algorithm::kModeled;
  /// Register semantics; meaningful for kModeled only (implemented
  /// registers fix their own base-object semantics: atomic).
  sim::Semantics semantics = sim::Semantics::kAtomic;
  AdversaryKind adversary = AdversaryKind::kRandom;
  int processes = 3;
  std::uint64_t seed = 0;
  /// Writes performed by each writer role (reads are derived: every
  /// process finishes with one read; see scenario.cpp).
  int writes_per_process = 2;
  /// Safety cap on simulator actions / network deliveries.
  std::uint64_t max_actions = 1'000'000;
  /// Fault axis (see FaultPlan for which kinds pair with which family).
  FaultPlan faults;
  /// ABLATION/testing knob, not reachable from the CLI: disables ABD's
  /// read write-back phase, which breaks linearizability across readers
  /// (see mp/abd.hpp).  Tests use it to plant genuine violations inside
  /// sweeps; key() marks it ("/nowb") so fingerprints stay honest.
  bool abd_read_write_back = true;
  /// Cross-check every checkable history with the streaming online
  /// checker (checker/stream_checker.hpp) and report any batch/online
  /// disagreement as kError.  Deliberately EXCLUDED from key(): when the
  /// checkers agree (the only non-error outcome) the records are
  /// byte-identical to a plain run, so an --online sweep diffs clean
  /// against a blessed store produced without it.
  bool online_check = false;
  /// Exploration knob (ABD + run_scenario_policy only): extends the
  /// policy's schedule menu with fault-injection choices — drop or
  /// duplicate a chosen in-flight message, crash a node (strict
  /// minority budget, ops abandoned, crash-recovery semantics), recover
  /// a crashed node — so the explore lab can hunt worst-case fault
  /// schedules.  Arms ABD's retransmission layer so adversarial drops
  /// cannot trivially block the run.  key() marks it ("/fmenu").
  bool explore_faults = false;
  /// Capture forensics for non-ok verdicts: the event timeline
  /// (mp::NetObserver for ABD), the quorum ledger on kBlocked, and a
  /// re-verified failure certificate on kViolation, rendered into
  /// ScenarioResult::forensics as one canonical-JSON document
  /// (obs/forensics.hpp).  Deliberately EXCLUDED from key(), like
  /// online_check: the artifact is observability, never digest
  /// material, and a --forensics sweep's store stays byte-identical to
  /// a plain run's.
  bool forensics = false;

  /// Stable human-readable key, e.g. "alg2/rr/p3/w2/seed42",
  /// "abd/rand/p5/w2/fminority-c7/seed42", or
  /// "alg2/rand/p5/w2/fstall-c3/seed42".  Fault-free scenarios keep
  /// their historical keys (no fault segment), so pre-fault-axis digests
  /// remain comparable.  Used in reports and mixed into the sweep digest.
  [[nodiscard]] std::string key() const;
};

/// Outcome classification of one scenario run.
///
/// Enumerator values are digest material (the sweep mixes the raw value);
/// kOk and kViolation keep their pre-crash-axis values so crash-free
/// sweep digests stay byte-stable across this taxonomy change.
enum class Verdict : std::uint8_t {
  kOk = 0,         ///< Ran to completion; every applicable check passed.
  kViolation = 1,  ///< A checker rejected the recorded history.
  kBlocked = 2,    ///< Quiescent with work that can never finish (crashed
                   ///< homes / no live quorum / stalled processes);
                   ///< history checked clean up to the block.
  kError = 3,      ///< The run machinery failed (budget exhausted with a
                   ///< clean prefix, bad config, exception).
};

[[nodiscard]] const char* to_string(Verdict v) noexcept;

/// Inverse of to_string(Verdict), for reading verdicts back out of
/// persisted store records ("ok" / "VIOLATION" / "blocked" / "ERROR";
/// case-sensitive, exactly the store spelling).  nullopt otherwise.
[[nodiscard]] std::optional<Verdict> verdict_from_string(
    std::string_view s) noexcept;

/// How a scenario's driver stopped producing events.  Inputs to the
/// verdict classification below; public so tests can exercise the
/// classifier on hand-built histories.
enum class RunEnd : std::uint8_t {
  kCompleted,  ///< Every program ran to completion.
  kBlocked,    ///< Quiescent with pending ops that can never complete.
  kBudget,     ///< The action budget ran out first.
};

/// What one scenario produced.  All fields except `wall_ns` are pure
/// functions of the Scenario; `wall_ns` is measured and therefore
/// excluded from digests.
struct ScenarioResult {
  Verdict verdict = Verdict::kError;
  std::uint64_t steps = 0;        ///< Adversary actions / deliveries.
  std::uint64_t ops = 0;          ///< Completed high-level operations.
  std::uint64_t history_hash = 0; ///< FNV-1a over the recorded history.
  std::uint64_t wall_ns = 0;      ///< Measured; NOT part of any digest.
  std::uint64_t check_ns = 0;     ///< Checker share of wall_ns; measured.
  // Message accounting (ABD family; zero for the simulator families).
  // Deterministic, recorded in stores, but NOT digest material — the
  // digest predates the split counters.
  std::uint64_t net_delivered = 0;   ///< Handed to a live receiver.
  std::uint64_t net_dropped = 0;     ///< Crashed/cut/lossy consumes.
  std::uint64_t net_duplicated = 0;  ///< Fabric-duplicated copies.
  // Message-complexity accounting (the ROADMAP's messages/bits-per-op
  // axis; same deterministic-but-not-digest-material contract).
  std::uint64_t net_msgs = 0;        ///< Envelopes sent (dups included).
  std::uint64_t net_bytes = 0;       ///< Wire bytes sent (8 B/word).
  std::uint64_t net_round_trips = 0; ///< ABD phase broadcasts incl. rexmits.
  std::string detail;             ///< Failure explanation (empty if kOk).
  /// Canonical-JSON forensics artifact (obs/forensics.hpp): non-empty
  /// only when Scenario::forensics was set and the verdict is not kOk.
  /// A pure function of the Scenario — byte-identical across threads,
  /// batches, and shards — and never digest or store material.
  std::string forensics;
};

/// Runs one scenario to completion.  Deterministic: identical `s` gives
/// identical results (modulo wall_ns).  Never throws; exceptions become
/// Verdict::kError.
[[nodiscard]] ScenarioResult run_scenario(const Scenario& s);

/// Exploration hook: like run_scenario, but with every scheduling
/// decision — simulator actions for the sim families, operation starts
/// and message deliveries for ABD — made by `schedule` through indexed
/// menus (sim/schedule_policy.hpp) instead of the scenario's seeded
/// adversary axis.  The scenario's own seed still feeds the scheduler's
/// coin stream, so a run is a pure function of (scenario, policy
/// decisions): record the decisions and the run replays byte-identically.
/// Fault plans do not combine with external schedules (kError); to give
/// the policy fault power instead, set Scenario::explore_faults, which
/// appends fault-injection choices to the menu.
[[nodiscard]] ScenarioResult run_scenario_policy(const Scenario& s,
                                                 sim::SchedulePolicy& schedule);

/// Folds the checker verdicts on the recorded history together with how
/// the run ended into `out.verdict`/`out.detail`.  The checkers run on
/// EVERY exit path — a violation recorded before the run stalled or ran
/// out of budget always wins over the stall classification (the verdict-
/// masking bug class); pending ops stay in the history and reach the
/// solver as possibly-effective pending writes.  `end_detail` describes
/// the early exit (empty for kCompleted).  With `online`, the streaming
/// checker replays the history event-by-event and any disagreement with
/// the batch verdict classifies kError; on agreement the result is
/// byte-identical to an offline classification.
void classify_run(const history::History& h, bool expect_wsl, RunEnd end,
                  const std::string& end_detail, ScenarioResult& out,
                  bool online = false);

/// Deterministic 64-bit fingerprint of a history (op tuples in id order).
/// Covers invocation-only (pending) ops too — their invocation time and
/// payload mix in with a kNoTime response — so blocked crash runs
/// fingerprint the ops the crash stranded, deterministically.
[[nodiscard]] std::uint64_t hash_history(const history::History& h);

}  // namespace rlt::sweep
