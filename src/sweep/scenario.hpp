// One sweep scenario: a fully determined point in the cross-product
//
//   register semantics × algorithm × process count × adversary × seed
//
// explored by the sweep engine (src/sweep/sweep.hpp).  Each scenario is
// an independent deterministic simulation: build the system, drive it
// with a seeded adversary, record the high-level history, and validate
// it with the checker the scenario's semantics call for.  Re-running a
// scenario with the same config yields the identical history and
// therefore the identical `ScenarioResult` fingerprint — the property
// the sweep digest rests on.
//
// Scenario families (the `Algorithm` axis):
//
//  * kModeled — processes operate directly on one *modeled* register
//    (sim/regmodel.hpp); the `semantics` axis selects atomic /
//    linearizable / write strongly-linearizable behaviour.  Checked with
//    `check_linearizable`, plus the WSL tree checker when the model
//    promises write strong-linearizability.
//  * kAlg2 — the paper's Algorithm 2 (vector-timestamp WSL MWMR register
//    from atomic SWMR bases).  Checked linearizable AND write strongly
//    linearizable (Theorem 10).
//  * kAlg4 — Algorithm 4 (Lamport-clock register): linearizable
//    (Theorem 12) but not WSL, so only `check_linearizable` applies.
//  * kAbd — the ABD message-passing register driven by a seeded delivery
//    schedule.  Checked linearizable (its histories are also WSL by
//    Theorem 14, and we check that too: single-writer runs keep the tree
//    search tiny).
#pragma once

#include <cstdint>
#include <string>

#include "sim/regmodel.hpp"

namespace rlt::sweep {

/// Which register construction the scenario exercises.
enum class Algorithm : std::uint8_t { kModeled, kAlg2, kAlg4, kAbd };

[[nodiscard]] const char* to_string(Algorithm a) noexcept;

/// How the scenario's run is scheduled.  For simulator scenarios these
/// map to sim::RandomAdversary / sim::RoundRobinAdversary; for ABD,
/// kRandom delivers uniformly random in-flight messages and starts
/// client operations at random moments, while kRoundRobin drains the
/// network oldest-message-first and rotates operation starts.
enum class AdversaryKind : std::uint8_t { kRandom, kRoundRobin };

[[nodiscard]] const char* to_string(AdversaryKind a) noexcept;

/// A fully determined scenario configuration.
struct Scenario {
  Algorithm algorithm = Algorithm::kModeled;
  /// Register semantics; meaningful for kModeled only (implemented
  /// registers fix their own base-object semantics: atomic).
  sim::Semantics semantics = sim::Semantics::kAtomic;
  AdversaryKind adversary = AdversaryKind::kRandom;
  int processes = 3;
  std::uint64_t seed = 0;
  /// Writes performed by each writer role (reads are derived: every
  /// process finishes with one read; see scenario.cpp).
  int writes_per_process = 2;
  /// Safety cap on simulator actions / network deliveries.
  std::uint64_t max_actions = 1'000'000;

  /// Stable human-readable key, e.g. "alg2/rr/p3/w2/seed42".  Used in
  /// reports and mixed into the sweep digest.
  [[nodiscard]] std::string key() const;
};

/// Outcome classification of one scenario run.
enum class Verdict : std::uint8_t {
  kOk,         ///< Ran to completion; every applicable check passed.
  kViolation,  ///< A checker rejected the recorded history.
  kError,      ///< The run itself failed (budget exhausted, exception).
};

[[nodiscard]] const char* to_string(Verdict v) noexcept;

/// What one scenario produced.  All fields except `wall_ns` are pure
/// functions of the Scenario; `wall_ns` is measured and therefore
/// excluded from digests.
struct ScenarioResult {
  Verdict verdict = Verdict::kError;
  std::uint64_t steps = 0;        ///< Adversary actions / deliveries.
  std::uint64_t ops = 0;          ///< Completed high-level operations.
  std::uint64_t history_hash = 0; ///< FNV-1a over the recorded history.
  std::uint64_t wall_ns = 0;      ///< Measured; NOT part of any digest.
  std::string detail;             ///< Failure explanation (empty if kOk).
};

/// Runs one scenario to completion.  Deterministic: identical `s` gives
/// identical results (modulo wall_ns).  Never throws; exceptions become
/// Verdict::kError.
[[nodiscard]] ScenarioResult run_scenario(const Scenario& s);

/// Deterministic 64-bit fingerprint of a history (op tuples in id order).
[[nodiscard]] std::uint64_t hash_history(const history::History& h);

}  // namespace rlt::sweep
