// FNV-1a mixing shared by the sweep digest pipeline.  Both the
// per-scenario history fingerprint (scenario.cpp) and the aggregate
// sweep digest (sweep.cpp) must use the exact same primitive: these
// values are compared byte-for-byte across runs, machines, and
// commits, so there is deliberately one copy of the constants.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace rlt::sweep {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline void fnv_mix_bytes(std::uint64_t& h, const void* data,
                          std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

/// Mixes a 64-bit value little-endian byte by byte (endianness-stable).
inline void fnv_mix_u64(std::uint64_t& h, std::uint64_t x) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
}

inline void fnv_mix_str(std::uint64_t& h, const std::string& s) noexcept {
  fnv_mix_u64(h, s.size());
  fnv_mix_bytes(h, s.data(), s.size());
}

}  // namespace rlt::sweep
