#include "sweep/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <optional>
#include <sstream>
#include <vector>

#include "checker/lin_checker.hpp"
#include "checker/stream_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "mp/abd.hpp"
#include "mp/network.hpp"
#include "obs/forensics.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "registers/alg2_register.hpp"
#include "registers/alg4_register.hpp"
#include "sim/adversary.hpp"
#include "sim/schedule_policy.hpp"
#include "sim/scheduler.hpp"
#include "sweep/fnv.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rlt::sweep {
namespace {

using history::History;
using history::Value;

/// Distinct written values per (writer role, write index): keeps reads
/// unambiguous, which keeps the solver's search space small.
Value written_value(int role, int i) { return 100 * (role + 1) + i; }

// ---- simulator process bodies ------------------------------------------
//
// Free coroutine functions (not capturing lambdas): parameters are copied
// into the coroutine frame, per the CP.51 note on Scheduler::add_process.

sim::Task modeled_proc(sim::Proc& p, int role, int writes) {
  for (int i = 0; i < writes; ++i) {
    co_await p.write(0, written_value(role, i));
  }
  (void)co_await p.read(0);
}

/// Shared body for the implemented MWMR registers (Algorithms 2 and 4
/// expose the same write(slot)/read interface).
template <class Reg>
sim::Task implemented_proc(sim::Proc& p, Reg& r, int slot, int writes) {
  for (int i = 0; i < writes; ++i) {
    co_await r.write(p, slot, written_value(slot, i));
  }
  (void)co_await r.read(p);
}

std::unique_ptr<sim::Adversary> make_adversary(const Scenario& s) {
  if (s.adversary == AdversaryKind::kRandom) {
    // Decorrelate the schedule stream from the scheduler's coin stream.
    return std::make_unique<sim::RandomAdversary>(s.seed * kFnvPrime + 1);
  }
  return std::make_unique<sim::RoundRobinAdversary>();
}

/// The stall axis's single seed derivation: everything the axis
/// randomizes (victim choice AND the stalling adversary's own stream)
/// keys off this one mix of (scenario seed, fault seed), so the two can
/// never silently decorrelate.
std::uint64_t stall_mix(const Scenario& s) {
  std::uint64_t mix = kFnvOffset;
  fnv_mix_u64(mix, s.seed);
  fnv_mix_u64(mix, s.faults.seed);
  return mix;
}

/// Victims of a kStall plan: a seeded strict minority, a pure function
/// of (scenario seed, fault seed) via the shared picker — the same
/// processes stall for the same seeds in the termination lab.
std::vector<sim::ProcessId> plan_stalls(const Scenario& s) {
  if (s.faults.kind != FaultKind::kStall) return {};
  return sim::pick_strict_minority(s.processes, stall_mix(s));
}

/// How a simulator run was driven and how it ended.
struct SimDrive {
  sim::RunOutcome outcome = sim::RunOutcome::kStopped;
  std::vector<sim::ProcessId> stalled;  ///< kStall victims (may be empty).
};

/// Runs `sched` under the scenario's adversary.  With an active kStall
/// plan, each victim first takes ONE step (so its first operation is
/// live — under interval semantics it stays pending forever, which is
/// the interesting case for the checker) and is then never scheduled
/// again; the surviving actions follow the scenario's adversary policy.
/// A non-null `policy` (exploration) replaces the adversary axis
/// entirely; run_scenario_policy rejects fault plans up front.
SimDrive drive_sim(const Scenario& s, sim::Scheduler& sched,
                   sim::SchedulePolicy* policy) {
  SimDrive d;
  if (policy != nullptr) {
    sim::PolicyAdversary adv(*policy);
    d.outcome = sched.run(adv, s.max_actions);
    return d;
  }
  d.stalled = plan_stalls(s);
  if (d.stalled.empty()) {
    auto adv = make_adversary(s);
    d.outcome = sched.run(*adv, s.max_actions);
    return d;
  }
  for (const sim::ProcessId p : d.stalled) {
    sched.apply(sim::Action::step(p));
  }
  sim::StallingAdversary adv(
      d.stalled, stall_mix(s) * kFnvPrime + 1,
      s.adversary == AdversaryKind::kRandom
          ? sim::StallingAdversary::Policy::kRandom
          : sim::StallingAdversary::Policy::kRoundRobin);
  d.outcome = sched.run(adv, s.max_actions);
  return d;
}

/// Applies the checks the scenario's semantics promise, on the
/// single-register high-level history `h`.  Pending ops are fine: the
/// solver includes pending writes as possibly-effective and never
/// includes pending reads (lin_solver.hpp), so a history cut short by a
/// crash or a budget is checked on its completed prefix with the
/// stranded ops as overlays.
void check_history(const History& h, bool expect_wsl, bool online,
                   ScenarioResult& out) {
  const checker::LinCheckResult lin = checker::check_linearizable(h);
  if (online) {
    // Differential gate: replay the history through the streaming
    // checker and demand verdict agreement with the batch solver.  Any
    // split is a checker bug (either side), which must surface loudly
    // rather than silently trusting one of the two.
    const checker::StreamingChecker sc = checker::check_stream(h);
    if (obs::enabled()) {
      obs::count(obs::Counter::kStreamEvents, sc.events_processed());
      obs::count(obs::Counter::kStreamCollapses, sc.collapses());
      obs::count(obs::Counter::kStreamSolverCalls, sc.solver_calls());
      obs::count(obs::Counter::kStreamRetiredOps, sc.retired_ops());
      obs::gauge_max(obs::Gauge::kStreamPeakLiveOps, sc.peak_live_ops());
      obs::hist(obs::Hist::kStreamPeakLive, sc.peak_live_ops());
    }
    if (!sc.error().empty()) {
      out.verdict = Verdict::kError;
      out.detail = "online checker could not validate the stream: " +
                   sc.error();
      return;
    }
    if (sc.ok() != lin.ok) {
      out.verdict = Verdict::kError;
      std::ostringstream os;
      os << "online/batch checker disagreement: streaming "
         << (sc.ok() ? std::string("accepts")
                     : "rejects (event " +
                           std::to_string(sc.first_violation_event()) + ")")
         << " but batch " << (lin.ok ? "accepts" : "rejects");
      out.detail = os.str();
      return;
    }
  }
  if (!lin.ok) {
    out.verdict = Verdict::kViolation;
    out.detail = "linearizability violated: " + lin.error;
    return;
  }
  if (expect_wsl) {
    const checker::WslCheckResult wsl =
        checker::check_write_strong_linearizable(h);
    if (obs::enabled()) {
      obs::count(obs::Counter::kWslSolverCalls, wsl.solver_calls);
      obs::count(obs::Counter::kWslCacheHits, wsl.cache_hits);
      obs::count(obs::Counter::kWslCacheMisses, wsl.cache_misses);
    }
    if (!wsl.ok) {
      out.verdict = Verdict::kViolation;
      out.detail = "write strong-linearizability violated: " +
                   wsl.explanation;
      return;
    }
  }
  out.verdict = Verdict::kOk;
}

void finish_sim(const Scenario& s, sim::Scheduler& sched, const SimDrive& d,
                const History& h, bool expect_wsl, ScenarioResult& out) {
  const bool online = s.online_check;
  out.steps = sched.actions_applied();
  out.ops = h.completed_count();
  out.history_hash = hash_history(h);
  RunEnd end = RunEnd::kCompleted;
  std::string end_detail;
  if (d.outcome != sim::RunOutcome::kAllDone) {
    // With an active stall plan the adversary stops (kStopped) once only
    // stalled processes have enabled actions.  If every live process is
    // done, that is the stall axis doing its job — the stranded work can
    // never finish under this adversary — and classifies kBlocked, like
    // a crash-stranded ABD run.  Anything else is a genuine early end.
    bool live_all_done = !d.stalled.empty();
    for (int p = 0; live_all_done && p < sched.process_count(); ++p) {
      const bool stalled = std::find(d.stalled.begin(), d.stalled.end(),
                                     p) != d.stalled.end();
      if (!stalled && !sched.process_done(p)) live_all_done = false;
    }
    if (d.outcome == sim::RunOutcome::kStopped && live_all_done) {
      end = RunEnd::kBlocked;
      std::ostringstream os;
      os << "blocked: " << d.stalled.size()
         << " process(es) stalled by the adversary with "
         << (h.ops().size() - h.completed_count())
         << " pending op(s); every live process finished";
      end_detail = os.str();
    } else {
      end = RunEnd::kBudget;
      end_detail = std::string("run ended early: ") + sim::to_string(d.outcome);
    }
  }
  classify_run(h, expect_wsl, end, end_detail, out, online);
  if (s.forensics && out.verdict != Verdict::kOk) {
    // Sim families have no message substrate: the artifact carries the
    // op spans (stalled pending ops included) and, on violations, the
    // re-verified minimal certificate.
    const obs::ForensicsCapture cap;
    out.forensics = obs::build_artifact(s.key(), to_string(out.verdict),
                                        out.detail, h, cap);
  }
}

void run_modeled(const Scenario& s, sim::SchedulePolicy* policy,
                 ScenarioResult& out) {
  sim::Scheduler sched(s.seed);
  sched.add_register(0, s.semantics, 0);
  for (int p = 0; p < s.processes; ++p) {
    const int writes = s.writes_per_process;
    sched.add_process("p" + std::to_string(p), [p, writes](sim::Proc& pr) {
      return modeled_proc(pr, p, writes);
    });
  }
  const SimDrive d = drive_sim(s, sched, policy);
  finish_sim(s, sched, d, sched.global_history(),
             s.semantics == sim::Semantics::kWriteStrong, out);
}

/// Drives Algorithm 2 (`expect_wsl=true`, per Theorem 10) or Algorithm 4
/// (`expect_wsl=false`: Theorem 13 denies WSL as a set property, so only
/// plain linearizability is asserted per run).
template <class Reg>
void run_implemented(const Scenario& s, bool expect_wsl,
                     sim::SchedulePolicy* policy, ScenarioResult& out) {
  sim::Scheduler sched(s.seed);
  Reg reg(sched, s.processes, /*first_base=*/100, /*initial=*/0);
  for (int p = 0; p < s.processes; ++p) {
    const int writes = s.writes_per_process;
    sched.add_process("p" + std::to_string(p),
                      [&reg, p, writes](sim::Proc& pr) {
                        return implemented_proc(pr, reg, p, writes);
                      });
  }
  const SimDrive d = drive_sim(s, sched, policy);
  finish_sim(s, sched, d, reg.hl_history(), expect_wsl, out);
}

/// A node's crash moment, decided up front from the scenario's FaultPlan.
struct PlannedCrash {
  std::uint64_t at = 0;   ///< Driver iteration at which the node dies.
  mp::NodeId victim = -1;
};

/// The fault axis's seed derivation.  kMinorityCrash keeps its
/// historical (scenario seed, fault seed) mix — pre-existing crash
/// digests depend on it — while every newer kind folds in a kind salt
/// so fault schedules never alias across kinds.
std::uint64_t fault_mix(const Scenario& s) {
  std::uint64_t mix = kFnvOffset;
  fnv_mix_u64(mix, s.seed);
  fnv_mix_u64(mix, s.faults.seed);
  if (s.faults.active() && s.faults.kind != FaultKind::kMinorityCrash) {
    fnv_mix_u64(mix, static_cast<std::uint64_t>(s.faults.kind));
  }
  return mix;
}

/// Horizon ≈ total ops × per-op delivery cost (reads cost up to 4n
/// messages plus the start itself).  Crash times, cut/heal times and
/// recovery delays are spread over it — some schedules hit
/// mid-protocol, some only after everything finished (degenerating to
/// a fault-free run).
std::uint64_t abd_horizon(const Scenario& s) {
  const std::uint64_t total_ops = static_cast<std::uint64_t>(
      s.writes_per_process + 1 + 2 * (s.processes - 1));
  return total_ops * (4 * static_cast<std::uint64_t>(s.processes) + 2) + 1;
}

/// Draws `count` distinct victims via a partial Fisher-Yates over the
/// node ids (the fault planners' shared victim picker).
std::vector<mp::NodeId> pick_victims(int processes, int count,
                                     util::Rng& rng) {
  std::vector<mp::NodeId> ids(static_cast<std::size_t>(processes));
  for (int i = 0; i < processes; ++i) ids[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < count; ++i) {
    const std::size_t j =
        static_cast<std::size_t>(i) +
        static_cast<std::size_t>(rng.uniform(
            static_cast<std::uint64_t>(processes - i)));
    std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
  }
  ids.resize(static_cast<std::size_t>(count));
  return ids;
}

/// Expands a minority-crash FaultPlan into concrete (time, victim) pairs.  Crash count
/// is a strict minority (1..⌊(n-1)/2⌋, so a write/read quorum of live
/// servers always remains), victims are distinct, and times are spread
/// over the horizon.  Purely a function of (scenario, plan).  The rng
/// draw order (count, then per-victim swap + time) is digest material:
/// pre-fault-fabric minority digests depend on it.
std::vector<PlannedCrash> plan_crashes(const Scenario& s) {
  std::vector<PlannedCrash> out;
  if (s.faults.kind != FaultKind::kMinorityCrash) return out;
  const int max_crashes = (s.processes - 1) / 2;
  if (max_crashes == 0) return out;  // n <= 2: no strict minority to kill
  util::Rng crash_rng(fault_mix(s));
  const int count =
      1 + static_cast<int>(crash_rng.uniform(
              static_cast<std::uint64_t>(max_crashes)));
  std::vector<mp::NodeId> ids(static_cast<std::size_t>(s.processes));
  for (int i = 0; i < s.processes; ++i) ids[static_cast<std::size_t>(i)] = i;
  const std::uint64_t horizon = abd_horizon(s);
  for (int i = 0; i < count; ++i) {
    const std::size_t j =
        static_cast<std::size_t>(i) +
        static_cast<std::size_t>(crash_rng.uniform(
            static_cast<std::uint64_t>(s.processes - i)));
    std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
    PlannedCrash c;
    c.at = crash_rng.uniform(horizon);
    c.victim = ids[static_cast<std::size_t>(i)];
    out.push_back(c);
  }
  // Apply in deterministic (time, victim) order.
  std::sort(out.begin(), out.end(),
            [](const PlannedCrash& a, const PlannedCrash& b) {
              return a.at != b.at ? a.at < b.at : a.victim < b.victim;
            });
  return out;
}

/// Per-message duplication rate for kDuplicate (fixed; the axis swept
/// is the fault seed, not the rate).
constexpr std::uint32_t kDupPermille = 250;

/// What the unreliable-network kinds planned for one ABD run.  Send-
/// attempt crash thresholds (kMajorityCrash / kCrashRecovery — the
/// mid-broadcast crash mechanism) are scheduled directly on the
/// Network; everything iteration-based lives here for the driver loop.
struct AbdFaultFabric {
  /// Arm AbdRegister::enable_fault_tolerance (retransmission + dedup).
  bool fault_tolerant = false;
  // kPartition: cut [cut_at, heal_at) over `side`.
  bool has_partition = false;
  std::uint64_t cut_at = 0;
  std::uint64_t heal_at = 0;
  std::vector<std::uint8_t> side;
  // kCrashRecovery: per-node recovery delay (0 = not a victim); the
  // recovery is scheduled `delay` iterations after the driver OBSERVES
  // the crash (send-attempt thresholds fire between loop tops).
  std::vector<std::uint64_t> recover_delay;
};

/// Plans the unreliable-network fault kinds: arms the Network fabric
/// (loss/duplication coins, send-attempt crash thresholds) and returns
/// the iteration-based remainder.  A pure function of (scenario, plan);
/// kNone/kMinorityCrash/kStall leave the network untouched.
AbdFaultFabric plan_fabric(const Scenario& s, mp::Network& net) {
  AbdFaultFabric f;
  const int n = s.processes;
  util::Rng rng(fault_mix(s));
  switch (s.faults.kind) {
    case FaultKind::kNone:
    case FaultKind::kMinorityCrash:
    case FaultKind::kStall:
      break;
    case FaultKind::kLossy:
      net.make_unreliable(s.faults.param, 0, rng.next_u64());
      f.fault_tolerant = true;
      break;
    case FaultKind::kDuplicate:
      net.make_unreliable(0, kDupPermille, rng.next_u64());
      f.fault_tolerant = true;
      break;
    case FaultKind::kPartition: {
      if (n < 2) break;  // one node cannot be cut from itself
      const std::uint64_t horizon = abd_horizon(s);
      f.has_partition = true;
      f.cut_at = rng.uniform(horizon);
      f.heal_at = f.cut_at + 1 + rng.uniform(horizon);
      f.side.assign(static_cast<std::size_t>(n), 0);
      const int minority =
          1 + static_cast<int>(rng.uniform(
                  static_cast<std::uint64_t>(n - 1)));
      for (const mp::NodeId v : pick_victims(n, minority, rng)) {
        f.side[static_cast<std::size_t>(v)] = 1;
      }
      f.fault_tolerant = true;
      break;
    }
    case FaultKind::kMajorityCrash: {
      // Between a quorum and all n nodes die, each at a send-attempt
      // threshold in [1, n+1] — within or right after the run's first
      // broadcast, so no op can assemble a quorum of replies first and
      // blocking is certain.  Thresholds inside a broadcast land the
      // crash between its sends.
      const int q = n / 2 + 1;
      const int count =
          q + static_cast<int>(rng.uniform(
                  static_cast<std::uint64_t>(n - q + 1)));
      const std::vector<mp::NodeId> victims = pick_victims(n, count, rng);
      std::vector<PlannedCrash> at_send;
      for (const mp::NodeId v : victims) {
        PlannedCrash c;
        c.at = 1 + rng.uniform(static_cast<std::uint64_t>(n) + 1);
        c.victim = v;
        at_send.push_back(c);
      }
      std::sort(at_send.begin(), at_send.end(),
                [](const PlannedCrash& a, const PlannedCrash& b) {
                  return a.at != b.at ? a.at < b.at : a.victim < b.victim;
                });
      for (const PlannedCrash& c : at_send) {
        net.schedule_crash_at_send(c.victim, c.at);
      }
      break;
    }
    case FaultKind::kCrashRecovery: {
      const int max_crashes = (n - 1) / 2;
      if (max_crashes == 0) break;
      const int count =
          1 + static_cast<int>(rng.uniform(
                  static_cast<std::uint64_t>(max_crashes)));
      const std::uint64_t horizon = abd_horizon(s);
      const std::vector<mp::NodeId> victims = pick_victims(n, count, rng);
      f.recover_delay.assign(static_cast<std::size_t>(n), 0);
      std::vector<PlannedCrash> at_send;
      for (const mp::NodeId v : victims) {
        PlannedCrash c;
        c.at = 1 + rng.uniform(horizon);
        c.victim = v;
        at_send.push_back(c);
        f.recover_delay[static_cast<std::size_t>(v)] =
            1 + rng.uniform(horizon / 2 + 1);
      }
      std::sort(at_send.begin(), at_send.end(),
                [](const PlannedCrash& a, const PlannedCrash& b) {
                  return a.at != b.at ? a.at < b.at : a.victim < b.victim;
                });
      for (const PlannedCrash& c : at_send) {
        net.schedule_crash_at_send(c.victim, c.at);
      }
      f.fault_tolerant = true;
      break;
    }
  }
  return f;
}

void run_abd(const Scenario& s, sim::SchedulePolicy* policy,
             ScenarioResult& out) {
  // Node 0 is the (single) writer; every node finishes with reads.  The
  // per-node programs are fixed; the adversary controls when operations
  // start and in which order messages are delivered, and the fault plan
  // may kill nodes at seeded moments, drop/duplicate messages, cut the
  // network in two, or crash-and-recover nodes mid-protocol.
  mp::Network net;
  mp::AbdRegister reg(net, s.processes, /*writer=*/0, /*initial=*/0,
                      s.abd_read_write_back);
  // Forensics timeline: a passive NetObserver recording every network
  // event in driver order, plus driver-level fault notes.  Attached only
  // when the scenario asks for forensics — zero overhead otherwise, and
  // never any behavior change (the fabric Rng streams are untouched).
  obs::TimelineRecorder timeline;
  if (s.forensics) net.set_observer(&timeline);
  util::Rng rng(s.seed * kFnvPrime + 2);
  const std::vector<PlannedCrash> crashes = plan_crashes(s);
  const AbdFaultFabric fab = plan_fabric(s, net);
  const bool menu_faults = s.explore_faults && policy != nullptr;
  if (fab.fault_tolerant || menu_faults) {
    reg.enable_fault_tolerance(fault_mix(s) * kFnvPrime + 3);
  }

  struct Program {
    std::deque<Value> writes;  ///< Remaining writes (writer node only).
    int reads = 0;             ///< Remaining reads.
    int token = -1;            ///< In-flight op token, -1 if none.
  };
  std::vector<Program> prog(static_cast<std::size_t>(s.processes));
  for (int i = 0; i < s.writes_per_process; ++i) {
    prog[0].writes.push_back(written_value(0, i));
  }
  for (int n = 0; n < s.processes; ++n) {
    prog[static_cast<std::size_t>(n)].reads = (n == 0) ? 1 : 2;
  }

  auto idle_with_work = [&](int n) {
    Program& pr = prog[static_cast<std::size_t>(n)];
    if (pr.token >= 0) return false;
    return !pr.writes.empty() || pr.reads > 0;
  };
  // Every token ever started, in begin order (forensics only): the
  // quorum ledger must cover abandoned ops too, whose Program token was
  // cleared when their home crashed.
  std::vector<int> token_log;
  auto start_op = [&](int n) {
    Program& pr = prog[static_cast<std::size_t>(n)];
    if (!pr.writes.empty()) {
      pr.token = reg.begin_write(pr.writes.front());
      pr.writes.pop_front();
    } else {
      pr.token = reg.begin_read(n);
      --pr.reads;
    }
    if (s.forensics) token_log.push_back(pr.token);
  };

  int rr_next = 0;
  std::uint64_t iterations = 0;
  std::size_t next_crash = 0;
  // Crash-recovery bookkeeping: send-attempt crashes fire between loop
  // tops, so the driver observes them here, abandons the victim's
  // in-flight op and schedules the recovery.
  const bool observe_crashes = !fab.recover_delay.empty() || menu_faults;
  std::vector<bool> crash_observed(static_cast<std::size_t>(s.processes),
                                   false);
  std::vector<std::uint64_t> recover_at(
      static_cast<std::size_t>(s.processes), 0);
  bool cut_active = false;
  bool cut_applied = false;
  // Explore fault-menu budgets: drops/duplicates charge per-run message
  // budgets; crashes stay a strict minority for the whole run (so a
  // live quorum — and therefore retransmission eligibility — always
  // survives and the adversary cannot trivially block the run).
  std::uint64_t menu_drops =
      menu_faults ? 2 * static_cast<std::uint64_t>(s.processes) : 0;
  std::uint64_t menu_dups =
      menu_faults ? static_cast<std::uint64_t>(s.processes) : 0;
  int menu_crashes_left = menu_faults ? (s.processes - 1) / 2 : 0;
  RunEnd end = RunEnd::kCompleted;
  std::string end_detail;
  std::vector<obs::LedgerEntry> ledger;
  for (;;) {
    // Partition cut/heal due at this moment.
    if (fab.has_partition) {
      if (!cut_applied && iterations >= fab.cut_at) {
        net.set_partition(fab.side);
        cut_applied = true;
        cut_active = true;
        if (s.forensics) {
          std::ostringstream os;
          os << "partition cut {";
          for (std::size_t i = 0; i < fab.side.size(); ++i) {
            if (fab.side[i] == 0) os << ' ' << i;
          }
          os << " }|{";
          for (std::size_t i = 0; i < fab.side.size(); ++i) {
            if (fab.side[i] != 0) os << ' ' << i;
          }
          os << " } at iteration " << iterations;
          timeline.note_fault(os.str());
        }
      }
      if (cut_active && iterations >= fab.heal_at) {
        net.heal_partition();
        cut_active = false;
        if (s.forensics) {
          timeline.note_fault("partition healed at iteration " +
                              std::to_string(iterations));
        }
      }
    }
    // Fire crashes due at this moment.  A crashed node abandons the rest
    // of its program: it starts nothing, and its in-flight operation (if
    // any) is stranded — quorum replies can never reach it.
    while (next_crash < crashes.size() &&
           crashes[next_crash].at <= iterations) {
      net.crash(crashes[next_crash].victim);
      ++next_crash;
    }
    // Crash-recovery semantics: observe new crashes (abandon the
    // victim's op, schedule the recovery) and fire recoveries that are
    // due (durable server state survives, volatile state resets).  A
    // victim caught with an op in flight retires its remaining client
    // program for good: the abandoned op stays pending in its history
    // forever, so a later op by the same process would make the history
    // malformed (per-process ops must be sequential) — the recovered
    // node rejoins as a server participant only.  A victim that was
    // idle between ops resumes its program after recovery.
    if (observe_crashes) {
      for (int n = 0; n < s.processes; ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (net.crashed(n) && !crash_observed[ni]) {
          crash_observed[ni] = true;
          reg.abandon_ops_on(n);
          const int tok = prog[ni].token;
          if (tok >= 0 && !reg.done(tok)) {
            prog[ni].writes.clear();
            prog[ni].reads = 0;
          }
          prog[ni].token = -1;
          if (!fab.recover_delay.empty() && fab.recover_delay[ni] > 0) {
            recover_at[ni] = iterations + fab.recover_delay[ni];
          }
        }
        if (recover_at[ni] > 0 && iterations >= recover_at[ni]) {
          net.recover(n);
          reg.on_recover(n);
          recover_at[ni] = 0;
          crash_observed[ni] = false;
        }
      }
    }
    // Retransmission timers (no-op unless fault tolerance is armed).
    reg.tick_retransmit(iterations);
    // Retire finished operations.
    for (Program& pr : prog) {
      if (pr.token >= 0 && reg.done(pr.token)) pr.token = -1;
    }
    std::vector<int> startable;
    for (int n = 0; n < s.processes; ++n) {
      if (!net.crashed(n) && idle_with_work(n)) startable.push_back(n);
    }
    const bool flying = net.in_flight() > 0;
    if (startable.empty() && !flying) {
      // Quiescent — but a future fabric event (the partition heal, a
      // scheduled recovery, a retransmission timer) may still unblock
      // the run: fast-forward the driver clock to the earliest one
      // instead of misclassifying the lull as a block.
      std::optional<std::uint64_t> next_event;
      auto consider = [&next_event](std::uint64_t t) {
        if (!next_event || t < *next_event) next_event = t;
      };
      if (cut_active) consider(fab.heal_at);
      for (const std::uint64_t at : recover_at) {
        if (at > 0) consider(at);
      }
      if (const auto due = reg.next_retransmit_due()) consider(*due);
      if (next_event) {
        if (*next_event > s.max_actions) {
          end = RunEnd::kBudget;
          end_detail = "ABD driver exhausted its action budget";
          break;
        }
        iterations = std::max(iterations + 1, *next_event);
        continue;
      }
      // Genuine block: no delivery, start, or fabric event can ever
      // complete the pending work — every pending op was abandoned by a
      // crash, lives on a crashed node, or cannot assemble a live
      // quorum.
      if (reg.pending_ops() > 0) {
        end = RunEnd::kBlocked;
        const int abandoned = reg.abandoned_ops();
        int on_crashed = 0;
        int no_quorum = 0;
        for (int n = 0; n < s.processes; ++n) {
          const int tok = prog[static_cast<std::size_t>(n)].token;
          if (tok < 0 || reg.op_can_complete(tok)) continue;
          if (net.crashed(reg.op_node(tok))) {
            ++on_crashed;
          } else {
            ++no_quorum;  // home alive but live servers < quorum
          }
        }
        std::ostringstream os;
        if (abandoned > 0) {
          os << "blocked: quiescent with " << reg.pending_ops()
             << " pending op(s) (" << abandoned
             << " abandoned by crash-recovery, " << on_crashed
             << " on crashed nodes, " << no_quorum
             << " without a live quorum); " << net.live_count() << "/"
             << s.processes << " nodes live";
        } else {
          os << "blocked: quiescent with " << reg.pending_ops()
             << " pending op(s) (" << on_crashed << " on crashed nodes, "
             << no_quorum << " without a live quorum); " << net.live_count()
             << "/" << s.processes << " nodes live";
        }
        end_detail = os.str();
        // Quorum ledger: one entry per op that will never complete —
        // which servers acked its stuck phase, and the named fault
        // event that cut it off.  token_log covers abandoned ops whose
        // Program slot was already cleared.  Token == history op id:
        // both counters advance exactly once per begin_*.
        if (s.forensics) {
          for (const int tok : token_log) {
            if (reg.done(tok)) continue;
            obs::LedgerEntry le;
            le.token = tok;
            le.op_id = tok;
            le.node = reg.op_node(tok);
            le.phase = reg.op_phase_name(tok);
            const std::uint64_t mask = reg.op_heard_mask(tok);
            for (int b = 0; b < s.processes; ++b) {
              if ((mask >> b) & 1u) le.acks.push_back(b);
            }
            le.quorum = reg.quorum();
            le.n = s.processes;
            le.abandoned = reg.op_abandoned(tok);
            if (le.abandoned) {
              le.cause = "abandoned-by-crash-recovery";
              le.cut_by = timeline.last_fault_touching(le.node);
            } else if (net.crashed(le.node)) {
              le.cause = "home-node-crashed";
              le.cut_by = timeline.last_fault_touching(le.node);
            } else {
              le.cause = "no-live-quorum";
              le.cut_by = timeline.last_fault_touching(-1);
            }
            ledger.push_back(std::move(le));
          }
        }
      }
      break;
    }
    if (++iterations > s.max_actions) {
      end = RunEnd::kBudget;
      end_detail = "ABD driver exhausted its action budget";
      break;
    }
    if (policy != nullptr) {
      // Exploration: the policy picks from the full structural menu —
      // every startable operation, then every in-flight message (then,
      // with explore_faults, the admissible fault injections) — which
      // is strictly more adversarial than either seeded schedule below.
      sim::SplitMenu menu;
      menu.start_nodes.reserve(startable.size());
      for (const int n : startable) {
        menu.start_nodes.push_back(static_cast<std::int32_t>(n));
      }
      menu.deliveries.reserve(net.in_flight());
      for (const mp::Message& m : net.in_flight_messages()) {
        menu.deliveries.push_back({static_cast<std::int32_t>(m.from),
                                   static_cast<std::int32_t>(m.to), m.type});
      }
      if (menu_faults) {
        using Fault = sim::SplitMenu::Fault;
        const std::size_t fly = net.in_flight();
        if (menu_drops > 0) {
          for (std::size_t j = 0; j < fly; ++j) {
            menu.faults.push_back(
                {Fault::Kind::kDrop, static_cast<std::int32_t>(j)});
          }
        }
        if (menu_dups > 0) {
          for (std::size_t j = 0; j < fly; ++j) {
            menu.faults.push_back(
                {Fault::Kind::kDuplicate, static_cast<std::int32_t>(j)});
          }
        }
        for (int n = 0; n < s.processes; ++n) {
          if (menu_crashes_left > 0 && !net.crashed(n)) {
            menu.faults.push_back(
                {Fault::Kind::kCrash, static_cast<std::int32_t>(n)});
          }
          if (net.crashed(n)) {
            menu.faults.push_back(
                {Fault::Kind::kRecover, static_cast<std::int32_t>(n)});
          }
        }
      }
      const std::size_t idx = policy->pick_split(menu);
      RLT_CHECK_MSG(idx < menu.size(),
                    "schedule policy picked outside the ABD menu");
      const std::size_t nstarts = menu.start_nodes.size();
      const std::size_t ndeliveries = menu.deliveries.size();
      if (idx < nstarts) {
        start_op(startable[idx]);
      } else if (idx < nstarts + ndeliveries) {
        net.deliver_at(idx - nstarts);
      } else {
        const sim::SplitMenu::Fault fc =
            menu.faults[idx - nstarts - ndeliveries];
        const auto arg = static_cast<std::size_t>(fc.arg);
        switch (fc.kind) {
          case sim::SplitMenu::Fault::Kind::kDrop:
            net.drop_at(arg);
            --menu_drops;
            break;
          case sim::SplitMenu::Fault::Kind::kDuplicate:
            net.duplicate_at(arg);
            --menu_dups;
            break;
          case sim::SplitMenu::Fault::Kind::kCrash:
            // Abandonment/recovery bookkeeping happens at the next loop
            // top, exactly like a planned send-attempt crash.
            net.crash(fc.arg);
            --menu_crashes_left;
            break;
          case sim::SplitMenu::Fault::Kind::kRecover:
            net.recover(fc.arg);
            reg.on_recover(fc.arg);
            crash_observed[arg] = false;
            break;
        }
      }
    } else if (s.adversary == AdversaryKind::kRoundRobin) {
      // Conservative schedule: drain the network oldest-first; start
      // operations round-robin only when it is quiet.
      if (flying) {
        net.deliver_at(0);
      } else {
        while (net.crashed(rr_next) || !idle_with_work(rr_next)) {
          rr_next = (rr_next + 1) % s.processes;
        }
        start_op(rr_next);
        rr_next = (rr_next + 1) % s.processes;
      }
    } else {
      // Random schedule: bias toward deliveries, but keep starting new
      // operations while messages fly so operations genuinely overlap.
      const bool start = !startable.empty() && (!flying || rng.chance(1, 3));
      if (start) {
        start_op(startable[rng.uniform(startable.size())]);
      } else {
        net.deliver_random(rng);
      }
    }
  }

  const History& h = reg.hl_history();
  // steps = envelopes consumed off the wire: the historical "delivered"
  // count before the fabric split honest delivery from drops, so
  // fault-free and minority-crash digests are unchanged.
  out.steps = net.messages_consumed();
  out.net_delivered = net.messages_delivered();
  out.net_dropped = net.messages_dropped();
  out.net_duplicated = net.messages_duplicated();
  out.net_msgs = net.messages_sent();
  out.net_bytes = net.bytes_sent();
  out.net_round_trips = reg.round_trips();
  if (obs::enabled()) {
    obs::count(obs::Counter::kNetMsgsSent, net.messages_sent());
    obs::count(obs::Counter::kNetBytesSent, net.bytes_sent());
    obs::count(obs::Counter::kNetDelivered, net.messages_delivered());
    obs::count(obs::Counter::kNetDropped, net.messages_dropped());
    obs::count(obs::Counter::kNetDuplicated, net.messages_duplicated());
    obs::count(obs::Counter::kNetRetransmits, reg.retransmits());
    obs::count(obs::Counter::kAbdRoundTrips, reg.round_trips());
  }
  out.ops = h.completed_count();
  out.history_hash = hash_history(h);
  // Theorem 14: linearizable SWMR implementations (ABD included) are
  // write strongly-linearizable, so both checks must pass — on every
  // exit path, so a violation in a blocked or budget-exhausted schedule
  // is never masked by the early-exit classification.
  classify_run(h, /*expect_wsl=*/true, end, end_detail, out, s.online_check);
  if (s.forensics && out.verdict != Verdict::kOk) {
    obs::ForensicsCapture cap;
    cap.timeline = &timeline;
    cap.ledger = std::move(ledger);
    out.forensics = obs::build_artifact(s.key(), to_string(out.verdict),
                                        out.detail, h, cap);
  }
  net.set_observer(nullptr);
}

}  // namespace

const char* to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kModeled: return "modeled";
    case Algorithm::kAlg2: return "alg2";
    case Algorithm::kAlg4: return "alg4";
    case Algorithm::kAbd: return "abd";
  }
  return "?";
}

const char* to_string(AdversaryKind a) noexcept {
  switch (a) {
    case AdversaryKind::kRandom: return "rand";
    case AdversaryKind::kRoundRobin: return "rr";
  }
  return "?";
}

const char* to_string(FaultKind f) noexcept {
  switch (f) {
    case FaultKind::kNone: return "none";
    case FaultKind::kMinorityCrash: return "minority";
    case FaultKind::kStall: return "stall";
    case FaultKind::kLossy: return "lossy";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kMajorityCrash: return "majority";
    case FaultKind::kCrashRecovery: return "recovery";
  }
  return "?";
}

bool fault_applies(FaultKind f, Algorithm a) noexcept {
  switch (f) {
    case FaultKind::kNone:
      return true;
    case FaultKind::kStall:
      return a != Algorithm::kAbd;
    case FaultKind::kMinorityCrash:
    case FaultKind::kLossy:
    case FaultKind::kDuplicate:
    case FaultKind::kPartition:
    case FaultKind::kMajorityCrash:
    case FaultKind::kCrashRecovery:
      return a == Algorithm::kAbd;
  }
  return false;
}

const char* to_string(Verdict v) noexcept {
  switch (v) {
    // Upper case marks verdicts that fail the sweep; "blocked" is an
    // expected outcome of the crash axis (it only fails checks if the
    // history up to the block was wrong, which reports as VIOLATION).
    case Verdict::kOk: return "ok";
    case Verdict::kViolation: return "VIOLATION";
    case Verdict::kBlocked: return "blocked";
    case Verdict::kError: return "ERROR";
  }
  return "?";
}

std::optional<Verdict> verdict_from_string(std::string_view s) noexcept {
  if (s == "ok") return Verdict::kOk;
  if (s == "VIOLATION") return Verdict::kViolation;
  if (s == "blocked") return Verdict::kBlocked;
  if (s == "ERROR") return Verdict::kError;
  return std::nullopt;
}

std::string Scenario::key() const {
  std::ostringstream os;
  os << to_string(algorithm);
  if (algorithm == Algorithm::kModeled) {
    os << '-' << sim::to_string(semantics);
  }
  os << '/' << to_string(adversary) << "/p" << processes << "/w"
     << writes_per_process;
  // Defaulted knobs add nothing: crash-free keys are byte-identical to
  // their pre-fault-axis spelling (pinned digests depend on this).
  if (!abd_read_write_back) os << "/nowb";
  if (faults.active()) {
    os << "/f" << to_string(faults.kind);
    if (faults.param != 0) os << "-d" << faults.param;
    os << "-c" << faults.seed;
  }
  if (explore_faults) os << "/fmenu";
  os << "/seed" << seed;
  return os.str();
}

void classify_run(const History& h, bool expect_wsl, RunEnd end,
                  const std::string& end_detail, ScenarioResult& out,
                  bool online) {
  // Attributes the checker's share of the scenario wall time on every
  // exit path (check_ns <= wall_ns; measured, never digest material).
  struct CheckTimer {
    ScenarioResult& out;
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    ~CheckTimer() {
      out.check_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
  };
  const CheckTimer timer{out};
  // The backtracking solver handles at most 64 ops per register; sweep
  // workloads stay far below that, but a programmatic caller could
  // exceed it.  Degrade to "unvalidated" rather than throw.
  bool checkable = true;
  for (const history::RegisterId reg : h.registers()) {
    std::size_t ops_on_reg = 0;
    for (const history::OpRecord& op : h.ops()) {
      if (op.reg == reg) ++ops_on_reg;
    }
    if (ops_on_reg > 64) checkable = false;
  }
  if (checkable) {
    check_history(h, expect_wsl, online, out);
    if (out.verdict == Verdict::kViolation) {
      // The violation wins; keep the early-exit context for diagnosis.
      if (!end_detail.empty()) out.detail += " [" + end_detail + "]";
      return;
    }
    if (online && out.verdict == Verdict::kError) {
      // A checker disagreement (or an unvalidatable stream) outranks the
      // early-exit classification the same way a violation does.
      if (!end_detail.empty()) out.detail += " [" + end_detail + "]";
      return;
    }
  }
  switch (end) {
    case RunEnd::kCompleted:
      if (!checkable) {
        out.verdict = Verdict::kError;
        out.detail = "history exceeds the solver's 64-op/register limit";
      }
      break;  // otherwise check_history's kOk stands
    case RunEnd::kBlocked:
      out.verdict = Verdict::kBlocked;
      out.detail = end_detail;
      if (checkable) out.detail += " (history up to the block checked clean)";
      break;
    case RunEnd::kBudget:
      out.verdict = Verdict::kError;
      out.detail = end_detail;
      if (checkable) out.detail += " (completed prefix checked clean)";
      break;
  }
}

std::uint64_t hash_history(const History& h) {
  // Mixes every op — including invocation-only (pending) ones, whose
  // response mixes as kNoTime and whose read value is the deterministic
  // pending sentinel (0) — so crash-stranded ops change the fingerprint
  // exactly like completed ones.  Completed histories hash byte-for-byte
  // as they did before the crash axis existed.
  std::uint64_t out = kFnvOffset;
  for (const history::RegisterId reg : h.registers()) {
    fnv_mix_u64(out, static_cast<std::uint64_t>(reg));
    fnv_mix_u64(out, static_cast<std::uint64_t>(h.initial(reg)));
  }
  for (const history::OpRecord& op : h.ops()) {
    fnv_mix_u64(out, static_cast<std::uint64_t>(op.process));
    fnv_mix_u64(out, static_cast<std::uint64_t>(op.reg));
    fnv_mix_u64(out, op.kind == history::OpKind::kWrite ? 1 : 0);
    fnv_mix_u64(out, static_cast<std::uint64_t>(op.value));
    fnv_mix_u64(out, op.invoke);
    fnv_mix_u64(out, op.response);
  }
  return out;
}

namespace {

ScenarioResult run_scenario_impl(const Scenario& s,
                                 sim::SchedulePolicy* policy) {
  ScenarioResult out;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    // Inside the try: bad programmatic configs become kError verdicts,
    // per this function's no-throw contract (the CLI validates earlier).
    RLT_CHECK_MSG(s.processes >= 1 && s.processes <= 64,
                  "scenario processes out of range");
    RLT_CHECK_MSG(s.writes_per_process >= 0, "negative writes_per_process");
    RLT_CHECK_MSG(fault_applies(s.faults.kind, s.algorithm),
                  "fault kind '" << to_string(s.faults.kind)
                                 << "' does not apply to the '"
                                 << to_string(s.algorithm) << "' family");
    RLT_CHECK_MSG(s.faults.kind != FaultKind::kLossy ||
                      (s.faults.param >= 1 && s.faults.param <= 999),
                  "lossy fault plans need a drop rate in 1..999 permille");
    RLT_CHECK_MSG(policy == nullptr || !s.faults.active(),
                  "fault plans do not combine with an external schedule "
                  "policy");
    RLT_CHECK_MSG(!s.explore_faults ||
                      (policy != nullptr && s.algorithm == Algorithm::kAbd),
                  "explore fault menus need an external schedule policy "
                  "driving the ABD family");
    switch (s.algorithm) {
      case Algorithm::kModeled:
        run_modeled(s, policy, out);
        break;
      case Algorithm::kAlg2:
        run_implemented<registers::SimAlg2Register>(s, /*expect_wsl=*/true,
                                                    policy, out);
        break;
      case Algorithm::kAlg4:
        run_implemented<registers::SimAlg4Register>(s, /*expect_wsl=*/false,
                                                    policy, out);
        break;
      case Algorithm::kAbd:
        run_abd(s, policy, out);
        break;
    }
  } catch (const std::exception& e) {
    out.verdict = Verdict::kError;
    out.detail = std::string("exception: ") + e.what();
  } catch (...) {
    out.verdict = Verdict::kError;
    out.detail = "unknown exception";
  }
  if (obs::enabled()) {
    obs::count(obs::Counter::kSweepScenarios);
    obs::hist(obs::Hist::kScenarioOps, out.ops);
  }
  out.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return out;
}

}  // namespace

ScenarioResult run_scenario(const Scenario& s) {
  return run_scenario_impl(s, nullptr);
}

ScenarioResult run_scenario_policy(const Scenario& s,
                                   sim::SchedulePolicy& schedule) {
  return run_scenario_impl(s, &schedule);
}

}  // namespace rlt::sweep
