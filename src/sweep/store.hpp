// The persisted per-scenario result store.
//
// A sweep (safety or termination) can stream one flat record per scenario
// into a `RecordSink`.  Records are appended in scenario-enumeration
// order during the deterministic fold — after the pool barrier — so a
// store's bytes are a pure function of the sweep options: byte-identical
// across runs, thread counts, and batch sizes.  That property is what
// makes two stores diffable across commits (`tools/sweep_diff.py`):
// a changed line means scenario behaviour changed, not scheduling.
//
// Serialization is canonical JSONL: one JSON object per line, fields in
// the exact order the producer added them, no whitespace, strings
// escaped per RFC 8259 (control characters as \u00XX).  Every record
// carries a unique "key" field — the scenario key — which diff tooling
// uses as the join column.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>

namespace rlt::sweep {

/// One flat record under construction.  Field order is insertion order;
/// the producer is responsible for a stable field set per record kind.
class Record {
 public:
  Record& str(std::string_view field, std::string_view value);
  Record& u64(std::string_view field, std::uint64_t value);
  Record& hex(std::string_view field, std::uint64_t value);  ///< "0x…" string
  Record& boolean(std::string_view field, bool value);

  /// The closed single-line JSON object (no trailing newline).
  [[nodiscard]] std::string json() const;

 private:
  void begin_field(std::string_view field);
  std::string body_;  ///< Accumulated `"a":1,"b":"x"` payload.
};

/// Escapes `s` as a JSON string literal (including the quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Where per-scenario records go.  `append` is called in enumeration
/// order, exactly once per scenario, after all scenarios completed.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void append(const Record& r) = 0;
};

/// Collects the store in memory (tests: byte-stability assertions).
class StringSink final : public RecordSink {
 public:
  void append(const Record& r) override { text_ += r.json() += '\n'; }
  [[nodiscard]] const std::string& text() const noexcept { return text_; }

 private:
  std::string text_;
};

/// Writes the store to a file, one record per line.  Throws
/// std::runtime_error if the file cannot be opened; `close()` flushes
/// and throws on write failure (call it before trusting the store).
class JsonlFileSink final : public RecordSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  void append(const Record& r) override;
  void close();

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace rlt::sweep
