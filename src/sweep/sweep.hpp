// The scenario-sweep engine: grind the cross-product
//
//   register semantics × algorithm × adversary × process count ×
//   crash-fault plan × seed
//
// through `run_scenario` on a work-stealing thread pool, validate every
// recorded history, and fold the results into a *stable digest*: a
// 64-bit fingerprint that is a pure function of the sweep options —
// independent of thread count, scheduling, and machine — because every
// per-scenario fingerprint is deterministic and the fold happens in
// scenario-index order.  Two runs with the same options must print the
// same digest; a digest change means behaviour changed somewhere in the
// simulator, a register algorithm, or a checker.
//
// This is the repo's scenario-diversity workhorse: later PRs point it at
// bigger cross-products (sharded across machines, batched seeds) and
// diff digests across commits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/scenario.hpp"
#include "sweep/shard.hpp"
#include "sweep/store.hpp"

namespace rlt::obs {
struct Hooks;
}  // namespace rlt::obs

namespace rlt::sweep {

/// The cross-product to sweep plus execution knobs.
struct SweepOptions {
  std::vector<Algorithm> algorithms = {Algorithm::kModeled, Algorithm::kAlg2,
                                       Algorithm::kAlg4, Algorithm::kAbd};
  /// Semantics axis; applies to Algorithm::kModeled scenarios only
  /// (implemented registers fix their own base semantics).
  std::vector<sim::Semantics> semantics = {sim::Semantics::kAtomic,
                                           sim::Semantics::kLinearizable,
                                           sim::Semantics::kWriteStrong};
  std::vector<AdversaryKind> adversaries = {AdversaryKind::kRandom,
                                            AdversaryKind::kRoundRobin};
  /// Fault axis.  Each kind multiplies only the families it applies to
  /// (kStall: the simulator families; every other faulty kind: ABD —
  /// see fault_applies); a family with no applicable faulty kind in
  /// this list is emitted once, fault-free, whatever the list says.
  std::vector<FaultKind> faults = {FaultKind::kNone};
  /// Fault-schedule seeds swept per faulty scenario (ignored for kNone,
  /// which needs no schedule).
  std::vector<std::uint64_t> crash_seeds = {0};
  /// Per-message drop probability for kLossy plans, in permille
  /// (1..999; part of every lossy scenario key).  CLI: --drop-prob.
  std::uint32_t drop_permille = 100;
  std::vector<int> process_counts = {3};
  std::uint64_t seed_begin = 0;  ///< Inclusive.
  std::uint64_t seed_end = 10;   ///< Exclusive.
  int writes_per_process = 2;
  std::uint64_t max_actions_per_scenario = 1'000'000;
  int threads = 1;
  /// Scenarios per pool task.  Batching amortizes submit/wakeup overhead
  /// (one lock + condition-variable signal per task) across a run of
  /// consecutive scenario indices; results are still written per scenario
  /// and folded in index order, so the digest is independent of this
  /// knob.  1 = one task per scenario (the PR 1 behaviour).
  int batch_size = 16;
  /// Streaming cross-check: every checkable history is also replayed
  /// through the online checker, and any batch/online split reports as
  /// an ERROR.  Excluded from scenario keys — an agreeing --online sweep
  /// produces records byte-identical to an offline one.
  bool online = false;
  /// Capture per-scenario forensics (Scenario::forensics) so non-ok
  /// results carry a canonical-JSON artifact; run_sweep writes one file
  /// per non-ok scenario into obs::Hooks::forensics_dir.  An execution
  /// knob like `online`: excluded from scenario keys and config_key, so
  /// a --forensics sweep's store and digest are byte-identical to a
  /// plain run's.
  bool forensics = false;
  /// Which slice of the cross-product this process runs (see shard.hpp).
  /// The default (1/1) is the classic unsharded sweep.  An execution
  /// knob, not config: every shard of one logical sweep shares the same
  /// config_key, and `shards + merge ≡ unsharded` byte-for-byte.
  ShardSpec shard;
};

/// The canonical config identity of a sweep: every axis that determines
/// what the sweep computes (algorithms, semantics, adversaries, faults,
/// seeds, workload shape), NONE of the knobs that only determine how it
/// executes (threads, batch, shard, online).  Every shard-store header
/// pins it, and the merge refuses shards whose configs differ.
[[nodiscard]] std::string config_key(const SweepOptions& o);

/// What enumeration yields under a shard: the owned scenarios plus the
/// bookkeeping the store and the merge need.  `global_indices[i]` is the
/// position scenarios[i] holds in the FULL cross-product — a pure
/// function of the options, independent of shard count, which is what
/// lets the merge reconstitute enumeration order mechanically.
struct Enumeration {
  std::uint64_t total = 0;  ///< Full cross-product size (all shards).
  std::vector<std::uint64_t> global_indices;
  std::vector<Scenario> scenarios;
};

/// Materializes this shard's slice of the cross-product, seeds outermost
/// so that consecutive task ids cover different configs (better tail
/// behaviour under stealing) and round-robin sharding spreads every
/// config across all shards.  Order is deterministic; the digest folds
/// in this order.  Memory scales with the owned share, so the scenario
/// cap is per shard: sharding raises the sweepable ceiling N-fold.
[[nodiscard]] Enumeration enumerate_shard(const SweepOptions& o);

/// The owned scenarios alone (enumerate_shard without the bookkeeping);
/// the full cross-product under the default shard.
[[nodiscard]] std::vector<Scenario> enumerate_scenarios(const SweepOptions& o);

/// Aggregated outcome of a sweep.
struct SweepSummary {
  std::uint64_t scenarios = 0;
  std::uint64_t ok = 0;
  std::uint64_t violations = 0;
  /// Runs that went quiescent with pending ops stranded by crashes —
  /// the expected outcome class of the crash axis, counted separately
  /// so it is never conflated with violations or errors.
  std::uint64_t blocked = 0;
  std::uint64_t errors = 0;
  std::uint64_t total_steps = 0;  ///< Sum of adversary actions/deliveries.
  std::uint64_t total_ops = 0;    ///< Sum of completed high-level ops.
  /// Stable digest over (key, verdict, steps, ops, history_hash) of every
  /// scenario in enumeration order.  Excludes all wall-clock fields.
  std::uint64_t digest = 0;
  /// Measured, NOT digest material:
  std::uint64_t wall_ns_total = 0;  ///< Sum over scenarios (cpu-ish time).
  std::uint64_t wall_ns_max = 0;    ///< Slowest single scenario.
  std::uint64_t elapsed_ns = 0;     ///< End-to-end sweep wall clock.
  std::uint64_t steals = 0;         ///< Pool steal count (scheduling info).
  /// key + detail for the first few non-ok scenarios, enumeration order.
  std::vector<std::string> failures;
  /// Non-ok scenarios beyond the reporting cap.  stable_text() renders
  /// this as a deterministic "... and N more" marker so truncation is
  /// never silent (blocked/violating counts stay honest).
  std::uint64_t failures_truncated = 0;

  /// The deterministic part, one line per field, byte-identical across
  /// runs with equal options.  (Timing fields are deliberately absent.)
  [[nodiscard]] std::string stable_text() const;
};

/// The deterministic half of the sweep aggregate as a composable fold:
/// feed it exactly the per-scenario fields the store persists, in global
/// enumeration order, and it produces the same counters, digest, failure
/// list, and truncation marker whether the scenarios came from one
/// process or were re-read from N merged shard stores.  run_sweep and
/// merge_shard_stores share this object, which is what makes
/// `shards + merge ≡ unsharded` an identity instead of a convention.
class SweepFold {
 public:
  /// Failure lines kept verbatim; the rest fold into failures_truncated.
  /// The cap applies to the GLOBAL fold — each shard reports its own
  /// partial list, and the merge re-truncates in global order.
  static constexpr std::size_t kMaxReportedFailures = 16;

  SweepFold();

  void add(const std::string& key, Verdict verdict, std::uint64_t steps,
           std::uint64_t ops, std::uint64_t history_hash,
           const std::string& detail);

  /// The folded summary; wall-clock fields are zero (callers that
  /// measured time fill them in afterwards).
  [[nodiscard]] SweepSummary finish();

 private:
  SweepSummary sum_;
};

/// Runs the sweep on `o.threads` pool workers.  `progress_every` > 0
/// prints a line to stderr every that-many completed scenarios.  When
/// `sink` is non-null, one canonical record per scenario is appended in
/// enumeration order after the pool drains — so the store's bytes, like
/// the digest, are independent of thread count and batch size.
///
/// `hooks` (obs/hooks.hpp) attaches the observability fabric: a trace
/// sink receiving one span record per scenario (enumeration order,
/// byte-stable across threads/batch unless `trace_times` opts into
/// wall-clock fields) and/or a live ProgressMeter (stderr heartbeat +
/// progress fd).  All of it is observability, never digest material:
/// the summary, digest, and store bytes are identical with or without
/// hooks.
[[nodiscard]] SweepSummary run_sweep(const SweepOptions& o,
                                     std::uint64_t progress_every = 0,
                                     RecordSink* sink = nullptr,
                                     const obs::Hooks* hooks = nullptr);

}  // namespace rlt::sweep
