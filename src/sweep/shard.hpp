// The distributed-sweep shard fabric.
//
// Any sweep in this repo — the safety cross-product (src/sweep/), the
// termination lab (src/term/), the exploration lab (src/explore/) — can
// be partitioned into N independent slices and run as N separate
// processes (or machines), then merged back into the *exact* store and
// aggregate digest an unsharded run would have produced:
//
//     run(shard 0/N) + run(1/N) + … + run(N-1/N) + merge  ≡  run(1/1)
//
// byte-for-byte.  Three pieces make that an identity rather than an
// approximation:
//
//  1. `ShardSpec` partitions the scenario cross-product by GLOBAL
//     ENUMERATION INDEX (round robin: shard i owns index g iff
//     g % N == i).  The global index of a scenario is a pure function of
//     the sweep options — it does not depend on the shard count — so
//     every store record can carry its index ("gi") and a merge can
//     reconstitute enumeration order mechanically, whatever N was.
//     Seeds are the outermost enumeration axis, so round robin also
//     spreads every config across all shards (balanced slices).
//
//  2. Each sweep's aggregate folds through a composable fold object
//     (SweepFold / TermFold / ExploreFold, declared next to their
//     summaries) whose inputs are exactly the fields persisted in the
//     store records.  A shard store therefore *is* the serialized fold
//     partial: the merge re-folds the records in global order and lands
//     on the identical digest, counters, failure list, and
//     "... and N more" truncation marker the unsharded fold computes.
//
//  3. A sharded store brackets its records with a header and a trailer
//     line (written only when N > 1, so unsharded stores keep their
//     historical bytes): the header pins the shard's identity, the
//     sweep kind, a canonical config key, and the cross-product size;
//     the trailer repeats the record count and the shard's partial
//     digest.  `merge_shard_stores` validates all of it — same config
//     everywhere, every shard 0..N-1 present exactly once, no gaps or
//     overlaps in the global-index coverage, every trailer digest
//     reproduced from the records — and fails loudly (naming the
//     missing or duplicated shard) on any hole, because a silently
//     incomplete billion-scenario sweep is worse than none.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sweep/store.hpp"

namespace rlt::sweep {

/// Which slice of the cross-product this process runs: shard `index` of
/// `count` owns every scenario whose global enumeration index is
/// congruent to `index` mod `count`.  The default (1 shard) is the
/// classic unsharded sweep.
struct ShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 1;

  [[nodiscard]] bool active() const noexcept { return count > 1; }
  [[nodiscard]] bool owns(std::uint64_t global_index) const noexcept {
    return global_index % count == index;
  }
  /// Scenarios this shard owns out of a `total`-scenario cross-product.
  [[nodiscard]] std::uint64_t share(std::uint64_t total) const noexcept {
    return total / count + (total % count > index ? 1 : 0);
  }
  /// "index/count", e.g. "2/4" — the CLI spelling.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

/// Parses the CLI spelling "i/N".  Rejects (nullopt) N == 0, i >= N,
/// and anything that is not two plain decimal integers around one '/'.
[[nodiscard]] std::optional<ShardSpec> parse_shard(const std::string& text);

/// The shard-store header line.  `kind` is "safety", "term", or
/// "explore"; `config` is the sweep's canonical config key (every shard
/// of one logical sweep must agree on it); `total` the full
/// cross-product size; `records` how many scenario records follow.
[[nodiscard]] Record shard_header_record(const std::string& kind,
                                         const ShardSpec& shard,
                                         const std::string& config,
                                         std::uint64_t total,
                                         std::uint64_t records);

/// The shard-store trailer line: record count again (a truncated file
/// cannot pass) plus the shard's partial digest over its own records.
[[nodiscard]] Record shard_trailer_record(const ShardSpec& shard,
                                          std::uint64_t records,
                                          std::uint64_t partial_digest);

/// One shard store to merge: `name` labels error messages (the file
/// path at the CLI, a test label in unit tests), `content` is the full
/// store text.
struct ShardStore {
  std::string name;
  std::string content;
};

/// What a merge reconstitutes.  `store` is byte-identical to the --out
/// store of the equivalent unsharded run; `stable_text` and `digest`
/// are byte-identical to that run's deterministic summary section.
struct MergeResult {
  std::string kind;         ///< "safety" | "term" | "explore".
  std::uint32_t shards = 0; ///< Shard count N.
  std::uint64_t records = 0;///< Scenario records merged (= total).
  std::string store;        ///< Merged canonical JSONL.
  std::string stable_text;  ///< Reconstituted aggregate summary.
  std::uint64_t digest = 0; ///< The aggregate digest (== unsharded).
  /// Mirrors the sweep's own exit contract: true iff the merged summary
  /// contains what would have failed the unsharded run (safety:
  /// violations/errors; term: safety violations/errors; explore:
  /// errors).  Validation problems throw instead.
  bool failed = false;
};

/// Merges a complete set of shard stores back into the unsharded store
/// + summary.  Throws std::runtime_error (with the offending shard
/// named) on: a store without a shard header, mismatched kind/config/
/// count/total, a duplicated or missing shard index, global-index gaps
/// or overlaps, record counts disagreeing with header/trailer, or a
/// trailer digest the records do not reproduce.
[[nodiscard]] MergeResult merge_shard_stores(
    const std::vector<ShardStore>& stores);

}  // namespace rlt::sweep
