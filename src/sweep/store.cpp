#include "sweep/store.hpp"

#include <cstdio>
#include <stdexcept>

namespace rlt::sweep {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Record::begin_field(std::string_view field) {
  if (!body_.empty()) body_ += ',';
  body_ += json_escape(field);
  body_ += ':';
}

Record& Record::str(std::string_view field, std::string_view value) {
  begin_field(field);
  body_ += json_escape(value);
  return *this;
}

Record& Record::u64(std::string_view field, std::uint64_t value) {
  begin_field(field);
  body_ += std::to_string(value);
  return *this;
}

Record& Record::hex(std::string_view field, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(value));
  return str(field, buf);
}

Record& Record::boolean(std::string_view field, bool value) {
  begin_field(field);
  body_ += value ? "true" : "false";
  return *this;
}

std::string Record::json() const { return "{" + body_ + "}"; }

JsonlFileSink::JsonlFileSink(const std::string& path)
    : path_(path), out_(path, std::ios::out | std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("cannot open result store '" + path +
                             "' for writing");
  }
}

void JsonlFileSink::append(const Record& r) { out_ << r.json() << '\n'; }

void JsonlFileSink::close() {
  out_.flush();
  if (!out_) {
    throw std::runtime_error("write to result store '" + path_ + "' failed");
  }
  out_.close();
}

}  // namespace rlt::sweep
