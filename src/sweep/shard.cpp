#include "sweep/shard.hpp"

#include <stdexcept>

#include "explore/explore.hpp"
#include "sweep/fnv.hpp"
#include "sweep/scenario.hpp"
#include "sweep/sweep.hpp"
#include "term/term_scenario.hpp"
#include "term/term_sweep.hpp"

namespace rlt::sweep {

std::string ShardSpec::to_string() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

std::optional<ShardSpec> parse_shard(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    return std::nullopt;
  }
  const auto parse_u32 = [](const std::string& s) -> std::optional<std::uint32_t> {
    if (s.empty() || s.size() > 9) return std::nullopt;
    std::uint32_t v = 0;
    for (const char c : s) {
      if (c < '0' || c > '9') return std::nullopt;
      v = v * 10 + static_cast<std::uint32_t>(c - '0');
    }
    return v;
  };
  const auto index = parse_u32(text.substr(0, slash));
  const auto count = parse_u32(text.substr(slash + 1));
  if (!index || !count) return std::nullopt;
  if (*count == 0 || *index >= *count) return std::nullopt;
  return ShardSpec{*index, *count};
}

Record shard_header_record(const std::string& kind, const ShardSpec& shard,
                           const std::string& config, std::uint64_t total,
                           std::uint64_t records) {
  Record rec;
  rec.str("key", "shard/" + shard.to_string())
      .str("mode", "shard")
      .str("kind", kind)
      .str("config", config)
      .u64("index", shard.index)
      .u64("count", shard.count)
      .u64("total", total)
      .u64("records", records);
  return rec;
}

Record shard_trailer_record(const ShardSpec& shard, std::uint64_t records,
                            std::uint64_t partial_digest) {
  Record rec;
  rec.str("key", "shard-end/" + shard.to_string())
      .str("mode", "shard-end")
      .u64("index", shard.index)
      .u64("count", shard.count)
      .u64("records", records)
      .hex("digest", partial_digest);
  return rec;
}

// ---- merge: parse shard stores, re-fold in global order -----------------
//
// The parsers below read back the canonical JSONL this repo's Record
// class writes: fields in insertion order, strings escaped per RFC 8259.
// They search by `"name":` needle — safe because every quote inside a
// value is escaped (`\"`), so a needle can never match inside a value —
// and fully unescape string fields, because the fold must see exactly
// the strings the original fold saw.

namespace {

[[nodiscard]] std::optional<std::string> field_str(const std::string& line,
                                                   const std::string& name) {
  const std::string needle = "\"" + name + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::string out;
  std::size_t i = at + needle.size();
  while (i < line.size()) {
    const char c = line[i];
    if (c == '"') return out;
    if (c != '\\') {
      out += c;
      ++i;
      continue;
    }
    if (i + 1 >= line.size()) return std::nullopt;
    const char e = line[i + 1];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 5 >= line.size()) return std::nullopt;
        unsigned v = 0;
        for (std::size_t k = i + 2; k < i + 6; ++k) {
          const char h = line[k];
          v <<= 4;
          if (h >= '0' && h <= '9') {
            v |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            v |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            v |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return std::nullopt;
          }
        }
        // The writer only \u-escapes control characters; anything wider
        // is not a record this repo produced.
        if (v > 0xFF) return std::nullopt;
        out += static_cast<char>(v);
        i += 4;
        break;
      }
      default: return std::nullopt;
    }
    i += 2;
  }
  return std::nullopt;
}

[[nodiscard]] std::optional<std::uint64_t> field_u64(const std::string& line,
                                                     const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return std::nullopt;
  std::uint64_t v = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
  }
  return v;
}

[[nodiscard]] std::optional<bool> field_bool(const std::string& line,
                                             const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t i = at + needle.size();
  if (line.compare(i, 4, "true") == 0) return true;
  if (line.compare(i, 5, "false") == 0) return false;
  return std::nullopt;
}

[[nodiscard]] std::optional<std::uint64_t> field_hex(const std::string& line,
                                                     const std::string& name) {
  const auto s = field_str(line, name);
  if (!s || s->size() < 3 || s->compare(0, 2, "0x") != 0) return std::nullopt;
  std::uint64_t v = 0;
  for (std::size_t i = 2; i < s->size(); ++i) {
    const char h = (*s)[i];
    v <<= 4;
    if (h >= '0' && h <= '9') {
      v |= static_cast<std::uint64_t>(h - '0');
    } else if (h >= 'a' && h <= 'f') {
      v |= static_cast<std::uint64_t>(h - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

/// "term/<family>/…" → the Family enumerator.
[[nodiscard]] std::optional<term::Family> family_from_key(
    const std::string& key) {
  const std::size_t a = key.find('/');
  if (a == std::string::npos) return std::nullopt;
  const std::size_t b = key.find('/', a + 1);
  if (b == std::string::npos) return std::nullopt;
  const std::string fam = key.substr(a + 1, b - a - 1);
  for (const term::Family f :
       {term::Family::kConsensus, term::Family::kComposed,
        term::Family::kSharedCoin, term::Family::kGame}) {
    if (fam == term::to_string(f)) return f;
  }
  return std::nullopt;
}

/// The three sweep folds behind one kind switch, so the per-shard digest
/// check and the global merge share one record-to-fold path.
class KindFold {
 public:
  explicit KindFold(const std::string& kind) : kind_(kind) {}

  void add(const std::string& name, const std::string& line) {
    const auto fail = [&](const std::string& what) {
      return std::runtime_error(name + ": malformed " + kind_ + " record (" +
                                what + "): " + line.substr(0, 96));
    };
    const auto key = field_str(line, "key");
    if (!key) throw fail("no key");
    if (kind_ == "safety") {
      const auto verdict_s = field_str(line, "verdict");
      const std::optional<Verdict> verdict =
          verdict_s ? verdict_from_string(*verdict_s)
                    : std::optional<Verdict>();
      const auto steps = field_u64(line, "steps");
      const auto ops = field_u64(line, "ops");
      const auto hash = field_hex(line, "history_hash");
      const auto detail = field_str(line, "detail");
      if (!verdict || !steps || !ops || !hash || !detail) {
        throw fail("missing field");
      }
      safety_.add(*key, *verdict, *steps, *ops, *hash, *detail);
    } else if (kind_ == "term") {
      const auto family = family_from_key(*key);
      const auto terminated = field_bool(line, "terminated");
      const auto capped = field_bool(line, "capped");
      const auto safety_ok = field_bool(line, "safety_ok");
      const auto error = field_bool(line, "error");
      const auto rounds = field_u64(line, "rounds");
      const auto stalled = field_u64(line, "stalled");
      const auto coin_flips = field_u64(line, "coin_flips");
      const auto steps = field_u64(line, "steps");
      const auto hash = field_hex(line, "outcome_hash");
      const auto detail = field_str(line, "detail");
      if (!family || !terminated || !capped || !safety_ok || !error ||
          !rounds || !stalled || !coin_flips || !steps || !hash || !detail) {
        throw fail("missing field");
      }
      term::TermRecord r;
      r.terminated = *terminated;
      r.capped = *capped;
      r.safety_ok = *safety_ok;
      r.error = *error;
      r.rounds = static_cast<int>(*rounds);
      r.stalled = static_cast<int>(*stalled);
      r.coin_flips = *coin_flips;
      r.steps = *steps;
      r.outcome_hash = *hash;
      r.detail = *detail;
      term_.add(*key, *family, r);
    } else {
      const auto found = field_str(line, "found");
      const auto runs = field_u64(line, "runs");
      const auto steps = field_u64(line, "steps");
      const auto best_score = field_u64(line, "best_score");
      const auto fingerprint = field_hex(line, "fingerprint");
      const auto trace_fnv = field_hex(line, "trace_fnv");
      const auto shrunk = field_bool(line, "shrunk");
      const auto locally_minimal = field_bool(line, "locally_minimal");
      const auto shrink_probes = field_u64(line, "shrink_probes");
      const auto detail = field_str(line, "detail");
      if (!found || !runs || !steps || !best_score || !fingerprint ||
          !trace_fnv || !shrunk || !locally_minimal || !shrink_probes ||
          !detail) {
        throw fail("missing field");
      }
      explore::ExploreFold::Item it;
      it.best_score = *best_score;
      it.found_rank = *found == "violation" ? explore::kFoundRankViolation
                      : *found == "blocked" ? explore::kFoundRankBlocked
                                            : 0;
      it.fingerprint = *fingerprint;
      it.trace_fnv = *trace_fnv;
      it.runs = *runs;
      it.total_steps = *steps;
      it.shrunk = *shrunk;
      it.locally_minimal = *locally_minimal;
      it.shrink_probes = *shrink_probes;
      it.error = *found == "error";
      it.detail = *detail;
      explore_.add(*key, it);
    }
  }

  /// Finishes the fold and lands the result in `out` (kind-specific
  /// summary → shared MergeResult fields).  `hist_sink` receives the
  /// term histograms; pass null for the per-shard digest check.
  void finish_into(MergeResult* out, RecordSink* hist_sink) {
    if (kind_ == "safety") {
      const SweepSummary sum = safety_.finish();
      out->stable_text = sum.stable_text();
      out->digest = sum.digest;
      out->failed = sum.violations > 0 || sum.errors > 0;
    } else if (kind_ == "term") {
      const term::TermSummary sum = term_.finish(hist_sink);
      out->stable_text = sum.stable_text();
      out->digest = sum.digest;
      out->failed = sum.safety_violations > 0 || sum.errors > 0;
    } else {
      const explore::ExploreSummary sum = explore_.finish();
      out->stable_text = sum.stable_text();
      out->digest = sum.digest;
      out->failed = sum.errors > 0;
    }
  }

 private:
  std::string kind_;
  SweepFold safety_;
  term::TermFold term_;
  explore::ExploreFold explore_;
};

/// One shard store, parsed and validated in isolation.
struct ParsedShard {
  std::string name;
  ShardSpec spec;
  std::string kind;
  std::string config;
  std::uint64_t total = 0;
  std::uint64_t trailer_digest = 0;
  std::vector<std::string> lines;  ///< Scenario records, verbatim.
  std::vector<std::uint64_t> gis;
};

ParsedShard parse_store(const ShardStore& in) {
  ParsedShard p;
  p.name = in.name;
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < in.content.size()) {
    std::size_t end = in.content.find('\n', begin);
    if (end == std::string::npos) end = in.content.size();
    if (end > begin) lines.push_back(in.content.substr(begin, end - begin));
    begin = end + 1;
  }
  if (lines.size() < 2) {
    throw std::runtime_error(p.name + ": not a shard store (expected a "
                                      "shard header and trailer line)");
  }
  const std::string& header = lines.front();
  if (field_str(header, "mode") != std::optional<std::string>("shard")) {
    throw std::runtime_error(p.name + ": not a shard store (first line is "
                                      "not a shard header; was the sweep "
                                      "run with --shard?)");
  }
  const auto kind = field_str(header, "kind");
  const auto config = field_str(header, "config");
  const auto index = field_u64(header, "index");
  const auto count = field_u64(header, "count");
  const auto total = field_u64(header, "total");
  const auto records = field_u64(header, "records");
  if (!kind || !config || !index || !count || !total || !records) {
    throw std::runtime_error(p.name + ": malformed shard header");
  }
  if (*kind != "safety" && *kind != "term" && *kind != "explore") {
    throw std::runtime_error(p.name + ": unknown sweep kind \"" + *kind +
                             "\"");
  }
  if (*count < 2 || *count > 0xffffffffu || *index >= *count) {
    throw std::runtime_error(p.name + ": shard header index/count out of "
                                      "range");
  }
  p.spec.index = static_cast<std::uint32_t>(*index);
  p.spec.count = static_cast<std::uint32_t>(*count);
  p.kind = *kind;
  p.config = *config;
  p.total = *total;
  const std::string& trailer = lines.back();
  if (field_str(trailer, "mode") != std::optional<std::string>("shard-end")) {
    throw std::runtime_error(p.name + ": shard trailer missing (truncated "
                                      "store?)");
  }
  const auto t_index = field_u64(trailer, "index");
  const auto t_count = field_u64(trailer, "count");
  const auto t_records = field_u64(trailer, "records");
  const auto t_digest = field_hex(trailer, "digest");
  if (!t_index || !t_count || !t_records || !t_digest) {
    throw std::runtime_error(p.name + ": malformed shard trailer");
  }
  if (*t_index != *index || *t_count != *count) {
    throw std::runtime_error(p.name + ": shard trailer identity disagrees "
                                      "with the header");
  }
  p.trailer_digest = *t_digest;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    const auto mode = field_str(lines[i], "mode");
    if (!mode) {
      throw std::runtime_error(p.name + ": record without a mode field: " +
                               lines[i].substr(0, 96));
    }
    // Per-shard term-hist partials are a convenience for eyeballing one
    // slice; the merge recomputes the global ones from scenario records.
    if (*mode == "term-hist") continue;
    if (*mode == "shard" || *mode == "shard-end") {
      throw std::runtime_error(p.name + ": unexpected nested shard "
                                        "header/trailer");
    }
    const auto gi = field_u64(lines[i], "gi");
    if (!gi) {
      throw std::runtime_error(p.name + ": record without a global index: " +
                               lines[i].substr(0, 96));
    }
    p.lines.push_back(lines[i]);
    p.gis.push_back(*gi);
  }
  if (p.lines.size() != *records || *t_records != *records) {
    throw std::runtime_error(
        p.name + ": record count disagrees with header/trailer (store "
                 "truncated or concatenated?)");
  }
  // Complete per-shard coverage: record j must sit at global index
  // index + j·count — anything else is a gap, overlap, or reordering.
  for (std::size_t j = 0; j < p.gis.size(); ++j) {
    const std::uint64_t expect =
        p.spec.index + static_cast<std::uint64_t>(j) * p.spec.count;
    if (p.gis[j] != expect) {
      throw std::runtime_error(
          p.name + ": global-index coverage broken at record " +
          std::to_string(j) + " (expected gi " + std::to_string(expect) +
          ", found " + std::to_string(p.gis[j]) + ")");
    }
  }
  if (p.lines.size() != p.spec.share(p.total)) {
    throw std::runtime_error(
        p.name + ": record count " + std::to_string(p.lines.size()) +
        " is not shard " + p.spec.to_string() + "'s share of " +
        std::to_string(p.total) + " scenarios");
  }
  return p;
}

}  // namespace

MergeResult merge_shard_stores(const std::vector<ShardStore>& stores) {
  if (stores.empty()) {
    throw std::runtime_error("merge: no shard stores given");
  }
  std::vector<ParsedShard> shards;
  shards.reserve(stores.size());
  for (const ShardStore& s : stores) shards.push_back(parse_store(s));

  const ParsedShard& ref = shards.front();
  for (const ParsedShard& s : shards) {
    if (s.kind != ref.kind) {
      throw std::runtime_error(s.name + ": sweep kind \"" + s.kind +
                               "\" does not match " + ref.name + " (\"" +
                               ref.kind + "\")");
    }
    if (s.spec.count != ref.spec.count) {
      throw std::runtime_error(s.name + ": shard count " +
                               std::to_string(s.spec.count) +
                               " does not match " + ref.name + " (" +
                               std::to_string(ref.spec.count) + ")");
    }
    if (s.config != ref.config) {
      throw std::runtime_error(s.name + ": sweep config\n  " + s.config +
                               "\ndoes not match " + ref.name + "\n  " +
                               ref.config);
    }
    if (s.total != ref.total) {
      throw std::runtime_error(s.name + ": cross-product size " +
                               std::to_string(s.total) +
                               " does not match " + ref.name + " (" +
                               std::to_string(ref.total) + ")");
    }
  }
  const std::uint32_t count = ref.spec.count;
  std::vector<const ParsedShard*> by_index(count, nullptr);
  for (const ParsedShard& s : shards) {
    const ParsedShard*& slot = by_index[s.spec.index];
    if (slot != nullptr) {
      throw std::runtime_error("duplicate shard " + s.spec.to_string() +
                               ": " + slot->name + " and " + s.name);
    }
    slot = &s;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    if (by_index[i] == nullptr) {
      throw std::runtime_error(
          "missing shard " + std::to_string(i) + "/" +
          std::to_string(count) + ": no store covers global indices " +
          std::to_string(i) + ", " + std::to_string(i + count) + ", " +
          std::to_string(i + 2ull * count) + ", …");
    }
  }

  // Every shard's records must reproduce its own trailer digest — a
  // tampered or bit-rotted store fails here, before it can poison the
  // merged aggregate.
  for (const ParsedShard& s : shards) {
    KindFold partial(ref.kind);
    for (const std::string& line : s.lines) partial.add(s.name, line);
    MergeResult check;
    partial.finish_into(&check, nullptr);
    if (check.digest != s.trailer_digest) {
      throw std::runtime_error(s.name + ": trailer digest mismatch (the "
                                        "records do not reproduce the "
                                        "digest the shard recorded)");
    }
  }

  // Reconstitute global enumeration order — gi g lives in shard g mod N
  // — re-folding as we go.  The result is the store and summary the
  // unsharded run writes, byte for byte.
  MergeResult out;
  out.kind = ref.kind;
  out.shards = count;
  out.records = ref.total;
  KindFold global(ref.kind);
  std::vector<std::size_t> cursor(count, 0);
  for (std::uint64_t gi = 0; gi < ref.total; ++gi) {
    const ParsedShard& s = *by_index[gi % count];
    const std::string& line = s.lines[cursor[gi % count]++];
    global.add(s.name, line);
    out.store += line;
    out.store += '\n';
  }
  StringSink hist_sink;
  global.finish_into(&out, &hist_sink);
  out.store += hist_sink.text();
  return out;
}

}  // namespace rlt::sweep
