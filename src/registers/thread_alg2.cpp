#include "registers/thread_alg2.hpp"

#include "util/assert.hpp"

namespace rlt::registers {

ThreadAlg2Register::ThreadAlg2Register(int n, history::Value initial,
                                       bool record)
    : n_(n), record_(record) {
  RLT_CHECK_MSG(n >= 1 && n <= kMaxThreadWriters,
                "writer slots must be in [1, " << kMaxThreadWriters << ']');
  recorder_.set_initial(0, initial);
  Alg2Tuple init;
  init.value = initial;  // timestamp [0 … 0] via zero-initialized ts
  vals_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    vals_.push_back(std::make_unique<SeqlockSWMR<Alg2Tuple>>(init));
  }
}

void ThreadAlg2Register::write(int k, history::Value v) {
  RLT_CHECK_MSG(k >= 0 && k < n_, "writer slot out of range");
  history::OpHandle h;
  if (record_) h = recorder_.begin_op(k, 0, history::OpKind::kWrite, v);

  // Lines 1-7: form new_ts one entry at a time.
  Alg2Tuple fresh;
  fresh.value = v;
  for (int i = 0; i < n_; ++i) {
    const Alg2Tuple t = vals_[static_cast<std::size_t>(i)]->read();
    fresh.ts[i] = i == k ? t.ts[i] + 1 : t.ts[i];
  }
  // Line 8: publish.
  vals_[static_cast<std::size_t>(k)]->write(fresh);

  if (record_) recorder_.end_op(h, 0);
}

history::Value ThreadAlg2Register::read(int reader) {
  history::OpHandle h;
  if (record_) h = recorder_.begin_op(reader, 0, history::OpKind::kRead, 0);

  // Lines 11-15: read every Val[i]; return the lexicographic max.
  Alg2Tuple best = vals_[0]->read();
  for (int i = 1; i < n_; ++i) {
    const Alg2Tuple t = vals_[static_cast<std::size_t>(i)]->read();
    if (best.ts_less(t, n_)) best = t;
  }

  if (record_) recorder_.end_op(h, best.value);
  return best.value;
}

}  // namespace rlt::registers
