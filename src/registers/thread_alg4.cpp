#include "registers/thread_alg4.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rlt::registers {

ThreadAlg4Register::ThreadAlg4Register(int n, history::Value initial,
                                       bool record)
    : n_(n), record_(record) {
  RLT_CHECK_MSG(n >= 1, "need at least one writer slot");
  recorder_.set_initial(0, initial);
  vals_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Alg4Tuple init;
    init.value = initial;
    init.sq = 0;
    init.pid = i;  // Val[i] initialized to (0, <0, i>)
    vals_.push_back(std::make_unique<SeqlockSWMR<Alg4Tuple>>(init));
  }
}

void ThreadAlg4Register::write(int k, history::Value v) {
  RLT_CHECK_MSG(k >= 0 && k < n_, "writer slot out of range");
  history::OpHandle h;
  if (record_) h = recorder_.begin_op(k, 0, history::OpKind::kWrite, v);

  // Lines 1-4: new_sq = 1 + max sq across Val[-].
  std::int64_t max_sq = 0;
  for (int i = 0; i < n_; ++i) {
    max_sq = std::max(max_sq, vals_[static_cast<std::size_t>(i)]->read().sq);
  }
  // Lines 5-6: publish (v, <new_sq, k>).
  Alg4Tuple fresh;
  fresh.value = v;
  fresh.sq = max_sq + 1;
  fresh.pid = k;
  vals_[static_cast<std::size_t>(k)]->write(fresh);

  if (record_) recorder_.end_op(h, 0);
}

history::Value ThreadAlg4Register::read(int reader) {
  history::OpHandle h;
  if (record_) h = recorder_.begin_op(reader, 0, history::OpKind::kRead, 0);

  Alg4Tuple best = vals_[0]->read();
  for (int i = 1; i < n_; ++i) {
    const Alg4Tuple t = vals_[static_cast<std::size_t>(i)]->read();
    if (best.ts_less(t)) best = t;
  }

  if (record_) recorder_.end_op(h, best.value);
  return best.value;
}

}  // namespace rlt::registers
