// Algorithm 4: the Lamport-clock MWMR register from SWMR registers —
// linearizable (Theorem 12) but NOT write strongly-linearizable
// (Theorem 13) — simulator build.
//
// Identical structure to Algorithm 2, except each write timestamps its
// value with ⟨sq, pid⟩ where sq = 1 + max sequence number read across
// Val[0..n-1].  The scalar clock carries too little information to order
// concurrent writes on-line: Figure 4's branching histories (reproduced
// by tests and bench/fig4_theorem13) show that any candidate
// linearization function must already have committed the relative order
// of two concurrent writes by the end of their common prefix G, yet one
// extension forces each order — so no write strong-linearization
// function exists.
#pragma once

#include <vector>

#include "history/recorder.hpp"
#include "registers/vector_ts.hpp"
#include "sim/scheduler.hpp"

namespace rlt::registers {

/// The simulator build of Algorithm 4.
class SimAlg4Register {
 public:
  /// Adds `n` atomic base registers with ids first_base..first_base+n-1
  /// to `sched`.
  SimAlg4Register(sim::Scheduler& sched, int n, sim::RegId first_base,
                  history::Value initial);

  /// Algorithm 4's write, by `self` as writer slot `k`.
  sim::ValueTask<void> write(sim::Proc& self, int k, history::Value v);

  /// Algorithm 4's read.
  sim::ValueTask<history::Value> read(sim::Proc& self);

  /// The implemented register's high-level history (register id 0).
  [[nodiscard]] const history::History& hl_history() const {
    return recorder_.history();
  }

  [[nodiscard]] int n() const noexcept { return n_; }

 private:
  [[nodiscard]] sim::RegId base(int i) const noexcept {
    return first_base_ + i;
  }

  sim::Scheduler& sched_;
  int n_;
  sim::RegId first_base_;
  history::Recorder recorder_;
  /// Tuple table: base registers hold indices into this vector.
  std::vector<std::pair<history::Value, LamportTs>> tuples_;
  std::vector<bool> writer_busy_;
};

}  // namespace rlt::registers
