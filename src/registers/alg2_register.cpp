#include "registers/alg2_register.hpp"

#include "util/assert.hpp"

namespace rlt::registers {

VectorTs Alg2WriteTrace::partial_ts_at(Time t, bool infinite_init) const {
  const int n = static_cast<int>(entry_set_time.size());
  VectorTs ts = infinite_init ? VectorTs::infinite(n) : VectorTs::zeros(n);
  for (std::size_t i = 0; i < entry_set_time.size(); ++i) {
    if (entry_set_time[i] != 0 && entry_set_time[i] <= t) {
      ts.set(static_cast<int>(i), entry_value[i]);
    }
  }
  return ts;
}

Alg2Trace Alg2Trace::prefix_at(Time t) const {
  Alg2Trace out;
  out.n = n;
  out.initial = initial;
  out.infinite_init = infinite_init;
  for (const Alg2WriteTrace& w : writes) {
    if (w.start > t) continue;
    Alg2WriteTrace copy = w;
    if (copy.end != history::kNoTime && copy.end > t) {
      copy.end = history::kNoTime;
    }
    if (copy.val_write_time > t) copy.val_write_time = 0;
    for (Time& et : copy.entry_set_time) {
      if (et > t) et = 0;
    }
    out.writes.push_back(std::move(copy));
  }
  for (const Alg2ReadTrace& r : reads) {
    // Reads enter the trace only on completion; keep completed ones.
    if (r.end != history::kNoTime && r.end <= t) out.reads.push_back(r);
  }
  return out;
}

SimAlg2Register::SimAlg2Register(sim::Scheduler& sched, int n,
                                 sim::RegId first_base, Value initial)
    : sched_(sched), n_(n), first_base_(first_base) {
  RLT_CHECK_MSG(n >= 1, "need at least one writer slot");
  trace_.n = n;
  trace_.initial = initial;
  recorder_.set_initial(0, initial);
  writer_busy_.assign(static_cast<std::size_t>(n), false);
  // Tuple 0: the initial value with timestamp [0 … 0].
  tuples_.emplace_back(initial, VectorTs::zeros(n));
  for (int i = 0; i < n; ++i) {
    sched_.add_register(base(i), sim::Semantics::kAtomic, 0);
  }
}

int SimAlg2Register::add_tuple(Value v, VectorTs ts) {
  tuples_.emplace_back(v, std::move(ts));
  return static_cast<int>(tuples_.size()) - 1;
}

sim::ValueTask<void> SimAlg2Register::write(sim::Proc& self, int k, Value v) {
  RLT_CHECK_MSG(k >= 0 && k < n_, "writer slot out of range");
  RLT_CHECK_MSG(!writer_busy_[static_cast<std::size_t>(k)],
                "Val[" << k << "] is single-writer: concurrent writes on "
                          "the same slot are illegal");
  writer_busy_[static_cast<std::size_t>(k)] = true;

  const Time start = sched_.advance_clock();
  const history::OpHandle h = recorder_.begin_op(
      self.id(), 0, history::OpKind::kWrite, v, start);
  const std::size_t trace_idx = trace_.writes.size();
  {
    Alg2WriteTrace wt;
    wt.hl_op_id = h.op_id;
    wt.writer = k;
    wt.value = v;
    wt.start = start;
    wt.entry_set_time.assign(static_cast<std::size_t>(n_), 0);
    wt.entry_value.assign(static_cast<std::size_t>(n_), 0);
    trace_.writes.push_back(std::move(wt));
  }

  // Lines 1-7: form new_ts one entry at a time by reading Val[0..n-1].
  VectorTs new_ts = VectorTs::infinite(n_);
  for (int i = 0; i < n_; ++i) {
    const Value handle = co_await self.read(base(i));
    const VectorTs& ts_i = tuples_[static_cast<std::size_t>(handle)].second;
    if (i != k) {
      new_ts.set(i, ts_i[i]);  // line 3
    } else {
      new_ts.set(i, ts_i[i] + 1);  // line 5
    }
    // In the paper's step model, reading Val[i] and assigning new_ts[i]
    // are ONE atomic step (a shared-memory step plus local computation).
    // The proofs of Lemmas 37/38 rely on this: the entry is considered
    // set at the base read's linearization point — its invocation time —
    // not when this coroutine happens to be rescheduled.
    trace_.writes[trace_idx].entry_set_time[static_cast<std::size_t>(i)] =
        self.last_op_invoke();
    trace_.writes[trace_idx].entry_value[static_cast<std::size_t>(i)] =
        new_ts[i];
  }

  // Line 8: publish (v, new_ts) in Val[k].  The write's effect time is
  // its invocation (base registers are atomic); the co_await resumes at
  // this process's next step, which can be much later.
  trace_.writes[trace_idx].final_ts = new_ts;
  const int handle = add_tuple(v, new_ts);
  co_await self.write(base(k), handle);
  trace_.writes[trace_idx].val_write_time = self.last_op_invoke();

  // Line 9: new_ts is reset to [∞ … ∞] — our per-operation new_ts goes
  // out of scope, which is the same thing: between operations the
  // process's timestamp-in-progress reads as all-∞ (partial_ts_at).

  const Time end = sched_.advance_clock();
  recorder_.end_op(h, 0, end);
  trace_.writes[trace_idx].end = end;
  writer_busy_[static_cast<std::size_t>(k)] = false;
  co_return;  // line 10
}

sim::ValueTask<Value> SimAlg2Register::read(sim::Proc& self) {
  const Time start = sched_.advance_clock();
  const history::OpHandle h =
      recorder_.begin_op(self.id(), 0, history::OpKind::kRead, 0, start);

  // Lines 11-13: read every Val[i].
  int best_handle = -1;
  for (int i = 0; i < n_; ++i) {
    const Value handle = co_await self.read(base(i));
    if (best_handle < 0 ||
        tuples_[static_cast<std::size_t>(handle)].second >
            tuples_[static_cast<std::size_t>(best_handle)].second) {
      best_handle = static_cast<int>(handle);  // lines 14-15: lex max
    }
  }
  const auto& [value, ts] = tuples_[static_cast<std::size_t>(best_handle)];

  const Time end = sched_.advance_clock();
  recorder_.end_op(h, value, end);
  {
    Alg2ReadTrace rt;
    rt.hl_op_id = h.op_id;
    rt.start = start;
    rt.end = end;
    rt.value = value;
    rt.ts = ts;
    trace_.reads.push_back(std::move(rt));
  }
  co_return value;
}

}  // namespace rlt::registers
