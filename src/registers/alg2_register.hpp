// Algorithm 2: a write strongly-linearizable MWMR register built from n
// atomic SWMR registers, simulator build.
//
// Shared state: SWMR registers Val[0..n-1]; Val[k] holds the latest
// (value, vector-timestamp) tuple written by writer k.  To write, process
// k forms a fresh vector timestamp one entry at a time by reading every
// Val[i] (new_ts[i] = Val[i].ts[i], plus one for its own entry), then
// writes (v, new_ts) to Val[k].  To read, a process reads all Val[i] and
// returns the value with the lexicographically greatest timestamp.
//
// In the simulator, base registers hold int64 handles into a tuple table
// (the base objects are *atomic*, exactly as the paper assumes); every
// base-register access is one adversary-schedulable step.  The wrapper
// records the implemented register's high-level history (checked by the
// generic linearizability / WSL checkers) and an instrumentation trace
// (operation intervals, the time each new_ts entry was assigned, the time
// of the line-8 write) that Algorithm 3 consumes.
#pragma once

#include <vector>

#include "history/recorder.hpp"
#include "registers/vector_ts.hpp"
#include "sim/scheduler.hpp"

namespace rlt::registers {

using history::Time;
using history::Value;

/// Instrumentation of one Algorithm 2 write operation.
struct Alg2WriteTrace {
  int hl_op_id = -1;  ///< Op id in the implemented register's history.
  int writer = -1;    ///< Writer slot k.
  Value value = 0;
  Time start = 0;
  Time end = history::kNoTime;       ///< High-level response (kNoTime: pending).
  Time val_write_time = 0;           ///< Line-8 write time (0: not reached).
  std::vector<Time> entry_set_time;  ///< new_ts[i] assignment time (0: unset).
  std::vector<std::uint64_t> entry_value;  ///< new_ts[i] assigned value.
  VectorTs final_ts;                 ///< Valid iff val_write_time != 0.

  /// The value of this write's new_ts at time `t` (Algorithm 3, line 8
  /// of the linearization function): entries assigned at or before `t`,
  /// ∞ elsewhere.
  ///
  /// `infinite_init=false` is an ABLATION of the paper's line 9 / local
  /// initialization: unset entries read as 0 instead of ∞.  The paper
  /// notes the ∞ initialization "is important for the write strong-
  /// linearization" — with 0-filled partial timestamps, a write that has
  /// barely started looks *smaller* than everything and gets linearized
  /// too early, breaking Algorithm 3 (tests demonstrate a concrete
  /// schedule; see Alg2Ablation.ZeroInitBreaksAlgorithm3).
  [[nodiscard]] VectorTs partial_ts_at(Time t,
                                       bool infinite_init = true) const;
};

/// Instrumentation of one completed Algorithm 2 read operation.
struct Alg2ReadTrace {
  int hl_op_id = -1;
  Time start = 0;
  Time end = history::kNoTime;
  Value value = 0;
  VectorTs ts;  ///< The timestamp attached to the returned value.
};

/// Full instrumentation of an Algorithm 2 execution.
struct Alg2Trace {
  int n = 0;
  Value initial = 0;
  /// Partial timestamps treat unset entries as ∞ (the paper's scheme).
  /// Flip to false to study the ablation (see partial_ts_at).
  bool infinite_init = true;
  std::vector<Alg2WriteTrace> writes;
  std::vector<Alg2ReadTrace> reads;

  /// Truncates the trace to events at or before time `t` (used to verify
  /// the prefix property of Algorithm 3's output).
  [[nodiscard]] Alg2Trace prefix_at(Time t) const;
};

/// The simulator build of Algorithm 2.
class SimAlg2Register {
 public:
  /// Adds `n` atomic base registers with ids first_base..first_base+n-1
  /// to `sched`.  `initial` is the implemented register's initial value.
  SimAlg2Register(sim::Scheduler& sched, int n, sim::RegId first_base,
                  Value initial);

  /// Algorithm 2's write, executed by `self` as writer slot `k`
  /// (0 <= k < n; each slot must be used by at most one process at a
  /// time — SWMR discipline of Val[k], asserted).
  sim::ValueTask<void> write(sim::Proc& self, int k, Value v);

  /// Algorithm 2's read.
  sim::ValueTask<Value> read(sim::Proc& self);

  /// The implemented register's high-level history (register id 0).
  [[nodiscard]] const history::History& hl_history() const {
    return recorder_.history();
  }

  /// The Algorithm 3 instrumentation trace.
  [[nodiscard]] const Alg2Trace& trace() const noexcept { return trace_; }

  [[nodiscard]] int n() const noexcept { return n_; }

 private:
  [[nodiscard]] sim::RegId base(int i) const noexcept {
    return first_base_ + i;
  }
  int add_tuple(Value v, VectorTs ts);

  sim::Scheduler& sched_;
  int n_;
  sim::RegId first_base_;
  history::Recorder recorder_;
  Alg2Trace trace_;
  /// Tuple table: base registers hold indices into this vector.
  std::vector<std::pair<Value, VectorTs>> tuples_;
  std::vector<bool> writer_busy_;  ///< SWMR discipline check.
};

}  // namespace rlt::registers
