#include "registers/alg3_linearizer.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/assert.hpp"

namespace rlt::registers {

namespace {

/// Writes that performed their line-8 write to Val[-], in time order —
/// the events Algorithm 3 scans.
std::vector<int> val_write_order(const Alg2Trace& trace) {
  std::vector<int> idx;
  for (std::size_t i = 0; i < trace.writes.size(); ++i) {
    if (trace.writes[i].val_write_time != 0) idx.push_back(static_cast<int>(i));
  }
  std::sort(idx.begin(), idx.end(), [&trace](int a, int b) {
    return trace.writes[static_cast<std::size_t>(a)].val_write_time <
           trace.writes[static_cast<std::size_t>(b)].val_write_time;
  });
  return idx;
}

}  // namespace

Alg3Result run_alg3(const Alg2Trace& trace) {
  // ---- Lines 1-20: linearization of write operations ----
  std::vector<int> ws;  // trace write indices, linearized order
  std::vector<bool> in_ws(trace.writes.size(), false);

  for (const int wi_idx : val_write_order(trace)) {
    const Alg2WriteTrace& wi = trace.writes[static_cast<std::size_t>(wi_idx)];
    const Time ti = wi.val_write_time;
    if (in_ws[static_cast<std::size_t>(wi_idx)]) continue;  // lines 6, 11-13

    // Line 7: write operations active at ti and not yet linearized.
    // Line 8: their (possibly incomplete) timestamps at ti.
    // Line 9: B_i — those with timestamp <= wi's.
    struct Candidate {
      int idx;
      VectorTs ts;
    };
    std::vector<Candidate> bi;
    for (std::size_t w = 0; w < trace.writes.size(); ++w) {
      if (in_ws[w]) continue;
      const Alg2WriteTrace& cand = trace.writes[w];
      const bool active =
          cand.start <= ti && (cand.end == history::kNoTime || ti <= cand.end);
      if (!active) continue;
      VectorTs ts = static_cast<int>(w) == wi_idx
                        ? wi.final_ts
                        : cand.partial_ts_at(ti, trace.infinite_init);
      if (ts <= wi.final_ts) {
        bi.push_back(Candidate{static_cast<int>(w), std::move(ts)});
      }
    }
    // Line 10: append B_i in increasing timestamp order.  Equal partial
    // timestamps are broken by writer slot; the paper's proof shows no
    // read can ever observe the relative order of two non-wi members of
    // B_i (Claim 42.1.1), so any deterministic tie-break is sound — and
    // determinism is what Claim 49.1's prefix argument needs.
    std::sort(bi.begin(), bi.end(), [&trace](const Candidate& a,
                                             const Candidate& b) {
      const auto cmp = a.ts.compare(b.ts);
      if (cmp != std::strong_ordering::equal) {
        return cmp == std::strong_ordering::less;
      }
      return trace.writes[static_cast<std::size_t>(a.idx)].writer <
             trace.writes[static_cast<std::size_t>(b.idx)].writer;
    });
    for (const Candidate& c : bi) {
      ws.push_back(c.idx);
      in_ws[static_cast<std::size_t>(c.idx)] = true;
    }
    RLT_CHECK_MSG(in_ws[static_cast<std::size_t>(wi_idx)],
                  "Algorithm 3: wi must be in its own B_i");
  }

  // ---- Lines 21-32: linearization of read operations ----
  // Group completed reads by the timestamp of the value they returned
  // (timestamps identify writes uniquely, Observation 24).
  std::map<std::string, std::vector<int>> groups;  // ts key -> read indices
  for (std::size_t r = 0; r < trace.reads.size(); ++r) {
    groups[trace.reads[r].ts.to_string()].push_back(static_cast<int>(r));
  }
  for (auto& [key, reads] : groups) {
    std::sort(reads.begin(), reads.end(), [&trace](int a, int b) {
      return trace.reads[static_cast<std::size_t>(a)].start <
             trace.reads[static_cast<std::size_t>(b)].start;
    });
  }

  Alg3Result result;
  // Reads of the initial value (timestamp [0 … 0]) come first (line 26).
  const std::string initial_key = VectorTs::zeros(trace.n).to_string();
  if (const auto it = groups.find(initial_key); it != groups.end()) {
    for (const int r : it->second) {
      result.sequence.push_back(
          trace.reads[static_cast<std::size_t>(r)].hl_op_id);
    }
  }
  // Each write, followed by the reads that returned its value
  // (lines 28-29: after w, before any subsequent write).
  for (const int w : ws) {
    const Alg2WriteTrace& wt = trace.writes[static_cast<std::size_t>(w)];
    result.sequence.push_back(wt.hl_op_id);
    result.write_sequence.push_back(wt.hl_op_id);
    if (const auto it = groups.find(wt.final_ts.to_string());
        it != groups.end()) {
      for (const int r : it->second) {
        result.sequence.push_back(
            trace.reads[static_cast<std::size_t>(r)].hl_op_id);
      }
    }
  }
  return result;
}

Alg3Verification verify_alg3_wsl(const Alg2Trace& trace,
                                 const history::History& hl) {
  Alg3Verification out;

  // Observation 24: distinct writes publish distinct timestamps.
  {
    std::map<std::string, int> seen;
    for (std::size_t w = 0; w < trace.writes.size(); ++w) {
      const Alg2WriteTrace& wt = trace.writes[w];
      if (wt.val_write_time == 0) continue;
      const auto [it, inserted] =
          seen.emplace(wt.final_ts.to_string(), static_cast<int>(w));
      if (!inserted) {
        out.error = "Observation 24 violated: duplicate timestamp " +
                    wt.final_ts.to_string();
        return out;
      }
    }
  }

  const Alg3Result full = run_alg3(trace);

  // (L): the output is a legal linearization of the high-level history.
  {
    const checker::SequentialCheck chk =
        checker::is_legal_sequential(hl, full.sequence);
    if (!chk.ok) {
      out.error = "Algorithm 3 output is not a linearization: " + chk.error;
      return out;
    }
  }

  // (P): the write sequence on every prefix is a prefix of the full one.
  // Event times at which the trace (and thus WS) can change:
  std::vector<Time> times;
  for (const Alg2WriteTrace& w : trace.writes) {
    times.push_back(w.start);
    if (w.end != history::kNoTime) times.push_back(w.end);
    if (w.val_write_time != 0) times.push_back(w.val_write_time);
    for (const Time t : w.entry_set_time) {
      if (t != 0) times.push_back(t);
    }
  }
  for (const Alg2ReadTrace& r : trace.reads) {
    times.push_back(r.start);
    if (r.end != history::kNoTime) times.push_back(r.end);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  for (const Time t : times) {
    const Alg2Trace prefix = trace.prefix_at(t);
    const Alg3Result part = run_alg3(prefix);
    if (!checker::is_prefix_of(part.write_sequence, full.write_sequence)) {
      std::ostringstream os;
      os << "prefix property violated at t=" << t << ": WS(prefix) = [";
      for (const int id : part.write_sequence) os << ' ' << id;
      os << " ] is not a prefix of WS(full) = [";
      for (const int id : full.write_sequence) os << ' ' << id;
      os << " ]";
      out.error = os.str();
      return out;
    }
    // (L) on the prefix as well (ids are stable: invocation order == id
    // order, so an event-prefix keeps a prefix of the id space).
    const history::History hp = hl.prefix_at(t);
    std::vector<int> seq;
    for (const int id : part.sequence) {
      if (id < static_cast<int>(hp.size())) seq.push_back(id);
    }
    const checker::SequentialCheck chk = checker::is_legal_sequential(hp, seq);
    if (!chk.ok) {
      out.error = "Algorithm 3 prefix output is not a linearization at t=" +
                  std::to_string(t) + ": " + chk.error;
      return out;
    }
    ++out.prefixes_checked;
  }
  out.ok = true;
  return out;
}

}  // namespace rlt::registers
