#include "registers/vector_ts.hpp"

#include <ostream>
#include <sstream>

namespace rlt::registers {

VectorTs VectorTs::zeros(int n) {
  VectorTs ts;
  ts.entries_.assign(static_cast<std::size_t>(n), 0);
  return ts;
}

VectorTs VectorTs::infinite(int n) {
  VectorTs ts;
  ts.entries_.assign(static_cast<std::size_t>(n), kInf);
  return ts;
}

bool VectorTs::complete() const noexcept {
  for (const std::uint64_t e : entries_) {
    if (e == kInf) return false;
  }
  return true;
}

std::strong_ordering VectorTs::compare(const VectorTs& other) const {
  // Sizes must match in well-formed use; shorter compares less on prefix
  // equality (mirrors std::lexicographical_compare_three_way).
  const std::size_t n = std::min(entries_.size(), other.entries_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (entries_[i] != other.entries_[i]) {
      return entries_[i] < other.entries_[i] ? std::strong_ordering::less
                                             : std::strong_ordering::greater;
    }
  }
  return entries_.size() <=> other.entries_.size();
}

std::string VectorTs::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const VectorTs& ts) {
  os << '[';
  for (int i = 0; i < ts.size(); ++i) {
    if (i > 0) os << ',';
    if (ts[i] == VectorTs::kInf) {
      os << "inf";
    } else {
      os << ts[i];
    }
  }
  return os << ']';
}

std::string LamportTs::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const LamportTs& ts) {
  return os << "<" << ts.sq << ',' << ts.pid << '>';
}

}  // namespace rlt::registers
