#include "registers/alg4_register.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rlt::registers {

SimAlg4Register::SimAlg4Register(sim::Scheduler& sched, int n,
                                 sim::RegId first_base,
                                 history::Value initial)
    : sched_(sched), n_(n), first_base_(first_base) {
  RLT_CHECK_MSG(n >= 1, "need at least one writer slot");
  recorder_.set_initial(0, initial);
  writer_busy_.assign(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    // Val[i] initialized to (0, <0, i>) — here: (initial, <0, i>).
    tuples_.emplace_back(initial, LamportTs{0, i});
    sched_.add_register(base(i), sim::Semantics::kAtomic,
                        static_cast<history::Value>(i));
  }
}

sim::ValueTask<void> SimAlg4Register::write(sim::Proc& self, int k,
                                            history::Value v) {
  RLT_CHECK_MSG(k >= 0 && k < n_, "writer slot out of range");
  RLT_CHECK_MSG(!writer_busy_[static_cast<std::size_t>(k)],
                "Val[" << k << "] is single-writer");
  writer_busy_[static_cast<std::size_t>(k)] = true;

  const history::Time start = sched_.advance_clock();
  const history::OpHandle h =
      recorder_.begin_op(self.id(), 0, history::OpKind::kWrite, v, start);

  // Lines 1-3: read every Val[i].
  std::int64_t max_sq = 0;
  for (int i = 0; i < n_; ++i) {
    const history::Value handle = co_await self.read(base(i));
    const LamportTs& ts = tuples_[static_cast<std::size_t>(handle)].second;
    max_sq = std::max(max_sq, ts.sq);
  }
  // Lines 4-5: new_ts = <max sq + 1, k>.
  const LamportTs new_ts{max_sq + 1, k};
  // Line 6: publish.
  tuples_.emplace_back(v, new_ts);
  co_await self.write(base(k),
                      static_cast<history::Value>(tuples_.size() - 1));

  recorder_.end_op(h, 0, sched_.advance_clock());
  writer_busy_[static_cast<std::size_t>(k)] = false;
  co_return;  // line 7
}

sim::ValueTask<history::Value> SimAlg4Register::read(sim::Proc& self) {
  const history::Time start = sched_.advance_clock();
  const history::OpHandle h =
      recorder_.begin_op(self.id(), 0, history::OpKind::kRead, 0, start);

  // Lines 8-10: read every Val[i]; lines 11-12: return the
  // lexicographically greatest ⟨sq, pid⟩'s value.
  int best = -1;
  for (int i = 0; i < n_; ++i) {
    const history::Value handle = co_await self.read(base(i));
    if (best < 0 || tuples_[static_cast<std::size_t>(handle)].second >
                        tuples_[static_cast<std::size_t>(best)].second) {
      best = static_cast<int>(handle);
    }
  }
  const history::Value value = tuples_[static_cast<std::size_t>(best)].first;
  recorder_.end_op(h, value, sched_.advance_clock());
  co_return value;
}

}  // namespace rlt::registers
