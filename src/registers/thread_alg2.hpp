// Real-thread build of Algorithm 2 (write strongly-linearizable MWMR
// register from SWMR registers), over seqlock base registers.
//
// Used by the std::thread stress tests (recorded histories are checked by
// the linearizability and WSL checkers) and by the perf benches that
// measure the cost of vector timestamps (O(n) entries per operation)
// against Algorithm 4's scalar Lamport clocks — the paper's "achieving
// write strong-linearizability is harder" claim, in nanoseconds.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "history/recorder.hpp"
#include "registers/seqlock.hpp"

namespace rlt::registers {

/// Maximum writer slots of the thread builds (compile-time payload size).
inline constexpr int kMaxThreadWriters = 8;

/// The tuple stored in each base register Val[k].
struct Alg2Tuple {
  history::Value value = 0;
  std::uint64_t ts[kMaxThreadWriters] = {};

  /// Lexicographic timestamp comparison over the first n entries.
  [[nodiscard]] bool ts_less(const Alg2Tuple& other, int n) const noexcept {
    for (int i = 0; i < n; ++i) {
      if (ts[i] != other.ts[i]) return ts[i] < other.ts[i];
    }
    return false;
  }
};

/// Thread build of Algorithm 2.
class ThreadAlg2Register {
 public:
  /// `record`: capture every operation into the concurrent recorder (for
  /// checker-validated stress tests); disable for perf benches.
  ThreadAlg2Register(int n, history::Value initial, bool record = true);

  /// Algorithm 2's write, called from writer thread `k` (0 <= k < n).
  void write(int k, history::Value v);

  /// Algorithm 2's read, callable from any thread. `reader` is only used
  /// to label the recorded history.
  [[nodiscard]] history::Value read(int reader);

  /// Recorded high-level history snapshot (register id 0).
  [[nodiscard]] history::History history_snapshot() const {
    return recorder_.snapshot();
  }

  [[nodiscard]] int n() const noexcept { return n_; }

 private:
  int n_;
  bool record_;
  std::vector<std::unique_ptr<SeqlockSWMR<Alg2Tuple>>> vals_;
  history::ConcurrentRecorder recorder_;
};

}  // namespace rlt::registers
