// Real-thread build of Algorithm 4 (Lamport-clock MWMR register from
// SWMR registers) — the linearizable-but-not-WSL baseline, plus a locked
// register for perf comparison.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "history/recorder.hpp"
#include "registers/seqlock.hpp"

namespace rlt::registers {

/// The tuple stored in each of Algorithm 4's base registers.
struct Alg4Tuple {
  history::Value value = 0;
  std::int64_t sq = 0;
  std::int32_t pid = 0;

  [[nodiscard]] bool ts_less(const Alg4Tuple& other) const noexcept {
    if (sq != other.sq) return sq < other.sq;
    return pid < other.pid;
  }
};

/// Thread build of Algorithm 4.
class ThreadAlg4Register {
 public:
  ThreadAlg4Register(int n, history::Value initial, bool record = true);

  /// Algorithm 4's write, called from writer thread `k`.
  void write(int k, history::Value v);
  /// Algorithm 4's read, callable from any thread.
  [[nodiscard]] history::Value read(int reader);

  [[nodiscard]] history::History history_snapshot() const {
    return recorder_.snapshot();
  }
  [[nodiscard]] int n() const noexcept { return n_; }

 private:
  int n_;
  bool record_;
  std::vector<std::unique_ptr<SeqlockSWMR<Alg4Tuple>>> vals_;
  history::ConcurrentRecorder recorder_;
};

/// Mutex-protected MWMR register: the trivially-atomic baseline for the
/// perf benches (not built from SWMR registers; included to calibrate
/// what the SWMR constructions cost relative to plain mutual exclusion).
class LockedMwmrRegister {
 public:
  explicit LockedMwmrRegister(history::Value initial) : value_(initial) {}

  void write(history::Value v) {
    const std::lock_guard<std::mutex> lock(mutex_);
    value_ = v;
  }
  [[nodiscard]] history::Value read() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return value_;
  }

 private:
  mutable std::mutex mutex_;
  history::Value value_;
};

}  // namespace rlt::registers
