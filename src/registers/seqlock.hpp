// A sequence-lock SWMR register for real-thread executions.
//
// The thread builds of Algorithms 2 and 4 need base SWMR registers whose
// payload is a (value, timestamp) tuple — wider than any hardware atomic.
// A seqlock gives a linearizable (indeed atomic) single-writer register:
// the writer bumps the version to odd, publishes the words, bumps to
// even; a reader retries until it sees a stable even version.  The writer
// is wait-free; readers are obstruction-free (they retry only while the
// writer is mid-publish), which matches Lamport's SWMR register model
// well enough for stress testing and benchmarking.
//
// The payload is stored as relaxed std::atomic words with acquire/release
// fences on the version counter (Boehm's seqlock recipe), so the
// implementation is free of data races in the C++ memory model.
#pragma once

#include <array>
#include <atomic>
#include <cstring>
#include <type_traits>

namespace rlt::registers {

template <class T>
class SeqlockSWMR {
  static_assert(std::is_trivially_copyable_v<T>,
                "seqlock payloads must be trivially copyable");

 public:
  explicit SeqlockSWMR(const T& initial) {
    store_words(initial);
  }

  /// Single-writer write.  Callers must ensure at most one thread writes.
  void write(const T& value) noexcept {
    const std::uint64_t v = version_.load(std::memory_order_relaxed);
    version_.store(v + 1, std::memory_order_relaxed);  // odd: in progress
    std::atomic_thread_fence(std::memory_order_release);
    store_words(value);
    version_.store(v + 2, std::memory_order_release);  // even: stable
  }

  /// Multi-reader read (retries while a write is in progress).
  [[nodiscard]] T read() const noexcept {
    for (;;) {
      const std::uint64_t v1 = version_.load(std::memory_order_acquire);
      if ((v1 & 1) != 0) continue;
      std::array<std::uint64_t, kWords> buffer;
      for (std::size_t i = 0; i < kWords; ++i) {
        buffer[i] = words_[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t v2 = version_.load(std::memory_order_relaxed);
      if (v1 == v2) {
        T out;
        // Cast through void*: T is trivially copyable but may have
        // default member initializers (non-trivial default ctor), which
        // -Wclass-memaccess flags spuriously.
        std::memcpy(static_cast<void*>(&out), buffer.data(), sizeof(T));
        return out;
      }
    }
  }

 private:
  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

  void store_words(const T& value) noexcept {
    std::array<std::uint64_t, kWords> buffer{};
    std::memcpy(buffer.data(), static_cast<const void*>(&value), sizeof(T));
    for (std::size_t i = 0; i < kWords; ++i) {
      words_[i].store(buffer[i], std::memory_order_relaxed);
    }
  }

  std::atomic<std::uint64_t> version_{0};
  mutable std::array<std::atomic<std::uint64_t>, kWords> words_{};
};

}  // namespace rlt::registers
