// Timestamps for the MWMR-from-SWMR register constructions.
//
//  * `VectorTs` — Algorithm 2's vector timestamps.  Entries start at ∞
//    ("[∞, …, ∞]") and are filled in one at a time while a write
//    operation scans Val[1..n]; comparing *partially formed* timestamps
//    lexicographically (∞ greater than everything) is exactly what lets
//    Algorithm 3 order concurrent writes on-line (Figure 3).
//  * `LamportTs` — Algorithm 4's Lamport-clock timestamps ⟨sq, pid⟩,
//    ordered lexicographically.  Sufficient for linearizability
//    (Theorem 12) but not for write strong-linearizability (Theorem 13).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rlt::registers {

/// A vector timestamp of fixed length n with ∞-able entries.
class VectorTs {
 public:
  /// The ∞ sentinel; greater than every finite entry.
  static constexpr std::uint64_t kInf = ~std::uint64_t{0};

  VectorTs() = default;
  /// n zero entries (the initial tuple's timestamp "[0 … 0]").
  static VectorTs zeros(int n);
  /// n ∞ entries (a write's new_ts before any entry is set, line 9).
  static VectorTs infinite(int n);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(entries_.size());
  }
  [[nodiscard]] std::uint64_t operator[](int i) const {
    return entries_.at(static_cast<std::size_t>(i));
  }
  void set(int i, std::uint64_t v) {
    entries_.at(static_cast<std::size_t>(i)) = v;
  }

  /// True iff no entry is ∞ (the timestamp is fully formed).
  [[nodiscard]] bool complete() const noexcept;

  /// Lexicographic order, ∞ greatest (Definition 22 / Observation 23).
  [[nodiscard]] std::strong_ordering compare(const VectorTs& other) const;

  friend bool operator==(const VectorTs&, const VectorTs&) = default;
  friend std::strong_ordering operator<=>(const VectorTs& a,
                                          const VectorTs& b) {
    return a.compare(b);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint64_t> entries_;
};

std::ostream& operator<<(std::ostream& os, const VectorTs& ts);

/// Algorithm 4's ⟨sq, pid⟩ timestamp.
struct LamportTs {
  std::int64_t sq = 0;
  int pid = 0;

  friend auto operator<=>(const LamportTs&, const LamportTs&) = default;
  [[nodiscard]] std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const LamportTs& ts);

}  // namespace rlt::registers
