// Algorithm 3: the write strong-linearization function f for Algorithm 2
// histories, as executable code.
//
// Algorithm 3 scans the history by increasing time and maintains the
// sequence WS of writes linearized so far.  At the time ti of the i-th
// write to some Val[-] (line 8 of Algorithm 2), if the writing operation
// wi is not yet in WS, it collects the set Ci of write operations active
// at ti and not in WS, evaluates their (possibly *incomplete*) vector
// timestamps at ti (unset entries read as ∞), keeps those with timestamp
// <= wi's (Bi), and appends Bi to WS in increasing timestamp order.
// Reads returning (v, ts) are then placed right after the write that
// published (v, ts), ordered among themselves by start time (reads of the
// initial value go first).
//
// Because WS only ever grows by appending — using information available
// at time ti only — the resulting linearization function satisfies the
// prefix property (P) of Definition 4; `verify_alg3_wsl` re-runs the
// construction on every trace prefix and checks this mechanically, plus
// properties 1-3 of Definition 2 via the sequential-spec validator.
#pragma once

#include <string>
#include <vector>

#include "checker/spec.hpp"
#include "registers/alg2_register.hpp"

namespace rlt::registers {

/// Output of one run of Algorithm 3.
struct Alg3Result {
  /// hl op ids in linearization order (writes that reached line 8, plus
  /// all completed reads).
  std::vector<int> sequence;
  /// The write subsequence of `sequence` (hl op ids) — "WS".
  std::vector<int> write_sequence;
};

/// Runs Algorithm 3 on an instrumentation trace.
[[nodiscard]] Alg3Result run_alg3(const Alg2Trace& trace);

/// Verdict of the full Theorem 10 verification.
struct Alg3Verification {
  bool ok = false;
  std::string error;
  std::size_t prefixes_checked = 0;
};

/// Verifies that Algorithm 3 defines a write strong-linearization
/// function for this execution:
///  (L) its output is a legal linearization of the high-level history
///      (Definition 2, via checker::is_legal_sequential), and
///  (P) for every event-prefix of the trace, the write sequence produced
///      on the prefix is a prefix of the write sequence produced on the
///      full trace (Lemma 49 / Claim 49.1).
[[nodiscard]] Alg3Verification verify_alg3_wsl(const Alg2Trace& trace,
                                               const history::History& hl);

}  // namespace rlt::registers
