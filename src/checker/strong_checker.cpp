#include "checker/strong_checker.hpp"

#include <algorithm>
#include <sstream>

#include "checker/tree_common.hpp"
#include "history/view.hpp"
#include "util/assert.hpp"

namespace rlt::checker {

namespace {

using detail::EventSig;
using detail::for_each_ordered_selection;
using detail::OpKey;
using detail::prepare_run;
using detail::PreparedRun;
using history::HistoryView;

struct StrongSearch {
  std::vector<PreparedRun> runs;
  Value initial = 0;
  std::string first_failure;
  std::size_t deepest_failure_events = 0;
  std::vector<std::vector<int>> result_orders;

  /// Is `committed` a legal value of f(G) for the prefix of `run` with
  /// `nevents` events?  f(G) must contain all completed ops of G, only
  /// invoked ops, respect real time, and satisfy register semantics with
  /// completed reads returning their actual values.  Validates against a
  /// zero-copy prefix view — no History copy, no per-probe id-map
  /// rebuild; ids below are base-history ids.
  bool valid(const PreparedRun& run, std::size_t nevents,
             const std::vector<OpKey>& committed, std::string* why) const {
    const auto fail = [why](const std::string& reason) {
      if (why != nullptr) *why = reason;
      return false;
    };
    // The empty prefix is unrepresentable as a cutoff when the run's
    // first event is at time 0 (unsigned Time, inclusive cutoffs), so
    // answer it directly: valid iff nothing is committed.
    if (nevents == 0) {
      return committed.empty() ||
             fail("committed op not invoked in empty prefix");
    }
    const Time t = run.events[nevents - 1].time;
    const HistoryView view(*run.h, t);

    std::vector<int> order;
    order.reserve(committed.size());
    for (const OpKey& key : committed) {
      const int id = run.id_of(key);
      if (id < 0 || !view.included(id)) {
        std::ostringstream os;
        os << "committed op " << key << " not invoked in prefix";
        return fail(os.str());
      }
      order.push_back(id);
    }
    // All completed ops present?
    {
      std::vector<bool> present(view.base_size(), false);
      for (const int id : order) present[static_cast<std::size_t>(id)] = true;
      for (int id = 0; id < static_cast<int>(view.base_size()); ++id) {
        if (view.completed(id) && !present[static_cast<std::size_t>(id)]) {
          std::ostringstream os;
          os << "completed op" << id << " missing from committed order";
          return fail(os.str());
        }
      }
    }
    // Real-time precedence.
    for (std::size_t i = 0; i < order.size(); ++i) {
      for (std::size_t j = i + 1; j < order.size(); ++j) {
        if (view.precedes(order[j], order[i])) {
          std::ostringstream os;
          os << "real-time violation between op" << order[j] << " and op"
             << order[i];
          return fail(os.str());
        }
      }
    }
    // Register semantics; completed reads must match, pending reads take
    // their invented (position-determined) value.
    Value value = initial;
    for (const int id : order) {
      if (view.is_write(id)) {
        value = view.value(id);
      } else if (view.completed(id) && view.value(id) != value) {
        std::ostringstream os;
        os << "read op" << id << " returned " << view.value(id)
           << " but committed position implies " << value;
        return fail(os.str());
      }
    }
    return true;
  }

  std::vector<OpKey> extension_candidates(
      const PreparedRun& run, std::size_t nevents,
      const std::vector<OpKey>& committed) const {
    // Empty prefix: nothing invoked yet (see valid() on why nevents == 0
    // cannot be expressed as a cutoff).
    if (nevents == 0) return {};
    const Time t = run.events[nevents - 1].time;
    std::vector<OpKey> out;
    for (const OpRecord& op : run.h->ops()) {
      if (op.invoke > t) continue;
      const OpKey key = run.op_keys[static_cast<std::size_t>(op.id)];
      if (std::find(committed.begin(), committed.end(), key) ==
          committed.end()) {
        out.push_back(key);
      }
    }
    return out;
  }

  void note_failure(std::size_t nevents, const std::string& description) {
    if (nevents >= deepest_failure_events) {
      deepest_failure_events = nevents;
      first_failure = description;
    }
  }

  bool walk(const std::vector<int>& group, std::size_t depth,
            std::vector<OpKey>& committed);
  bool step(const std::vector<int>& subgroup, std::size_t depth,
            std::vector<OpKey>& committed);
};

bool StrongSearch::step(const std::vector<int>& subgroup, std::size_t depth,
                        std::vector<OpKey>& committed) {
  const PreparedRun& rep = runs[static_cast<std::size_t>(subgroup.front())];
  const std::size_t nevents = depth + 1;

  std::string why;
  if (valid(rep, nevents, committed, &why)) {
    return walk(subgroup, nevents, committed);
  }

  const std::vector<OpKey> candidates =
      extension_candidates(rep, nevents, committed);
  std::ostringstream failure;
  failure << why << "; tried extensions over " << candidates.size()
          << " uncommitted ops:";
  const std::size_t base = committed.size();
  const bool ok = for_each_ordered_selection(
      candidates, [&](const std::vector<OpKey>& extension) -> bool {
        committed.resize(base);
        committed.insert(committed.end(), extension.begin(), extension.end());
        const auto render = [&extension](std::ostream& os) {
          os << "\n  + [";
          for (std::size_t i = 0; i < extension.size(); ++i) {
            os << (i == 0 ? "" : ", ") << extension[i];
          }
          os << ']';
        };
        if (!valid(rep, nevents, committed, nullptr)) {
          render(failure);
          failure << " invalid";
          return false;
        }
        if (walk(subgroup, nevents, committed)) return true;
        render(failure);
        failure << " valid here but fails on a continuation";
        return false;
      });
  if (!ok) {
    committed.resize(base);
    note_failure(nevents, failure.str());
  }
  return ok;
}

bool StrongSearch::walk(const std::vector<int>& group, std::size_t depth,
                        std::vector<OpKey>& committed) {
  std::vector<int> active;
  for (const int idx : group) {
    const PreparedRun& run = runs[static_cast<std::size_t>(idx)];
    if (run.events.size() <= depth) {
      std::vector<int> ids;
      for (const OpKey& key : committed) {
        const int id = run.id_of(key);
        if (id >= 0) ids.push_back(id);
      }
      result_orders[static_cast<std::size_t>(run.input_index)] =
          std::move(ids);
    } else {
      active.push_back(idx);
    }
  }
  if (active.empty()) return true;

  std::vector<std::pair<EventSig, std::vector<int>>> partitions;
  for (const int idx : active) {
    const PreparedRun& run = runs[static_cast<std::size_t>(idx)];
    const EventSig& sig = run.signatures[depth];
    auto it = std::find_if(partitions.begin(), partitions.end(),
                           [&sig](const auto& p) { return p.first == sig; });
    if (it == partitions.end()) {
      partitions.push_back({sig, {idx}});
    } else {
      it->second.push_back(idx);
    }
  }

  const std::vector<OpKey> snapshot = committed;
  for (const auto& [sig, subgroup] : partitions) {
    committed = snapshot;
    if (!step(subgroup, depth, committed)) {
      committed = snapshot;
      return false;
    }
  }
  committed = snapshot;
  return true;
}

}  // namespace

StrongCheckResult check_strong_linearizable(const std::vector<History>& runs) {
  StrongCheckResult result;
  RLT_CHECK_MSG(!runs.empty(), "need at least one history");

  StrongSearch search;
  search.result_orders.resize(runs.size());
  const auto reg0 = single_register_of(runs.front());
  search.initial = runs.front().initial(reg0);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto reg = single_register_of(runs[i]);
    RLT_CHECK_MSG(reg == reg0, "all runs must use the same register");
    RLT_CHECK_MSG(runs[i].initial(reg) == search.initial,
                  "all runs must share the initial value");
    search.runs.push_back(prepare_run(runs[i], static_cast<int>(i)));
  }

  std::vector<int> group(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) group[i] = static_cast<int>(i);
  std::vector<OpKey> committed;
  const bool ok = search.walk(group, 0, committed);
  result.ok = ok;
  if (ok) {
    result.orders = std::move(search.result_orders);
  } else {
    std::ostringstream os;
    os << "no strong linearization function exists; deepest failing "
          "decision point (after "
       << search.deepest_failure_events
       << " events): " << search.first_failure;
    result.explanation = os.str();
  }
  return result;
}

StrongCheckResult check_strong_linearizable(const History& run) {
  return check_strong_linearizable(std::vector<History>{run});
}

}  // namespace rlt::checker
