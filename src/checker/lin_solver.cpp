#include "checker/lin_solver.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace rlt::checker {

namespace {

using history::HistoryView;

/// Dense per-solve view of the history plus constraint bookkeeping.
///
/// Everything the DFS consults per node is precomputed here at context
/// build time:
///  * `pred[id]` — bitmask of completed ops that strictly precede op
///    `id` in real time, so the availability rule is one AND per
///    candidate instead of a scan over unplaced completed ops;
///  * `reads_by_value` — placeable reads grouped by returned value, so
///    candidate generation starts from a table lookup instead of an
///    O(n) kind/value filter;
///  * `write_mask` — placeable writes (kFree candidates are
///    value-independent; kExact restricts to the next write of the exact
///    order, whose index the DFS threads down instead of recomputing).
struct SolveContext {
  HistoryView view;
  WriteOrderMode mode = WriteOrderMode::kFree;
  const std::vector<int>* exact = nullptr;  // op ids, kExact only
  std::uint64_t completed_mask = 0;  // ops that must be placed
  std::uint64_t must_place_mask = 0; // completed + listed pending writes
  std::uint64_t placeable_mask = 0;  // ops that may ever be placed
  std::uint64_t write_mask = 0;      // placeable writes
  std::uint64_t all_writes_mask = 0; // every write included in the view
  /// Per op id: completed predecessors.  Inline (no heap): n <= 64.
  std::array<std::uint64_t, 64> pred{};
  /// Placeable reads grouped by returned value, sorted by value; inline.
  std::array<std::pair<Value, std::uint64_t>, 64> reads_by_value{};
  int nread_groups = 0;
  /// Placeable writes grouped by written value, sorted by value; inline.
  /// Consulted by the doomed-state prune.
  std::array<std::pair<Value, std::uint64_t>, 64> writes_by_value{};
  int nwrite_groups = 0;
  /// Response time of every completed op (completion overlay applied);
  /// the accept shortcut orders remaining free-mode writes by it.
  std::array<Time, 64> resp{};
  /// kExact only: exact_suffix[i] = ops of exact[i..] as a bitmask — the
  /// writes still placeable once `exact_next` reaches `i`.
  std::array<std::uint64_t, 65> exact_suffix{};
  bool prune = true;
  /// Allowed pre-history values: caller-supplied list, or the register's
  /// initial value.
  const std::vector<Value>* initials = nullptr;
  Value single_initial = 0;
  int n = 0;

  /// Search statistics, tallied locally (plain increments on this
  /// context — no registry traffic inside the DFS) and flushed to the
  /// obs registry once per solver entry when observability is on.
  std::uint64_t stat_nodes = 0;
  std::uint64_t stat_memo_hits = 0;
  std::uint64_t stat_prune_doomed = 0;
  std::uint64_t stat_prune_eager = 0;
  std::uint64_t stat_prune_accept = 0;

  // State key for memoization (failed states / visited states).
  struct Key {
    std::uint64_t mask;
    Value value;
    friend bool operator==(const Key&, const Key&) = default;
  };
  static std::uint64_t mix_key(const Key& k) noexcept {
    // 64-bit mix of both fields (splitmix-style).
    std::uint64_t x = k.mask * 0x9E3779B97F4A7C15ULL;
    x ^= static_cast<std::uint64_t>(k.value) + 0xBF58476D1CE4E5B9ULL +
         (x << 6) + (x >> 2);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    return x ^ (x >> 31);
  }

  /// Open-addressing state-key set.  Most solves memoize a handful of
  /// states; std::unordered_set spends more time constructing and
  /// tearing down buckets than probing.  Inline storage for 64 slots,
  /// heap growth only for genuinely hard instances.
  class SeenSet {
   public:
    bool insert(const Key& k) {  // true iff newly inserted
      if (size_ * 4 >= capacity_ * 3) grow();
      Slot* slot = find_slot(slots(), capacity_, k);
      if (slot->used) return false;
      *slot = Slot{k, true};
      ++size_;
      return true;
    }
    [[nodiscard]] bool contains(const Key& k) const {
      return find_slot(slots(), capacity_, k)->used;
    }

   private:
    struct Slot {
      Key key{0, 0};
      bool used = false;
    };
    static Slot* find_slot(Slot* slots, std::size_t capacity, const Key& k) {
      std::size_t i = static_cast<std::size_t>(mix_key(k)) & (capacity - 1);
      while (slots[i].used && !(slots[i].key == k)) {
        i = (i + 1) & (capacity - 1);
      }
      return &slots[i];
    }
    static const Slot* find_slot(const Slot* slots, std::size_t capacity,
                                 const Key& k) {
      return find_slot(const_cast<Slot*>(slots), capacity, k);
    }
    [[nodiscard]] Slot* slots() noexcept {
      return heap_.empty() ? inline_.data() : heap_.data();
    }
    [[nodiscard]] const Slot* slots() const noexcept {
      return heap_.empty() ? inline_.data() : heap_.data();
    }
    void grow() {
      const std::size_t next = capacity_ * 2;
      std::vector<Slot> bigger(next);
      for (std::size_t i = 0; i < capacity_; ++i) {
        const Slot& s = slots()[i];
        if (s.used) *find_slot(bigger.data(), next, s.key) = s;
      }
      heap_ = std::move(bigger);
      capacity_ = next;
    }

    std::array<Slot, 64> inline_{};
    std::vector<Slot> heap_;
    std::size_t capacity_ = 64;
    std::size_t size_ = 0;
  };
  SeenSet seen;

  [[nodiscard]] bool done(std::uint64_t mask) const noexcept {
    return (mask & must_place_mask) == must_place_mask;
  }

  [[nodiscard]] std::uint64_t reads_of(Value v) const noexcept {
    const auto begin = reads_by_value.begin();
    const auto end = begin + nread_groups;
    const auto it = std::lower_bound(
        begin, end, v,
        [](const auto& entry, Value value) { return entry.first < value; });
    return it != end && it->first == v ? it->second : 0;
  }

  /// Ops placeable next from state (mask, value): matching-value reads
  /// plus the allowed write(s), availability-filtered — O(1) per edge.
  [[nodiscard]] std::uint64_t candidates(std::uint64_t mask, Value value,
                                         int exact_next) const noexcept {
    std::uint64_t cand = reads_of(value);
    if (mode == WriteOrderMode::kExact) {
      if (exact_next < static_cast<int>(exact->size())) {
        cand |= 1ULL << (*exact)[static_cast<std::size_t>(exact_next)];
      }
    } else {
      cand |= write_mask;
    }
    cand &= ~mask;
    std::uint64_t out = 0;
    while (cand != 0) {
      const int id = std::countr_zero(cand);
      cand &= cand - 1;
      // Available iff every completed predecessor is already placed.
      if ((pred[static_cast<std::size_t>(id)] & ~mask) == 0) {
        out |= 1ULL << id;
      }
    }
    return out;
  }

  [[nodiscard]] std::uint64_t writes_of(Value v) const noexcept {
    const auto begin = writes_by_value.begin();
    const auto end = begin + nwrite_groups;
    const auto it = std::lower_bound(
        begin, end, v,
        [](const auto& entry, Value value) { return entry.first < value; });
    return it != end && it->first == v ? it->second : 0;
  }

  /// Doomed-state prune: true iff some unplaced completed read returns a
  /// value that is neither the current register value nor produced by any
  /// still-placeable write — no completion (and hence no done-state) is
  /// reachable from (mask, value).  `future_writes` is the mask of writes
  /// that may still be placed from this state.
  [[nodiscard]] bool doomed(std::uint64_t mask, Value value,
                            std::uint64_t future_writes) const noexcept {
    for (int g = 0; g < nread_groups; ++g) {
      const auto& [v, rmask] = reads_by_value[static_cast<std::size_t>(g)];
      if ((rmask & ~mask) == 0) continue;  // every read of v already placed
      if (v == value) continue;            // current value serves it
      if ((writes_of(v) & future_writes) != 0) continue;  // a write can
      return true;
    }
    return false;
  }

  /// Accept shortcut (find-one searches, every completed read placed):
  /// tries to discharge the remaining write obligations directly.  Free
  /// mode always succeeds — the remaining must-place ops are completed
  /// writes, placeable in response-time order (any blocker responds
  /// earlier and is therefore placed first).  Exact mode walks the
  /// remaining committed suffix, which is the only extension the DFS
  /// could try anyway (no read candidates remain), so failure here is
  /// failure of the whole subtree.  Appends the placed ops to `order`
  /// (rolled back by the caller on failure).
  [[nodiscard]] bool try_accept_suffix(std::uint64_t mask, int exact_next,
                                       std::vector<int>* order) const {
    if (mode == WriteOrderMode::kExact) {
      std::uint64_t m = mask;
      for (std::size_t i = static_cast<std::size_t>(exact_next);
           i < exact->size(); ++i) {
        const int w_id = (*exact)[i];
        if ((pred[static_cast<std::size_t>(w_id)] & ~m) != 0) return false;
        m |= 1ULL << w_id;
        if (order != nullptr) order->push_back(w_id);
      }
      return true;
    }
    std::uint64_t rem = must_place_mask & ~mask;  // completed writes only
    std::array<int, 64> by_resp{};
    int nrem = 0;
    while (rem != 0) {
      const int id = std::countr_zero(rem);
      rem &= rem - 1;
      int j = nrem++;
      while (j > 0 && resp[static_cast<std::size_t>(
                          by_resp[static_cast<std::size_t>(j - 1)])] >
                          resp[static_cast<std::size_t>(id)]) {
        by_resp[static_cast<std::size_t>(j)] =
            by_resp[static_cast<std::size_t>(j - 1)];
        --j;
      }
      by_resp[static_cast<std::size_t>(j)] = id;
    }
    if (order != nullptr) {
      for (int i = 0; i < nrem; ++i) {
        order->push_back(by_resp[static_cast<std::size_t>(i)]);
      }
    }
    return true;
  }
};

SolveContext make_context(const LinProblem& problem) {
  RLT_CHECK(problem.history != nullptr);
  const History& h = *problem.history;
  const auto reg = single_register_of(h);
  RLT_CHECK_MSG(h.size() <= 64, "solver supports at most 64 ops, got "
                                    << h.size());
  SolveContext ctx;
  ctx.view = HistoryView(h, problem.cutoff);
  ctx.mode = problem.mode;
  ctx.n = static_cast<int>(h.size());
  ctx.prune = problem.prune;
  if (problem.initial_values.has_value()) {
    RLT_CHECK_MSG(!problem.initial_values->empty(),
                  "initial_values must not be empty when supplied");
    ctx.initials = &*problem.initial_values;
  } else {
    ctx.single_initial = h.initial(reg);
  }

  // Completion overlay: one pending op is treated as completed.
  const int cop = problem.completion ? problem.completion->op_id : -1;
  if (problem.completion) {
    RLT_CHECK_MSG(cop >= 0 && cop < ctx.n, "completion op id out of range");
    RLT_CHECK_MSG(ctx.view.included(cop) && !ctx.view.completed(cop),
                  "completion overlay must name an op pending in the view");
    RLT_CHECK_MSG(problem.completion->response > ctx.view.invoke(cop),
                  "completion response not after invocation");
  }
  const auto completed = [&ctx, cop](int id) {
    return id == cop || ctx.view.completed(id);
  };
  const auto response_of = [&ctx, cop, &problem](int id) {
    return id == cop ? problem.completion->response : ctx.view.response(id);
  };

  for (int id = 0; id < ctx.n; ++id) {
    if (!ctx.view.included(id)) continue;
    const std::uint64_t bit = 1ULL << id;
    if (ctx.view.is_write(id)) ctx.all_writes_mask |= bit;
    if (completed(id)) {
      ctx.completed_mask |= bit;
      ctx.resp[static_cast<std::size_t>(id)] = response_of(id);
      if (ctx.view.is_read(id)) ctx.placeable_mask |= bit;
    }
  }
  ctx.must_place_mask = ctx.completed_mask;

  ctx.exact = &problem.exact_write_order;
  if (problem.mode == WriteOrderMode::kExact) {
    std::uint64_t exact_seen = 0;
    for (const int id : *ctx.exact) {
      RLT_CHECK_MSG(id >= 0 && id < ctx.n, "exact order op id out of range");
      RLT_CHECK_MSG(ctx.view.is_write(id),
                    "exact order contains non-write op" << id);
      RLT_CHECK_MSG(ctx.view.included(id),
                    "exact order op" << id << " not invoked within the view");
      const std::uint64_t bit = 1ULL << id;
      RLT_CHECK_MSG((exact_seen & bit) == 0, "exact order repeats op" << id);
      exact_seen |= bit;
      ctx.placeable_mask |= bit;
      ctx.must_place_mask |= bit;
      ctx.write_mask |= bit;
    }
    for (std::size_t i = ctx.exact->size(); i-- > 0;) {
      ctx.exact_suffix[i] =
          ctx.exact_suffix[i + 1] | (1ULL << (*ctx.exact)[i]);
    }
  } else {
    for (int id = 0; id < ctx.n; ++id) {
      if (ctx.view.included(id) && ctx.view.is_write(id)) {
        const std::uint64_t bit = 1ULL << id;
        ctx.placeable_mask |= bit;
        ctx.write_mask |= bit;
      }
    }
  }

  // Predecessor bitmasks: pred[o] = completed ops responding before o's
  // invocation.  Only completed ops ever block placement.
  for (int o = 0; o < ctx.n; ++o) {
    if ((ctx.placeable_mask & (1ULL << o)) == 0) continue;
    std::uint64_t preds = 0;
    std::uint64_t comp = ctx.completed_mask & ~(1ULL << o);
    while (comp != 0) {
      const int q = std::countr_zero(comp);
      comp &= comp - 1;
      if (response_of(q) < ctx.view.invoke(o)) preds |= 1ULL << q;
    }
    ctx.pred[static_cast<std::size_t>(o)] = preds;
  }

  // Ops grouped by value (sorted, deduplicated): placeable reads for
  // candidate generation, placeable writes for the doomed-state prune.
  // Tiny arrays: insertion sort beats std::sort's dispatch overhead.
  const auto group_by_value =
      [](std::array<std::pair<Value, std::uint64_t>, 64>& groups,
         int ngroups) {
        for (int i = 1; i < ngroups; ++i) {
          auto entry = groups[static_cast<std::size_t>(i)];
          int j = i - 1;
          while (j >= 0 &&
                 groups[static_cast<std::size_t>(j)].first > entry.first) {
            groups[static_cast<std::size_t>(j + 1)] =
                groups[static_cast<std::size_t>(j)];
            --j;
          }
          groups[static_cast<std::size_t>(j + 1)] = entry;
        }
        int w = 0;
        for (int r = 1; r < ngroups; ++r) {
          if (groups[static_cast<std::size_t>(r)].first ==
              groups[static_cast<std::size_t>(w)].first) {
            groups[static_cast<std::size_t>(w)].second |=
                groups[static_cast<std::size_t>(r)].second;
          } else {
            groups[static_cast<std::size_t>(++w)] =
                groups[static_cast<std::size_t>(r)];
          }
        }
        return ngroups == 0 ? 0 : w + 1;
      };
  int ngroups = 0;
  std::uint64_t reads = ctx.placeable_mask & ~ctx.write_mask;
  while (reads != 0) {
    const int id = std::countr_zero(reads);
    reads &= reads - 1;
    const Value v = id == cop ? problem.completion->value : ctx.view.value(id);
    ctx.reads_by_value[static_cast<std::size_t>(ngroups++)] = {v, 1ULL << id};
  }
  ctx.nread_groups = group_by_value(ctx.reads_by_value, ngroups);
  ngroups = 0;
  std::uint64_t writes = ctx.write_mask;
  while (writes != 0) {
    const int id = std::countr_zero(writes);
    writes &= writes - 1;
    ctx.writes_by_value[static_cast<std::size_t>(ngroups++)] = {
        ctx.view.value(id), 1ULL << id};
  }
  ctx.nwrite_groups = group_by_value(ctx.writes_by_value, ngroups);
  return ctx;
}

/// True iff the kExact constraints are not already unsatisfiable: every
/// write completed within the view must appear in the exact order.
bool exact_order_covers_completed(const SolveContext& ctx) {
  if (ctx.mode != WriteOrderMode::kExact) return true;
  return (ctx.completed_mask & ctx.all_writes_mask & ~ctx.write_mask) == 0;
}

/// Shared DFS core over (placed-set, register-value) states.
///
/// kFindOne: stop at the first done-state; `order` (optional) accumulates
/// the witness; failed states are memoized in ctx.seen.
/// kEnumerateFinals: visit every reachable state (ctx.seen is a visited
/// set), record the register value of every done-state in `out`, and keep
/// exploring past done-states — pending writes may still be appended.
enum class DfsMode { kFindOne, kEnumerateFinals };

template <DfsMode M>
bool dfs(SolveContext& ctx, std::uint64_t mask, Value value, int exact_next,
         std::vector<int>* order, std::set<Value>* out) {
  const SolveContext::Key key{mask, value};
  ++ctx.stat_nodes;
  if constexpr (M == DfsMode::kFindOne) {
    if (ctx.done(mask)) return true;
    if (ctx.seen.contains(key)) {
      ++ctx.stat_memo_hits;
      return false;
    }
  } else {
    if (!ctx.seen.insert(key)) {
      ++ctx.stat_memo_hits;
      return false;
    }
    if (ctx.done(mask)) out->insert(value);
  }

  if (ctx.prune) {
    const std::uint64_t future_writes =
        ctx.mode == WriteOrderMode::kExact
            ? ctx.exact_suffix[static_cast<std::size_t>(exact_next)]
            : ctx.write_mask & ~mask;
    if (ctx.doomed(mask, value, future_writes)) {
      ++ctx.stat_prune_doomed;
      if constexpr (M == DfsMode::kFindOne) ctx.seen.insert(key);
      return false;
    }
    if constexpr (M == DfsMode::kFindOne) {
      // Every completed read placed: only write obligations remain.
      if ((ctx.must_place_mask & ~ctx.write_mask & ~mask) == 0) {
        ++ctx.stat_prune_accept;
        const std::size_t mark = order != nullptr ? order->size() : 0;
        if (ctx.try_accept_suffix(mask, exact_next, order)) return true;
        if (order != nullptr) order->resize(mark);
        ctx.seen.insert(key);
        return false;
      }
    }
  }

  std::uint64_t cand = ctx.candidates(mask, value, exact_next);
  if (ctx.prune) {
    // Eager read: placing an available read of the current value first
    // dominates every other extension order — branch only on the lowest.
    const std::uint64_t cand_reads = cand & ~ctx.write_mask;
    if (cand_reads != 0) {
      ++ctx.stat_prune_eager;
      cand = cand_reads & (~cand_reads + 1);
    }
  }
  while (cand != 0) {
    const int id = std::countr_zero(cand);
    cand &= cand - 1;
    const bool is_write = ctx.view.is_write(id);
    const Value next_value = is_write ? ctx.view.value(id) : value;
    const int next_exact =
        exact_next + (is_write && ctx.mode == WriteOrderMode::kExact ? 1 : 0);
    if constexpr (M == DfsMode::kFindOne) {
      if (order != nullptr) order->push_back(id);
      if (dfs<M>(ctx, mask | (1ULL << id), next_value, next_exact, order,
                 out)) {
        return true;
      }
      if (order != nullptr) order->pop_back();
    } else {
      dfs<M>(ctx, mask | (1ULL << id), next_value, next_exact, order, out);
    }
  }

  if constexpr (M == DfsMode::kFindOne) ctx.seen.insert(key);
  return false;
}

/// Allowed pre-history values of a built context, as a span (no copy).
std::span<const Value> initials_of(const SolveContext& ctx) {
  if (ctx.initials != nullptr) return {ctx.initials->data(),
                                       ctx.initials->size()};
  return {&ctx.single_initial, 1};
}

/// Flushes one solver entry's tallies to the metrics registry on every
/// exit path.  The tallies themselves are plain members of the on-stack
/// context, so the solver's hot path never touches the registry.
struct StatFlush {
  const SolveContext& ctx;
  ~StatFlush() {
    if (!obs::enabled()) return;
    obs::count(obs::Counter::kCheckerSolverCalls);
    obs::count(obs::Counter::kCheckerDfsNodes, ctx.stat_nodes);
    obs::count(obs::Counter::kCheckerMemoHits, ctx.stat_memo_hits);
    obs::count(obs::Counter::kCheckerPruneDoomed, ctx.stat_prune_doomed);
    obs::count(obs::Counter::kCheckerPruneEagerRead, ctx.stat_prune_eager);
    obs::count(obs::Counter::kCheckerPruneAccept, ctx.stat_prune_accept);
  }
};

}  // namespace

LinSolution solve(const LinProblem& problem) {
  SolveContext ctx = make_context(problem);
  const StatFlush flush{ctx};
  LinSolution out;
  if (!exact_order_covers_completed(ctx)) return out;

  for (const Value init : initials_of(ctx)) {
    std::vector<int> order;
    if (dfs<DfsMode::kFindOne>(ctx, 0, init, 0, &order, nullptr)) {
      out.ok = true;
      out.order = std::move(order);
      out.initial_used = init;
      out.final_value = init;
      for (const int id : out.order) {
        if (ctx.view.is_write(id)) out.final_value = ctx.view.value(id);
      }
      return out;
    }
  }
  return out;
}

bool feasible(const LinProblem& problem) {
  SolveContext ctx = make_context(problem);
  const StatFlush flush{ctx};
  if (!exact_order_covers_completed(ctx)) return false;
  for (const Value init : initials_of(ctx)) {
    if (dfs<DfsMode::kFindOne>(ctx, 0, init, 0, nullptr, nullptr)) {
      return true;
    }
  }
  return false;
}

std::set<Value> feasible_final_values(const LinProblem& problem) {
  SolveContext ctx = make_context(problem);
  const StatFlush flush{ctx};
  std::set<Value> out;
  if (!exact_order_covers_completed(ctx)) return out;
  for (const Value init : initials_of(ctx)) {
    (void)dfs<DfsMode::kEnumerateFinals>(ctx, 0, init, 0, nullptr, &out);
  }
  return out;
}

}  // namespace rlt::checker
