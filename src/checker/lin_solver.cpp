#include "checker/lin_solver.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"

namespace rlt::checker {

namespace {

/// Dense per-solve view of the history plus constraint bookkeeping.
struct SolveContext {
  const History* h = nullptr;
  WriteOrderMode mode = WriteOrderMode::kFree;
  std::vector<int> exact;            // op ids, kExact only
  std::vector<int> exact_pos;        // op id -> index in exact, or -1
  std::uint64_t completed_mask = 0;  // ops that must be placed
  std::uint64_t must_place_mask = 0; // completed + listed pending writes
  std::uint64_t placeable_mask = 0;  // ops that may ever be placed
  int n = 0;

  // State key for memoization of failed states.
  struct Key {
    std::uint64_t mask;
    Value value;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // 64-bit mix of both fields (splitmix-style).
      std::uint64_t x = k.mask * 0x9E3779B97F4A7C15ULL;
      x ^= static_cast<std::uint64_t>(k.value) + 0xBF58476D1CE4E5B9ULL +
           (x << 6) + (x >> 2);
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };
  std::unordered_set<Key, KeyHash> failed;

  [[nodiscard]] bool done(std::uint64_t mask) const noexcept {
    return (mask & must_place_mask) == must_place_mask;
  }
};

SolveContext make_context(const LinProblem& problem) {
  RLT_CHECK(problem.history != nullptr);
  const History& h = *problem.history;
  (void)single_register_of(h);
  RLT_CHECK_MSG(h.size() <= 64, "solver supports at most 64 ops, got "
                                    << h.size());
  SolveContext ctx;
  ctx.h = &h;
  ctx.mode = problem.mode;
  ctx.n = static_cast<int>(h.size());
  ctx.exact_pos.assign(static_cast<std::size_t>(ctx.n), -1);

  for (const OpRecord& op : h.ops()) {
    const std::uint64_t bit = 1ULL << op.id;
    if (!op.pending()) ctx.completed_mask |= bit;
    const bool placeable_read = op.is_read() && !op.pending();
    if (placeable_read) ctx.placeable_mask |= bit;
  }
  ctx.must_place_mask = ctx.completed_mask;

  if (problem.mode == WriteOrderMode::kExact) {
    ctx.exact = problem.exact_write_order;
    for (std::size_t i = 0; i < ctx.exact.size(); ++i) {
      const int id = ctx.exact[i];
      RLT_CHECK_MSG(id >= 0 && id < ctx.n, "exact order op id out of range");
      const OpRecord& op = h.op(id);
      RLT_CHECK_MSG(op.is_write(), "exact order contains non-write op" << id);
      RLT_CHECK_MSG(ctx.exact_pos[static_cast<std::size_t>(id)] == -1,
                    "exact order repeats op" << id);
      ctx.exact_pos[static_cast<std::size_t>(id)] = static_cast<int>(i);
      const std::uint64_t bit = 1ULL << id;
      ctx.placeable_mask |= bit;
      ctx.must_place_mask |= bit;
    }
  } else {
    for (const OpRecord& op : h.ops()) {
      if (op.is_write()) ctx.placeable_mask |= 1ULL << op.id;
    }
  }
  return ctx;
}

/// True iff the kExact constraints are not already unsatisfiable: every
/// completed write must appear in the exact order.
bool exact_order_covers_completed(const SolveContext& ctx) {
  if (ctx.mode != WriteOrderMode::kExact) return true;
  for (const OpRecord& op : ctx.h->ops()) {
    if (op.is_write() && !op.pending() &&
        ctx.exact_pos[static_cast<std::size_t>(op.id)] == -1) {
      return false;
    }
  }
  return true;
}

/// Index into ctx.exact of the next write that must be placed, given the
/// set of already-placed ops.
int next_exact_index(const SolveContext& ctx, std::uint64_t mask) {
  for (std::size_t i = 0; i < ctx.exact.size(); ++i) {
    if ((mask & (1ULL << ctx.exact[i])) == 0) return static_cast<int>(i);
  }
  return static_cast<int>(ctx.exact.size());
}

/// Core DFS.  `order` accumulates the witness; on failure the state is
/// memoized in ctx.failed.
bool dfs(SolveContext& ctx, std::uint64_t mask, Value value,
         std::vector<int>& order) {
  if (ctx.done(mask)) return true;
  const SolveContext::Key key{mask, value};
  if (ctx.failed.contains(key)) return false;

  const int exact_next = ctx.mode == WriteOrderMode::kExact
                             ? next_exact_index(ctx, mask)
                             : -1;

  for (int id = 0; id < ctx.n; ++id) {
    const std::uint64_t bit = 1ULL << id;
    if ((mask & bit) != 0 || (ctx.placeable_mask & bit) == 0) continue;
    const OpRecord& op = ctx.h->op(id);

    if (op.is_write() && ctx.mode == WriteOrderMode::kExact) {
      // Only the next write of the exact order may be placed.
      if (exact_next >= static_cast<int>(ctx.exact.size()) ||
          ctx.exact[static_cast<std::size_t>(exact_next)] != id) {
        continue;
      }
    }
    if (op.is_read() && op.value != value) continue;

    // Availability: no unplaced completed op strictly precedes `op`.
    bool available = true;
    std::uint64_t blockers = ctx.completed_mask & ~mask & ~bit;
    while (blockers != 0) {
      const int q = std::countr_zero(blockers);
      blockers &= blockers - 1;
      if (ctx.h->op(q).response < op.invoke) {
        available = false;
        break;
      }
    }
    if (!available) continue;

    order.push_back(id);
    const Value next_value = op.is_write() ? op.value : value;
    if (dfs(ctx, mask | bit, next_value, order)) return true;
    order.pop_back();
  }

  ctx.failed.insert(key);
  return false;
}

std::vector<Value> initial_values_of(const LinProblem& problem) {
  if (problem.initial_values.has_value()) {
    RLT_CHECK_MSG(!problem.initial_values->empty(),
                  "initial_values must not be empty when supplied");
    return *problem.initial_values;
  }
  const auto reg = single_register_of(*problem.history);
  return {problem.history->initial(reg)};
}

}  // namespace

LinSolution solve(const LinProblem& problem) {
  SolveContext ctx = make_context(problem);
  LinSolution out;
  if (!exact_order_covers_completed(ctx)) return out;

  for (const Value init : initial_values_of(problem)) {
    std::vector<int> order;
    if (dfs(ctx, 0, init, order)) {
      out.ok = true;
      out.order = std::move(order);
      out.initial_used = init;
      out.final_value = init;
      for (const int id : out.order) {
        const OpRecord& op = problem.history->op(id);
        if (op.is_write()) out.final_value = op.value;
      }
      return out;
    }
  }
  return out;
}

namespace {

/// DFS that enumerates final values over all completions.  Uses a visited
/// set (not a failure set): every reachable done-state contributes.
void enumerate_finals(SolveContext& ctx, std::uint64_t mask, Value value,
                      std::unordered_set<SolveContext::Key,
                                         SolveContext::KeyHash>& visited,
                      std::set<Value>& out) {
  const SolveContext::Key key{mask, value};
  if (!visited.insert(key).second) return;
  if (ctx.done(mask)) out.insert(value);
  // Keep exploring: pending writes may still be appended after done.
  const int exact_next = ctx.mode == WriteOrderMode::kExact
                             ? next_exact_index(ctx, mask)
                             : -1;
  for (int id = 0; id < ctx.n; ++id) {
    const std::uint64_t bit = 1ULL << id;
    if ((mask & bit) != 0 || (ctx.placeable_mask & bit) == 0) continue;
    const OpRecord& op = ctx.h->op(id);
    if (op.is_write() && ctx.mode == WriteOrderMode::kExact) {
      if (exact_next >= static_cast<int>(ctx.exact.size()) ||
          ctx.exact[static_cast<std::size_t>(exact_next)] != id) {
        continue;
      }
    }
    if (op.is_read() && op.value != value) continue;
    bool available = true;
    std::uint64_t blockers = ctx.completed_mask & ~mask & ~bit;
    while (blockers != 0) {
      const int q = std::countr_zero(blockers);
      blockers &= blockers - 1;
      if (ctx.h->op(q).response < op.invoke) {
        available = false;
        break;
      }
    }
    if (!available) continue;
    const Value next_value = op.is_write() ? op.value : value;
    enumerate_finals(ctx, mask | bit, next_value, visited, out);
  }
}

}  // namespace

std::set<Value> feasible_final_values(const LinProblem& problem) {
  SolveContext ctx = make_context(problem);
  std::set<Value> out;
  if (!exact_order_covers_completed(ctx)) return out;
  std::unordered_set<SolveContext::Key, SolveContext::KeyHash> visited;
  for (const Value init : initial_values_of(problem)) {
    enumerate_finals(ctx, 0, init, visited, out);
  }
  return out;
}

}  // namespace rlt::checker
