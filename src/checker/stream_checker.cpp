#include "checker/stream_checker.hpp"

#include <sstream>
#include <utility>

#include "util/assert.hpp"

namespace rlt::checker {

using history::Event;
using history::kNoTime;
using history::OpRecord;
using history::ProcessId;
using history::RegisterId;

StreamingChecker::StreamingChecker(StreamCheckerOptions options)
    : options_(options) {
  if (options_.max_live_ops > 64) options_.max_live_ops = 64;
  if (options_.max_live_ops == 0) options_.max_live_ops = 1;
}

void StreamingChecker::set_initial(RegisterId reg, Value v) {
  RLT_CHECK_MSG(lanes_.find(reg) == lanes_.end(),
                "set_initial after events on register " << reg);
  initial_config_[reg] = v;
}

StreamingChecker::Lane& StreamingChecker::lane_for(RegisterId reg) {
  const auto it = lanes_.find(reg);
  if (it != lanes_.end()) return it->second;
  Lane& lane = lanes_[reg];
  const auto cfg = initial_config_.find(reg);
  lane.initials = {cfg != initial_config_.end() ? cfg->second : Value{0}};
  return lane;
}

bool StreamingChecker::window_feasible(const Lane& lane) {
  LinProblem p;
  p.history = &lane.window;
  p.initial_values = lane.initials;
  p.prune = options_.prune;
  ++solver_calls_;
  return feasible(p);
}

void StreamingChecker::collapse(Lane& lane) {
  LinProblem p;
  p.history = &lane.window;
  p.initial_values = lane.initials;
  p.prune = options_.prune;
  std::set<Value> finals = feasible_final_values(p);
  // The per-event invariant (reads checked at response, invocations and
  // write responses cannot flip feasibility) makes an empty set
  // impossible here; treat it as the violation it would denote anyway
  // rather than poisoning the next window with an empty initial set.
  if (finals.empty()) {
    violation_event_ = static_cast<std::int64_t>(events_) - 1;
    return;
  }
  ++collapses_;
  retired_ops_ += lane.window.size();
  live_ops_ -= lane.window.size();
  lane.window = History();
  lane.initials.assign(finals.begin(), finals.end());
}

void StreamingChecker::fail_limit(const std::string& what) {
  if (error_.empty()) error_ = what;
}

int StreamingChecker::on_invoke(ProcessId process, RegisterId reg, OpKind kind,
                                Value value, Time now) {
  const int id = next_id_++;
  ++events_;
  if (frozen()) return id;
  if (saw_event_ && now <= last_time_) {
    std::ostringstream os;
    os << "event times not strictly increasing (t=" << now << " after t="
       << last_time_ << ")";
    fail_limit(os.str());
    return id;
  }
  last_time_ = now;
  saw_event_ = true;

  Lane& lane = lane_for(reg);
  if (lane.window.size() >= options_.max_live_ops) {
    std::ostringstream os;
    os << "register " << reg << " live window would exceed "
       << options_.max_live_ops << " ops (no quiescent point to retire at)";
    fail_limit(os.str());
    return id;
  }
  OpRecord op;
  op.process = process;
  op.reg = reg;
  op.kind = kind;
  op.value = kind == OpKind::kWrite ? value : Value{0};
  op.invoke = now;
  op.response = kNoTime;
  const int window_id = lane.window.add(op);
  open_ops_[id] = OpenRef{reg, window_id};
  ++lane.open;
  ++live_ops_;
  if (live_ops_ > peak_live_ops_) peak_live_ops_ = live_ops_;
  // Invocations never flip feasibility: a pending read is never placed,
  // a pending write merely becomes an optional candidate.  No solve.
  return id;
}

void StreamingChecker::on_response(int id, Value result, Time now) {
  ++events_;
  if (frozen()) return;
  const auto ref_it = open_ops_.find(id);
  if (ref_it == open_ops_.end()) {
    std::ostringstream os;
    os << "response for unknown or already-responded op id " << id;
    fail_limit(os.str());
    return;
  }
  if (saw_event_ && now <= last_time_) {
    std::ostringstream os;
    os << "event times not strictly increasing (t=" << now << " after t="
       << last_time_ << ")";
    fail_limit(os.str());
    return;
  }
  last_time_ = now;

  const OpenRef ref = ref_it->second;
  open_ops_.erase(ref_it);
  Lane& lane = lanes_.at(ref.reg);
  lane.window.complete_op(ref.window_id, result, now);
  --lane.open;

  // Only a read response can make a feasible window infeasible: the
  // response is the latest event in the window, so a newly completed
  // write appends to any existing witness unchanged.
  if (lane.window.op(ref.window_id).is_read() && !window_feasible(lane)) {
    violation_event_ = static_cast<std::int64_t>(events_) - 1;
    return;
  }
  // Quiescent point: every window op precedes every future op on this
  // register — retire the window behind the frontier.
  if (lane.open == 0) collapse(lane);
}

StreamingChecker check_stream(const History& h, StreamCheckerOptions options) {
  StreamingChecker checker(options);
  for (const RegisterId reg : h.registers()) {
    checker.set_initial(reg, h.initial(reg));
  }
  // Stream ids are handed out in invocation order; history op ids are
  // dense but not time-ordered, so map between the two.
  std::vector<int> stream_id(h.size(), -1);
  for (const Event& ev : h.events()) {
    const OpRecord& op = h.op(ev.op_id);
    if (ev.kind == Event::Kind::kInvoke) {
      stream_id[static_cast<std::size_t>(ev.op_id)] =
          checker.on_invoke(op.process, op.reg, op.kind, op.value, ev.time);
    } else {
      checker.on_response(stream_id[static_cast<std::size_t>(ev.op_id)],
                          op.value, ev.time);
    }
  }
  return checker;
}

}  // namespace rlt::checker
