// Backtracking linearization solver for single-register histories.
//
// This is the single source of truth for "does a legal linearization
// exist?", shared by:
//  * the off-line linearizability checker (free write order),
//  * the write strong-linearizability tree checker (exact write order),
//  * the simulator's `LinearizableModel` and `WslModel`, which must decide
//    on-line whether a candidate read-return value / write commitment
//    still admits a legal linearization.
//
// Search space: orders of the history's operations.  A completed read
// must return the value of the last write placed before it (or an allowed
// initial value).  Pending reads are never included (they have no
// response value; including them cannot enable anything).  Pending writes
// may be included (Definition 2, property 1) subject to `WriteOrderMode`.
//
// Availability rule: an operation `o` may be placed next iff no completed,
// not-yet-placed operation `q` satisfies q.response < o.invoke (otherwise
// q must come first).  Excluded pending writes never block anything.
//
// Complexity: worst-case exponential (register linearizability with
// duplicate values is NP-hard in general), tamed by memoizing failed
// (placed-set, register-value) states.  The solver supports at most 64
// operations per call; callers keep windows small (see
// `feasible_final_values`, used by the simulator to collapse quiescent
// history).
//
// Fast path: the context build precomputes per-op predecessor bitmasks,
// so the availability rule above costs one AND per candidate per DFS
// node, and groups placeable reads by returned value, so candidate
// generation is a table lookup instead of an O(n) scan.  Both solvers
// share one DFS core over (placed-set, register-value) states.
//
// Dominance pruning (`LinProblem::prune`, on by default) cuts between
// DFS extension orders without changing any verdict or final-value set:
//  * eager read — when a completed read of the current register value is
//    available, only the lowest-id such read is branched on.  Any
//    completion can be reordered to place that read first (reads do not
//    change the register, so every other op stays legal and available);
//  * doomed state — fail immediately when some unplaced completed read
//    returns a value that is neither the current register value nor the
//    value of any still-placeable write: no completion can ever serve it;
//  * accept shortcut (find-one searches only) — once every completed
//    read is placed, the remaining obligations are writes with no value
//    constraints: free-order instances always complete (place completed
//    writes in response order), and exact-order instances reduce to a
//    deterministic availability walk of the remaining committed suffix.
// These collapse the exponential blowup of many concurrent writers: the
// practical ceiling moves from ~6 writers per register to 10+.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "checker/spec.hpp"
#include "history/view.hpp"

namespace rlt::checker {

/// How the solver treats the order of write operations.
enum class WriteOrderMode {
  /// Writes may appear in any order consistent with real time; any subset
  /// of pending writes may be included.  (Plain linearizability.)
  kFree,
  /// The linearization's write subsequence must be *exactly* the supplied
  /// list, in that order.  Completed writes outside the list make the
  /// instance infeasible; pending writes in the list must be included.
  /// (Write strong-linearizability: the list is the committed sequence.)
  kExact,
};

/// A single-register linearization problem.
struct LinProblem {
  /// Single-register history to linearize.
  const History* history = nullptr;

  /// Event-prefix cutoff: the problem is over `history`'s prefix at this
  /// time (ops invoked later are absent; ops responding later count as
  /// pending).  The default — `kNoTime` — means the whole history.  This
  /// is the zero-copy replacement for solving on `history->prefix_at(t)`:
  /// op ids keep their base-history meaning (`exact_write_order`, the
  /// witness order, ...), and nothing is copied.
  Time cutoff = history::kNoTime;

  WriteOrderMode mode = WriteOrderMode::kFree;

  /// Used iff mode == kExact: op ids of all writes, in required order.
  std::vector<int> exact_write_order;

  /// Values the register may hold before any write of this history.
  /// Defaults to { history->initial(reg) }.  The simulator passes several
  /// values here after collapsing a quiescent past whose final value the
  /// adversary has not yet been forced to reveal.
  std::optional<std::vector<Value>> initial_values;

  /// Zero-copy what-if: treat this currently-pending op of the history as
  /// completed at `response` (reads: returning `value`).  The on-line
  /// models probe dozens of candidate responses per event; this overlay
  /// replaces the copy-the-window-and-complete-the-op pattern.
  struct Completion {
    int op_id = -1;
    Value value = 0;
    Time response = history::kNoTime;
  };
  std::optional<Completion> completion;

  /// Dominance pruning between DFS extension orders (see file comment).
  /// Verdict- and final-value-preserving; off only for A/B comparisons
  /// and the pruning-equivalence tests.
  bool prune = true;
};

/// Outcome of a solve.
struct LinSolution {
  bool ok = false;
  /// Included op ids in linearization order (witness); empty if !ok.
  std::vector<int> order;
  /// The initial value the witness used (one of initial_values).
  Value initial_used = 0;
  /// Value of the register after the witness's last write (== initial_used
  /// if the witness contains no write).
  Value final_value = 0;
};

/// Searches for a legal linearization.  Throws util::InvariantViolation if
/// the history has more than 64 operations or mentions several registers.
[[nodiscard]] LinSolution solve(const LinProblem& problem);

/// solve(problem).ok without witness bookkeeping — the fast entry point
/// for feasibility probes (tree checkers, on-line models) that never look
/// at the order.
[[nodiscard]] bool feasible(const LinProblem& problem);

/// All values `v` such that some legal linearization (same constraints)
/// ends with the register holding `v`.  Used by the simulator to collapse
/// history at quiescent points: the returned set becomes the next window's
/// `initial_values`.
[[nodiscard]] std::set<Value> feasible_final_values(const LinProblem& problem);

}  // namespace rlt::checker
