// Internal helpers shared by the write strong-linearizability and strong
// linearizability tree checkers: stable operation identities across runs
// that share a prefix, and event signatures for prefix-tree construction.
//
// Not part of the public API.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <ostream>
#include <vector>

#include "checker/spec.hpp"
#include "util/assert.hpp"

namespace rlt::checker::detail {

using history::Event;
using history::ProcessId;

/// Stable identity of an operation across runs that share a prefix:
/// (process, ordinal of the op among that process's ops, by invocation).
struct OpKey {
  ProcessId process = -1;
  int ordinal = -1;
  friend auto operator<=>(const OpKey&, const OpKey&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const OpKey& k) {
  return os << 'p' << k.process << '#' << k.ordinal;
}

/// Event signature used to detect shared prefixes between runs.
struct EventSig {
  Time time = 0;
  Event::Kind kind = Event::Kind::kInvoke;
  ProcessId process = -1;
  int ordinal = -1;
  OpKind op_kind = OpKind::kRead;
  bool has_value = false;
  Value value = 0;
  friend bool operator==(const EventSig&, const EventSig&) = default;
};

/// A run preprocessed for a tree walk.
struct PreparedRun {
  const History* h = nullptr;
  int input_index = -1;
  std::vector<Event> events;         ///< time-sorted
  std::vector<EventSig> signatures;  ///< parallel to events
  std::vector<OpKey> op_keys;        ///< per op id
};

/// Builds the per-run preprocessing; checks process well-formedness.
inline PreparedRun prepare_run(const History& h, int input_index) {
  PreparedRun run;
  run.h = &h;
  run.input_index = input_index;
  run.events = h.events();
  std::map<ProcessId, std::vector<int>> by_process;
  for (const OpRecord& op : h.ops()) by_process[op.process].push_back(op.id);
  run.op_keys.resize(h.size());
  for (auto& [proc, ids] : by_process) {
    std::sort(ids.begin(), ids.end(), [&h](int a, int b) {
      return h.op(a).invoke < h.op(b).invoke;
    });
    for (std::size_t i = 1; i < ids.size(); ++i) {
      RLT_CHECK_MSG(h.op(ids[i - 1]).precedes(h.op(ids[i])),
                    "process p" << proc
                                << " has overlapping operations — histories "
                                   "must be well-formed");
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      run.op_keys[static_cast<std::size_t>(ids[i])] =
          OpKey{proc, static_cast<int>(i)};
    }
  }
  run.signatures.reserve(run.events.size());
  for (const Event& ev : run.events) {
    const OpRecord& op = h.op(ev.op_id);
    EventSig sig;
    sig.time = ev.time;
    sig.kind = ev.kind;
    sig.process = op.process;
    sig.ordinal = run.op_keys[static_cast<std::size_t>(ev.op_id)].ordinal;
    sig.op_kind = op.kind;
    if (op.is_write()) {
      sig.has_value = true;
      sig.value = op.value;  // written value, known from invocation
    } else if (ev.kind == Event::Kind::kResponse) {
      sig.has_value = true;
      sig.value = op.value;  // returned value, known at response
    }
    run.signatures.push_back(sig);
  }
  return run;
}

/// Maps OpKeys to op ids within `h` (or a prefix of it).
inline std::map<OpKey, int> key_to_id_map(const History& h) {
  std::map<OpKey, int> out;
  std::map<ProcessId, std::vector<int>> by_process;
  for (const OpRecord& op : h.ops()) by_process[op.process].push_back(op.id);
  for (auto& [proc, ids] : by_process) {
    std::sort(ids.begin(), ids.end(), [&h](int a, int b) {
      return h.op(a).invoke < h.op(b).invoke;
    });
    for (std::size_t i = 0; i < ids.size(); ++i) {
      out[OpKey{proc, static_cast<int>(i)}] = ids[i];
    }
  }
  return out;
}

/// Enumerates all ordered selections (permutations of non-empty subsets)
/// of `candidates`, invoking `fn` with each; stops early when `fn`
/// returns true and propagates the result.  `fn` is also called on every
/// proper prefix of longer selections.
inline bool for_each_ordered_selection(
    const std::vector<OpKey>& candidates,
    const std::function<bool(const std::vector<OpKey>&)>& fn) {
  std::vector<OpKey> current;
  std::vector<bool> used(candidates.size(), false);
  const std::function<bool()> rec = [&]() -> bool {
    if (!current.empty() && fn(current)) return true;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      used[i] = true;
      current.push_back(candidates[i]);
      if (rec()) return true;
      current.pop_back();
      used[i] = false;
    }
    return false;
  };
  return rec();
}

}  // namespace rlt::checker::detail
