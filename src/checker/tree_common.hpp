// Internal helpers shared by the write strong-linearizability and strong
// linearizability tree checkers: stable operation identities across runs
// that share a prefix, and event signatures for prefix-tree construction.
//
// Not part of the public API.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

#include "checker/spec.hpp"
#include "util/assert.hpp"

namespace rlt::checker::detail {

using history::Event;
using history::ProcessId;

/// Stable identity of an operation across runs that share a prefix:
/// (process, ordinal of the op among that process's ops, by invocation).
struct OpKey {
  ProcessId process = -1;
  int ordinal = -1;
  friend auto operator<=>(const OpKey&, const OpKey&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const OpKey& k) {
  return os << 'p' << k.process << '#' << k.ordinal;
}

/// Event signature used to detect shared prefixes between runs.
struct EventSig {
  Time time = 0;
  Event::Kind kind = Event::Kind::kInvoke;
  ProcessId process = -1;
  int ordinal = -1;
  OpKind op_kind = OpKind::kRead;
  bool has_value = false;
  Value value = 0;
  friend bool operator==(const EventSig&, const EventSig&) = default;
};

/// A run preprocessed for a tree walk.
struct PreparedRun {
  const History* h = nullptr;
  int input_index = -1;
  std::vector<Event> events;         ///< time-sorted
  std::vector<EventSig> signatures;  ///< parallel to events
  std::vector<OpKey> op_keys;        ///< per op id
  /// Inverse of op_keys, sorted by key: OpKey -> op id in *h.  Because
  /// prefix views keep base ids, this one table answers key lookups for
  /// EVERY event-prefix of the run (an op is in the prefix at t iff its
  /// invoke <= t) — the per-probe `key_to_id_map(prefix)` rebuild is
  /// gone.  Flat + binary search: lookups sit inside the tree search's
  /// innermost loops.
  std::vector<std::pair<OpKey, int>> key_index;

  /// Id of `key` in *h, or -1 if no such op.
  [[nodiscard]] int id_of(const OpKey& key) const {
    const auto it = std::lower_bound(
        key_index.begin(), key_index.end(), key,
        [](const auto& entry, const OpKey& k) { return entry.first < k; });
    return it != key_index.end() && it->first == key ? it->second : -1;
  }
};

/// Builds the per-run preprocessing; checks process well-formedness.
inline PreparedRun prepare_run(const History& h, int input_index) {
  PreparedRun run;
  run.h = &h;
  run.input_index = input_index;
  run.events = h.events();
  std::map<ProcessId, std::vector<int>> by_process;
  for (const OpRecord& op : h.ops()) by_process[op.process].push_back(op.id);
  run.op_keys.resize(h.size());
  for (auto& [proc, ids] : by_process) {
    std::sort(ids.begin(), ids.end(), [&h](int a, int b) {
      return h.op(a).invoke < h.op(b).invoke;
    });
    for (std::size_t i = 1; i < ids.size(); ++i) {
      RLT_CHECK_MSG(h.op(ids[i - 1]).precedes(h.op(ids[i])),
                    "process p" << proc
                                << " has overlapping operations — histories "
                                   "must be well-formed");
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const OpKey key{proc, static_cast<int>(i)};
      run.op_keys[static_cast<std::size_t>(ids[i])] = key;
      // by_process iterates processes ascending and ordinals ascending,
      // so key_index is built already sorted.
      run.key_index.emplace_back(key, ids[i]);
    }
  }
  run.signatures.reserve(run.events.size());
  for (const Event& ev : run.events) {
    const OpRecord& op = h.op(ev.op_id);
    EventSig sig;
    sig.time = ev.time;
    sig.kind = ev.kind;
    sig.process = op.process;
    sig.ordinal = run.op_keys[static_cast<std::size_t>(ev.op_id)].ordinal;
    sig.op_kind = op.kind;
    if (op.is_write()) {
      sig.has_value = true;
      sig.value = op.value;  // written value, known from invocation
    } else if (ev.kind == Event::Kind::kResponse) {
      sig.has_value = true;
      sig.value = op.value;  // returned value, known at response
    }
    run.signatures.push_back(sig);
  }
  return run;
}

/// Prefix-tree node ids: `result[i][k]` identifies the tree node run `i`
/// reaches after its first `k` events.  Two runs share a node iff their
/// first `k` event signatures are identical — i.e. iff they share that
/// event-prefix — so (node id, extra state) is an exact memoization key
/// for any quantity that depends only on the prefix.  Node 0 is the root
/// (empty prefix); ids are dense.
inline std::vector<std::vector<int>> prefix_tree_nodes(
    const std::vector<PreparedRun>& runs) {
  std::vector<std::vector<int>> node_ids(runs.size());
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    node_ids[i].assign(runs[i].events.size() + 1, 0);
    max_depth = std::max(max_depth, runs[i].events.size());
  }
  int next_id = 1;
  for (std::size_t k = 1; k <= max_depth; ++k) {
    // Group runs still alive at depth k by (parent node, k-th signature).
    std::vector<std::pair<std::pair<int, EventSig>, int>> groups;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (runs[i].events.size() < k) continue;
      const std::pair<int, EventSig> edge{node_ids[i][k - 1],
                                          runs[i].signatures[k - 1]};
      auto it = std::find_if(groups.begin(), groups.end(), [&edge](const auto& g) {
        return g.first == edge;
      });
      if (it == groups.end()) {
        groups.push_back({edge, next_id++});
        it = std::prev(groups.end());
      }
      node_ids[i][k] = it->second;
    }
  }
  return node_ids;
}

/// Enumerates all ordered selections (permutations of non-empty subsets)
/// of `candidates`, invoking `fn` with each; stops early when `fn`
/// returns true and propagates the result.  `fn` is also called on every
/// proper prefix of longer selections.  Statically dispatched (`Fn` is a
/// template parameter, not std::function): this runs inside the factorial
/// part of the tree search.
template <typename Fn>
bool for_each_ordered_selection(const std::vector<OpKey>& candidates,
                                const Fn& fn) {
  std::vector<OpKey> current;
  current.reserve(candidates.size());
  std::uint64_t used = 0;
  const auto rec = [&](const auto& self) -> bool {
    if (!current.empty() && fn(current)) return true;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if ((used & (1ULL << i)) != 0) continue;
      used |= 1ULL << i;
      current.push_back(candidates[i]);
      if (self(self)) return true;
      current.pop_back();
      used &= ~(1ULL << i);
    }
    return false;
  };
  return rec(rec);
}

}  // namespace rlt::checker::detail
