// On-line (streaming) linearizability checking with bounded memory.
//
// The batch checker (`check_linearizable`) validates a complete recorded
// history post-hoc; the paper's properties, though, are properties of
// unbounded executions, and the ROADMAP's line-rate goal needs a checker
// that keeps up with a *stream* of events.  `StreamingChecker` accepts
// invocation/response events one at a time (strictly increasing times)
// and maintains, per register, an incremental frontier:
//
//  * a live *window* of operations not yet provably linearized — a plain
//    `History` restricted to that register, fed to the backtracking
//    solver (`lin_solver.hpp`) with the window's allowed initial values;
//  * a set of allowed *initial values* summarizing everything behind the
//    frontier: exactly the feasible final register values of the retired
//    prefix (`feasible_final_values`).
//
// Retirement happens at per-register quiescent points: the moment a
// register has no open operation, every window op real-time-precedes
// every future op on that register, so any linearization of the suffix
// can be appended to any linearization of the window.  The window is
// collapsed to its feasible-final-value set and its operations retire
// from the bitmask universe — live state stays bounded by the register's
// maximum overlap degree, independent of stream length.  This is the
// same collapse the simulator's `WindowedModel` performs, generalized to
// arbitrary recorded streams and multiple registers (correct for the
// whole history by the locality theorem: each register is checked
// independently).
//
// The solver runs only at *read responses*.  Invocations add an op the
// solver may ignore (pending reads are never placed; pending writes are
// optional), and a write response is always the latest event in its
// window, so the newly completed write can simply be appended to any
// existing witness — neither can flip feasibility.  This, plus the
// dominance pruning the solver applies by default, is what sustains
// line-rate checking.
//
// Verdicts are *prefix-exact*: the checker rejects at precisely the
// first event whose prefix is not linearizable (the batch checker's
// minimal failing prefix), and `ok()` after the last event equals the
// batch verdict on the whole stream — including streams that end with
// pending (crashed / stalled) operations.  After a violation the checker
// latches: counters keep counting, state stops evolving.
//
// Limits are reported through `error()`, separate from verdicts: windows
// outgrow `max_live_ops` (or the solver's 64-op ceiling) only when a
// register never quiesces, in which case the stream is *unvalidated*,
// not wrong.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "checker/lin_solver.hpp"

namespace rlt::checker {

struct StreamCheckerOptions {
  /// Dominance pruning in the underlying solver (see lin_solver.hpp).
  /// Off only for A/B comparisons; verdict-preserving either way.
  bool prune = true;
  /// Hard cap on any one register's live window, clamped to the solver's
  /// 64-op ceiling.  Exceeding it latches an error (not a violation).
  std::size_t max_live_ops = 64;
};

class StreamingChecker {
 public:
  explicit StreamingChecker(StreamCheckerOptions options = {});

  /// Register initial value (Definition 2, property 3); defaults to 0.
  /// Must be called before the register's first event.
  void set_initial(history::RegisterId reg, Value v);

  /// Feeds an invocation event; returns the operation's stream id (pass
  /// it to `on_response`).  `value` is the written value for writes and
  /// ignored for reads.  Event times must be strictly increasing.
  int on_invoke(history::ProcessId process, history::RegisterId reg,
                OpKind kind, Value value, Time now);

  /// Feeds the response of operation `id` (reads: returning `result`).
  void on_response(int id, Value result, Time now);

  /// True while every fed prefix is linearizable and no limit was hit.
  [[nodiscard]] bool ok() const noexcept {
    return violation_event_ < 0 && error_.empty();
  }

  /// 0-based global index of the first event whose prefix is not
  /// linearizable; -1 if every prefix so far is.
  [[nodiscard]] std::int64_t first_violation_event() const noexcept {
    return violation_event_;
  }

  /// Non-verdict failure (window overflow, out-of-order events, bad op
  /// id); empty when the stream is fully validated.
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  // Frontier instrumentation: live state must stay bounded regardless of
  // stream length — the bounded-memory regression test pins these.
  [[nodiscard]] std::size_t live_ops() const noexcept { return live_ops_; }
  [[nodiscard]] std::size_t peak_live_ops() const noexcept {
    return peak_live_ops_;
  }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t retired_ops() const noexcept {
    return retired_ops_;
  }
  [[nodiscard]] std::uint64_t solver_calls() const noexcept {
    return solver_calls_;
  }
  [[nodiscard]] std::uint64_t collapses() const noexcept { return collapses_; }

 private:
  /// Per-register incremental frontier.
  struct Lane {
    History window;                 ///< Ops not yet retired (base reg ids).
    std::vector<Value> initials;    ///< Allowed pre-window values.
    int open = 0;                   ///< Invoked-but-unresponded window ops.
  };
  struct OpenRef {
    history::RegisterId reg = -1;
    int window_id = -1;  ///< Op id within the lane's window history.
  };

  [[nodiscard]] bool frozen() const noexcept { return !ok(); }
  Lane& lane_for(history::RegisterId reg);
  [[nodiscard]] bool window_feasible(const Lane& lane);
  void collapse(Lane& lane);
  void fail_limit(const std::string& what);

  StreamCheckerOptions options_;
  std::map<history::RegisterId, Value> initial_config_;
  std::map<history::RegisterId, Lane> lanes_;
  std::map<int, OpenRef> open_ops_;  ///< Stream id -> live window op.
  int next_id_ = 0;
  Time last_time_ = 0;
  bool saw_event_ = false;
  std::uint64_t events_ = 0;
  std::int64_t violation_event_ = -1;
  std::string error_;
  std::size_t live_ops_ = 0;
  std::size_t peak_live_ops_ = 0;
  std::uint64_t retired_ops_ = 0;
  std::uint64_t solver_calls_ = 0;
  std::uint64_t collapses_ = 0;
};

/// Replays a recorded history through a StreamingChecker in event-time
/// order (the stream the recorder would have produced) and returns the
/// checker for inspection.  The differential bridge between the batch
/// and streaming worlds: `check_stream(h).ok()` must agree with
/// `check_linearizable(h).ok` whenever no limit error occurred.
[[nodiscard]] StreamingChecker check_stream(const History& h,
                                            StreamCheckerOptions options = {});

}  // namespace rlt::checker
