// Sequential specification of a read/write register, plus helpers shared
// by the linearizability / write strong-linearizability / strong
// linearizability checkers.
//
// Definition 2 of the paper (linearization function w.r.t. type register):
//   1. f(H) contains all completed operations of H and possibly some
//      pending ones (with matching responses added);
//   2. real-time precedence in H is preserved in f(H);
//   3. every read returns the value of the last write linearized before
//      it, or the register's initial value if there is none.
//
// `is_legal_sequential` checks exactly these three properties for a given
// candidate order; the solvers in lin_solver.hpp search for such orders.
#pragma once

#include <string>
#include <vector>

#include "history/history.hpp"

namespace rlt::checker {

using history::History;
using history::OpKind;
using history::OpRecord;
using history::Time;
using history::Value;

/// Result of validating a candidate sequential order.
struct SequentialCheck {
  bool ok = false;
  std::string error;  ///< Empty when ok; human-readable reason otherwise.
};

/// Checks that `order` (op ids of `h`, each at most once) is a legal
/// linearization of single-register history `h`:
///  * contains every completed op of `h`, and only ops of `h`
///    (pending ops may be included);
///  * respects real-time precedence among *all* ops it contains;
///  * every pair (o before o') with o.response < o'.invoke where both are
///    included appears in that order;
///  * reads return the last written value (or the initial value).
/// Reads that are pending in `h` must not appear in `order` (a pending
/// read has no response value to validate).
[[nodiscard]] SequentialCheck is_legal_sequential(const History& h,
                                                  const std::vector<int>& order);

/// The subsequence of `order` consisting of write operations.
[[nodiscard]] std::vector<int> writes_of(const History& h,
                                         const std::vector<int>& order);

/// True iff `prefix` is a prefix of `seq`.
[[nodiscard]] bool is_prefix_of(const std::vector<int>& prefix,
                                const std::vector<int>& seq);

/// Asserts that the history mentions exactly one register and returns its
/// id; throws util::InvariantViolation otherwise.  The WSL and strong
/// checkers operate on single-register histories (the paper's definitions
/// are for implementations of one register).
[[nodiscard]] history::RegisterId single_register_of(const History& h);

}  // namespace rlt::checker
