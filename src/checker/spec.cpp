#include "checker/spec.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/assert.hpp"

namespace rlt::checker {

SequentialCheck is_legal_sequential(const History& h,
                                    const std::vector<int>& order) {
  const auto fail = [](const std::string& why) {
    return SequentialCheck{false, why};
  };

  std::set<int> seen;
  for (const int id : order) {
    if (id < 0 || id >= static_cast<int>(h.size())) {
      return fail("order mentions unknown op id " + std::to_string(id));
    }
    if (!seen.insert(id).second) {
      return fail("order mentions op" + std::to_string(id) + " twice");
    }
    const OpRecord& op = h.op(id);
    if (op.is_read() && op.pending()) {
      return fail("order includes pending read op" + std::to_string(id));
    }
  }
  for (const OpRecord& op : h.ops()) {
    if (!op.pending() && seen.count(op.id) == 0) {
      return fail("order omits completed op" + std::to_string(op.id));
    }
  }

  // Real-time precedence among included ops.
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      const OpRecord& later = h.op(order[j]);
      const OpRecord& earlier = h.op(order[i]);
      if (later.precedes(earlier)) {
        std::ostringstream os;
        os << "real-time violation: op" << later.id << " precedes op"
           << earlier.id << " but is ordered after it";
        return fail(os.str());
      }
    }
  }

  // Register semantics.
  const auto regs = h.registers();
  std::map<history::RegisterId, Value> current;
  for (const auto reg : regs) current[reg] = h.initial(reg);
  for (const int id : order) {
    const OpRecord& op = h.op(id);
    if (op.is_write()) {
      current[op.reg] = op.value;
    } else if (op.value != current[op.reg]) {
      std::ostringstream os;
      os << "read op" << op.id << " returned " << op.value
         << " but register R" << op.reg << " holds " << current[op.reg];
      return fail(os.str());
    }
  }
  return SequentialCheck{true, {}};
}

std::vector<int> writes_of(const History& h, const std::vector<int>& order) {
  std::vector<int> out;
  for (const int id : order) {
    if (h.op(id).is_write()) out.push_back(id);
  }
  return out;
}

bool is_prefix_of(const std::vector<int>& prefix,
                  const std::vector<int>& seq) {
  if (prefix.size() > seq.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), seq.begin());
}

history::RegisterId single_register_of(const History& h) {
  // Allocation-free (this runs once per solver call): scan instead of
  // materializing the register set.
  bool seen = false;
  history::RegisterId reg = 0;
  for (const OpRecord& op : h.ops()) {
    if (!seen) {
      reg = op.reg;
      seen = true;
    } else {
      RLT_CHECK_MSG(op.reg == reg,
                    "expected a single-register history, found several");
    }
  }
  return reg;
}

}  // namespace rlt::checker
