// Off-line linearizability checking for register histories
// (Herlihy & Wing, Definition 2 of the paper).
//
// Multi-register histories are handled through the locality
// (compositionality) theorem of Herlihy & Wing: a history is linearizable
// iff each per-register subhistory is.  The checker verifies each register
// with the backtracking solver, then merges the per-register witnesses
// into a single global sequential order (always possible by locality; the
// merge asserts this).
#pragma once

#include <string>
#include <vector>

#include "checker/lin_solver.hpp"

namespace rlt::checker {

/// Result of a linearizability check.
struct LinCheckResult {
  bool ok = false;
  /// Global witness: included op ids in linearization order. Empty if !ok.
  std::vector<int> order;
  /// Human-readable failure description (which register, why).
  std::string error;
};

/// Checks linearizability of `h` (any number of registers).
[[nodiscard]] LinCheckResult check_linearizable(const History& h);

/// Checks every event-prefix of `h` for linearizability.  Linearizability
/// is prefix-closed, so this should agree with `check_linearizable(h)`;
/// the function exists for defense-in-depth in tests and to produce
/// per-prefix diagnostics.
[[nodiscard]] LinCheckResult check_all_prefixes_linearizable(const History& h);

}  // namespace rlt::checker
