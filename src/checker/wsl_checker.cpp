#include "checker/wsl_checker.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "checker/tree_common.hpp"
#include "util/assert.hpp"

namespace rlt::checker {

namespace {

using detail::EventSig;
using detail::for_each_ordered_selection;
using detail::key_to_id_map;
using detail::OpKey;
using detail::prepare_run;
using detail::PreparedRun;

/// Mutable search state shared across the DFS.
struct TreeSearch {
  std::vector<PreparedRun> runs;
  Value initial = 0;
  std::size_t solver_calls = 0;
  std::string first_failure;  ///< certificate of the deepest failure
  std::size_t deepest_failure_events = 0;
  std::vector<std::vector<int>> result_orders;  ///< per input run index

  /// Feasibility of the prefix of `run` with `nevents` events under the
  /// committed write sequence: does a legal linearization exist whose
  /// write subsequence is exactly `committed`?
  bool feasible(const PreparedRun& run, std::size_t nevents,
                const std::vector<OpKey>& committed, std::string* why) {
    ++solver_calls;
    const Time t = nevents == 0 ? 0 : run.events[nevents - 1].time;
    const History prefix = run.h->prefix_at(t);
    const std::map<OpKey, int> ids = key_to_id_map(prefix);
    LinProblem problem;
    problem.history = &prefix;
    problem.mode = WriteOrderMode::kExact;
    for (const OpKey& key : committed) {
      const auto it = ids.find(key);
      RLT_CHECK_MSG(it != ids.end(),
                    "committed op " << key << " not present in prefix");
      problem.exact_write_order.push_back(it->second);
    }
    const LinSolution sol = solve(problem);
    if (!sol.ok && why != nullptr) {
      std::ostringstream os;
      os << "prefix with " << nevents << " events (t<=" << t
         << ") has no linearization with committed write order [";
      for (std::size_t i = 0; i < committed.size(); ++i) {
        os << (i == 0 ? "" : ", ") << committed[i];
      }
      os << ']';
      *why = os.str();
    }
    return sol.ok;
  }

  /// Uncommitted writes already invoked in the prefix — the candidates
  /// for lazy commitment extension.
  std::vector<OpKey> extension_candidates(
      const PreparedRun& run, std::size_t nevents,
      const std::vector<OpKey>& committed) const {
    const Time t = nevents == 0 ? 0 : run.events[nevents - 1].time;
    std::vector<OpKey> out;
    for (const OpRecord& op : run.h->ops()) {
      if (!op.is_write() || op.invoke > t) continue;
      const OpKey key = run.op_keys[static_cast<std::size_t>(op.id)];
      if (std::find(committed.begin(), committed.end(), key) ==
          committed.end()) {
        out.push_back(key);
      }
    }
    return out;
  }

  void note_failure(std::size_t nevents, const std::string& description) {
    if (nevents >= deepest_failure_events) {
      deepest_failure_events = nevents;
      first_failure = description;
    }
  }

  bool walk(const std::vector<int>& group, std::size_t depth,
            std::vector<OpKey>& committed);
  bool step(const std::vector<int>& subgroup, std::size_t depth,
            std::vector<OpKey>& committed);
};

bool TreeSearch::step(const std::vector<int>& subgroup, std::size_t depth,
                      std::vector<OpKey>& committed) {
  const PreparedRun& rep = runs[static_cast<std::size_t>(subgroup.front())];
  const std::size_t nevents = depth + 1;

  std::string why;
  if (feasible(rep, nevents, committed, &why)) {
    return walk(subgroup, nevents, committed);
  }

  // Forced decision point: lazily extend the committed sequence with some
  // ordered selection of uncommitted invoked writes.
  const std::vector<OpKey> candidates =
      extension_candidates(rep, nevents, committed);
  std::ostringstream failure;
  failure << why << "; tried extensions over " << candidates.size()
          << " uncommitted writes:";
  const std::size_t base = committed.size();
  const bool ok = for_each_ordered_selection(
      candidates, [&](const std::vector<OpKey>& extension) -> bool {
        committed.resize(base);
        committed.insert(committed.end(), extension.begin(), extension.end());
        const auto render = [&extension](std::ostream& os) {
          os << "\n  + [";
          for (std::size_t i = 0; i < extension.size(); ++i) {
            os << (i == 0 ? "" : ", ") << extension[i];
          }
          os << ']';
        };
        if (!feasible(rep, nevents, committed, nullptr)) {
          render(failure);
          failure << " infeasible";
          return false;
        }
        if (walk(subgroup, nevents, committed)) return true;
        render(failure);
        failure << " feasible here but fails on a continuation";
        return false;
      });
  if (!ok) {
    committed.resize(base);
    note_failure(nevents, failure.str());
  }
  return ok;
}

bool TreeSearch::walk(const std::vector<int>& group, std::size_t depth,
                      std::vector<OpKey>& committed) {
  // Runs fully consumed at this depth are satisfied; record their final
  // committed write order (op ids in that run).
  std::vector<int> active;
  for (const int idx : group) {
    const PreparedRun& run = runs[static_cast<std::size_t>(idx)];
    if (run.events.size() <= depth) {
      std::vector<int> ids;
      const std::map<OpKey, int> id_map = key_to_id_map(*run.h);
      for (const OpKey& key : committed) {
        const auto it = id_map.find(key);
        if (it != id_map.end()) ids.push_back(it->second);
      }
      result_orders[static_cast<std::size_t>(run.input_index)] =
          std::move(ids);
    } else {
      active.push_back(idx);
    }
  }
  if (active.empty()) return true;

  // Partition the active runs by the signature of their next event.
  std::vector<std::pair<EventSig, std::vector<int>>> partitions;
  for (const int idx : active) {
    const PreparedRun& run = runs[static_cast<std::size_t>(idx)];
    const EventSig& sig = run.signatures[depth];
    auto it = std::find_if(partitions.begin(), partitions.end(),
                           [&sig](const auto& p) { return p.first == sig; });
    if (it == partitions.end()) {
      partitions.push_back({sig, {idx}});
    } else {
      it->second.push_back(idx);
    }
  }

  // Every branch must succeed starting from the same committed state —
  // decisions inside one branch must not leak into a sibling.
  const std::vector<OpKey> snapshot = committed;
  for (const auto& [sig, subgroup] : partitions) {
    committed = snapshot;
    if (!step(subgroup, depth, committed)) {
      committed = snapshot;
      return false;
    }
  }
  committed = snapshot;
  return true;
}

}  // namespace

WslCheckResult check_write_strong_linearizable(
    const std::vector<History>& runs) {
  WslCheckResult result;
  RLT_CHECK_MSG(!runs.empty(), "need at least one history");

  TreeSearch search;
  search.result_orders.resize(runs.size());
  const auto reg0 = single_register_of(runs.front());
  search.initial = runs.front().initial(reg0);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto reg = single_register_of(runs[i]);
    RLT_CHECK_MSG(reg == reg0, "all runs must use the same register");
    RLT_CHECK_MSG(runs[i].initial(reg) == search.initial,
                  "all runs must share the initial value");
    RLT_CHECK_MSG(runs[i].size() <= 64, "runs limited to 64 ops");
    search.runs.push_back(prepare_run(runs[i], static_cast<int>(i)));
  }

  std::vector<int> group(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) group[i] = static_cast<int>(i);
  std::vector<OpKey> committed;
  const bool ok = search.walk(group, 0, committed);
  result.ok = ok;
  result.solver_calls = search.solver_calls;
  if (ok) {
    result.write_orders = std::move(search.result_orders);
  } else {
    std::ostringstream os;
    os << "no write strong-linearization function exists; deepest failing "
          "decision point (after "
       << search.deepest_failure_events
       << " events): " << search.first_failure;
    result.explanation = os.str();
  }
  return result;
}

WslCheckResult check_write_strong_linearizable(const History& run) {
  return check_write_strong_linearizable(std::vector<History>{run});
}

}  // namespace rlt::checker
