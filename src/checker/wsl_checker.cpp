#include "checker/wsl_checker.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "checker/tree_common.hpp"
#include "util/assert.hpp"

namespace rlt::checker {

namespace {

using detail::EventSig;
using detail::for_each_ordered_selection;
using detail::OpKey;
using detail::prefix_tree_nodes;
using detail::prepare_run;
using detail::PreparedRun;
using history::Event;

/// Mutable search state shared across the DFS.
struct TreeSearch {
  std::vector<PreparedRun> runs;
  /// Per run: prefix-tree node id after k events (see prefix_tree_nodes).
  std::vector<std::vector<int>> node_ids;
  Value initial = 0;
  bool memoize = true;
  std::size_t solver_calls = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::string first_failure;  ///< certificate of the deepest failure
  std::size_t deepest_failure_events = 0;
  std::vector<std::vector<int>> result_orders;  ///< per input run index

  /// Committed-sequence interning: every distinct committed write
  /// sequence reached by the search gets a dense trie id (node 0 = the
  /// empty sequence); `cid` values are threaded through walk/step
  /// alongside the committed vector.  Memo keys are then two dense ints
  /// — (prefix-tree node, committed trie id) — with no vector hashing or
  /// copying on the probe path.
  struct TrieNode {
    std::vector<std::pair<OpKey, int>> children;
  };
  std::vector<TrieNode> trie{TrieNode{}};

  int trie_child(int cid, const OpKey& key) {
    for (const auto& [k, child] : trie[static_cast<std::size_t>(cid)].children) {
      if (k == key) return child;
    }
    const int child = static_cast<int>(trie.size());
    trie.emplace_back();
    trie[static_cast<std::size_t>(cid)].children.emplace_back(key, child);
    return child;
  }

  /// Exact memo key: feasibility (and the failure of a whole decision
  /// subtree) is a pure function of (event-prefix, committed sequence).
  /// The prefix-tree node id identifies the prefix exactly (runs sharing
  /// a node agree on every event, hence on the abstract prefix history)
  /// and the trie id identifies the committed sequence exactly, so keys
  /// never conflate distinct states.
  static std::uint64_t memo_key(int node, int cid) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node))
            << 32) |
           static_cast<std::uint32_t>(cid);
  }
  /// Level 1: feasibility verdicts per (node, committed).
  std::unordered_map<std::uint64_t, bool> memo;
  /// Level 2: decision subtrees proven unsatisfiable per (node,
  /// committed-at-entry).  Extension retries at shallower events re-reach
  /// the same (node, committed) states constantly; this skips re-walking
  /// entire failing subtrees, not just single solver calls.  Only
  /// failures are cached (hence a set): successes carry result_orders
  /// side effects.
  std::unordered_set<std::uint64_t> failed_steps;

  /// Feasibility of the prefix of run `run_idx` with `nevents` events
  /// under the committed write sequence: does a legal linearization exist
  /// whose write subsequence is exactly `committed`?  Solves on a
  /// zero-copy prefix view of the run's history (no History copy, no
  /// per-probe id-map rebuild) and memoizes the verdict per
  /// (prefix-tree node, committed).
  bool feasible(int run_idx, std::size_t nevents,
                const std::vector<OpKey>& committed, int cid,
                std::string* why) {
    const PreparedRun& run = runs[static_cast<std::size_t>(run_idx)];
    // The empty prefix has no representable cutoff when the run's first
    // event is at time 0 (Time is unsigned and cutoffs are inclusive, so
    // cutoff 0 would INCLUDE that op).  Resolve it directly: the empty
    // prefix is feasible iff nothing has been committed yet.
    if (nevents == 0) {
      const bool ok0 = committed.empty();
      if (!ok0 && why != nullptr) {
        *why = render_infeasible(nevents, 0, committed);
      }
      return ok0;
    }
    const Time t = run.events[nevents - 1].time;
    bool ok;
    std::uint64_t key = 0;
    if (memoize) {
      key = memo_key(node_ids[static_cast<std::size_t>(run_idx)][nevents],
                     cid);
      const auto it = memo.find(key);
      if (it != memo.end()) {
        ++cache_hits;
        ok = it->second;
        if (!ok && why != nullptr) *why = render_infeasible(nevents, t, committed);
        return ok;
      }
    }
    ++cache_misses;
    ++solver_calls;
    LinProblem problem;
    problem.history = run.h;
    problem.cutoff = t;
    problem.mode = WriteOrderMode::kExact;
    problem.exact_write_order.reserve(committed.size());
    for (const OpKey& ckey : committed) {
      const int id = run.id_of(ckey);
      RLT_CHECK_MSG(id >= 0 && run.h->op(id).invoke <= t,
                    "committed op " << ckey << " not present in prefix");
      problem.exact_write_order.push_back(id);
    }
    ok = checker::feasible(problem);
    if (memoize) memo.emplace(key, ok);
    if (!ok && why != nullptr) *why = render_infeasible(nevents, t, committed);
    return ok;
  }

  static std::string render_infeasible(std::size_t nevents, Time t,
                                       const std::vector<OpKey>& committed) {
    std::ostringstream os;
    os << "prefix with " << nevents << " events (t<=" << t
       << ") has no linearization with committed write order [";
    for (std::size_t i = 0; i < committed.size(); ++i) {
      os << (i == 0 ? "" : ", ") << committed[i];
    }
    os << ']';
    return os.str();
  }

  /// Uncommitted writes already invoked in the prefix — the candidates
  /// for lazy commitment extension.
  std::vector<OpKey> extension_candidates(
      const PreparedRun& run, std::size_t nevents,
      const std::vector<OpKey>& committed) const {
    // Empty prefix: nothing invoked, nothing to commit (and no cutoff
    // can express it when events start at time 0 — see feasible()).
    if (nevents == 0) return {};
    const Time t = run.events[nevents - 1].time;
    std::vector<OpKey> out;
    for (const OpRecord& op : run.h->ops()) {
      if (!op.is_write() || op.invoke > t) continue;
      const OpKey key = run.op_keys[static_cast<std::size_t>(op.id)];
      if (std::find(committed.begin(), committed.end(), key) ==
          committed.end()) {
        out.push_back(key);
      }
    }
    return out;
  }

  void note_failure(std::size_t nevents, const std::string& description) {
    if (nevents >= deepest_failure_events) {
      deepest_failure_events = nevents;
      first_failure = description;
    }
  }

  bool walk(const std::vector<int>& group, std::size_t depth,
            std::vector<OpKey>& committed, int cid);
  bool step(const std::vector<int>& subgroup, std::size_t depth,
            std::vector<OpKey>& committed, int cid);
};

bool TreeSearch::step(const std::vector<int>& subgroup, std::size_t depth,
                      std::vector<OpKey>& committed, int cid) {
  const int rep = subgroup.front();
  const std::size_t nevents = depth + 1;

  // Whole-subtree memo: if this (prefix node, committed) decision state
  // already failed, every commitment choice below it fails again.
  const std::uint64_t step_key =
      memoize
          ? memo_key(node_ids[static_cast<std::size_t>(rep)][nevents], cid)
          : 0;
  if (memoize && failed_steps.contains(step_key)) {
    ++cache_hits;
    return false;
  }

  // Invocation events cannot change feasibility: the new op is pending
  // and uncommitted, so the exact-order solver excludes it entirely — the
  // solve instance is the parent's (which held when we were called).
  // Only responses (new completed ops) force a fresh solver probe.
  const bool invocation =
      runs[static_cast<std::size_t>(rep)].events[depth].kind ==
      Event::Kind::kInvoke;

  std::string why;
  if (invocation || feasible(rep, nevents, committed, cid, &why)) {
    if (walk(subgroup, nevents, committed, cid)) return true;
    if (memoize) failed_steps.insert(step_key);
    return false;
  }

  // Forced decision point: lazily extend the committed sequence with some
  // ordered selection of uncommitted invoked writes.
  const std::vector<OpKey> candidates = extension_candidates(
      runs[static_cast<std::size_t>(rep)], nevents, committed);
  std::ostringstream failure;
  failure << why << "; tried extensions over " << candidates.size()
          << " uncommitted writes:";
  const std::size_t base = committed.size();
  const bool ok = for_each_ordered_selection(
      candidates, [&](const std::vector<OpKey>& extension) -> bool {
        committed.resize(base);
        committed.insert(committed.end(), extension.begin(), extension.end());
        int ext_cid = cid;
        for (const OpKey& key : extension) ext_cid = trie_child(ext_cid, key);
        const auto render = [&extension](std::ostream& os) {
          os << "\n  + [";
          for (std::size_t i = 0; i < extension.size(); ++i) {
            os << (i == 0 ? "" : ", ") << extension[i];
          }
          os << ']';
        };
        if (!feasible(rep, nevents, committed, ext_cid, nullptr)) {
          render(failure);
          failure << " infeasible";
          return false;
        }
        if (walk(subgroup, nevents, committed, ext_cid)) return true;
        render(failure);
        failure << " feasible here but fails on a continuation";
        return false;
      });
  if (!ok) {
    committed.resize(base);
    note_failure(nevents, failure.str());
    if (memoize) failed_steps.insert(step_key);
  }
  return ok;
}

bool TreeSearch::walk(const std::vector<int>& group, std::size_t depth,
                      std::vector<OpKey>& committed, int cid) {
  // Runs fully consumed at this depth are satisfied; record their final
  // committed write order (op ids in that run).
  std::vector<int> active;
  for (const int idx : group) {
    const PreparedRun& run = runs[static_cast<std::size_t>(idx)];
    if (run.events.size() <= depth) {
      std::vector<int> ids;
      for (const OpKey& key : committed) {
        const int id = run.id_of(key);
        if (id >= 0) ids.push_back(id);
      }
      result_orders[static_cast<std::size_t>(run.input_index)] =
          std::move(ids);
    } else {
      active.push_back(idx);
    }
  }
  if (active.empty()) return true;

  // Fast path: one active run (the common case for single-history
  // checks) forms a single partition — skip the partition machinery.
  if (active.size() == 1) {
    const std::vector<OpKey> snapshot = committed;
    const bool ok = step(active, depth, committed, cid);
    committed = snapshot;
    return ok;
  }

  // Partition the active runs by the signature of their next event.
  std::vector<std::pair<EventSig, std::vector<int>>> partitions;
  for (const int idx : active) {
    const PreparedRun& run = runs[static_cast<std::size_t>(idx)];
    const EventSig& sig = run.signatures[depth];
    auto it = std::find_if(partitions.begin(), partitions.end(),
                           [&sig](const auto& p) { return p.first == sig; });
    if (it == partitions.end()) {
      partitions.push_back({sig, {idx}});
    } else {
      it->second.push_back(idx);
    }
  }

  // Every branch must succeed starting from the same committed state —
  // decisions inside one branch must not leak into a sibling.
  const std::vector<OpKey> snapshot = committed;
  for (const auto& [sig, subgroup] : partitions) {
    committed = snapshot;
    if (!step(subgroup, depth, committed, cid)) {
      committed = snapshot;
      return false;
    }
  }
  committed = snapshot;
  return true;
}

}  // namespace

WslCheckResult check_write_strong_linearizable(
    const std::vector<History>& runs, const WslCheckOptions& options) {
  WslCheckResult result;
  RLT_CHECK_MSG(!runs.empty(), "need at least one history");

  TreeSearch search;
  search.memoize = options.memoize;
  search.result_orders.resize(runs.size());
  const auto reg0 = single_register_of(runs.front());
  search.initial = runs.front().initial(reg0);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto reg = single_register_of(runs[i]);
    RLT_CHECK_MSG(reg == reg0, "all runs must use the same register");
    RLT_CHECK_MSG(runs[i].initial(reg) == search.initial,
                  "all runs must share the initial value");
    RLT_CHECK_MSG(runs[i].size() <= 64, "runs limited to 64 ops");
    search.runs.push_back(prepare_run(runs[i], static_cast<int>(i)));
  }
  search.node_ids = prefix_tree_nodes(search.runs);

  std::vector<int> group(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) group[i] = static_cast<int>(i);
  std::vector<OpKey> committed;
  const bool ok = search.walk(group, 0, committed, /*cid=*/0);
  result.ok = ok;
  result.solver_calls = search.solver_calls;
  result.cache_hits = search.cache_hits;
  result.cache_misses = search.cache_misses;
  if (ok) {
    result.write_orders = std::move(search.result_orders);
  } else {
    std::ostringstream os;
    os << "no write strong-linearization function exists; deepest failing "
          "decision point (after "
       << search.deepest_failure_events
       << " events): " << search.first_failure;
    result.explanation = os.str();
  }
  return result;
}

WslCheckResult check_write_strong_linearizable(const History& run,
                                               const WslCheckOptions& options) {
  return check_write_strong_linearizable(std::vector<History>{run}, options);
}

}  // namespace rlt::checker
