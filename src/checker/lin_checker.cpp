#include "checker/lin_checker.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/assert.hpp"

namespace rlt::checker {

namespace {

/// Merges per-register witness orders into one global order consistent
/// with real time (Kahn's algorithm on witness chains + real-time edges).
/// By the locality theorem the constraint graph is acyclic.
std::vector<int> merge_witnesses(
    const History& h, const std::vector<std::vector<int>>& witnesses) {
  // Collect included ops and successor constraints.
  std::vector<int> included;
  std::map<int, std::vector<int>> succ;
  std::map<int, int> indegree;
  for (const auto& order : witnesses) {
    for (const int id : order) {
      included.push_back(id);
      indegree.emplace(id, 0);
    }
    for (std::size_t i = 1; i < order.size(); ++i) {
      succ[order[i - 1]].push_back(order[i]);
      ++indegree[order[i]];
    }
  }
  // Real-time edges between included ops (cross-register included).
  for (const int a : included) {
    for (const int b : included) {
      if (a == b) continue;
      if (h.op(a).precedes(h.op(b))) {
        succ[a].push_back(b);
        ++indegree[b];
      }
    }
  }
  std::vector<int> ready;
  for (const auto& [id, deg] : indegree) {
    if (deg == 0) ready.push_back(id);
  }
  // Deterministic output: among ready ops pick smallest invocation time.
  const auto by_invoke = [&h](int a, int b) {
    return h.op(a).invoke > h.op(b).invoke;  // min-heap via sorted vector
  };
  std::vector<int> out;
  out.reserve(included.size());
  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end(), by_invoke);
    const int id = ready.back();
    ready.pop_back();
    out.push_back(id);
    for (const int next : succ[id]) {
      if (--indegree[next] == 0) ready.push_back(next);
    }
  }
  RLT_CHECK_MSG(out.size() == included.size(),
                "locality merge found a cycle — checker bug");
  return out;
}

}  // namespace

LinCheckResult check_linearizable(const History& h) {
  LinCheckResult result;

  // Single-register fast path (the sweep's histories): solve on the
  // history directly — no sub-history copy, no id remapping, no merge.
  const auto regs = h.registers();
  if (regs.size() <= 1) {
    LinProblem problem;
    problem.history = &h;
    LinSolution sol = solve(problem);
    if (!sol.ok) {
      std::ostringstream os;
      os << "register R" << (regs.empty() ? 0 : regs.front())
         << " subhistory is not linearizable:\n" << h.to_string();
      result.error = os.str();
      return result;
    }
    result.ok = true;
    result.order = std::move(sol.order);
    return result;
  }

  std::vector<std::vector<int>> witnesses;
  for (const auto reg : regs) {
    std::vector<int> mapping;
    const History sub = h.restrict_to_register(reg, &mapping);
    LinProblem problem;
    problem.history = &sub;
    const LinSolution sol = solve(problem);
    if (!sol.ok) {
      std::ostringstream os;
      os << "register R" << reg << " subhistory is not linearizable:\n"
         << sub.to_string();
      result.error = os.str();
      return result;
    }
    std::vector<int> order;
    order.reserve(sol.order.size());
    for (const int local : sol.order) {
      order.push_back(mapping[static_cast<std::size_t>(local)]);
    }
    witnesses.push_back(std::move(order));
  }
  result.ok = true;
  result.order = merge_witnesses(h, witnesses);

  // Defense in depth: per-register projections of the merged order must be
  // legal sequential histories.
  for (const auto reg : h.registers()) {
    std::vector<int> mapping;
    const History sub = h.restrict_to_register(reg, &mapping);
    std::map<int, int> to_local;
    for (std::size_t i = 0; i < mapping.size(); ++i) {
      to_local[mapping[i]] = static_cast<int>(i);
    }
    std::vector<int> local_order;
    for (const int id : result.order) {
      const auto it = to_local.find(id);
      if (it != to_local.end()) local_order.push_back(it->second);
    }
    const SequentialCheck chk = is_legal_sequential(sub, local_order);
    RLT_CHECK_MSG(chk.ok, "merged witness invalid on R" << reg << ": "
                                                        << chk.error);
  }
  return result;
}

LinCheckResult check_all_prefixes_linearizable(const History& h) {
  for (const History& prefix : h.all_prefixes()) {
    LinCheckResult r = check_linearizable(prefix);
    if (!r.ok) {
      r.error = "prefix not linearizable: " + r.error;
      return r;
    }
  }
  return check_linearizable(h);
}

}  // namespace rlt::checker
