// Quickstart: a write strongly-linearizable MWMR register on real
// threads, with its recorded history checked by the library's verifiers.
//
//   $ ./examples/quickstart
//
// Walks through the core API:
//  1. build Algorithm 2's register (vector timestamps over seqlock SWMR
//     base registers) for 3 writer slots;
//  2. hammer it from writer and reader threads;
//  3. snapshot the recorded operation history;
//  4. check plain linearizability (Definition 2) and write
//     strong-linearizability (Definition 4) off-line.
#include <cstdio>
#include <thread>
#include <vector>

#include "checker/lin_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "registers/thread_alg2.hpp"

int main() {
  using namespace rlt;

  // 1. A WSL MWMR register with 3 writer slots, initial value 0.
  registers::ThreadAlg2Register reg(/*n=*/3, /*initial=*/0);

  // 2. Three writers and two readers; each operation is recorded.
  std::vector<std::thread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&reg, w] {
      for (int i = 0; i < 3; ++i) {
        reg.write(w, 100 * (w + 1) + i);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&reg, r] {
      for (int i = 0; i < 4; ++i) {
        (void)reg.read(3 + r);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // 3. The recorded history: operation intervals + values.
  const history::History h = reg.history_snapshot();
  std::printf("recorded history:\n%s\n", h.to_string().c_str());

  // 4. Off-line verification.
  const auto lin = checker::check_linearizable(h);
  std::printf("linearizable:                 %s\n", lin.ok ? "yes" : "NO");
  if (lin.ok) {
    std::printf("  witness order:");
    for (const int id : lin.order) std::printf(" op%d", id);
    std::printf("\n");
  }
  const auto wsl = checker::check_write_strong_linearizable(h);
  std::printf("write strongly-linearizable:  %s\n", wsl.ok ? "yes" : "NO");
  if (wsl.ok) {
    std::printf("  committed write order:");
    for (const int id : wsl.write_orders[0]) std::printf(" op%d", id);
    std::printf("\n");
  }
  return lin.ok && wsl.ok ? 0 : 1;
}
