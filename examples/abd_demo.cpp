// Replicated SWMR register over asynchronous message passing (ABD), with
// crash faults — and the Theorem 14 verification of its history.
//
//   $ ./examples/abd_demo
//
// A 5-node cluster: the writer at node 0 streams values while readers at
// other nodes read concurrently; two nodes crash mid-run.  Messages are
// delivered in random order.  At the end, the recorded history is checked
// for linearizability AND write strong-linearizability (Theorem 14: the
// latter is implied for every linearizable SWMR implementation).
#include <cstdio>

#include "checker/lin_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "mp/abd.hpp"
#include "mp/f_star.hpp"
#include "util/rng.hpp"

int main() {
  using namespace rlt;

  mp::Network net;
  mp::AbdRegister reg(net, /*n=*/5, /*writer=*/0, /*initial=*/0);
  util::Rng rng(42);

  int write_token = reg.begin_write(1);
  int read_token = reg.begin_read(2);
  int writes_left = 2;
  int reads_left = 2;
  bool crashed = false;

  for (int step = 0; step < 20000; ++step) {
    if (reg.done(write_token) && writes_left > 0) {
      write_token = reg.begin_write(10 + writes_left--);
    }
    if (reg.done(read_token) && reads_left > 0) {
      std::printf("read at node 2 returned %lld\n",
                  static_cast<long long>(reg.result(read_token)));
      read_token = reg.begin_read(2);
      --reads_left;
    }
    if (step == 300 && !crashed) {
      std::printf("crashing nodes 3 and 4 (a minority of 5)...\n");
      net.crash(3);
      net.crash(4);
      crashed = true;
    }
    if (!net.deliver_random(rng) && writes_left == 0 && reads_left == 0) {
      break;
    }
  }
  std::printf("final read: %lld\n",
              static_cast<long long>(reg.result(read_token)));

  const history::History h = reg.hl_history();
  std::printf("\nrecorded history (%zu ops, %llu messages):\n%s\n", h.size(),
              static_cast<unsigned long long>(net.messages_sent()),
              h.to_string().c_str());
  std::printf("linearizable:                %s\n",
              checker::check_linearizable(h).ok ? "yes" : "NO");
  std::printf("write strongly-linearizable: %s   (Theorem 14)\n",
              checker::check_write_strong_linearizable(h).ok ? "yes" : "NO");
  const auto fs = mp::check_swmr_write_strong(h);
  std::printf("f* construction verified:    %s (%zu prefixes)\n",
              fs.ok ? "yes" : fs.error.c_str(), fs.prefixes_checked);
  return 0;
}
