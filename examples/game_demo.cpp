// The paper's headline result, live: Algorithm 1 under the three register
// semantics.
//
//   $ ./examples/game_demo [rounds]
//
// Runs the game with (1) merely-linearizable registers and the Theorem 6
// adversary — the game never ends; (2) write strongly-linearizable
// registers and the same adversary playing its best — the game dies
// within a few rounds; (3) atomic registers under a random scheduler.
#include <cstdio>
#include <cstdlib>

#include "game/game_runner.hpp"

int main(int argc, char** argv) {
  using namespace rlt;

  const int horizon = argc > 1 ? std::atoi(argv[1]) : 200;
  game::GameConfig cfg;
  cfg.n = 5;
  cfg.max_rounds = horizon;

  std::printf("Algorithm 1 with n=%d processes, horizon %d rounds\n\n",
              cfg.n, cfg.max_rounds);

  {
    const auto r = game::run_scripted_game(
        cfg, sim::Semantics::kLinearizable,
        game::CommitStrategy::kRandomOrder, /*seed=*/2024);
    std::printf("linearizable registers + Theorem 6 adversary:\n");
    std::printf("  rounds survived: %d/%d, terminated: %s\n\n",
                r.rounds_reached, cfg.max_rounds,
                r.terminated ? "yes" : "no — would run forever");
  }
  {
    std::printf("write strongly-linearizable registers, same adversary:\n");
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto r = game::run_scripted_game(
          cfg, sim::Semantics::kWriteStrong,
          game::CommitStrategy::kRandomOrder, seed);
      std::printf("  seed %llu: terminated in round %d\n",
                  static_cast<unsigned long long>(seed),
                  r.termination_round);
    }
    std::printf("  (Lemma 19: each round dies with probability >= 1/2)\n\n");
  }
  {
    const auto r =
        game::run_random_game(cfg, sim::Semantics::kAtomic, /*seed=*/7);
    std::printf("atomic registers, random scheduling:\n");
    std::printf("  terminated: %s (in round %d)\n",
                r.terminated ? "yes" : "no", r.rounds_reached);
  }
  return 0;
}
