// Corollary 9 end to end: A' = (Algorithm 1 ; randomized consensus).
//
//   $ ./examples/consensus_demo
//
// The same derived algorithm A' runs twice.  With merely-linearizable
// game registers the strong adversary parks every process in the game
// forever, so the consensus part never runs.  With write strongly-
// linearizable game registers the game collapses within a few rounds and
// the processes then reach agreement.
#include <cstdio>

#include "consensus/composed.hpp"

int main() {
  using namespace rlt;

  game::GameConfig gc;
  gc.n = 4;
  consensus::ConsensusConfig cc;
  cc.n = 4;

  std::printf("A' = (game ; consensus), n=%d, strong adversary\n\n", gc.n);

  {
    gc.max_rounds = 100;
    const auto r = consensus::run_composed_scripted(
        gc, cc, sim::Semantics::kLinearizable,
        game::CommitStrategy::kRandomOrder, /*seed=*/11);
    std::printf("game registers only linearizable:\n");
    std::printf("  game terminated: %s after %d rounds (capped horizon)\n",
                r.game_terminated ? "yes" : "no", r.game_rounds);
    std::printf("  consensus started: %s — A' never terminates\n\n",
                r.consensus_started ? "yes" : "no");
  }
  {
    gc.max_rounds = 500;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto r = consensus::run_composed_scripted(
          gc, cc, sim::Semantics::kWriteStrong,
          game::CommitStrategy::kRandomOrder, seed);
      std::printf("game registers write strongly-linearizable (seed %llu):\n",
                  static_cast<unsigned long long>(seed));
      std::printf("  game died in round %d; consensus decided: %s "
                  "(agreement=%s validity=%s)\n",
                  r.game_rounds, r.all_decided ? "yes" : "no",
                  r.agreement ? "ok" : "VIOLATED",
                  r.validity ? "ok" : "VIOLATED");
    }
  }
  return 0;
}
