// Driving the history checkers directly: build histories by hand, get
// witnesses and violation certificates.
//
//   $ ./examples/checker_demo
//
// Shows the three levels of the register-linearizability hierarchy on
// small hand-built histories, including the paper's Theorem 13 butterfly
// (two extensions of a common prefix that force opposite write orders).
#include <cstdio>

#include "checker/lin_checker.hpp"
#include "checker/strong_checker.hpp"
#include "checker/wsl_checker.hpp"

namespace {

using namespace rlt;
using history::History;
using history::OpKind;

int add(History& h, int process, OpKind kind, history::Value v,
        history::Time invoke, history::Time response) {
  history::OpRecord op;
  op.process = process;
  op.reg = 0;
  op.kind = kind;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  return h.add(op);
}

}  // namespace

int main() {
  // A linearizable history with overlapping operations.
  {
    History h;
    add(h, 0, OpKind::kWrite, 7, 1, 10);
    add(h, 1, OpKind::kRead, 0, 2, 5);   // overlaps the write, reads old
    add(h, 1, OpKind::kRead, 7, 6, 12);  // reads new
    const auto r = checker::check_linearizable(h);
    std::printf("overlapping write/reads: linearizable=%s, witness:",
                r.ok ? "yes" : "no");
    for (const int id : r.order) std::printf(" op%d", id);
    std::printf("\n");
  }

  // A violation, with the certificate.
  {
    History h;
    add(h, 0, OpKind::kWrite, 7, 1, 2);
    add(h, 1, OpKind::kRead, 0, 3, 4);  // stale read AFTER the write
    const auto r = checker::check_linearizable(h);
    std::printf("\nstale read: linearizable=%s\ncertificate: %s\n",
                r.ok ? "yes" : "no", r.error.c_str());
  }

  // Theorem 13's butterfly: each branch fine, the tree impossible.
  {
    const auto build = [](history::Value read_value) {
      History h;
      add(h, 0, OpKind::kWrite, 1, 1, 8);   // w1, concurrent with w2
      add(h, 1, OpKind::kWrite, 2, 2, 5);   // w2 completes first
      add(h, 2, OpKind::kRead, read_value, 10, 12);
      return h;
    };
    const History h1 = build(2);  // forces w1 before w2
    const History h2 = build(1);  // forces w2 before w1
    std::printf("\nTheorem 13 butterfly:\n");
    std::printf("  branch 1 WSL alone: %s\n",
                checker::check_write_strong_linearizable(h1).ok ? "yes" : "no");
    std::printf("  branch 2 WSL alone: %s\n",
                checker::check_write_strong_linearizable(h2).ok ? "yes" : "no");
    const auto tree = checker::check_write_strong_linearizable(
        std::vector<History>{h1, h2});
    std::printf("  both as a prefix tree: %s\n", tree.ok ? "yes" : "no");
    std::printf("  certificate: %s\n", tree.explanation.c_str());
  }

  // Strong vs write-strong separation (Corollary 11's flavor).
  {
    const auto build = [](history::Value read_value) {
      History h;
      add(h, 0, OpKind::kWrite, 1, 1, 4);
      add(h, 1, OpKind::kWrite, 2, 5, 12);
      add(h, 2, OpKind::kRead, read_value, 6, 20);  // overlaps w2
      return h;
    };
    const std::vector<History> tree{build(1), build(2)};
    std::printf("\nstrong vs write-strong separation:\n");
    std::printf("  WSL over the tree:    %s\n",
                checker::check_write_strong_linearizable(tree).ok ? "yes"
                                                                  : "no");
    std::printf("  strong over the tree: %s\n",
                checker::check_strong_linearizable(tree).ok ? "yes" : "no");
  }
  return 0;
}
