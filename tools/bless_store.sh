#!/usr/bin/env bash
# Regenerates the blessed per-scenario result store that CI diffs every
# push against (tools/sweep_diff.py blessed/store_v1.jsonl <fresh>).
#
# The blessed store concatenates four deterministic slices — every one
# byte-identical across machines, thread counts, and batch sizes:
#
#   1. safety   — the default cross-product with every fault axis on
#                 (none, minority crashes, stalls, plus the unreliable-
#                 network fabric: lossy, dup, healing partition, majority
#                 crash, crash-recovery) over seeds 0:10;
#   2. term     — the termination lab's default cross-product over seeds
#                 0:10, per-family decision-round histograms included;
#   3. explore/rounds — the greedy adaptive adversary vs the Theorem 6
#                 game (round-cap survival witnesses, shrunk);
#   4. explore/violation — the counterexample pipeline against the
#                 planted no-write-back ABD ablation (found, shrunk,
#                 replayable traces embedded in the records).
#
# A diff against the blessed store therefore means scenario BEHAVIOUR
# changed — simulator, register algorithm, checker, termination
# statistics, or the search itself — not scheduling.  When the change is
# intentional, regenerate and commit:
#
#   cmake -B build -S . && cmake --build build -j --target sweep_main
#   tools/bless_store.sh build blessed/store_v1.jsonl
#   git add blessed/store_v1.jsonl
#
# usage: tools/bless_store.sh [build-dir] [out]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-blessed/store_v1.jsonl}"
BIN="${BUILD_DIR}/sweep_main"

if [[ ! -x "${BIN}" ]]; then
  echo "bless_store: ${BIN} not found (build sweep_main first)" >&2
  exit 2
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

"${BIN}" --seeds 0:10 \
         --faults none,minority,stall,lossy,dup,partition,majority,recovery \
         --crash-seeds 0:2 --threads 4 \
         --out "${tmpdir}/safety.jsonl" > /dev/null
"${BIN}" --term --seeds 0:10 --threads 4 \
         --out "${tmpdir}/term.jsonl" > /dev/null
"${BIN}" --explore --objective rounds --families game --strategy greedy \
         --rounds 8 --search-budget 2 --seeds 0:2 --threads 4 \
         --out "${tmpdir}/explore_rounds.jsonl" > /dev/null
"${BIN}" --explore --objective violation --algorithms abd --processes 5 \
         --ablate nowb --strategy greedy --search-budget 16 --seeds 0:2 \
         --threads 4 --out "${tmpdir}/explore_viol.jsonl" > /dev/null

mkdir -p "$(dirname "${OUT}")"
cat "${tmpdir}/safety.jsonl" "${tmpdir}/term.jsonl" \
    "${tmpdir}/explore_rounds.jsonl" "${tmpdir}/explore_viol.jsonl" \
    > "${OUT}"
echo "bless_store: wrote ${OUT} ($(wc -l < "${OUT}") records)"
