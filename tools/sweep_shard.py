#!/usr/bin/env python3
"""Distributed-sweep coordinator: shard, run, stream, merge — one command.

Usage:
    tools/sweep_shard.py --shards N [options] -- <sweep_main args>

Runs the given sweep (safety, --term, or --explore alike) as N
independent `sweep_main --shard i/N` processes, streams their exit
states as they land, then invokes `sweep_main --merge` to validate the
shard set and reconstitute the exact store + digest the unsharded run
would have produced (see src/sweep/shard.hpp for why that is an
identity, not an approximation).  Example:

    tools/sweep_shard.py --shards 4 --out store.jsonl -- \
        --algorithms abd --faults minority --seeds 0:1000 --threads 4

Options:
  --shards N     shard count (>= 1; 1 degenerates to a plain run)
  --bin PATH     sweep_main binary (default: build/sweep_main)
  --out PATH     write the merged store here (as sweep_main --out would)
  --jobs M       run at most M shard processes at once (default: all N)
  --work-dir D   keep shard stores in D instead of a temp dir (kept on
                 exit; the default temp dir is removed on success)
  --progress     live per-shard telemetry: each shard gets a private
                 pipe wired to `sweep_main --progress-fd`, and the
                 coordinator multiplexes the streams into `[shard i]`
                 lines on stderr (done/total, rate, ETA, per-class
                 counts).  Once the first shard finishes, any shard
                 whose ETA exceeds --straggler-factor times the fastest
                 finisher's total time is flagged as a straggler (once).
                 Local shards only — rejected with --hosts
  --straggler-factor F
                 straggler threshold for --progress (default 2.0, must
                 be > 0): flag a running shard once its ETA exceeds
                 F x the fastest finished shard's wall time
  --hosts LIST   comma list of SSH hosts to spread shards over
                 round-robin (shard i runs via `ssh <host[i mod H]>`).
                 v1 hook point: hosts must share this filesystem (same
                 repo path, same work dir) — a scheduler-grade fabric
                 can replace this launcher without touching the merge.

Everything after `--` goes to sweep_main verbatim.  The coordinator owns
--shard/--merge/--out/--list/--replay/--progress-fd, so those are
rejected in the sweep args.  Per-shard observability files (--metrics,
--trace) are allowed: the coordinator rewrites each path to
<path>.shard<i> so shards never clobber a shared file.  --forensics DIR
passes through UNREWRITTEN on purpose: artifact names embed the global
scenario index (scenario-<gi>.json), global indices are disjoint across
shards, and each artifact is a pure function of its scenario — so all
shards share one DIR and together tile exactly the files the unsharded
run would write, byte for byte.

Exit status: the merge's own exit status (0 clean, 1 the merged summary
contains failures) — or 2 if any shard exits with a usage/machinery
error, dies on a signal, or the merge rejects the shard set.
"""

import argparse
import json
import os
import selectors
import shlex
import shutil
import subprocess
import sys
import tempfile
import time

FORBIDDEN = ("--shard", "--merge", "--out", "--list", "--replay",
             "--progress-fd")

# Flags whose value names an output file every shard would otherwise
# clobber; the coordinator rewrites each to <path>.shard<i>.
PER_SHARD_PATHS = ("--metrics", "--trace")


def per_shard_args(sweep_args, index, shards):
    """sweep_args with --metrics/--trace paths suffixed for shard `index`."""
    if shards <= 1:
        return list(sweep_args)
    out = []
    j = 0
    while j < len(sweep_args):
        a = sweep_args[j]
        if a in PER_SHARD_PATHS and j + 1 < len(sweep_args):
            out += [a, f"{sweep_args[j + 1]}.shard{index}"]
            j += 2
        else:
            out.append(a)
            j += 1
    return out


def main():
    ap = argparse.ArgumentParser(add_help=True, usage=__doc__)
    ap.add_argument("--shards", type=int, required=True)
    ap.add_argument("--bin", default=os.path.join("build", "sweep_main"))
    ap.add_argument("--out", default="")
    ap.add_argument("--jobs", type=int, default=0)
    ap.add_argument("--work-dir", default="")
    ap.add_argument("--progress", action="store_true")
    ap.add_argument("--straggler-factor", type=float, default=2.0)
    ap.add_argument("--hosts", default="")
    ap.add_argument("sweep_args", nargs="*")
    args = ap.parse_args()

    if args.shards < 1:
        print("sweep_shard: --shards must be >= 1", file=sys.stderr)
        return 2
    if not args.straggler_factor > 0:  # also rejects NaN
        print("sweep_shard: --straggler-factor must be > 0",
              file=sys.stderr)
        return 2
    sweep_args = args.sweep_args
    # argparse keeps the "--" separator when present; drop it.
    if sweep_args and sweep_args[0] == "--":
        sweep_args = sweep_args[1:]
    for flag in sweep_args:
        if flag in FORBIDDEN:
            print(f"sweep_shard: {flag} belongs to the coordinator, not "
                  "the sweep args", file=sys.stderr)
            return 2
    hosts = [h for h in args.hosts.split(",") if h]
    if args.progress and hosts:
        print("sweep_shard: --progress needs local shards (a pipe fd "
              "cannot cross ssh); drop --hosts", file=sys.stderr)
        return 2

    if args.work_dir:
        work = args.work_dir
        os.makedirs(work, exist_ok=True)
        cleanup = False
    else:
        work = tempfile.mkdtemp(prefix="sweep_shard.")
        cleanup = True

    def command(index, store, progress_fd=None):
        cmd = [args.bin] + per_shard_args(sweep_args, index, args.shards)
        if args.shards > 1:
            cmd += ["--shard", f"{index}/{args.shards}"]
        cmd += ["--out", store]
        if progress_fd is not None:
            cmd += ["--progress-fd", str(progress_fd)]
        if hosts:
            # SSH hook point (v1): same filesystem, same paths, one shard
            # per `ssh host -- <command>`.
            return ["ssh", hosts[index % len(hosts)], "--",
                    shlex.join(cmd)]
        return cmd

    stores = [os.path.join(work, f"shard_{i}.jsonl")
              for i in range(args.shards)]
    jobs = args.jobs if args.jobs > 0 else args.shards
    pending = list(range(args.shards))
    running = {}  # pid -> (index, Popen)
    hard_failed = False
    # --progress bookkeeping: one pipe per shard, multiplexed with a
    # selector; straggler detection compares a running shard's ETA
    # against the fastest finished shard's total wall time.
    sel = selectors.DefaultSelector() if args.progress else None
    started_at = {}    # index -> monotonic start
    finished_in = []   # wall seconds of finished shards
    flagged = set()    # shards already called out as stragglers

    def report(i, d):
        done, total = d.get("done", 0), d.get("total", 0)
        extras = " ".join(
            f"{k}={v}" for k, v in d.items()
            if k not in ("obs", "mode", "state", "done", "total",
                         "elapsed_ms", "eta_ms", "rate"))
        state = " [done]" if d.get("state") == "done" else ""
        print(f"[shard {i}] {done}/{total} {d.get('rate', 0)}/s "
              f"eta {(d.get('eta_ms', 0) + 999) // 1000}s "
              f"{extras}{state}", file=sys.stderr)
        if (finished_in and d.get("state") != "done"
                and i not in flagged
                and d.get("eta_ms", 0) / 1000.0
                > args.straggler_factor * min(finished_in)):
            flagged.add(i)
            print(f"[sweep_shard] shard {i} straggling: eta "
                  f"{d['eta_ms'] / 1000.0:.1f}s vs "
                  f"{args.straggler_factor}x fastest shard "
                  f"{min(finished_in):.1f}s total", file=sys.stderr)

    def reap(i, proc, rc):
        nonlocal hard_failed
        if args.progress:
            finished_in.append(time.monotonic() - started_at[i])
        print(f"[sweep_shard] shard {i}/{args.shards} exited {rc}",
              file=sys.stderr)
        # rc 1 means the shard's slice contains failures — its store
        # is still complete and mergeable (the merged summary carries
        # the verdict).  Anything else is a broken shard: stop early.
        if rc not in (0, 1):
            hard_failed = True
            for _, (j, p) in running.items():
                p.terminate()
            for _, (j, p) in running.items():
                p.wait()
            running.clear()
            print(f"[sweep_shard] shard {i}/{args.shards} failed "
                  f"(exit {rc}); aborting before the merge",
                  file=sys.stderr)
            return False
        return True

    try:
        while pending or running:
            while pending and len(running) < jobs:
                i = pending.pop(0)
                progress_wfd = None
                if args.progress:
                    rfd, progress_wfd = os.pipe()
                # Shard summaries go to stderr: stdout is reserved for
                # the merged (= unsharded-identical) summary.
                proc = subprocess.Popen(
                    command(i, stores[i], progress_wfd),
                    stdout=sys.stderr.fileno()
                    if args.shards > 1 else None,
                    pass_fds=(progress_wfd,) if args.progress else ())
                if args.progress:
                    os.close(progress_wfd)
                    reader = os.fdopen(rfd, "r")
                    sel.register(reader, selectors.EVENT_READ, i)
                    started_at[i] = time.monotonic()
                running[proc.pid] = (i, proc)
                print(f"[sweep_shard] shard {i}/{args.shards} started "
                      f"(pid {proc.pid})", file=sys.stderr)
            if sel is None:
                pid, status = os.wait()
                if pid not in running:
                    continue
                i, proc = running.pop(pid)
                if not reap(i, proc, os.waitstatus_to_exitcode(status)):
                    return 2
                continue
            # --progress: poll the pipes (readline blocks at most until
            # the writer's next emit or its exit-side EOF), then reap
            # any shards that exited.
            for key, _ in sel.select(timeout=0.5):
                line = key.fileobj.readline()
                if not line:  # EOF: the shard closed its end
                    sel.unregister(key.fileobj)
                    key.fileobj.close()
                    continue
                try:
                    d = json.loads(line)
                except ValueError:
                    continue
                if d.get("obs") == "progress":
                    report(key.data, d)
            for pid in [p for p, (_, pr) in running.items()
                        if pr.poll() is not None]:
                i, proc = running.pop(pid)
                if not reap(i, proc, proc.returncode):
                    return 2

        if args.shards == 1:
            # Degenerate single-shard run: no bracket records were
            # written, so there is nothing to merge — the one store IS
            # the unsharded store.
            if args.out:
                shutil.copyfile(stores[0], args.out)
            return 0

        merge_cmd = [args.bin, "--merge"] + stores
        if args.out:
            merge_cmd += ["--out", args.out]
        print(f"[sweep_shard] merging {args.shards} shard stores",
              file=sys.stderr)
        return subprocess.call(merge_cmd)
    finally:
        if cleanup and not hard_failed:
            shutil.rmtree(work, ignore_errors=True)
        elif cleanup:
            print(f"[sweep_shard] shard stores kept in {work}",
                  file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
