#!/usr/bin/env python3
"""Observability overhead gate: instrumented sweep within N% of plain.

Usage:
    tools/obs_gate.py [--bin PATH] [--runs K] [--threshold PCT] \
        -- <sweep_main args>

Runs the given sweep K times plain and K times fully instrumented
(--metrics + --trace to scratch files), takes the min elapsed_ms of
each side (min-of-K is the standard de-noising for wall-clock gates),
and fails if the instrumented minimum exceeds the plain minimum by
more than PCT percent.  The elapsed time is read from the sweep's own
"--- timing ---" section, so process startup is excluded.

Exit status: 0 within threshold, 1 breach, 2 usage/machinery error.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

ELAPSED = re.compile(r"^elapsed_ms (\d+)$", re.MULTILINE)


def run_once(cmd):
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, text=True)
    if proc.returncode not in (0, 1):
        print(f"obs_gate: {' '.join(cmd)} exited {proc.returncode}",
              file=sys.stderr)
        sys.exit(2)
    m = ELAPSED.search(proc.stdout)
    if not m:
        print("obs_gate: no elapsed_ms in sweep output", file=sys.stderr)
        sys.exit(2)
    return int(m.group(1))


def main():
    ap = argparse.ArgumentParser(add_help=True, usage=__doc__)
    ap.add_argument("--bin", default=os.path.join("build", "sweep_main"))
    ap.add_argument("--runs", type=int, default=3)
    ap.add_argument("--threshold", type=float, default=5.0)
    ap.add_argument("sweep_args", nargs="*")
    args = ap.parse_args()
    sweep_args = args.sweep_args
    if sweep_args and sweep_args[0] == "--":
        sweep_args = sweep_args[1:]
    if args.runs < 1:
        print("obs_gate: --runs must be >= 1", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory(prefix="obs_gate.") as work:
        plain_cmd = [args.bin] + sweep_args
        inst_cmd = plain_cmd + [
            "--metrics", os.path.join(work, "m.jsonl"),
            "--trace", os.path.join(work, "t.jsonl")]
        # Interleave plain/instrumented runs so thermal or load drift
        # hits both sides equally.
        plain, inst = [], []
        for _ in range(args.runs):
            plain.append(run_once(plain_cmd))
            inst.append(run_once(inst_cmd))

    base, instd = min(plain), min(inst)
    overhead = 100.0 * (instd - base) / base if base else 0.0
    print(f"obs_gate: plain min {base}ms (of {plain}), instrumented min "
          f"{instd}ms (of {inst}), overhead {overhead:+.1f}% "
          f"(threshold {args.threshold}%)")
    if base and overhead > args.threshold:
        print("obs_gate: instrumented sweep exceeds the overhead "
              "threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
