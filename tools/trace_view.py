#!/usr/bin/env python3
"""Convert sweep observability files to Chrome trace-event JSON.

Usage:
    tools/trace_view.py [--out trace.json] FILE...
    tools/trace_view.py --selftest

Accepts either kind of file the sweep engine writes, autodetected per
file, and emits one Chrome trace-event JSON document ("traceEvents"
array) loadable in Perfetto (https://ui.perfetto.dev) or
chrome://tracing:

  * `--trace` span JSONL: each scenario span becomes a complete ("X")
    slice on one timeline per mode.  With --trace-times the span's
    wall_ns sets the slice duration and slices are laid out
    back-to-back in enumeration order; without it every slice gets unit
    duration.  Records carrying `"stable": false` (the closing sweep
    span, which opts out of byte-identity) are skipped mechanically —
    that marker, not field sniffing, is the skip signal.

  * `--forensics` artifacts (scenario-<gi>.json / explore-<gi>.json):
    the recorded history becomes one track per process (op slices at
    their invoke/response times; pending ops run to the end of the
    history), and the message timeline becomes one track per node with
    a unit slice per event.  Happens-before edges (send -> delivery,
    matched by seq) are rendered as flow arrows; crashes, recoveries,
    drops, and fault events become instant markers.  Timeline events
    carry no wall clock (determinism), so their timestamps are the
    event order — the ops pane and the network pane are separate
    Perfetto process groups with separate clocks.

Each input file gets its own Perfetto "process" group (pid), so several
shards' forensics artifacts can be loaded side by side in one view.

Exit status: 0 on success, 1 when an input cannot be parsed, 2 on bad
usage.
"""

import argparse
import json
import sys


def _meta(pid, tid, what, name):
    return {"ph": "M", "pid": pid, "tid": tid, "name": what,
            "args": {"name": name}}


def convert_spans(lines, pid, label):
    """--trace JSONL -> one slice per scenario span, per-mode tracks."""
    events = [_meta(pid, 0, "process_name", label)]
    cursor = {}  # tid -> next free ts (us) when spans carry no wall clock
    tids = {}    # mode -> tid
    for n, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            d = json.loads(line)
        except ValueError as e:
            raise ValueError(f"line {n}: {e}")
        if d.get("obs") != "span":
            continue
        if d.get("stable") is False:
            # The documented opt-out marker (e.g. the closing sweep
            # span under --trace-times): not a scenario, skip it.
            continue
        mode = str(d.get("mode", "sweep"))
        if mode not in tids:
            tids[mode] = len(tids)
            events.append(_meta(pid, tids[mode], "thread_name",
                                f"{mode} scenarios"))
        tid = tids[mode]
        dur = max(d.get("wall_ns", 0) // 1000, 1)
        ts = cursor.get(tid, 0)
        cursor[tid] = ts + dur
        args = {k: v for k, v in d.items()
                if k not in ("obs", "key", "mode")}
        events.append({"ph": "X", "pid": pid, "tid": tid, "ts": ts,
                       "dur": dur, "cat": mode,
                       "name": str(d.get("key", f"span {n}")),
                       "args": args})
    return events


def convert_forensics(doc, pid, label):
    """One forensics artifact -> op tracks + network timeline tracks."""
    events = [_meta(pid, 0, "process_name",
                    f"{label} ops [{doc.get('verdict', '?')}]")]
    ops = doc.get("ops", [])
    end = max((op.get("response", op["invoke"]) for op in ops),
              default=0) + 1
    tids = {}
    for op in sorted(ops, key=lambda o: (o["process"], o["invoke"])):
        p = op["process"]
        if p not in tids:
            tids[p] = len(tids)
            events.append(_meta(pid, tids[p], "thread_name",
                                f"process {p}"))
        ts = op["invoke"]
        resp = op.get("response")
        name = f"{op['kind']} R{op['reg']}={op['value']}"
        if op.get("pending"):
            name += " (pending)"
        args = {"id": op["id"], "pending": bool(op.get("pending"))}
        cert = doc.get("certificate", {})
        if op["id"] in cert.get("ops", []):
            args["certificate"] = True
            name = "** " + name
        events.append({"ph": "X", "pid": pid, "tid": tids[p], "ts": ts,
                       "dur": (resp if resp is not None else end) - ts,
                       "cat": "op", "name": name, "args": args})

    # Network pane: its own pid — timeline events are ordered but
    # unclocked, so they must not share an axis with history time.
    npid = pid + 1
    tl = doc.get("timeline")
    if tl is not None:
        events.append(_meta(npid, 0, "process_name",
                            f"{label} network ({tl.get('elided', 0)} "
                            "elided)"))
        ntids = {}

        def node_tid(node):
            if node not in ntids:
                ntids[node] = len(ntids)
                events.append(_meta(npid, ntids[node], "thread_name",
                                    f"node {node}" if node >= 0
                                    else "faults"))
            return ntids[node]

        for ts, e in enumerate(tl.get("events", [])):
            kind = e.get("e")
            if kind in ("send", "deliver", "drop", "duplicate"):
                tid = node_tid(e["from"] if kind == "send" else e["to"])
                name = (f"{kind} {e['from']}->{e['to']} "
                        f"t{e.get('type', 0)}")
                events.append({"ph": "X", "pid": npid, "tid": tid,
                               "ts": ts, "dur": 1, "cat": kind,
                               "name": name,
                               "args": {"seq": e.get("seq", 0),
                                        **({"detail": e["detail"]}
                                           if e.get("detail") else {})}})
                if kind == "send":
                    events.append({"ph": "s", "pid": npid, "tid": tid,
                                   "ts": ts, "id": e.get("seq", 0),
                                   "cat": "msg", "name": "msg"})
                elif kind == "deliver":
                    events.append({"ph": "f", "bp": "e", "pid": npid,
                                   "tid": tid, "ts": ts,
                                   "id": e.get("seq", 0), "cat": "msg",
                                   "name": "msg"})
            elif kind in ("crash", "recover"):
                events.append({"ph": "i", "s": "p", "pid": npid,
                               "tid": node_tid(e.get("node", -1)),
                               "ts": ts, "cat": kind,
                               "name": e.get("detail", kind)})
            elif kind == "fault":
                events.append({"ph": "i", "s": "p", "pid": npid,
                               "tid": node_tid(-1), "ts": ts,
                               "cat": "fault",
                               "name": e.get("detail", "fault")})
    return events


def convert_file(text, pid, label):
    """Autodetect one input file's kind and convert it."""
    first = text.lstrip().splitlines()[0] if text.strip() else "{}"
    try:
        head = json.loads(first)
    except ValueError as e:
        raise ValueError(f"first line is not JSON: {e}")
    if head.get("forensics") == 1:
        doc = json.loads(text)
        if "ops" not in doc:
            # kError stub: the runner unwound before capture; render
            # the verdict as a single marker so it is still visible.
            return [_meta(pid, 0, "process_name", f"{label} [stub]"),
                    {"ph": "i", "s": "p", "pid": pid, "tid": 0,
                     "ts": 0, "cat": "stub",
                     "name": doc.get("detail", doc.get("verdict",
                                                       "stub"))}]
        return convert_forensics(doc, pid, label)
    if head.get("obs") == "span":
        return convert_spans(text.splitlines(), pid, label)
    raise ValueError("unrecognized input (expected a --trace span JSONL "
                     "or a --forensics artifact)")


SELFTEST_SPANS = """\
{"obs":"span","gi":0,"key":"abd/rand/p3/seed0","mode":"safety","verdict":"ok","wall_ns":5000,"sweep.scenarios":1}
{"obs":"span","gi":1,"key":"abd/rand/p3/seed1","mode":"safety","verdict":"blocked","sweep.scenarios":1}
{"obs":"span","span":"sweep","mode":"safety","stable":false,"scenarios":2,"elapsed_ns":9}
"""

SELFTEST_FORENSICS = json.dumps({
    "forensics": 1, "key": "abd/rand/p3/seed0", "verdict": "VIOLATION",
    "detail": "linearizability violated", "initial": {"R0": 0},
    "ops": [
        {"id": 0, "process": 0, "reg": 0, "kind": "write", "value": 7,
         "invoke": 1, "response": 4, "pending": False},
        {"id": 1, "process": 1, "reg": 0, "kind": "read", "value": 9,
         "invoke": 2, "pending": True},
    ],
    "certificate": {"checker": "linearizability", "ops": [1],
                    "constraint": "x", "reverified": True, "probes": 3},
    "ledger": [],
    "timeline": {"elided": 0, "events": [
        {"e": "send", "from": 0, "to": 1, "type": 2, "seq": 1},
        {"e": "deliver", "from": 0, "to": 1, "type": 2, "seq": 1},
        {"e": "crash", "node": 1, "detail": "node 1 crashed"},
        {"e": "fault", "detail": "partition cut { 0 }|{ 1 }"},
    ], "edges": [{"from": 0, "to": 1}]},
})


def selftest():
    spans = convert_spans(SELFTEST_SPANS.splitlines(), 0, "t")
    slices = [e for e in spans if e["ph"] == "X"]
    assert len(slices) == 2, slices  # stable:false span skipped
    assert slices[0]["dur"] == 5 and slices[1]["ts"] == 5, slices
    assert all(e.get("name") != "span 3" for e in spans)

    fx = convert_forensics(json.loads(SELFTEST_FORENSICS), 0, "t")
    ops = [e for e in fx if e["ph"] == "X" and e["cat"] == "op"]
    assert len(ops) == 2, ops
    pend = next(e for e in ops if e["args"]["id"] == 1)
    assert pend["args"]["certificate"] and pend["name"].startswith("**")
    assert pend["ts"] + pend["dur"] == 5  # runs to end-of-history
    flows = [e["ph"] for e in fx if e["ph"] in ("s", "f")]
    assert flows == ["s", "f"], flows
    instants = [e["cat"] for e in fx if e["ph"] == "i"]
    assert instants == ["crash", "fault"], instants
    json.dumps({"traceEvents": fx + spans})  # must serialize

    stub = convert_file('{"forensics":1,"key":"k","verdict":"ERROR",'
                        '"detail":"boom"}\n', 0, "t")
    assert any(e["ph"] == "i" and e["name"] == "boom" for e in stub)
    print("trace_view selftest ok")
    return 0


def main():
    ap = argparse.ArgumentParser(add_help=True, usage=__doc__)
    ap.add_argument("--out", default="")
    ap.add_argument("--selftest", action="store_true")
    ap.add_argument("files", nargs="*")
    args = ap.parse_args()
    if args.selftest:
        return selftest()
    if not args.files:
        print("trace_view: no input files (see --help)", file=sys.stderr)
        return 2
    events = []
    # Two pids per input: ops pane + network pane (separate clocks).
    for k, path in enumerate(args.files):
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
            events += convert_file(text, 2 * k, path)
        except (OSError, ValueError) as e:
            print(f"trace_view: {path}: {e}", file=sys.stderr)
            return 1
    doc = json.dumps({"traceEvents": events}, indent=1)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(doc + "\n")
    else:
        print(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main())
