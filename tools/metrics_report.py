#!/usr/bin/env python3
"""Render or diff sweep_main --metrics dumps.

Usage:
    tools/metrics_report.py DUMP            # render one dump as a table
    tools/metrics_report.py OLD NEW         # diff two dumps
    tools/metrics_report.py OLD NEW --threshold 10 [--strict]

A dump is the JSONL file `sweep_main --metrics PATH` writes: one meta
line, then every counter and gauge (zeros included, registry order),
then one line per histogram with its non-zero power-of-two buckets.

Render mode prints the counters/gauges grouped by subsystem prefix,
histograms as bucket rows, and a few derived rates (memo hit rate,
prune fraction, wsl cache hit rate, network delivery rate).

Diff mode prints old/new/delta/pct for every metric present in either
dump.  With --threshold P, stable counters whose relative change
exceeds P percent are listed as regressions; --strict turns any such
regression into exit status 1 (the CI hook).  Unstable (runtime)
metrics — pool.* — are reported but never gate.

Exit status: 0 ok, 1 --strict threshold breach, 2 usage/parse error.
"""

import argparse
import json
import signal
import sys

# Die quietly when piped into head & co.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def load(path):
    """Returns (meta, {name: value}, {name: {bucket: count}}, {name: stable})."""
    meta, scalars, hists, stable = {}, {}, {}, {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            for ln, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    d = json.loads(line)
                except ValueError:
                    print(f"metrics_report: {path}:{ln}: not JSON",
                          file=sys.stderr)
                    sys.exit(2)
                kind = d.get("obs")
                if kind == "meta":
                    meta = d
                elif kind in ("counter", "gauge"):
                    scalars[d["name"]] = int(d["value"])
                    stable[d["name"]] = bool(d.get("stable", True))
                elif kind == "hist":
                    hists[d["name"]] = {
                        int(k[1:]): int(v) for k, v in d.items()
                        if k.startswith("b") and k[1:].isdigit()}
                    stable[d["name"]] = bool(d.get("stable", True))
    except OSError as e:
        print(f"metrics_report: {e}", file=sys.stderr)
        sys.exit(2)
    return meta, scalars, hists, stable


def rate(num, den):
    return f"{100.0 * num / den:.1f}%" if den else "-"


def derived(scalars):
    g = scalars.get
    return [
        ("checker memo hit rate",
         rate(g("checker.memo_hits", 0), g("checker.solver_calls", 0))),
        ("checker prune fraction",
         rate(g("checker.prune_doomed", 0) + g("checker.prune_eager_read", 0)
              + g("checker.prune_accept", 0), g("checker.dfs_nodes", 0))),
        ("wsl cache hit rate",
         rate(g("wsl.cache_hits", 0),
              g("wsl.cache_hits", 0) + g("wsl.cache_misses", 0))),
        ("net delivery rate",
         rate(g("net.delivered", 0), g("net.msgs_sent", 0))),
        ("stream collapse rate",
         rate(g("stream.collapses", 0), g("stream.events", 0))),
    ]


def render(path):
    meta, scalars, hists, stable = load(path)
    if meta:
        print(f"mode:   {meta.get('mode', '?')}")
        print(f"config: {meta.get('config', '?')}")
    width = max((len(n) for n in scalars), default=10)
    group = None
    for name, value in scalars.items():
        prefix = name.split(".", 1)[0]
        if prefix != group:
            group = prefix
            print(f"-- {group} --")
        tag = "" if stable.get(name, True) else "   (runtime)"
        print(f"  {name:<{width}} {value:>14}{tag}")
    for name, buckets in hists.items():
        tag = "" if stable.get(name, True) else "   (runtime)"
        print(f"-- hist {name}{tag} --")
        if not buckets:
            print("  (empty)")
        for b in sorted(buckets):
            lo = 0 if b == 0 else 1 << (b - 1)
            hi = (1 << b) - 1
            print(f"  [{lo}, {hi}] {buckets[b]:>12}")
    print("-- derived --")
    for label, value in derived(scalars):
        print(f"  {label:<28} {value}")
    return 0


def diff(old_path, new_path, threshold, strict):
    _, old, old_h, old_stable = load(old_path)
    _, new, new_h, new_stable = load(new_path)
    names = list(dict.fromkeys(list(old) + list(new)))
    width = max((len(n) for n in names), default=10)
    print(f"  {'metric':<{width}} {'old':>14} {'new':>14} "
          f"{'delta':>14} {'pct':>8}")
    regressions = []
    for name in names:
        o, n = old.get(name, 0), new.get(name, 0)
        d = n - o
        pct = f"{100.0 * d / o:+.1f}%" if o else ("-" if d == 0 else "new")
        mark = ""
        stable = old_stable.get(name, new_stable.get(name, True))
        if (threshold is not None and stable and o
                and abs(100.0 * d / o) > threshold):
            mark = "  <-- exceeds threshold"
            regressions.append(name)
        print(f"  {name:<{width}} {o:>14} {n:>14} {d:>+14} {pct:>8}{mark}")
    for name in dict.fromkeys(list(old_h) + list(new_h)):
        ob, nb = old_h.get(name, {}), new_h.get(name, {})
        if ob != nb:
            print(f"  hist {name}: buckets changed "
                  f"({sum(ob.values())} -> {sum(nb.values())} samples)")
    if regressions:
        print(f"metrics_report: {len(regressions)} metric(s) moved more "
              f"than {threshold}%: {', '.join(regressions)}",
              file=sys.stderr)
        if strict:
            return 1
    return 0


def main():
    ap = argparse.ArgumentParser(add_help=True, usage=__doc__)
    ap.add_argument("dumps", nargs="+")
    ap.add_argument("--threshold", type=float, default=None)
    ap.add_argument("--strict", action="store_true")
    args = ap.parse_args()
    if len(args.dumps) == 1:
        return render(args.dumps[0])
    if len(args.dumps) == 2:
        return diff(args.dumps[0], args.dumps[1], args.threshold,
                    args.strict)
    print("metrics_report: expected one dump (render) or two (diff)",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
