// sweep_main — CLI driver for the parallel scenario-sweep engine.
//
// Three modes share the pool, the digest discipline, and the result
// store:
//
//  * Safety (default): the cross-product of register semantics ×
//    algorithm × adversary × process count × fault plan × seed, every
//    recorded history validated with the appropriate checker.
//  * Termination (--term): the termination lab — algorithm family
//    (consensus, composed, coin, game) × adversary (scripted Theorem 6,
//    random, stalling) × process count × round budget × seed, recording
//    per-scenario termination statistics instead of only a verdict.
//  * Exploration (--explore): the exploration lab — instead of sampling
//    schedules it SEARCHES them: per (workload, instance seed) an
//    adaptive adversary (--strategy greedy|hill|random) spends
//    --search-budget runs maximizing rounds-to-decide (--objective
//    rounds, term families) or hunting checker violations (--objective
//    violation, register families).  Best schedules are recorded as
//    replayable traces, shrunk with delta debugging, and persisted via
//    --out; `--replay store.jsonl` re-runs persisted traces and verifies
//    they reproduce byte-identically.
//
// In every mode the aggregate summary's digest is a pure function of the
// flags: back-to-back runs with identical flags emit byte-identical
// digest sections regardless of --threads, and --out writes one
// canonical JSONL record per scenario/instance (also byte-identical
// across thread counts) for cross-commit diffing with
// tools/sweep_diff.py.
//
// Examples:
//   sweep_main --processes 3 --seeds 0:1000 --threads 8
//   sweep_main --algorithms alg2,abd --adversaries rand --seeds 0:50
//   sweep_main --algorithms abd --faults minority --seeds 0:200 --threads 8
//   sweep_main --term --families game --term-adversaries scripted
//       --processes 5 --seeds 0:100 --out term.jsonl
//   sweep_main --explore --objective rounds --families game
//       --strategy greedy --rounds 16 --search-budget 8 --seeds 0:4
//   sweep_main --explore --objective violation --algorithms abd
//       --ablate nowb --search-budget 200 --seeds 0:2 --out cex.jsonl
//   sweep_main --replay cex.jsonl
//
// Exit status: 0 when nothing failed (safety: no VIOLATION/ERROR —
// blocked runs are the fault axes doing their job; termination: no
// safety violation or error — capped runs are Theorem 6 doing its job;
// exploration: no instance errored — FINDING a violation is the
// objective, not a failure; replay: every persisted trace reproduced);
// 1 on failures; 2 on bad usage.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "explore/explore.hpp"
#include "obs/hooks.hpp"
#include "obs/metrics.hpp"
#include "sweep/store.hpp"
#include "sweep/sweep.hpp"
#include "term/term_sweep.hpp"

namespace {

using rlt::explore::ExploreOptions;
using rlt::sweep::AdversaryKind;
using rlt::sweep::Algorithm;
using rlt::sweep::SweepOptions;
using rlt::sweep::SweepSummary;
using rlt::term::TermSweepOptions;

[[noreturn]] void usage(int code) {
  std::cerr <<
      "usage: sweep_main [options]\n"
      "safety mode (default):\n"
      "  --algorithms LIST   comma list of modeled,alg2,alg4,abd "
      "(default: all)\n"
      "  --semantics LIST    comma list of atomic,lin,wsl — the register\n"
      "                      models swept for 'modeled' scenarios "
      "(default: all)\n"
      "  --adversaries LIST  comma list of rand,rr (default: both)\n"
      "  --faults LIST       comma list of none,minority,stall,lossy,dup,\n"
      "                      partition,majority,recovery (default: none).\n"
      "                      'minority' seeds strict-minority crash\n"
      "                      schedules into abd scenarios; 'stall' freezes\n"
      "                      a seeded strict minority of simulator-family\n"
      "                      processes after one step; 'lossy' drops each\n"
      "                      abd message with --drop-prob, 'dup' redelivers\n"
      "                      a seeded fraction, 'partition' cuts a seeded\n"
      "                      minority off and heals the cut (all three ride\n"
      "                      on abd retransmission and must end ok);\n"
      "                      'majority' crashes a quorum mid-broadcast\n"
      "                      (every run blocks), 'recovery' crashes a\n"
      "                      minority and restarts them from durable state.\n"
      "                      Runs stranded by a fault report the 'blocked'\n"
      "                      verdict\n"
      "  --crash-seeds A:B   fault-schedule seed range for faulty\n"
      "                      scenarios, A inclusive, B exclusive "
      "(default: 0:1)\n"
      "  --fault-seeds A:B   alias of --crash-seeds (the range seeds every\n"
      "                      fault kind's schedule, not just crashes)\n"
      "  --drop-prob P       per-message drop probability for 'lossy',\n"
      "                      0 < P <= 0.95 (default: 0.1); requires lossy\n"
      "                      in --faults\n"
      "  --writes N          writes per writer role (default: 2)\n"
      "  --online            replay every checkable history through the\n"
      "                      streaming online checker and report any\n"
      "                      batch/online verdict split as ERROR; when the\n"
      "                      checkers agree the records are byte-identical\n"
      "                      to an offline sweep (also valid with\n"
      "                      --explore --objective violation)\n"
      "termination mode:\n"
      "  --term              run the termination lab instead\n"
      "  --families LIST     comma list of consensus,composed,coin,game\n"
      "                      (default: all)\n"
      "  --term-adversaries LIST\n"
      "                      comma list of scripted,rand,stall (default:\n"
      "                      all; scripted pairs only with composed/game)\n"
      "  --rounds LIST       comma list of round budgets (default: 64)\n"
      "exploration mode:\n"
      "  --explore           run the schedule-search lab instead\n"
      "  --objective NAME    rounds (maximize rounds-to-decide, term\n"
      "                      families; reuses --families/--rounds) or\n"
      "                      violation (hunt checker violations, register\n"
      "                      families; reuses --algorithms/--writes)\n"
      "                      (default: rounds)\n"
      "  --strategy NAME     greedy, hill, or random (default: greedy)\n"
      "  --search-budget N   runs per search instance, >= 1 (default: 32)\n"
      "  --shrink-budget N   replays the counterexample shrinker may\n"
      "                      spend per instance; 0 disables shrinking\n"
      "                      (default: 4096)\n"
      "  --ablate KIND       plant a known bug for the search to find:\n"
      "                      'nowb' disables ABD's read write-back\n"
      "  --fault-menu        offer fault injections (drop, duplicate,\n"
      "                      crash, recover) as schedule-menu choices so\n"
      "                      the search hunts worst-case fault schedules\n"
      "                      (abd targets of --objective violation only)\n"
      "  --replay PATH       replay every explore record in a JSONL store\n"
      "                      and verify each reproduces byte-identically\n"
      "                      (standalone mode; exit 0 iff all match)\n"
      "common:\n"
      "  --processes LIST    comma list of process counts (default: 3;\n"
      "                      4 with --term and --explore --objective\n"
      "                      rounds)\n"
      "  --seeds A:B         seed range, A inclusive, B exclusive, A < B "
      "(default: 0:10)\n"
      "  --threads N         pool worker threads (default: 1)\n"
      "  --batch N           scenarios per pool task (default: 16; the\n"
      "                      digest does not depend on this)\n"
      "  --max-actions N     per-scenario action budget (default: 1000000,\n"
      "                      or 2000000 with --term)\n"
      "  --out PATH          write one canonical JSONL record per scenario\n"
      "                      (byte-identical across --threads; diff stores\n"
      "                      with tools/sweep_diff.py)\n"
      "  --shard I/N         run only shard I of N (0 <= I < N): the slice\n"
      "                      of the cross-product whose global enumeration\n"
      "                      index is congruent to I mod N.  Valid in every\n"
      "                      sweep mode; --out stores gain a shard header/\n"
      "                      trailer and per-record global indices, and\n"
      "                      running all N shards + --merge reproduces the\n"
      "                      unsharded store and digest byte-for-byte\n"
      "                      (tools/sweep_shard.py runs the whole fabric as\n"
      "                      one command)\n"
      "  --progress N        progress line every N scenarios (default: off)\n"
      "observability (valid in every run mode; never digest material —\n"
      "stores, digests, and summaries are byte-identical with or without\n"
      "these flags):\n"
      "  --metrics PATH      write the unified metrics registry (counters,\n"
      "                      gauges, histograms from every layer) as JSONL\n"
      "                      after the run; the \"stable\":true section is\n"
      "                      byte-identical across --threads/--batch\n"
      "                      (render/diff with tools/metrics_report.py)\n"
      "  --trace PATH        write one JSONL span per scenario in\n"
      "                      enumeration order: key, verdict fields, and\n"
      "                      per-scenario stable metric deltas;\n"
      "                      byte-identical across --threads/--batch\n"
      "  --trace-times       add wall-clock fields (wall_ns, check_ns, a\n"
      "                      closing sweep span) to --trace spans — opts\n"
      "                      out of byte-identity; needs --trace\n"
      "  --progress-fd N     stream machine-readable progress lines (one\n"
      "                      JSON object per line, final line has\n"
      "                      \"state\":\"done\") to open file descriptor N;\n"
      "                      tools/sweep_shard.py --progress consumes this\n"
      "  --heartbeat MS      human progress heartbeat to stderr every MS\n"
      "                      milliseconds\n"
      "  --forensics DIR     write one canonical-JSON forensics artifact\n"
      "                      per non-ok scenario into DIR (created if\n"
      "                      missing): scenario-<gi>.json with the full\n"
      "                      history, a re-verified minimal failure\n"
      "                      certificate on VIOLATION, the ABD quorum\n"
      "                      ledger on blocked runs, and the message\n"
      "                      timeline with happens-before edges; --explore\n"
      "                      --objective violation replays each shrunk\n"
      "                      witness into explore-<gi>.json.  Artifacts\n"
      "                      are byte-identical across --threads/--batch\n"
      "                      and across shards (gi filenames are disjoint,\n"
      "                      so all shards may share one DIR); convert\n"
      "                      with tools/trace_view.py for Perfetto\n"
      "  --list              print the scenario keys and exit\n"
      "merge mode:\n"
      "  --merge FILE...     validate and merge the named shard stores\n"
      "                      (written with --shard ... --out) back into the\n"
      "                      exact store + summary of the unsharded run.\n"
      "                      Standalone: only --out (the merged store path)\n"
      "                      may accompany it.  Exits 2 on a missing,\n"
      "                      duplicated, or inconsistent shard, naming the\n"
      "                      offender; otherwise exits like the equivalent\n"
      "                      sweep\n"
      "  --help              this text\n";
  std::exit(code);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

[[noreturn]] void bad_value(const std::string& flag, const std::string& v) {
  std::cerr << "sweep_main: bad value '" << v << "' for " << flag << "\n";
  usage(2);
}

std::uint64_t parse_u64(const std::string& flag, const std::string& v) {
  // Digits only: std::stoull would silently wrap "-1" to 2^64-1.
  if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
    bad_value(flag, v);
  }
  try {
    std::size_t pos = 0;
    const std::uint64_t x = std::stoull(v, &pos);
    if (pos != v.size()) bad_value(flag, v);
    return x;
  } catch (...) {
    bad_value(flag, v);
  }
}

void parse_algorithms(const std::string& v, SweepOptions& o) {
  o.algorithms.clear();
  for (const std::string& name : split_csv(v)) {
    if (name == "modeled") o.algorithms.push_back(Algorithm::kModeled);
    else if (name == "alg2") o.algorithms.push_back(Algorithm::kAlg2);
    else if (name == "alg4") o.algorithms.push_back(Algorithm::kAlg4);
    else if (name == "abd") o.algorithms.push_back(Algorithm::kAbd);
    else bad_value("--algorithms", name);
  }
  if (o.algorithms.empty()) bad_value("--algorithms", v);
}

void parse_semantics(const std::string& v, SweepOptions& o) {
  o.semantics.clear();
  for (const std::string& name : split_csv(v)) {
    if (name == "atomic") {
      o.semantics.push_back(rlt::sim::Semantics::kAtomic);
    } else if (name == "lin" || name == "linearizable") {
      o.semantics.push_back(rlt::sim::Semantics::kLinearizable);
    } else if (name == "wsl") {
      o.semantics.push_back(rlt::sim::Semantics::kWriteStrong);
    } else {
      bad_value("--semantics", name);
    }
  }
  if (o.semantics.empty()) bad_value("--semantics", v);
}

void parse_adversaries(const std::string& v, SweepOptions& o) {
  o.adversaries.clear();
  for (const std::string& name : split_csv(v)) {
    if (name == "rand" || name == "random") {
      o.adversaries.push_back(AdversaryKind::kRandom);
    } else if (name == "rr" || name == "roundrobin") {
      o.adversaries.push_back(AdversaryKind::kRoundRobin);
    } else {
      bad_value("--adversaries", name);
    }
  }
  if (o.adversaries.empty()) bad_value("--adversaries", v);
}

void parse_faults(const std::string& v, SweepOptions& o) {
  o.faults.clear();
  for (const std::string& name : split_csv(v)) {
    if (name == "none") {
      o.faults.push_back(rlt::sweep::FaultKind::kNone);
    } else if (name == "minority") {
      o.faults.push_back(rlt::sweep::FaultKind::kMinorityCrash);
    } else if (name == "stall") {
      o.faults.push_back(rlt::sweep::FaultKind::kStall);
    } else if (name == "lossy") {
      o.faults.push_back(rlt::sweep::FaultKind::kLossy);
    } else if (name == "dup" || name == "duplicate") {
      o.faults.push_back(rlt::sweep::FaultKind::kDuplicate);
    } else if (name == "partition") {
      o.faults.push_back(rlt::sweep::FaultKind::kPartition);
    } else if (name == "majority") {
      o.faults.push_back(rlt::sweep::FaultKind::kMajorityCrash);
    } else if (name == "recovery") {
      o.faults.push_back(rlt::sweep::FaultKind::kCrashRecovery);
    } else {
      bad_value("--faults", name);
    }
  }
  if (o.faults.empty()) bad_value("--faults", v);
}

void parse_drop_prob(const std::string& v, SweepOptions& o) {
  // A probability, not a permille: "0.1", not "100".  std::stod accepts
  // hex floats, inf, and trailing junk; reject anything but plain
  // digits-and-one-dot before converting.
  if (v.empty() ||
      v.find_first_not_of("0123456789.") != std::string::npos ||
      std::count(v.begin(), v.end(), '.') > 1) {
    bad_value("--drop-prob", v);
  }
  double p = 0.0;
  try {
    std::size_t pos = 0;
    p = std::stod(v, &pos);
    if (pos != v.size()) bad_value("--drop-prob", v);
  } catch (...) {
    bad_value("--drop-prob", v);
  }
  // > 0.95 would strand even retransmission-heavy runs in the action
  // budget more often than it tests anything; cap it like the tests do.
  const auto permille = static_cast<std::uint32_t>(p * 1000.0 + 0.5);
  if (p <= 0.0 || p > 0.95 || permille < 1 || permille > 950) {
    bad_value("--drop-prob", v);
  }
  o.drop_permille = permille;
}

void parse_families(const std::string& v, TermSweepOptions& o) {
  o.families.clear();
  for (const std::string& name : split_csv(v)) {
    if (name == "consensus") {
      o.families.push_back(rlt::term::Family::kConsensus);
    } else if (name == "composed") {
      o.families.push_back(rlt::term::Family::kComposed);
    } else if (name == "coin") {
      o.families.push_back(rlt::term::Family::kSharedCoin);
    } else if (name == "game") {
      o.families.push_back(rlt::term::Family::kGame);
    } else {
      bad_value("--families", name);
    }
  }
  if (o.families.empty()) bad_value("--families", v);
}

void parse_term_adversaries(const std::string& v, TermSweepOptions& o) {
  o.adversaries.clear();
  for (const std::string& name : split_csv(v)) {
    if (name == "scripted") {
      o.adversaries.push_back(rlt::term::TermAdversary::kScripted);
    } else if (name == "rand" || name == "random") {
      o.adversaries.push_back(rlt::term::TermAdversary::kRandom);
    } else if (name == "stall" || name == "stalling") {
      o.adversaries.push_back(rlt::term::TermAdversary::kStalling);
    } else {
      bad_value("--term-adversaries", name);
    }
  }
  if (o.adversaries.empty()) bad_value("--term-adversaries", v);
}

void parse_rounds(const std::string& v, TermSweepOptions& o) {
  o.round_budgets.clear();
  for (const std::string& item : split_csv(v)) {
    const std::uint64_t r = parse_u64("--rounds", item);
    if (r < 1 || r > 1'000'000) bad_value("--rounds", item);
    o.round_budgets.push_back(static_cast<int>(r));
  }
  if (o.round_budgets.empty()) bad_value("--rounds", v);
}

// `flag` is "--crash-seeds" or its alias "--fault-seeds"; errors name
// whichever spelling the caller actually typed.
void parse_crash_seeds(const std::string& flag, const std::string& v,
                       SweepOptions& o) {
  const std::size_t colon = v.find(':');
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  if (colon == std::string::npos) {
    begin = parse_u64(flag, v);
    if (begin == std::numeric_limits<std::uint64_t>::max()) {
      bad_value(flag, v);
    }
    end = begin + 1;
  } else {
    begin = parse_u64(flag, v.substr(0, colon));
    end = parse_u64(flag, v.substr(colon + 1));
    // Like --seeds: an empty or reversed range silently sweeps nothing
    // faulty; reject it as bad usage.
    if (end <= begin) bad_value(flag, v);
  }
  if (end - begin > 1'000'000) bad_value(flag, v);
  o.crash_seeds.clear();
  for (std::uint64_t cs = begin; cs < end; ++cs) o.crash_seeds.push_back(cs);
}

void parse_processes(const std::string& v, SweepOptions& o) {
  o.process_counts.clear();
  for (const std::string& item : split_csv(v)) {
    const std::uint64_t n = parse_u64("--processes", item);
    if (n < 1 || n > 16) bad_value("--processes", item);
    o.process_counts.push_back(static_cast<int>(n));
  }
  if (o.process_counts.empty()) bad_value("--processes", v);
}

void parse_objective(const std::string& v, ExploreOptions& o) {
  if (v == "rounds") o.objective = rlt::explore::Objective::kRounds;
  else if (v == "violation" || v == "viol") {
    o.objective = rlt::explore::Objective::kViolation;
  } else {
    bad_value("--objective", v);
  }
}

void parse_strategy(const std::string& v, ExploreOptions& o) {
  if (v == "greedy") o.strategy = rlt::explore::Strategy::kGreedy;
  else if (v == "hill" || v == "hillclimb") {
    o.strategy = rlt::explore::Strategy::kHillClimb;
  } else if (v == "random" || v == "rand") {
    o.strategy = rlt::explore::Strategy::kRandom;
  } else {
    bad_value("--strategy", v);
  }
}

void parse_ablate(const std::string& v, ExploreOptions& o) {
  // The one supported plant: ABD without the read write-back phase (the
  // ablation the sweep tests use), which breaks linearizability across
  // readers — a ground-truth target for the violation search.
  if (v == "nowb") o.abd_read_write_back = false;
  else bad_value("--ablate", v);
}

/// Replays every explore record in a store written with --out; exit 0
/// iff every persisted trace reproduces its recorded score and
/// fingerprint byte-identically.
int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "sweep_main: cannot open " << path << "\n";
    return 2;
  }
  std::string line;
  std::uint64_t replayed = 0;
  std::uint64_t matched = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Errored instances persist no meaningful trace; nothing to verify.
    if (line.find("\"found\":\"error\"") != std::string::npos) continue;
    std::string err;
    const auto pt = rlt::explore::parse_explore_record(line, &err);
    if (!pt) continue;  // other record kinds (safety/term) are fine
    ++replayed;
    const rlt::explore::ReplayReport rep =
        rlt::explore::replay_trace(pt->instance, pt->trace,
                                   pt->fallback_seed);
    const bool ok =
        rep.fingerprint == pt->fingerprint && rep.score == pt->best_score;
    if (ok) ++matched;
    std::cout << pt->instance.key() << ": "
              << (ok ? "reproduced" : "MISMATCH") << " (" << rep.verdict
              << ", score " << rep.score << ", fingerprint 0x" << std::hex
              << rep.fingerprint << std::dec << ", " << pt->trace.size()
              << " choices)\n";
  }
  if (replayed == 0) {
    std::cerr << "sweep_main: no explore records in " << path << "\n";
    return 2;
  }
  std::cout << "replayed " << replayed << ", reproduced " << matched << "\n";
  return matched == replayed ? 0 : 1;
}

void parse_seeds(const std::string& v, SweepOptions& o) {
  const std::size_t colon = v.find(':');
  if (colon == std::string::npos) {
    // Single value N means the one-seed range N:N+1 (reject UINT64_MAX:
    // N+1 would wrap to 0 and trip the reversed-range invariant).
    o.seed_begin = parse_u64("--seeds", v);
    if (o.seed_begin == std::numeric_limits<std::uint64_t>::max()) {
      bad_value("--seeds", v);
    }
    o.seed_end = o.seed_begin + 1;
    return;
  }
  o.seed_begin = parse_u64("--seeds", v.substr(0, colon));
  o.seed_end = parse_u64("--seeds", v.substr(colon + 1));
  // A ≥ B used to slip through when A == B: the sweep ran zero
  // scenarios, printed the digest of nothing, and exited 0 — trivially
  // "green".  An empty range is never what the caller meant; reject it.
  if (o.seed_end <= o.seed_begin) bad_value("--seeds", v);
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts;
  TermSweepOptions topts;
  ExploreOptions eopts;
  bool term_mode = false;
  bool explore_mode = false;
  bool list_only = false;
  bool merge_mode = false;
  std::uint64_t progress_every = 0;
  std::string out_path;
  std::string replay_path;
  std::string metrics_path;
  std::string trace_path;
  std::string forensics_dir;
  bool trace_times = false;
  int progress_fd = -1;
  std::uint64_t heartbeat_ms = 0;
  std::vector<std::string> merge_files;
  // Mode-specific flags are rejected in the other modes; collect what
  // was used, by category, so the check is order-independent.
  std::vector<std::string> safety_flags_used;   ///< safety mode only
  std::vector<std::string> algo_flags_used;     ///< safety or --explore viol
  std::vector<std::string> term_flags_used;     ///< --term only
  std::vector<std::string> family_flags_used;   ///< --term or --explore rounds
  std::vector<std::string> explore_flags_used;  ///< --explore only
  std::vector<std::string> obs_flags_used;      ///< run modes only
  bool processes_set = false;
  bool max_actions_set = false;
  bool batch_set = false;
  bool families_set = false;
  bool rounds_set = false;
  bool algorithms_set = false;
  bool ablate_set = false;
  bool drop_prob_set = false;
  bool fault_menu_set = false;
  bool threads_set = false;
  bool seeds_set = false;
  bool shard_set = false;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "sweep_main: " << a << " needs a value\n";
        usage(2);
      }
      return args[++i];
    };
    if (a == "--help" || a == "-h") usage(0);
    else if (a == "--list") list_only = true;
    else if (a == "--term") term_mode = true;
    else if (a == "--explore") explore_mode = true;
    else if (a == "--merge") merge_mode = true;
    else if (a == "--replay") replay_path = next();
    else if (a == "--out") out_path = next();
    else if (a == "--shard") {
      shard_set = true;
      const std::string v = next();
      const auto spec = rlt::sweep::parse_shard(v);
      if (!spec) bad_value("--shard", v);
      opts.shard = *spec;
    }
    else if (a == "--algorithms") {
      algo_flags_used.push_back(a);
      algorithms_set = true;
      parse_algorithms(next(), opts);
    } else if (a == "--semantics") {
      safety_flags_used.push_back(a);
      parse_semantics(next(), opts);
    } else if (a == "--adversaries") {
      safety_flags_used.push_back(a);
      parse_adversaries(next(), opts);
    } else if (a == "--faults") {
      safety_flags_used.push_back(a);
      parse_faults(next(), opts);
    } else if (a == "--crash-seeds" || a == "--fault-seeds") {
      safety_flags_used.push_back(a);
      parse_crash_seeds(a, next(), opts);
    } else if (a == "--drop-prob") {
      safety_flags_used.push_back(a);
      drop_prob_set = true;
      parse_drop_prob(next(), opts);
    } else if (a == "--families") {
      family_flags_used.push_back(a);
      families_set = true;
      parse_families(next(), topts);
    } else if (a == "--term-adversaries") {
      term_flags_used.push_back(a);
      parse_term_adversaries(next(), topts);
    } else if (a == "--rounds") {
      family_flags_used.push_back(a);
      rounds_set = true;
      parse_rounds(next(), topts);
    } else if (a == "--objective") {
      explore_flags_used.push_back(a);
      parse_objective(next(), eopts);
    } else if (a == "--strategy") {
      explore_flags_used.push_back(a);
      parse_strategy(next(), eopts);
    } else if (a == "--search-budget") {
      explore_flags_used.push_back(a);
      // Like --seeds: a zero budget would search nothing and report a
      // trivially green summary; reject it as bad usage.
      const std::uint64_t b = parse_u64("--search-budget", next());
      if (b < 1 || b > 1'000'000) bad_value("--search-budget", args[i]);
      eopts.search_budget = static_cast<int>(b);
    } else if (a == "--shrink-budget") {
      explore_flags_used.push_back(a);
      const std::uint64_t b = parse_u64("--shrink-budget", next());
      if (b > 1'000'000'000) bad_value("--shrink-budget", args[i]);
      eopts.shrink_budget = b;
    } else if (a == "--ablate") {
      explore_flags_used.push_back(a);
      ablate_set = true;
      parse_ablate(next(), eopts);
    } else if (a == "--fault-menu") {
      explore_flags_used.push_back(a);
      fault_menu_set = true;
      eopts.fault_menu = true;
    } else if (a == "--processes") {
      processes_set = true;
      parse_processes(next(), opts);
    } else if (a == "--seeds") {
      seeds_set = true;
      parse_seeds(next(), opts);
    } else if (a == "--writes") {
      // <= 99 keeps written_value()'s per-(role, index) encoding free of
      // cross-role collisions (values are 100*(role+1)+i).
      algo_flags_used.push_back(a);
      opts.writes_per_process =
          static_cast<int>(parse_u64("--writes", next()));
      if (opts.writes_per_process < 1 || opts.writes_per_process > 99) {
        bad_value("--writes", args[i]);
      }
    } else if (a == "--online") {
      // Safety sweeps and violation hunts record histories the streaming
      // checker can cross-check; --term and rounds objectives do not.
      algo_flags_used.push_back(a);
      opts.online = true;
      eopts.online = true;
    } else if (a == "--threads") {
      // Upper bound keeps a typo from asking the OS for an absurd number
      // of threads.
      threads_set = true;
      opts.threads = static_cast<int>(parse_u64("--threads", next()));
      if (opts.threads < 1 || opts.threads > 1024) {
        bad_value("--threads", args[i]);
      }
    } else if (a == "--batch") {
      batch_set = true;
      opts.batch_size = static_cast<int>(parse_u64("--batch", next()));
      if (opts.batch_size < 1 || opts.batch_size > 1'000'000) {
        bad_value("--batch", args[i]);
      }
    } else if (a == "--max-actions") {
      max_actions_set = true;
      opts.max_actions_per_scenario = parse_u64("--max-actions", next());
    } else if (a == "--progress") {
      progress_every = parse_u64("--progress", next());
    } else if (a == "--metrics") {
      obs_flags_used.push_back(a);
      metrics_path = next();
    } else if (a == "--trace") {
      obs_flags_used.push_back(a);
      trace_path = next();
    } else if (a == "--forensics") {
      // Forensics needs a recorded history to certify: safety sweeps and
      // violation hunts have one, --term and rounds objectives do not —
      // the algo-flag category enforces exactly that pairing, and the
      // obs category keeps it out of --merge/--replay/--list.
      obs_flags_used.push_back(a);
      algo_flags_used.push_back(a);
      forensics_dir = next();
      if (forensics_dir.empty()) bad_value("--forensics", forensics_dir);
    } else if (a == "--trace-times") {
      obs_flags_used.push_back(a);
      trace_times = true;
    } else if (a == "--progress-fd") {
      obs_flags_used.push_back(a);
      // Must be an fd the parent opened for us; 0-2 are the standard
      // streams and an obvious mistake.
      const std::uint64_t fd = parse_u64("--progress-fd", next());
      if (fd < 3 || fd > 1'048'575) bad_value("--progress-fd", args[i]);
      progress_fd = static_cast<int>(fd);
    } else if (a == "--heartbeat") {
      obs_flags_used.push_back(a);
      heartbeat_ms = parse_u64("--heartbeat", next());
      if (heartbeat_ms < 1 || heartbeat_ms > 3'600'000) {
        bad_value("--heartbeat", args[i]);
      }
    } else if (!a.empty() && a[0] != '-') {
      // Positional arguments are the shard stores of --merge; anywhere
      // else they are a typo.
      merge_files.push_back(a);
    } else {
      std::cerr << "sweep_main: unknown flag " << a << "\n";
      usage(2);
    }
  }

  if (merge_mode) {
    // Merge is standalone: it reads every config from the shard headers,
    // so sweep axes, modes, and execution knobs make no sense here.
    if (term_mode || explore_mode || list_only || !replay_path.empty() ||
        shard_set || !safety_flags_used.empty() || !algo_flags_used.empty() ||
        !term_flags_used.empty() || !family_flags_used.empty() ||
        !explore_flags_used.empty() || !obs_flags_used.empty() ||
        processes_set || max_actions_set ||
        batch_set || threads_set || seeds_set || progress_every > 0) {
      std::cerr << "sweep_main: --merge is standalone (only --out may "
                   "accompany it; every config comes from the shard "
                   "headers)\n";
      usage(2);
    }
    if (merge_files.empty()) {
      std::cerr << "sweep_main: --merge needs at least one shard store\n";
      usage(2);
    }
  } else if (!merge_files.empty()) {
    std::cerr << "sweep_main: unexpected positional argument '"
              << merge_files.front() << "' (shard stores go with --merge)\n";
    usage(2);
  }
  if (!replay_path.empty()) {
    if (term_mode || explore_mode || shard_set ||
        !safety_flags_used.empty() ||
        !algo_flags_used.empty() || !term_flags_used.empty() ||
        !family_flags_used.empty() || !explore_flags_used.empty() ||
        !obs_flags_used.empty()) {
      std::cerr << "sweep_main: --replay is standalone (it reads every "
                   "config from the store)\n";
      usage(2);
    }
    return run_replay(replay_path);
  }
  if (list_only && !obs_flags_used.empty()) {
    std::cerr << "sweep_main: " << obs_flags_used.front()
              << " has no effect with --list\n";
    usage(2);
  }
  if (trace_times && trace_path.empty()) {
    std::cerr << "sweep_main: --trace-times needs --trace\n";
    usage(2);
  }
  if (term_mode && explore_mode) {
    std::cerr << "sweep_main: --term and --explore are exclusive\n";
    usage(2);
  }
  if (!explore_mode && !explore_flags_used.empty()) {
    std::cerr << "sweep_main: " << explore_flags_used.front()
              << " needs --explore\n";
    usage(2);
  }
  if ((term_mode || explore_mode) && !safety_flags_used.empty()) {
    std::cerr << "sweep_main: " << safety_flags_used.front()
              << " is a safety-mode flag and has no effect with --term/"
                 "--explore\n";
    usage(2);
  }
  if (!term_mode &&
      !(explore_mode &&
        eopts.objective == rlt::explore::Objective::kRounds) &&
      !family_flags_used.empty()) {
    std::cerr << "sweep_main: " << family_flags_used.front()
              << " needs --term or --explore --objective rounds\n";
    usage(2);
  }
  if (!term_mode && !term_flags_used.empty()) {
    std::cerr << "sweep_main: " << term_flags_used.front()
              << " needs --term\n";
    usage(2);
  }
  if ((term_mode ||
       (explore_mode &&
        eopts.objective == rlt::explore::Objective::kRounds)) &&
      !algo_flags_used.empty()) {
    std::cerr << "sweep_main: " << algo_flags_used.front()
              << " applies to the safety sweep or --explore --objective "
                 "violation\n";
    usage(2);
  }
  if (ablate_set &&
      eopts.objective != rlt::explore::Objective::kViolation) {
    std::cerr << "sweep_main: --ablate needs --objective violation\n";
    usage(2);
  }
  if (fault_menu_set &&
      eopts.objective != rlt::explore::Objective::kViolation) {
    std::cerr << "sweep_main: --fault-menu needs --objective violation\n";
    usage(2);
  }
  if (!term_mode && !explore_mode) {
    // Pairing validation: a fault kind that applies to none of the swept
    // algorithms would be dropped silently by enumeration (plans_for);
    // the caller asked for a fault axis that cannot run, so reject it.
    for (const rlt::sweep::FaultKind f : opts.faults) {
      if (f == rlt::sweep::FaultKind::kNone) continue;
      const bool applies = std::any_of(
          opts.algorithms.begin(), opts.algorithms.end(),
          [f](Algorithm alg) { return rlt::sweep::fault_applies(f, alg); });
      if (!applies) {
        std::cerr << "sweep_main: --faults " << rlt::sweep::to_string(f)
                  << " applies to "
                  << (f == rlt::sweep::FaultKind::kStall
                          ? "none of the requested algorithms (stall needs "
                            "a simulator family: modeled, alg2, or alg4)"
                          : "abd only, which --algorithms excludes")
                  << "\n";
        usage(2);
      }
    }
    const bool lossy_swept =
        std::find(opts.faults.begin(), opts.faults.end(),
                  rlt::sweep::FaultKind::kLossy) != opts.faults.end();
    if (drop_prob_set && !lossy_swept) {
      std::cerr << "sweep_main: --drop-prob needs lossy in --faults\n";
      usage(2);
    }
  }
  // Shared flags land in `opts`; mirror them into the mode options.
  if (term_mode) {
    if (processes_set) topts.process_counts = opts.process_counts;
    if (max_actions_set) {
      topts.max_actions_per_scenario = opts.max_actions_per_scenario;
    }
    topts.seed_begin = opts.seed_begin;
    topts.seed_end = opts.seed_end;
    topts.threads = opts.threads;
    topts.batch_size = opts.batch_size;
    topts.shard = opts.shard;
  }
  if (explore_mode) {
    if (families_set) eopts.families = topts.families;
    if (rounds_set) eopts.round_budgets = topts.round_budgets;
    if (algorithms_set) eopts.algorithms = opts.algorithms;
    eopts.writes_per_process = opts.writes_per_process;
    eopts.process_counts =
        processes_set
            ? opts.process_counts
            : std::vector<int>{
                  eopts.objective == rlt::explore::Objective::kRounds ? 4
                                                                      : 3};
    if (max_actions_set) {
      eopts.max_actions_per_run = opts.max_actions_per_scenario;
    }
    eopts.seed_begin = opts.seed_begin;
    eopts.seed_end = opts.seed_end;
    eopts.threads = opts.threads;
    eopts.shard = opts.shard;
    // Search instances are heavy (budget × runs each); default to one
    // instance per pool task unless the caller asked otherwise.
    eopts.batch_size = batch_set ? opts.batch_size : 1;
  }

  try {
    if (merge_mode) {
      std::vector<rlt::sweep::ShardStore> stores;
      stores.reserve(merge_files.size());
      for (const std::string& path : merge_files) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
          std::cerr << "sweep_main: cannot open " << path << "\n";
          return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        stores.push_back(rlt::sweep::ShardStore{path, ss.str()});
      }
      // Validation failures (missing/duplicated shard, config mismatch,
      // digest mismatch, …) throw and land in the catch-all → exit 2.
      const rlt::sweep::MergeResult m =
          rlt::sweep::merge_shard_stores(stores);
      if (!out_path.empty()) {
        std::ofstream out(out_path, std::ios::binary);
        out << m.store;
        out.flush();
        if (!out.good()) {
          std::cerr << "sweep_main: cannot write " << out_path << "\n";
          return 2;
        }
      }
      // The reconstituted deterministic section — byte-identical to the
      // unsharded run's — then merge provenance, which is not.
      std::cout << m.stable_text;
      std::cout << "--- merge (not digest material) ---\n"
                << "kind " << m.kind << "\n"
                << "shards " << m.shards << "\n"
                << "records " << m.records << "\n";
      return m.failed ? 1 : 0;
    }
    if (list_only) {
      if (explore_mode) {
        for (const rlt::explore::ExploreInstance& e :
             rlt::explore::enumerate_explore_instances(eopts)) {
          std::cout << e.key() << "\n";
        }
      } else if (term_mode) {
        for (const rlt::term::TermScenario& s :
             rlt::term::enumerate_term_scenarios(topts)) {
          std::cout << s.key() << "\n";
        }
      } else {
        for (const rlt::sweep::Scenario& s :
             rlt::sweep::enumerate_scenarios(opts)) {
          std::cout << s.key() << "\n";
        }
      }
      return 0;
    }
    std::unique_ptr<rlt::sweep::JsonlFileSink> sink;
    if (!out_path.empty()) {
      sink = std::make_unique<rlt::sweep::JsonlFileSink>(out_path);
    }
    // Observability fabric (never digest material): a metrics dump
    // and/or trace spans force the registry on; progress needs no
    // registry at all.
    if (!metrics_path.empty() || !trace_path.empty()) {
      rlt::obs::set_enabled(true);
    }
    std::unique_ptr<rlt::sweep::JsonlFileSink> trace_sink;
    if (!trace_path.empty()) {
      trace_sink = std::make_unique<rlt::sweep::JsonlFileSink>(trace_path);
    }
    rlt::obs::Hooks hooks;
    hooks.trace = trace_sink.get();
    hooks.trace_times = trace_times;
    hooks.progress_fd = progress_fd;
    hooks.heartbeat_ms = heartbeat_ms;
    if (!forensics_dir.empty()) {
      std::filesystem::create_directories(forensics_dir);
      hooks.forensics_dir = forensics_dir;
      opts.forensics = true;   // capture in the runners...
      eopts.forensics = true;  // ...and in explore witness replays
    }
    const rlt::obs::Hooks* hooks_p =
        (hooks.trace || hooks.progress_on() || hooks.forensics_on())
            ? &hooks
            : nullptr;
    std::string stable;
    std::uint64_t elapsed_ns = 0;
    std::uint64_t wall_ns_total = 0;
    std::uint64_t wall_ns_max = 0;
    std::uint64_t steals = 0;
    bool failed = false;
    if (explore_mode) {
      const rlt::explore::ExploreSummary sum =
          rlt::explore::run_explore(eopts, progress_every, sink.get(),
                                    hooks_p);
      stable = sum.stable_text();
      elapsed_ns = sum.elapsed_ns;
      wall_ns_total = sum.wall_ns_total;
      wall_ns_max = 0;
      steals = sum.steals;
      // Finding a violation is the search succeeding at its job; only
      // machinery errors fail an exploration.
      failed = sum.errors != 0;
    } else if (term_mode) {
      const rlt::term::TermSummary sum =
          rlt::term::run_term_sweep(topts, progress_every, sink.get(),
                                    hooks_p);
      stable = sum.stable_text();
      elapsed_ns = sum.elapsed_ns;
      wall_ns_total = sum.wall_ns_total;
      wall_ns_max = sum.wall_ns_max;
      steals = sum.steals;
      // Capped runs are Theorem 6 doing its job; only broken safety or
      // machinery failures fail a termination sweep.
      failed = sum.safety_violations != 0 || sum.errors != 0;
    } else {
      const SweepSummary sum =
          rlt::sweep::run_sweep(opts, progress_every, sink.get(), hooks_p);
      stable = sum.stable_text();
      elapsed_ns = sum.elapsed_ns;
      wall_ns_total = sum.wall_ns_total;
      wall_ns_max = sum.wall_ns_max;
      steals = sum.steals;
      // Blocked runs are the fault axes doing their job (their histories
      // were still checked clean up to the block); only violations and
      // errors fail the sweep.
      failed = sum.violations != 0 || sum.errors != 0;
    }
    if (sink) sink->close();
    if (trace_sink) trace_sink->close();
    if (!metrics_path.empty()) {
      rlt::sweep::JsonlFileSink msink(metrics_path);
      const char* mode =
          explore_mode ? "explore" : (term_mode ? "term" : "safety");
      const std::string config = explore_mode
                                     ? rlt::explore::config_key(eopts)
                                     : (term_mode
                                            ? rlt::term::config_key(topts)
                                            : rlt::sweep::config_key(opts));
      rlt::obs::dump(rlt::obs::snapshot_all(), msink, mode, config);
      msink.close();
    }

    // Deterministic section first (byte-identical across runs), then
    // timing, which naturally varies.
    std::cout << stable;
    std::cout << "--- timing (not digest material) ---\n"
              << "elapsed_ms " << elapsed_ns / 1'000'000 << "\n"
              << "scenario_ms_total " << wall_ns_total / 1'000'000 << "\n"
              << "scenario_ms_max " << wall_ns_max / 1'000'000 << "\n"
              << "threads " << opts.threads << "\n"
              << "steals " << steals << "\n";
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    // Oversized cross-products, unwritable stores, and thread-spawn
    // failures land here.
    std::cerr << "sweep_main: " << e.what() << "\n";
    return 2;
  }
}
