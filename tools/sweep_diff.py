#!/usr/bin/env python3
"""Diff two sweep result stores (sweep_main --out JSONL files).

Usage:
    tools/sweep_diff.py OLD.jsonl NEW.jsonl [--max-print N]

Each store line is one canonical JSON record per scenario with a unique
"key" field (the scenario key).  Stores are byte-stable for fixed sweep
options, so diffing the store of the same sweep across two commits
answers "which scenarios changed behaviour?" — for safety sweeps that is
a verdict/steps/history-hash change, for termination sweeps a
termination/rounds/outcome-hash change.

Scenarios are classified as:
  * changed — same key in both stores, any field differs (the differing
    field names are listed);
  * added   — key only in NEW;
  * removed — key only in OLD.

Exit status: 0 when the stores are identical (zero differences),
1 when any scenario changed / was added / was removed, 2 on bad input
(unreadable file, malformed JSON, missing or duplicate keys).
"""

import argparse
import json
import sys


def load_store(path):
    """Returns {key: record} from a JSONL store; exits 2 on bad input."""
    records = {}
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    sys.exit(f"sweep_diff: {path}:{lineno}: malformed JSON "
                             f"({e})")
                key = rec.get("key")
                if not isinstance(key, str) or not key:
                    sys.exit(f"sweep_diff: {path}:{lineno}: record has no "
                             "'key' field")
                if key in records:
                    sys.exit(f"sweep_diff: {path}:{lineno}: duplicate key "
                             f"'{key}'")
                records[key] = rec
    except OSError as e:
        sys.exit(f"sweep_diff: cannot read {path}: {e}")
    return records


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--max-print", type=int, default=20, metavar="N",
                    help="print at most N scenarios per class "
                         "(default: 20; the counts are always complete)")
    args = ap.parse_args()

    old = load_store(args.old)
    new = load_store(args.new)

    removed = sorted(old.keys() - new.keys())
    added = sorted(new.keys() - old.keys())
    changed = []  # (key, [field, ...])
    unchanged = 0
    for key in sorted(old.keys() & new.keys()):
        a, b = old[key], new[key]
        fields = sorted(set(a) | set(b))
        diff_fields = [f for f in fields if a.get(f) != b.get(f)]
        if diff_fields:
            changed.append((key, diff_fields))
        else:
            unchanged += 1

    def clip(items):
        shown = items[:args.max_print]
        extra = len(items) - len(shown)
        return shown, extra

    shown, extra = clip(changed)
    for key, fields in shown:
        details = []
        for f in fields:
            details.append(f"{f}: {old[key].get(f)!r} -> {new[key].get(f)!r}")
        print(f"changed {key} ({'; '.join(details)})")
    if extra > 0:
        print(f"changed ... and {extra} more")
    shown, extra = clip(removed)
    for key in shown:
        print(f"removed {key}")
    if extra > 0:
        print(f"removed ... and {extra} more")
    shown, extra = clip(added)
    for key in shown:
        print(f"added {key}")
    if extra > 0:
        print(f"added ... and {extra} more")

    print(f"sweep_diff: {unchanged} unchanged, {len(changed)} changed, "
          f"{len(added)} added, {len(removed)} removed")
    return 1 if (changed or added or removed) else 0


if __name__ == "__main__":
    sys.exit(main())
