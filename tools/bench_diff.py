#!/usr/bin/env python3
"""Diff two BENCH_checker.json snapshots (tools/bench_baseline.sh output).

Usage:
    tools/bench_diff.py BASELINE.json NEW.json [--threshold 1.5] [--strict]

Prints a per-benchmark real_time comparison and flags regressions whose
new/old ratio exceeds --threshold.  Warn-only by default: exit status is
0 even with regressions (CI runner machine classes vary too much for a
hard gate); pass --strict to exit 1 when any regression is flagged.
Benchmarks present in only one snapshot are listed but never flagged.

Snapshots embed machine-class metadata (os/arch/cpus/compiler, written
by bench_baseline.sh) and each class has a deterministic slug
(machine_class(), e.g. linux-x86_64-c8-1a2b3c4d).  Timings are only
comparable within one machine class, so on a class mismatch the diff
first looks for a blessed per-class baseline — BENCH_<class>.json for
the NEW snapshot's class, in --baseline-dir (default: the named
baseline's directory) — and gates --strict against that instead.  Only
when no matching class baseline exists does it fall back to the old
behaviour: print the comparison, warn, and decline to hard-gate (a
strict gate across machine classes would fail on hardware or toolchain
differences, not code).

When running under GitHub Actions (GITHUB_ACTIONS=true), regressions are
also emitted as ::warning:: annotations so they surface on the run page.
"""

import argparse
import hashlib
import json
import os
import sys


def machine_class(machine):
    """Deterministic slug naming a machine class: readable os/arch/cpu
    prefix plus a short hash over the FULL canonical metadata (so a
    compiler bump is a new class even with identical hardware)."""
    if not machine:
        return "unknown"
    canon = json.dumps(machine, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canon.encode("utf-8")).hexdigest()[:8]
    osname = str(machine.get("os", "unknown")).lower() or "unknown"
    arch = str(machine.get("arch", "unknown")).lower() or "unknown"
    return f"{osname}-{arch}-c{machine.get('cpus', 0)}-{digest}"


def load_snapshot(path):
    """Returns ({bench_file/bench_name: real_time_ns}, machine_dict)."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for group, data in sorted(doc.get("benches", {}).items()):
        for b in data.get("benchmarks", []):
            # Aggregate rows (mean/median/stddev) would double-count.
            if b.get("run_type") == "aggregate":
                continue
            times[f"{group}/{b['name']}"] = float(b["real_time"])
    return times, doc.get("machine")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=1.5,
                    help="flag when new/old real_time exceeds this "
                         "(default: 1.5)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when regressions are flagged and the "
                         "snapshots share a machine class "
                         "(default: warn only)")
    ap.add_argument("--baseline-dir", default="",
                    help="where to look for per-class BENCH_<class>.json "
                         "baselines on a machine-class mismatch "
                         "(default: the named baseline's directory)")
    args = ap.parse_args()

    if not os.path.exists(args.baseline):
        # No blessed baseline on this branch/machine class yet: nothing
        # to compare against.  Stay warn-only rather than break CI.
        print(f"bench_diff: baseline '{args.baseline}' not found; "
              "skipping comparison", file=sys.stderr)
        return 1 if args.strict else 0

    old, old_machine = load_snapshot(args.baseline)
    new, new_machine = load_snapshot(args.new)
    gha = os.environ.get("GITHUB_ACTIONS") == "true"

    machines_known = old_machine is not None and new_machine is not None
    machines_match = machines_known and old_machine == new_machine
    if not machines_known:
        print("bench_diff: machine-class metadata missing from a snapshot "
              "(pre-metadata baseline?); timings may not be comparable",
              file=sys.stderr)
    elif not machines_match:
        # Prefer the blessed baseline for the NEW snapshot's class over
        # an apples-to-oranges comparison.
        base_dir = (args.baseline_dir
                    or os.path.dirname(args.baseline) or ".")
        alt = os.path.join(base_dir,
                           f"BENCH_{machine_class(new_machine)}.json")
        if (os.path.exists(alt)
                and os.path.abspath(alt)
                != os.path.abspath(args.baseline)):
            print(f"bench_diff: machine classes differ; comparing "
                  f"against the blessed class baseline {alt} instead",
                  file=sys.stderr)
            args.baseline = alt
            old, old_machine = load_snapshot(alt)
            machines_match = old_machine == new_machine
        if not machines_match:
            print("bench_diff: machine classes differ — timings are not "
                  f"directly comparable\n  baseline: {old_machine}\n"
                  f"  new:      {new_machine}", file=sys.stderr)

    regressions = []
    for name in sorted(old.keys() & new.keys()):
        ratio = new[name] / max(old[name], 1e-9)
        mark = ""
        if ratio > args.threshold:
            regressions.append((name, ratio))
            mark = f"  <-- REGRESSION (> {args.threshold:.2f}x)"
        print(f"{name}: {old[name]:.0f} -> {new[name]:.0f} ns "
              f"({ratio:.2f}x){mark}")
    for name in sorted(old.keys() - new.keys()):
        print(f"{name}: only in baseline")
    for name in sorted(new.keys() - old.keys()):
        print(f"{name}: only in new snapshot")

    if regressions:
        print(f"\nbench_diff: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.2f}x vs {args.baseline}", file=sys.stderr)
        if gha:
            for name, ratio in regressions:
                print(f"::warning title=bench regression::{name} is "
                      f"{ratio:.2f}x slower than the checked-in baseline")
        if args.strict and not machines_match:
            # A strict gate across machine classes would fail on hardware
            # or toolchain differences, not code; report but do not gate.
            print("bench_diff: --strict not enforced (machine classes "
                  "differ or are unknown)", file=sys.stderr)
            return 0
        return 1 if args.strict else 0
    print("\nbench_diff: no regressions beyond "
          f"{args.threshold:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
