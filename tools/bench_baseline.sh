#!/usr/bin/env bash
# Runs the checker/sweep perf benches and writes one merged JSON snapshot
# — the tracked bench baseline.  Intended use:
#
#   cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
#   cmake --build build-bench -j
#   tools/bench_baseline.sh build-bench
#
# Both arguments are optional (default: build/ and a per-machine-class
# name).  When OUT is omitted, the snapshot is blessed for THIS machine
# class: it is written as BENCH_<class>.json, where <class> is
# bench_diff.machine_class() over the snapshot's own machine metadata
# (e.g. BENCH_linux-x86_64-c8-1a2b3c4d.json).  bench_diff.py --strict
# picks exactly that file when its named baseline was blessed on a
# different class, so each class only hard-gates against its own
# blessing.  Pass OUT explicitly (e.g. BENCH_checker.json) to keep a
# fixed name.
# Each bench runs with --benchmark_format=json; the per-bench documents
# are merged under their bench name, plus a metadata header.  Compare two
# snapshots with e.g.:
#
#   python3 - old.json new.json <<'EOF'
#   import json, sys
#   old, new = (json.load(open(p)) for p in sys.argv[1:3])
#   for name in old["benches"]:
#       o = {b["name"]: b["real_time"] for b in old["benches"][name]["benchmarks"]}
#       n = {b["name"]: b["real_time"] for b in new["benches"][name]["benchmarks"]}
#       for k in sorted(o.keys() & n.keys()):
#           print(f"{k}: {o[k]:.0f} -> {n[k]:.0f} ns ({o[k]/max(n[k],1e-9):.2f}x)")
#   EOF
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-}"  # empty: derive BENCH_<class>.json from machine metadata
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
BENCHES=(perf_wsl perf_sweep perf_checker perf_term perf_explore perf_stream
         perf_obs)

if [[ ! -d "${BUILD_DIR}" ]]; then
  echo "bench_baseline: build dir '${BUILD_DIR}' not found" >&2
  exit 2
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

ran=()
for bench in "${BENCHES[@]}"; do
  bin="${BUILD_DIR}/bench/bench_${bench}"
  if [[ ! -x "${bin}" ]]; then
    # Google Benchmark not installed: CMake skipped these targets.
    echo "bench_baseline: skipping ${bench} (missing ${bin})" >&2
    continue
  fi
  echo "bench_baseline: running ${bench}..." >&2
  "${bin}" --benchmark_format=json \
           --benchmark_out="${tmpdir}/${bench}.json" \
           --benchmark_out_format=json > /dev/null
  ran+=("${bench}")
done

if [[ "${#ran[@]}" -eq 0 ]]; then
  echo "bench_baseline: no benches available; nothing written" >&2
  exit 1
fi

python3 - "${OUT}" "${tmpdir}" "${BUILD_DIR}" "${SCRIPT_DIR}" \
    "${ran[@]}" <<'EOF'
import json, os, platform, subprocess, sys

out, tmpdir, build_dir, script_dir = sys.argv[1:5]
benches = sys.argv[5:]
sys.path.insert(0, script_dir)
from bench_diff import machine_class  # single source of class naming

def run(cmd):
    try:
        return subprocess.run(cmd, capture_output=True, text=True,
                              check=False).stdout.strip()
    except OSError:
        return ""

commit = run(["git", "rev-parse", "--short", "HEAD"])

# Machine-class metadata: bench timings are only comparable within one
# class, so snapshots carry enough to tell classes apart.  The compiler
# is read from the build's CMake cache (falling back to `c++`), since a
# compiler change moves timings as much as a hardware change.
compiler_path = "c++"
try:
    with open(os.path.join(build_dir, "CMakeCache.txt")) as f:
        for line in f:
            if line.startswith("CMAKE_CXX_COMPILER:"):
                compiler_path = line.split("=", 1)[1].strip()
                break
except OSError:
    pass
compiler = run([compiler_path, "--version"]).splitlines()
machine = {
    "os": platform.system(),
    "arch": platform.machine(),
    "cpus": os.cpu_count() or 0,
    "compiler": compiler[0] if compiler else "unknown",
}

cls = machine_class(machine)
if not out:
    out = f"BENCH_{cls}.json"
doc = {"commit": commit, "machine": machine, "machine_class": cls,
       "benches": {}}
for name in benches:
    with open(f"{tmpdir}/{name}.json") as f:
        doc["benches"][name] = json.load(f)
with open(out, "w") as f:
    json.dump(doc, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"bench_baseline: wrote {out} ({len(benches)} benches, "
      f"class {cls})")
EOF
