// Tests for Algorithm 1 and its adversaries — the paper's Theorem 6 /
// Theorem 7 / Corollary 8 separation, plus the Appendix B bounded
// variant and the Lemma 15-18 runtime invariants.
#include <gtest/gtest.h>

#include "checker/lin_checker.hpp"
#include "game/game_runner.hpp"
#include "util/assert.hpp"

namespace rlt::game {
namespace {

GameConfig config(int n, int max_rounds, bool bounded = false) {
  GameConfig cfg;
  cfg.n = n;
  cfg.max_rounds = max_rounds;
  cfg.bounded = bounded;
  cfg.check_invariants = true;  // Lemmas 15-18 assert in every run
  return cfg;
}

// ---------- Theorem 6: linearizable registers, no termination ----------

TEST(Theorem6, AdversaryPreventsTerminationForever) {
  // The scripted adversary drives every process through `max_rounds`
  // full rounds — nobody ever exits, whatever the coin flips were.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const GameRunResult r = run_scripted_game(
        config(5, 40), sim::Semantics::kLinearizable,
        CommitStrategy::kRandomOrder, seed);
    ASSERT_FALSE(r.terminated) << "seed " << seed;
    ASSERT_EQ(r.rounds_reached, 40) << "seed " << seed;
  }
}

TEST(Theorem6, WorksForVariousProcessCounts) {
  for (const int n : {3, 4, 6, 9}) {
    const GameRunResult r =
        run_scripted_game(config(n, 15), sim::Semantics::kLinearizable,
                          CommitStrategy::kHostZeroFirst, 7);
    EXPECT_FALSE(r.terminated) << "n=" << n;
    EXPECT_EQ(r.rounds_reached, 15) << "n=" << n;
  }
}

TEST(Theorem6, CoinOutcomesAreIrrelevantToSurvival) {
  // Both coin outcomes occur across rounds, yet every round survives —
  // the adversary adapts the linearization after seeing the coin.
  const GameRunResult r = run_scripted_game(
      config(4, 60), sim::Semantics::kLinearizable,
      CommitStrategy::kRandomOrder, 3);
  ASSERT_FALSE(r.terminated);
  int zeros = 0;
  int ones = 0;
  for (int j = 1; j <= 60; ++j) {
    if (r.coins[static_cast<std::size_t>(j)] == 0) ++zeros;
    if (r.coins[static_cast<std::size_t>(j)] == 1) ++ones;
  }
  EXPECT_GT(zeros, 5);
  EXPECT_GT(ones, 5);
}

TEST(Theorem6, BoundedVariantBehavesIdentically) {
  // Appendix B: R1 carries only 0/1/⊥ — same non-termination.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const GameRunResult r = run_scripted_game(
        config(5, 25, /*bounded=*/true), sim::Semantics::kLinearizable,
        CommitStrategy::kRandomOrder, seed);
    ASSERT_FALSE(r.terminated) << "seed " << seed;
    ASSERT_EQ(r.rounds_reached, 25) << "seed " << seed;
  }
}

// ---------- Theorem 7: WSL registers, termination w.p. 1 ----------

TEST(Theorem7, WslRegistersForceTermination) {
  for (const CommitStrategy strat :
       {CommitStrategy::kHostZeroFirst, CommitStrategy::kHostOneFirst,
        CommitStrategy::kRandomOrder, CommitStrategy::kAlternate}) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      const GameRunResult r = run_scripted_game(
          config(5, 200), sim::Semantics::kWriteStrong, strat, seed);
      ASSERT_TRUE(r.terminated)
          << to_string(strat) << " seed " << seed;
      ASSERT_GT(r.termination_round, 0);
    }
  }
}

TEST(Theorem7, TerminationRoundsAreGeometricallyBounded) {
  // Lemma 19: each round dies with probability >= 1/2, so the mean
  // termination round is <= 2 and P(round > 10) is negligible.
  const TerminationDistribution dist = measure_termination_rounds(
      config(5, 400), sim::Semantics::kWriteStrong,
      CommitStrategy::kRandomOrder, 1000, 300);
  EXPECT_EQ(dist.capped_runs, 0);
  EXPECT_GT(dist.mean_round, 1.0);
  EXPECT_LT(dist.mean_round, 3.5);  // generous slack around E[X]=2
  // Survival beyond k rounds should decay roughly like 2^-k.
  ASSERT_GT(dist.survival.size(), 1u);
  if (dist.survival.size() > 6) {
    EXPECT_LT(dist.survival[6], 0.15);
  }
}

TEST(Theorem7, BoundedVariantTerminatesToo) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const GameRunResult r = run_scripted_game(
        config(5, 200, /*bounded=*/true), sim::Semantics::kWriteStrong,
        CommitStrategy::kRandomOrder, seed);
    ASSERT_TRUE(r.terminated) << "seed " << seed;
  }
}

TEST(Theorem7, FixedStrategiesDieWhenCoinMismatches) {
  // With kHostZeroFirst the game dies exactly at the first round whose
  // coin is 1 (the adversary committed [0,j] first, coin said to need
  // [1,j] first).
  const GameRunResult r = run_scripted_game(
      config(4, 300), sim::Semantics::kWriteStrong,
      CommitStrategy::kHostZeroFirst, 11);
  ASSERT_TRUE(r.terminated);
  for (int j = 1; j < r.termination_round; ++j) {
    EXPECT_EQ(r.coins[static_cast<std::size_t>(j)], 0) << "round " << j;
  }
  EXPECT_EQ(r.coins[static_cast<std::size_t>(r.termination_round)], 1);
}

// ---------- Atomic registers ----------

TEST(AtomicGame, TerminatesUnderRandomSchedules) {
  int terminated = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const GameRunResult r =
        run_random_game(config(4, 500), sim::Semantics::kAtomic, seed);
    if (r.terminated) ++terminated;
  }
  // Random schedules make survival of even one round unlikely.
  EXPECT_GE(terminated, 18);
}

TEST(RandomAdversary, GameTerminatesEvenWithLinearizableRegisters) {
  // A *random* adversary is not the clever Theorem 6 adversary: the
  // game almost surely dies quickly (the separation needs adversarial
  // scheduling, not just weak registers).
  int terminated = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const GameRunResult r = run_random_game(
        config(4, 300), sim::Semantics::kLinearizable, seed);
    if (r.terminated) ++terminated;
  }
  EXPECT_GE(terminated, 8);
}

// ---------- Recorded histories stay linearizable ----------

TEST(GameHistories, PerRegisterHistoriesAreLinearizable) {
  // Short scripted run; every register's recorded history must satisfy
  // Definition 2 (the models enforce it on-line; re-check off-line).
  GameConfig cfg = config(4, 2);
  sim::Scheduler sched(5);
  GameState state(cfg);
  setup_game(sched, sim::Semantics::kLinearizable, state);
  GameScriptAdversary adversary(cfg, CommitStrategy::kRandomOrder, 5);
  sched.run(adversary, 100000);
  const auto result = checker::check_linearizable(sched.global_history());
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(GameHistories, LemmaInvariantsHoldAcrossSemantics) {
  // Lemmas 15-18 are asserted inside the game bodies; a violation would
  // throw. Exercise all semantics and several seeds.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_NO_THROW((void)run_random_game(config(5, 100),
                                          sim::Semantics::kAtomic, seed));
    EXPECT_NO_THROW((void)run_random_game(
        config(5, 50), sim::Semantics::kLinearizable, seed));
    EXPECT_NO_THROW((void)run_scripted_game(config(5, 50),
                                            sim::Semantics::kWriteStrong,
                                            CommitStrategy::kRandomOrder,
                                            seed));
  }
}

TEST(GameConfigChecks, RejectsTooFewProcesses) {
  sim::Scheduler sched(1);
  GameState state(config(2, 5));
  EXPECT_THROW(setup_game(sched, sim::Semantics::kAtomic, state),
               util::InvariantViolation);
}

}  // namespace
}  // namespace rlt::game
