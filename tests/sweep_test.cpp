// Tests for the parallel scenario-sweep engine (src/sweep/): the
// work-stealing pool, single-scenario determinism, and the sweep-level
// digest guarantees (same options => byte-identical summary, regardless
// of thread count).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sweep/pool.hpp"
#include "sweep/scenario.hpp"
#include "sweep/sweep.hpp"

namespace rlt::sweep {
namespace {

// ---------- work-stealing pool ----------

TEST(Pool, RunsEveryTask) {
  WorkStealingPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(Pool, TasksMaySubmitTasks) {
  WorkStealingPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &count] {
      count.fetch_add(1);
      for (int j = 0; j < 4; ++j) {
        pool.submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(Pool, WaitIdleIsReusable) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(Pool, SingleThreadPoolStillCompletes) {
  WorkStealingPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.steals(), 0u);  // nobody to steal from
}

TEST(Pool, StealsWhenAWorkerIsBusy) {
  // Occupy worker 0 with a task that spins until four later tasks have
  // run, then submit those four: round-robin places T1,T3 on worker 1
  // and T2,T4 on (busy) worker 0, so worker 1 can only finish the batch
  // — and release worker 0 — by stealing T2 and T4 from worker 0's queue.
  WorkStealingPool pool(2);
  std::atomic<bool> t0_running{false};
  std::atomic<int> others_done{0};
  pool.submit([&t0_running, &others_done] {  // T0 -> worker 0
    t0_running.store(true);
    while (others_done.load() < 4) std::this_thread::yield();
  });
  while (!t0_running.load()) std::this_thread::yield();
  for (int i = 0; i < 4; ++i) {  // T1..T4
    pool.submit([&others_done] { others_done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(others_done.load(), 4);
  EXPECT_GE(pool.steals(), 2u);
}

TEST(Pool, TaskExceptionSurfacesInWaitIdle) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(count.load(), 10);  // the throwing task killed nothing else
  // The exception was consumed; the pool remains usable.
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 11);
}

// ---------- scenario enumeration ----------

TEST(Enumerate, CrossProductSizeAndOrderAreStable) {
  SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 3;
  o.process_counts = {2, 3};
  // modeled contributes |semantics| configs; alg2/alg4/abd one each:
  // (3 + 3) * |adversaries|=2 * |process_counts|=2 * seeds=3.
  const std::vector<Scenario> all = enumerate_scenarios(o);
  EXPECT_EQ(all.size(), (3u + 3u) * 2u * 2u * 3u);
  // Seeds are the outermost axis (consecutive tasks differ in config).
  EXPECT_EQ(all.front().seed, 0u);
  EXPECT_EQ(all.back().seed, 2u);
  // Keys are unique.
  std::set<std::string> keys;
  for (const Scenario& s : all) keys.insert(s.key());
  EXPECT_EQ(keys.size(), all.size());
}

// ---------- single-scenario determinism ----------

TEST(Scenario, RerunIsBitIdentical) {
  for (const Algorithm alg : {Algorithm::kModeled, Algorithm::kAlg2,
                              Algorithm::kAlg4, Algorithm::kAbd}) {
    Scenario s;
    s.algorithm = alg;
    s.semantics = sim::Semantics::kLinearizable;
    s.adversary = AdversaryKind::kRandom;
    s.processes = 3;
    s.seed = 12345;
    const ScenarioResult a = run_scenario(s);
    const ScenarioResult b = run_scenario(s);
    EXPECT_EQ(a.verdict, Verdict::kOk) << s.key() << ": " << a.detail;
    EXPECT_EQ(a.verdict, b.verdict) << s.key();
    EXPECT_EQ(a.steps, b.steps) << s.key();
    EXPECT_EQ(a.ops, b.ops) << s.key();
    EXPECT_EQ(a.history_hash, b.history_hash) << s.key();
  }
}

TEST(Scenario, DifferentSeedsReachDifferentHistories) {
  // Not guaranteed for every pair, but across 20 seeds the random
  // adversary must produce more than one distinct interleaving.
  std::set<std::uint64_t> hashes;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Scenario s;
    s.algorithm = Algorithm::kModeled;
    s.semantics = sim::Semantics::kLinearizable;
    s.adversary = AdversaryKind::kRandom;
    s.processes = 3;
    s.seed = seed;
    const ScenarioResult r = run_scenario(s);
    ASSERT_EQ(r.verdict, Verdict::kOk) << r.detail;
    hashes.insert(r.history_hash);
  }
  EXPECT_GT(hashes.size(), 1u);
}

TEST(Scenario, InvalidConfigIsAnErrorNotACrash) {
  // run_scenario's contract: never throws, bad configs become kError —
  // including ones only a programmatic caller (not the CLI) can build.
  for (const Algorithm alg : {Algorithm::kModeled, Algorithm::kAlg2,
                              Algorithm::kAlg4, Algorithm::kAbd}) {
    Scenario s;
    s.algorithm = alg;
    s.processes = 0;
    const ScenarioResult r = run_scenario(s);
    EXPECT_EQ(r.verdict, Verdict::kError) << to_string(alg);
    EXPECT_FALSE(r.detail.empty()) << to_string(alg);
  }
}

TEST(Scenario, ExhaustedBudgetIsAnErrorNotACrash) {
  Scenario s;
  s.algorithm = Algorithm::kAlg2;
  s.processes = 3;
  s.seed = 1;
  s.max_actions = 3;  // far too small to finish
  const ScenarioResult r = run_scenario(s);
  EXPECT_EQ(r.verdict, Verdict::kError);
  EXPECT_FALSE(r.detail.empty());
}

// ---------- sweep smoke + digest determinism ----------

SweepOptions small_sweep(int threads) {
  SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 6;
  o.process_counts = {2, 3};
  o.threads = threads;
  return o;
}

TEST(Sweep, SmokeAllScenariosPassOnFourThreads) {
  const SweepSummary sum = run_sweep(small_sweep(4));
  EXPECT_EQ(sum.scenarios, (3u + 3u) * 2u * 2u * 6u);
  EXPECT_EQ(sum.ok, sum.scenarios)
      << (sum.failures.empty() ? "" : sum.failures.front());
  EXPECT_EQ(sum.violations, 0u);
  EXPECT_EQ(sum.errors, 0u);
  EXPECT_GT(sum.total_steps, 0u);
  EXPECT_GT(sum.total_ops, 0u);
}

TEST(Sweep, BackToBackRunsEmitIdenticalDigests) {
  const SweepSummary a = run_sweep(small_sweep(4));
  const SweepSummary b = run_sweep(small_sweep(4));
  EXPECT_EQ(a.digest, b.digest);
  // Byte-identical deterministic summary section, not just the digest.
  EXPECT_EQ(a.stable_text(), b.stable_text());
}

TEST(Sweep, DigestIsIndependentOfThreadCount) {
  const SweepSummary seq = run_sweep(small_sweep(1));
  const SweepSummary par = run_sweep(small_sweep(4));
  EXPECT_EQ(seq.stable_text(), par.stable_text());
}

TEST(Sweep, DigestDependsOnTheSeedRange) {
  SweepOptions a = small_sweep(2);
  SweepOptions b = small_sweep(2);
  b.seed_begin = 6;
  b.seed_end = 12;
  EXPECT_NE(run_sweep(a).digest, run_sweep(b).digest);
}

TEST(Sweep, DigestIsIndependentOfBatchSize) {
  // Batching seeds per pool task is a submit-overhead knob only: the
  // whole deterministic section must be byte-identical at every batch
  // size, including the degenerate one-scenario-per-task shape.
  SweepOptions one = small_sweep(4);
  one.batch_size = 1;
  SweepOptions sixteen = small_sweep(4);
  sixteen.batch_size = 16;
  SweepOptions huge = small_sweep(4);
  huge.batch_size = 1'000'000;  // single task carries the whole sweep
  const std::string a = run_sweep(one).stable_text();
  EXPECT_EQ(a, run_sweep(sixteen).stable_text());
  EXPECT_EQ(a, run_sweep(huge).stable_text());
}

TEST(Sweep, DigestMatchesThePr1Baseline) {
  // Pinned regression digest, recorded from the PR 1 checker/engine on
  // this exact configuration (sweep_main --processes 3 --seeds 0:50
  // --threads 4).  A change here means scenario BEHAVIOUR changed — a
  // simulator, register-algorithm, or checker semantic difference — not
  // just a performance difference; bump it only with an explanation.
  SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 50;
  o.process_counts = {3};
  o.threads = 4;
  const SweepSummary sum = run_sweep(o);
  EXPECT_EQ(sum.scenarios, 600u);
  EXPECT_EQ(sum.ok, 600u);
  EXPECT_EQ(sum.digest, 0x74043e05615bfe8fULL);
}

}  // namespace
}  // namespace rlt::sweep
