// Tests for the parallel scenario-sweep engine (src/sweep/): the
// work-stealing pool, single-scenario determinism, the crash and stall
// fault axes and their verdict taxonomy (blocked vs violation vs
// error), and the sweep-level digest guarantees (same options =>
// byte-identical summary, regardless of thread count — with or without
// faults).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mp/abd.hpp"
#include "mp/network.hpp"
#include "sweep/pool.hpp"
#include "sweep/scenario.hpp"
#include "sweep/sweep.hpp"
#include "util/rng.hpp"

namespace rlt::sweep {
namespace {

// ---------- work-stealing pool ----------

TEST(Pool, RunsEveryTask) {
  WorkStealingPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(Pool, TasksMaySubmitTasks) {
  WorkStealingPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &count] {
      count.fetch_add(1);
      for (int j = 0; j < 4; ++j) {
        pool.submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(Pool, WaitIdleIsReusable) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(Pool, SingleThreadPoolStillCompletes) {
  WorkStealingPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.steals(), 0u);  // nobody to steal from
}

TEST(Pool, StealsWhenAWorkerIsBusy) {
  // Occupy worker 0 with a task that spins until four later tasks have
  // run, then submit those four: round-robin places T1,T3 on worker 1
  // and T2,T4 on (busy) worker 0, so worker 1 can only finish the batch
  // — and release worker 0 — by stealing T2 and T4 from worker 0's queue.
  WorkStealingPool pool(2);
  std::atomic<bool> t0_running{false};
  std::atomic<int> others_done{0};
  pool.submit([&t0_running, &others_done] {  // T0 -> worker 0
    t0_running.store(true);
    while (others_done.load() < 4) std::this_thread::yield();
  });
  while (!t0_running.load()) std::this_thread::yield();
  for (int i = 0; i < 4; ++i) {  // T1..T4
    pool.submit([&others_done] { others_done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(others_done.load(), 4);
  EXPECT_GE(pool.steals(), 2u);
}

TEST(Pool, TaskExceptionSurfacesInWaitIdle) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(count.load(), 10);  // the throwing task killed nothing else
  // The exception was consumed; the pool remains usable.
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 11);
}

// ---------- scenario enumeration ----------

TEST(Enumerate, CrossProductSizeAndOrderAreStable) {
  SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 3;
  o.process_counts = {2, 3};
  // modeled contributes |semantics| configs; alg2/alg4/abd one each:
  // (3 + 3) * |adversaries|=2 * |process_counts|=2 * seeds=3.
  const std::vector<Scenario> all = enumerate_scenarios(o);
  EXPECT_EQ(all.size(), (3u + 3u) * 2u * 2u * 3u);
  // Seeds are the outermost axis (consecutive tasks differ in config).
  EXPECT_EQ(all.front().seed, 0u);
  EXPECT_EQ(all.back().seed, 2u);
  // Keys are unique.
  std::set<std::string> keys;
  for (const Scenario& s : all) keys.insert(s.key());
  EXPECT_EQ(keys.size(), all.size());
}

// ---------- single-scenario determinism ----------

TEST(Scenario, RerunIsBitIdentical) {
  for (const Algorithm alg : {Algorithm::kModeled, Algorithm::kAlg2,
                              Algorithm::kAlg4, Algorithm::kAbd}) {
    Scenario s;
    s.algorithm = alg;
    s.semantics = sim::Semantics::kLinearizable;
    s.adversary = AdversaryKind::kRandom;
    s.processes = 3;
    s.seed = 12345;
    const ScenarioResult a = run_scenario(s);
    const ScenarioResult b = run_scenario(s);
    EXPECT_EQ(a.verdict, Verdict::kOk) << s.key() << ": " << a.detail;
    EXPECT_EQ(a.verdict, b.verdict) << s.key();
    EXPECT_EQ(a.steps, b.steps) << s.key();
    EXPECT_EQ(a.ops, b.ops) << s.key();
    EXPECT_EQ(a.history_hash, b.history_hash) << s.key();
  }
}

TEST(Scenario, DifferentSeedsReachDifferentHistories) {
  // Not guaranteed for every pair, but across 20 seeds the random
  // adversary must produce more than one distinct interleaving.
  std::set<std::uint64_t> hashes;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Scenario s;
    s.algorithm = Algorithm::kModeled;
    s.semantics = sim::Semantics::kLinearizable;
    s.adversary = AdversaryKind::kRandom;
    s.processes = 3;
    s.seed = seed;
    const ScenarioResult r = run_scenario(s);
    ASSERT_EQ(r.verdict, Verdict::kOk) << r.detail;
    hashes.insert(r.history_hash);
  }
  EXPECT_GT(hashes.size(), 1u);
}

TEST(Scenario, InvalidConfigIsAnErrorNotACrash) {
  // run_scenario's contract: never throws, bad configs become kError —
  // including ones only a programmatic caller (not the CLI) can build.
  for (const Algorithm alg : {Algorithm::kModeled, Algorithm::kAlg2,
                              Algorithm::kAlg4, Algorithm::kAbd}) {
    Scenario s;
    s.algorithm = alg;
    s.processes = 0;
    const ScenarioResult r = run_scenario(s);
    EXPECT_EQ(r.verdict, Verdict::kError) << to_string(alg);
    EXPECT_FALSE(r.detail.empty()) << to_string(alg);
  }
}

TEST(Scenario, ExhaustedBudgetIsAnErrorNotACrash) {
  Scenario s;
  s.algorithm = Algorithm::kAlg2;
  s.processes = 3;
  s.seed = 1;
  s.max_actions = 3;  // far too small to finish
  const ScenarioResult r = run_scenario(s);
  EXPECT_EQ(r.verdict, Verdict::kError);
  EXPECT_FALSE(r.detail.empty());
}

// ---------- crash-fault axis ----------

Scenario abd_scenario(std::uint64_t seed) {
  Scenario s;
  s.algorithm = Algorithm::kAbd;
  s.adversary = AdversaryKind::kRandom;
  s.processes = 3;
  s.seed = seed;
  return s;
}

TEST(Scenario, CrashFreeKeysKeepTheirHistoricalSpelling) {
  // The fault axis and the ablation knob must be invisible when
  // defaulted: pinned pre-fault-axis digests fold these exact keys.
  Scenario s = abd_scenario(0);
  EXPECT_EQ(s.key(), "abd/rand/p3/w2/seed0");
  s.faults = FaultPlan{FaultKind::kMinorityCrash, 7};
  EXPECT_EQ(s.key(), "abd/rand/p3/w2/fminority-c7/seed0");
  s.abd_read_write_back = false;
  EXPECT_EQ(s.key(), "abd/rand/p3/w2/nowb/fminority-c7/seed0");
  Scenario st;
  st.algorithm = Algorithm::kAlg2;
  st.processes = 5;
  st.seed = 42;
  st.faults = FaultPlan{FaultKind::kStall, 3};
  EXPECT_EQ(st.key(), "alg2/rand/p5/w2/fstall-c3/seed42");
}

TEST(Scenario, CrashRunsAreDeterministic) {
  // Same scenario (schedule seed × crash seed) => identical fingerprint,
  // verdict, and detail — the property the fault-axis digest rests on.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    for (std::uint64_t crash_seed = 0; crash_seed < 3; ++crash_seed) {
      Scenario s = abd_scenario(seed);
      s.faults = FaultPlan{FaultKind::kMinorityCrash, crash_seed};
      const ScenarioResult a = run_scenario(s);
      const ScenarioResult b = run_scenario(s);
      EXPECT_EQ(a.verdict, b.verdict) << s.key();
      EXPECT_EQ(a.steps, b.steps) << s.key();
      EXPECT_EQ(a.ops, b.ops) << s.key();
      EXPECT_EQ(a.history_hash, b.history_hash) << s.key();
      EXPECT_EQ(a.detail, b.detail) << s.key();
    }
  }
}

TEST(Scenario, MinorityCrashesBlockOrPassButNeverErrorOrViolate) {
  // ABD is correct under minority crashes (Theorem 14's regime): every
  // seeded crash schedule either still completes (kOk) or strands ops on
  // crashed nodes (kBlocked).  kError/kViolation would be a driver or
  // register bug.  The sweep must find at least one genuinely blocked
  // run, and blocked runs must have invocation-only ops fingerprinted.
  int blocked = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    for (const AdversaryKind adv :
         {AdversaryKind::kRandom, AdversaryKind::kRoundRobin}) {
      Scenario s = abd_scenario(seed);
      s.adversary = adv;
      s.faults = FaultPlan{FaultKind::kMinorityCrash, 0};
      const ScenarioResult r = run_scenario(s);
      ASSERT_TRUE(r.verdict == Verdict::kOk || r.verdict == Verdict::kBlocked)
          << s.key() << ": [" << to_string(r.verdict) << "] " << r.detail;
      if (r.verdict == Verdict::kBlocked) {
        ++blocked;
        EXPECT_NE(r.detail.find("checked clean"), std::string::npos);
      }
    }
  }
  EXPECT_GT(blocked, 0);
}

TEST(Scenario, HandBuiltBlockedByCrashScheduleIsBlocked) {
  // Hand-built blocked schedule: a reader starts, its node crashes, the
  // network drains.  The stranded read can never complete; the verdict
  // taxonomy must call this kBlocked — not kError (nothing failed) and
  // not kViolation (the history up to the block is fine).
  mp::Network net;
  mp::AbdRegister reg(net, 3, /*writer=*/0, /*initial=*/0);
  const int r = reg.begin_read(1);
  net.crash(1);
  util::Rng rng(1);
  while (net.deliver_random(rng)) {
  }
  ASSERT_EQ(reg.pending_ops(), 1);
  EXPECT_EQ(reg.op_node(r), 1);
  EXPECT_FALSE(reg.op_can_complete(r));
  ScenarioResult out;
  classify_run(reg.hl_history(), /*expect_wsl=*/true, RunEnd::kBlocked,
               "blocked: hand-built crash schedule", out);
  EXPECT_EQ(out.verdict, Verdict::kBlocked);
  EXPECT_NE(out.detail.find("hand-built"), std::string::npos);
}

TEST(Scenario, FaultsOnNonAbdConfigsAreErrors) {
  for (const Algorithm alg :
       {Algorithm::kModeled, Algorithm::kAlg2, Algorithm::kAlg4}) {
    Scenario s;
    s.algorithm = alg;
    s.faults = FaultPlan{FaultKind::kMinorityCrash, 0};
    const ScenarioResult r = run_scenario(s);
    EXPECT_EQ(r.verdict, Verdict::kError) << to_string(alg);
  }
}

// ---------- stall-fault axis ----------

TEST(Scenario, StallFaultsOnAbdAreErrors) {
  // Stalls are a simulator-family fault; ABD has the crash axis instead.
  Scenario s = abd_scenario(0);
  s.faults = FaultPlan{FaultKind::kStall, 0};
  const ScenarioResult r = run_scenario(s);
  EXPECT_EQ(r.verdict, Verdict::kError);
}

TEST(Scenario, StallRunsBlockOrPassButNeverErrorOrViolate) {
  // The registers are wait-free: live processes always finish, so every
  // stall schedule is kOk (nobody was actually stalled: p=2 has no
  // strict minority) or kBlocked (stalled ops stranded, history clean).
  int blocked = 0;
  for (const Algorithm alg :
       {Algorithm::kModeled, Algorithm::kAlg2, Algorithm::kAlg4}) {
    for (const AdversaryKind adv :
         {AdversaryKind::kRandom, AdversaryKind::kRoundRobin}) {
      for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Scenario s;
        s.algorithm = alg;
        s.semantics = sim::Semantics::kLinearizable;
        s.adversary = adv;
        s.processes = 4;
        s.seed = seed;
        s.faults = FaultPlan{FaultKind::kStall, 1};
        const ScenarioResult r = run_scenario(s);
        ASSERT_TRUE(r.verdict == Verdict::kOk ||
                    r.verdict == Verdict::kBlocked)
            << s.key() << ": [" << to_string(r.verdict) << "] " << r.detail;
        if (r.verdict == Verdict::kBlocked) {
          ++blocked;
          EXPECT_NE(r.detail.find("stalled"), std::string::npos) << r.detail;
          EXPECT_NE(r.detail.find("checked clean"), std::string::npos)
              << r.detail;
        }
      }
    }
  }
  EXPECT_GT(blocked, 0);
}

TEST(Scenario, StallRunsAreDeterministic) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    for (std::uint64_t fault_seed = 0; fault_seed < 2; ++fault_seed) {
      Scenario s;
      s.algorithm = Algorithm::kAlg2;
      s.processes = 5;
      s.seed = seed;
      s.faults = FaultPlan{FaultKind::kStall, fault_seed};
      const ScenarioResult a = run_scenario(s);
      const ScenarioResult b = run_scenario(s);
      EXPECT_EQ(a.verdict, b.verdict) << s.key();
      EXPECT_EQ(a.steps, b.steps) << s.key();
      EXPECT_EQ(a.history_hash, b.history_hash) << s.key();
      EXPECT_EQ(a.detail, b.detail) << s.key();
    }
  }
}

TEST(Scenario, TwoProcessStallPlansDegenerateToFaultFreeRuns) {
  // p=2 has no strict minority: the plan freezes nobody and the run
  // completes exactly like its fault-free twin (only the key differs).
  Scenario s;
  s.algorithm = Algorithm::kAlg4;
  s.processes = 2;
  s.seed = 3;
  const ScenarioResult clean = run_scenario(s);
  s.faults = FaultPlan{FaultKind::kStall, 0};
  const ScenarioResult stalled = run_scenario(s);
  EXPECT_EQ(stalled.verdict, Verdict::kOk);
  EXPECT_EQ(clean.history_hash, stalled.history_hash);
  EXPECT_EQ(clean.steps, stalled.steps);
}

TEST(Enumerate, StallAxisMultipliesSimulatorFamiliesOnly) {
  SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 2;
  o.faults = {FaultKind::kNone, FaultKind::kStall};
  o.crash_seeds = {0, 1, 2};
  const std::vector<Scenario> all = enumerate_scenarios(o);
  // modeled: 3 semantics × (1 none + 3 stall); alg2/alg4: 4 each;
  // abd: 1 (stall does not apply).  × 2 adversaries × 1 procs × 2 seeds.
  EXPECT_EQ(all.size(), (3u * 4u + 4u + 4u + 1u) * 2u * 1u * 2u);
  std::set<std::string> keys;
  for (const Scenario& s : all) {
    keys.insert(s.key());
    if (s.algorithm == Algorithm::kAbd) {
      EXPECT_EQ(s.faults.kind, FaultKind::kNone) << s.key();
    }
  }
  EXPECT_EQ(keys.size(), all.size());
}

TEST(Sweep, StallSweepDigestIsIndependentOfThreadsAndBatch) {
  SweepOptions o;
  o.algorithms = {Algorithm::kModeled, Algorithm::kAlg2, Algorithm::kAlg4};
  o.faults = {FaultKind::kStall};
  o.crash_seeds = {0, 1};
  o.process_counts = {3};
  o.seed_begin = 0;
  o.seed_end = 15;
  o.threads = 1;
  const SweepSummary seq = run_sweep(o);
  o.threads = 4;
  o.batch_size = 3;
  const SweepSummary par = run_sweep(o);
  EXPECT_EQ(seq.stable_text(), par.stable_text());
  EXPECT_GT(seq.blocked, 0u);
  EXPECT_EQ(seq.violations, 0u);
  EXPECT_EQ(seq.errors, 0u);
  EXPECT_EQ(seq.ok + seq.blocked, seq.scenarios);
}

TEST(Scenario, ViolationInBudgetExhaustedScheduleIsNotMasked) {
  // Regression for the verdict-masking bug: run_abd used to return
  // kError on budget exhaustion BEFORE running any checker, so a real
  // linearizability violation in a long schedule reported as an error.
  // Plant genuine violations with the no-write-back ablation, then
  // truncate the budget: the violating prefix must classify kViolation
  // even when the budget ran out.  (5 processes: with 3 servers every
  // two read quorums share the written-to server, so the ablation's
  // new/old inversion needs the wider quorum geometry to show up.)
  Scenario base = abd_scenario(0);
  base.processes = 5;
  base.abd_read_write_back = false;
  std::optional<std::uint64_t> violating_seed;
  for (std::uint64_t seed = 0; seed < 300 && !violating_seed; ++seed) {
    base.seed = seed;
    if (run_scenario(base).verdict == Verdict::kViolation) {
      violating_seed = seed;
    }
  }
  ASSERT_TRUE(violating_seed.has_value())
      << "no ablation violation found — widen the seed scan";
  base.seed = *violating_seed;
  bool masked_case_hit = false;
  for (std::uint64_t budget = 1; budget <= 600 && !masked_case_hit; ++budget) {
    base.max_actions = budget;
    const ScenarioResult r = run_scenario(base);
    // Budget-exhausted prefixes without the violating read yet are
    // honest errors; once the violation is in the recorded prefix it
    // must win over the budget classification.
    if (r.verdict == Verdict::kViolation &&
        r.detail.find("action budget") != std::string::npos) {
      masked_case_hit = true;
    }
  }
  EXPECT_TRUE(masked_case_hit)
      << "no budget-exhausted truncation reported the planted violation";
}

TEST(Scenario, HashHistoryCoversInvocationOnlyOps) {
  history::History a;
  history::History b;
  history::OpRecord w;
  w.process = 0;
  w.reg = 0;
  w.kind = history::OpKind::kWrite;
  w.value = 7;
  w.invoke = 1;
  w.response = history::kNoTime;  // pending: invocation-only
  a.add(w);
  w.value = 8;
  b.add(w);
  // Pending ops are digest material: two histories differing only in a
  // stranded op's payload must fingerprint differently.
  EXPECT_NE(hash_history(a), hash_history(b));
  EXPECT_NE(hash_history(a), hash_history(history::History{}));
}

// ---------- sweep smoke + digest determinism ----------

SweepOptions small_sweep(int threads) {
  SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 6;
  o.process_counts = {2, 3};
  o.threads = threads;
  return o;
}

TEST(Sweep, SmokeAllScenariosPassOnFourThreads) {
  const SweepSummary sum = run_sweep(small_sweep(4));
  EXPECT_EQ(sum.scenarios, (3u + 3u) * 2u * 2u * 6u);
  EXPECT_EQ(sum.ok, sum.scenarios)
      << (sum.failures.empty() ? "" : sum.failures.front());
  EXPECT_EQ(sum.violations, 0u);
  EXPECT_EQ(sum.errors, 0u);
  EXPECT_GT(sum.total_steps, 0u);
  EXPECT_GT(sum.total_ops, 0u);
}

TEST(Sweep, BackToBackRunsEmitIdenticalDigests) {
  const SweepSummary a = run_sweep(small_sweep(4));
  const SweepSummary b = run_sweep(small_sweep(4));
  EXPECT_EQ(a.digest, b.digest);
  // Byte-identical deterministic summary section, not just the digest.
  EXPECT_EQ(a.stable_text(), b.stable_text());
}

TEST(Sweep, DigestIsIndependentOfThreadCount) {
  const SweepSummary seq = run_sweep(small_sweep(1));
  const SweepSummary par = run_sweep(small_sweep(4));
  EXPECT_EQ(seq.stable_text(), par.stable_text());
}

TEST(Sweep, DigestDependsOnTheSeedRange) {
  SweepOptions a = small_sweep(2);
  SweepOptions b = small_sweep(2);
  b.seed_begin = 6;
  b.seed_end = 12;
  EXPECT_NE(run_sweep(a).digest, run_sweep(b).digest);
}

TEST(Sweep, DigestIsIndependentOfBatchSize) {
  // Batching seeds per pool task is a submit-overhead knob only: the
  // whole deterministic section must be byte-identical at every batch
  // size, including the degenerate one-scenario-per-task shape.
  SweepOptions one = small_sweep(4);
  one.batch_size = 1;
  SweepOptions sixteen = small_sweep(4);
  sixteen.batch_size = 16;
  SweepOptions huge = small_sweep(4);
  huge.batch_size = 1'000'000;  // single task carries the whole sweep
  const std::string a = run_sweep(one).stable_text();
  EXPECT_EQ(a, run_sweep(sixteen).stable_text());
  EXPECT_EQ(a, run_sweep(huge).stable_text());
}

TEST(Enumerate, FaultAxisMultipliesAbdOnly) {
  SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 2;
  o.faults = {FaultKind::kNone, FaultKind::kMinorityCrash};
  o.crash_seeds = {0, 1, 2};
  const std::vector<Scenario> all = enumerate_scenarios(o);
  // modeled: 3 semantics; alg2/alg4: 1 each; abd: 1 crash-free + 3
  // minority crash seeds.  × 2 adversaries × 1 process count × 2 seeds.
  EXPECT_EQ(all.size(), (3u + 1u + 1u + 4u) * 2u * 1u * 2u);
  std::set<std::string> keys;
  for (const Scenario& s : all) {
    keys.insert(s.key());
    if (s.algorithm != Algorithm::kAbd) {
      EXPECT_EQ(s.faults.kind, FaultKind::kNone) << s.key();
    }
  }
  EXPECT_EQ(keys.size(), all.size());
}

TEST(Sweep, CrashSweepDigestIsIndependentOfThreadsAndBatch) {
  SweepOptions o;
  o.algorithms = {Algorithm::kAbd};
  o.faults = {FaultKind::kNone, FaultKind::kMinorityCrash};
  o.crash_seeds = {0, 1};
  o.seed_begin = 0;
  o.seed_end = 30;
  o.threads = 1;
  const SweepSummary seq = run_sweep(o);
  o.threads = 4;
  o.batch_size = 3;
  const SweepSummary par = run_sweep(o);
  EXPECT_EQ(seq.stable_text(), par.stable_text());
  // The crash axis must actually exercise the new verdict: blocked runs
  // are counted in their own bucket and are neither violations nor
  // errors.
  EXPECT_GT(seq.blocked, 0u);
  EXPECT_EQ(seq.violations, 0u);
  EXPECT_EQ(seq.errors, 0u);
  EXPECT_EQ(seq.ok + seq.blocked, seq.scenarios);
  EXPECT_NE(seq.stable_text().find("blocked "), std::string::npos);
}

TEST(Sweep, FailureListTruncationIsNeverSilent) {
  // Unit check of the marker rendering...
  SweepSummary sum;
  sum.failures = {"k1: [blocked] x", "k2: [blocked] y"};
  sum.failures_truncated = 5;
  EXPECT_NE(sum.stable_text().find("... and 5 more non-ok"),
            std::string::npos);
  sum.failures_truncated = 0;
  EXPECT_EQ(sum.stable_text().find("... and"), std::string::npos);

  // ...and end-to-end: a crash sweep with far more than
  // kMaxReportedFailures blocked scenarios must say how many the
  // failure list left out (list cap is 16; counters stay complete).
  SweepOptions o;
  o.algorithms = {Algorithm::kAbd};
  o.faults = {FaultKind::kMinorityCrash};
  o.seed_begin = 0;
  o.seed_end = 100;
  o.threads = 4;
  const SweepSummary s = run_sweep(o);
  ASSERT_GT(s.blocked, 16u) << "crash axis produced too few blocked runs";
  EXPECT_EQ(s.failures.size(), 16u);
  EXPECT_EQ(s.failures_truncated, s.blocked - 16u);
  EXPECT_NE(s.stable_text().find("more non-ok"), std::string::npos);
}

// ---------- unreliable-network fault fabric ----------

TEST(Scenario, UnreliableFaultKeysSpellTheirAxes) {
  Scenario s = abd_scenario(0);
  s.faults = FaultPlan{FaultKind::kLossy, 2};
  s.faults.param = 300;
  EXPECT_EQ(s.key(), "abd/rand/p3/w2/flossy-d300-c2/seed0");
  s.faults = FaultPlan{FaultKind::kDuplicate, 1};
  EXPECT_EQ(s.key(), "abd/rand/p3/w2/fdup-c1/seed0");
  s.faults = FaultPlan{FaultKind::kPartition, 0};
  EXPECT_EQ(s.key(), "abd/rand/p3/w2/fpartition-c0/seed0");
  s.faults = FaultPlan{FaultKind::kMajorityCrash, 3};
  EXPECT_EQ(s.key(), "abd/rand/p3/w2/fmajority-c3/seed0");
  s.faults = FaultPlan{FaultKind::kCrashRecovery, 4};
  EXPECT_EQ(s.key(), "abd/rand/p3/w2/frecovery-c4/seed0");
  s.explore_faults = true;
  EXPECT_EQ(s.key(), "abd/rand/p3/w2/frecovery-c4/fmenu/seed0");
}

TEST(Scenario, LossyDupAndHealedPartitionRunsAllCheckOk) {
  // These regimes only delay — loss and healed cuts are repaired by
  // retransmission, duplicates by receiver-side dedup — so every run
  // must complete every op and check clean.  kBlocked here would mean
  // the retransmission layer gave up; kError that it spun the budget.
  for (const FaultKind kind :
       {FaultKind::kLossy, FaultKind::kDuplicate, FaultKind::kPartition}) {
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      for (std::uint64_t fault_seed = 0; fault_seed < 2; ++fault_seed) {
        for (const AdversaryKind adv :
             {AdversaryKind::kRandom, AdversaryKind::kRoundRobin}) {
          Scenario s = abd_scenario(seed);
          s.adversary = adv;
          s.faults = FaultPlan{kind, fault_seed};
          // The acceptance envelope's worst drop rate (p = 0.3).
          if (kind == FaultKind::kLossy) s.faults.param = 300;
          const ScenarioResult r = run_scenario(s);
          ASSERT_EQ(r.verdict, Verdict::kOk)
              << s.key() << ": [" << to_string(r.verdict) << "] " << r.detail;
          EXPECT_EQ(r.ops, 7u) << s.key();  // 2 writes + 5 reads, all done
        }
      }
    }
  }
}

TEST(Scenario, LossyRunsActuallyDropAndRetransmit) {
  // The lossy axis must not silently degenerate to a reliable run: the
  // recorded network counters prove messages were really lost (and the
  // run completed anyway).
  std::uint64_t dropped = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Scenario s = abd_scenario(seed);
    s.faults = FaultPlan{FaultKind::kLossy, 0};
    s.faults.param = 300;
    const ScenarioResult r = run_scenario(s);
    dropped += r.net_dropped;
    EXPECT_EQ(r.steps, r.net_delivered + r.net_dropped) << s.key();
  }
  EXPECT_GT(dropped, 0u);
}

TEST(Scenario, DuplicateRunsActuallyDuplicate) {
  std::uint64_t duplicated = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Scenario s = abd_scenario(seed);
    s.faults = FaultPlan{FaultKind::kDuplicate, 0};
    const ScenarioResult r = run_scenario(s);
    duplicated += r.net_duplicated;
  }
  EXPECT_GT(duplicated, 0u);
}

TEST(Scenario, MajorityCrashAlwaysBlocksAndChecksClean) {
  // A quorum dies mid-broadcast before any op can complete (the earliest
  // scheduled crash attempt is at most n+1, and no reply can be sent
  // before attempt n+1): every run must be kBlocked — never kError, and
  // never kOk — with its truncated history checked clean.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    for (std::uint64_t fault_seed = 0; fault_seed < 3; ++fault_seed) {
      Scenario s = abd_scenario(seed);
      s.faults = FaultPlan{FaultKind::kMajorityCrash, fault_seed};
      const ScenarioResult r = run_scenario(s);
      ASSERT_EQ(r.verdict, Verdict::kBlocked)
          << s.key() << ": [" << to_string(r.verdict) << "] " << r.detail;
      EXPECT_NE(r.detail.find("checked clean"), std::string::npos) << s.key();
    }
  }
}

TEST(Scenario, CrashRecoveryRunsNeverErrorOrViolate) {
  // Crash-recovery runs split between kOk (the victim was idle when it
  // died and resumed its program after recovery) and kBlocked (an op in
  // flight at crash time is abandoned — pending in the history forever,
  // reported honestly).  Both verdicts check the history clean; kError
  // (e.g. a recovered node overlapping its own abandoned op) and
  // kViolation (durable state lost on recovery) are register/driver bugs.
  int ok = 0;
  int blocked = 0;
  int abandoned_details = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    for (std::uint64_t fault_seed = 0; fault_seed < 3; ++fault_seed) {
      Scenario s = abd_scenario(seed);
      s.faults = FaultPlan{FaultKind::kCrashRecovery, fault_seed};
      const ScenarioResult r = run_scenario(s);
      ASSERT_TRUE(r.verdict == Verdict::kOk || r.verdict == Verdict::kBlocked)
          << s.key() << ": [" << to_string(r.verdict) << "] " << r.detail;
      if (r.verdict == Verdict::kOk) ++ok;
      if (r.verdict == Verdict::kBlocked) {
        ++blocked;
        EXPECT_NE(r.detail.find("checked clean"), std::string::npos);
        if (r.detail.find("abandoned by crash-recovery") !=
            std::string::npos) {
          ++abandoned_details;
        }
      }
    }
  }
  // The axis must exercise both outcomes, and blocked runs must say WHY.
  EXPECT_GT(ok, 0);
  EXPECT_GT(blocked, 0);
  EXPECT_GT(abandoned_details, 0);
}

TEST(Scenario, UnreliableRunsAreDeterministic) {
  for (const FaultKind kind :
       {FaultKind::kLossy, FaultKind::kDuplicate, FaultKind::kPartition,
        FaultKind::kMajorityCrash, FaultKind::kCrashRecovery}) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      Scenario s = abd_scenario(seed);
      s.faults = FaultPlan{kind, seed + 1};
      if (kind == FaultKind::kLossy) s.faults.param = 250;
      const ScenarioResult a = run_scenario(s);
      const ScenarioResult b = run_scenario(s);
      EXPECT_EQ(a.verdict, b.verdict) << s.key();
      EXPECT_EQ(a.steps, b.steps) << s.key();
      EXPECT_EQ(a.history_hash, b.history_hash) << s.key();
      EXPECT_EQ(a.net_delivered, b.net_delivered) << s.key();
      EXPECT_EQ(a.net_dropped, b.net_dropped) << s.key();
      EXPECT_EQ(a.net_duplicated, b.net_duplicated) << s.key();
      EXPECT_EQ(a.detail, b.detail) << s.key();
    }
  }
}

TEST(Scenario, UnreliableFaultsOnNonAbdConfigsAreErrors) {
  for (const FaultKind kind :
       {FaultKind::kLossy, FaultKind::kDuplicate, FaultKind::kPartition,
        FaultKind::kMajorityCrash, FaultKind::kCrashRecovery}) {
    for (const Algorithm alg :
         {Algorithm::kModeled, Algorithm::kAlg2, Algorithm::kAlg4}) {
      Scenario s;
      s.algorithm = alg;
      s.faults = FaultPlan{kind, 0};
      if (kind == FaultKind::kLossy) s.faults.param = 100;
      const ScenarioResult r = run_scenario(s);
      EXPECT_EQ(r.verdict, Verdict::kError)
          << to_string(alg) << " × " << to_string(kind);
    }
  }
}

TEST(Scenario, LossyParamOutOfRangeIsAnErrorNotACrash) {
  Scenario s = abd_scenario(0);
  s.faults = FaultPlan{FaultKind::kLossy, 0};
  s.faults.param = 0;  // certain-loss/no-loss params are config bugs
  EXPECT_EQ(run_scenario(s).verdict, Verdict::kError);
  s.faults.param = 1000;
  EXPECT_EQ(run_scenario(s).verdict, Verdict::kError);
}

TEST(Enumerate, UnreliableKindsMultiplyAbdOnlyAndCarryTheDropParam) {
  SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 2;
  o.faults = {FaultKind::kNone, FaultKind::kLossy, FaultKind::kPartition,
              FaultKind::kMajorityCrash};
  o.crash_seeds = {0, 1};
  o.drop_permille = 300;
  const std::vector<Scenario> all = enumerate_scenarios(o);
  // modeled: 3 semantics; alg2/alg4: 1 each (kNone only — the unreliable
  // kinds don't apply); abd: 1 fault-free + 3 kinds × 2 fault seeds.
  EXPECT_EQ(all.size(), (3u + 1u + 1u + 7u) * 2u * 1u * 2u);
  bool saw_param = false;
  for (const Scenario& s : all) {
    if (s.algorithm != Algorithm::kAbd) {
      EXPECT_EQ(s.faults.kind, FaultKind::kNone) << s.key();
    }
    if (s.faults.kind == FaultKind::kLossy) {
      EXPECT_EQ(s.faults.param, 300u) << s.key();
      EXPECT_NE(s.key().find("flossy-d300-c"), std::string::npos);
      saw_param = true;
    }
  }
  EXPECT_TRUE(saw_param);
}

TEST(Sweep, UnreliableSweepDigestIsIndependentOfThreadsAndBatch) {
  SweepOptions o;
  o.algorithms = {Algorithm::kAbd};
  o.faults = {FaultKind::kLossy, FaultKind::kDuplicate, FaultKind::kPartition,
              FaultKind::kMajorityCrash, FaultKind::kCrashRecovery};
  o.crash_seeds = {0, 1};
  o.seed_begin = 0;
  o.seed_end = 15;
  o.threads = 1;
  const SweepSummary seq = run_sweep(o);
  o.threads = 4;
  o.batch_size = 3;
  const SweepSummary par = run_sweep(o);
  EXPECT_EQ(seq.stable_text(), par.stable_text());
  EXPECT_EQ(seq.violations, 0u);
  EXPECT_EQ(seq.errors, 0u);
  EXPECT_GT(seq.ok, 0u);       // the repairable kinds all pass
  EXPECT_GT(seq.blocked, 0u);  // majority loss all blocks
}

TEST(Sweep, DropProbIsItsOwnDigestAxis) {
  SweepOptions o;
  o.algorithms = {Algorithm::kAbd};
  o.faults = {FaultKind::kLossy};
  o.seed_begin = 0;
  o.seed_end = 10;
  o.drop_permille = 100;
  const SweepSummary light = run_sweep(o);
  o.drop_permille = 300;
  const SweepSummary heavy = run_sweep(o);
  // Different loss rates are different scenarios (keyed), and both
  // complete everything.
  EXPECT_NE(light.digest, heavy.digest);
  EXPECT_EQ(light.ok, light.scenarios);
  EXPECT_EQ(heavy.ok, heavy.scenarios);
}

TEST(Sweep, DigestMatchesThePr1Baseline) {
  // Pinned regression digest, recorded from the PR 1 checker/engine on
  // this exact configuration (sweep_main --processes 3 --seeds 0:50
  // --threads 4).  A change here means scenario BEHAVIOUR changed — a
  // simulator, register-algorithm, or checker semantic difference — not
  // just a performance difference; bump it only with an explanation.
  SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 50;
  o.process_counts = {3};
  o.threads = 4;
  const SweepSummary sum = run_sweep(o);
  EXPECT_EQ(sum.scenarios, 600u);
  EXPECT_EQ(sum.ok, 600u);
  EXPECT_EQ(sum.digest, 0x74043e05615bfe8fULL);
}

}  // namespace
}  // namespace rlt::sweep
