// Tests for the three history checkers: linearizability (Definition 2),
// write strong-linearizability over history trees (Definition 4), and
// strong linearizability (Definition 3) — including the strictness of
// the containment  strong  ⊊  write-strong  ⊊  linearizable.
#include <gtest/gtest.h>

#include "checker/lin_checker.hpp"
#include "checker/strong_checker.hpp"
#include "checker/wsl_checker.hpp"

namespace rlt::checker {
namespace {

using history::History;
using history::kNoTime;
using history::OpRecord;

int add(History& h, int process, OpKind kind, Value v, Time invoke,
        Time response, int reg = 0) {
  OpRecord op;
  op.process = process;
  op.reg = reg;
  op.kind = kind;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  return h.add(op);
}

// ---------- linearizability ----------

TEST(LinChecker, MultiRegisterComposition) {
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 4, /*reg=*/0);
  add(h, 1, OpKind::kWrite, 2, 2, 5, /*reg=*/1);
  add(h, 0, OpKind::kRead, 2, 6, 8, /*reg=*/1);
  add(h, 1, OpKind::kRead, 1, 7, 9, /*reg=*/0);
  const LinCheckResult r = check_linearizable(h);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.order.size(), 4u);
}

TEST(LinChecker, DetectsPerRegisterViolation) {
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 2, /*reg=*/0);
  add(h, 1, OpKind::kRead, 99, 3, 4, /*reg=*/0);  // impossible value
  const LinCheckResult r = check_linearizable(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("R0"), std::string::npos);
}

TEST(LinChecker, MergedWitnessRespectsCrossRegisterRealTime) {
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 2, /*reg=*/0);
  add(h, 1, OpKind::kWrite, 2, 5, 6, /*reg=*/1);
  const LinCheckResult r = check_linearizable(h);
  ASSERT_TRUE(r.ok);
  // op0 precedes op1 in real time, so it must come first globally.
  EXPECT_EQ(r.order, (std::vector<int>{0, 1}));
}

TEST(LinChecker, PrefixClosedness) {
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 6);
  add(h, 1, OpKind::kRead, 1, 2, 4);
  add(h, 2, OpKind::kRead, 1, 7, 9);
  EXPECT_TRUE(check_all_prefixes_linearizable(h).ok);
}

TEST(LinChecker, HistoriesStartingAtTimeZeroAreHandled) {
  // External (streamed) histories may start their clock at 0 — a time no
  // inclusive unsigned cutoff can exclude.  Every checker must accept a
  // clean t=0 history and reject a violating one; the tree checkers'
  // empty-prefix handling (wsl_checker/strong_checker) must not build a
  // wrong one-event "empty" view.
  History good;
  add(good, 0, OpKind::kWrite, 1, 0, 2);  // invoked at t=0
  add(good, 1, OpKind::kRead, 1, 3, 4);
  EXPECT_TRUE(check_linearizable(good).ok);
  EXPECT_TRUE(check_all_prefixes_linearizable(good).ok);
  EXPECT_TRUE(check_write_strong_linearizable(good).ok);
  EXPECT_TRUE(check_strong_linearizable(good).ok);

  History bad;
  add(bad, 0, OpKind::kWrite, 1, 0, 2);
  add(bad, 1, OpKind::kRead, 99, 3, 4);
  EXPECT_FALSE(check_linearizable(bad).ok);
  EXPECT_FALSE(check_write_strong_linearizable(bad).ok);
}

// ---------- write strong-linearizability ----------

TEST(WslChecker, SequentialHistoryIsWsl) {
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 2);
  add(h, 1, OpKind::kRead, 1, 3, 4);
  const WslCheckResult r = check_write_strong_linearizable(h);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.write_orders.size(), 1u);
  EXPECT_EQ(r.write_orders[0], (std::vector<int>{0}));
}

TEST(WslChecker, ConcurrentWritesSingleRunIsWsl) {
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 10);
  add(h, 1, OpKind::kWrite, 2, 2, 12);
  add(h, 2, OpKind::kRead, 1, 13, 15);
  EXPECT_TRUE(check_write_strong_linearizable(h).ok);
}

/// The paper's core counterexample shape (Theorem 13 / Figure 4): two
/// extensions of a common prefix G that force opposite orders of two
/// writes that were concurrent in G, where one of them completed in G.
TEST(WslChecker, Theorem13BranchingTreeIsNotWsl) {
  // G: w1 by p0 pending [1..), w2 by p1 completes [2..5].
  // H1: w1 completes at 8; read by p2 [10..12] -> w2's value
  //     (forces w1 before w2: the read starts after w1 completed).
  // H2: w1 completes at 8; read by p2 [10..12] -> w1's value
  //     (forces w2 before w1: the read starts after w2 completed).
  const auto build = [](Value read_value) {
    History h;
    add(h, 0, OpKind::kWrite, 1, 1, 8);
    add(h, 1, OpKind::kWrite, 2, 2, 5);
    add(h, 2, OpKind::kRead, read_value, 10, 12);
    return h;
  };
  const History h1 = build(2);
  const History h2 = build(1);
  EXPECT_TRUE(check_linearizable(h1).ok);
  EXPECT_TRUE(check_linearizable(h2).ok);
  EXPECT_TRUE(check_write_strong_linearizable(h1).ok);
  EXPECT_TRUE(check_write_strong_linearizable(h2).ok);
  const WslCheckResult r =
      check_write_strong_linearizable(std::vector<History>{h1, h2});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("no write strong-linearization"),
            std::string::npos);
}

TEST(WslChecker, CompatibleBranchesAreWsl) {
  // Both extensions force the SAME write order: fine.
  const auto build = [](Time read_start) {
    History h;
    add(h, 0, OpKind::kWrite, 1, 1, 8);
    add(h, 1, OpKind::kWrite, 2, 2, 5);
    add(h, 2, OpKind::kRead, 2, read_start, read_start + 2);
    return h;
  };
  const WslCheckResult r = check_write_strong_linearizable(
      std::vector<History>{build(10), build(20)});
  EXPECT_TRUE(r.ok);
}

TEST(WslChecker, PendingWriteReadForcesCommitment) {
  // A read returns a pending write's value; the write order must commit
  // the pending write at the read's response — and the later branch must
  // agree with it.
  History h;
  add(h, 0, OpKind::kWrite, 7, 1, kNoTime);
  add(h, 1, OpKind::kRead, 7, 2, 4);
  add(h, 2, OpKind::kRead, 7, 5, 6);
  const WslCheckResult r = check_write_strong_linearizable(h);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.write_orders[0], (std::vector<int>{0}));
}

TEST(WslChecker, SwmrHistoriesAreAlwaysWsl) {
  // Theorem 14 shape: single-writer histories (writes never concurrent).
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 4);
  add(h, 1, OpKind::kRead, 1, 2, 6);
  add(h, 0, OpKind::kWrite, 2, 7, 12);
  add(h, 2, OpKind::kRead, 1, 8, 10);  // old value, overlapping write
  add(h, 1, OpKind::kRead, 2, 13, 14);
  EXPECT_TRUE(check_write_strong_linearizable(h).ok);
}

TEST(WslChecker, WslImpliesLinearizable) {
  // A non-linearizable run must be rejected by the WSL checker too.
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 2);
  add(h, 1, OpKind::kRead, 99, 3, 4);
  EXPECT_FALSE(check_linearizable(h).ok);
  EXPECT_FALSE(check_write_strong_linearizable(h).ok);
}

// ---------- strong linearizability ----------

TEST(StrongChecker, SequentialHistoryIsStrong) {
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 2);
  add(h, 1, OpKind::kRead, 1, 3, 4);
  EXPECT_TRUE(check_strong_linearizable(h).ok);
}

TEST(StrongChecker, Theorem13TreeIsNotStrong) {
  // Strong linearizability implies WSL, so Theorem 13's tree must fail
  // the strong checker as well.
  const auto build = [](Value read_value) {
    History h;
    add(h, 0, OpKind::kWrite, 1, 1, 8);
    add(h, 1, OpKind::kWrite, 2, 2, 5);
    add(h, 2, OpKind::kRead, read_value, 10, 12);
    return h;
  };
  const StrongCheckResult r = check_strong_linearizable(
      std::vector<History>{build(2), build(1)});
  EXPECT_FALSE(r.ok);
}

/// A single history where strong linearizability survives only by
/// committing a still-pending read EARLY with an invented response
/// (Definition 2 allows adding matching responses): when w2 responds,
/// the overlapping read must be frozen before w2 — guessing it will
/// return w1's value.  In a single run the guess can be made to match.
TEST(StrongChecker, PendingReadCanBeCommittedEarlyWithInventedResponse) {
  History h;
  h.set_initial(0, 0);
  add(h, 0, OpKind::kWrite, 1, 1, 4);    // w1 completes early
  add(h, 1, OpKind::kWrite, 2, 5, 12);   // w2 completes before r responds
  add(h, 2, OpKind::kRead, 1, 6, 20);    // r -> OLD value, overlaps w2
  ASSERT_TRUE(check_linearizable(h).ok);
  EXPECT_TRUE(check_write_strong_linearizable(h).ok);
  EXPECT_TRUE(check_strong_linearizable(h).ok);
}

/// Separation witness (the content of Corollary 11): a two-branch tree
/// that is write strongly-linearizable but NOT strongly linearizable.
/// Common prefix G: w1 completed, w2 completed, read r still pending and
/// overlapping w2.  Branch A: r returns the old value (r must sit BEFORE
/// w2).  Branch B: r returns the new value (r must sit AFTER w2).  A
/// strong linearization function must fix r's position relative to w2 at
/// w2's response — inside G, before the branches diverge — so one branch
/// always contradicts it.  Write strong-linearizability only fixes the
/// write order [w1, w2], which both branches share.
TEST(StrongChecker, BranchingReadsSeparateStrongFromWsl) {
  const auto build = [](Value read_value) {
    History h;
    h.set_initial(0, 0);
    add(h, 0, OpKind::kWrite, 1, 1, 4);
    add(h, 1, OpKind::kWrite, 2, 5, 12);
    add(h, 2, OpKind::kRead, read_value, 6, 20);
    return h;
  };
  const History ha = build(1);  // old value
  const History hb = build(2);  // new value
  ASSERT_TRUE(check_linearizable(ha).ok);
  ASSERT_TRUE(check_linearizable(hb).ok);
  const auto wsl = check_write_strong_linearizable(
      std::vector<History>{ha, hb});
  EXPECT_TRUE(wsl.ok) << wsl.explanation;
  const auto strong =
      check_strong_linearizable(std::vector<History>{ha, hb});
  EXPECT_FALSE(strong.ok);
}

TEST(StrongChecker, PendingOpsMayBeLinearizedWithInventedResponses) {
  // A pending read may enter f(G) with the value its position implies.
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 4);
  add(h, 1, OpKind::kRead, 0, 2, kNoTime);  // pending forever
  EXPECT_TRUE(check_strong_linearizable(h).ok);
}

TEST(StrongChecker, StrongImpliesWslOnRandomShapes) {
  // Hand-picked small shapes: whenever strong succeeds, WSL must too.
  std::vector<History> shapes;
  {
    History h;
    add(h, 0, OpKind::kWrite, 1, 1, 6);
    add(h, 1, OpKind::kRead, 1, 2, 8);
    shapes.push_back(h);
  }
  {
    History h;
    add(h, 0, OpKind::kWrite, 1, 1, 10);
    add(h, 1, OpKind::kWrite, 2, 12, 14);
    add(h, 2, OpKind::kRead, 2, 15, 16);
    shapes.push_back(h);
  }
  for (const History& h : shapes) {
    if (check_strong_linearizable(h).ok) {
      EXPECT_TRUE(check_write_strong_linearizable(h).ok);
    }
  }
}

}  // namespace
}  // namespace rlt::checker
