// Tests for the history model: operation records, prefixes, recorders.
#include <gtest/gtest.h>

#include "history/recorder.hpp"
#include "util/assert.hpp"

namespace rlt::history {
namespace {

OpRecord make_op(int process, RegisterId reg, OpKind kind, Value v,
                 Time invoke, Time response) {
  OpRecord op;
  op.process = process;
  op.reg = reg;
  op.kind = kind;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  return op;
}

TEST(OpRecord, PrecedenceIsStrictRealTime) {
  const OpRecord a = make_op(0, 0, OpKind::kWrite, 1, 1, 5);
  const OpRecord b = make_op(1, 0, OpKind::kRead, 0, 6, 9);
  const OpRecord c = make_op(2, 0, OpKind::kRead, 0, 3, 8);
  EXPECT_TRUE(a.precedes(b));
  EXPECT_FALSE(b.precedes(a));
  EXPECT_FALSE(a.precedes(c));  // overlap
  EXPECT_TRUE(a.concurrent_with(c));
  EXPECT_FALSE(a.concurrent_with(b));
}

TEST(OpRecord, PendingNeverPrecedes) {
  const OpRecord p = make_op(0, 0, OpKind::kWrite, 1, 1, kNoTime);
  const OpRecord q = make_op(1, 0, OpKind::kRead, 0, 100, 200);
  EXPECT_TRUE(p.pending());
  EXPECT_FALSE(p.precedes(q));
  EXPECT_TRUE(p.concurrent_with(q));
}

TEST(History, AddAssignsDenseIds) {
  History h;
  EXPECT_EQ(h.add(make_op(0, 0, OpKind::kWrite, 1, 1, 2)), 0);
  EXPECT_EQ(h.add(make_op(1, 0, OpKind::kRead, 1, 3, 4)), 1);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.completed_count(), 2u);
  h.validate();
}

TEST(History, CompleteOpSetsReadValue) {
  History h;
  const int id = h.add(make_op(0, 0, OpKind::kRead, 0, 1, kNoTime));
  EXPECT_EQ(h.completed_count(), 0u);
  h.complete_op(id, 42, 5);
  EXPECT_EQ(h.op(id).value, 42);
  EXPECT_EQ(h.op(id).response, 5u);
  EXPECT_THROW(h.complete_op(id, 0, 9), util::InvariantViolation);
}

TEST(History, CompleteOpKeepsWriteValue) {
  History h;
  const int id = h.add(make_op(0, 0, OpKind::kWrite, 7, 1, kNoTime));
  h.complete_op(id, 999, 5);
  EXPECT_EQ(h.op(id).value, 7);
}

TEST(History, ValidateRejectsDuplicateTimes) {
  History h;
  h.add(make_op(0, 0, OpKind::kWrite, 1, 1, 2));
  h.add(make_op(1, 0, OpKind::kWrite, 2, 2, 5));  // invoke collides
  EXPECT_THROW(h.validate(), util::InvariantViolation);
}

TEST(History, EventsAreTimeSorted) {
  History h;
  h.add(make_op(0, 0, OpKind::kWrite, 1, 5, 9));
  h.add(make_op(1, 0, OpKind::kRead, 1, 2, 7));
  const auto evs = h.events();
  ASSERT_EQ(evs.size(), 4u);
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_LT(evs[i - 1].time, evs[i].time);
  }
  EXPECT_EQ(evs.front().time, 2u);
  EXPECT_EQ(evs.back().time, 9u);
}

TEST(History, PrefixTruncatesAndPends) {
  History h;
  h.set_initial(0, -5);
  h.add(make_op(0, 0, OpKind::kWrite, 1, 1, 10));
  h.add(make_op(1, 0, OpKind::kRead, 1, 2, 4));
  h.add(make_op(2, 0, OpKind::kRead, 1, 20, 22));

  const History p = h.prefix_at(5);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.op(0).pending());             // write cut at response
  EXPECT_FALSE(p.op(1).pending());            // read completed by t=5
  EXPECT_EQ(p.op(1).value, 1);
  EXPECT_EQ(p.initial(0), -5);

  const History p2 = h.prefix_at(3);
  ASSERT_EQ(p2.size(), 2u);
  EXPECT_TRUE(p2.op(1).pending());
  EXPECT_EQ(p2.op(1).value, 0);  // pending reads lose their value
}

TEST(History, AllPrefixesEndsWithFullHistory) {
  History h;
  h.add(make_op(0, 0, OpKind::kWrite, 1, 1, 4));
  h.add(make_op(1, 0, OpKind::kRead, 1, 2, 6));
  const auto prefixes = h.all_prefixes();
  ASSERT_EQ(prefixes.size(), 4u);  // one per event
  EXPECT_EQ(prefixes.back(), h);
  EXPECT_EQ(prefixes.front().size(), 1u);
}

TEST(History, AllPrefixesIncludesEmptyPrefixForTimeZeroHistories) {
  // Regression: Time is unsigned and cutoffs are inclusive, so no
  // integer cutoff excludes an op invoked at time 0.  all_prefixes used
  // to fake the empty prefix with prefix_at(0) and silently DROP it for
  // exactly such histories; it must be built genuinely empty instead.
  History h;
  h.set_initial(0, 7);
  h.add(make_op(0, 0, OpKind::kWrite, 1, 0, 2));  // invoked at t=0
  const auto with_empty = h.all_prefixes(/*include_empty=*/true);
  ASSERT_EQ(with_empty.size(), 3u);  // empty + one per event
  EXPECT_TRUE(with_empty.front().empty());
  EXPECT_EQ(with_empty.front().initial(0), 7);  // initials still carried
  EXPECT_EQ(with_empty.back(), h);
  // And histories that do NOT start at t=0 keep their behaviour.
  History later;
  later.add(make_op(0, 0, OpKind::kWrite, 1, 1, 2));
  const auto lp = later.all_prefixes(/*include_empty=*/true);
  ASSERT_EQ(lp.size(), 3u);
  EXPECT_TRUE(lp.front().empty());
}

TEST(History, RestrictToRegisterMapsIds) {
  History h;
  h.set_initial(3, 9);
  h.add(make_op(0, 3, OpKind::kWrite, 1, 1, 2));
  h.add(make_op(0, 5, OpKind::kWrite, 2, 3, 4));
  h.add(make_op(1, 3, OpKind::kRead, 1, 5, 6));
  std::vector<int> mapping;
  const History sub = h.restrict_to_register(3, &mapping);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(mapping, (std::vector<int>{0, 2}));
  EXPECT_EQ(sub.initial(3), 9);
  EXPECT_EQ(h.registers(), (std::vector<RegisterId>{3, 5}));
}

TEST(Recorder, RecordsInvokeAndResponse) {
  Recorder rec;
  const OpHandle h = rec.begin_op(2, 0, OpKind::kRead, 0, 10);
  rec.end_op(h, 33, 12);
  const History& hist = rec.history();
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist.op(0).process, 2);
  EXPECT_EQ(hist.op(0).value, 33);
  EXPECT_EQ(hist.op(0).invoke, 10u);
  EXPECT_EQ(hist.op(0).response, 12u);
}

TEST(ConcurrentRecorder, AssignsMonotoneDistinctTimes) {
  ConcurrentRecorder rec;
  const OpHandle a = rec.begin_op(0, 0, OpKind::kWrite, 5);
  const OpHandle b = rec.begin_op(1, 0, OpKind::kRead, 0);
  rec.end_op(a, 0);
  rec.end_op(b, 5);
  const History h = rec.snapshot();
  h.validate();
  EXPECT_LT(h.op(0).invoke, h.op(1).invoke);
  EXPECT_LT(h.op(1).invoke, h.op(0).response);
  EXPECT_LT(h.op(0).response, h.op(1).response);
}

TEST(ConcurrentRecorder, SnapshotShowsPendingOps) {
  ConcurrentRecorder rec;
  (void)rec.begin_op(0, 0, OpKind::kWrite, 5);
  const History h = rec.snapshot();
  ASSERT_EQ(h.size(), 1u);
  EXPECT_TRUE(h.op(0).pending());
}

TEST(History, PrintingIsStable) {
  History h;
  h.add(make_op(0, 0, OpKind::kWrite, 1, 1, 2));
  const std::string s = h.to_string();
  EXPECT_NE(s.find("write"), std::string::npos);
  EXPECT_NE(s.find("op0"), std::string::npos);
}

}  // namespace
}  // namespace rlt::history
