// Coverage of the smaller public surfaces: logging, the coroutine
// generator, game value encodings, model introspection/describe output,
// consensus state helpers, and miscellaneous utility paths that the
// larger suites exercise only implicitly.
#include <gtest/gtest.h>

#include <sstream>

#include "checker/spec.hpp"
#include "consensus/rand_consensus.hpp"
#include "game/encoding.hpp"
#include "sim/adversary.hpp"
#include "sim/generator.hpp"
#include "sim/regmodel.hpp"
#include "sim/scheduler.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace rlt {
namespace {

// ---------- logging ----------

TEST(Logging, RespectsThreshold) {
  std::ostringstream sink;
  util::set_log_stream(sink);
  util::set_log_level(util::LogLevel::kWarn);
  util::log_info() << "hidden " << 1;
  util::log_warn() << "visible " << 2;
  util::log_error() << "also visible";
  util::set_log_stream(std::cerr);
  util::set_log_level(util::LogLevel::kInfo);
  const std::string out = sink.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible 2"), std::string::npos);
  EXPECT_NE(out.find("WARN"), std::string::npos);
  EXPECT_NE(out.find("ERROR"), std::string::npos);
}

// ---------- generator ----------

sim::Generator<int> count_to(int n) {
  for (int i = 1; i <= n; ++i) co_yield i;
}

TEST(Generator, YieldsAllValuesThenExhausts) {
  auto gen = count_to(4);
  std::vector<int> seen;
  while (gen.advance()) seen.push_back(gen.value());
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_FALSE(gen.advance());  // stays exhausted
}

TEST(Generator, EmptyGeneratorIsSafe) {
  auto gen = count_to(0);
  EXPECT_FALSE(gen.advance());
}

sim::Generator<int> throwing_gen() {
  co_yield 1;
  throw std::runtime_error("boom");
}

TEST(Generator, ExceptionsPropagateOnAdvance) {
  auto gen = throwing_gen();
  ASSERT_TRUE(gen.advance());
  EXPECT_EQ(gen.value(), 1);
  EXPECT_THROW(gen.advance(), std::runtime_error);
}

TEST(Generator, MoveTransfersOwnership) {
  auto gen = count_to(2);
  ASSERT_TRUE(gen.advance());
  sim::Generator<int> other = std::move(gen);
  ASSERT_TRUE(other.advance());
  EXPECT_EQ(other.value(), 2);
}

// ---------- game encodings ----------

TEST(GameEncoding, TupleRoundTrip) {
  for (int i : {0, 1}) {
    for (int j : {1, 2, 57, 100000}) {
      const auto v = game::encode_r1(i, j);
      EXPECT_EQ(game::r1_host(v), i);
      EXPECT_EQ(game::r1_round(v), j);
      EXPECT_NE(v, game::kBot);
    }
  }
}

TEST(GameEncoding, BoundedVariantDropsTheRound) {
  EXPECT_EQ(game::host_r1_value(0, 7, /*bounded=*/true), 0);
  EXPECT_EQ(game::host_r1_value(1, 7, /*bounded=*/true), 1);
  EXPECT_EQ(game::host_r1_value(1, 7, /*bounded=*/false),
            game::encode_r1(1, 7));
}

TEST(GameEncoding, DistinctAcrossRoundsAndHosts) {
  std::set<game::Value> seen;
  for (int j = 1; j <= 50; ++j) {
    for (int i : {0, 1}) {
      EXPECT_TRUE(seen.insert(game::encode_r1(i, j)).second);
    }
  }
}

// ---------- model introspection ----------

TEST(Models, DescribeMentionsStateAndSemantics) {
  const auto atomic = sim::make_model(sim::Semantics::kAtomic, 7);
  EXPECT_NE(atomic->describe().find("atomic"), std::string::npos);
  EXPECT_NE(atomic->describe().find('7'), std::string::npos);

  const auto lin = sim::make_model(sim::Semantics::kLinearizable, 0);
  EXPECT_NE(lin->describe().find("linearizable"), std::string::npos);

  const auto wsl = sim::make_model(sim::Semantics::kWriteStrong, 0);
  EXPECT_NE(wsl->describe().find("committed"), std::string::npos);
}

TEST(Models, SemanticsNamesAreStable) {
  EXPECT_STREQ(to_string(sim::Semantics::kAtomic), "atomic");
  EXPECT_STREQ(to_string(sim::Semantics::kLinearizable), "linearizable");
  EXPECT_STREQ(to_string(sim::Semantics::kWriteStrong),
               "write-strongly-linearizable");
}

TEST(Models, AtomicModelRejectsRespondCalls) {
  const auto atomic = sim::make_model(sim::Semantics::kAtomic, 0);
  EXPECT_THROW(atomic->on_respond(0, sim::ResponseChoice{}, 1),
               util::InvariantViolation);
}

TEST(RunOutcome, NamesAreStable) {
  EXPECT_STREQ(to_string(sim::RunOutcome::kAllDone), "all-done");
  EXPECT_STREQ(to_string(sim::RunOutcome::kStopped), "adversary-stopped");
  EXPECT_STREQ(to_string(sim::RunOutcome::kActionCap), "action-cap");
  EXPECT_STREQ(to_string(sim::RunOutcome::kDeadlock), "deadlock");
}

// ---------- spec helpers ----------

TEST(SpecHelpers, PrefixOf) {
  EXPECT_TRUE(checker::is_prefix_of({}, {1, 2}));
  EXPECT_TRUE(checker::is_prefix_of({1}, {1, 2}));
  EXPECT_TRUE(checker::is_prefix_of({1, 2}, {1, 2}));
  EXPECT_FALSE(checker::is_prefix_of({2}, {1, 2}));
  EXPECT_FALSE(checker::is_prefix_of({1, 2, 3}, {1, 2}));
}

TEST(SpecHelpers, WritesOfFiltersByKind) {
  history::History h;
  history::OpRecord op;
  op.reg = 0;
  op.process = 0;
  op.kind = history::OpKind::kWrite;
  op.value = 1;
  op.invoke = 1;
  op.response = 2;
  h.add(op);
  op.kind = history::OpKind::kRead;
  op.invoke = 3;
  op.response = 4;
  h.add(op);
  EXPECT_EQ(checker::writes_of(h, {0, 1}), (std::vector<int>{0}));
  EXPECT_EQ(checker::writes_of(h, {1}), (std::vector<int>{}));
}

TEST(SpecHelpers, SingleRegisterOfRejectsMixtures) {
  history::History h;
  history::OpRecord op;
  op.process = 0;
  op.kind = history::OpKind::kWrite;
  op.value = 1;
  op.reg = 0;
  op.invoke = 1;
  op.response = 2;
  h.add(op);
  op.reg = 1;
  op.invoke = 3;
  op.response = 4;
  h.add(op);
  EXPECT_THROW((void)checker::single_register_of(h),
               util::InvariantViolation);
}

// ---------- consensus state helpers ----------

TEST(ConsensusState, AgreementAndValiditySemantics) {
  consensus::ConsensusConfig cfg;
  cfg.n = 3;
  consensus::ConsensusState st(cfg, {0, 1, 0});
  EXPECT_FALSE(st.all_decided());
  EXPECT_TRUE(st.agreement());  // vacuous
  EXPECT_TRUE(st.validity());
  st.decisions = {1, 1, -1};
  EXPECT_TRUE(st.agreement());
  EXPECT_TRUE(st.validity());
  st.decisions = {1, 0, -1};
  EXPECT_FALSE(st.agreement());
  st.decisions = {7, 7, 7};  // not an input value
  EXPECT_FALSE(st.validity());
}

TEST(ConsensusConfig, RegisterLayoutIsDisjoint) {
  consensus::ConsensusConfig cfg;
  cfg.n = 4;
  cfg.max_rounds = 8;
  cfg.first_reg = 3;
  cfg.coin = consensus::CoinKind::kShared;
  std::set<sim::RegId> ids;
  for (int v = 0; v < 2; ++v) {
    for (int r = 0; r <= cfg.max_rounds + 1; ++r) {
      EXPECT_TRUE(ids.insert(cfg.marker_reg(v, r)).second)
          << "marker collision at v=" << v << " r=" << r;
    }
  }
  for (int r = 0; r <= cfg.max_rounds + 1; ++r) {
    for (int i = 0; i < cfg.n; ++i) {
      EXPECT_TRUE(ids.insert(cfg.coin_reg_base(r) + i).second)
          << "coin collision at r=" << r << " i=" << i;
    }
  }
}

// ---------- scheduler odds and ends ----------

sim::Task yield_thrice(sim::Proc& p, int* count) {
  for (int i = 0; i < 3; ++i) {
    co_await p.yield();
    ++*count;
  }
}

TEST(Scheduler, YieldIsAPureSchedulingPoint) {
  sim::Scheduler sched(1);
  int count = 0;
  sched.add_process("y", [&count](sim::Proc& p) {
    return yield_thrice(p, &count);
  });
  sim::RoundRobinAdversary adv;
  EXPECT_EQ(sched.run(adv), sim::RunOutcome::kAllDone);
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(sched.global_history().empty());  // yields record nothing
}

TEST(Scheduler, ProcessNamesAreKept) {
  sim::Scheduler sched(1);
  int count = 0;
  const auto id = sched.add_process("my-proc", [&count](sim::Proc& p) {
    return yield_thrice(p, &count);
  });
  EXPECT_EQ(sched.process_name(id), "my-proc");
}

}  // namespace
}  // namespace rlt
