// Ablation studies: removing the design ingredients the paper calls out
// must break the corresponding guarantee, with a concrete certificate.
//
//  * Algorithm 2 line 9 / ∞-initialization of new_ts: "as we will see,
//    this is important for the write strong-linearization".  With unset
//    entries read as 0, a barely-started write looks lexicographically
//    tiny and Algorithm 3 linearizes it too early — ordering it before a
//    write whose value a later read proves came first.
//  * ABD's read write-back phase: without it, reads stop being
//    linearizable across readers (the classic new/old inversion between
//    two sequential reads by different processes).
//
// Plus failure injection: wait-freedom of the register constructions
// (stalled processes never block others) and crash tolerance boundaries.
#include <gtest/gtest.h>

#include <algorithm>

#include "checker/lin_checker.hpp"
#include "game/game.hpp"
#include "mp/abd.hpp"
#include "registers/alg2_register.hpp"
#include "registers/alg3_linearizer.hpp"
#include "sim/adversary.hpp"
#include "util/rng.hpp"

namespace rlt {
namespace {

// ---------- Algorithm 2 / Algorithm 3: the ∞-initialization ----------

sim::Task alg2_one_write(sim::Proc& p, registers::SimAlg2Register& r,
                         int slot, history::Value v) {
  co_await r.write(p, slot, v);
}

sim::Task alg2_one_read(sim::Proc& p, registers::SimAlg2Register& r) {
  (void)co_await r.read(p);
}

/// The breaking schedule: w_a (slot 2) samples Val[0] early, then stalls;
/// w_b (slot 1) publishes (v_b, [0,1,0]); w_a resumes, samples Val[1]
/// AFTER w_b's publication, and publishes (v_a, [0,1,1]) — a LARGER
/// timestamp.  A late read returns v_a.  With ∞-initialization, w_a's
/// partial timestamp at w_b's publication is [0,∞,∞] > [0,1,0], so
/// Algorithm 3 correctly leaves w_a for later.  With the 0-ablation it
/// reads [0,0,0] <= [0,1,0], w_a is linearized BEFORE w_b, and the late
/// read's placement violates real time.
struct ZeroInitFixture {
  sim::Scheduler sched{1};
  registers::SimAlg2Register reg{sched, 3, 100, 0};

  history::History run() {
    sched.add_process("wa", [this](sim::Proc& p) {
      return alg2_one_write(p, reg, 2, 222);
    });
    sched.add_process("wb", [this](sim::Proc& p) {
      return alg2_one_write(p, reg, 1, 111);
    });
    sched.add_process("r", [this](sim::Proc& p) {
      return alg2_one_read(p, reg);
    });
    sim::FixedStepAdversary adv({
        0,              // w_a: begin, sample Val[0] (entry0 = 0)
        1, 1, 1, 1, 1,  // w_b: full write, publishes [0,1,0]
        0, 0, 0, 0,     // w_a: sample Val[1]=1, Val[2], publish [0,1,1]
        2, 2, 2, 2,     // read: returns w_a's value (max timestamp)
    });
    sched.run(adv, 100);
    return reg.hl_history();
  }
};

TEST(Alg2Ablation, InfiniteInitHandlesTheAdversarialSchedule) {
  ZeroInitFixture fx;
  const history::History h = fx.run();
  const auto ver = registers::verify_alg3_wsl(fx.reg.trace(), h);
  EXPECT_TRUE(ver.ok) << ver.error;
}

TEST(Alg2Ablation, ZeroInitBreaksAlgorithm3) {
  ZeroInitFixture fx;
  const history::History h = fx.run();
  registers::Alg2Trace ablated = fx.reg.trace();
  ablated.infinite_init = false;
  const auto ver = registers::verify_alg3_wsl(ablated, h);
  ASSERT_FALSE(ver.ok)
      << "the 0-initialization ablation should break Algorithm 3";
  EXPECT_NE(ver.error.find("not a linearization"), std::string::npos)
      << ver.error;
}

sim::Task alg2_two_reads(sim::Proc& p, registers::SimAlg2Register& r) {
  (void)co_await r.read(p);
  (void)co_await r.read(p);
}

TEST(Alg2Ablation, ZeroInitFailsSomewhereInRandomSweeps) {
  // The ablation's unsoundness is not exotic: with 4 concurrent writers,
  // random schedules hit it at a rate of roughly 1 in 12 (measured:
  // 26/300); the ∞-initialization must stay clean on every one of them.
  int failures = 0;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    sim::Scheduler sched(seed);
    registers::SimAlg2Register reg(sched, 4, 100, 0);
    for (int w = 0; w < 4; ++w) {
      sched.add_process("w", [&reg, w](sim::Proc& p) {
        return alg2_one_write(p, reg, w, 100 * (w + 1));
      });
    }
    sched.add_process("r",
                      [&reg](sim::Proc& p) { return alg2_two_reads(p, reg); });
    sim::RandomAdversary adv(seed * 11 + 3);
    sched.run(adv, 100000);
    const auto clean = registers::verify_alg3_wsl(reg.trace(),
                                                  reg.hl_history());
    ASSERT_TRUE(clean.ok) << "seed " << seed << ": " << clean.error;
    registers::Alg2Trace ablated = reg.trace();
    ablated.infinite_init = false;
    if (!registers::verify_alg3_wsl(ablated, reg.hl_history()).ok) {
      ++failures;
    }
  }
  EXPECT_GT(failures, 5) << "expected the ablation to fail on some schedules";
}

// ---------- ABD: the read write-back phase ----------

/// Drives two sequential reads by different readers that straddle a write
/// which has reached only one server.  Without write-back, reader A can
/// see the new value from that one server while the later reader B
/// queries a quorum that missed it — a new/old inversion.
TEST(AbdAblation, NoWriteBackAllowsNewOldInversion) {
  int violations = 0;
  for (std::uint64_t seed = 1; seed <= 80 && violations == 0; ++seed) {
    mp::Network net;
    mp::AbdRegister reg(net, 3, 0, 0, /*read_write_back=*/false);
    util::Rng rng(seed);
    // Start a write but deliver only SOME of its messages.
    const int w = reg.begin_write(7);
    // Reader A reads (may catch the fresh value), then reader B.
    const int ra = reg.begin_read(1);
    for (int i = 0; i < 6; ++i) net.deliver_random(rng);
    if (!reg.done(ra)) continue;
    const int rb = reg.begin_read(2);
    for (int i = 0; i < 2000 && !reg.done(rb); ++i) net.deliver_random(rng);
    if (!reg.done(rb)) continue;
    while (!reg.done(w)) net.deliver_random(rng);
    const auto lin = checker::check_linearizable(reg.hl_history());
    if (!lin.ok) ++violations;
  }
  EXPECT_GT(violations, 0)
      << "without write-back some schedule must violate linearizability";
}

TEST(AbdAblation, WithWriteBackTheSameSchedulesStayLinearizable) {
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    mp::Network net;
    mp::AbdRegister reg(net, 3, 0, 0, /*read_write_back=*/true);
    util::Rng rng(seed);
    const int w = reg.begin_write(7);
    const int ra = reg.begin_read(1);
    for (int i = 0; i < 6; ++i) net.deliver_random(rng);
    (void)ra;
    const int rb = reg.begin_read(2);
    for (int i = 0; i < 4000 && !(reg.done(rb) && reg.done(w)); ++i) {
      net.deliver_random(rng);
    }
    const auto lin = checker::check_linearizable(reg.hl_history());
    ASSERT_TRUE(lin.ok) << "seed " << seed << ": " << lin.error;
  }
}

// ---------- Failure injection: wait-freedom ----------
//
// The stalling adversary itself was promoted to sim::StallingAdversary
// (it now also backs the sweep engine's --faults stall axis and the
// termination lab); these tests keep probing wait-freedom through it.

TEST(WaitFreedom, Alg2OpsCompleteDespiteStalledWriters) {
  // Writers 1 and 2 stall after their first step; writer 0 and the
  // reader must still finish (Algorithm 2 is wait-free: no helping or
  // locking).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Scheduler sched(seed);
    registers::SimAlg2Register reg(sched, 3, 100, 0);
    for (int w = 0; w < 3; ++w) {
      sched.add_process("w", [&reg, w](sim::Proc& p) {
        return alg2_one_write(p, reg, w, 100 * (w + 1));
      });
    }
    sched.add_process("r",
                      [&reg](sim::Proc& p) { return alg2_one_read(p, reg); });
    // Let the doomed writers take one step each so their ops are live.
    sched.apply(sim::Action::step(1));
    sched.apply(sim::Action::step(2));
    sim::StallingAdversary adv({1, 2}, seed * 5);
    sched.run(adv, 100000);
    EXPECT_TRUE(sched.process_done(0)) << "seed " << seed;
    EXPECT_TRUE(sched.process_done(3)) << "seed " << seed;
    // The stalled writes are pending in the history; still linearizable.
    const auto lin = checker::check_linearizable(reg.hl_history());
    EXPECT_TRUE(lin.ok) << lin.error;
  }
}

TEST(WaitFreedom, GamePlayersStallingOnlyStallsTheGameRound) {
  // Stalling all players mid-round leaves hosts unable to pass the R2
  // check — but host OPERATIONS never block (their reads return).  This
  // checks the substrate: no deadlock, history stays valid.
  game::GameConfig cfg;
  cfg.n = 4;
  cfg.max_rounds = 3;
  sim::Scheduler sched(3);
  game::GameState state(cfg);
  game::setup_game(sched, sim::Semantics::kAtomic, state);
  sim::StallingAdversary adv({2, 3}, 17);
  sched.run(adv, 20000);
  // Hosts exit (players never incremented R2), players still in round 1.
  EXPECT_TRUE(state.procs[0].returned);
  EXPECT_TRUE(state.procs[1].returned);
  EXPECT_FALSE(state.procs[2].returned);
}

}  // namespace
}  // namespace rlt
