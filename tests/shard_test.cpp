// The distributed-sweep shard fabric (src/sweep/shard.*): the round-robin
// partition of the scenario cross-product, the shard-store bracket, and
// the merge identity
//
//     run(shard 0/N) + … + run(N-1/N) + merge  ≡  run(1/1)
//
// byte-for-byte — store, digest, and stable summary — for all three
// sweep kinds (safety, term, explore).  Also the loud-failure contract:
// a merge over an incomplete, duplicated, mismatched, or corrupted shard
// set must throw with the offending shard named, never produce a
// plausible-looking partial aggregate.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "explore/explore.hpp"
#include "sweep/shard.hpp"
#include "sweep/sweep.hpp"
#include "term/term_sweep.hpp"

namespace rlt::sweep {
namespace {

// ------------------------------------------------------------ ShardSpec ---

TEST(ShardSpec, ParseAcceptsCliSpellings) {
  auto s = parse_shard("0/1");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->index, 0u);
  EXPECT_EQ(s->count, 1u);
  EXPECT_FALSE(s->active());

  s = parse_shard("2/4");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->index, 2u);
  EXPECT_EQ(s->count, 4u);
  EXPECT_TRUE(s->active());
  EXPECT_EQ(s->to_string(), "2/4");
}

TEST(ShardSpec, ParseRejectsMalformedSpellings) {
  for (const char* bad :
       {"", "1", "/", "1/", "/2", "4/4", "5/4", "0/0", "banana", "1/2/3",
        "-1/2", "1/-2", " 1/2", "1/2 ", "1/ 2", "0x1/2", "1.0/2",
        "9999999999/2", "1/9999999999"}) {
    EXPECT_FALSE(parse_shard(bad).has_value()) << "accepted: " << bad;
  }
}

TEST(ShardSpec, RoundRobinPartitionIsExact) {
  for (std::uint32_t count : {2u, 3u, 4u, 7u}) {
    const std::uint64_t total = 23;
    std::uint64_t owned = 0;
    std::vector<int> owners(total, 0);
    for (std::uint32_t i = 0; i < count; ++i) {
      ShardSpec s{i, count};
      owned += s.share(total);
      for (std::uint64_t g = 0; g < total; ++g) owners[g] += s.owns(g);
    }
    EXPECT_EQ(owned, total) << "count=" << count;
    for (std::uint64_t g = 0; g < total; ++g)
      EXPECT_EQ(owners[g], 1) << "count=" << count << " g=" << g;
  }
}

// ---------------------------------------------------------- enumeration ---

// Every sweep kind's sharded enumeration must tile the unsharded one:
// each global index appears in exactly one shard, and the scenario at
// that slot is the same scenario (same key) the unsharded enumeration
// puts there.

TEST(ShardEnumeration, SafetyShardsTileTheCrossProduct) {
  SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 5;
  const auto full = enumerate_shard(o);
  ASSERT_EQ(full.total, full.scenarios.size());

  const std::uint32_t kShards = 3;
  std::vector<int> seen(full.total, 0);
  for (std::uint32_t i = 0; i < kShards; ++i) {
    SweepOptions so = o;
    so.shard = ShardSpec{i, kShards};
    const auto part = enumerate_shard(so);
    EXPECT_EQ(part.total, full.total);
    EXPECT_EQ(part.scenarios.size(), so.shard.share(full.total));
    for (std::size_t j = 0; j < part.scenarios.size(); ++j) {
      const std::uint64_t gi = part.global_indices[j];
      ASSERT_LT(gi, full.total);
      EXPECT_EQ(gi % kShards, i);
      EXPECT_EQ(part.scenarios[j].key(), full.scenarios[gi].key());
      ++seen[gi];
    }
  }
  for (std::uint64_t g = 0; g < full.total; ++g) EXPECT_EQ(seen[g], 1);
}

TEST(ShardEnumeration, TermShardsTileTheCrossProduct) {
  term::TermSweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 4;
  const auto full = term::enumerate_term_shard(o);
  ASSERT_EQ(full.total, full.scenarios.size());

  const std::uint32_t kShards = 4;
  std::vector<int> seen(full.total, 0);
  for (std::uint32_t i = 0; i < kShards; ++i) {
    term::TermSweepOptions so = o;
    so.shard = ShardSpec{i, kShards};
    const auto part = term::enumerate_term_shard(so);
    EXPECT_EQ(part.total, full.total);
    for (std::size_t j = 0; j < part.scenarios.size(); ++j) {
      const std::uint64_t gi = part.global_indices[j];
      ASSERT_LT(gi, full.total);
      EXPECT_EQ(part.scenarios[j].key(), full.scenarios[gi].key());
      ++seen[gi];
    }
  }
  for (std::uint64_t g = 0; g < full.total; ++g) EXPECT_EQ(seen[g], 1);
}

TEST(ShardEnumeration, ExploreShardsTileTheInstanceList) {
  explore::ExploreOptions o;
  o.seed_begin = 0;
  o.seed_end = 6;
  const auto full = explore::enumerate_explore_shard(o);
  ASSERT_EQ(full.total, full.instances.size());

  const std::uint32_t kShards = 4;
  std::vector<int> seen(full.total, 0);
  for (std::uint32_t i = 0; i < kShards; ++i) {
    explore::ExploreOptions so = o;
    so.shard = ShardSpec{i, kShards};
    const auto part = explore::enumerate_explore_shard(so);
    EXPECT_EQ(part.total, full.total);
    for (std::size_t j = 0; j < part.instances.size(); ++j) {
      const std::uint64_t gi = part.global_indices[j];
      ASSERT_LT(gi, full.total);
      EXPECT_EQ(part.instances[j].key(), full.instances[gi].key());
      ++seen[gi];
    }
  }
  for (std::uint64_t g = 0; g < full.total; ++g) EXPECT_EQ(seen[g], 1);
}

// ---------------------------------------------------------- shard store ---

TEST(ShardStoreBytes, IndependentOfThreadsAndBatch) {
  SweepOptions a;
  a.seed_begin = 0;
  a.seed_end = 4;
  a.shard = ShardSpec{1, 3};
  a.threads = 1;
  a.batch_size = 1;
  SweepOptions b = a;
  b.threads = 4;
  b.batch_size = 2;

  StringSink sa, sb;
  (void)run_sweep(a, 0, &sa);
  (void)run_sweep(b, 0, &sb);
  EXPECT_EQ(sa.text(), sb.text());
}

TEST(ShardStoreBytes, DefaultShardWritesNoBracket) {
  SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 2;
  StringSink s;
  (void)run_sweep(o, 0, &s);
  // Unsharded stores keep their historical shape: scenario records only,
  // each leading with its global index.
  EXPECT_EQ(s.text().rfind("{\"gi\":0,", 0), 0u);
  EXPECT_EQ(s.text().find("\"mode\":\"shard\""), std::string::npos);
}

// ---------------------------------------------------- the merge identity ---

// Shared harness: run the unsharded sweep and N sharded runs of the same
// options, merge the shard stores, and require store bytes, digest, and
// stable summary to be identical to the unsharded run's.

template <typename Options, typename RunFn>
void expect_merge_identity(const Options& base, std::uint32_t shards,
                           const std::string& kind, RunFn run) {
  StringSink full_sink;
  const auto full = run(base, &full_sink);

  std::vector<ShardStore> stores;
  for (std::uint32_t i = 0; i < shards; ++i) {
    Options o = base;
    o.shard = ShardSpec{i, shards};
    StringSink s;
    (void)run(o, &s);
    stores.push_back({"shard_" + std::to_string(i), s.text()});
  }

  const MergeResult m = merge_shard_stores(stores);
  EXPECT_EQ(m.kind, kind);
  EXPECT_EQ(m.shards, shards);
  EXPECT_EQ(m.store, full_sink.text());
  EXPECT_EQ(m.digest, full.digest);
  EXPECT_EQ(m.stable_text, full.stable_text());
}

TEST(ShardMerge, ReconstructsUnshardedSafetyStore) {
  SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 4;
  o.threads = 2;
  expect_merge_identity(o, 3, "safety",
                        [](const SweepOptions& opts, RecordSink* sink) {
                          return run_sweep(opts, 0, sink);
                        });
}

TEST(ShardMerge, ReconstructsUnshardedTermStore) {
  // Includes the per-family "term-hist" records: shards persist partial
  // histograms, the merge recomputes the global ones.
  term::TermSweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 4;
  o.threads = 2;
  expect_merge_identity(o, 4, "term",
                        [](const term::TermSweepOptions& opts,
                           RecordSink* sink) {
                          return run_term_sweep(opts, 0, sink);
                        });
}

TEST(ShardMerge, ReconstructsUnshardedExploreStore) {
  explore::ExploreOptions o;
  o.seed_begin = 0;
  o.seed_end = 4;
  o.search_budget = 4;
  o.shrink_budget = 64;
  o.round_budgets = {6};
  o.threads = 2;
  expect_merge_identity(o, 3, "explore",
                        [](const explore::ExploreOptions& opts,
                           RecordSink* sink) {
                          return run_explore(opts, 0, sink);
                        });
}

TEST(ShardMerge, ComposesTruncatedFailureMarker) {
  // ABD under a majority crash blocks every scenario: 2 adversaries x
  // 20 seeds = 40 failures, well past SweepFold::kMaxReportedFailures.
  // Each shard reports its own partial list; the merged summary must
  // re-truncate in GLOBAL order and land on the unsharded "... and N
  // more" marker exactly.
  SweepOptions o;
  o.algorithms = {Algorithm::kAbd};
  o.faults = {FaultKind::kMajorityCrash};
  o.seed_begin = 0;
  o.seed_end = 20;
  o.threads = 2;

  StringSink full_sink;
  const auto full = run_sweep(o, 0, &full_sink);
  ASSERT_GT(full.failures_truncated, 0u);
  ASSERT_NE(full.stable_text().find("more"), std::string::npos);

  expect_merge_identity(o, 3, "safety",
                        [](const SweepOptions& opts, RecordSink* sink) {
                          return run_sweep(opts, 0, sink);
                        });
}

// ------------------------------------------------------- loud rejection ---

class ShardMergeRejection : public ::testing::Test {
 protected:
  // Three shard stores of one small safety sweep, built once.
  static std::vector<ShardStore> make_stores() {
    std::vector<ShardStore> stores;
    for (std::uint32_t i = 0; i < 3; ++i) {
      SweepOptions o;
      o.seed_begin = 0;
      o.seed_end = 3;
      o.shard = ShardSpec{i, 3};
      StringSink s;
      (void)run_sweep(o, 0, &s);
      stores.push_back({"s" + std::to_string(i) + ".jsonl", s.text()});
    }
    return stores;
  }

  static std::string merge_error(const std::vector<ShardStore>& stores) {
    try {
      (void)merge_shard_stores(stores);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  }
};

TEST_F(ShardMergeRejection, MissingShardNamesTheHole) {
  auto stores = make_stores();
  stores.erase(stores.begin() + 2);
  const std::string err = merge_error(stores);
  EXPECT_NE(err.find("missing shard 2/3"), std::string::npos) << err;
}

TEST_F(ShardMergeRejection, DuplicateShardNamesBothFiles) {
  auto stores = make_stores();
  stores[2] = stores[1];
  const std::string err = merge_error(stores);
  EXPECT_NE(err.find("duplicate shard 1/3"), std::string::npos) << err;
  EXPECT_NE(err.find("s1.jsonl"), std::string::npos) << err;
}

TEST_F(ShardMergeRejection, ConfigMismatchIsRejected) {
  auto stores = make_stores();
  SweepOptions other;
  other.seed_begin = 0;
  other.seed_end = 7;  // Different cross-product: different config key.
  other.shard = ShardSpec{2, 3};
  StringSink s;
  (void)run_sweep(other, 0, &s);
  stores[2] = {"s2.jsonl", s.text()};
  const std::string err = merge_error(stores);
  EXPECT_FALSE(err.empty());
}

TEST_F(ShardMergeRejection, TamperedRecordFailsTheTrailerDigest) {
  auto stores = make_stores();
  // Flip a digit inside the first scenario record's steps count.
  std::string& text = stores[1].content;
  const auto pos = text.find("\"steps\":");
  ASSERT_NE(pos, std::string::npos);
  char& digit = text[pos + 8];
  digit = digit == '9' ? '8' : static_cast<char>(digit + 1);
  const std::string err = merge_error(stores);
  EXPECT_NE(err.find("digest"), std::string::npos) << err;
}

TEST_F(ShardMergeRejection, UnshardedStoreIsNotAShardStore) {
  SweepOptions o;
  o.seed_begin = 0;
  o.seed_end = 2;
  StringSink s;
  (void)run_sweep(o, 0, &s);
  const std::string err = merge_error({{"plain.jsonl", s.text()}});
  EXPECT_NE(err.find("not a shard store"), std::string::npos) << err;
}

TEST_F(ShardMergeRejection, EmptyShardSetIsRejected) {
  const std::string err = merge_error({});
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace rlt::sweep
