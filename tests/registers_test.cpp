// Tests for the MWMR-from-SWMR register constructions (simulator
// builds): Algorithm 2 + Algorithm 3 (Theorem 10, Figure 3) and
// Algorithm 4 (Theorems 12-13, Figure 4), plus timestamp semantics.
#include <gtest/gtest.h>

#include "checker/lin_checker.hpp"
#include "checker/strong_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "registers/alg2_register.hpp"
#include "registers/alg3_linearizer.hpp"
#include "registers/alg4_register.hpp"
#include "sim/adversary.hpp"

namespace rlt::registers {
namespace {

// ---------- vector timestamps ----------

TEST(VectorTs, LexicographicOrderWithInfinity) {
  VectorTs complete = VectorTs::zeros(3);
  complete.set(0, 1);
  VectorTs partial = VectorTs::infinite(3);
  partial.set(0, 0);
  // [0,inf,inf] < [1,0,0]: first entry decides.
  EXPECT_TRUE(partial.compare(complete) == std::strong_ordering::less);
  // [1,inf,inf] > [1,0,0]: inf beats 0 at entry 1.
  VectorTs partial2 = VectorTs::infinite(3);
  partial2.set(0, 1);
  EXPECT_TRUE(partial2.compare(complete) == std::strong_ordering::greater);
  // All-inf beats everything complete.
  EXPECT_TRUE(VectorTs::infinite(3).compare(complete) == std::strong_ordering::greater);
}

TEST(VectorTs, TotalOrderProperties) {
  VectorTs a = VectorTs::zeros(2);
  VectorTs b = VectorTs::zeros(2);
  EXPECT_EQ(a.compare(b), std::strong_ordering::equal);
  b.set(1, 3);
  EXPECT_TRUE(a.compare(b) == std::strong_ordering::less);
  EXPECT_TRUE(b.compare(a) == std::strong_ordering::greater);
}

TEST(VectorTs, CompletenessAndPrinting) {
  VectorTs ts = VectorTs::infinite(2);
  EXPECT_FALSE(ts.complete());
  ts.set(0, 4);
  ts.set(1, 5);
  EXPECT_TRUE(ts.complete());
  EXPECT_EQ(ts.to_string(), "[4,5]");
  EXPECT_EQ(VectorTs::infinite(1).to_string(), "[inf]");
}

TEST(LamportTsTest, LexOrder) {
  EXPECT_LT((LamportTs{1, 2}), (LamportTs{2, 0}));
  EXPECT_LT((LamportTs{1, 0}), (LamportTs{1, 2}));
  EXPECT_EQ((LamportTs{1, 1}), (LamportTs{1, 1}));
}

// ---------- shared fixtures ----------

sim::Task alg2_writer(sim::Proc& p, SimAlg2Register& r, int slot,
                      int writes) {
  for (int i = 0; i < writes; ++i) {
    co_await r.write(p, slot, 100 * (slot + 1) + i);
  }
}

sim::Task alg2_reader(sim::Proc& p, SimAlg2Register& r, int reads) {
  for (int i = 0; i < reads; ++i) {
    (void)co_await r.read(p);
  }
}

sim::Task alg4_writer(sim::Proc& p, SimAlg4Register& r, int slot,
                      history::Value v) {
  co_await r.write(p, slot, v);
}

sim::Task alg4_write_then_read(sim::Proc& p, SimAlg4Register& r, int slot,
                               history::Value v, bool do_write) {
  if (do_write) co_await r.write(p, slot, v);
  (void)co_await r.read(p);
}

sim::Task alg2_rwr(sim::Proc& p, SimAlg2Register& r, history::Value* out) {
  *out = co_await r.read(p);   // initial
  co_await r.write(p, 0, 42);
  *out = co_await r.read(p);   // own write
}

sim::Task alg2_maybe_write_then_read(sim::Proc& p, SimAlg2Register& r,
                                     bool with_write) {
  if (with_write) co_await r.write(p, 2, 300);
  (void)co_await r.read(p);
}

sim::Task alg4_two_writes_slot0(sim::Proc& p, SimAlg4Register& r) {
  co_await r.write(p, 0, 11);
  co_await r.write(p, 0, 22);
}

sim::Task alg4_two_reads(sim::Proc& p, SimAlg4Register& r) {
  (void)co_await r.read(p);
  (void)co_await r.read(p);
}

// ---------- Algorithm 2 (Theorem 10) ----------

TEST(Alg2, SequentialSemantics) {
  sim::Scheduler sched(1);
  SimAlg2Register reg(sched, 2, 100, 7);
  history::Value seen = -1;
  sched.add_process("w", [&reg, &seen](sim::Proc& p) {
    return alg2_rwr(p, reg, &seen);
  });
  sim::RoundRobinAdversary adv;
  ASSERT_EQ(sched.run(adv), sim::RunOutcome::kAllDone);
  EXPECT_EQ(seen, 42);
  EXPECT_TRUE(checker::check_linearizable(reg.hl_history()).ok);
}

class Alg2RandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Alg2RandomSweep, LinearizableWslAndAlg3Verified) {
  const std::uint64_t seed = GetParam();
  sim::Scheduler sched(seed);
  SimAlg2Register reg(sched, 3, 100, 0);
  for (int w = 0; w < 3; ++w) {
    sched.add_process("w", [&reg, w](sim::Proc& p) {
      return alg2_writer(p, reg, w, 2);
    });
  }
  for (int r = 0; r < 2; ++r) {
    sched.add_process("r",
                      [&reg](sim::Proc& p) { return alg2_reader(p, reg, 2); });
  }
  sim::RandomAdversary adv(seed * 7 + 1);
  ASSERT_EQ(sched.run(adv, 100000), sim::RunOutcome::kAllDone);

  // Independent off-line checks of the implemented register's history.
  const auto lin = checker::check_linearizable(reg.hl_history());
  EXPECT_TRUE(lin.ok) << lin.error;
  const auto wsl = checker::check_write_strong_linearizable(reg.hl_history());
  EXPECT_TRUE(wsl.ok) << wsl.explanation;

  // Theorem 10 via Algorithm 3: (L) and the prefix property (P) on every
  // trace prefix.
  const Alg3Verification ver = verify_alg3_wsl(reg.trace(), reg.hl_history());
  EXPECT_TRUE(ver.ok) << ver.error;
  EXPECT_GT(ver.prefixes_checked, 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Alg2RandomSweep,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(Alg2, Figure3PartialTimestampOrdering) {
  // Figure 3's situation: w2 completes while w1 and w3 are mid-scan;
  // w1's partial timestamp at that moment is bigger than w2's (so w1 is
  // linearized later), w3's is smaller (so w3 joins B_i and is
  // linearized before w2)... the exact shape depends on entries read,
  // which we reproduce by controlling the step schedule.
  sim::Scheduler sched(1);
  SimAlg2Register reg(sched, 3, 100, 0);
  for (int w = 0; w < 3; ++w) {
    sched.add_process("w", [&reg, w](sim::Proc& p) {
      return alg2_writer(p, reg, w, 1);
    });
  }
  // w0 reads Val[0]; w2 reads Val[0..2] and publishes; w1 publishes
  // after w2; w0 finishes last.
  sim::FixedStepAdversary adv({
      0,              // w0: begin, read Val[0]
      2, 2, 2, 2,     // w2: full scan + publish
      1, 1, 1, 1, 1,  // w1: full scan + publish + return
      0, 0, 0, 0,     // w0: finish scan, publish, return
      2,              // w2: return
  });
  sched.run(adv, 100);
  const Alg3Result out = run_alg3(reg.trace());
  ASSERT_EQ(out.write_sequence.size(), 3u);
  // Every write made it into WS and the result is a legal linearization.
  const Alg3Verification ver = verify_alg3_wsl(reg.trace(), reg.hl_history());
  EXPECT_TRUE(ver.ok) << ver.error;
}

TEST(Alg2, BranchingSchedulesRemainWsl) {
  // The Figure 4 branching experiment applied to Algorithm 2: unlike
  // Algorithm 4, the common prefix admits a commitment consistent with
  // both continuations (Theorem 10 guarantees it).
  const auto run = [](bool h2) {
    sim::Scheduler sched(1);
    auto reg = std::make_unique<SimAlg2Register>(sched, 3, 100, 0);
    sched.add_process("p0", [&r = *reg](sim::Proc& p) -> sim::Task {
      return alg2_writer(p, r, 0, 1);
    });
    sched.add_process("p1", [&r = *reg](sim::Proc& p) {
      return alg2_writer(p, r, 1, 1);
    });
    sched.add_process("p2", [&r = *reg, h2](sim::Proc& p) {
      return alg2_maybe_write_then_read(p, r, h2);
    });
    std::vector<int> steps = {0, 0, 1, 1, 1, 1, 1};
    if (!h2) {
      steps.insert(steps.end(), {0, 0, 0, 2, 2, 2, 2});
    } else {
      steps.insert(steps.end(), {2, 2, 2, 2, 0, 0, 0, 2, 2, 2, 2});
    }
    sim::FixedStepAdversary adv(steps);
    sched.run(adv, 1000);
    return reg->hl_history();
  };
  const auto h1 = run(false);
  const auto h2 = run(true);
  const auto wsl = checker::check_write_strong_linearizable(
      std::vector<history::History>{h1, h2});
  EXPECT_TRUE(wsl.ok) << wsl.explanation;
}

TEST(Alg2, RejectsConcurrentWritesOnOneSlot) {
  sim::Scheduler sched(1);
  SimAlg2Register reg(sched, 2, 100, 0);
  for (int i = 0; i < 2; ++i) {
    sched.add_process("w", [&reg](sim::Proc& p) {
      return alg2_writer(p, reg, /*slot=*/0, 1);  // both use slot 0
    });
  }
  sim::RandomAdversary adv(3);
  EXPECT_THROW(sched.run(adv), util::InvariantViolation);
}

// ---------- Algorithm 4 (Theorems 12-13) ----------

class Alg4RandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Alg4RandomSweep, IsLinearizable) {
  const std::uint64_t seed = GetParam();
  sim::Scheduler sched(seed);
  SimAlg4Register reg(sched, 3, 100, 0);
  for (int w = 0; w < 3; ++w) {
    sched.add_process("w", [&reg, w](sim::Proc& p) {
      return alg4_write_then_read(p, reg, w, 100 * (w + 1), true);
    });
  }
  sim::RandomAdversary adv(seed * 13 + 5);
  ASSERT_EQ(sched.run(adv, 100000), sim::RunOutcome::kAllDone);
  const auto lin = checker::check_linearizable(reg.hl_history());
  EXPECT_TRUE(lin.ok) << lin.error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Alg4RandomSweep,
                         ::testing::Range<std::uint64_t>(1, 31));

/// Builds the two histories of Figure 4 (Theorem 13) from real runs of
/// Algorithm 4 under exact schedules.
history::History fig4_history(bool h2) {
  sim::Scheduler sched(1);
  auto reg = std::make_unique<SimAlg4Register>(sched, 3, 100, 0);
  sched.add_process("p0", [&r = *reg](sim::Proc& p) {
    return alg4_writer(p, r, 0, 10);  // w1 writes v
  });
  sched.add_process("p1", [&r = *reg](sim::Proc& p) {
    return alg4_writer(p, r, 1, 20);  // w2 writes v'
  });
  sched.add_process("p2", [&r = *reg, h2](sim::Proc& p) {
    return alg4_write_then_read(p, r, 2, 30, h2);  // (w3;) r
  });
  std::vector<int> steps = {0, 0, 1, 1, 1, 1, 1};  // G
  if (!h2) {
    steps.insert(steps.end(), {0, 0, 0, 2, 2, 2, 2});
  } else {
    steps.insert(steps.end(), {2, 2, 2, 2, 0, 0, 0, 2, 2, 2, 2});
  }
  sim::FixedStepAdversary adv(steps);
  sched.run(adv, 1000);
  return reg->hl_history();
}

TEST(Alg4, Figure4HistoriesMatchThePaper) {
  const history::History h1 = fig4_history(false);
  const history::History h2 = fig4_history(true);
  // H1's read returns w2's value; H2's read returns w1's value.
  EXPECT_EQ(h1.op(2).value, 20);
  EXPECT_EQ(h2.op(3).value, 10);
  // Both are linearizable (Theorem 12)...
  EXPECT_TRUE(checker::check_linearizable(h1).ok);
  EXPECT_TRUE(checker::check_linearizable(h2).ok);
  // ...and share the prefix G (same events up to w2's completion).
  EXPECT_EQ(h1.prefix_at(15), h2.prefix_at(15));
}

TEST(Alg4, Theorem13NoWriteStrongLinearization) {
  const history::History h1 = fig4_history(false);
  const history::History h2 = fig4_history(true);
  const auto wsl = checker::check_write_strong_linearizable(
      std::vector<history::History>{h1, h2});
  ASSERT_FALSE(wsl.ok);
  EXPECT_NE(wsl.explanation.find("no write strong-linearization"),
            std::string::npos);
  // A fortiori not strongly linearizable.
  const auto strong = checker::check_strong_linearizable(
      std::vector<history::History>{h1, h2});
  EXPECT_FALSE(strong.ok);
}

TEST(Alg4, SingleRunsAreOftenWslButTheSetIsNot) {
  // Each Figure 4 history alone passes Definition 4 — the failure is a
  // property of the prefix-closed SET (needs both branches).
  EXPECT_TRUE(checker::check_write_strong_linearizable(fig4_history(false)).ok);
  EXPECT_TRUE(checker::check_write_strong_linearizable(fig4_history(true)).ok);
}

TEST(Alg4, SwmrRestrictionIsWsl) {
  // Theorem 14 cross-check: Algorithm 4 used by a single writer gives
  // WSL histories (any linearizable SWMR register is WSL).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Scheduler sched(seed);
    SimAlg4Register reg(sched, 3, 100, 0);
    sched.add_process("w", [&reg](sim::Proc& p) {
      return alg4_two_writes_slot0(p, reg);
    });
    for (int i = 0; i < 2; ++i) {
      sched.add_process("r",
                        [&reg](sim::Proc& p) { return alg4_two_reads(p, reg); });
    }
    sim::RandomAdversary adv(seed + 77);
    ASSERT_EQ(sched.run(adv, 100000), sim::RunOutcome::kAllDone);
    const auto wsl =
        checker::check_write_strong_linearizable(reg.hl_history());
    EXPECT_TRUE(wsl.ok) << "seed " << seed << ": " << wsl.explanation;
  }
}

}  // namespace
}  // namespace rlt::registers
