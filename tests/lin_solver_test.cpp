// Tests for the backtracking linearization solver — the single source of
// truth for register feasibility used by checkers and simulator models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>

#include "checker/lin_solver.hpp"
#include "checker/stream_checker.hpp"
#include "history/view.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rlt::checker {
namespace {

using history::History;
using history::kNoTime;
using history::OpRecord;

int add(History& h, int process, OpKind kind, Value v, Time invoke,
        Time response) {
  OpRecord op;
  op.process = process;
  op.reg = 0;
  op.kind = kind;
  op.value = v;
  op.invoke = invoke;
  op.response = response;
  return h.add(op);
}

LinSolution solve_free(const History& h) {
  LinProblem p;
  p.history = &h;
  return solve(p);
}

TEST(LinSolver, EmptyHistoryIsFeasible) {
  History h;
  const LinSolution s = solve_free(h);
  EXPECT_TRUE(s.ok);
  EXPECT_TRUE(s.order.empty());
}

TEST(LinSolver, SequentialWriteRead) {
  History h;
  add(h, 0, OpKind::kWrite, 7, 1, 2);
  add(h, 1, OpKind::kRead, 7, 3, 4);
  const LinSolution s = solve_free(h);
  ASSERT_TRUE(s.ok);
  EXPECT_EQ(s.order, (std::vector<int>{0, 1}));
  EXPECT_EQ(s.final_value, 7);
}

TEST(LinSolver, ReadOfInitialValue) {
  History h;
  h.set_initial(0, 9);
  add(h, 0, OpKind::kRead, 9, 1, 2);
  EXPECT_TRUE(solve_free(h).ok);
}

TEST(LinSolver, StaleReadAfterWriteIsInfeasible) {
  History h;
  h.set_initial(0, 0);
  add(h, 0, OpKind::kWrite, 7, 1, 2);
  add(h, 1, OpKind::kRead, 0, 3, 4);  // must see 7, claims 0
  EXPECT_FALSE(solve_free(h).ok);
}

TEST(LinSolver, ConcurrentWriteAllowsEitherReadValue) {
  for (const Value claimed : {0, 7}) {
    History h;
    h.set_initial(0, 0);
    add(h, 0, OpKind::kWrite, 7, 1, 10);  // overlaps the read
    add(h, 1, OpKind::kRead, claimed, 2, 5);
    EXPECT_TRUE(solve_free(h).ok) << "claimed " << claimed;
  }
}

TEST(LinSolver, NewOldInversionWithinOneReaderIsInfeasible) {
  // Reader sees the new value and then, in a later read, the old one.
  History h;
  h.set_initial(0, 0);
  add(h, 0, OpKind::kWrite, 7, 1, 20);
  add(h, 1, OpKind::kRead, 7, 2, 5);
  add(h, 1, OpKind::kRead, 0, 6, 9);
  EXPECT_FALSE(solve_free(h).ok);
}

TEST(LinSolver, NewOldInversionAcrossOverlappingReadersIsFeasible) {
  // r' responds after r but overlaps the write: may linearize before it.
  History h;
  h.set_initial(0, 0);
  add(h, 0, OpKind::kWrite, 7, 5, 20);
  add(h, 1, OpKind::kRead, 7, 6, 10);   // r   -> new
  add(h, 2, OpKind::kRead, 0, 4, 15);   // r'  -> old, overlaps write
  EXPECT_TRUE(solve_free(h).ok);
}

TEST(LinSolver, PendingWriteMayBeReadOrIgnored) {
  // Pending write: a read may return it (linearize the write first)...
  {
    History h;
    add(h, 0, OpKind::kWrite, 7, 1, kNoTime);
    add(h, 1, OpKind::kRead, 7, 2, 5);
    EXPECT_TRUE(solve_free(h).ok);
  }
  // ...or never observe it.
  {
    History h;
    h.set_initial(0, 0);
    add(h, 0, OpKind::kWrite, 7, 1, kNoTime);
    add(h, 1, OpKind::kRead, 0, 2, 5);
    EXPECT_TRUE(solve_free(h).ok);
  }
}

TEST(LinSolver, RealTimeOrderOfWritesIsRespected) {
  History h;
  h.set_initial(0, 0);
  add(h, 0, OpKind::kWrite, 1, 1, 2);
  add(h, 1, OpKind::kWrite, 2, 3, 4);
  add(h, 2, OpKind::kRead, 1, 5, 6);  // stale: w1 precedes w2 precedes read
  EXPECT_FALSE(solve_free(h).ok);
}

TEST(LinSolver, ExactOrderMatchingHistoryIsFeasible) {
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 2);
  add(h, 1, OpKind::kWrite, 2, 3, 4);
  LinProblem p;
  p.history = &h;
  p.mode = WriteOrderMode::kExact;
  p.exact_write_order = {0, 1};
  EXPECT_TRUE(solve(p).ok);
  p.exact_write_order = {1, 0};  // contradicts real time
  EXPECT_FALSE(solve(p).ok);
}

TEST(LinSolver, ExactOrderMustCoverCompletedWrites) {
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 2);
  LinProblem p;
  p.history = &h;
  p.mode = WriteOrderMode::kExact;
  p.exact_write_order = {};  // omits a completed write
  EXPECT_FALSE(solve(p).ok);
}

TEST(LinSolver, ExactOrderIncludesListedPendingWrites) {
  History h;
  h.set_initial(0, 0);
  add(h, 0, OpKind::kWrite, 7, 1, kNoTime);  // pending
  add(h, 1, OpKind::kRead, 7, 2, 5);
  LinProblem p;
  p.history = &h;
  p.mode = WriteOrderMode::kExact;
  p.exact_write_order = {0};
  const LinSolution s = solve(p);
  ASSERT_TRUE(s.ok);
  EXPECT_EQ(s.order.size(), 2u);

  // Excluding the pending write makes the read's value impossible.
  p.exact_write_order = {};
  EXPECT_FALSE(solve(p).ok);
}

TEST(LinSolver, ExactOrderConcurrentWritesBothDirections) {
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 10);
  add(h, 1, OpKind::kWrite, 2, 2, 12);  // concurrent
  for (const auto& order :
       {std::vector<int>{0, 1}, std::vector<int>{1, 0}}) {
    LinProblem p;
    p.history = &h;
    p.mode = WriteOrderMode::kExact;
    p.exact_write_order = order;
    EXPECT_TRUE(solve(p).ok);
  }
}

TEST(LinSolver, MultipleInitialValues) {
  History h;
  add(h, 0, OpKind::kRead, 5, 1, 2);
  LinProblem p;
  p.history = &h;
  p.initial_values = std::vector<Value>{1, 5, 9};
  const LinSolution s = solve(p);
  ASSERT_TRUE(s.ok);
  EXPECT_EQ(s.initial_used, 5);
  p.initial_values = std::vector<Value>{1, 9};
  EXPECT_FALSE(solve(p).ok);
}

TEST(LinSolver, FinalValuesEnumeration) {
  // Two concurrent completed writes: either may be last.
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 10);
  add(h, 1, OpKind::kWrite, 2, 2, 12);
  LinProblem p;
  p.history = &h;
  const std::set<Value> finals = feasible_final_values(p);
  EXPECT_EQ(finals, (std::set<Value>{1, 2}));
}

TEST(LinSolver, FinalValuesWithPendingWriteIncludePreState) {
  History h;
  h.set_initial(0, 0);
  add(h, 0, OpKind::kWrite, 7, 1, kNoTime);
  LinProblem p;
  p.history = &h;
  const std::set<Value> finals = feasible_final_values(p);
  EXPECT_EQ(finals, (std::set<Value>{0, 7}));
}

TEST(LinSolver, FinalValuesConstrainedByReads) {
  // Read of 2 after both writes completed: 2 must be last.
  History h;
  add(h, 0, OpKind::kWrite, 1, 1, 10);
  add(h, 1, OpKind::kWrite, 2, 2, 12);
  add(h, 2, OpKind::kRead, 2, 13, 14);
  LinProblem p;
  p.history = &h;
  const std::set<Value> finals = feasible_final_values(p);
  EXPECT_EQ(finals, (std::set<Value>{2}));
}

TEST(LinSolver, RejectsOversizedHistories) {
  History h;
  for (int i = 0; i < 65; ++i) {
    add(h, 0, OpKind::kWrite, i, 2 * i + 1, 2 * i + 2);
  }
  LinProblem p;
  p.history = &h;
  EXPECT_THROW((void)solve(p), util::InvariantViolation);
}

TEST(LinSolver, DuplicateValuesAreHandled) {
  // Two writes of the same value; read can be served by either.
  History h;
  add(h, 0, OpKind::kWrite, 5, 1, 10);
  add(h, 1, OpKind::kWrite, 5, 2, 12);
  add(h, 2, OpKind::kRead, 5, 3, 9);
  EXPECT_TRUE(solve_free(h).ok);
}

// ---------- brute-force cross-check (property test) ----------
//
// On random small single-register histories, `solve` must agree with an
// exhaustive oracle that tries every candidate linearization directly
// against the sequential spec: every subset of pending writes (pending
// reads are never linearizable; completed ops are mandatory) in every
// permutation, validated by `is_legal_sequential` — the definitional
// checker, shared with no part of the backtracking search.

bool oracle_linearizable(const History& h) {
  std::vector<int> mandatory;
  std::vector<int> pending_writes;
  for (const OpRecord& op : h.ops()) {
    if (!op.pending()) {
      mandatory.push_back(op.id);
    } else if (op.is_write()) {
      pending_writes.push_back(op.id);
    }
  }
  const std::size_t subsets = std::size_t{1} << pending_writes.size();
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    std::vector<int> candidate = mandatory;
    for (std::size_t b = 0; b < pending_writes.size(); ++b) {
      if (mask & (std::size_t{1} << b)) candidate.push_back(pending_writes[b]);
    }
    std::sort(candidate.begin(), candidate.end());
    do {
      if (is_legal_sequential(h, candidate).ok) return true;
    } while (std::next_permutation(candidate.begin(), candidate.end()));
  }
  return false;
}

/// A random well-formed single-register history: up to 3 processes, each
/// with sequential operations, at most `max_ops` operations, values drawn
/// from a small domain so duplicate-value corner cases occur often.
History random_history(util::Rng& rng, int max_ops) {
  History h;
  h.set_initial(0, 0);
  const int processes = 1 + static_cast<int>(rng.uniform(3));
  const int target_ops = 1 + static_cast<int>(rng.uniform(
                                 static_cast<std::uint64_t>(max_ops)));
  std::vector<int> open_op(static_cast<std::size_t>(processes), -1);
  Time now = 0;
  int started = 0;
  // Interleave invocations and responses event by event; whatever is
  // still open when we stop remains pending.
  while (true) {
    std::vector<int> can_invoke;
    std::vector<int> can_respond;
    for (int p = 0; p < processes; ++p) {
      if (open_op[static_cast<std::size_t>(p)] >= 0) {
        can_respond.push_back(p);
      } else if (started < target_ops) {
        can_invoke.push_back(p);
      }
    }
    if (can_invoke.empty() && can_respond.empty()) break;
    // Stop early sometimes so pending tails are common.
    if (can_invoke.empty() && rng.chance(1, 4)) break;
    const bool invoke =
        !can_invoke.empty() && (can_respond.empty() || rng.chance(1, 2));
    ++now;
    if (invoke) {
      const int p = can_invoke[rng.uniform(can_invoke.size())];
      OpRecord op;
      op.process = p;
      op.reg = 0;
      op.kind = rng.chance(1, 2) ? OpKind::kWrite : OpKind::kRead;
      // Values in {0,1,2}: collisions with other writes and the initial
      // value are frequent, which is the solver's hard regime.
      op.value = static_cast<Value>(rng.uniform(3));
      op.invoke = now;
      op.response = kNoTime;
      open_op[static_cast<std::size_t>(p)] = h.add(op);
      ++started;
    } else {
      const int p = can_respond[rng.uniform(can_respond.size())];
      const int id = open_op[static_cast<std::size_t>(p)];
      // Completed reads claim a random value — roughly half the
      // histories are infeasible, exercising both oracle verdicts.
      h.complete_op(id, static_cast<Value>(rng.uniform(3)), now);
      open_op[static_cast<std::size_t>(p)] = -1;
    }
  }
  return h;
}

TEST(LinSolverOracle, SolverAgreesWithBruteForceOnRandomHistories) {
  util::Rng rng(20260730);
  int feasible = 0;
  int infeasible = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const History h = random_history(rng, /*max_ops=*/7);
    ASSERT_LE(h.size(), 7u);
    const bool expected = oracle_linearizable(h);
    const LinSolution got = solve_free(h);
    ASSERT_EQ(got.ok, expected)
        << "solver disagrees with brute-force oracle on trial " << trial
        << ":\n" << h.to_string();
    if (expected) {
      ++feasible;
      // The witness must itself satisfy the sequential spec.
      EXPECT_TRUE(is_legal_sequential(h, got.order).ok)
          << "illegal witness on trial " << trial << ":\n" << h.to_string();
    } else {
      ++infeasible;
    }
  }
  // The generator must exercise both verdicts substantially.
  EXPECT_GE(feasible, 50);
  EXPECT_GE(infeasible, 50);
}

TEST(LinSolverOracle, AgreesUnderMultipleInitialValues) {
  // Same cross-check with the simulator's collapsed-past extension:
  // several allowed initial values.  The oracle runs once per candidate
  // initial value on a copy whose initial is overwritten.
  util::Rng rng(987654321);
  for (int trial = 0; trial < 150; ++trial) {
    History h = random_history(rng, /*max_ops=*/6);
    const std::vector<Value> initials = {1, 2};
    LinProblem p;
    p.history = &h;
    p.initial_values = initials;
    const bool got = solve(p).ok;
    bool expected = false;
    for (const Value init : initials) {
      History copy = h;
      copy.set_initial(0, init);
      expected = expected || oracle_linearizable(copy);
    }
    ASSERT_EQ(got, expected)
        << "initial-values disagreement on trial " << trial << ":\n"
        << h.to_string();
  }
}

TEST(LinSolver, WitnessIsAlwaysLegal) {
  // The returned order must itself pass the sequential validator.
  History h;
  h.set_initial(0, 0);
  add(h, 0, OpKind::kWrite, 1, 1, 8);
  add(h, 1, OpKind::kWrite, 2, 2, 9);
  add(h, 2, OpKind::kRead, 1, 3, 7);
  add(h, 2, OpKind::kRead, 2, 10, 12);
  const LinSolution s = solve_free(h);
  ASSERT_TRUE(s.ok);
  EXPECT_TRUE(is_legal_sequential(h, s.order).ok);
}

// ---------- brute-force oracles for the optimized fast path ----------
//
// The oracles below enumerate candidate linearizations explicitly and
// validate each with `is_legal_sequential` / `writes_of` — definitional
// code, independent of the solver's bitmask machinery.  Enumeration is
// factorial, so oracle comparisons are skipped (and counted) when a
// trial's candidate set is too large to enumerate; the tests assert that
// enough trials were actually compared.

constexpr std::size_t kMaxOraclePermutationBase = 8;  // 8! = 40320

/// All legal candidate orders under kFree constraints, streamed to `fn`
/// (which may stop the enumeration by returning false).  Returns false
/// if the instance is too large to enumerate.
template <typename Fn>
bool enumerate_free_linearizations(const History& h, const Fn& fn) {
  std::vector<int> mandatory;
  std::vector<int> pending_writes;
  for (const OpRecord& op : h.ops()) {
    if (!op.pending()) {
      mandatory.push_back(op.id);
    } else if (op.is_write()) {
      pending_writes.push_back(op.id);
    }
  }
  if (mandatory.size() + pending_writes.size() > kMaxOraclePermutationBase) {
    return false;
  }
  const std::size_t subsets = std::size_t{1} << pending_writes.size();
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    std::vector<int> candidate = mandatory;
    for (std::size_t b = 0; b < pending_writes.size(); ++b) {
      if (mask & (std::size_t{1} << b)) candidate.push_back(pending_writes[b]);
    }
    std::sort(candidate.begin(), candidate.end());
    do {
      if (is_legal_sequential(h, candidate).ok) {
        if (!fn(candidate)) return true;
      }
    } while (std::next_permutation(candidate.begin(), candidate.end()));
  }
  return true;
}

/// Oracle verdict for kExact mode: some permutation of (completed ops +
/// the listed pending writes) is legal AND has exactly `exact` as its
/// write subsequence.  Returns nullopt when too large to enumerate.
std::optional<bool> oracle_exact(const History& h,
                                 const std::vector<int>& exact) {
  std::vector<int> candidate;
  std::vector<bool> listed(h.size(), false);
  for (const int id : exact) listed[static_cast<std::size_t>(id)] = true;
  for (const OpRecord& op : h.ops()) {
    if (!op.pending()) {
      // A completed write outside the list can never be covered.
      if (op.is_write() && !listed[static_cast<std::size_t>(op.id)]) {
        return false;
      }
      candidate.push_back(op.id);
    } else if (op.is_write() && listed[static_cast<std::size_t>(op.id)]) {
      candidate.push_back(op.id);
    }
  }
  if (candidate.size() > kMaxOraclePermutationBase) return std::nullopt;
  std::sort(candidate.begin(), candidate.end());
  do {
    if (writes_of(h, candidate) == exact &&
        is_legal_sequential(h, candidate).ok) {
      return true;
    }
  } while (std::next_permutation(candidate.begin(), candidate.end()));
  return false;
}

Value final_value_of(const History& h, const std::vector<int>& order) {
  Value v = h.initial(0);
  for (const int id : order) {
    if (h.op(id).is_write()) v = h.op(id).value;
  }
  return v;
}

/// Random permutation of a random subset of `h`'s writes — an exact-order
/// constraint that is sometimes satisfiable, sometimes not.
std::vector<int> random_exact_order(util::Rng& rng, const History& h) {
  std::vector<int> writes;
  for (const OpRecord& op : h.ops()) {
    if (op.is_write()) writes.push_back(op.id);
  }
  // Shuffle, then keep a random-length prefix.
  for (std::size_t i = writes.size(); i > 1; --i) {
    std::swap(writes[i - 1], writes[rng.uniform(i)]);
  }
  writes.resize(rng.uniform(writes.size() + 1));
  return writes;
}

TEST(LinSolverOracle, ExactModeAgreesWithBruteForce) {
  util::Rng rng(424242);
  int feasible_count = 0, infeasible_count = 0, skipped = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const History h = random_history(rng, /*max_ops=*/12);
    LinProblem p;
    p.history = &h;
    p.mode = WriteOrderMode::kExact;
    p.exact_write_order = random_exact_order(rng, h);
    const std::optional<bool> expected = oracle_exact(h, p.exact_write_order);
    if (!expected.has_value()) {
      ++skipped;
      continue;
    }
    const LinSolution got = solve(p);
    ASSERT_EQ(got.ok, *expected)
        << "kExact disagreement on trial " << trial << ":\n" << h.to_string();
    EXPECT_EQ(feasible(p), *expected) << "feasible() out of sync with solve()";
    if (*expected) {
      ++feasible_count;
      EXPECT_TRUE(is_legal_sequential(h, got.order).ok);
      EXPECT_EQ(writes_of(h, got.order), p.exact_write_order)
          << "witness write subsequence differs from the exact order";
    } else {
      ++infeasible_count;
    }
  }
  EXPECT_GE(feasible_count, 40);
  EXPECT_GE(infeasible_count, 40);
  EXPECT_LT(skipped, 200);
}

TEST(LinSolverOracle, FinalValuesAgreeWithBruteForceFreeMode) {
  util::Rng rng(31337);
  int compared = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const History h = random_history(rng, /*max_ops=*/12);
    std::set<Value> expected;
    const bool enumerated = enumerate_free_linearizations(
        h, [&](const std::vector<int>& order) {
          expected.insert(final_value_of(h, order));
          return true;  // keep enumerating
        });
    if (!enumerated) continue;
    ++compared;
    LinProblem p;
    p.history = &h;
    EXPECT_EQ(feasible_final_values(p), expected)
        << "kFree finals disagreement on trial " << trial << ":\n"
        << h.to_string();
  }
  EXPECT_GE(compared, 100);
}

TEST(LinSolverOracle, FinalValuesAgreeWithBruteForceExactMode) {
  util::Rng rng(77777);
  int compared = 0, nonempty = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const History h = random_history(rng, /*max_ops=*/10);
    const std::vector<int> exact = random_exact_order(rng, h);
    // Candidate set is fixed in kExact mode: completed ops + listed
    // pending writes, and the write subsequence must equal `exact`.
    std::vector<bool> listed(h.size(), false);
    for (const int id : exact) listed[static_cast<std::size_t>(id)] = true;
    std::vector<int> candidate;
    bool covered = true;
    for (const OpRecord& op : h.ops()) {
      if (!op.pending()) {
        if (op.is_write() && !listed[static_cast<std::size_t>(op.id)]) {
          covered = false;
        }
        candidate.push_back(op.id);
      } else if (op.is_write() && listed[static_cast<std::size_t>(op.id)]) {
        candidate.push_back(op.id);
      }
    }
    if (candidate.size() > kMaxOraclePermutationBase) continue;
    std::set<Value> expected;
    if (covered) {
      std::sort(candidate.begin(), candidate.end());
      do {
        if (writes_of(h, candidate) == exact &&
            is_legal_sequential(h, candidate).ok) {
          expected.insert(final_value_of(h, candidate));
        }
      } while (std::next_permutation(candidate.begin(), candidate.end()));
    }
    ++compared;
    if (!expected.empty()) ++nonempty;
    LinProblem p;
    p.history = &h;
    p.mode = WriteOrderMode::kExact;
    p.exact_write_order = exact;
    EXPECT_EQ(feasible_final_values(p), expected)
        << "kExact finals disagreement on trial " << trial << ":\n"
        << h.to_string();
  }
  EXPECT_GE(compared, 100);
  EXPECT_GE(nonempty, 30);
}

// ---------- zero-copy prefix views and completion overlays ----------

TEST(LinSolverView, CutoffMatchesMaterializedPrefix) {
  // Solving with a cutoff must agree with solving the copied prefix, for
  // every event time of random histories, in both modes.  (The copied
  // prefix re-densifies ids, so only verdicts and final-value SETS are
  // comparable, which is exactly what the fast path must preserve.)
  util::Rng rng(5150);
  int prefixes = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const History h = random_history(rng, /*max_ops=*/12);
    for (const history::Event& ev : h.events()) {
      const History copied = h.prefix_at(ev.time);
      LinProblem view_p;
      view_p.history = &h;
      view_p.cutoff = ev.time;
      LinProblem copy_p;
      copy_p.history = &copied;
      ASSERT_EQ(feasible(view_p), feasible(copy_p))
          << "view/copy verdict mismatch at t=" << ev.time << ":\n"
          << h.to_string();
      ASSERT_EQ(feasible_final_values(view_p), feasible_final_values(copy_p))
          << "view/copy finals mismatch at t=" << ev.time << ":\n"
          << h.to_string();
      ++prefixes;
    }
  }
  EXPECT_GE(prefixes, 300);
}

TEST(LinSolverView, CompletionOverlayMatchesCopyAndComplete) {
  // The zero-copy what-if (LinProblem::completion) must agree with
  // copying the history and completing the op for real.
  util::Rng rng(8086);
  int probes = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const History h = random_history(rng, /*max_ops=*/10);
    Time max_time = 0;
    for (const OpRecord& op : h.ops()) {
      max_time = std::max(max_time, op.invoke);
      if (!op.pending()) max_time = std::max(max_time, op.response);
    }
    for (const OpRecord& op : h.ops()) {
      if (!op.pending()) continue;
      const Value v = static_cast<Value>(rng.uniform(3));
      History copied = h;
      copied.complete_op(op.id, v, max_time + 1);
      LinProblem overlay_p;
      overlay_p.history = &h;
      overlay_p.completion = LinProblem::Completion{op.id, v, max_time + 1};
      LinProblem copy_p;
      copy_p.history = &copied;
      ASSERT_EQ(feasible(overlay_p), feasible(copy_p))
          << "overlay mismatch completing op" << op.id << " with " << v
          << ":\n" << h.to_string();
      ++probes;
    }
  }
  EXPECT_GE(probes, 150);
}

TEST(LinSolverView, HistoryViewMatchesPrefixSemantics) {
  util::Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const History h = random_history(rng, /*max_ops=*/12);
    for (const history::Event& ev : h.events()) {
      const history::HistoryView view(h, ev.time);
      const History copied = h.prefix_at(ev.time);
      EXPECT_EQ(view.included_count(), copied.size());
      EXPECT_EQ(view.completed_count(), copied.completed_count());
      EXPECT_EQ(view.materialize(), copied);
    }
    // A cutoff-less view is the whole history.
    const history::HistoryView whole(h);
    EXPECT_EQ(whole.included_count(), h.size());
    EXPECT_EQ(whole.completed_count(), h.completed_count());
  }
}

// ---------- dominance pruning ----------
//
// The pruning rules (lin_solver.hpp file comment) are verdict- and
// final-value-preserving by construction; these tests pin that claim
// empirically (prune on/off A/B over the oracle generator, both modes)
// and pin the capability the pruning buys: adversarial many-writer
// windows that the unpruned search cannot finish.

TEST(LinSolverPrune, OnOffAgreeOnRandomHistoriesFreeMode) {
  util::Rng rng(0x5EED);
  for (int trial = 0; trial < 400; ++trial) {
    const History h = random_history(rng, /*max_ops=*/10);
    LinProblem on;
    on.history = &h;
    LinProblem off = on;
    off.prune = false;
    ASSERT_EQ(feasible(on), feasible(off)) << h.to_string();
    ASSERT_EQ(feasible_final_values(on), feasible_final_values(off))
        << h.to_string();
    const LinSolution s = solve(on);
    if (s.ok) {
      // The pruned witness (eager-read + accept-shortcut paths included)
      // must itself be a legal linearization.
      EXPECT_TRUE(is_legal_sequential(h, s.order).ok) << h.to_string();
    }
  }
}

TEST(LinSolverPrune, OnOffAgreeOnRandomHistoriesExactMode) {
  util::Rng rng(0xD00D);
  for (int trial = 0; trial < 400; ++trial) {
    const History h = random_history(rng, /*max_ops=*/10);
    LinProblem on;
    on.history = &h;
    on.mode = WriteOrderMode::kExact;
    on.exact_write_order = random_exact_order(rng, h);
    LinProblem off = on;
    off.prune = false;
    ASSERT_EQ(feasible(on), feasible(off)) << h.to_string();
    ASSERT_EQ(feasible_final_values(on), feasible_final_values(off))
        << h.to_string();
    const LinSolution s = solve(on);
    if (s.ok) {
      EXPECT_TRUE(is_legal_sequential(h, s.order).ok) << h.to_string();
    }
  }
}

TEST(LinSolverPrune, AllIntegerCutoffsMatchMaterializedPrefixes) {
  // Permanent version of the cutoff fuzz: solving under EVERY integer
  // cutoff — including cutoffs strictly between an invocation and its
  // response, which no event-time loop probes — must agree with solving
  // the materialized prefix, with pruning on and off.
  util::Rng rng(20260808);
  int probes = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const History h = random_history(rng, /*max_ops=*/10);
    Time max_time = 0;
    for (const OpRecord& op : h.ops()) {
      max_time = std::max(max_time, op.invoke);
      if (!op.pending()) max_time = std::max(max_time, op.response);
    }
    for (Time t = 0; t <= max_time + 1; ++t) {
      const History copied = h.prefix_at(t);
      for (const bool prune : {true, false}) {
        LinProblem view_p;
        view_p.history = &h;
        view_p.cutoff = t;
        view_p.prune = prune;
        LinProblem copy_p;
        copy_p.history = &copied;
        copy_p.prune = prune;
        ASSERT_EQ(feasible(view_p), feasible(copy_p))
            << "cutoff t=" << t << " prune=" << prune << ":\n"
            << h.to_string();
        ASSERT_EQ(feasible_final_values(view_p),
                  feasible_final_values(copy_p))
            << "cutoff t=" << t << " prune=" << prune << ":\n"
            << h.to_string();
        ++probes;
      }
    }
  }
  EXPECT_GE(probes, 800);
}

/// The adversarial many-writer window: `writers` fully concurrent writes
/// of distinct values, `reads_per_value` completed concurrent reads of
/// each written value, and optionally one read of a value nobody writes.
/// Every op overlaps every other, so the unpruned DFS faces the full
/// writers! × interleavings explosion.
History many_writer_window(int writers, int reads_per_value, bool add_bad_read) {
  History h;
  h.set_initial(0, 0);
  Time t = 0;
  std::vector<int> ids;
  for (int w = 0; w < writers; ++w) {
    ids.push_back(add(h, w, OpKind::kWrite, 10 + w, ++t, kNoTime));
  }
  for (int w = 0; w < writers; ++w) {
    for (int r = 0; r < reads_per_value; ++r) {
      ids.push_back(
          add(h, writers + w, OpKind::kRead, 10 + w, ++t, kNoTime));
    }
  }
  if (add_bad_read) {
    ids.push_back(add(h, 2 * writers, OpKind::kRead, 99, ++t, kNoTime));
  }
  // Respond everyone long after every invocation: total overlap.
  Time r = 1000;
  for (const int id : ids) h.complete_op(id, h.op(id).value, ++r);
  return h;
}

TEST(LinSolverPrune, ManyWriterInfeasibleWindowsSolveFast) {
  // 8..10 writers/register — past the seed's practical ~6-writer ceiling.
  // The doomed-state rule rejects the unobtainable read near the root;
  // without pruning this family is a multi-minute search.
  for (const int writers : {8, 9, 10}) {
    const History h = many_writer_window(writers, /*reads_per_value=*/3,
                                         /*add_bad_read=*/true);
    LinProblem p;
    p.history = &h;
    EXPECT_FALSE(feasible(p)) << writers << " writers";
  }
}

TEST(LinSolverPrune, ManyWriterFeasibleWindowsSolveFast) {
  for (const int writers : {8, 9, 10}) {
    const History h = many_writer_window(writers, /*reads_per_value=*/3,
                                         /*add_bad_read=*/false);
    LinProblem p;
    p.history = &h;
    const LinSolution s = solve(p);
    ASSERT_TRUE(s.ok) << writers << " writers";
    EXPECT_TRUE(is_legal_sequential(h, s.order).ok);
  }
}

TEST(LinSolverPrune, ManyWriterFamilyAgreesWithUnprunedAtSmallSizes) {
  // The same family, small enough for the unpruned search: verdicts and
  // final-value sets must match, feasible and infeasible alike.
  for (const int writers : {2, 3, 4}) {
    for (const bool bad_read : {false, true}) {
      const History h =
          many_writer_window(writers, /*reads_per_value=*/2, bad_read);
      LinProblem on;
      on.history = &h;
      LinProblem off = on;
      off.prune = false;
      ASSERT_EQ(feasible(on), feasible(off))
          << writers << " writers, bad_read=" << bad_read;
      ASSERT_EQ(feasible_final_values(on), feasible_final_values(off))
          << writers << " writers, bad_read=" << bad_read;
      EXPECT_EQ(feasible(on), !bad_read);
    }
  }
}

TEST(LinSolverPrune, StreamingCheckerClearsManyWriterWindows) {
  // The capability the ISSUE names: with pruning, the ONLINE path checks
  // windows of >= 7 concurrent writers per register.
  for (const int writers : {7, 8, 9, 10}) {
    const History good = many_writer_window(writers, 3, false);
    StreamingChecker ok_checker = check_stream(good);
    EXPECT_TRUE(ok_checker.ok()) << writers << " writers";
    EXPECT_TRUE(ok_checker.error().empty());

    const History bad = many_writer_window(writers, 3, true);
    StreamingChecker bad_checker = check_stream(bad);
    EXPECT_FALSE(bad_checker.ok()) << writers << " writers";
    EXPECT_TRUE(bad_checker.error().empty());
    // Rejection lands exactly at the unobtainable read's response: the
    // last event of the stream (prefix-exactness at scale).
    EXPECT_EQ(bad_checker.first_violation_event(),
              static_cast<std::int64_t>(bad_checker.events_processed()) - 1);
  }
}

}  // namespace
}  // namespace rlt::checker
