// Exploration-lab tests: trace codec and replay totality, the
// record→replay→re-record fixed point, delta-debugging shrink behaviour,
// greedy-vs-random separation on the Theorem 6 game (the lab's headline
// claim), the planted-ablation counterexample pipeline end to end, and
// the thread/batch byte-stability of the aggregate summary and store.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "explore/explore.hpp"
#include "explore/policy.hpp"
#include "explore/shrink.hpp"
#include "explore/trace.hpp"
#include "sweep/store.hpp"

namespace rlt::explore {
namespace {

// ---------- trace codec ----------

TEST(Trace, EncodeDecodeRoundTrip) {
  ScheduleTrace t;
  t.choices = {0, 1, 4294967295u, 7, 0};
  EXPECT_EQ(encode_trace(t), "0,1,4294967295,7,0");
  const auto back = decode_trace(encode_trace(t));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
  EXPECT_EQ(trace_hash(*back), trace_hash(t));

  const auto empty = decode_trace("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(Trace, DecodeRejectsMalformedText) {
  EXPECT_FALSE(decode_trace(",1").has_value());
  EXPECT_FALSE(decode_trace("1,").has_value());
  EXPECT_FALSE(decode_trace("1,,2").has_value());
  EXPECT_FALSE(decode_trace("1,x").has_value());
  EXPECT_FALSE(decode_trace("4294967296").has_value());  // > uint32
}

// ---------- shrinker ----------

TEST(Shrink, ReducesToTheEssentialChoicesAndReportsMinimality) {
  // Property: the trace contains at least two entries equal to 7.
  // Everything else is noise ddmin must strip; the 7s cannot be removed
  // or lowered to 0, so the fixpoint is exactly [7, 7].
  ScheduleTrace t;
  t.choices = {3, 7, 0, 9, 9, 1, 7, 2, 5, 7, 4, 4};
  const auto keep = [](const ScheduleTrace& c) {
    int sevens = 0;
    for (const std::uint32_t x : c.choices) sevens += x == 7 ? 1 : 0;
    return sevens >= 2;
  };
  const ShrinkResult r = shrink(t, keep, 100000);
  EXPECT_TRUE(r.locally_minimal);
  EXPECT_EQ(r.trace.choices, (std::vector<std::uint32_t>{7, 7}));
  EXPECT_GT(r.probes, 0u);
}

TEST(Shrink, RespectsTheProbeBudget) {
  ScheduleTrace t;
  t.choices.assign(64, 5);
  std::uint64_t calls = 0;
  const auto keep = [&calls](const ScheduleTrace& c) {
    ++calls;
    return c.choices.size() >= 64;  // nothing is removable
  };
  const ShrinkResult r = shrink(t, keep, 10);
  EXPECT_LE(r.probes, 10u);
  EXPECT_EQ(r.probes, calls);
  EXPECT_FALSE(r.locally_minimal);
  EXPECT_TRUE(keep(r.trace));  // never hands back a non-witness
}

// ---------- record → replay → re-record ----------

ExploreInstance rounds_instance(std::uint64_t seed) {
  ExploreInstance e;
  e.objective = Objective::kRounds;
  e.family = term::Family::kGame;
  e.processes = 4;
  e.max_rounds = 8;
  e.seed = seed;
  e.search_budget = 2;
  e.shrink_budget = 0;
  return e;
}

ExploreInstance ablation_instance(std::uint64_t seed) {
  ExploreInstance e;
  e.objective = Objective::kViolation;
  e.algorithm = sweep::Algorithm::kAbd;
  e.processes = 5;
  e.writes_per_process = 2;
  e.seed = seed;
  e.search_budget = 32;
  e.abd_read_write_back = false;
  return e;
}

TEST(Replay, RecordReplayRerecordIsAFixedPoint) {
  for (const Objective obj : {Objective::kRounds, Objective::kViolation}) {
    ExploreInstance e =
        obj == Objective::kRounds ? rounds_instance(3) : ablation_instance(3);
    // An empty trace is pure fallback randomness: the recording of that
    // run is the schedule.  Replaying the recording with a DIFFERENT
    // fallback seed must reproduce the run bit for bit (the fallback is
    // never consulted: the trace covers every decision) and re-record
    // the identical trace.
    const ReplayReport first = replay_trace(e, ScheduleTrace{}, 0xAAAA);
    ASSERT_FALSE(first.effective.empty());
    const ReplayReport second = replay_trace(e, first.effective, 0xBBBB);
    EXPECT_EQ(second.fingerprint, first.fingerprint);
    EXPECT_EQ(second.score, first.score);
    EXPECT_EQ(second.steps, first.steps);
    EXPECT_EQ(second.effective, first.effective);
  }
}

TEST(Replay, IsTotalOnArbitraryChoiceSequences) {
  // Any byte soup is a valid schedule: indices wrap mod the menu, the
  // fallback finishes the run.  Deterministic given (trace, seed).
  ExploreInstance e = rounds_instance(1);
  ScheduleTrace garbage;
  for (std::uint32_t i = 0; i < 40; ++i) {
    garbage.choices.push_back(0xDEAD0000u + i * 977u);
  }
  const ReplayReport a = replay_trace(e, garbage, 42);
  const ReplayReport b = replay_trace(e, garbage, 42);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.effective, b.effective);
}

// ---------- the headline: search beats sampling ----------

TEST(Explore, GreedyAdversaryOutperformsRandomOnTheGame) {
  // Theorem 6's regime: merely linearizable game registers.  Within the
  // same per-run step budget and the same search budget, the greedy
  // adaptive adversary must keep the game alive strictly longer than
  // budgeted random restarts — in fact it reaches the round cap without
  // the game ever deciding (score = max_rounds + 1) on every seed.
  ExploreOptions o;
  o.objective = Objective::kRounds;
  o.families = {term::Family::kGame};
  o.round_budgets = {12};
  o.process_counts = {4};
  o.seed_begin = 0;
  o.seed_end = 3;
  o.search_budget = 4;
  o.shrink_budget = 0;
  o.strategy = Strategy::kGreedy;
  const ExploreSummary greedy = run_explore(o);
  o.strategy = Strategy::kRandom;
  const ExploreSummary random = run_explore(o);
  ASSERT_EQ(greedy.errors, 0u);
  ASSERT_EQ(random.errors, 0u);
  EXPECT_EQ(greedy.best_score, 13u);  // cap survival, never decided
  EXPECT_GT(greedy.best_score, random.best_score);
}

TEST(Explore, GreedyTrapsTheComposedAlgorithmInTheGame) {
  // Corollary 9's negative side, found by search: with linearizable game
  // registers A' = (game ; consensus) never reaches consensus.
  ExploreInstance e;
  e.objective = Objective::kRounds;
  e.family = term::Family::kComposed;
  e.processes = 4;
  e.max_rounds = 8;
  e.seed = 0;
  e.search_budget = 1;
  e.shrink_budget = 0;
  const ExploreOutcome out = run_explore_instance(e);
  ASSERT_FALSE(out.error) << out.detail;
  EXPECT_EQ(out.best_score, 9u);  // cap + 1: trapped, never decided
}

// ---------- the counterexample pipeline ----------

TEST(Explore, PlantedAblationViolationIsFoundShrunkAndReplayable) {
  const ExploreInstance e = ablation_instance(0);
  const ExploreOutcome out = run_explore_instance(e);
  ASSERT_FALSE(out.error) << out.detail;
  // Found: the no-write-back ablation breaks linearizability and the
  // greedy quorum-steering schedule exhibits it.
  EXPECT_EQ(out.found_rank, 3) << out.detail;
  // Shrunk: the witness is reduced and the ddmin fixpoint was reached.
  EXPECT_TRUE(out.shrunk);
  EXPECT_TRUE(out.locally_minimal);
  EXPECT_LT(out.best_trace.size(), out.unshrunk_len);
  // Replayable: the persisted trace reproduces the violation verdict and
  // the history fingerprint byte-identically.
  const ReplayReport rep = replay_trace(e, out.best_trace, out.fallback_seed);
  EXPECT_EQ(rep.rank, 3);
  EXPECT_EQ(rep.verdict, "VIOLATION");
  EXPECT_EQ(rep.fingerprint, out.fingerprint);
  EXPECT_EQ(rep.score, out.best_score);
  // Locally minimal, verified the hard way: dropping ANY single choice
  // loses the violation.
  for (std::size_t i = 0; i < out.best_trace.size(); ++i) {
    ScheduleTrace candidate = out.best_trace;
    candidate.choices.erase(candidate.choices.begin() +
                            static_cast<std::ptrdiff_t>(i));
    EXPECT_NE(replay_trace(e, candidate, out.fallback_seed).rank, 3)
        << "choice " << i << " is removable — not locally minimal";
  }
}

TEST(Explore, CorrectAlgorithmsSurviveTheSearch) {
  // The assurance direction: with the write-back in place (and for
  // Algorithm 2), the same search finds nothing.
  for (const sweep::Algorithm alg :
       {sweep::Algorithm::kAbd, sweep::Algorithm::kAlg2}) {
    ExploreInstance e = ablation_instance(0);
    e.algorithm = alg;
    e.abd_read_write_back = true;
    e.processes = alg == sweep::Algorithm::kAbd ? 5 : 3;
    const ExploreOutcome out = run_explore_instance(e);
    EXPECT_FALSE(out.error) << out.detail;
    EXPECT_EQ(out.found_rank, 0) << sweep::to_string(alg) << ": "
                                 << out.detail;
  }
}

// ---------- fault-schedule menus ----------

TEST(Explore, FaultMenuStillFindsThePlantedAblation) {
  // With drop/dup/crash/recover injections on the schedule menu, greedy
  // must still steer to the nowb linearizability violation — the fault
  // choices widen the menu but never hide the planted bug.
  ExploreInstance e = ablation_instance(0);
  e.fault_menu = true;
  EXPECT_EQ(e.key(), "explore/viol/abd/greedy/p5/w2/b32/nowb/fmenu/seed0");
  const ExploreOutcome out = run_explore_instance(e);
  ASSERT_FALSE(out.error) << out.detail;
  EXPECT_EQ(out.found_rank, 3) << out.detail;
  EXPECT_TRUE(out.shrunk);
  const ReplayReport rep = replay_trace(e, out.best_trace, out.fallback_seed);
  EXPECT_EQ(rep.rank, 3);
  EXPECT_EQ(rep.verdict, "VIOLATION");
  EXPECT_EQ(rep.fingerprint, out.fingerprint);
}

TEST(Explore, FaultMenuNeverFakesAViolationOnCorrectAbd) {
  // Honest degraded-mode verdicts: crashing nodes mid-run may strand ops
  // (rank 2, blocked) but must never manufacture a linearizability
  // violation against the correct write-back ABD.
  ExploreInstance e = ablation_instance(0);
  e.abd_read_write_back = true;
  e.fault_menu = true;
  const ExploreOutcome out = run_explore_instance(e);
  EXPECT_FALSE(out.error) << out.detail;
  EXPECT_LT(out.found_rank, 3) << out.detail;
}

TEST(Explore, FaultMenuRecordsRoundTripAndOldLinesDefaultOff) {
  ExploreOptions o;
  o.objective = Objective::kViolation;
  o.algorithms = {sweep::Algorithm::kAbd};
  o.abd_read_write_back = false;
  o.fault_menu = true;
  o.process_counts = {5};
  o.seed_begin = 0;
  o.seed_end = 1;
  o.search_budget = 8;
  o.shrink_budget = 512;
  sweep::StringSink sink;
  (void)run_explore(o, 0, &sink);
  const std::string line = sink.text().substr(0, sink.text().find('\n'));
  EXPECT_NE(line.find("\"fault_menu\":true"), std::string::npos) << line;
  std::string error;
  const auto persisted = parse_explore_record(line, &error);
  ASSERT_TRUE(persisted.has_value()) << error << "\n" << line;
  EXPECT_TRUE(persisted->instance.fault_menu);
  EXPECT_EQ(persisted->instance.key(),
            "explore/viol/abd/greedy/p5/w2/b8/nowb/fmenu/seed0");
  const ReplayReport rep = replay_trace(
      persisted->instance, persisted->trace, persisted->fallback_seed);
  EXPECT_EQ(rep.fingerprint, persisted->fingerprint);
  // Pre-fault-fabric store lines carry no fault_menu field: parse as off.
  std::string legacy = line;
  const std::size_t at = legacy.find(",\"fault_menu\":true");
  ASSERT_NE(at, std::string::npos);
  legacy.erase(at, std::string(",\"fault_menu\":true").size());
  const auto old = parse_explore_record(legacy, &error);
  ASSERT_TRUE(old.has_value()) << error << "\n" << legacy;
  EXPECT_FALSE(old->instance.fault_menu);
}

// ---------- determinism + persistence ----------

TEST(Explore, SummaryAndStoreAreByteStableAcrossThreadsAndBatch) {
  ExploreOptions o;
  o.objective = Objective::kViolation;
  o.algorithms = {sweep::Algorithm::kAbd};
  o.abd_read_write_back = false;  // exercise find + shrink under the pool
  o.process_counts = {5};
  o.seed_begin = 0;
  o.seed_end = 4;
  o.search_budget = 8;
  o.shrink_budget = 512;
  o.threads = 1;
  sweep::StringSink a;
  const ExploreSummary seq = run_explore(o, 0, &a);
  o.threads = 4;
  o.batch_size = 3;
  sweep::StringSink b;
  const ExploreSummary par = run_explore(o, 0, &b);
  EXPECT_EQ(seq.stable_text(), par.stable_text());
  EXPECT_EQ(seq.digest, par.digest);
  EXPECT_EQ(a.text(), b.text());
  EXPECT_FALSE(a.text().empty());
}

TEST(Explore, PersistedRecordsParseAndReplay) {
  ExploreOptions o;
  o.objective = Objective::kViolation;
  o.algorithms = {sweep::Algorithm::kAbd};
  o.abd_read_write_back = false;
  o.process_counts = {5};
  o.seed_begin = 0;
  o.seed_end = 1;
  o.search_budget = 8;
  o.shrink_budget = 512;
  sweep::StringSink sink;
  (void)run_explore(o, 0, &sink);
  const std::string line = sink.text().substr(0, sink.text().find('\n'));
  std::string error;
  const auto persisted = parse_explore_record(line, &error);
  ASSERT_TRUE(persisted.has_value()) << error << "\n" << line;
  EXPECT_EQ(persisted->instance.key(),
            "explore/viol/abd/greedy/p5/w2/b8/nowb/seed0");
  const ReplayReport rep = replay_trace(
      persisted->instance, persisted->trace, persisted->fallback_seed);
  EXPECT_EQ(rep.fingerprint, persisted->fingerprint);
  EXPECT_EQ(rep.score, persisted->best_score);
  // Non-explore records are skipped gracefully.
  EXPECT_FALSE(parse_explore_record("{\"key\":\"x\",\"mode\":\"term\"}",
                                    &error)
                   .has_value());
}

TEST(Explore, EnumerationValidatesItsAxes) {
  ExploreOptions o;
  o.seed_begin = 5;
  o.seed_end = 5;  // empty seed range
  EXPECT_THROW((void)enumerate_explore_instances(o), std::exception);
  ExploreOptions bad_budget;
  bad_budget.search_budget = 0;
  EXPECT_THROW((void)enumerate_explore_instances(bad_budget),
               std::exception);
  ExploreOptions no_families;
  no_families.objective = Objective::kRounds;
  no_families.families = {};
  EXPECT_THROW((void)enumerate_explore_instances(no_families),
               std::exception);
  // Instance keys are unique across the cross-product.
  ExploreOptions ok;
  ok.objective = Objective::kRounds;
  ok.families = {term::Family::kGame, term::Family::kSharedCoin};
  ok.round_budgets = {8, 16};
  ok.process_counts = {3, 4};
  ok.seed_begin = 0;
  ok.seed_end = 2;
  const std::vector<ExploreInstance> all = enumerate_explore_instances(ok);
  EXPECT_EQ(all.size(), 2u * 2u * 2u * 2u);
  std::set<std::string> keys;
  for (const ExploreInstance& e : all) keys.insert(e.key());
  EXPECT_EQ(keys.size(), all.size());
}

}  // namespace
}  // namespace rlt::explore
