// Property-based cross-validation of the checker hierarchy on randomly
// generated histories:
//
//   strongly linearizable  ⟹  write strongly-linearizable  ⟹ linearizable
//
// plus structural properties: every checker verdict's witness validates
// against the sequential spec; linearizability is prefix-closed; WSL of a
// history set implies WSL of every subset; SWMR histories that are
// linearizable are always WSL (Theorem 14 at the abstract level).
#include <gtest/gtest.h>

#include "checker/lin_checker.hpp"
#include "checker/strong_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "mp/f_star.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rlt::checker {
namespace {

using history::History;
using history::kNoTime;
using history::OpRecord;

/// Generates a random well-formed single-register history: `procs`
/// processes each issuing sequential ops with random overlap; read
/// values are chosen from plausible candidates (making both satisfiable
/// and unsatisfiable instances likely).
History random_history(util::Rng& rng, int procs, int ops_per_proc,
                       bool sane_reads) {
  History h;
  h.set_initial(0, 0);
  struct Slot {
    history::Time invoke;
    history::Time response;
    int process;
    bool is_write;
    history::Value value;
  };
  std::vector<Slot> slots;
  history::Time clock = 0;
  std::vector<history::Value> written{0};

  // Per-process sequential intervals over a global clock with jitter.
  std::vector<history::Time> proc_clock(static_cast<std::size_t>(procs), 0);
  for (int round = 0; round < ops_per_proc; ++round) {
    for (int p = 0; p < procs; ++p) {
      Slot s;
      s.process = p;
      s.invoke = ++clock + rng.uniform(7);
      s.response = s.invoke + 1 + rng.uniform(15);
      s.is_write = rng.chance(1, 2);
      if (s.is_write) {
        s.value = static_cast<history::Value>(100 + written.size());
        written.push_back(s.value);
      } else {
        s.value = 0;
      }
      slots.push_back(s);
    }
  }
  // Fix up in one pass: per-process sequential intervals (the next op of
  // a process is invoked strictly after its previous op responded) with
  // globally unique event times; cross-process overlap stays random.
  std::sort(slots.begin(), slots.end(),
            [](const Slot& a, const Slot& b) { return a.invoke < b.invoke; });
  std::set<history::Time> used;
  history::Time global = 0;
  for (Slot& s : slots) {
    s.invoke = std::max(
        {s.invoke, global + 1,
         proc_clock[static_cast<std::size_t>(s.process)] + 1});
    while (used.count(s.invoke) > 0) ++s.invoke;
    used.insert(s.invoke);
    global = s.invoke;
    s.response = s.invoke + 1 + rng.uniform(20);
    while (used.count(s.response) > 0) ++s.response;
    used.insert(s.response);
    proc_clock[static_cast<std::size_t>(s.process)] = s.response;
  }
  for (const Slot& s : slots) {
    OpRecord op;
    op.process = s.process;
    op.reg = 0;
    op.kind = s.is_write ? OpKind::kRead : OpKind::kRead;  // set below
    op.kind = s.is_write ? OpKind::kWrite : OpKind::kRead;
    op.value = s.is_write
                   ? s.value
                   : (sane_reads
                          ? written[rng.uniform(written.size())]
                          : static_cast<history::Value>(rng.uniform(8)));
    op.invoke = s.invoke;
    op.response = s.response;
    h.add(op);
  }
  h.validate();
  return h;
}

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySweep, HierarchyOfCriteria) {
  util::Rng rng(GetParam());
  const History h = random_history(rng, 3, 2, /*sane_reads=*/true);
  const bool lin = check_linearizable(h).ok;
  const bool wsl = check_write_strong_linearizable(h).ok;
  const bool strong = check_strong_linearizable(h).ok;
  // strong ⟹ wsl ⟹ lin.
  if (strong) {
    EXPECT_TRUE(wsl) << h.to_string();
  }
  if (wsl) {
    EXPECT_TRUE(lin) << h.to_string();
  }
}

TEST_P(PropertySweep, WitnessesValidateAgainstTheSpec) {
  util::Rng rng(GetParam() ^ 0xABCD);
  const History h = random_history(rng, 3, 2, true);
  const auto lin = check_linearizable(h);
  if (lin.ok) {
    const auto chk = is_legal_sequential(h, lin.order);
    EXPECT_TRUE(chk.ok) << chk.error << '\n' << h.to_string();
  }
}

TEST_P(PropertySweep, LinearizabilityIsPrefixClosed) {
  util::Rng rng(GetParam() ^ 0x1111);
  const History h = random_history(rng, 3, 2, true);
  if (check_linearizable(h).ok) {
    for (const History& prefix : h.all_prefixes()) {
      EXPECT_TRUE(check_linearizable(prefix).ok)
          << "prefix not linearizable:\n"
          << prefix.to_string();
    }
  }
}

TEST_P(PropertySweep, WslOfSetImpliesWslOfSingletons) {
  util::Rng rng(GetParam() ^ 0x2222);
  const History a = random_history(rng, 2, 2, true);
  const History b = random_history(rng, 2, 2, true);
  const auto pair_result =
      check_write_strong_linearizable(std::vector<History>{a, b});
  if (pair_result.ok) {
    EXPECT_TRUE(check_write_strong_linearizable(a).ok);
    EXPECT_TRUE(check_write_strong_linearizable(b).ok);
  }
}

TEST_P(PropertySweep, SwmrLinearizableImpliesWsl) {
  // Theorem 14 at the abstract level: generate single-writer histories;
  // whenever linearizable, WSL must hold too.
  util::Rng rng(GetParam() ^ 0x3333);
  const History h = random_history(rng, 1, 4, true);  // 1 writer...
  // Add overlapping reads from other processes with random plausible
  // values (may or may not be linearizable).
  History with_reads = h;
  for (int i = 0; i < 3; ++i) {
    OpRecord r;
    r.process = 10 + i;
    r.reg = 0;
    r.kind = OpKind::kRead;
    r.value = static_cast<history::Value>(100 + rng.uniform(4));
    r.invoke = 2 + rng.uniform(40) * 3 + static_cast<history::Time>(i);
    r.response = r.invoke + 1 + rng.uniform(25);
    // Keep times unique vs existing events.
    for (const OpRecord& op : with_reads.ops()) {
      if (op.invoke == r.invoke || op.response == r.invoke) r.invoke += 1;
      if (op.invoke == r.response || op.response == r.response) {
        r.response += 1;
      }
    }
    if (r.response <= r.invoke) r.response = r.invoke + 1;
    with_reads.add(r);
  }
  bool valid = true;
  try {
    with_reads.validate();
  } catch (const util::InvariantViolation&) {
    valid = false;  // rare time collision; skip this instance
  }
  if (!valid) return;
  if (check_linearizable(with_reads).ok) {
    const auto wsl = check_write_strong_linearizable(with_reads);
    EXPECT_TRUE(wsl.ok) << wsl.explanation << '\n' << with_reads.to_string();
  }
}

TEST_P(PropertySweep, InsaneReadsAreUsuallyCaughtConsistently) {
  // With arbitrary read values all three checkers must AGREE on the
  // reject side of the hierarchy (no false "strong" on a non-lin run).
  util::Rng rng(GetParam() ^ 0x4444);
  const History h = random_history(rng, 3, 2, /*sane_reads=*/false);
  const bool lin = check_linearizable(h).ok;
  if (!lin) {
    EXPECT_FALSE(check_write_strong_linearizable(h).ok);
    EXPECT_FALSE(check_strong_linearizable(h).ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Range<std::uint64_t>(1, 61));

}  // namespace
}  // namespace rlt::checker
