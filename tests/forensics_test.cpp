// Forensics layer: certificate minimization must produce a sub-history
// that independently re-fails the checker; the timeline recorder must
// capture network events deterministically (with lifecycle events exempt
// from the message cap); and the rendered artifact must be a pure
// function of its inputs — the property the --forensics CLI contract
// (byte-identity across threads and shards) rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "checker/lin_checker.hpp"
#include "history/history.hpp"
#include "mp/network.hpp"
#include "obs/forensics.hpp"
#include "obs/timeline.hpp"

namespace rlt {
namespace {

using history::History;
using history::kNoTime;
using history::OpKind;
using history::OpRecord;

OpRecord op(int process, int reg, OpKind kind, history::Value v,
            history::Time invoke, history::Time response) {
  OpRecord r;
  r.process = process;
  r.reg = reg;
  r.kind = kind;
  r.value = v;
  r.invoke = invoke;
  r.response = response;
  return r;
}

/// The classic new/old inversion (reads R0=1 then R0=0 strictly after a
/// completed write of 1), padded with irrelevant traffic on R1 that a
/// minimal certificate must discard.
History inversion_history() {
  History h;
  h.set_initial(0, 0);
  h.set_initial(1, 0);
  h.add(op(0, 0, OpKind::kWrite, 1, 1, 2));
  h.add(op(1, 0, OpKind::kRead, 1, 3, 4));
  h.add(op(2, 0, OpKind::kRead, 0, 5, 6));  // stale: after both of the above
  h.add(op(0, 1, OpKind::kWrite, 7, 7, 8));
  h.add(op(1, 1, OpKind::kRead, 7, 9, 10));
  return h;
}

TEST(Certificate, MinimizesAndReverifies) {
  const History h = inversion_history();
  ASSERT_FALSE(checker::check_linearizable(h).ok);
  const obs::Certificate c = obs::make_certificate(h, /*wsl_only=*/false);
  EXPECT_EQ(c.checker, "linearizability");
  EXPECT_TRUE(c.reverified);
  EXPECT_FALSE(c.constraint.empty());
  // 1-minimality dropped the R1 ops (3, 4); the inversion needs the
  // write only through the first read's value, and greedy removal in id
  // order strips the write too (a read of a never-written 1 already
  // fails), so the core is a subset of the three R0 ops.
  EXPECT_FALSE(c.ops.empty());
  EXPECT_LT(c.ops.size(), h.size());
  for (const int id : c.ops) {
    EXPECT_TRUE(id >= 0 && id < static_cast<int>(h.size()));
    EXPECT_EQ(h.op(id).reg, 0) << "R1 padding survived minimization";
  }
  // Ascending original ids, no duplicates.
  EXPECT_TRUE(std::is_sorted(c.ops.begin(), c.ops.end()));
  EXPECT_TRUE(std::adjacent_find(c.ops.begin(), c.ops.end()) ==
              c.ops.end());
  // Full probe + at least one removal round + re-verify.
  EXPECT_GE(c.probes, h.size() + 2);
}

TEST(Certificate, HonestWhenCheckerPasses) {
  History h;
  h.set_initial(0, 0);
  h.add(op(0, 0, OpKind::kWrite, 1, 1, 2));
  h.add(op(1, 0, OpKind::kRead, 1, 3, 4));
  ASSERT_TRUE(checker::check_linearizable(h).ok);
  const obs::Certificate c = obs::make_certificate(h, false);
  EXPECT_FALSE(c.reverified);
  EXPECT_EQ(c.constraint, "checker did not reproduce the reported failure");
  EXPECT_TRUE(c.ops.empty());
}

TEST(Timeline, RecordsEventsAndEdges) {
  obs::TimelineRecorder t;
  mp::Message m;
  m.from = 0;
  m.to = 1;
  m.type = 3;
  m.seq = 7;
  t.on_send(m);
  t.on_deliver(m);
  t.on_drop(m, "partition-cut");
  t.on_crash(1);
  t.note_fault("partition cut { 0 }|{ 1 2 } at iteration 5");
  t.on_recover(1);
  const auto& ev = t.events();
  ASSERT_EQ(ev.size(), 6u);
  EXPECT_EQ(ev[0].kind, obs::TimelineEvent::Kind::kSend);
  EXPECT_EQ(ev[1].kind, obs::TimelineEvent::Kind::kDeliver);
  EXPECT_EQ(ev[1].seq, 7u);
  EXPECT_EQ(ev[2].detail, "partition-cut");
  EXPECT_EQ(ev[3].kind, obs::TimelineEvent::Kind::kCrash);
  EXPECT_EQ(t.elided(), 0u);
  // last_fault_touching prefers the most recent matching event, and
  // node scoping works: node 1 saw crash/recover, node 0 only the
  // partition fault.
  EXPECT_EQ(t.last_fault_touching(1), "node 1 recovered");
  EXPECT_EQ(t.last_fault_touching(0),
            "partition cut { 0 }|{ 1 2 } at iteration 5");
  EXPECT_EQ(t.last_fault_touching(-1), "node 1 recovered");
}

TEST(Timeline, CapExemptsLifecycleEvents) {
  obs::TimelineRecorder t(/*message_cap=*/4);
  mp::Message m;
  m.from = 0;
  m.to = 1;
  for (int i = 0; i < 10; ++i) {
    m.seq = static_cast<std::uint64_t>(i);
    t.on_send(m);
  }
  EXPECT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.elided(), 6u);
  // Crash/recover/fault events always land, even over the cap.
  t.on_crash(0);
  t.note_fault("partition healed at iteration 9");
  ASSERT_EQ(t.events().size(), 6u);
  EXPECT_EQ(t.events().back().kind, obs::TimelineEvent::Kind::kFault);
}

TEST(Artifact, PureFunctionOfInputs) {
  const History h = inversion_history();
  obs::TimelineRecorder t;
  mp::Message m;
  m.from = 0;
  m.to = 1;
  m.seq = 1;
  t.on_send(m);
  t.on_deliver(m);
  obs::ForensicsCapture cap;
  cap.timeline = &t;
  obs::LedgerEntry le;
  le.token = 0;
  le.op_id = 2;
  le.node = 1;
  le.phase = "read-query";
  le.acks = {0};
  le.quorum = 2;
  le.n = 3;
  le.cause = "no-live-quorum";
  le.cut_by = "node 2 crashed";
  cap.ledger.push_back(le);

  const std::string a =
      obs::build_artifact("k/seed0", "VIOLATION", "lin violated", h, cap);
  const std::string b =
      obs::build_artifact("k/seed0", "VIOLATION", "lin violated", h, cap);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.back(), '\n');
  EXPECT_NE(a.find("\"forensics\":1"), std::string::npos);
  EXPECT_NE(a.find("\"certificate\":{"), std::string::npos);
  EXPECT_NE(a.find("\"reverified\":true"), std::string::npos);
  EXPECT_NE(a.find("\"cause\":\"no-live-quorum\""), std::string::npos);
  EXPECT_NE(a.find("\"cut_by\":\"node 2 crashed\""), std::string::npos);
  // The send->deliver edge, matched by seq.
  EXPECT_NE(a.find("\"edges\":[{\"from\":0,\"to\":1}]"), std::string::npos);
  // Blocked artifacts carry no certificate (nothing failed a checker).
  const std::string blocked =
      obs::build_artifact("k/seed0", "blocked", "quiescent", h, cap);
  EXPECT_EQ(blocked.find("\"certificate\""), std::string::npos);
}

TEST(Artifact, PendingOpsOmitResponse) {
  History h;
  h.set_initial(0, 0);
  h.add(op(0, 0, OpKind::kWrite, 5, 1, kNoTime));
  const std::string a = obs::build_artifact(
      "k", "blocked", "quiescent with 1 pending op(s)", h, {});
  EXPECT_NE(a.find("\"pending\":true"), std::string::npos);
  EXPECT_EQ(a.find("\"response\""), std::string::npos);
}

}  // namespace
}  // namespace rlt
