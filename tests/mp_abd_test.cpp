// Tests for the message-passing substrate, the ABD register, and the
// executable Theorem 14 (f* construction).
#include <gtest/gtest.h>

#include "checker/lin_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "mp/abd.hpp"
#include "mp/f_star.hpp"
#include "util/rng.hpp"

namespace rlt::mp {
namespace {

class EchoNode final : public Node {
 public:
  void on_message(const Message& m) override { received.push_back(m); }
  std::vector<Message> received;
};

TEST(Network, DeliversInChosenOrder) {
  Network net;
  EchoNode a;
  EchoNode b;
  const NodeId ia = net.add_node(a);
  const NodeId ib = net.add_node(b);
  net.send(ia, ib, 1, {10});
  net.send(ia, ib, 2, {20});
  ASSERT_EQ(net.in_flight(), 2u);
  net.deliver_at(1);  // out of order
  net.deliver_at(0);
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].type, 2);
  EXPECT_EQ(b.received[1].type, 1);
  EXPECT_EQ(net.messages_delivered(), 2u);
}

TEST(Network, CrashedNodesDropTraffic) {
  Network net;
  EchoNode a;
  EchoNode b;
  const NodeId ia = net.add_node(a);
  const NodeId ib = net.add_node(b);
  net.crash(ib);
  net.send(ia, ib, 1, {});
  net.deliver_at(0);
  EXPECT_TRUE(b.received.empty());  // dropped at delivery
  net.send(ib, ia, 1, {});          // dropped at send
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_EQ(net.crashed_count(), 1);
}

TEST(Network, BroadcastReachesEveryNodeIncludingSender) {
  Network net;
  EchoNode nodes[3];
  for (EchoNode& n : nodes) net.add_node(n);
  net.broadcast(0, 9, {1, 2});
  EXPECT_EQ(net.in_flight(), 3u);
  while (net.in_flight() > 0) net.deliver_at(0);
  for (EchoNode& n : nodes) {
    ASSERT_EQ(n.received.size(), 1u);
    EXPECT_EQ(n.received[0].payload, (std::vector<std::int64_t>{1, 2}));
  }
}

/// Drives the network until the given op completes (FIFO-ish random).
void drive_until_done(Network& net, AbdRegister& reg, int token,
                      util::Rng& rng, int max_steps = 100000) {
  for (int i = 0; i < max_steps && !reg.done(token); ++i) {
    if (!net.deliver_random(rng)) break;
  }
}

TEST(Abd, SequentialWriteThenRead) {
  Network net;
  AbdRegister reg(net, 3, /*writer=*/0, /*initial=*/7);
  util::Rng rng(1);
  const int w = reg.begin_write(42);
  drive_until_done(net, reg, w, rng);
  ASSERT_TRUE(reg.done(w));
  const int r = reg.begin_read(1);
  drive_until_done(net, reg, r, rng);
  ASSERT_TRUE(reg.done(r));
  EXPECT_EQ(reg.result(r), 42);
}

TEST(Abd, ReadOfInitialValue) {
  Network net;
  AbdRegister reg(net, 5, 0, 7);
  util::Rng rng(2);
  const int r = reg.begin_read(3);
  drive_until_done(net, reg, r, rng);
  ASSERT_TRUE(reg.done(r));
  EXPECT_EQ(reg.result(r), 7);
}

TEST(Abd, ToleratesMinorityCrashes) {
  Network net;
  AbdRegister reg(net, 5, 0, 0);
  util::Rng rng(3);
  net.crash(3);
  net.crash(4);  // 2 < majority of 5
  const int w = reg.begin_write(9);
  drive_until_done(net, reg, w, rng);
  ASSERT_TRUE(reg.done(w));
  const int r = reg.begin_read(1);
  drive_until_done(net, reg, r, rng);
  ASSERT_TRUE(reg.done(r));
  EXPECT_EQ(reg.result(r), 9);
}

TEST(Abd, MajorityCrashStallsOperationsForever) {
  Network net;
  AbdRegister reg(net, 5, 0, 0);
  util::Rng rng(4);
  net.crash(1);
  net.crash(2);
  net.crash(3);  // majority gone
  EXPECT_EQ(net.live_count(), 2);
  const int w = reg.begin_write(9);
  drive_until_done(net, reg, w, rng);
  EXPECT_FALSE(reg.done(w));  // pending forever — liveness needs a quorum
  EXPECT_EQ(reg.pending_ops(), 1);
  // The op's home (the writer) is alive, but 2 live servers < quorum 3:
  // no delivery schedule can ever complete it.
  EXPECT_EQ(reg.op_node(w), 0);
  EXPECT_FALSE(reg.op_can_complete(w));
}

TEST(Abd, OpCanCompleteTracksTheCrashSet) {
  Network net;
  AbdRegister reg(net, 5, 0, 0);
  util::Rng rng(5);
  const int w = reg.begin_write(1);
  EXPECT_TRUE(reg.op_can_complete(w));  // everyone alive
  net.crash(3);
  net.crash(4);  // minority: 3 live >= quorum 3
  EXPECT_TRUE(reg.op_can_complete(w));
  drive_until_done(net, reg, w, rng);
  ASSERT_TRUE(reg.done(w));
  const int r = reg.begin_read(2);
  net.crash(2);  // the reader itself dies: its op is stranded
  EXPECT_FALSE(reg.op_can_complete(r));
  EXPECT_TRUE(reg.op_can_complete(w));  // completed ops stay completable
}

TEST(Abd, RejectsConcurrentWrites) {
  Network net;
  AbdRegister reg(net, 3, 0, 0);
  (void)reg.begin_write(1);
  EXPECT_THROW((void)reg.begin_write(2), util::InvariantViolation);
}

/// A randomized ABD workload: interleaves write/read starts with message
/// deliveries; returns the recorded history.
history::History random_abd_run(std::uint64_t seed, int n, int crashes) {
  Network net;
  AbdRegister reg(net, n, 0, 0);
  util::Rng rng(seed);
  int writes_left = 3;
  int reads_left = 4;
  Value next_value = 1;
  std::vector<int> write_tokens;
  std::vector<int> read_tokens;
  std::vector<NodeId> free_readers;
  for (int i = 1; i < n; ++i) free_readers.push_back(i);
  int crashed = 0;

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t pick = rng.uniform(10);
    if (pick == 0 && writes_left > 0) {
      // The single writer starts a new write only when idle.
      const bool writer_busy =
          !write_tokens.empty() && !reg.done(write_tokens.back());
      if (!writer_busy) {
        write_tokens.push_back(reg.begin_write(next_value++));
        --writes_left;
        continue;
      }
    }
    if (pick == 1 && reads_left > 0 && !free_readers.empty()) {
      const NodeId reader = free_readers.back();
      free_readers.pop_back();
      read_tokens.push_back(reg.begin_read(reader));
      --reads_left;
      continue;
    }
    if (pick == 2 && crashed < crashes) {
      // Crash a non-writer node (keeps the workload flowing).
      const NodeId victim = 1 + static_cast<NodeId>(rng.uniform(
                                    static_cast<std::uint64_t>(n - 1)));
      if (!net.crashed(victim)) {
        net.crash(victim);
        ++crashed;
      }
      continue;
    }
    if (!net.deliver_random(rng)) {
      if (writes_left == 0 && reads_left == 0) break;
    }
  }
  return reg.hl_history();
}

class AbdSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AbdSweep, HistoriesAreLinearizable) {
  const history::History h = random_abd_run(GetParam(), 5, 0);
  h.validate();
  const auto lin = checker::check_linearizable(h);
  ASSERT_TRUE(lin.ok) << lin.error << '\n' << h.to_string();
}

TEST_P(AbdSweep, HistoriesAreWriteStronglyLinearizable) {
  // Theorem 14: ABD (a linearizable SWMR implementation) is WSL.
  const history::History h = random_abd_run(GetParam(), 5, 0);
  const auto wsl = checker::check_write_strong_linearizable(h);
  ASSERT_TRUE(wsl.ok) << wsl.explanation << '\n' << h.to_string();
}

TEST_P(AbdSweep, FStarConstructionVerifies) {
  const history::History h = random_abd_run(GetParam(), 5, 0);
  const SwmrWslCheck chk = check_swmr_write_strong(h);
  ASSERT_TRUE(chk.ok) << chk.error << '\n' << h.to_string();
  EXPECT_GT(chk.prefixes_checked, 0u);
}

TEST_P(AbdSweep, CrashyHistoriesStayCorrect) {
  const history::History h = random_abd_run(GetParam() + 1000, 5, 2);
  h.validate();
  ASSERT_TRUE(checker::check_linearizable(h).ok) << h.to_string();
  ASSERT_TRUE(checker::check_write_strong_linearizable(h).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbdSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(FStar, DropsTrailingPendingWrite) {
  history::History h;
  history::OpRecord w;
  w.process = 0;
  w.reg = 0;
  w.kind = history::OpKind::kWrite;
  w.value = 1;
  w.invoke = 1;
  w.response = history::kNoTime;
  h.add(w);
  EXPECT_EQ(f_star(h, {0}), std::vector<int>{});
  // A completed write stays.
  history::History h2;
  w.response = 5;
  h2.add(w);
  EXPECT_EQ(f_star(h2, {0}), std::vector<int>{0});
}

TEST(FStar, RejectsConcurrentWriters) {
  history::History h;
  history::OpRecord w;
  w.reg = 0;
  w.kind = history::OpKind::kWrite;
  w.process = 0;
  w.value = 1;
  w.invoke = 1;
  w.response = 10;
  h.add(w);
  w.process = 1;
  w.value = 2;
  w.invoke = 5;
  w.response = 15;
  h.add(w);
  EXPECT_THROW((void)check_swmr_write_strong(h), util::InvariantViolation);
}

TEST(Network, AccountingSplitsDropsFromDeliveries) {
  // A consumed envelope is either delivered or dropped, never both;
  // messages_consumed() (the drivers' step currency) counts both.
  Network net;
  EchoNode a;
  EchoNode b;
  const NodeId ia = net.add_node(a);
  const NodeId ib = net.add_node(b);
  net.send(ia, ib, 1, {});
  net.send(ib, ia, 2, {});
  net.deliver_at(0);  // live receiver: delivered
  net.crash(ia);
  net.deliver_at(0);  // crashed receiver: consumed as a drop
  EXPECT_EQ(net.messages_delivered(), 1u);
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.messages_duplicated(), 0u);
  EXPECT_EQ(net.messages_consumed(), 2u);
}

TEST(Network, LossyFabricIsSeededAndDeterministic) {
  const auto run = [](std::uint64_t seed) {
    Network net;
    EchoNode a;
    EchoNode b;
    const NodeId ia = net.add_node(a);
    const NodeId ib = net.add_node(b);
    net.make_unreliable(/*drop_permille=*/400, /*dup_permille=*/0, seed);
    for (int i = 0; i < 200; ++i) net.send(ia, ib, i, {});
    while (net.in_flight() > 0) net.deliver_at(0);
    return std::make_pair(net.messages_delivered(), net.messages_dropped());
  };
  const auto [d1, l1] = run(7);
  const auto [d2, l2] = run(7);
  EXPECT_EQ(d1, d2);  // same seed, same coin flips
  EXPECT_EQ(l1, l2);
  EXPECT_EQ(d1 + l1, 200u);
  EXPECT_GT(l1, 0u);   // 400‰ over 200 sends loses something...
  EXPECT_GT(d1, 0u);   // ...but not everything
  const auto [d3, l3] = run(8);
  EXPECT_TRUE(d3 != d1 || l3 != l1);  // different seed, different fabric
}

TEST(Network, DuplicatedCopiesKeepTheSameSeq) {
  Network net;
  EchoNode a;
  EchoNode b;
  const NodeId ia = net.add_node(a);
  const NodeId ib = net.add_node(b);
  // dup_permille 999: the single delivery re-enqueues a copy (the copy
  // itself may duplicate again, so drain and count).
  net.make_unreliable(0, 999, /*seed=*/3);
  net.send(ia, ib, 1, {5});
  while (net.in_flight() > 0) net.deliver_at(0);
  ASSERT_GE(b.received.size(), 2u);
  EXPECT_EQ(net.messages_duplicated(), b.received.size() - 1);
  for (const Message& m : b.received) {
    EXPECT_EQ(m.seq, b.received[0].seq);  // dedup-able by the receiver
    EXPECT_EQ(m.payload, (std::vector<std::int64_t>{5}));
  }
}

TEST(Network, PartitionCutsCrossSideTrafficUntilHealed) {
  Network net;
  EchoNode nodes[3];
  for (EchoNode& n : nodes) net.add_node(n);
  net.set_partition({0, 0, 1});  // node 2 alone on side 1
  net.send(0, 1, 1, {});         // same side: flows
  net.send(0, 2, 2, {});         // cross side: dropped at delivery
  net.deliver_at(0);
  net.deliver_at(0);
  EXPECT_EQ(nodes[1].received.size(), 1u);
  EXPECT_TRUE(nodes[2].received.empty());
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_TRUE(net.partitioned());
  net.heal_partition();
  net.send(0, 2, 3, {});
  net.deliver_at(0);
  ASSERT_EQ(nodes[2].received.size(), 1u);  // healed: flows again
  EXPECT_EQ(nodes[2].received[0].type, 3);
}

TEST(Network, MidBroadcastCrashLetsOnlyThePrefixThrough) {
  Network net;
  EchoNode nodes[4];
  for (EchoNode& n : nodes) net.add_node(n);
  // The crash fires when the attempt counter reaches 3 — before the
  // broadcast's third send enqueues — so exactly sends 1 and 2 get out.
  net.schedule_crash_at_send(0, 3);
  net.broadcast(0, 7, {});
  EXPECT_TRUE(net.crashed(0));
  EXPECT_EQ(net.in_flight(), 2u);
}

TEST(Network, RecoverRestoresLivenessAndRejectsLiveNodes) {
  Network net;
  EchoNode a;
  EchoNode b;
  const NodeId ia = net.add_node(a);
  const NodeId ib = net.add_node(b);
  EXPECT_THROW(net.recover(ib), util::InvariantViolation);  // not crashed
  net.crash(ib);
  net.send(ia, ib, 1, {});
  net.deliver_at(0);  // dropped: receiver down
  net.recover(ib);
  EXPECT_EQ(net.live_count(), 2);
  net.send(ia, ib, 2, {});
  net.deliver_at(0);
  ASSERT_EQ(b.received.size(), 1u);  // recovered: hears traffic again
  EXPECT_EQ(b.received[0].type, 2);
}

TEST(Network, AdversarialDropAndDuplicateTargetChosenEnvelopes) {
  Network net;
  EchoNode a;
  EchoNode b;
  const NodeId ia = net.add_node(a);
  const NodeId ib = net.add_node(b);
  net.send(ia, ib, 1, {});
  net.send(ia, ib, 2, {});
  net.drop_at(0);  // kill the first envelope specifically
  EXPECT_EQ(net.messages_dropped(), 1u);
  ASSERT_EQ(net.in_flight(), 1u);
  net.duplicate_at(0);
  EXPECT_EQ(net.messages_duplicated(), 1u);
  ASSERT_EQ(net.in_flight(), 2u);
  EXPECT_EQ(net.in_flight_messages()[0].seq, net.in_flight_messages()[1].seq);
  net.deliver_at(0);
  net.deliver_at(0);
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].type, 2);
  EXPECT_EQ(b.received[1].type, 2);
}

/// Drives a fault-tolerant register until the op completes, advancing a
/// logical clock so retransmission timers fire; mirrors the sweep
/// driver's loop (deliver when possible, otherwise fast-forward to the
/// next retransmission deadline).
void drive_fault_tolerant(Network& net, AbdRegister& reg, int token,
                          util::Rng& rng, int max_steps = 200000) {
  std::uint64_t now = 0;
  for (int i = 0; i < max_steps && !reg.done(token); ++i) {
    reg.tick_retransmit(now);
    if (!net.deliver_random(rng)) {
      const auto due = reg.next_retransmit_due();
      if (!due) break;                    // nothing will ever fire again
      now = std::max(now + 1, *due);
      continue;
    }
    ++now;
  }
}

TEST(Abd, RetransmissionCompletesOpsOnALossyNetwork) {
  Network net;
  AbdRegister reg(net, 3, 0, 0);
  net.make_unreliable(/*drop_permille=*/400, 0, /*seed=*/11);
  reg.enable_fault_tolerance(/*seed=*/12, /*retry_base=*/4);
  util::Rng rng(13);
  const int w = reg.begin_write(42);
  drive_fault_tolerant(net, reg, w, rng);
  ASSERT_TRUE(reg.done(w));
  const int r = reg.begin_read(1);
  drive_fault_tolerant(net, reg, r, rng);
  ASSERT_TRUE(reg.done(r));
  EXPECT_EQ(reg.result(r), 42);
  // 40% loss with quorum 2-of-3 virtually guarantees a lost ack forced
  // at least one rebroadcast; if not, the fabric seed is miscalibrated.
  EXPECT_GT(reg.retransmits(), 0u);
  const auto lin = checker::check_linearizable(reg.hl_history());
  EXPECT_TRUE(lin.ok) << lin.error;
}

TEST(Abd, ServerDedupConsumesFabricDuplicatesOnce) {
  Network net;
  AbdRegister reg(net, 3, 0, 0);
  net.make_unreliable(0, /*dup_permille=*/500, /*seed=*/21);
  reg.enable_fault_tolerance(/*seed=*/22);
  util::Rng rng(23);
  const int w = reg.begin_write(5);
  drive_fault_tolerant(net, reg, w, rng);
  ASSERT_TRUE(reg.done(w));
  const int r = reg.begin_read(2);
  drive_fault_tolerant(net, reg, r, rng);
  ASSERT_TRUE(reg.done(r));
  EXPECT_EQ(reg.result(r), 5);
  EXPECT_GT(net.messages_duplicated(), 0u);
  const auto lin = checker::check_linearizable(reg.hl_history());
  EXPECT_TRUE(lin.ok) << lin.error << '\n' << reg.hl_history().to_string();
}

TEST(Abd, AbandonedOpsNeverCompleteOrRetransmit) {
  Network net;
  AbdRegister reg(net, 3, 0, 0);
  reg.enable_fault_tolerance(/*seed=*/31);
  const int w = reg.begin_write(9);
  net.crash(0);
  reg.abandon_ops_on(0);
  EXPECT_EQ(reg.abandoned_ops(), 1);
  EXPECT_FALSE(reg.op_can_complete(w));
  EXPECT_EQ(reg.next_retransmit_due(), std::nullopt);
  reg.tick_retransmit(1000);  // would arm/fire a live op's timer
  EXPECT_EQ(reg.retransmits(), 0u);
  util::Rng rng(32);
  while (net.deliver_random(rng)) {
  }
  EXPECT_FALSE(reg.done(w));      // pending forever
  EXPECT_EQ(reg.pending_ops(), 1);
  // The abandoned write released the single-writer slot: after recovery
  // the writer may start a fresh write (its durable timestamp counter
  // supersedes the abandoned one).
  net.recover(0);
  reg.on_recover(0);
  const int w2 = reg.begin_write(10);
  drive_fault_tolerant(net, reg, w2, rng);
  EXPECT_TRUE(reg.done(w2));
}

TEST(Abd, RecoveryRestoresDurableServerState) {
  // Complete a write whose value only servers 1 and 2 saw, crash-recover
  // node 2, then force a read quorum through it: the read returns the
  // written value only because (ts, value) survived on stable storage.
  Network net;
  AbdRegister reg(net, 3, 0, 0);
  reg.enable_fault_tolerance(/*seed=*/41);
  const int w = reg.begin_write(42);
  // in_flight: write requests to servers 0, 1, 2.
  net.deliver_at(1);  // server 1 stores (1, 42), acks
  net.deliver_at(1);  // server 2 stores (1, 42), acks
  net.deliver_at(1);  // ack from 1
  net.deliver_at(1);  // ack from 2: quorum, write done
  ASSERT_TRUE(reg.done(w));
  net.drop_at(0);  // server 0 NEVER hears this write
  ASSERT_EQ(net.in_flight(), 0u);
  net.crash(2);
  reg.abandon_ops_on(2);  // no-op (no op in flight there)
  net.recover(2);
  reg.on_recover(2);      // volatile dedup cache reset, (ts, value) kept
  net.crash(1);           // permanently: quorum must now include node 2
  const int r = reg.begin_read(0);
  util::Rng rng(42);
  drive_fault_tolerant(net, reg, r, rng);
  ASSERT_TRUE(reg.done(r));
  // Server 0 replies (0, initial); server 2 must reply (1, 42) from its
  // durable state or the read would linearize to the stale initial 0.
  EXPECT_EQ(reg.result(r), 42);
}

TEST(Abd, RetransmissionBacksOffWhileNoQuorumIsLive) {
  Network net;
  AbdRegister reg(net, 3, 0, 0);
  reg.enable_fault_tolerance(/*seed=*/51);
  const int w = reg.begin_write(1);
  net.crash(1);
  net.crash(2);  // live count 1 < quorum 2: permanent majority loss
  util::Rng rng(52);
  while (net.deliver_random(rng)) {
  }
  EXPECT_FALSE(reg.done(w));
  // Ineligible ops never arm a timer: the driver sees no future event
  // and classifies the quiescent run as blocked instead of spinning.
  EXPECT_EQ(reg.next_retransmit_due(), std::nullopt);
  reg.tick_retransmit(10'000);
  EXPECT_EQ(reg.retransmits(), 0u);
  EXPECT_FALSE(reg.op_can_complete(w));
}

TEST(Abd, FaultToleranceIsInertOnAReliableNetwork) {
  // With no ticks and no fabric, the armed layer must not change the
  // message flow: same sends, same history as the classic algorithm.
  const auto run = [](bool armed) {
    Network net;
    AbdRegister reg(net, 3, 0, 0);
    if (armed) reg.enable_fault_tolerance(/*seed=*/61);
    util::Rng rng(62);
    const int w = reg.begin_write(7);
    drive_until_done(net, reg, w, rng);
    const int r = reg.begin_read(1);
    drive_until_done(net, reg, r, rng);
    return std::make_pair(net.messages_sent(), reg.hl_history().to_string());
  };
  const auto [sent_plain, hist_plain] = run(false);
  const auto [sent_armed, hist_armed] = run(true);
  EXPECT_EQ(sent_plain, sent_armed);
  EXPECT_EQ(hist_plain, hist_armed);
}

TEST(Abd, MessageComplexityPerOperation) {
  // Writes cost 2n messages (n requests + n acks); reads cost 4n
  // (query round trip + write-back round trip).
  Network net;
  AbdRegister reg(net, 5, 0, 0);
  util::Rng rng(8);
  const std::uint64_t before_w = net.messages_sent();
  const int w = reg.begin_write(1);
  drive_until_done(net, reg, w, rng);
  while (net.in_flight() > 0) net.deliver_at(0);  // flush stragglers
  EXPECT_EQ(net.messages_sent() - before_w, 10u);
  const std::uint64_t before_r = net.messages_sent();
  const int r = reg.begin_read(2);
  drive_until_done(net, reg, r, rng);
  while (net.in_flight() > 0) net.deliver_at(0);
  EXPECT_EQ(net.messages_sent() - before_r, 20u);
}

}  // namespace
}  // namespace rlt::mp
