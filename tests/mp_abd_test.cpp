// Tests for the message-passing substrate, the ABD register, and the
// executable Theorem 14 (f* construction).
#include <gtest/gtest.h>

#include "checker/lin_checker.hpp"
#include "checker/wsl_checker.hpp"
#include "mp/abd.hpp"
#include "mp/f_star.hpp"
#include "util/rng.hpp"

namespace rlt::mp {
namespace {

class EchoNode final : public Node {
 public:
  void on_message(const Message& m) override { received.push_back(m); }
  std::vector<Message> received;
};

TEST(Network, DeliversInChosenOrder) {
  Network net;
  EchoNode a;
  EchoNode b;
  const NodeId ia = net.add_node(a);
  const NodeId ib = net.add_node(b);
  net.send(ia, ib, 1, {10});
  net.send(ia, ib, 2, {20});
  ASSERT_EQ(net.in_flight(), 2u);
  net.deliver_at(1);  // out of order
  net.deliver_at(0);
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].type, 2);
  EXPECT_EQ(b.received[1].type, 1);
  EXPECT_EQ(net.messages_delivered(), 2u);
}

TEST(Network, CrashedNodesDropTraffic) {
  Network net;
  EchoNode a;
  EchoNode b;
  const NodeId ia = net.add_node(a);
  const NodeId ib = net.add_node(b);
  net.crash(ib);
  net.send(ia, ib, 1, {});
  net.deliver_at(0);
  EXPECT_TRUE(b.received.empty());  // dropped at delivery
  net.send(ib, ia, 1, {});          // dropped at send
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_EQ(net.crashed_count(), 1);
}

TEST(Network, BroadcastReachesEveryNodeIncludingSender) {
  Network net;
  EchoNode nodes[3];
  for (EchoNode& n : nodes) net.add_node(n);
  net.broadcast(0, 9, {1, 2});
  EXPECT_EQ(net.in_flight(), 3u);
  while (net.in_flight() > 0) net.deliver_at(0);
  for (EchoNode& n : nodes) {
    ASSERT_EQ(n.received.size(), 1u);
    EXPECT_EQ(n.received[0].payload, (std::vector<std::int64_t>{1, 2}));
  }
}

/// Drives the network until the given op completes (FIFO-ish random).
void drive_until_done(Network& net, AbdRegister& reg, int token,
                      util::Rng& rng, int max_steps = 100000) {
  for (int i = 0; i < max_steps && !reg.done(token); ++i) {
    if (!net.deliver_random(rng)) break;
  }
}

TEST(Abd, SequentialWriteThenRead) {
  Network net;
  AbdRegister reg(net, 3, /*writer=*/0, /*initial=*/7);
  util::Rng rng(1);
  const int w = reg.begin_write(42);
  drive_until_done(net, reg, w, rng);
  ASSERT_TRUE(reg.done(w));
  const int r = reg.begin_read(1);
  drive_until_done(net, reg, r, rng);
  ASSERT_TRUE(reg.done(r));
  EXPECT_EQ(reg.result(r), 42);
}

TEST(Abd, ReadOfInitialValue) {
  Network net;
  AbdRegister reg(net, 5, 0, 7);
  util::Rng rng(2);
  const int r = reg.begin_read(3);
  drive_until_done(net, reg, r, rng);
  ASSERT_TRUE(reg.done(r));
  EXPECT_EQ(reg.result(r), 7);
}

TEST(Abd, ToleratesMinorityCrashes) {
  Network net;
  AbdRegister reg(net, 5, 0, 0);
  util::Rng rng(3);
  net.crash(3);
  net.crash(4);  // 2 < majority of 5
  const int w = reg.begin_write(9);
  drive_until_done(net, reg, w, rng);
  ASSERT_TRUE(reg.done(w));
  const int r = reg.begin_read(1);
  drive_until_done(net, reg, r, rng);
  ASSERT_TRUE(reg.done(r));
  EXPECT_EQ(reg.result(r), 9);
}

TEST(Abd, MajorityCrashStallsOperationsForever) {
  Network net;
  AbdRegister reg(net, 5, 0, 0);
  util::Rng rng(4);
  net.crash(1);
  net.crash(2);
  net.crash(3);  // majority gone
  EXPECT_EQ(net.live_count(), 2);
  const int w = reg.begin_write(9);
  drive_until_done(net, reg, w, rng);
  EXPECT_FALSE(reg.done(w));  // pending forever — liveness needs a quorum
  EXPECT_EQ(reg.pending_ops(), 1);
  // The op's home (the writer) is alive, but 2 live servers < quorum 3:
  // no delivery schedule can ever complete it.
  EXPECT_EQ(reg.op_node(w), 0);
  EXPECT_FALSE(reg.op_can_complete(w));
}

TEST(Abd, OpCanCompleteTracksTheCrashSet) {
  Network net;
  AbdRegister reg(net, 5, 0, 0);
  util::Rng rng(5);
  const int w = reg.begin_write(1);
  EXPECT_TRUE(reg.op_can_complete(w));  // everyone alive
  net.crash(3);
  net.crash(4);  // minority: 3 live >= quorum 3
  EXPECT_TRUE(reg.op_can_complete(w));
  drive_until_done(net, reg, w, rng);
  ASSERT_TRUE(reg.done(w));
  const int r = reg.begin_read(2);
  net.crash(2);  // the reader itself dies: its op is stranded
  EXPECT_FALSE(reg.op_can_complete(r));
  EXPECT_TRUE(reg.op_can_complete(w));  // completed ops stay completable
}

TEST(Abd, RejectsConcurrentWrites) {
  Network net;
  AbdRegister reg(net, 3, 0, 0);
  (void)reg.begin_write(1);
  EXPECT_THROW((void)reg.begin_write(2), util::InvariantViolation);
}

/// A randomized ABD workload: interleaves write/read starts with message
/// deliveries; returns the recorded history.
history::History random_abd_run(std::uint64_t seed, int n, int crashes) {
  Network net;
  AbdRegister reg(net, n, 0, 0);
  util::Rng rng(seed);
  int writes_left = 3;
  int reads_left = 4;
  Value next_value = 1;
  std::vector<int> write_tokens;
  std::vector<int> read_tokens;
  std::vector<NodeId> free_readers;
  for (int i = 1; i < n; ++i) free_readers.push_back(i);
  int crashed = 0;

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t pick = rng.uniform(10);
    if (pick == 0 && writes_left > 0) {
      // The single writer starts a new write only when idle.
      const bool writer_busy =
          !write_tokens.empty() && !reg.done(write_tokens.back());
      if (!writer_busy) {
        write_tokens.push_back(reg.begin_write(next_value++));
        --writes_left;
        continue;
      }
    }
    if (pick == 1 && reads_left > 0 && !free_readers.empty()) {
      const NodeId reader = free_readers.back();
      free_readers.pop_back();
      read_tokens.push_back(reg.begin_read(reader));
      --reads_left;
      continue;
    }
    if (pick == 2 && crashed < crashes) {
      // Crash a non-writer node (keeps the workload flowing).
      const NodeId victim = 1 + static_cast<NodeId>(rng.uniform(
                                    static_cast<std::uint64_t>(n - 1)));
      if (!net.crashed(victim)) {
        net.crash(victim);
        ++crashed;
      }
      continue;
    }
    if (!net.deliver_random(rng)) {
      if (writes_left == 0 && reads_left == 0) break;
    }
  }
  return reg.hl_history();
}

class AbdSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AbdSweep, HistoriesAreLinearizable) {
  const history::History h = random_abd_run(GetParam(), 5, 0);
  h.validate();
  const auto lin = checker::check_linearizable(h);
  ASSERT_TRUE(lin.ok) << lin.error << '\n' << h.to_string();
}

TEST_P(AbdSweep, HistoriesAreWriteStronglyLinearizable) {
  // Theorem 14: ABD (a linearizable SWMR implementation) is WSL.
  const history::History h = random_abd_run(GetParam(), 5, 0);
  const auto wsl = checker::check_write_strong_linearizable(h);
  ASSERT_TRUE(wsl.ok) << wsl.explanation << '\n' << h.to_string();
}

TEST_P(AbdSweep, FStarConstructionVerifies) {
  const history::History h = random_abd_run(GetParam(), 5, 0);
  const SwmrWslCheck chk = check_swmr_write_strong(h);
  ASSERT_TRUE(chk.ok) << chk.error << '\n' << h.to_string();
  EXPECT_GT(chk.prefixes_checked, 0u);
}

TEST_P(AbdSweep, CrashyHistoriesStayCorrect) {
  const history::History h = random_abd_run(GetParam() + 1000, 5, 2);
  h.validate();
  ASSERT_TRUE(checker::check_linearizable(h).ok) << h.to_string();
  ASSERT_TRUE(checker::check_write_strong_linearizable(h).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbdSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(FStar, DropsTrailingPendingWrite) {
  history::History h;
  history::OpRecord w;
  w.process = 0;
  w.reg = 0;
  w.kind = history::OpKind::kWrite;
  w.value = 1;
  w.invoke = 1;
  w.response = history::kNoTime;
  h.add(w);
  EXPECT_EQ(f_star(h, {0}), std::vector<int>{});
  // A completed write stays.
  history::History h2;
  w.response = 5;
  h2.add(w);
  EXPECT_EQ(f_star(h2, {0}), std::vector<int>{0});
}

TEST(FStar, RejectsConcurrentWriters) {
  history::History h;
  history::OpRecord w;
  w.reg = 0;
  w.kind = history::OpKind::kWrite;
  w.process = 0;
  w.value = 1;
  w.invoke = 1;
  w.response = 10;
  h.add(w);
  w.process = 1;
  w.value = 2;
  w.invoke = 5;
  w.response = 15;
  h.add(w);
  EXPECT_THROW((void)check_swmr_write_strong(h), util::InvariantViolation);
}

TEST(Abd, MessageComplexityPerOperation) {
  // Writes cost 2n messages (n requests + n acks); reads cost 4n
  // (query round trip + write-back round trip).
  Network net;
  AbdRegister reg(net, 5, 0, 0);
  util::Rng rng(8);
  const std::uint64_t before_w = net.messages_sent();
  const int w = reg.begin_write(1);
  drive_until_done(net, reg, w, rng);
  while (net.in_flight() > 0) net.deliver_at(0);  // flush stragglers
  EXPECT_EQ(net.messages_sent() - before_w, 10u);
  const std::uint64_t before_r = net.messages_sent();
  const int r = reg.begin_read(2);
  drive_until_done(net, reg, r, rng);
  while (net.in_flight() > 0) net.deliver_at(0);
  EXPECT_EQ(net.messages_sent() - before_r, 20u);
}

}  // namespace
}  // namespace rlt::mp
